// Encode/decode tests for the three UC32 codecs.
//
// The core property: encoding is injective and decoding inverts it. Because
// several Instruction values share one canonical byte form (SetFlags::any,
// forced-flag narrow ALU forms), the property is phrased at the byte level:
//   encode(i) -> bytes; decode(bytes) -> d; encode(d) == bytes; decode again
//   yields d exactly (idempotent fixed point).
#include <gtest/gtest.h>

#include <vector>

#include "isa/codec.h"
#include "isa/disasm.h"
#include "isa/isa.h"

namespace aces::isa {
namespace {

// ----- corpus ---------------------------------------------------------------

std::vector<Instruction> corpus() {
  std::vector<Instruction> out;
  const auto push = [&out](Instruction i) { out.push_back(i); };

  const Reg lo_regs[] = {r0, r3, r7};
  const Reg all_regs[] = {r0, r5, r7, r8, r12, lr};
  const std::int64_t imms[] = {0, 1, 7, 8, 100, 255, 256, 0xAB00, 0x00FF0000};

  const Op dp3[] = {Op::add, Op::adc, Op::sub, Op::sbc, Op::rsb, Op::and_,
                    Op::orr, Op::eor, Op::bic};
  for (const Op op : dp3) {
    for (const Reg rd : lo_regs) {
      for (const SetFlags s : {SetFlags::no, SetFlags::yes}) {
        push(ins_rrr(op, rd, r1, r2, s));
        push(ins_rri(op, rd, rd, 5, s));
        push(ins_rri(op, rd, r1, 200, s));
      }
    }
    push(ins_rrr(op, r9, r10, r11));
    push(ins_rri(op, r8, r8, 0xFF00));
  }

  for (const Reg rd : all_regs) {
    for (const Reg rm : all_regs) {
      push(ins_mov_reg(rd, rm));
      push(ins_mov_reg(rd, rm, SetFlags::yes));
    }
  }
  for (const std::int64_t imm : imms) {
    push(ins_mov_imm(r0, imm));
    push(ins_mov_imm(r0, imm, SetFlags::yes));
    push(ins_mov_imm(r9, imm));
  }
  push(ins_rrr(Op::mvn, r1, 0, r2, SetFlags::yes));
  push(ins_rrr(Op::mvn, r9, 0, r10));

  // Shifts.
  for (const Op op : {Op::lsl, Op::lsr, Op::asr}) {
    push(ins_rri(op, r1, r2, 1, SetFlags::yes));
    push(ins_rri(op, r1, r2, 17, SetFlags::yes));
    push(ins_rri(op, r1, r2, 31, SetFlags::no));
    push(ins_rri(op, r9, r10, 5, SetFlags::no));
    push(ins_rrr(op, r1, r1, r2, SetFlags::yes));
    push(ins_rrr(op, r9, r9, r2, SetFlags::no));
  }
  push(ins_rrr(Op::ror, r4, r4, r5, SetFlags::yes));
  push(ins_rri(Op::ror, r4, r5, 3, SetFlags::no));

  // Compares.
  push(ins_cmp_imm(r3, 99));
  push(ins_cmp_reg(r3, r4));
  push(ins_cmp_reg(r9, r4));
  push(ins_rrr(Op::cmn, 0, r3, r4, SetFlags::yes));
  push(ins_rrr(Op::tst, 0, r3, r4, SetFlags::yes));
  push(ins_rrr(Op::teq, 0, r3, r4, SetFlags::yes));
  push(ins_rri(Op::cmn, 0, r3, 12, SetFlags::yes));
  push(ins_rri(Op::tst, 0, r3, 0x80, SetFlags::yes));

  // Multiply / divide.
  push(ins_rrr(Op::mul, r2, r2, r3, SetFlags::yes));
  push(ins_rrr(Op::mul, r2, r3, r2, SetFlags::yes));
  push(ins_rrr(Op::mul, r8, r9, r10));
  {
    Instruction mla = ins_rrr(Op::mla, r1, r2, r3);
    mla.ra = r4;
    push(mla);
  }
  push(ins_rrr(Op::sdiv, r1, r2, r3));
  push(ins_rrr(Op::udiv, r1, r2, r3));

  // movw/movt.
  for (const std::int64_t imm : {0, 1, 0xFFFF, 0x1234}) {
    Instruction w;
    w.op = Op::movw;
    w.rd = r5;
    w.uses_imm = true;
    w.imm = imm;
    push(w);
    w.op = Op::movt;
    push(w);
  }

  // Bitfield.
  for (const Op op : {Op::bfi, Op::ubfx, Op::sbfx}) {
    for (const auto& [lsb, width] : {std::pair{0, 1}, {4, 8}, {16, 16},
                                     {31, 1}, {0, 32}}) {
      Instruction i = ins_rrr(op, r1, r2, 0);
      i.imm = lsb;
      i.width = static_cast<std::uint8_t>(width);
      push(i);
    }
  }
  {
    Instruction i;
    i.op = Op::bfc;
    i.rd = r6;
    i.imm = 8;
    i.width = 12;
    push(i);
  }
  for (const Op op : {Op::rbit, Op::rev, Op::rev16, Op::clz, Op::sxtb,
                      Op::sxth, Op::uxtb, Op::uxth}) {
    Instruction i;
    i.op = op;
    i.rd = r1;
    i.rm = r2;
    push(i);
  }

  // Loads / stores.
  const Op mems[] = {Op::ldr,   Op::ldrb, Op::ldrh, Op::ldrsb, Op::ldrsh,
                     Op::str,   Op::strb, Op::strh};
  for (const Op op : mems) {
    push(ins_ldst_imm(op, r1, r2, 0));
    push(ins_ldst_imm(op, r1, r2, 4));
    push(ins_ldst_imm(op, r1, r2, 20));
    push(ins_ldst_imm(op, r1, r2, 1000));
    push(ins_ldst_imm(op, r9, r10, 64));
    push(ins_ldst_reg(op, r1, r2, r3));
    push(ins_ldst_reg(op, r9, r10, r11));
  }
  push(ins_ldst_imm(Op::ldr, r2, sp, 16));
  push(ins_ldst_imm(Op::str, r2, sp, 1020));

  // Multiple transfer.
  {
    Instruction i;
    i.op = Op::ldm;
    i.rn = r0;
    i.reglist = 0x00F0;
    i.writeback = true;
    push(i);
    i.writeback = false;
    push(i);
    i.op = Op::stm;
    i.writeback = true;
    push(i);
    i.reglist = 0x1FF0;
    push(i);
  }
  push(ins_push(0x000F));
  push(ins_push(0x00F0 | (1u << lr)));
  push(ins_push(0x0FF0 | (1u << lr)));
  push(ins_pop(0x000F));
  push(ins_pop(0x00F0 | (1u << pc)));

  push(ins_ret());
  {
    Instruction i;
    i.op = Op::bx;
    i.rm = r3;
    push(i);
  }

  // tbb.
  {
    Instruction i;
    i.op = Op::tbb;
    i.rn = r0;
    i.rm = r1;
    push(i);
  }

  // IT blocks.
  push(ins_it(Cond::eq, ""));
  push(ins_it(Cond::ne, "t"));
  push(ins_it(Cond::ge, "e"));
  push(ins_it(Cond::lt, "tt"));
  push(ins_it(Cond::cs, "tee"));

  // System.
  {
    Instruction i;
    i.op = Op::svc;
    i.uses_imm = true;
    i.imm = 3;
    push(i);
    i.op = Op::bkpt;
    i.imm = 0xAB;
    push(i);
    i.op = Op::cps;
    i.imm = 1;
    push(i);
    i.imm = 0;
    push(i);
  }
  push(Instruction{});  // nop
  {
    Instruction i;
    i.op = Op::wfi;
    push(i);
  }

  // adr (pc-relative, disp handled separately in branch tests; use disp 16).
  {
    Instruction i;
    i.op = Op::adr;
    i.rd = r2;
    push(i);
  }
  // pc-relative load.
  {
    Instruction i;
    i.op = Op::ldr;
    i.rd = r3;
    i.addr = AddrMode::pc_rel;
    push(i);
  }

  // W32 predication: every dp op conditional.
  for (const Cond c : {Cond::eq, Cond::lt, Cond::hi}) {
    Instruction i = ins_rri(Op::add, r1, r1, 4);
    i.cond = c;
    push(i);
  }

  return out;
}

[[nodiscard]] bool is_pc_relative(const Instruction& i) {
  return i.addr == AddrMode::pc_rel || i.op == Op::adr || i.op == Op::b ||
         i.op == Op::bl || i.op == Op::cbz || i.op == Op::cbnz;
}

class CodecRoundTrip : public ::testing::TestWithParam<Encoding> {};

TEST_P(CodecRoundTrip, ByteLevelFixedPoint) {
  const Codec& codec = codec_for(GetParam());
  int covered = 0;
  for (const Instruction& insn : corpus()) {
    const std::int64_t disp = is_pc_relative(insn) ? 16 : 0;
    const int size = codec.size_for(insn, disp);
    if (size == 0) {
      continue;  // legitimately unencodable in this encoding
    }
    ++covered;
    std::vector<std::uint8_t> bytes;
    codec.encode(insn, disp, size, bytes);
    ASSERT_EQ(static_cast<int>(bytes.size()), size)
        << disassemble(insn, 0);

    Instruction decoded;
    const int consumed = codec.decode(bytes, decoded);
    ASSERT_EQ(consumed, size) << disassemble(insn, 0);

    // Re-encode the decoded instruction: must reproduce identical bytes.
    const std::int64_t disp2 = is_pc_relative(decoded) ? decoded.imm : 0;
    const int size2 = codec.size_for(decoded, disp2);
    ASSERT_EQ(size2, size) << disassemble(insn, 0) << " vs "
                           << disassemble(decoded, 0);
    std::vector<std::uint8_t> bytes2;
    codec.encode(decoded, disp2, size2, bytes2);
    EXPECT_EQ(bytes2, bytes) << disassemble(insn, 0) << " decoded as "
                             << disassemble(decoded, 0);

    // Decoding must be a fixed point.
    Instruction decoded2;
    ASSERT_EQ(codec.decode(bytes2, decoded2), size);
    EXPECT_EQ(decoded2, decoded) << disassemble(decoded, 0);
  }
  // Every encoding must cover a healthy share of the corpus.
  EXPECT_GT(covered, GetParam() == Encoding::n16 ? 120 : 200);
}

TEST_P(CodecRoundTrip, BranchDisplacementsRoundTrip) {
  const Codec& codec = codec_for(GetParam());
  const std::int64_t disps[] = {-4096, -1024, -256, -64, -4, 0,
                                4,     8,     60,   254, 1024, 4096, 100000};
  for (const Op op : {Op::b, Op::bl}) {
    for (const Cond c : {Cond::al, Cond::ne}) {
      if (op == Op::bl && c != Cond::al) {
        continue;
      }
      for (const std::int64_t disp : disps) {
        Instruction i;
        i.op = op;
        i.cond = c;
        const int size = codec.size_for(i, disp);
        if (size == 0) {
          continue;
        }
        std::vector<std::uint8_t> bytes;
        codec.encode(i, disp, size, bytes);
        Instruction d;
        ASSERT_EQ(codec.decode(bytes, d), size);
        EXPECT_EQ(d.op, op);
        EXPECT_EQ(d.imm, disp) << op_name(op) << " disp " << disp;
        if (c != Cond::al) {
          EXPECT_EQ(d.cond, c);
        }
      }
    }
  }
}

TEST_P(CodecRoundTrip, PcRelLoadDisplacements) {
  const Codec& codec = codec_for(GetParam());
  for (const std::int64_t disp : {0, 4, 256, 1020, 2048, 4092}) {
    Instruction i;
    i.op = Op::ldr;
    i.rd = r1;
    i.addr = AddrMode::pc_rel;
    const int size = codec.size_for(i, disp);
    if (size == 0) {
      continue;
    }
    std::vector<std::uint8_t> bytes;
    codec.encode(i, disp, size, bytes);
    Instruction d;
    ASSERT_EQ(codec.decode(bytes, d), size);
    EXPECT_EQ(d.addr, AddrMode::pc_rel);
    EXPECT_EQ(d.imm, disp);
  }
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, CodecRoundTrip,
                         ::testing::Values(Encoding::w32, Encoding::n16,
                                           Encoding::b32),
                         [](const auto& info) {
                           return std::string(encoding_name(info.param));
                         });

// ----- encoding-specific expectations ---------------------------------------

TEST(ModifiedImm, RoundTrip) {
  for (const std::uint32_t v : {0u, 1u, 255u, 256u, 0xFF00u, 0xAB000000u,
                                0xF000000Fu, 0x0003FC00u}) {
    const auto field = encode_modified_imm(v);
    ASSERT_TRUE(field.has_value()) << v;
    EXPECT_EQ(decode_modified_imm(*field), v);
  }
}

TEST(ModifiedImm, RejectsUnencodable) {
  EXPECT_FALSE(encode_modified_imm(0x101).has_value());
  EXPECT_FALSE(encode_modified_imm(0x1FF).has_value());
  EXPECT_FALSE(encode_modified_imm(0x12345678).has_value());
  EXPECT_FALSE(encode_modified_imm(0xFFFFFFFF).has_value());
}

TEST(N16, MirrorsThumbSpotChecks) {
  // Forms that deliberately mirror Thumb-1 should produce Thumb-1 bytes.
  const Codec& codec = n16_codec();
  const auto enc = [&codec](const Instruction& i) {
    std::vector<std::uint8_t> b;
    codec.encode(i, 0, codec.size_for(i, 0), b);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
  };
  EXPECT_EQ(enc(ins_mov_imm(r0, 5, SetFlags::yes)), 0x2005);   // movs r0,#5
  EXPECT_EQ(enc(ins_rrr(Op::add, r1, r2, r3, SetFlags::yes)),
            0x18D1);                                           // adds r1,r2,r3
  EXPECT_EQ(enc(ins_ldst_imm(Op::ldr, r0, r1, 4)), 0x6848);    // ldr r0,[r1,#4]
  EXPECT_EQ(enc(ins_ret()), 0x4770);                           // bx lr
  EXPECT_EQ(enc(ins_push(0x00F0 | (1u << lr))), 0xB5F0);       // push {r4-r7,lr}
}

TEST(N16, WideOpsNotEncodable) {
  const Codec& codec = n16_codec();
  EXPECT_EQ(codec.size_for(ins_rrr(Op::sdiv, r0, r1, r2), 0), 0);
  Instruction movw;
  movw.op = Op::movw;
  movw.rd = r0;
  movw.uses_imm = true;
  movw.imm = 0x1234;
  EXPECT_EQ(codec.size_for(movw, 0), 0);
  Instruction bfi = ins_rrr(Op::bfi, r0, r1, 0);
  bfi.imm = 4;
  bfi.width = 4;
  EXPECT_EQ(codec.size_for(bfi, 0), 0);
  Instruction cbz;
  cbz.op = Op::cbz;
  cbz.rn = r0;
  EXPECT_EQ(codec.size_for(cbz, 16), 0);
  EXPECT_EQ(codec.size_for(ins_it(Cond::eq, ""), 0), 0);
  // Three-address with distinct hi registers has no narrow form.
  EXPECT_EQ(codec.size_for(ins_rrr(Op::add, r8, r9, r10), 0), 0);
}

TEST(N16, NarrowAluRequiresFlagSetting) {
  const Codec& codec = n16_codec();
  // ands r0, r0, r1 exists; non-flag-setting and does not.
  EXPECT_EQ(codec.size_for(ins_rrr(Op::and_, r0, r0, r1, SetFlags::yes), 0),
            2);
  EXPECT_EQ(codec.size_for(ins_rrr(Op::and_, r0, r0, r1, SetFlags::no), 0),
            0);
  EXPECT_EQ(codec.size_for(ins_rrr(Op::and_, r0, r0, r1, SetFlags::any), 0),
            2);
}

TEST(N16, TwoAddressConstraint) {
  const Codec& codec = n16_codec();
  // and r2, r0, r1 (three distinct registers) is not narrow-encodable.
  EXPECT_EQ(codec.size_for(ins_rrr(Op::and_, r2, r0, r1, SetFlags::yes), 0),
            0);
  EXPECT_EQ(codec.size_for(ins_rrr(Op::and_, r2, r2, r1, SetFlags::yes), 0),
            2);
}

TEST(B32, PrefersNarrowForms) {
  const Codec& codec = b32_codec();
  EXPECT_EQ(codec.size_for(ins_rrr(Op::add, r1, r2, r3, SetFlags::any), 0), 2);
  EXPECT_EQ(codec.size_for(ins_rrr(Op::add, r1, r9, r3, SetFlags::any), 0), 4);
  EXPECT_EQ(codec.size_for(ins_mov_imm(r0, 200, SetFlags::any), 0), 2);
  EXPECT_EQ(codec.size_for(ins_mov_imm(r0, 0xFF00, SetFlags::any), 0), 4);
}

TEST(B32, WideOnlyOps) {
  const Codec& codec = b32_codec();
  EXPECT_EQ(codec.size_for(ins_rrr(Op::sdiv, r0, r1, r2), 0), 4);
  Instruction movw;
  movw.op = Op::movw;
  movw.rd = r11;
  movw.uses_imm = true;
  movw.imm = 0xBEEF;
  EXPECT_EQ(codec.size_for(movw, 0), 4);
  Instruction bfi = ins_rrr(Op::bfi, r0, r1, 0);
  bfi.imm = 4;
  bfi.width = 8;
  EXPECT_EQ(codec.size_for(bfi, 0), 4);
}

TEST(B32, CbzEncodes) {
  const Codec& codec = b32_codec();
  Instruction cbz;
  cbz.op = Op::cbz;
  cbz.rn = r3;
  EXPECT_EQ(codec.size_for(cbz, 4), 2);
  EXPECT_EQ(codec.size_for(cbz, 130), 2);   // max: 4 + 126
  EXPECT_EQ(codec.size_for(cbz, 132), 0);   // out of range
  EXPECT_EQ(codec.size_for(cbz, -4), 0);    // backwards not allowed
}

TEST(B32, ArbitraryImm16ViaMovw) {
  // The §2.2 point: B32 can synthesize any 32-bit constant in 8 bytes
  // without touching a literal pool.
  const Codec& codec = b32_codec();
  Instruction w;
  w.op = Op::movw;
  w.rd = r4;
  w.uses_imm = true;
  w.imm = 0x5678;
  Instruction t = w;
  t.op = Op::movt;
  t.imm = 0x1234;
  EXPECT_EQ(codec.size_for(w, 0) + codec.size_for(t, 0), 8);
}

TEST(W32, EverythingIsFourBytes) {
  const Codec& codec = w32_codec();
  for (const Instruction& insn : corpus()) {
    const std::int64_t disp = is_pc_relative(insn) ? 16 : 0;
    const int size = codec.size_for(insn, disp);
    EXPECT_TRUE(size == 0 || size == 4) << disassemble(insn, 0);
  }
}

TEST(W32, PredicationEncodes) {
  const Codec& codec = w32_codec();
  Instruction i = ins_rri(Op::add, r1, r1, 4);
  i.cond = Cond::lt;
  std::vector<std::uint8_t> bytes;
  codec.encode(i, 0, 4, bytes);
  Instruction d;
  ASSERT_EQ(codec.decode(bytes, d), 4);
  EXPECT_EQ(d.cond, Cond::lt);
  EXPECT_EQ(d.op, Op::add);
}

TEST(W32, NoDivideNoMovw) {
  const Codec& codec = w32_codec();
  EXPECT_EQ(codec.size_for(ins_rrr(Op::sdiv, r0, r1, r2), 0), 0);
  EXPECT_EQ(codec.size_for(ins_rrr(Op::udiv, r0, r1, r2), 0), 0);
  Instruction movw;
  movw.op = Op::movw;
  movw.rd = r0;
  movw.uses_imm = true;
  movw.imm = 0x1234;
  EXPECT_EQ(codec.size_for(movw, 0), 0);
  EXPECT_EQ(codec.size_for(ins_it(Cond::eq, ""), 0), 0);
  Instruction clz;
  clz.op = Op::clz;
  clz.rd = r0;
  clz.rm = r1;
  EXPECT_EQ(codec.size_for(clz, 0), 0);
}

TEST(Cond, InvertPairs) {
  EXPECT_EQ(invert(Cond::eq), Cond::ne);
  EXPECT_EQ(invert(Cond::ne), Cond::eq);
  EXPECT_EQ(invert(Cond::lt), Cond::ge);
  EXPECT_EQ(invert(Cond::hi), Cond::ls);
  EXPECT_THROW((void)invert(Cond::al), std::logic_error);
}

TEST(Cond, Evaluation) {
  Flags f;
  f.z = true;
  EXPECT_TRUE(cond_holds(Cond::eq, f));
  EXPECT_FALSE(cond_holds(Cond::ne, f));
  EXPECT_TRUE(cond_holds(Cond::le, f));
  f = Flags{};
  f.n = true;
  f.v = false;
  EXPECT_TRUE(cond_holds(Cond::lt, f));
  EXPECT_FALSE(cond_holds(Cond::ge, f));
  f.v = true;
  EXPECT_TRUE(cond_holds(Cond::ge, f));
  EXPECT_TRUE(cond_holds(Cond::al, Flags{}));
}

TEST(It, MaskLayout) {
  // IT eq (single slot): mask 0b1000.
  EXPECT_EQ(ins_it(Cond::eq, "").it_mask, 0b1000);
  // ITT eq: second slot 'then' carries fc low bit (eq = 0) -> 0b0100.
  EXPECT_EQ(ins_it(Cond::eq, "t").it_mask, 0b0100);
  // ITE eq: second slot 'else' -> 1 at bit3, terminator bit2.
  EXPECT_EQ(ins_it(Cond::eq, "e").it_mask, 0b1100);
  // ITT ne (fc low bit 1): 0b1100; ITE ne: 0b0100.
  EXPECT_EQ(ins_it(Cond::ne, "t").it_mask, 0b1100);
  EXPECT_EQ(ins_it(Cond::ne, "e").it_mask, 0b0100);
}

}  // namespace
}  // namespace aces::isa
