#include <gtest/gtest.h>

#include "mem/bitband.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/fault_injector.h"
#include "mem/flash.h"
#include "mem/mpu.h"
#include "mem/sram.h"
#include "mem/tcm.h"

namespace aces::mem {
namespace {

// ----- Bus -------------------------------------------------------------------

TEST(Bus, RoutesToDevices) {
  Bus bus;
  Sram a("a", 0x100);
  Sram b("b", 0x100);
  bus.attach(0x1000, a);
  bus.attach(0x2000, b);
  ASSERT_TRUE(bus.write(0x1004, 4, 0xAABBCCDD, 0).ok());
  ASSERT_TRUE(bus.write(0x2004, 4, 0x11223344, 0).ok());
  EXPECT_EQ(bus.read(0x1004, 4, Access::read, 0).value, 0xAABBCCDDu);
  EXPECT_EQ(bus.read(0x2004, 4, Access::read, 0).value, 0x11223344u);
}

TEST(Bus, UnmappedFaults) {
  Bus bus;
  Sram a("a", 0x100);
  bus.attach(0x1000, a);
  EXPECT_EQ(bus.read(0x0, 4, Access::read, 0).fault, Fault::unmapped);
  EXPECT_EQ(bus.read(0x1100, 4, Access::read, 0).fault, Fault::unmapped);
  EXPECT_EQ(bus.write(0x5000, 4, 0, 0).fault, Fault::unmapped);
}

TEST(Bus, MisalignedFaults) {
  Bus bus;
  Sram a("a", 0x100);
  bus.attach(0x1000, a);
  EXPECT_EQ(bus.read(0x1001, 4, Access::read, 0).fault, Fault::misaligned);
  EXPECT_EQ(bus.read(0x1002, 4, Access::read, 0).fault, Fault::misaligned);
  EXPECT_EQ(bus.read(0x1001, 2, Access::read, 0).fault, Fault::misaligned);
  EXPECT_TRUE(bus.read(0x1002, 2, Access::read, 0).ok());
  EXPECT_TRUE(bus.read(0x1001, 1, Access::read, 0).ok());
}

TEST(Bus, OverlapRejected) {
  Bus bus;
  Sram a("a", 0x1000);
  Sram b("b", 0x1000);
  bus.attach(0x1000, a);
  EXPECT_THROW(bus.attach(0x1800, b), std::logic_error);
  EXPECT_NO_THROW(bus.attach(0x2000, b));
}

// The MRU last-device memo must be routing-transparent: interleaving hits,
// region switches, unmapped holes, boundary straddles and fault routing
// behaves identically with a cold and a warm memo.
TEST(Bus, MruMemoIsRoutingTransparent) {
  Bus bus;
  Sram a("a", 0x100);
  Sram b("b", 0x100);
  Flash flash(FlashConfig{.size_bytes = 0x100});
  bus.attach(0x1000, a);
  bus.attach(0x2000, b);
  bus.attach(0x3000, flash);
  ASSERT_TRUE(bus.write(0x1000, 4, 0x11111111, 0).ok());
  ASSERT_TRUE(bus.write(0x2000, 4, 0x22222222, 0).ok());

  for (int pass = 0; pass < 3; ++pass) {  // pass 0 cold, then memo-warm
    EXPECT_EQ(bus.read(0x1000, 4, Access::read, 0).value, 0x11111111u);
    EXPECT_EQ(bus.read(0x1000, 4, Access::read, 0).value, 0x11111111u);
    EXPECT_EQ(bus.read(0x2000, 4, Access::read, 0).value, 0x22222222u);
    // Unmapped hole between regions; the memo must not swallow it.
    EXPECT_EQ(bus.read(0x1100, 4, Access::read, 0).fault, Fault::unmapped);
    // Back to the memoized region.
    EXPECT_EQ(bus.read(0x1000, 4, Access::read, 0).value, 0x11111111u);
    // Straddling the end of a memoized device is still misaligned.
    EXPECT_EQ(bus.read(0x10FE, 4, Access::read, 0).fault, Fault::misaligned);
    EXPECT_EQ(bus.read(0x10FC, 4, Access::read, 0).fault, Fault::none);
    // Unaligned accesses fault before any routing.
    EXPECT_EQ(bus.read(0x1002, 4, Access::read, 0).fault, Fault::misaligned);
    // Fault routing through the write memo: flash rejects runtime writes
    // every time, even right after a successful SRAM write warmed the memo.
    ASSERT_TRUE(bus.write(0x2004, 4, pass, 0).ok());
    EXPECT_EQ(bus.write(0x3000, 4, 0, 0).fault, Fault::readonly);
    EXPECT_EQ(bus.write(0x1080, 2, 0xBEEF, 0).fault, Fault::none);
    EXPECT_EQ(bus.read(0x1080, 2, Access::read, 0).value, 0xBEEFu);
    // Fetch uses its own memo slot and routes independently.
    EXPECT_EQ(bus.read(0x3000, 4, Access::fetch, 0).fault, Fault::none);
    EXPECT_EQ(bus.read(0x2000, 4, Access::fetch, 0).value, 0x22222222u);
  }

  // Overlap diagnostics are unaffected by a warm memo.
  Sram c("c", 0x100);
  EXPECT_THROW(bus.attach(0x1080, c), std::logic_error);
  // Attaching into a hole after the failure still works and is routable.
  EXPECT_NO_THROW(bus.attach(0x1200, c));
  EXPECT_TRUE(bus.write(0x1200, 4, 7, 0).ok());
  EXPECT_EQ(bus.read(0x1200, 4, Access::read, 0).value, 7u);
}

TEST(Bus, WriteSnoopFiresOnlyInsideWatchWindow) {
  class Recorder final : public WriteSnoop {
   public:
    void watch(std::uint32_t lo, std::uint32_t hi) {
      watch_lo_ = lo;
      watch_hi_ = hi;
    }
    void on_write(std::uint32_t addr, std::uint32_t len) override {
      ++count;
      last_addr = addr;
      last_len = len;
    }
    int count = 0;
    std::uint32_t last_addr = 0;
    std::uint32_t last_len = 0;
  };

  Bus bus;
  Sram a("a", 0x1000);
  bus.attach(0x1000, a);
  Recorder rec;
  bus.set_write_snoop(&rec);

  // Empty window (the default): nothing fires.
  ASSERT_TRUE(bus.write(0x1000, 4, 1, 0).ok());
  EXPECT_EQ(rec.count, 0);

  rec.watch(0x1100, 0x1140);
  ASSERT_TRUE(bus.write(0x10FC, 4, 1, 0).ok());  // ends exactly at lo
  EXPECT_EQ(rec.count, 0);
  ASSERT_TRUE(bus.write(0x1140, 4, 1, 0).ok());  // starts exactly at hi
  EXPECT_EQ(rec.count, 0);
  ASSERT_TRUE(bus.write(0x113E, 2, 1, 0).ok());  // last bytes of the window
  EXPECT_EQ(rec.count, 1);
  EXPECT_EQ(rec.last_addr, 0x113Eu);
  // Faulted writes never snoop.
  EXPECT_EQ(bus.write(0x5000, 4, 1, 0).fault, Fault::unmapped);
  EXPECT_EQ(rec.count, 1);
  // load_image into the window snoops once with the whole range.
  const std::uint8_t img[] = {1, 2, 3, 4};
  ASSERT_TRUE(bus.load_image(0x1120, img, 4));
  EXPECT_EQ(rec.count, 2);
  EXPECT_EQ(rec.last_len, 4u);
}

TEST(Bus, DirectSpanResolvesRamAndDeclinesFlash) {
  Bus bus;
  Sram a("a", 0x100, 2);
  Flash flash(FlashConfig{.size_bytes = 0x100});
  bus.attach(0x1000, a);
  bus.attach(0x3000, flash);

  DirectSpan span;
  ASSERT_TRUE(bus.direct_span(0x1040, &span));
  EXPECT_EQ(span.base, 0x1000u);
  EXPECT_EQ(span.size, 0x100u);
  EXPECT_EQ(span.read_cycles, 2u);
  EXPECT_TRUE(span.writable);
  ASSERT_NE(span.data, nullptr);
  // The span is the device's real storage.
  ASSERT_TRUE(bus.write(0x1040, 4, 0xA5A55A5Au, 0).ok());
  EXPECT_EQ(span.data[0x40], 0x5Au);

  // Flash declines but reports its mapping range for negative caching.
  EXPECT_FALSE(bus.direct_span(0x3010, &span));
  EXPECT_EQ(span.data, nullptr);
  EXPECT_EQ(span.base, 0x3000u);
  EXPECT_EQ(span.size, 0x100u);

  // Unmapped: no span, no range.
  EXPECT_FALSE(bus.direct_span(0x9000, &span));
  EXPECT_EQ(span.size, 0u);
}

TEST(Bus, FixedFetchCostRegimes) {
  Bus bus;
  Sram a("a", 0x100, 3);
  Flash ideal(FlashConfig{.size_bytes = 0x100, .line_access_cycles = 1});
  Flash slow(FlashConfig{.size_bytes = 0x100, .line_access_cycles = 5});
  FlashConfig no_prefetch{.size_bytes = 0x100, .line_access_cycles = 5};
  no_prefetch.prefetch_enabled = false;
  Flash raw(no_prefetch);
  bus.attach(0x1000, a);
  bus.attach(0x3000, ideal);
  bus.attach(0x4000, slow);
  bus.attach(0x5000, raw);

  EXPECT_EQ(bus.fixed_fetch_cost(0x1000, 4), 3u);
  // Ideal flash: one cycle per 8-byte line touched.
  EXPECT_EQ(bus.fixed_fetch_cost(0x3000, 4), 1u);
  EXPECT_EQ(bus.fixed_fetch_cost(0x3006, 4), 2u);  // straddles a line
  // A stateful streamer must decline...
  EXPECT_EQ(bus.fixed_fetch_cost(0x4000, 4), std::nullopt);
  // ...but with the prefetcher off every fetch pays the full line time.
  EXPECT_EQ(bus.fixed_fetch_cost(0x5000, 4), 5u);
  EXPECT_EQ(bus.fixed_fetch_cost(0x5006, 4), 10u);
  // Unmapped / out of range: no answer.
  EXPECT_EQ(bus.fixed_fetch_cost(0x9000, 4), std::nullopt);
  EXPECT_EQ(bus.fixed_fetch_cost(0x10FE, 4), std::nullopt);
}

TEST(Bus, LoadImageProgramsDevices) {
  Bus bus;
  Flash flash(FlashConfig{.size_bytes = 0x1000});
  bus.attach(0, flash);
  const std::uint8_t img[] = {1, 2, 3, 4};
  ASSERT_TRUE(bus.load_image(0x10, img, 4));
  EXPECT_EQ(bus.read(0x10, 4, Access::read, 0).value, 0x04030201u);
  // Runtime writes to flash still fault.
  EXPECT_EQ(bus.write(0x10, 4, 0, 0).fault, Fault::readonly);
}

// ----- SRAM -------------------------------------------------------------------

TEST(Sram, ByteHalfWordAccess) {
  Sram s("s", 64);
  ASSERT_TRUE(s.write(0, 4, 0xDDCCBBAA, 0).ok());
  EXPECT_EQ(s.read(0, 1, Access::read, 0).value, 0xAAu);
  EXPECT_EQ(s.read(1, 1, Access::read, 0).value, 0xBBu);
  EXPECT_EQ(s.read(2, 2, Access::read, 0).value, 0xDDCCu);
  ASSERT_TRUE(s.write(1, 1, 0x55, 0).ok());
  EXPECT_EQ(s.read(0, 4, Access::read, 0).value, 0xDDCC55AAu);
}

// ----- Flash streamer ---------------------------------------------------------

FlashConfig small_flash() {
  FlashConfig c;
  c.size_bytes = 0x1000;
  c.line_access_cycles = 5;
  c.line_bytes = 8;
  return c;
}

TEST(Flash, SequentialFetchStreams) {
  Flash f(small_flash());
  std::uint64_t now = 0;
  // First fetch: full line access.
  auto r = f.read(0, 4, Access::fetch, now);
  EXPECT_EQ(r.cycles, 5u);
  now += r.cycles;
  // Second fetch in same line: buffer hit.
  r = f.read(4, 4, Access::fetch, now);
  EXPECT_EQ(r.cycles, 1u);
  now += r.cycles;
  // Fetch in next line: the prefetcher has been working since the first
  // access; some residual wait is possible but never more than a random
  // access.
  r = f.read(8, 4, Access::fetch, now);
  EXPECT_LE(r.cycles, 5u);
  now += r.cycles;
  // Once the core has burned a few execute cycles, the following line is
  // ready and the fetch is a genuine stream hit.
  now += 8;
  r = f.read(16, 4, Access::fetch, now);
  EXPECT_EQ(r.cycles, 1u);
}

TEST(Flash, SteadyStateStreamingIsCheap) {
  // Once the CPU consumes ~1 instruction/cycle+, the prefetcher keeps up
  // and the average fetch cost stays well under the random access time.
  Flash f(small_flash());
  std::uint64_t now = 100;
  std::uint64_t cycles = 0;
  for (std::uint32_t addr = 0; addr < 512; addr += 4) {
    const auto r = f.read(addr, 4, Access::fetch, now);
    // Model a core that spends 2 cycles executing what it fetched.
    now += r.cycles + 2;
    cycles += r.cycles;
  }
  EXPECT_LT(static_cast<double>(cycles) / 128.0, 2.0);
}

TEST(Flash, BranchBreaksStream) {
  Flash f(small_flash());
  std::uint64_t now = 0;
  now += f.read(0, 4, Access::fetch, now).cycles;
  now += f.read(4, 4, Access::fetch, now).cycles;
  // Non-sequential jump far ahead: full access again.
  const auto r = f.read(0x200, 4, Access::fetch, now);
  EXPECT_EQ(r.cycles, 5u);
  EXPECT_GE(f.stats().stream_breaks, 2u);
}

TEST(Flash, LiteralPoolReadDisruptsStream) {
  Flash f(small_flash());
  std::uint64_t now = 0;
  now += f.read(0, 4, Access::fetch, now).cycles;
  now += f.read(4, 4, Access::fetch, now).cycles;
  // Data read from a pool 256 bytes ahead: pays a full access...
  auto r = f.read(0x100, 4, Access::read, now);
  EXPECT_EQ(r.cycles, 5u);
  now += r.cycles;
  EXPECT_EQ(f.stats().data_disruptions, 1u);
  // ...and the NEXT instruction fetch also pays full price: the stream was
  // repositioned. This is the double penalty of §2.2.
  r = f.read(8, 4, Access::fetch, now);
  EXPECT_EQ(r.cycles, 5u);
}

TEST(Flash, DualBufferPreservesInstructionStream) {
  FlashConfig c = small_flash();
  c.dual_buffer = true;
  Flash f(c);
  std::uint64_t now = 0;
  now += f.read(0, 4, Access::fetch, now).cycles;
  now += f.read(4, 4, Access::fetch, now).cycles;
  now += f.read(0x100, 4, Access::read, now).cycles;  // data via own buffer
  // Instruction stream intact: next-line fetch is not a full re-access.
  const auto r = f.read(8, 4, Access::fetch, now);
  EXPECT_LT(r.cycles, 5u);
  EXPECT_EQ(f.stats().data_disruptions, 0u);
}

TEST(Flash, PrefetchDisabledAlwaysPaysFullLatency) {
  FlashConfig c = small_flash();
  c.prefetch_enabled = false;
  Flash f(c);
  std::uint64_t now = 0;
  for (std::uint32_t addr = 0; addr < 64; addr += 4) {
    const auto r = f.read(addr, 4, Access::fetch, now);
    EXPECT_EQ(r.cycles, 5u);
    now += r.cycles;
  }
}

TEST(Flash, WritesFault) {
  Flash f(small_flash());
  EXPECT_EQ(f.write(0, 4, 1, 0).fault, Fault::readonly);
}

// ----- TCM ---------------------------------------------------------------------

TEST(Tcm, HoldAndRepairDeliversCorrectData) {
  TcmConfig c;
  c.size_bytes = 256;
  c.fault_tolerant = true;
  c.repair_cycles = 6;
  Tcm tcm(c);
  ASSERT_TRUE(tcm.write(0x10, 4, 0xCAFEBABE, 0).ok());
  tcm.inject_bit_flips(0x11, 0x04);
  const auto r = tcm.read(0x10, 4, Access::read, 0);
  EXPECT_EQ(r.value, 0xCAFEBABEu);        // corrected
  EXPECT_TRUE(r.soft_error_recovered);
  EXPECT_EQ(r.cycles, 1u + 6u);           // stall included
  EXPECT_FALSE(r.silently_corrupt);
  // Repaired: the next read is clean and fast.
  const auto r2 = tcm.read(0x10, 4, Access::read, 0);
  EXPECT_EQ(r2.cycles, 1u);
  EXPECT_FALSE(r2.soft_error_recovered);
  EXPECT_EQ(tcm.stats().repairs, 1u);
}

TEST(Tcm, UnprotectedReadIsSilentlyCorrupt) {
  TcmConfig c;
  c.size_bytes = 256;
  c.fault_tolerant = false;
  Tcm tcm(c);
  ASSERT_TRUE(tcm.write(0x10, 4, 0xCAFEBABE, 0).ok());
  tcm.inject_bit_flips(0x11, 0x04);
  const auto r = tcm.read(0x10, 4, Access::read, 0);
  EXPECT_NE(r.value, 0xCAFEBABEu);
  EXPECT_TRUE(r.silently_corrupt);
  EXPECT_EQ(r.value, 0xCAFEBABEu ^ 0x0400u);
  EXPECT_EQ(tcm.stats().silent_corruptions, 1u);
}

TEST(Tcm, OverwriteClearsUpset) {
  TcmConfig c;
  c.size_bytes = 64;
  c.fault_tolerant = false;
  Tcm tcm(c);
  tcm.inject_bit_flips(0x0, 0xFF);
  ASSERT_TRUE(tcm.write(0x0, 4, 0x12345678, 0).ok());
  const auto r = tcm.read(0x0, 4, Access::read, 0);
  EXPECT_EQ(r.value, 0x12345678u);
  EXPECT_FALSE(r.silently_corrupt);
}

// ----- Bit-band -----------------------------------------------------------------

TEST(BitBand, WriteSetsAndClearsBits) {
  Sram ram("ram", 256);
  BitBandAlias bb(ram, 256);
  // Set bit 3 of byte 5: alias word = 5*32 + 3*4.
  ASSERT_TRUE(bb.write(5 * 32 + 3 * 4, 4, 1, 0).ok());
  EXPECT_EQ(ram.read(5, 1, Access::read, 0).value, 0x08u);
  // Set another bit; clear the first.
  ASSERT_TRUE(bb.write(5 * 32 + 6 * 4, 4, 1, 0).ok());
  ASSERT_TRUE(bb.write(5 * 32 + 3 * 4, 4, 0, 0).ok());
  EXPECT_EQ(ram.read(5, 1, Access::read, 0).value, 0x40u);
}

TEST(BitBand, ReadReturnsBit) {
  Sram ram("ram", 256);
  BitBandAlias bb(ram, 256);
  ASSERT_TRUE(ram.write(7, 1, 0xA5, 0).ok());  // 1010 0101
  EXPECT_EQ(bb.read(7 * 32 + 0 * 4, 4, Access::read, 0).value, 1u);
  EXPECT_EQ(bb.read(7 * 32 + 1 * 4, 4, Access::read, 0).value, 0u);
  EXPECT_EQ(bb.read(7 * 32 + 2 * 4, 4, Access::read, 0).value, 1u);
  EXPECT_EQ(bb.read(7 * 32 + 7 * 4, 4, Access::read, 0).value, 1u);
}

TEST(BitBand, OnlyTouchesTargetBit) {
  Sram ram("ram", 256);
  BitBandAlias bb(ram, 256);
  ASSERT_TRUE(ram.write(9, 1, 0xFF, 0).ok());
  ASSERT_TRUE(bb.write(9 * 32 + 4 * 4, 4, 0, 0).ok());  // clear bit 4
  EXPECT_EQ(ram.read(9, 1, Access::read, 0).value, 0xEFu);
}

TEST(BitBand, AliasSizeIs32xTarget) {
  Sram ram("ram", 1024);
  BitBandAlias bb(ram, 1024);
  EXPECT_EQ(bb.size_bytes(), 1024u * 32u);
}

TEST(BitBand, RejectsNonWordAccess) {
  Sram ram("ram", 64);
  BitBandAlias bb(ram, 64);
  EXPECT_NE(bb.read(0, 1, Access::read, 0).fault, Fault::none);
  EXPECT_NE(bb.write(0, 2, 1, 0).fault, Fault::none);
}

TEST(BitBand, OnBusAlongsideTarget) {
  Bus bus;
  Sram ram("ram", 0x1000);
  BitBandAlias bb(ram, 0x1000);
  bus.attach(0x2000'0000u, ram);
  bus.attach(0x2200'0000u, bb);
  ASSERT_TRUE(bus.write(0x2200'0000u + 0x40u * 32u + 5u * 4u, 4, 1, 0).ok());
  EXPECT_EQ(bus.read(0x2000'0040u, 1, Access::read, 0).value, 0x20u);
}

// ----- Cache --------------------------------------------------------------------

struct CacheFixture {
  Bus bus;
  Flash flash{small_flash()};
  Sram sram{"sram", 0x1000};
  CacheFixture() {
    bus.attach(0x0000, flash);
    bus.attach(0x8000, sram);
  }
  Cache make(bool ft = false) {
    CacheConfig c;
    c.line_bytes = 16;
    c.num_sets = 4;
    c.ways = 2;
    c.fault_tolerant = ft;
    c.cacheable_limit = 0x8000;  // only the flash is cached
    return Cache(c, bus);
  }
  void seed(std::uint32_t addr, std::uint32_t value) {
    const std::uint8_t bytes[4] = {
        static_cast<std::uint8_t>(value), static_cast<std::uint8_t>(value >> 8),
        static_cast<std::uint8_t>(value >> 16),
        static_cast<std::uint8_t>(value >> 24)};
    ASSERT_TRUE(bus.load_image(addr, bytes, 4));
  }
};

TEST(Cache, MissThenHit) {
  CacheFixture f;
  f.seed(0x20, 0x1234'5678);
  Cache cache = f.make();
  const auto miss = cache.read(0x20, 4, Access::fetch, 0);
  EXPECT_EQ(miss.value, 0x12345678u);
  const auto hit = cache.read(0x20, 4, Access::fetch, 100);
  EXPECT_EQ(hit.value, 0x12345678u);
  EXPECT_LT(hit.cycles, miss.cycles);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SpatialLocalityWithinLine) {
  CacheFixture f;
  f.seed(0x40, 0xAAAAAAAA);
  f.seed(0x44, 0xBBBBBBBB);
  Cache cache = f.make();
  (void)cache.read(0x40, 4, Access::read, 0);
  const auto r = cache.read(0x44, 4, Access::read, 10);
  EXPECT_EQ(r.value, 0xBBBBBBBBu);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(Cache, LruEviction) {
  CacheFixture f;
  Cache cache = f.make();
  // Set 0 with 2 ways and 4 sets x 16B lines: addresses 0x000, 0x040,
  // 0x080 all map to set 0 (stride = sets * line = 64).
  (void)cache.read(0x000, 4, Access::read, 0);
  (void)cache.read(0x040, 4, Access::read, 10);
  (void)cache.read(0x000, 4, Access::read, 20);  // refresh LRU of line 0
  (void)cache.read(0x080, 4, Access::read, 30);  // evicts 0x040
  cache.reset_stats();
  (void)cache.read(0x000, 4, Access::read, 40);
  EXPECT_EQ(cache.stats().hits, 1u);
  (void)cache.read(0x040, 4, Access::read, 50);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, WriteThroughUpdatesBothSides) {
  CacheFixture f;
  Cache cache = f.make();
  CacheConfig sc = cache.config();
  (void)sc;
  // Use the SRAM region via a second cache that covers it.
  CacheConfig c;
  c.line_bytes = 16;
  c.num_sets = 4;
  c.ways = 1;
  c.cacheable_base = 0x8000;
  c.cacheable_limit = 0x9000;
  Cache dcache(c, f.bus);
  ASSERT_TRUE(dcache.write(0x8010, 4, 0x55AA55AA, 0).ok());
  // Memory behind the cache sees it immediately (write-through).
  EXPECT_EQ(f.bus.read(0x8010, 4, Access::read, 0).value, 0x55AA55AAu);
  // And a read through the cache agrees.
  EXPECT_EQ(dcache.read(0x8010, 4, Access::read, 0).value, 0x55AA55AAu);
}

TEST(Cache, NonCacheableBypasses) {
  CacheFixture f;
  Cache cache = f.make();
  ASSERT_TRUE(cache.write(0x8004, 4, 7, 0).ok());
  (void)cache.read(0x8004, 4, Access::read, 0);
  EXPECT_EQ(cache.stats().hits + cache.stats().misses, 0u);
}

TEST(Cache, SoftErrorSilentWithoutFt) {
  CacheFixture f;
  f.seed(0x20, 0xDEADBEEF);
  Cache cache = f.make(/*ft=*/false);
  (void)cache.read(0x20, 4, Access::read, 0);
  support::Rng256 rng(1);
  // Flip data bits until the stored line is corrupted (tag_fraction 0).
  for (int k = 0; k < 200; ++k) {
    ASSERT_TRUE(cache.flip_random_bit(rng, 0.0));
  }
  const auto r = cache.read(0x20, 4, Access::read, 10);
  // With 200 random flips over a single 16-byte line, the target word is
  // overwhelmingly likely corrupted; tolerate the rare clean case.
  if (r.silently_corrupt) {
    EXPECT_GE(cache.stats().silent_corruptions, 1u);
    EXPECT_FALSE(r.soft_error_recovered);
  }
}

TEST(Cache, SoftErrorRecoveredWithFt) {
  CacheFixture f;
  f.seed(0x20, 0xDEADBEEF);
  Cache cache = f.make(/*ft=*/true);
  (void)cache.read(0x20, 4, Access::read, 0);
  support::Rng256 rng(1);
  for (int k = 0; k < 200; ++k) {
    ASSERT_TRUE(cache.flip_random_bit(rng, 0.0));
  }
  const auto r = cache.read(0x20, 4, Access::read, 10);
  EXPECT_EQ(r.value, 0xDEADBEEFu);  // always corrected
  EXPECT_FALSE(r.silently_corrupt);
  // Either that word was clean (rare) or a recovery happened.
  if (r.soft_error_recovered) {
    EXPECT_GE(cache.stats().data_aborts_recovered, 1u);
    EXPECT_GT(r.cycles, 20u);  // abort recovery penalty included
  }
}

TEST(Cache, IFetchRecoveryIsInvalidateAndRefill) {
  CacheFixture f;
  f.seed(0x20, 0xDEADBEEF);
  Cache cache = f.make(/*ft=*/true);
  (void)cache.read(0x20, 4, Access::fetch, 0);
  support::Rng256 rng(3);
  for (int k = 0; k < 200; ++k) {
    ASSERT_TRUE(cache.flip_random_bit(rng, 0.0));
  }
  const auto r = cache.read(0x20, 4, Access::fetch, 10);
  EXPECT_EQ(r.value, 0xDEADBEEFu);
  if (r.soft_error_recovered) {
    EXPECT_GE(cache.stats().ifetch_refills, 1u);
    EXPECT_EQ(cache.stats().data_aborts_recovered, 0u);
  }
}

TEST(Cache, TagErrorBecomesMissUnderFt) {
  CacheFixture f;
  f.seed(0x20, 0xDEADBEEF);
  Cache cache = f.make(/*ft=*/true);
  (void)cache.read(0x20, 4, Access::read, 0);
  support::Rng256 rng(5);
  for (int k = 0; k < 50; ++k) {
    ASSERT_TRUE(cache.flip_random_bit(rng, 1.0));  // tag only
  }
  cache.reset_stats();
  const auto r = cache.read(0x20, 4, Access::read, 10);
  EXPECT_EQ(r.value, 0xDEADBEEFu);  // refetched from memory
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_GE(cache.stats().tag_errors_detected, 1u);
}

// ----- MPU ----------------------------------------------------------------------

TEST(Mpu, CoarseRejectsSmallRegions) {
  Mpu mpu(MpuConfig::coarse());
  MpuRegion r;
  r.base = 0x1000;
  r.size = 256;  // below 4 KB granule
  r.read = true;
  EXPECT_THROW(mpu.set_region(0, r), std::logic_error);
  r.size = 4096;
  EXPECT_NO_THROW(mpu.set_region(0, r));
  r.size = 12288;  // not a power of two
  r.base = 0;
  EXPECT_THROW(mpu.set_region(1, r), std::logic_error);
}

TEST(Mpu, CoarseRequiresNaturalAlignment) {
  Mpu mpu(MpuConfig::coarse());
  MpuRegion r;
  r.size = 8192;
  r.base = 4096;  // not aligned to 8 KB
  r.read = true;
  EXPECT_THROW(mpu.set_region(0, r), std::logic_error);
  r.base = 8192;
  EXPECT_NO_THROW(mpu.set_region(0, r));
}

TEST(Mpu, FineAllowsSmallAlignedRegions) {
  Mpu mpu(MpuConfig::fine());
  MpuRegion r;
  r.base = 0x1020;
  r.size = 96;  // 3 granules
  r.read = true;
  r.write = true;
  EXPECT_NO_THROW(mpu.set_region(0, r));
  r.base = 0x1010;  // not 32-byte aligned
  EXPECT_THROW(mpu.set_region(1, r), std::logic_error);
}

TEST(Mpu, SmallestRegionSpan) {
  Mpu coarse(MpuConfig::coarse());
  Mpu fine(MpuConfig::fine());
  EXPECT_EQ(coarse.smallest_region_span(100), 4096u);
  EXPECT_EQ(coarse.smallest_region_span(5000), 8192u);
  EXPECT_EQ(coarse.smallest_region_span(9000), 16384u);
  EXPECT_EQ(fine.smallest_region_span(100), 128u);
  EXPECT_EQ(fine.smallest_region_span(5000), 5024u);
  EXPECT_EQ(fine.smallest_region_span(32), 32u);
}

struct MpuPermCase {
  bool read, write, execute;
  Access kind;
  bool expect_allowed;
};

class MpuPermissions : public ::testing::TestWithParam<MpuPermCase> {};

TEST_P(MpuPermissions, Matrix) {
  const MpuPermCase& c = GetParam();
  MpuConfig config = MpuConfig::fine();
  config.privileged_background = false;
  Mpu mpu(config);
  MpuRegion r;
  r.base = 0x1000;
  r.size = 0x100;
  r.read = c.read;
  r.write = c.write;
  r.execute = c.execute;
  mpu.set_region(0, r);
  const Fault f = mpu.check(0x1010, 4, c.kind, /*privileged=*/false);
  EXPECT_EQ(f == Fault::none, c.expect_allowed);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, MpuPermissions,
    ::testing::Values(
        MpuPermCase{true, false, false, Access::read, true},
        MpuPermCase{true, false, false, Access::write, false},
        MpuPermCase{true, false, false, Access::fetch, false},
        MpuPermCase{false, true, false, Access::write, true},
        MpuPermCase{false, true, false, Access::read, false},
        MpuPermCase{false, false, true, Access::fetch, true},
        MpuPermCase{false, false, true, Access::read, false},
        MpuPermCase{true, true, false, Access::read, true},
        MpuPermCase{true, true, false, Access::write, true},
        MpuPermCase{true, true, false, Access::fetch, false},
        MpuPermCase{false, false, false, Access::read, false}));

TEST(Mpu, HigherRegionWins) {
  MpuConfig config = MpuConfig::fine();
  config.privileged_background = false;
  Mpu mpu(config);
  MpuRegion lo;
  lo.base = 0x1000;
  lo.size = 0x1000;
  lo.read = true;
  lo.write = true;
  mpu.set_region(0, lo);
  MpuRegion hi;
  hi.base = 0x1800;
  hi.size = 0x100;
  hi.read = true;  // read-only carve-out
  mpu.set_region(7, hi);
  EXPECT_EQ(mpu.check(0x1004, 4, Access::write, false), Fault::none);
  EXPECT_EQ(mpu.check(0x1804, 4, Access::write, false),
            Fault::mpu_violation);
  EXPECT_EQ(mpu.check(0x1804, 4, Access::read, false), Fault::none);
}

TEST(Mpu, PrivilegedBackground) {
  Mpu mpu(MpuConfig::fine());  // background on
  EXPECT_EQ(mpu.check(0x9000, 4, Access::read, /*privileged=*/true),
            Fault::none);
  EXPECT_EQ(mpu.check(0x9000, 4, Access::read, /*privileged=*/false),
            Fault::mpu_violation);
}

TEST(Mpu, ExplicitDenyBeatsBackground) {
  Mpu mpu(MpuConfig::fine());
  MpuRegion r;
  r.base = 0x2000;
  r.size = 0x100;
  r.read = true;  // no write
  mpu.set_region(0, r);
  // Privileged write inside the region: the region match denies it even
  // though the privileged background would allow unmapped addresses.
  EXPECT_EQ(mpu.check(0x2010, 4, Access::write, true), Fault::mpu_violation);
}

TEST(Mpu, PrivilegedOnlyRegions) {
  MpuConfig config = MpuConfig::fine();
  config.privileged_background = false;
  Mpu mpu(config);
  MpuRegion r;
  r.base = 0x3000;
  r.size = 0x100;
  r.read = true;
  r.privileged_only = true;
  mpu.set_region(0, r);
  EXPECT_EQ(mpu.check(0x3000, 4, Access::read, true), Fault::none);
  EXPECT_EQ(mpu.check(0x3000, 4, Access::read, false),
            Fault::mpu_violation);
}

TEST(Mpu, ViolationStats) {
  MpuConfig config = MpuConfig::fine();
  config.privileged_background = false;
  Mpu mpu(config);
  (void)mpu.check(0, 4, Access::read, false);
  (void)mpu.check(4, 4, Access::read, false);
  EXPECT_EQ(mpu.stats().checks, 2u);
  EXPECT_EQ(mpu.stats().violations, 2u);
}

// ----- Fault injector ------------------------------------------------------------

TEST(FaultInjector, DeterministicForSeed) {
  const auto run = [] {
    TcmConfig tc;
    tc.size_bytes = 1024;
    tc.fault_tolerant = true;
    Tcm tcm(tc);
    FaultInjectorConfig fc;
    fc.upsets_per_mcycle = 50.0;
    FaultInjector inj(fc, support::Rng256(99));
    inj.attach(tcm);
    (void)inj.advance_to(2'000'000);
    return inj.injected();
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  EXPECT_NEAR(static_cast<double>(a), 100.0, 3.0);
}

TEST(FaultInjector, RateScalesWithTime) {
  TcmConfig tc;
  tc.size_bytes = 1024;
  Tcm tcm(tc);
  FaultInjectorConfig fc;
  fc.upsets_per_mcycle = 10.0;
  FaultInjector inj(fc, support::Rng256(7));
  inj.attach(tcm);
  (void)inj.advance_to(10'000'000);
  EXPECT_NEAR(static_cast<double>(inj.injected()), 100.0, 3.0);
}

}  // namespace
}  // namespace aces::mem
