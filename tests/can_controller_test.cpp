// Memory-mapped CAN controller tests: register file semantics, FIFO and
// interrupt protocol, and the full guest-ISR path over an arbitrated bus.
#include <gtest/gtest.h>

#include "can/controller.h"
#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/assembler.h"
#include "sim/event_queue.h"

namespace aces::can {
namespace {

using Ctl = CanController;

// Host-side register helpers (the controller is a mem::Device; tests talk
// to it the way the bus would).
std::uint32_t rd(Ctl& c, std::uint32_t reg) {
  const mem::MemResult r = c.read(reg, 4, mem::Access::read, 0);
  EXPECT_TRUE(r.ok());
  return r.value;
}

void wr(Ctl& c, std::uint32_t reg, std::uint32_t value) {
  EXPECT_TRUE(c.write(reg, 4, value, 0).ok());
}

struct TwoNodes {
  sim::EventQueue queue;
  CanBus bus{queue, 1'000'000};  // 1 Mbps: 1 µs bit time
  Ctl a{bus, "a", Ctl::Config{}};
  Ctl b{bus, "b", Ctl::Config{}};

  void run() { queue.run_until(queue.now() + 100 * sim::kMillisecond); }
};

TEST(CanController, TransmitDeliversToTheOtherNodeOnly) {
  TwoNodes t;
  wr(t.a, Ctl::kTxId, 0x123);
  wr(t.a, Ctl::kTxDlc, 8);
  wr(t.a, Ctl::kTxData0, 0x44332211u);
  wr(t.a, Ctl::kTxData1, 0x88776655u);
  wr(t.a, Ctl::kTxCmd, 1);
  EXPECT_EQ(rd(t.a, Ctl::kStatus) & Ctl::kStatusTxBusy, Ctl::kStatusTxBusy);
  t.run();

  // Receiver sees the frame bit-exact; transmitter does not hear itself.
  EXPECT_EQ(rd(t.b, Ctl::kStatus) & Ctl::kStatusRxne, Ctl::kStatusRxne);
  EXPECT_EQ(rd(t.b, Ctl::kRxId), 0x123u);
  EXPECT_EQ(rd(t.b, Ctl::kRxDlc), 8u);
  EXPECT_EQ(rd(t.b, Ctl::kRxData0), 0x44332211u);
  EXPECT_EQ(rd(t.b, Ctl::kRxData1), 0x88776655u);
  EXPECT_EQ(rd(t.a, Ctl::kStatus) & Ctl::kStatusRxne, 0u);

  // TX-complete latched on the sender; busy dropped.
  EXPECT_EQ(rd(t.a, Ctl::kStatus) & Ctl::kStatusTxBusy, 0u);
  EXPECT_EQ(rd(t.a, Ctl::kIrq) & Ctl::kIrqTxDone, Ctl::kIrqTxDone);
  wr(t.a, Ctl::kIrqAck, Ctl::kIrqTxDone);
  EXPECT_EQ(rd(t.a, Ctl::kIrq) & Ctl::kIrqTxDone, 0u);
  EXPECT_EQ(t.a.stats().frames_transmitted, 1u);
  EXPECT_EQ(t.b.stats().frames_received, 1u);

  // Popping the lone frame clears RXNE and the RX interrupt bit.
  wr(t.b, Ctl::kRxPop, 1);
  EXPECT_EQ(rd(t.b, Ctl::kStatus) & Ctl::kStatusRxne, 0u);
  EXPECT_EQ(rd(t.b, Ctl::kIrq) & Ctl::kIrqRx, 0u);
}

TEST(CanController, TxIdIsMaskedPerFormatAndDlcClamped) {
  TwoNodes t;
  // Standard frame: identifier masked to 11 bits, stray id bits dropped.
  wr(t.a, Ctl::kTxId, 0x3FFF'F95Au);
  wr(t.a, Ctl::kTxDlc, 99);
  EXPECT_EQ(rd(t.a, Ctl::kTxId), 0x15Au);
  EXPECT_EQ(rd(t.a, Ctl::kTxDlc), 8u);
  // Extended frame (bit31 IDE): 29-bit mask, flags read back.
  wr(t.a, Ctl::kTxId, Ctl::kIdExtended | 0x1765'4321u);
  EXPECT_EQ(rd(t.a, Ctl::kTxId), Ctl::kIdExtended | 0x1765'4321u);
  // Remote frame flag (bit30) is kept alongside the identifier.
  wr(t.a, Ctl::kTxId, Ctl::kIdRtr | 0x0123u);
  EXPECT_EQ(rd(t.a, Ctl::kTxId), Ctl::kIdRtr | 0x0123u);
}

TEST(CanController, ExtendedFrameRoundTripsOverTheBus) {
  TwoNodes t;
  wr(t.a, Ctl::kTxId, Ctl::kIdExtended | 0x1ABC'DE42u);
  wr(t.a, Ctl::kTxDlc, 3);
  wr(t.a, Ctl::kTxData0, 0x00332211u);
  wr(t.a, Ctl::kTxCmd, 1);
  t.run();
  EXPECT_EQ(rd(t.b, Ctl::kRxId), Ctl::kIdExtended | 0x1ABC'DE42u);
  EXPECT_EQ(rd(t.b, Ctl::kRxDlc), 3u);
  EXPECT_EQ(rd(t.b, Ctl::kRxData0), 0x00332211u);
}

TEST(CanController, RxFifoOverflowDropsAndLatches) {
  sim::EventQueue queue;
  CanBus bus(queue, 1'000'000);
  Ctl::Config small;
  small.rx_fifo_depth = 2;
  Ctl rx(bus, "rx", small);
  Ctl tx(bus, "tx", Ctl::Config{});
  for (std::uint32_t k = 0; k < 4; ++k) {
    wr(tx, Ctl::kTxId, 0x100 + k);
    wr(tx, Ctl::kTxDlc, 1);
    wr(tx, Ctl::kTxCmd, 1);
  }
  queue.run_until(queue.now() + sim::kSecond);

  EXPECT_EQ(rx.rx_fifo_depth(), 2u);
  EXPECT_EQ(rx.stats().frames_received, 2u);
  EXPECT_EQ(rx.stats().frames_dropped, 2u);
  EXPECT_EQ(rd(rx, Ctl::kStatus) & Ctl::kStatusRxOvr, Ctl::kStatusRxOvr);
  EXPECT_EQ(rd(rx, Ctl::kIrq) & Ctl::kIrqRxOvr, Ctl::kIrqRxOvr);
  wr(rx, Ctl::kIrqAck, Ctl::kIrqRxOvr);
  EXPECT_EQ(rd(rx, Ctl::kStatus) & Ctl::kStatusRxOvr, 0u);

  // FIFO kept the oldest frames, in arrival order.
  EXPECT_EQ(rd(rx, Ctl::kRxId), 0x100u);
  wr(rx, Ctl::kRxPop, 1);
  EXPECT_EQ(rd(rx, Ctl::kRxId), 0x101u);
}

TEST(CanController, IrqLinesFollowTheEnableBitsAndRearmOnPop) {
  TwoNodes t;
  std::vector<unsigned> raised;
  std::vector<unsigned> cleared;
  t.b.connect_irq([&raised](unsigned line) { raised.push_back(line); },
                  [&cleared](unsigned line) { cleared.push_back(line); });

  // Interrupts disabled: traffic arrives silently.
  wr(t.a, Ctl::kTxId, 0x10);
  wr(t.a, Ctl::kTxCmd, 1);
  t.run();
  EXPECT_TRUE(raised.empty());

  // Enable RX interrupts; two more frames -> a raise per arrival.
  wr(t.b, Ctl::kCtrl, Ctl::kCtrlRxie);
  wr(t.a, Ctl::kTxId, 0x11);
  wr(t.a, Ctl::kTxCmd, 1);
  t.run();
  wr(t.a, Ctl::kTxId, 0x12);
  wr(t.a, Ctl::kTxCmd, 1);
  t.run();
  ASSERT_EQ(raised.size(), 2u);
  EXPECT_EQ(raised[0], Ctl::Config{}.rx_line);

  // Three frames queued; popping one while more remain re-raises the line
  // (one-frame-per-ISR-entry handlers never strand traffic). Popping down
  // to empty clears it.
  wr(t.b, Ctl::kRxPop, 1);
  EXPECT_EQ(raised.size(), 3u);
  wr(t.b, Ctl::kRxPop, 1);
  EXPECT_EQ(raised.size(), 4u);
  wr(t.b, Ctl::kRxPop, 1);
  EXPECT_EQ(raised.size(), 4u);
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], Ctl::Config{}.rx_line);
}

TEST(CanController, RegisterFileFaultsOnBadAccess) {
  TwoNodes t;
  // Sub-word and halfword accesses fault as misaligned (word register file).
  EXPECT_EQ(t.a.read(Ctl::kStatus, 1, mem::Access::read, 0).fault,
            mem::Fault::misaligned);
  EXPECT_EQ(t.a.read(Ctl::kStatus, 2, mem::Access::read, 0).fault,
            mem::Fault::misaligned);
  EXPECT_EQ(t.a.write(Ctl::kCtrl, 1, 1, 0).fault, mem::Fault::misaligned);
  // Instruction fetch from a peripheral faults.
  EXPECT_FALSE(t.a.read(Ctl::kCtrl, 4, mem::Access::fetch, 0).ok());
  // Reserved offsets (inside the window, past the last register) report
  // unmapped, not misaligned — the access itself was well-formed.
  EXPECT_EQ(t.a.read(0x3C, 4, mem::Access::read, 0).fault,
            mem::Fault::unmapped);
  EXPECT_EQ(t.a.write(0x3C, 4, 0, 0).fault, mem::Fault::unmapped);
}

TEST(CanController, TxCompleteHandlerMayChainTheNextFrame) {
  // Mailbox chaining: queue the next frame from inside the TX-complete
  // callback. The bus must tolerate the synchronous re-send (regression:
  // the end-of-frame event used to re-run arbitration unconditionally and
  // trip its not-busy invariant).
  sim::EventQueue queue;
  CanBus bus(queue, 1'000'000);
  const NodeId chainer = bus.attach_node("chainer");
  const NodeId listener = bus.attach_node("listener");
  int sent = 0;
  bus.subscribe_tx(chainer, [&](const CanFrame&, sim::SimTime) {
    if (++sent < 3) {
      CanFrame next;
      next.id = 0x40u + static_cast<std::uint32_t>(sent);
      bus.send(chainer, next);
    }
  });
  std::vector<std::uint32_t> heard;
  bus.subscribe(listener, [&heard](const CanFrame& f, sim::SimTime) {
    heard.push_back(f.id);
  });
  CanFrame first;
  first.id = 0x40;
  bus.send(chainer, first);
  queue.run_until(sim::kSecond);
  EXPECT_EQ(heard, (std::vector<std::uint32_t>{0x40, 0x41, 0x42}));
}

// ----- end to end: guest ISR services bus traffic ---------------------------
//
// A modern-MCU system maps the controller at kPeriphBase and owns an Ivc;
// the controller's RX line is wired into Ivc line 1. A second (host-side)
// controller plays the sensor. The guest's ISR reads the frame, folds it
// into a checksum in SRAM, pops the FIFO and acknowledges — all through
// the register file.
TEST(CanController, GuestIsrServicesRxTraffic) {
  using namespace aces::isa;
  namespace cpu = aces::cpu;

  constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
  constexpr std::uint32_t kSum = cpu::kSramBase + 0x100;
  constexpr std::uint32_t kCount = cpu::kSramBase + 0x104;
  constexpr unsigned kRxLine = 1;

  sim::EventQueue queue;
  CanBus bus(queue, 1'000'000);
  Ctl::Config cc;
  cc.rx_line = kRxLine;
  Ctl ecu(bus, "ecu", cc);
  Ctl sensor(bus, "sensor", Ctl::Config{});

  // Guest program: main loop spins; ISR drains one frame per entry.
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r6, r6, 1, SetFlags::any));
  a.b(top);
  a.pool();
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, Ctl::kRxId));
  a.ins(ins_ldst_imm(Op::ldr, r2, r0, Ctl::kRxData0));
  a.ins(ins_rrr(Op::add, r1, r1, r2, SetFlags::any));
  a.load_literal(r3, kSum);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rrr(Op::add, r2, r2, r1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 4));       // ++count
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 4));
  a.ins(ins_mov_imm(r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r2, r0, Ctl::kIrqAck));  // ack bit0 = RX
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  cpu::Ivc::Config ic;
  ic.vector_table = kVectors;
  ic.lines = 4;
  cpu::System sys(cpu::profiles::modern_mcu()
                      .device(cpu::kPeriphBase, ecu)
                      .ivc(ic));
  sys.load(image);
  const std::uint32_t v = a.label_address(isr);
  const std::uint8_t vb[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  ASSERT_TRUE(sys.bus().load_image(kVectors + 4 * kRxLine, vb, 4));
  sys.ivc()->enable_line(kRxLine, 32);

  // Wire the controller's lines into the owned Ivc.
  ecu.connect_irq(
      [&sys](unsigned line) { sys.ivc()->raise(line, sys.core().cycles()); },
      [&sys](unsigned line) { sys.ivc()->clear(line); });

  // Clock bridge: 1 MHz guest -> 1 cycle = 1000 ns of bus time.
  sys.set_cycle_hook([&queue](std::uint64_t now) {
    queue.run_until(static_cast<sim::SimTime>(now) * 1000);
  });

  // Enable RX interrupts from the guest's side of the fence (host pokes the
  // register the way start-up code would).
  ASSERT_TRUE(
      sys.bus().write(cpu::kPeriphBase + Ctl::kCtrl, 4, Ctl::kCtrlRxie, 0)
          .ok());

  // Sensor pushes three frames, spaced out in bus time.
  std::uint32_t expected_sum = 0;
  for (std::uint32_t k = 0; k < 3; ++k) {
    queue.schedule_at((k + 1) * 200 * sim::kMicrosecond, [&sensor, k] {
      wr(sensor, Ctl::kTxId, 0x200 + k);
      wr(sensor, Ctl::kTxDlc, 4);
      wr(sensor, Ctl::kTxData0, 0x1000 * (k + 1));
      wr(sensor, Ctl::kTxCmd, 1);
    });
    expected_sum += (0x200 + k) + 0x1000 * (k + 1);
  }

  sys.core().reset(a.label_address(entry), sys.initial_sp());
  for (int k = 0;
       k < 200'000 &&
       sys.bus().read(kCount, 4, mem::Access::read, 0).value < 3;
       ++k) {
    (void)sys.core().step();
  }
  // Let the in-flight ISR finish (the counter is bumped a few instructions
  // before the FIFO pop).
  for (int k = 0; k < 200; ++k) {
    (void)sys.core().step();
  }

  EXPECT_EQ(sys.bus().read(kCount, 4, mem::Access::read, 0).value, 3u);
  EXPECT_EQ(sys.bus().read(kSum, 4, mem::Access::read, 0).value, expected_sum);
  EXPECT_EQ(sys.ivc()->stats().entries, 3u);
  EXPECT_EQ(ecu.stats().frames_received, 3u);
  EXPECT_EQ(ecu.rx_fifo_depth(), 0u);
  // The ISR latency probe saw every entry.
  EXPECT_EQ(sys.ivc()->latencies(kRxLine).size(), 3u);
}

}  // namespace
}  // namespace aces::can
