// Node-level fault injection, alive supervision, and graceful degradation:
// bus detach/attach semantics, dead-bus windows, EcuNode lifecycle faults
// at both fidelities, SupervisorNode detection within the analytic bound
// with mitigations and limp-home, the FlexRay bus guardian containing a
// babbling idiot, gateway drop visibility and route failover, the
// simulation watchdog stopping a same-instant livelock, and bit-identical
// double runs of a full fault drill.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/profiles.h"
#include "isa/assembler.h"
#include "net/network.h"
#include "net/supervisor.h"
#include "sim/simulation.h"

namespace aces::net {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

can::CanFrame frame(std::uint32_t id, unsigned dlc = 4) {
  can::CanFrame f;
  f.id = id;
  f.dlc = dlc;
  return f;
}

// ----- bus-level fault primitives --------------------------------------------

TEST(CanDetach, DetachedNodeDropsSendsAndReceivesNothing) {
  sim::EventQueue q;
  can::CanBus bus(q, 500'000);
  const can::NodeId a = bus.attach_node("a");
  const can::NodeId b = bus.attach_node("b");
  int b_heard = 0;
  bus.subscribe(b, [&](const can::CanFrame&, SimTime) { ++b_heard; });

  bus.detach(b);
  EXPECT_FALSE(bus.attached(b));
  bus.send(a, frame(0x100));
  bus.send(b, frame(0x200));  // dropped: the node is off the wire
  q.run_until(10 * kMillisecond);

  EXPECT_EQ(b_heard, 0);  // detached nodes receive nothing
  EXPECT_EQ(bus.fault_stats().detached_drops, 1u);
  EXPECT_EQ(bus.stats().count(0x200), 0u);

  // Reattach: the node transmits and receives again.
  bus.attach(b);
  bus.send(b, frame(0x200));
  bus.send(a, frame(0x100));
  q.run_until(20 * kMillisecond);
  EXPECT_EQ(bus.stats().at(0x200).sent, 1u);
  EXPECT_EQ(b_heard, 1);  // a's post-attach frame, not b's own
}

TEST(CanDetach, PendingFramesSurviveDetachAndGoOutAfterAttach) {
  sim::EventQueue q;
  can::CanBus bus(q, 500'000);
  const can::NodeId a = bus.attach_node("a");
  const can::NodeId b = bus.attach_node("b");
  int heard = 0;
  bus.subscribe(b, [&](const can::CanFrame&, SimTime) { ++heard; });

  bus.send(a, frame(0x100));       // on the wire immediately
  q.schedule_at(kMicrosecond, [&] {
    bus.detach(a);                 // mid-frame: the attempt completes
    bus.send(a, frame(0x101));     // dropped (detached)
  });
  q.run_until(5 * kMillisecond);
  EXPECT_EQ(heard, 1);  // the in-flight attempt completed
  EXPECT_EQ(bus.fault_stats().detached_drops, 1u);

  bus.attach(a);
  bus.send(a, frame(0x102));
  q.run_until(10 * kMillisecond);
  EXPECT_EQ(heard, 2);
}

TEST(CanDeadBus, WindowSilencesWireAndBacklogDrains) {
  sim::EventQueue q;
  can::CanBus bus(q, 500'000);
  const can::NodeId a = bus.attach_node("a");
  const can::NodeId b = bus.attach_node("b");
  std::vector<SimTime> deliveries;
  bus.subscribe(b, [&](const can::CanFrame&, SimTime at) {
    deliveries.push_back(at);
  });

  const SimTime window_start = kMillisecond;
  const SimTime window_len = 5 * kMillisecond;
  bus.schedule_bus_dead(window_start, window_len);
  // Queued inside the window: must not appear on the wire until it closes.
  q.schedule_at(2 * kMillisecond, [&] { bus.send(a, frame(0x100)); });
  q.run_until(20 * kMillisecond);

  ASSERT_EQ(deliveries.size(), 1u);
  EXPECT_GE(deliveries[0], window_start + window_len);
  EXPECT_EQ(bus.fault_stats().dead_bus_windows, 1u);
  EXPECT_FALSE(bus.bus_dead());
}

// ----- EcuNode lifecycle faults ----------------------------------------------

// One kernel-model producer publishing 0x120 every 10 ms.
NetworkBuilder model_producer_builder(BusId& bus_out, EcuId& ecu_out) {
  NetworkBuilder nb;
  bus_out = nb.bus("body", 250'000);
  ModelTask sender;
  sender.name = "sender";
  sender.priority = 5;
  sender.exec = 200 * kMicrosecond;
  sender.period = 10 * kMillisecond;
  sender.tx = frame(0x120);
  ecu_out = nb.ecu(bus_out, "producer", {sender});
  return nb;
}

TEST(NodeFault, CrashSilencesAModelEcu) {
  BusId bus;
  EcuId ecu;
  NetworkBuilder nb = model_producer_builder(bus, ecu);
  Network net = nb.build();
  std::vector<SimTime> deliveries;
  const can::NodeId probe = net.bus(bus).attach_node("probe");
  net.bus(bus).subscribe(probe, [&](const can::CanFrame& f, SimTime at) {
    if (f.id == 0x120) {
      deliveries.push_back(at);
    }
  });

  NodeFault fault;
  fault.kind = NodeFault::Kind::crash;
  fault.at = 55 * kMillisecond;
  net.ecu(ecu).inject(fault);
  net.run_until(sim::kSecond);

  // Completions at 200us, 10.2ms, ..., 50.2ms — then silence.
  ASSERT_EQ(deliveries.size(), 6u);
  EXPECT_LT(deliveries.back(), fault.at);
  EXPECT_FALSE(net.ecu(ecu).alive());
  EXPECT_EQ(net.ecu(ecu).fault_stats().crashes, 1u);
  EXPECT_EQ(net.ecu(ecu).last_fault_at(), fault.at);
  EXPECT_FALSE(net.bus(bus).attached(net.ecu(ecu).can_node()));
}

TEST(NodeFault, ResetRebootsAModelEcuAfterTheDelay) {
  BusId bus;
  EcuId ecu;
  NetworkBuilder nb = model_producer_builder(bus, ecu);
  Network net = nb.build();
  std::vector<SimTime> deliveries;
  const can::NodeId probe = net.bus(bus).attach_node("probe");
  net.bus(bus).subscribe(probe, [&](const can::CanFrame& f, SimTime at) {
    if (f.id == 0x120) {
      deliveries.push_back(at);
    }
  });

  NodeFault fault;
  fault.kind = NodeFault::Kind::reset;
  fault.at = 55 * kMillisecond;
  fault.reboot_delay = 30 * kMillisecond;
  net.ecu(ecu).inject(fault);
  net.run_until(200 * kMillisecond);

  EXPECT_TRUE(net.ecu(ecu).alive());
  EXPECT_EQ(net.ecu(ecu).fault_stats().resets, 1u);
  EXPECT_EQ(net.ecu(ecu).fault_stats().reboots, 1u);
  EXPECT_EQ(net.ecu(ecu).last_boot_at(), fault.at + fault.reboot_delay);
  // Frames before the fault, silence during the outage, frames after.
  ASSERT_GE(deliveries.size(), 8u);
  bool saw_gap = false;
  for (std::size_t k = 1; k < deliveries.size(); ++k) {
    if (deliveries[k] - deliveries[k - 1] > 20 * kMillisecond) {
      saw_gap = true;
      EXPECT_GE(deliveries[k], fault.at + fault.reboot_delay);
    }
  }
  EXPECT_TRUE(saw_gap);
}

constexpr unsigned kRxLine = 1;
constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;

// Minimal counting guest (the net_test idiom): WFI loop; the RX ISR bumps
// a counter in SRAM, pops the mailbox and acks the line.
GuestProgram counting_program() {
  using namespace isa;
  using Ctl = can::CanController;
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  GuestProgram p;
  p.image = a.assemble();
  p.entry = a.label_address(entry);
  p.handlers.push_back({kRxLine, a.label_address(isr), 32});
  return p;
}

TEST(NodeFault, HangFreezesAnIssEcuAndRestartRevivesIt) {
  NetworkBuilder nb;
  const BusId bus = nb.bus("body", 250'000);
  ModelTask sender;
  sender.name = "sender";
  sender.priority = 5;
  sender.exec = 100 * kMicrosecond;
  sender.period = 10 * kMillisecond;
  sender.tx = frame(0x120);
  nb.ecu(bus, "producer", {sender});
  can::CanController::Config cc;
  cc.rx_line = kRxLine;
  const EcuId iss = nb.ecu(
      bus,
      cpu::profiles::modern_mcu().name("iss").clock_hz(8'000'000)
          .flash_size(16 * 1024),
      counting_program(), cc);
  Network net = nb.build();

  net.run_until(100 * kMillisecond);
  const std::uint32_t before = net.iss(iss).read_word(kCount);
  EXPECT_GT(before, 0u);

  // Hang: compute freezes but the node stays attached — the wire still
  // sees a healthy peer, only the serviced-frame counter stops.
  NodeFault fault;
  fault.kind = NodeFault::Kind::hang;
  fault.at = 100 * kMillisecond;
  net.ecu(iss).inject(fault);
  net.run_until(200 * kMillisecond);
  EXPECT_EQ(net.iss(iss).read_word(kCount), before);
  EXPECT_FALSE(net.ecu(iss).alive());
  EXPECT_TRUE(net.bus(bus).attached(net.ecu(iss).can_node()));
  EXPECT_GT(net.iss(iss).binding().stats().frozen_irq_drops, 0u);

  // Supervised restart: full guest reboot; servicing resumes.
  net.ecu(iss).restart(5 * kMillisecond);
  net.run_until(300 * kMillisecond);
  EXPECT_TRUE(net.ecu(iss).alive());
  EXPECT_EQ(net.ecu(iss).fault_stats().reboots, 1u);
  EXPECT_GT(net.iss(iss).read_word(kCount), 0u);
}

// ----- alive supervision -----------------------------------------------------

TEST(Supervisor, DetectsACrashWithinTheAnalyticBoundAndRecovers) {
  BusId bus;
  EcuId ecu;
  NetworkBuilder nb = model_producer_builder(bus, ecu);
  Network net = nb.build();

  const SimTime hb_period = 20 * kMillisecond;
  net.ecu(ecu).start_heartbeat(frame(0x050, 1), hb_period);

  SupervisorNode& sup = net.add_supervisor(bus, "sup");
  SupervisorNode::Monitor mon;
  mon.name = "producer";
  mon.heartbeat_id = 0x050;
  mon.period = hb_period;
  mon.window = 2 * kMillisecond;
  mon.delivery_bound = kMillisecond;
  mon.ecu = &net.ecu(ecu);
  mon.mitigations.push_back(
      Mitigation::restart_ecu(net.ecu(ecu), 10 * kMillisecond));
  const auto id = sup.add_monitor(mon);
  sup.start();

  NodeFault fault;
  fault.kind = NodeFault::Kind::crash;
  fault.at = 105 * kMillisecond;
  net.ecu(ecu).inject(fault);
  net.run_until(sim::kSecond);

  const auto& st = sup.stats(id);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.mitigations, 1u);
  EXPECT_EQ(st.recoveries, 1u);
  EXPECT_FALSE(sup.failed(id));
  EXPECT_TRUE(net.ecu(ecu).alive());
  // The tentpole property: measured fault-to-detection latency within the
  // analytic bound (heartbeat period + window + delivery bound).
  ASSERT_GE(st.worst_detect_latency, 0);
  EXPECT_LE(st.worst_detect_latency, sup.detection_bound(id));
  // Recovery latency covers detection + mitigation delay + reboot, and is
  // what campaigns fold into distributions.
  ASSERT_EQ(sup.recovery_samples().size(), 1u);
  EXPECT_GT(sup.recovery_samples()[0], st.worst_detect_latency);
  // Heartbeats resumed after the mitigation rebooted the node.
  EXPECT_GT(st.heartbeats, 5u);
}

TEST(Supervisor, LimpHomeSubstitutesFramesWhileFailed) {
  BusId bus;
  EcuId ecu;
  NetworkBuilder nb = model_producer_builder(bus, ecu);
  Network net = nb.build();
  net.ecu(ecu).start_heartbeat(frame(0x050, 1), 20 * kMillisecond);

  std::vector<SimTime> limp_seen;
  const can::NodeId probe = net.bus(bus).attach_node("probe");
  net.bus(bus).subscribe(probe, [&](const can::CanFrame& f, SimTime at) {
    if (f.id == 0x121) {
      limp_seen.push_back(at);
    }
  });

  SupervisorNode& sup = net.add_supervisor(bus, "sup");
  SupervisorNode::Monitor mon;
  mon.name = "producer";
  mon.heartbeat_id = 0x050;
  mon.period = 20 * kMillisecond;
  mon.window = 2 * kMillisecond;
  mon.ecu = &net.ecu(ecu);
  mon.limp_frame = frame(0x121, 2);  // safe substitute for 0x120 traffic
  mon.limp_period = 10 * kMillisecond;
  mon.mitigations.push_back(
      Mitigation::restart_ecu(net.ecu(ecu), 50 * kMillisecond));
  const auto id = sup.add_monitor(mon);
  sup.start();

  NodeFault fault;
  fault.kind = NodeFault::Kind::crash;
  fault.at = 105 * kMillisecond;
  net.ecu(ecu).inject(fault);
  net.run_until(400 * kMillisecond);

  const auto& st = sup.stats(id);
  ASSERT_GT(st.limp_frames, 0u);
  EXPECT_EQ(st.limp_frames, limp_seen.size());
  // Limp frames only exist inside the failure window.
  EXPECT_GE(limp_seen.front(), st.last_detect_at);
  EXPECT_EQ(st.recoveries, 1u);
  // After recovery the limp chain is dead: the last limp frame precedes
  // the recovery instant (fault + recovery latency).
  ASSERT_EQ(sup.recovery_samples().size(), 1u);
  EXPECT_LE(limp_seen.back(), fault.at + sup.recovery_samples()[0]);
}

// ----- babbling idiot: detection + detach mitigation -------------------------

TEST(Supervisor, DetachMitigationCutsOffABabblingNode) {
  NetworkBuilder nb;
  const BusId bus = nb.bus("body", 250'000);
  ModelTask sender;
  sender.name = "victim";
  sender.priority = 5;
  sender.exec = 100 * kMicrosecond;
  sender.period = 10 * kMillisecond;
  sender.tx = frame(0x200);
  const EcuId victim = nb.ecu(bus, "victim", {sender});
  ModelTask idle;
  idle.name = "idle";
  idle.priority = 1;
  idle.exec = 100 * kMicrosecond;
  idle.period = 50 * kMillisecond;
  const EcuId babbler = nb.ecu(bus, "babbler", {idle});
  Network net = nb.build();

  net.ecu(babbler).start_heartbeat(frame(0x051, 1), 20 * kMillisecond);
  SupervisorNode& sup = net.add_supervisor(bus, "sup");
  SupervisorNode::Monitor mon;
  mon.name = "babbler";
  mon.heartbeat_id = 0x051;
  mon.period = 20 * kMillisecond;
  mon.window = 2 * kMillisecond;
  mon.ecu = &net.ecu(babbler);
  mon.mitigations.push_back(Mitigation::detach_node(
      net.bus(bus), net.ecu(babbler).can_node()));
  const auto id = sup.add_monitor(mon);
  sup.start();

  // Babble: a top-priority flood that starves the victim's traffic — and,
  // because the flooding ECU's compute is fine but its heartbeats are
  // crowded out... no: heartbeats keep flowing (the ECU is alive), so the
  // flood alone isn't detected by alive supervision. Pair the babble with
  // a hang (the classic failed-ECU babble: software wedged with the
  // transmit path stuck on), which stops heartbeats too.
  NodeFault babble;
  babble.kind = NodeFault::Kind::babble;
  babble.at = 100 * kMillisecond;
  babble.babble_frame = frame(0x001, 0);  // outranks everything
  babble.babble_period = kMillisecond;
  net.ecu(babbler).inject(babble);
  NodeFault hang;
  hang.kind = NodeFault::Kind::hang;
  hang.at = 100 * kMillisecond;
  net.ecu(babbler).inject(hang);
  net.run_until(500 * kMillisecond);

  const auto& st = sup.stats(id);
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.mitigations, 1u);
  ASSERT_GE(st.worst_detect_latency, 0);
  EXPECT_LE(st.worst_detect_latency, sup.detection_bound(id));
  // The babbler is off the wire; its flood stopped at the mitigation.
  EXPECT_FALSE(net.bus(bus).attached(net.ecu(babbler).can_node()));
  EXPECT_GT(net.bus(bus).fault_stats().detached_drops, 0u);
  // The victim's traffic kept flowing after the cutoff (frames in the
  // last 300 ms of the run).
  const auto& victim_stats = net.bus(bus).stats().at(0x200);
  EXPECT_GT(victim_stats.sent, 30u);
  (void)victim;
}

// ----- FlexRay bus guardian --------------------------------------------------

FlexrayFabricConfig guarded_config(unsigned minislots, unsigned budget) {
  FlexrayFabricConfig cfg;
  cfg.static_cfg.cycle_length = kMillisecond;
  cfg.static_cfg.static_slots = 1;
  cfg.static_cfg.slot_length = 50 * kMicrosecond;
  cfg.minislots = minislots;
  cfg.minislot = 20 * kMicrosecond;
  cfg.guardian.enabled = true;
  cfg.guardian.node_budget_minislots = budget;
  return cfg;
}

TEST(BusGuardian, LatchesOffANodeCrossingItsBudget) {
  sim::EventQueue queue;
  // 8-byte dynamic frames: 171 bits at 10 Mbps = 17.1 us -> 1 minislot.
  // Budget 1: the babbler's first frame fits, its second crosses and the
  // guardian latches the node off at exactly that decision point.
  FlexrayFabric fabric(queue, guarded_config(8, 1));
  const auto babbler = fabric.attach_node("babbler");
  const auto victim = fabric.attach_node("victim");
  const auto flood_a = fabric.add_dynamic_frame(babbler, "flood_a", 1, 8);
  const auto flood_b = fabric.add_dynamic_frame(babbler, "flood_b", 2, 8);
  const auto good = fabric.add_dynamic_frame(victim, "good", 3, 8);
  fabric.start();

  const auto obs = fabric.attach_node("obs");
  std::vector<unsigned> delivered;
  fabric.subscribe(obs, [&](const FlexrayFabric::DynFrameInfo& i,
                            const FlexrayFabric::DynPayload&, SimTime) {
    delivered.push_back(i.slot_id);
  });

  FlexrayFabric::DynPayload p;
  p.bytes = 8;
  // Flood both babbler ids every cycle for 4 cycles; one victim frame.
  for (int c = 0; c < 4; ++c) {
    queue.schedule_at(c * kMillisecond, [&] {
      fabric.send_dynamic(flood_a, p);
      fabric.send_dynamic(flood_b, p);
    });
  }
  fabric.send_dynamic(good, p);
  queue.run_until(4 * kMillisecond);

  // Cycle 0: flood_a granted (budget reached), flood_b crosses -> latch.
  // Cycles 1..3: both babbler ids blocked at their decision points.
  EXPECT_EQ(fabric.guardian_stats().cutoffs, 1u);
  EXPECT_TRUE(fabric.guardian_blocked(babbler));
  EXPECT_GE(fabric.guardian_stats().blocked_grants, 6u);
  // The victim's frame went out despite the flood — containment worked.
  ASSERT_FALSE(delivered.empty());
  EXPECT_EQ(delivered[0], 1u);  // the one in-budget flood frame
  bool victim_delivered = false;
  for (const unsigned s : delivered) {
    if (s == 3u) {
      victim_delivered = true;
    }
    EXPECT_NE(s, 2u);  // the over-budget id never transmitted
  }
  EXPECT_TRUE(victim_delivered);
  EXPECT_EQ(fabric.dyn_stats(flood_b).sent, 0u);

  // Maintenance release: the node competes again (and latches again the
  // next time it crosses the budget — deterministic each cycle).
  const auto cutoffs_before = fabric.guardian_stats().cutoffs;
  fabric.guardian_release(babbler);
  EXPECT_FALSE(fabric.guardian_blocked(babbler));
  queue.run_until(6 * kMillisecond);
  EXPECT_GT(fabric.dyn_stats(flood_a).sent, 1u);  // backlog resumed
  EXPECT_GT(fabric.guardian_stats().cutoffs, cutoffs_before);
}

// ----- gateway drop visibility + failover ------------------------------------

TEST(Gateway, OnDropReportsOverflowAndSupervisorCountsIt) {
  NetworkBuilder nb;
  const BusId fast = nb.bus("fast", 1'000'000);
  const BusId slow = nb.bus("slow", 125'000);
  GatewayConfig gc;
  gc.forwarding_latency = 0;
  gc.queue_depth = 2;
  const GatewayId gw = nb.gateway("gw", gc);
  Route r;
  r.from = fast;
  r.to = slow;
  r.match = 0;
  r.mask = 0;
  nb.route(gw, r);
  Network net = nb.build();

  std::vector<std::uint32_t> dropped_ids;
  net.gateway(gw).on_drop([&](BusId from, BusId to, std::uint32_t id,
                              GatewayNode::DropReason reason, SimTime) {
    EXPECT_EQ(from, fast);
    EXPECT_EQ(to, slow);
    EXPECT_EQ(reason, GatewayNode::DropReason::overflow);
    dropped_ids.push_back(id);
  });
  SupervisorNode& sup = net.add_supervisor(slow, "sup");
  sup.watch_gateway(net.gateway(gw));

  const can::NodeId src = net.bus(fast).attach_node("src");
  for (int k = 0; k < 6; ++k) {
    net.bus(fast).send(src, frame(0x100 + static_cast<std::uint32_t>(k), 8));
  }
  net.run_until(sim::kSecond);

  const auto& d = net.gateway(gw).direction(fast, slow);
  EXPECT_GE(d.dropped_overflow, 1u);
  EXPECT_EQ(dropped_ids.size(), d.dropped_overflow);
  EXPECT_EQ(sup.gateway_drops(), d.dropped_overflow);
}

TEST(Gateway, RouteFailoverSwitchesToTheStandbyPath) {
  NetworkBuilder nb;
  const BusId src = nb.bus("src", 500'000);
  const BusId primary = nb.bus("primary", 250'000);
  const BusId standby = nb.bus("standby", 250'000);
  const GatewayId gw = nb.gateway("gw");
  Route live;
  live.from = src;
  live.to = primary;
  live.match = 0x100;
  nb.route(gw, live);
  Route backup = live;
  backup.to = standby;
  backup.enabled = false;  // standby: declared but dormant
  nb.route(gw, backup);
  Network net = nb.build();

  int on_primary = 0, on_standby = 0;
  const can::NodeId p1 = net.bus(primary).attach_node("p1");
  net.bus(primary).subscribe(
      p1, [&](const can::CanFrame&, SimTime) { ++on_primary; });
  const can::NodeId p2 = net.bus(standby).attach_node("p2");
  net.bus(standby).subscribe(
      p2, [&](const can::CanFrame&, SimTime) { ++on_standby; });

  const can::NodeId tx = net.bus(src).attach_node("tx");
  net.shard(src).schedule_every(10 * kMillisecond, [&] {
    net.bus(src).send(tx, frame(0x100));
  });
  // The supervisor's failover mitigation, fired directly here: disable
  // route 0, enable route 1.
  net.shard(src).schedule_at(100 * kMillisecond, [&] {
    Mitigation m = Mitigation::gateway_failover(net.gateway(gw), 0, 1);
    m.fn();
  });
  net.run_until(200 * kMillisecond);

  EXPECT_GT(on_primary, 0);
  EXPECT_GT(on_standby, 0);
  // After the switch nothing else reached the primary: totals add up to
  // every sent frame (no window where both or neither route was live).
  EXPECT_EQ(on_primary + on_standby,
            static_cast<int>(net.bus(src).stats().at(0x100).sent));
}

// ----- watchdog: livelock containment ----------------------------------------

TEST(Watchdog, StopsASameInstantLivelockDeterministically) {
  sim::Simulation sim;
  // A pathological model: an event that re-schedules itself at the same
  // instant, forever. Without the watchdog run_until would never return.
  std::function<void()> spin = [&] { sim.schedule_in(0, spin); };
  sim.schedule_at(kMillisecond, spin);
  sim.set_watchdog([](std::uint64_t events) { return events >= 10'000; });

  sim.run_until(sim::kSecond);

  EXPECT_TRUE(sim.watchdog_tripped());
  EXPECT_EQ(sim.now(), kMillisecond);  // stuck instant, not the horizon
  // The stop-check polls every kStopCheckStride events, so the overshoot
  // past the limit is bounded by one stride.
  EXPECT_GE(sim.queue().events_executed(), 10'000u);
  EXPECT_LT(sim.queue().events_executed(),
            10'000u + sim::EventQueue::kStopCheckStride);
}

// ----- determinism -----------------------------------------------------------

TEST(FaultDeterminism, FullDrillDoubleRunIsBitIdentical) {
  const auto run = [](std::uint64_t& events, std::uint64_t& heartbeats,
                      SimTime& detect, SimTime& recover) {
    BusId bus;
    EcuId ecu;
    NetworkBuilder nb = model_producer_builder(bus, ecu);
    Network net = nb.build();
    net.ecu(ecu).start_heartbeat(frame(0x050, 1), 20 * kMillisecond);
    SupervisorNode& sup = net.add_supervisor(bus, "sup");
    SupervisorNode::Monitor mon;
    mon.name = "producer";
    mon.heartbeat_id = 0x050;
    mon.period = 20 * kMillisecond;
    mon.window = 2 * kMillisecond;
    mon.ecu = &net.ecu(ecu);
    mon.limp_frame = frame(0x121, 2);
    mon.limp_period = 10 * kMillisecond;
    mon.mitigations.push_back(
        Mitigation::restart_ecu(net.ecu(ecu), 10 * kMillisecond));
    const auto id = sup.add_monitor(mon);
    sup.start();
    NodeFault fault;
    fault.kind = NodeFault::Kind::crash;
    fault.at = 105 * kMillisecond;
    net.ecu(ecu).inject(fault);
    net.run_until(sim::kSecond);
    events = net.simulation().stats().events_executed;
    heartbeats = sup.stats(id).heartbeats;
    detect = sup.stats(id).worst_detect_latency;
    recover = sup.stats(id).worst_recover_latency;
  };
  std::uint64_t e1, h1, e2, h2;
  SimTime d1, r1, d2, r2;
  run(e1, h1, d1, r1);
  run(e2, h2, d2, r2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(d1, d2);
  EXPECT_EQ(r1, r2);
  EXPECT_GT(h1, 0u);
  EXPECT_GE(d1, 0);
}

}  // namespace
}  // namespace aces::net
