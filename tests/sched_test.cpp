// Schedulability analysis tests, including the load-bearing properties:
// task RTA upper-bounds the simulated kernel, and CAN RTA upper-bounds the
// simulated bus, across randomized workloads.
#include <gtest/gtest.h>

#include "can/bus.h"
#include "rtos/kernel.h"
#include "sched/can_rta.h"
#include "sched/flexray.h"
#include "sched/rta.h"
#include "support/rng.h"

namespace aces::sched {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

// ----- task RTA -----------------------------------------------------------------

TEST(Rta, TextbookExample) {
  // Classic three-task example (C,T): (1,4) (1,5) (3,10), RM priorities.
  std::vector<RtaTask> tasks = {
      {"t1", 1 * kMillisecond, 4 * kMillisecond, 0, 3, 0, 0},
      {"t2", 1 * kMillisecond, 5 * kMillisecond, 0, 2, 0, 0},
      {"t3", 3 * kMillisecond, 10 * kMillisecond, 0, 1, 0, 0},
  };
  const RtaResult r = response_time_analysis(tasks);
  EXPECT_TRUE(r.schedulable);
  EXPECT_EQ(r.response[0], 1 * kMillisecond);
  EXPECT_EQ(r.response[1], 2 * kMillisecond);
  // t3: R = 3 + ceil(R/4) + ceil(R/5) -> fixed point at 7ms.
  EXPECT_EQ(r.response[2], 7 * kMillisecond);
}

TEST(Rta, UnschedulableDetected) {
  std::vector<RtaTask> tasks = {
      {"t1", 3 * kMillisecond, 5 * kMillisecond, 0, 2, 0, 0},
      {"t2", 3 * kMillisecond, 6 * kMillisecond, 0, 1, 0, 0},
  };
  const RtaResult r = response_time_analysis(tasks);
  EXPECT_FALSE(r.schedulable);
  EXPECT_TRUE(r.task_ok[0]);
  EXPECT_FALSE(r.task_ok[1]);
}

TEST(Rta, BlockingExtendsResponse) {
  std::vector<RtaTask> tasks = {
      {"hi", 1 * kMillisecond, 10 * kMillisecond, 0, 2, 0, 0},
      {"lo", 2 * kMillisecond, 20 * kMillisecond, 0, 1, 0, 0},
  };
  std::vector<CriticalSection> cs = {
      {1, 0, 500 * kMicrosecond},  // lo holds R for 0.5ms
  };
  // hi also uses the resource -> ceiling reaches hi.
  cs.push_back({0, 0, 100 * kMicrosecond});
  apply_pcp_blocking(tasks, cs);
  EXPECT_EQ(tasks[0].blocking, 500 * kMicrosecond);
  EXPECT_EQ(tasks[1].blocking, 0);  // nothing below lo
  const RtaResult r = response_time_analysis(tasks);
  EXPECT_EQ(r.response[0], 1 * kMillisecond + 500 * kMicrosecond);
}

TEST(Rta, UtilizationAndBound) {
  std::vector<RtaTask> tasks = {
      {"a", 1 * kMillisecond, 4 * kMillisecond, 0, 2, 0, 0},
      {"b", 2 * kMillisecond, 8 * kMillisecond, 0, 1, 0, 0},
  };
  EXPECT_NEAR(utilization(tasks), 0.5, 1e-9);
  EXPECT_NEAR(liu_layland_bound(1), 1.0, 1e-9);
  EXPECT_NEAR(liu_layland_bound(2), 0.8284, 1e-3);
  EXPECT_GT(liu_layland_bound(2), liu_layland_bound(10));
}

// Property: the simulated kernel never exceeds the analytic bound.
TEST(Rta, DominatesSimulatedKernel) {
  support::Rng256 rng(2026);
  for (int trial = 0; trial < 20; ++trial) {
    // Random task set at moderate utilization.
    const int n = 2 + static_cast<int>(rng.next_below(4));
    std::vector<RtaTask> tasks;
    for (int k = 0; k < n; ++k) {
      RtaTask t;
      t.name = "t" + std::to_string(k);
      t.period = (5 + static_cast<SimTime>(rng.next_below(45))) *
                 kMillisecond;
      t.wcet = t.period / (3 + static_cast<SimTime>(rng.next_below(6)) + n);
      t.priority = 100 - k;  // unique priorities
      tasks.push_back(t);
    }
    const RtaResult bound = response_time_analysis(tasks);
    if (!bound.schedulable) {
      continue;  // only compare feasible sets
    }
    sim::EventQueue q;
    rtos::Kernel kernel(q);
    std::vector<rtos::TaskId> ids;
    for (const RtaTask& t : tasks) {
      rtos::Segment seg;
      seg.kind = rtos::Segment::Kind::execute;
      seg.duration = t.wcet;
      ids.push_back(kernel.create_task({t.name, t.priority, {seg}, 0}));
      kernel.set_alarm(ids.back(), 0, t.period);
    }
    kernel.start();
    q.run_until(2 * sim::kSecond);
    for (std::size_t k = 0; k < tasks.size(); ++k) {
      EXPECT_LE(kernel.stats(ids[k]).worst_response, bound.response[k])
          << "trial " << trial << " task " << k;
      EXPECT_GT(kernel.stats(ids[k]).completions, 10u);
    }
  }
}

// ----- CAN RTA --------------------------------------------------------------------

std::vector<CanMessage> sae_like_set() {
  // An SAE-benchmark-flavored body/powertrain message set at 250 kbit/s.
  std::vector<CanMessage> m;
  const auto add = [&m](const char* name, std::uint32_t id, unsigned dlc,
                        SimTime period) {
    m.push_back(CanMessage{name, id, dlc, period, 0, 0});
  };
  add("engine_torque", 0x050, 8, 5 * kMillisecond);
  add("wheel_speed", 0x0A0, 6, 10 * kMillisecond);
  add("brake_pressure", 0x0C0, 4, 10 * kMillisecond);
  add("steering_angle", 0x120, 4, 20 * kMillisecond);
  add("gear_state", 0x200, 2, 50 * kMillisecond);
  add("door_status", 0x400, 1, 100 * kMillisecond);
  add("hvac_state", 0x500, 4, 100 * kMillisecond);
  add("diag_response", 0x7A0, 8, 200 * kMillisecond);
  return m;
}

TEST(CanRta, PriorityOrderRespected) {
  const auto msgs = sae_like_set();
  const CanRtaResult r = can_rta(msgs, 250'000);
  EXPECT_TRUE(r.schedulable);
  EXPECT_LT(r.bus_utilization, 0.5);
  // The top-priority message's worst case is its own time plus one
  // blocking frame.
  const SimTime tau = sim::kSecond / 250'000;
  const SimTime c0 = tau * can::worst_case_wire_bits(8);
  EXPECT_LE(r.response[0], 2 * c0 + tau);
  // Lower priorities wait longer.
  EXPECT_GT(r.response.back(), r.response.front());
}

// ----- end-to-end path RTA across gateway hops -------------------------------

TEST(PathRta, SingleHopMatchesCanRta) {
  const auto msgs = sae_like_set();
  const CanRtaResult direct = can_rta(msgs, 250'000);
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    PathHop hop;
    hop.messages = msgs;
    hop.message = k;
    hop.bitrate_bps = 250'000;
    const PathRtaResult r = path_rta({hop});
    EXPECT_EQ(r.response, direct.response[k]);
    EXPECT_EQ(r.response_fault_free, direct.response_fault_free[k]);
    EXPECT_EQ(r.hop_response.size(), 1u);
    EXPECT_EQ(r.schedulable, direct.message_ok[k]);
    EXPECT_EQ(r.schedulable_fault_free, r.schedulable);  // no fault model
  }
}

TEST(PathRta, SecondHopComposesJitterAndLatency) {
  const auto src = sae_like_set();
  std::vector<CanMessage> dst = {
      {"local_hp", 0x040, 8, 5 * kMillisecond, 0, 0},
      {"routed", 0x0A0, 6, 10 * kMillisecond, 0, 0},  // wheel_speed bridged
      {"local_lp", 0x600, 4, 50 * kMillisecond, 0, 0},
  };
  PathHop h0;
  h0.messages = src;
  h0.message = 1;  // wheel_speed on the source bus
  h0.bitrate_bps = 250'000;
  PathHop h1;
  h1.messages = dst;
  h1.message = 1;
  h1.bitrate_bps = 125'000;
  h1.gateway_latency = 500 * kMicrosecond;
  const PathRtaResult two = path_rta({h0, h1});
  const PathRtaResult one = path_rta({h0});

  EXPECT_TRUE(two.schedulable);
  // The composed bound strictly exceeds the source hop plus the gateway
  // latency (the routed frame still has to win egress arbitration)...
  EXPECT_GT(two.response, one.response + h1.gateway_latency);
  EXPECT_EQ(two.hop_response[0], one.response);
  EXPECT_EQ(two.hop_response[1], two.response);
  // ...and grows monotonically with the forwarding latency.
  h1.gateway_latency = 2 * kMillisecond;
  EXPECT_GT(path_rta({h0, h1}).response, two.response);
}

TEST(PathRta, FaultHypothesisOnOneHopInflatesTheBound) {
  const auto src = sae_like_set();
  std::vector<CanMessage> dst = {
      {"routed", 0x0A0, 6, 10 * kMillisecond, 0, 0},
      {"local", 0x200, 8, 10 * kMillisecond, 0, 0},
  };
  PathHop h0;
  h0.messages = src;
  h0.message = 1;
  h0.bitrate_bps = 250'000;
  PathHop h1;
  h1.messages = dst;
  h1.message = 0;
  h1.bitrate_bps = 125'000;
  const PathRtaResult clean = path_rta({h0, h1});
  h1.errors = CanErrorModel{10 * kMillisecond};
  const PathRtaResult faulted = path_rta({h0, h1});
  EXPECT_GT(faulted.response_faulted, faulted.response_fault_free);
  EXPECT_EQ(faulted.response_fault_free, clean.response);
  EXPECT_EQ(faulted.response, faulted.response_faulted);
  // The fault-free verdict survives alongside the operative one.
  EXPECT_EQ(faulted.schedulable_fault_free, clean.schedulable);
}

TEST(CanRta, DominatesSimulatedBus) {
  const auto msgs = sae_like_set();
  const CanRtaResult bound = can_rta(msgs, 250'000);
  ASSERT_TRUE(bound.schedulable);

  sim::EventQueue q;
  can::CanBus bus(q, 250'000);
  const can::NodeId tx = bus.attach_node("tx");
  (void)bus.attach_node("rx");
  // Periodic senders with deterministic phase 0 (critical instant-ish).
  for (const CanMessage& m : msgs) {
    q.schedule_every(m.period, [&bus, m, tx]() {
      can::CanFrame f;
      f.id = m.id;
      f.dlc = m.dlc;
      bus.send(tx, f);
    });
  }
  q.run_until(2 * sim::kSecond);
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    const auto it = bus.stats().find(msgs[k].id);
    ASSERT_NE(it, bus.stats().end()) << msgs[k].name;
    EXPECT_LE(it->second.worst_latency, bound.response[k]) << msgs[k].name;
    EXPECT_GT(it->second.sent, 5u);
  }
}

TEST(CanRta, HighLoadStillBounded) {
  // Push utilization near saturation; the analysis must stay sound.
  std::vector<CanMessage> msgs;
  for (int k = 0; k < 12; ++k) {
    CanMessage m;
    m.name = "m" + std::to_string(k);
    m.id = static_cast<std::uint32_t>(0x100 + k * 16);
    m.dlc = 8;
    m.period = 10 * kMillisecond;
    msgs.push_back(m);
  }
  const CanRtaResult r = can_rta(msgs, 250'000);
  EXPECT_GT(r.bus_utilization, 0.6);
  // Lowest priority message has a dramatically larger bound.
  EXPECT_GT(r.response.back(), 4 * r.response.front());
}

TEST(CanRta, OverloadedSetReportsUnschedulable) {
  // Regression: the busy-period overload escape used to truncate before
  // q_max was derived, so instances beyond the cut were never examined
  // while the message could still be reported as meeting its deadline.
  // A truncated busy period must force message_ok = false.
  std::vector<CanMessage> msgs;
  for (int k = 0; k < 5; ++k) {
    CanMessage m;
    m.name = "m" + std::to_string(k);
    m.id = static_cast<std::uint32_t>(0x100 + k * 16);
    m.dlc = 8;
    m.period = 2 * kMillisecond;
    msgs.push_back(m);
  }
  const CanRtaResult r = can_rta(msgs, 125'000);  // ~270% load
  EXPECT_GT(r.bus_utilization, 2.0);
  EXPECT_FALSE(r.schedulable);
  // Every message whose level-i busy period diverges is flagged; only the
  // top-priority message (54% local load) can still converge.
  EXPECT_FALSE(r.message_ok.back());
  for (std::size_t k = 1; k < msgs.size(); ++k) {
    EXPECT_FALSE(r.message_ok[k]) << msgs[k].name;
  }
}

TEST(CanRta, ErrorTermInflatesBoundsMonotonically) {
  const auto msgs = sae_like_set();
  const CanRtaResult plain = can_rta(msgs, 250'000);
  const CanRtaResult faulted =
      can_rta(msgs, 250'000, CanErrorModel{10 * kMillisecond});
  const CanRtaResult stormy =
      can_rta(msgs, 250'000, CanErrorModel{1 * kMillisecond});
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    // Without a model both reported vectors collapse to fault-free.
    EXPECT_EQ(plain.response[k], plain.response_fault_free[k]);
    EXPECT_EQ(plain.response_faulted[k], plain.response_fault_free[k]);
    // With a model, the operative bound is the faulted one, the
    // fault-free vector matches the plain analysis, and more frequent
    // errors mean (weakly) larger bounds.
    EXPECT_EQ(faulted.response_fault_free[k], plain.response[k]);
    EXPECT_EQ(faulted.response[k], faulted.response_faulted[k]);
    EXPECT_GT(faulted.response[k], plain.response[k]);
    EXPECT_GE(stormy.response[k], faulted.response[k]);
  }
  EXPECT_TRUE(faulted.schedulable);
}

TEST(CanRta, MixedFormatPriorityFollowsWireArbitration) {
  // Regression: priority used to be the raw identifier, so an extended
  // message's numerically-huge 29-bit id was treated as lowest priority
  // even though its 11-bit base wins arbitration on the wire — and the
  // simulated bus violated the "analysis >= simulation" property.
  std::vector<CanMessage> msgs = {
      {"e0", 0x0F0u << 18, 8, 2 * kMillisecond, 0, 0, true},
      {"e1", 0x0F1u << 18, 8, 2 * kMillisecond, 0, 0, true},
      {"std", 0x100, 8, 20 * kMillisecond, 0, 0, false},
  };
  const CanRtaResult bound = can_rta(msgs, 250'000);
  ASSERT_TRUE(bound.schedulable);
  // The standard message is the lowest wire priority: its bound includes
  // interference from both extended streams, not just one blocking frame.
  const SimTime tau = sim::kSecond / 250'000;
  const SimTime c_ext = tau * can::worst_case_wire_bits(8, true);
  EXPECT_GE(bound.response[2], 2 * c_ext);

  sim::EventQueue q;
  can::CanBus bus(q, 250'000);
  const can::NodeId tx = bus.attach_node("tx");
  (void)bus.attach_node("rx");
  for (const CanMessage& m : msgs) {
    q.schedule_every(m.period, [&bus, m, tx]() {
      can::CanFrame f;
      f.id = m.id;
      f.extended = m.extended;
      f.dlc = m.dlc;
      bus.send(tx, f);
    });
  }
  q.run_until(2 * sim::kSecond);
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    const auto it = bus.stats().find(msgs[k].id);
    ASSERT_NE(it, bus.stats().end()) << msgs[k].name;
    EXPECT_LE(it->second.worst_latency, bound.response[k]) << msgs[k].name;
  }
}

TEST(CanRta, ExtendedFramesUseTheLongerWorstCase) {
  std::vector<CanMessage> std_set = sae_like_set();
  std::vector<CanMessage> ext_set = sae_like_set();
  for (auto& m : ext_set) {
    m.extended = true;
  }
  const CanRtaResult a = can_rta(std_set, 250'000);
  const CanRtaResult b = can_rta(ext_set, 250'000);
  EXPECT_GT(b.bus_utilization, a.bus_utilization);
  for (std::size_t k = 0; k < std_set.size(); ++k) {
    EXPECT_GT(b.response[k], a.response[k]);
  }
}

// ----- FlexRay ---------------------------------------------------------------------

TEST(Flexray, AssignsWithoutCollision) {
  FlexrayConfig cfg;
  cfg.cycle_length = 5 * kMillisecond;
  cfg.static_slots = 10;
  cfg.slot_length = 100 * kMicrosecond;
  std::vector<FlexrayFrame> frames;
  for (int k = 0; k < 8; ++k) {
    frames.push_back(
        FlexrayFrame{"f" + std::to_string(k), k % 3,
                     (k % 2 == 0 ? 5 : 10) * kMillisecond});
  }
  const FlexraySchedule s = build_static_schedule(cfg, frames);
  ASSERT_TRUE(s.feasible);
  EXPECT_EQ(s.assignments.size(), frames.size());
  // No two assignments may ever collide in the same slot instance.
  for (std::size_t a = 0; a < s.assignments.size(); ++a) {
    for (std::size_t b = a + 1; b < s.assignments.size(); ++b) {
      const auto& x = s.assignments[a];
      const auto& y = s.assignments[b];
      if (x.slot != y.slot) {
        continue;
      }
      for (unsigned cycle = 0; cycle < 64; ++cycle) {
        const bool xs = cycle % x.repetition == x.base_cycle;
        const bool ys = cycle % y.repetition == y.base_cycle;
        EXPECT_FALSE(xs && ys) << "slot collision in cycle " << cycle;
      }
    }
  }
}

TEST(Flexray, InfeasibleWhenOverloaded) {
  FlexrayConfig cfg;
  cfg.cycle_length = 1 * kMillisecond;
  cfg.static_slots = 2;
  cfg.slot_length = 100 * kMicrosecond;
  std::vector<FlexrayFrame> frames;
  for (int k = 0; k < 5; ++k) {
    frames.push_back(FlexrayFrame{"f" + std::to_string(k), 0,
                                  1 * kMillisecond});  // all every cycle
  }
  EXPECT_FALSE(build_static_schedule(cfg, frames).feasible);
}

TEST(Flexray, LatencyBoundedByRepetition) {
  FlexrayConfig cfg;
  std::vector<FlexrayFrame> frames = {
      {"fast", 0, cfg.cycle_length},
      {"slow", 1, cfg.cycle_length * 4},
  };
  const FlexraySchedule s = build_static_schedule(cfg, frames);
  ASSERT_TRUE(s.feasible);
  EXPECT_LE(s.of(0).worst_latency,
            cfg.cycle_length + cfg.slot_length * cfg.static_slots);
  EXPECT_GT(s.of(1).worst_latency, s.of(0).worst_latency);
}

TEST(Flexray, UtilizationReported) {
  FlexrayConfig cfg;
  cfg.static_slots = 4;
  std::vector<FlexrayFrame> frames = {
      {"a", 0, cfg.cycle_length},      // rep 1: one full slot
      {"b", 1, cfg.cycle_length * 2},  // rep 2: half a slot
  };
  const FlexraySchedule s = build_static_schedule(cfg, frames);
  ASSERT_TRUE(s.feasible);
  EXPECT_NEAR(s.static_utilization, (1.0 + 0.5) / 4.0, 1e-9);
}

}  // namespace
}  // namespace aces::sched
