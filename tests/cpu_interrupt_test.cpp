// Interrupt machinery tests: ClassicVic (software save/restore, NMI) and
// Ivc (hardware stacking, tail-chaining, priority nesting), plus the
// §3.1.2 restartable ldm/stm predictability feature.
#include <gtest/gtest.h>

#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "cpu/vic.h"
#include "isa/assembler.h"

namespace aces::cpu {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Encoding;
using isa::Image;
using isa::Instruction;
using isa::Label;
using isa::Op;
using isa::SetFlags;
using namespace isa;

constexpr std::uint32_t kMailbox = kSramBase + 0x100;

SystemBuilder mcu_config() {
  return profiles::modern_mcu().flash_size(64 * 1024);
}

SystemBuilder hp_config() {
  return profiles::legacy_hp().flash_size(64 * 1024);
}

// Busy loop that increments r0 forever (interrupt victim).
void emit_busy_loop(Assembler& a) {
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  a.b(top);
}

// Handler that increments the mailbox word and returns from exception.
Label emit_count_handler(Assembler& a, bool software_save) {
  const Label h = a.bound_label();
  if (software_save) {
    // Software preamble: save what the handler clobbers.
    a.ins(ins_push((1u << r4) | (1u << r5) | (1u << lr)));
  }
  a.load_literal(r4, kMailbox);
  a.ins(ins_ldst_imm(Op::ldr, r5, r4, 0));
  a.ins(ins_rri(Op::add, r5, r5, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r5, r4, 0));
  if (software_save) {
    a.ins(ins_pop((1u << r4) | (1u << r5) | (1u << pc)));
  } else {
    a.ins(ins_ret());  // bx lr -> exception return magic
  }
  a.pool();
  return h;
}

std::uint32_t read_mailbox(System& sys) {
  return sys.bus().read(kMailbox, 4, mem::Access::read, 0).value;
}

// ----- ClassicVic ---------------------------------------------------------------

TEST(ClassicVicTest, IrqEntryRunsHandlerAndReturns) {
  Assembler a(Encoding::w32, kFlashBase);
  const Label entry = a.bound_label();
  emit_busy_loop(a);
  a.pool();
  const Label handler = emit_count_handler(a, /*software_save=*/true);
  const Image image = a.assemble();

  System sys(hp_config());
  sys.load(image);
  ClassicVic::Config vc;
  vc.irq_handler = a.label_address(handler);
  ClassicVic vic(vc);
  sys.core().set_interrupt_controller(&vic);
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  for (int k = 0; k < 50; ++k) {
    (void)sys.core().step();
  }
  const std::uint32_t loop_count_before = sys.core().reg(r0);
  vic.raise(ClassicVic::kIrq, sys.core().cycles());
  for (int k = 0; k < 200; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(read_mailbox(sys), 1u);
  // The main loop resumed and kept counting.
  EXPECT_GT(sys.core().reg(r0), loop_count_before);
  EXPECT_EQ(vic.active_depth(), 0u);
  ASSERT_EQ(vic.latencies(ClassicVic::kIrq).size(), 1u);
}

TEST(ClassicVicTest, MaskedIrqWaits) {
  Assembler a(Encoding::w32, kFlashBase);
  const Label entry = a.bound_label();
  Instruction cpsid;
  cpsid.op = Op::cps;
  cpsid.uses_imm = true;
  cpsid.imm = 1;
  a.ins(cpsid);
  for (int k = 0; k < 30; ++k) {
    a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  }
  Instruction cpsie = cpsid;
  cpsie.imm = 0;
  a.ins(cpsie);
  emit_busy_loop(a);
  a.pool();
  const Label handler = emit_count_handler(a, true);
  const Image image = a.assemble();

  System sys(hp_config());
  sys.load(image);
  ClassicVic::Config vc;
  vc.irq_handler = a.label_address(handler);
  ClassicVic vic(vc);
  sys.core().set_interrupt_controller(&vic);
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  (void)sys.core().step();  // cpsid
  vic.raise(ClassicVic::kIrq, sys.core().cycles());
  for (int k = 0; k < 10; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(read_mailbox(sys), 0u);  // still masked
  for (int k = 0; k < 100; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(read_mailbox(sys), 1u);  // taken after cpsie
}

TEST(ClassicVicTest, NmiFiqIgnoresMasking) {
  Assembler a(Encoding::w32, kFlashBase);
  const Label entry = a.bound_label();
  Instruction cpsid;
  cpsid.op = Op::cps;
  cpsid.uses_imm = true;
  cpsid.imm = 1;
  a.ins(cpsid);
  emit_busy_loop(a);
  a.pool();
  const Label handler = emit_count_handler(a, true);
  const Image image = a.assemble();

  for (const bool nmi : {false, true}) {
    System sys(hp_config());
    sys.load(image);
    ClassicVic::Config vc;
    vc.fiq_handler = a.label_address(handler);
    vc.fiq_is_nmi = nmi;
    ClassicVic vic(vc);
    sys.core().set_interrupt_controller(&vic);
    sys.core().reset(a.label_address(entry), sys.initial_sp());
    for (int k = 0; k < 20; ++k) {
      (void)sys.core().step();
    }
    vic.raise(ClassicVic::kFiq, sys.core().cycles());
    for (int k = 0; k < 100; ++k) {
      (void)sys.core().step();
    }
    // With masking honored the FIQ starves behind cpsid; as NMI it lands.
    EXPECT_EQ(read_mailbox(sys), nmi ? 1u : 0u) << "nmi=" << nmi;
  }
}

TEST(ClassicVicTest, FiqPreemptsIrqHandler) {
  Assembler a(Encoding::w32, kFlashBase);
  const Label entry = a.bound_label();
  emit_busy_loop(a);
  a.pool();
  // IRQ handler: long spin so the FIQ arrives mid-handler.
  const Label irq_handler = a.bound_label();
  a.ins(ins_push((1u << r4) | (1u << lr)));
  a.ins(ins_mov_imm(r4, 200, SetFlags::any));
  const Label spin = a.bound_label();
  a.ins(ins_rri(Op::sub, r4, r4, 1, SetFlags::yes));
  a.b(spin, Cond::ne);
  a.load_literal(r4, kMailbox + 4);
  a.ins(ins_mov_imm(r5, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r5, r4, 0));
  a.ins(ins_pop((1u << r4) | (1u << pc)));
  a.pool();
  const Label fiq_handler = emit_count_handler(a, true);
  const Image image = a.assemble();

  System sys(hp_config());
  sys.load(image);
  ClassicVic::Config vc;
  vc.irq_handler = a.label_address(irq_handler);
  vc.fiq_handler = a.label_address(fiq_handler);
  vc.fiq_is_nmi = true;  // cut through the I-bit set on IRQ entry
  ClassicVic vic(vc);
  sys.core().set_interrupt_controller(&vic);
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  for (int k = 0; k < 10; ++k) {
    (void)sys.core().step();
  }
  vic.raise(ClassicVic::kIrq, sys.core().cycles());
  for (int k = 0; k < 30; ++k) {
    (void)sys.core().step();  // inside IRQ handler spin now
  }
  EXPECT_EQ(vic.active_depth(), 1u);
  vic.raise(ClassicVic::kFiq, sys.core().cycles());
  for (int k = 0; k < 40; ++k) {
    (void)sys.core().step();
  }
  // FIQ completed while IRQ still active underneath.
  EXPECT_EQ(read_mailbox(sys), 1u);
  EXPECT_EQ(vic.active_depth(), 1u);
  for (int k = 0; k < 2000 && vic.active_depth() != 0; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(vic.active_depth(), 0u);
}

// ----- Ivc ------------------------------------------------------------------------

struct IvcFixture {
  System sys{mcu_config()};
  Ivc ivc;
  std::uint32_t entry = 0;

  explicit IvcFixture(Assembler& a, Label entry_label, Label handler,
                      unsigned lines = 4)
      : ivc(make_config(lines)) {
    const Image image = a.assemble();
    sys.load(image);
    entry = a.label_address(entry_label);
    // Vector table in SRAM: all lines point at `handler`.
    for (unsigned k = 0; k < lines; ++k) {
      const std::uint32_t v = a.label_address(handler);
      const std::uint8_t bytes[4] = {
          static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
          static_cast<std::uint8_t>(v >> 16),
          static_cast<std::uint8_t>(v >> 24)};
      ACES_CHECK(sys.bus().load_image(vector_table() + 4 * k, bytes, 4));
    }
    sys.core().set_interrupt_controller(&ivc);
    sys.core().reset(entry, sys.initial_sp());
  }

  static std::uint32_t vector_table() { return kSramBase + 0x40; }
  static Ivc::Config make_config(unsigned lines) {
    Ivc::Config c;
    c.vector_table = vector_table();
    c.lines = lines;
    return c;
  }
};

TEST(IvcTest, HardwareStackingPreservesCallerSaved) {
  // Handler deliberately trashes r0-r3 and r12; main loop must not notice.
  Assembler a(Encoding::b32, kFlashBase);
  const Label entry = a.bound_label();
  a.ins(ins_mov_imm(r1, 111, SetFlags::any));
  a.ins(ins_mov_imm(r2, 222, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  a.b(top);
  a.pool();
  const Label handler = a.bound_label();
  a.ins(ins_mov_imm(r1, 9, SetFlags::any));
  a.ins(ins_mov_imm(r2, 9, SetFlags::any));
  a.ins(ins_mov_imm(r3, 9, SetFlags::any));
  a.load_literal(r3, kMailbox);
  a.ins(ins_mov_imm(r2, 5, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_ret());
  a.pool();

  IvcFixture f(a, entry, handler);
  f.ivc.enable_line(1, 32);
  for (int k = 0; k < 20; ++k) {
    (void)f.sys.core().step();
  }
  f.ivc.raise(1, f.sys.core().cycles());
  for (int k = 0; k < 100; ++k) {
    (void)f.sys.core().step();
  }
  EXPECT_EQ(f.sys.bus().read(kMailbox, 4, mem::Access::read, 0).value, 5u);
  EXPECT_EQ(f.sys.core().reg(r1), 111u);  // restored by unstacking
  EXPECT_EQ(f.sys.core().reg(r2), 222u);
  EXPECT_EQ(f.ivc.stats().entries, 1u);
  EXPECT_EQ(f.ivc.stats().returns, 1u);
  EXPECT_EQ(f.ivc.stats().tail_chains, 0u);
}

TEST(IvcTest, TailChainingSkipsUnstackRestack) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label entry = a.bound_label();
  emit_busy_loop(a);
  a.pool();
  const Label handler = emit_count_handler(a, /*software_save=*/false);
  IvcFixture f(a, entry, handler);
  f.ivc.enable_line(1, 32);
  f.ivc.enable_line(2, 40);
  for (int k = 0; k < 10; ++k) {
    (void)f.sys.core().step();
  }
  // Raise both: the second should be tail-chained after the first handler.
  f.ivc.raise(1, f.sys.core().cycles());
  f.ivc.raise(2, f.sys.core().cycles());
  for (int k = 0; k < 300; ++k) {
    (void)f.sys.core().step();
  }
  EXPECT_EQ(f.sys.bus().read(kMailbox, 4, mem::Access::read, 0).value, 2u);
  EXPECT_EQ(f.ivc.stats().entries, 2u);
  EXPECT_EQ(f.ivc.stats().tail_chains, 1u);
  EXPECT_EQ(f.ivc.stats().returns, 1u);  // only the last return unstacks
}

TEST(IvcTest, PriorityNesting) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label entry = a.bound_label();
  emit_busy_loop(a);
  a.pool();
  // Low-priority handler spins long enough to be preempted.
  const Label slow_handler = a.bound_label();
  a.ins(ins_mov_imm(r0, 100, SetFlags::any));
  const Label spin = a.bound_label();
  a.ins(ins_rri(Op::sub, r0, r0, 1, SetFlags::yes));
  a.b(spin, Cond::ne);
  a.ins(ins_ret());
  a.pool();

  const Image image = a.assemble();
  System sys(mcu_config());
  sys.load(image);
  Ivc::Config c;
  c.vector_table = kSramBase + 0x40;
  c.lines = 4;
  Ivc ivc(c);
  // Line 1 -> slow handler (prio 64); line 2 -> fast count handler... both
  // share slow handler here; we only watch depths.
  for (unsigned k = 0; k < 4; ++k) {
    const std::uint32_t v = a.label_address(slow_handler);
    const std::uint8_t bytes[4] = {
        static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
    ACES_CHECK(sys.bus().load_image(c.vector_table + 4 * k, bytes, 4));
  }
  ivc.enable_line(1, 64);
  ivc.enable_line(2, 16);  // more urgent
  sys.core().set_interrupt_controller(&ivc);
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  for (int k = 0; k < 10; ++k) {
    (void)sys.core().step();
  }
  ivc.raise(1, sys.core().cycles());
  for (int k = 0; k < 20; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(ivc.active_depth(), 1u);
  ivc.raise(2, sys.core().cycles());
  for (int k = 0; k < 5; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(ivc.active_depth(), 2u);  // nested
  EXPECT_EQ(ivc.stats().preemptions, 1u);
  for (int k = 0; k < 3000 && ivc.active_depth() != 0; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(ivc.active_depth(), 0u);
}

TEST(IvcTest, EqualPriorityDoesNotPreempt) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label entry = a.bound_label();
  emit_busy_loop(a);
  a.pool();
  const Label handler = a.bound_label();
  a.ins(ins_mov_imm(r0, 50, SetFlags::any));
  const Label spin = a.bound_label();
  a.ins(ins_rri(Op::sub, r0, r0, 1, SetFlags::yes));
  a.b(spin, Cond::ne);
  a.ins(ins_ret());
  a.pool();
  IvcFixture f(a, entry, handler);
  f.ivc.enable_line(1, 32);
  f.ivc.enable_line(2, 32);
  for (int k = 0; k < 10; ++k) {
    (void)f.sys.core().step();
  }
  f.ivc.raise(1, f.sys.core().cycles());
  for (int k = 0; k < 20; ++k) {
    (void)f.sys.core().step();
  }
  f.ivc.raise(2, f.sys.core().cycles());
  for (int k = 0; k < 20; ++k) {
    (void)f.sys.core().step();
  }
  EXPECT_EQ(f.ivc.active_depth(), 1u);  // no preemption at equal priority
  EXPECT_EQ(f.ivc.stats().preemptions, 0u);
}

TEST(IvcTest, PrimaskBlocksAllButNmi) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label entry = a.bound_label();
  Instruction cpsid;
  cpsid.op = Op::cps;
  cpsid.uses_imm = true;
  cpsid.imm = 1;
  a.ins(cpsid);
  emit_busy_loop(a);
  a.pool();
  const Label handler = emit_count_handler(a, false);
  const Image image = a.assemble();

  System sys(mcu_config());
  sys.load(image);
  Ivc::Config c;
  c.vector_table = kSramBase + 0x40;
  c.lines = 4;
  c.nmi_line = 3;
  Ivc ivc(c);
  for (unsigned k = 0; k < 4; ++k) {
    const std::uint32_t v = a.label_address(handler);
    const std::uint8_t bytes[4] = {
        static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
        static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
    ACES_CHECK(sys.bus().load_image(c.vector_table + 4 * k, bytes, 4));
  }
  ivc.enable_line(1, 32);
  sys.core().set_interrupt_controller(&ivc);
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  for (int k = 0; k < 10; ++k) {
    (void)sys.core().step();
  }
  ivc.raise(1, sys.core().cycles());
  for (int k = 0; k < 50; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(read_mailbox(sys), 0u);  // PRIMASK blocks it
  ivc.raise(3, sys.core().cycles());  // NMI line
  for (int k = 0; k < 100; ++k) {
    (void)sys.core().step();
  }
  EXPECT_GE(read_mailbox(sys), 1u);  // NMI lands regardless
}

TEST(IvcTest, WfiWakesOnInterrupt) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label entry = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  const Label after = a.bound_label();
  emit_busy_loop(a);
  a.pool();
  const Label handler = emit_count_handler(a, false);
  (void)after;
  IvcFixture f(a, entry, handler);
  f.ivc.enable_line(1, 32);
  // Step into wfi; core idles.
  for (int k = 0; k < 5; ++k) {
    (void)f.sys.core().step();
  }
  EXPECT_TRUE(f.sys.core().waiting_for_interrupt());
  const std::uint64_t idle_start = f.sys.core().instructions();
  for (int k = 0; k < 10; ++k) {
    (void)f.sys.core().step();
  }
  EXPECT_EQ(f.sys.core().instructions(), idle_start);  // no insns retired
  f.ivc.raise(1, f.sys.core().cycles());
  for (int k = 0; k < 100; ++k) {
    (void)f.sys.core().step();
  }
  EXPECT_EQ(read_mailbox(f.sys), 1u);
  EXPECT_FALSE(f.sys.core().waiting_for_interrupt());
}

// ----- Restartable LDM (§3.1.2) ------------------------------------------------

TEST(RestartableLdm, BoundsInterruptLatency) {
  // A long ldm from slow flash: without restartable transfers the pending
  // interrupt waits for the whole instruction; with them it preempts after
  // the current beat and the ldm restarts afterwards with correct results.
  const auto build = [](bool restartable) {
    Assembler a(Encoding::w32, kFlashBase);
    const Label entry = a.bound_label();
    a.load_literal(r0, kFlashBase + 0x400);  // slow source: flash data
    const Label top = a.bound_label();
    Instruction ldm;
    ldm.op = Op::ldm;
    ldm.rn = r0;
    ldm.reglist = 0x0FF0;  // r4-r11: 8 transfers
    a.ins(ldm);
    a.b(top);
    a.pool();
    const Label handler = emit_count_handler(a, true);
    const Image image = a.assemble();

    const SystemBuilder cfg = hp_config()
                                  .restartable_ldm(restartable)
                                  .flash_wait(12);  // painful random access
    auto sys = std::make_unique<System>(cfg);
    sys->load(image);
    return std::tuple{std::move(sys), a.label_address(handler),
                      a.label_address(entry)};
  };

  std::uint64_t latency[2] = {0, 0};
  std::uint64_t restarts[2] = {0, 0};
  for (const bool restartable : {false, true}) {
    auto [sys, handler_addr, entry_addr] = build(restartable);
    ClassicVic::Config vc;
    vc.irq_handler = handler_addr;
    ClassicVic vic(vc);
    sys->core().set_interrupt_controller(&vic);
    sys->core().reset(entry_addr, sys->initial_sp());
    for (int k = 0; k < 40; ++k) {
      (void)sys->core().step();
    }
    // Assert the line at an exact cycle chosen to land between two beats
    // of the in-flight ldm (each flash beat is ~12 cycles).
    const std::uint64_t raise_at = sys->core().cycles() + 30;
    bool raised = false;
    Core& core = sys->core();
    core.set_cycle_hook([&vic, &raised, raise_at](std::uint64_t now) {
      if (!raised && now >= raise_at) {
        raised = true;
        vic.raise(ClassicVic::kIrq, now);
      }
    });
    for (int k = 0; k < 400; ++k) {
      (void)sys->core().step();
    }
    ASSERT_EQ(vic.latencies(ClassicVic::kIrq).size(), 1u)
        << "restartable=" << restartable;
    latency[restartable ? 1 : 0] = vic.latencies(ClassicVic::kIrq)[0];
    restarts[restartable ? 1 : 0] = sys->core().stats().ldm_restarts;
    // Program still behaves (mailbox got its increment).
    EXPECT_EQ(sys->bus().read(kMailbox, 4, mem::Access::read, 0).value, 1u);
  }
  EXPECT_GT(restarts[1], 0u);
  EXPECT_EQ(restarts[0], 0u);
  // The restartable configuration must strictly reduce worst-observed
  // latency (the paper's predictability claim).
  EXPECT_LT(latency[1], latency[0]);
}

}  // namespace
}  // namespace aces::cpu
