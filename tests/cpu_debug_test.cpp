// Flash-patch/breakpoint unit and single-wire debug port tests (§3.2.2).
#include <gtest/gtest.h>

#include "cpu/fpb.h"
#include "cpu/profiles.h"
#include "cpu/swd.h"
#include "cpu/system.h"
#include "isa/assembler.h"

namespace aces::cpu {
namespace {

using isa::Assembler;
using isa::Encoding;
using isa::Image;
using isa::Instruction;
using isa::Label;
using isa::Op;
using isa::SetFlags;
using namespace isa;

SystemBuilder mcu_config() {
  return profiles::modern_mcu().flash_size(64 * 1024);
}

TEST(Fpb, BreakpointHaltsAtAddress) {
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));
  const Label bp_here = a.bound_label();
  a.ins(ins_mov_imm(r0, 2, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();

  System sys(mcu_config());
  sys.load(image);
  FlashPatchUnit fpb;
  fpb.set_breakpoint(0, a.label_address(bp_here));
  sys.core().set_flash_patch(&fpb);
  sys.core().reset(image.base, sys.initial_sp());
  EXPECT_EQ(sys.core().run(100), HaltReason::breakpoint);
  EXPECT_EQ(sys.core().reg(r0), 1u);  // halted before the second mov
  EXPECT_EQ(sys.core().pc(), a.label_address(bp_here));
}

TEST(Fpb, PatchSubstitutesInstruction) {
  // Patch `mov r0, #2` to `mov r0, #99` without touching flash — the
  // on-the-fly calibration mechanism.
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));
  const Label site = a.bound_label();
  a.ins(ins_mov_imm(r0, 2, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();

  System sys(mcu_config());
  sys.load(image);
  FlashPatchUnit fpb;
  FlashPatchUnit::Patch patch;
  patch.breakpoint = false;
  patch.replacement = ins_mov_imm(r0, 99, SetFlags::any);
  patch.replacement_size = 2;
  fpb.set_patch(0, a.label_address(site), patch);
  sys.core().set_flash_patch(&fpb);
  EXPECT_EQ(sys.call(image.base), 99u);
  // Remove the patch: original behavior returns.
  fpb.clear(0);
  EXPECT_EQ(sys.call(image.base), 2u);
}

TEST(Fpb, EightSlots) {
  FlashPatchUnit fpb;
  for (unsigned k = 0; k < FlashPatchUnit::kSlots; ++k) {
    fpb.set_breakpoint(k, 0x100 + 2 * k);
  }
  EXPECT_EQ(fpb.used_slots(), 8u);
  EXPECT_THROW(fpb.set_breakpoint(8, 0x200), std::logic_error);
  fpb.clear_all();
  EXPECT_EQ(fpb.used_slots(), 0u);
}

struct SwdFixture {
  System sys{mcu_config()};
  SingleWireDebug port{sys.core(), sys.bus()};
  SwdHost host{port};
};

TEST(Swd, MemoryReadWriteOverOneWire) {
  SwdFixture f;
  ASSERT_TRUE(f.host.write_mem(kSramBase + 0x20, 0xCAFED00D));
  const auto v = f.host.read_mem(kSramBase + 0x20);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xCAFED00Du);
  // The transfer really was bit-serial: a write frame alone is ~70 bits.
  EXPECT_GT(f.port.bits_transferred(), 140u);
}

TEST(Swd, FlashProgrammingViaDebugPort) {
  // "Dynamic download ... for writing system and scaling parameters":
  // the debug port can program flash even though the bus rejects writes.
  SwdFixture f;
  EXPECT_EQ(f.sys.bus().write(kFlashBase + 0x800, 4, 1, 0).fault,
            mem::Fault::readonly);
  ASSERT_TRUE(f.host.write_mem(kFlashBase + 0x800, 0x12345678));
  EXPECT_EQ(f.sys.bus().read(kFlashBase + 0x800, 4, mem::Access::read, 0)
                .value,
            0x12345678u);
}

TEST(Swd, RegisterAccess) {
  SwdFixture f;
  f.sys.core().set_reg(isa::r5, 0xAABBCCDD);
  const auto v = f.host.read_reg(5);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 0xAABBCCDDu);
  ASSERT_TRUE(f.host.write_reg(3, 0x11223344));
  EXPECT_EQ(f.sys.core().reg(isa::r3), 0x11223344u);
}

TEST(Swd, PsrReadback) {
  SwdFixture f;
  isa::Flags flags;
  flags.z = true;
  flags.c = true;
  f.sys.core().set_flags(flags);
  const auto v = f.host.read_reg(16);
  ASSERT_TRUE(v.has_value());
  EXPECT_TRUE((*v >> 30) & 1u);  // Z
  EXPECT_TRUE((*v >> 29) & 1u);  // C
  EXPECT_FALSE((*v >> 31) & 1u); // N
}

TEST(Swd, HaltResume) {
  SwdFixture f;
  ASSERT_TRUE(f.host.halt());
  EXPECT_TRUE(f.port.halted_by_debugger());
  ASSERT_TRUE(f.host.resume());
  EXPECT_FALSE(f.port.halted_by_debugger());
}

TEST(Swd, ParityErrorRejected) {
  SwdFixture f;
  // Hand-craft a read_reg frame with a deliberately wrong parity bit.
  std::vector<bool> frame;
  const unsigned op = static_cast<unsigned>(SwdOp::read_reg);
  for (unsigned k = 0; k < 4; ++k) {
    frame.push_back(((op >> k) & 1u) != 0);
  }
  for (unsigned k = 0; k < 32; ++k) {
    frame.push_back(false);  // addr = 0
  }
  bool parity = false;
  for (const bool b : frame) {
    parity ^= b;
  }
  frame.push_back(!parity);  // corrupted parity

  f.port.shift_in(true);  // START
  for (const bool b : frame) {
    f.port.shift_in(b);
  }
  EXPECT_FALSE(f.port.shift_out());  // NAK
}

TEST(Swd, BadAddressNaks) {
  SwdFixture f;
  EXPECT_FALSE(f.host.read_mem(0x7000'0000).has_value());
  EXPECT_FALSE(f.host.read_reg(31).has_value());
}

}  // namespace
}  // namespace aces::cpu
