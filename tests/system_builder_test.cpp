// SystemBuilder / profiles / bus-composition tests: the declarative
// machine-description layer added by the builder redesign.
#include <gtest/gtest.h>

#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "cpu/vic.h"
#include "isa/assembler.h"
#include "mem/sram.h"

namespace aces::cpu {
namespace {

using isa::Assembler;
using isa::Encoding;
using isa::Image;
using isa::Label;
using isa::Op;
using isa::SetFlags;
using namespace isa;

// Assembles `mov r0, #42; bx lr` for the system's configured encoding.
Image forty_two(Encoding e) {
  Assembler a(e, kFlashBase);
  a.ins(ins_mov_imm(r0, 42, SetFlags::any));
  a.ins(ins_ret());
  return a.assemble();
}

// ----- profiles -------------------------------------------------------------

TEST(Profiles, PresetsRoundTripThroughBuildAndRun) {
  struct Case {
    SystemBuilder builder;
    Encoding encoding;
  };
  const Case cases[] = {
      {profiles::legacy_hp(), Encoding::w32},
      {profiles::legacy_hp(Encoding::n16), Encoding::n16},
      {profiles::cached_hp(), Encoding::w32},
      {profiles::modern_mcu(), Encoding::b32},
  };
  for (const Case& c : cases) {
    System sys(c.builder);
    EXPECT_EQ(sys.core().config().encoding, c.encoding);
    sys.load(forty_two(c.encoding));
    EXPECT_EQ(sys.call(kFlashBase), 42u);
  }
}

TEST(Profiles, CachedHpHasAnICacheOverFlash) {
  System cached(profiles::cached_hp());
  System plain(profiles::legacy_hp());
  EXPECT_NE(cached.icache(), nullptr);
  EXPECT_EQ(plain.icache(), nullptr);

  // The cache is load-bearing: the same program costs fewer cycles on the
  // cached profile once the loop is hot.
  Assembler a(Encoding::w32, kFlashBase);
  a.ins(ins_mov_imm(r0, 2000, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::sub, r0, r0, 1, SetFlags::yes));
  a.b(top, isa::Cond::ne);
  a.ins(ins_ret());
  const Image image = a.assemble();
  cached.load(image);
  plain.load(image);
  (void)cached.call(kFlashBase);
  (void)plain.call(kFlashBase);
  EXPECT_LT(cached.core().cycles(), plain.core().cycles());
  EXPECT_GT(cached.icache()->stats().hits, 0u);
}

TEST(Profiles, ByNameMatchesDirectConstruction) {
  for (const std::string_view name : profiles::names()) {
    System sys(profiles::by_name(name));
    const Encoding e = sys.core().config().encoding;
    sys.load(forty_two(e));
    EXPECT_EQ(sys.call(kFlashBase), 42u) << name;
  }
  EXPECT_EQ(System(profiles::by_name("modern-mcu")).core().config().encoding,
            Encoding::b32);
  EXPECT_THROW((void)profiles::by_name("pentium"), std::logic_error);
}

TEST(Profiles, LegacyHpRejectsB32) {
  EXPECT_THROW((void)profiles::legacy_hp(Encoding::b32), std::logic_error);
}

// ----- builder semantics ----------------------------------------------------

TEST(SystemBuilder, IsAReusableValue) {
  const SystemBuilder desc = profiles::modern_mcu().sram(32 * 1024);
  System first(desc);
  System second(desc);  // same description, independent machine
  ASSERT_TRUE(
      first.bus().write(kSramBase, 4, 0xDEADBEEFu, 0).ok());
  EXPECT_EQ(second.bus().read(kSramBase, 4, mem::Access::read, 0).value, 0u);
  EXPECT_EQ(first.initial_sp(), kSramBase + 32 * 1024);
}

TEST(SystemBuilder, MemoriesAttachAtArbitraryBases) {
  constexpr std::uint32_t kAltSram = 0x6000'0000u;
  System sys(profiles::modern_mcu().sram(16 * 1024, kAltSram));
  EXPECT_EQ(sys.initial_sp(), kAltSram + 16 * 1024);
  EXPECT_TRUE(sys.bus().write(kAltSram, 4, 7, 0).ok());
  // Nothing lives at the default SRAM base anymore.
  EXPECT_EQ(sys.bus().read(kSramBase, 4, mem::Access::read, 0).fault,
            mem::Fault::unmapped);
}

TEST(SystemBuilder, ExternalDeviceAttaches) {
  mem::Sram periph("regfile", 256);
  System sys(profiles::modern_mcu().device(kPeriphBase, periph));
  ASSERT_TRUE(sys.bus().write(kPeriphBase + 8, 4, 0x1234u, 0).ok());
  EXPECT_EQ(sys.bus().read(kPeriphBase + 8, 4, mem::Access::read, 0).value,
            0x1234u);
  // The device is shared, not copied: the external handle sees the write.
  EXPECT_EQ(periph.read(8, 4, mem::Access::read, 0).value, 0x1234u);
}

TEST(SystemBuilder, OwnedDeviceFactoryRunsPerBuild) {
  int built = 0;
  const SystemBuilder desc = profiles::modern_mcu().device(
      kPeriphBase, [&built]() -> std::unique_ptr<mem::Device> {
        ++built;
        return std::make_unique<mem::Sram>("scratch", 128);
      });
  System one(desc);
  System two(desc);
  EXPECT_EQ(built, 2);
  ASSERT_TRUE(one.bus().write(kPeriphBase, 4, 5, 0).ok());
  EXPECT_EQ(two.bus().read(kPeriphBase, 4, mem::Access::read, 0).value, 0u);
}

TEST(SystemBuilder, OwnsTheMpuLayer) {
  // An unprivileged core behind an MPU with no regions granted: the very
  // first fetch is denied, so the program cannot run.
  System sys(profiles::modern_mcu()
                 .privileged(false)
                 .mpu(mem::MpuConfig::fine()));
  ASSERT_NE(sys.mpu(), nullptr);
  sys.load(forty_two(Encoding::b32));
  EXPECT_THROW((void)sys.call(kFlashBase), std::logic_error);
  EXPECT_EQ(sys.core().halt_reason(), HaltReason::fault);
  EXPECT_GT(sys.mpu()->stats().violations, 0u);
}

TEST(SystemBuilder, OwnsTheFaultInjector) {
  mem::TcmConfig tc;
  tc.size_bytes = 4 * 1024;
  mem::FaultInjectorConfig fic;
  fic.upsets_per_mcycle = 1e6;  // practically every cycle
  System sys(profiles::modern_mcu().tcm(tc).fault_injector(fic, 7));
  ASSERT_NE(sys.fault_injector(), nullptr);

  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_mov_imm(r0, 200, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::sub, r0, r0, 1, SetFlags::yes));
  a.b(top, isa::Cond::ne);
  a.ins(ins_ret());
  sys.load(a.assemble());
  (void)sys.call(kFlashBase);
  // The injector advanced with the core's clock without any manual wiring.
  EXPECT_GT(sys.fault_injector()->injected(), 0u);
}

TEST(SystemBuilder, ComposedCycleHookRunsAfterInjector) {
  mem::TcmConfig tc;
  tc.size_bytes = 1024;
  System sys(profiles::modern_mcu().tcm(tc).fault_injector(
      mem::FaultInjectorConfig{}, 3));
  std::uint64_t ticks = 0;
  sys.set_cycle_hook([&ticks](std::uint64_t) { ++ticks; });
  sys.load(forty_two(Encoding::b32));
  (void)sys.call(kFlashBase);
  EXPECT_GT(ticks, 0u);
}

TEST(SystemBuilder, OwnsTheInterruptController) {
  constexpr std::uint32_t kVectors = kSramBase + 0x40;
  constexpr std::uint32_t kMailbox = kSramBase + 0x100;

  Assembler a(Encoding::b32, kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r6, r6, 1, SetFlags::any));
  a.b(top);
  a.pool();
  const Label handler = a.bound_label();
  a.load_literal(r4, kMailbox);
  a.ins(ins_ldst_imm(Op::ldr, r5, r4, 0));
  a.ins(ins_rri(Op::add, r5, r5, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r5, r4, 0));
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  Ivc::Config ic;
  ic.vector_table = kVectors;
  ic.lines = 4;
  System sys(profiles::modern_mcu().ivc(ic));
  ASSERT_NE(sys.ivc(), nullptr);
  EXPECT_EQ(sys.intc(), sys.ivc());
  EXPECT_EQ(sys.vic(), nullptr);

  sys.load(image);
  const std::uint32_t v = a.label_address(handler);
  const std::uint8_t vb[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  for (unsigned k = 0; k < 4; ++k) {
    ASSERT_TRUE(sys.bus().load_image(kVectors + 4 * k, vb, 4));
  }
  sys.ivc()->enable_line(1, 32);
  sys.core().reset(a.label_address(entry), sys.initial_sp());
  for (int k = 0; k < 10; ++k) {
    (void)sys.core().step();
  }
  sys.ivc()->raise(1, sys.core().cycles());
  for (int k = 0; k < 200; ++k) {
    (void)sys.core().step();
  }
  EXPECT_EQ(sys.bus().read(kMailbox, 4, mem::Access::read, 0).value, 1u);
  EXPECT_EQ(sys.ivc()->stats().entries, 1u);
}

TEST(SystemBuilder, VicAndIvcAreMutuallyExclusive) {
  ClassicVic::Config vc;
  System sys(profiles::legacy_hp().ivc(Ivc::Config{}).vic(vc));
  EXPECT_NE(sys.vic(), nullptr);  // last call wins
  EXPECT_EQ(sys.ivc(), nullptr);
}

// ----- System::call argument limit (regression) ----------------------------

TEST(SystemCall, RejectsMoreThanFourArguments) {
  System sys(profiles::modern_mcu());
  sys.load(forty_two(Encoding::b32));
  EXPECT_EQ(sys.call(kFlashBase, {1, 2, 3, 4}), 42u);
  EXPECT_THROW((void)sys.call(kFlashBase, {1, 2, 3, 4, 5}), std::logic_error);
}

// ----- bus fault paths ------------------------------------------------------

TEST(BusFaults, UnmappedAndMisalignedAndStraddle) {
  System sys(profiles::modern_mcu().sram(64 * 1024));
  mem::Bus& bus = sys.bus();

  EXPECT_EQ(bus.read(0x9000'0000u, 4, mem::Access::read, 0).fault,
            mem::Fault::unmapped);
  EXPECT_EQ(bus.write(0x9000'0000u, 4, 0, 0).fault, mem::Fault::unmapped);
  EXPECT_EQ(bus.read(kSramBase + 2, 4, mem::Access::read, 0).fault,
            mem::Fault::misaligned);
  EXPECT_EQ(bus.read(kSramBase + 1, 2, mem::Access::read, 0).fault,
            mem::Fault::misaligned);
  // The last word of the device is fine; just below the device misses.
  EXPECT_TRUE(bus.read(kSramBase + 64 * 1024 - 4, 4, mem::Access::read, 0)
                  .ok());
  EXPECT_EQ(bus.read(kSramBase - 4, 4, mem::Access::read, 0).fault,
            mem::Fault::unmapped);

  // An aligned access that runs off the end of a device (odd-sized device)
  // straddles the boundary and faults.
  mem::Sram tiny("tiny", 6);
  mem::Bus small;
  small.attach(0x1000, tiny);
  EXPECT_TRUE(small.read(0x1000, 4, mem::Access::read, 0).ok());
  EXPECT_EQ(small.read(0x1004, 4, mem::Access::read, 0).fault,
            mem::Fault::misaligned);
  EXPECT_TRUE(small.read(0x1004, 2, mem::Access::read, 0).ok());
}

TEST(BusFaults, OverlappingAttachNamesBothDevices) {
  mem::Sram a("alpha", 0x1000);
  mem::Sram b("beta", 0x1000);
  mem::Bus bus;
  bus.attach(0x1000, a);
  try {
    bus.attach(0x1800, b);  // overlaps the tail of alpha
    FAIL() << "overlap accepted";
  } catch (const std::logic_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("alpha"), std::string::npos) << msg;
    EXPECT_NE(msg.find("beta"), std::string::npos) << msg;
  }
  // Same check against a device mapped above.
  mem::Sram c("gamma", 0x1000);
  try {
    bus.attach(0x800, c);  // tail lands inside alpha
    FAIL() << "overlap accepted";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("alpha"), std::string::npos);
  }
  // Adjacent (touching, not overlapping) regions are legal.
  bus.attach(0x2000, b);
  bus.attach(0x0, c);
}

TEST(BusFaults, BuilderRefusesOverlappingMemoryMap) {
  // SRAM mapped on top of flash: the bus rejects it at build time.
  EXPECT_THROW(
      System sys(profiles::modern_mcu().sram(64 * 1024, kFlashBase + 0x1000)),
      std::logic_error);
}

TEST(BusFaults, BinarySearchAgreesWithLinearScanAcrossManyDevices) {
  // A dense many-device map (16 peripherals) probed at every boundary.
  std::vector<std::unique_ptr<mem::Sram>> devs;
  mem::Bus bus;
  for (unsigned k = 0; k < 16; ++k) {
    devs.push_back(std::make_unique<mem::Sram>("p" + std::to_string(k), 64));
    bus.attach(0x4000'0000u + k * 0x100u, *devs.back());
  }
  for (unsigned k = 0; k < 16; ++k) {
    const std::uint32_t base = 0x4000'0000u + k * 0x100u;
    std::uint32_t off = 99;
    EXPECT_EQ(bus.device_at(base, &off), devs[k].get());
    EXPECT_EQ(off, 0u);
    EXPECT_EQ(bus.device_at(base + 63, &off), devs[k].get());
    EXPECT_EQ(off, 63u);
    EXPECT_EQ(bus.device_at(base + 64, nullptr), nullptr);  // gap above
    EXPECT_EQ(bus.device_at(base - 1, nullptr), nullptr);   // gap below
  }
  EXPECT_EQ(bus.device_at(0x3FFF'FFFFu, nullptr), nullptr);
  EXPECT_EQ(bus.device_at(0x4000'0F40u, nullptr), nullptr);
}

}  // namespace
}  // namespace aces::cpu
