// Campaign engine: expansion, determinism under concurrency, exact replay,
// bound soundness, and the stats-hygiene contract campaigns depend on.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "campaign/presets.h"
#include "campaign/runner.h"
#include "net/network.h"
#include "support/splitmix.h"

namespace aces {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

// A trimmed vehicle campaign small enough for unit tests: the full preset
// topology, a reduced grid.
campaign::ScenarioSpec small_vehicle(SimTime horizon, std::uint32_t reps) {
  campaign::ScenarioSpec spec = campaign::presets::vehicle_spec(horizon);
  spec.axes = {
      {"error_period_ns", {0.0, 10.0e6}},
      {"gw_depth", {8.0, 1.0}},
      {"load_pct", {100.0, 130.0}},
  };
  spec.replicates = reps;
  return spec;
}

// ----- expansion -------------------------------------------------------------

TEST(CampaignSpec, ExpansionIsCartesianWithDerivedSeeds) {
  campaign::ScenarioSpec spec;
  spec.name = "grid";
  spec.master_seed = 7;
  spec.axes = {{"a", {1.0, 2.0, 3.0}}, {"b", {10.0, 20.0}}};
  spec.replicates = 2;
  ASSERT_EQ(spec.variant_count(), 12u);

  const auto variants = spec.expand();
  ASSERT_EQ(variants.size(), 12u);
  std::set<std::uint64_t> seeds;
  for (std::size_t k = 0; k < variants.size(); ++k) {
    const campaign::Variant& v = variants[k];
    EXPECT_EQ(v.index, k);
    EXPECT_EQ(v.seed, support::derive_stream(7, k));
    seeds.insert(v.seed);
    // First axis varies slowest, replicate fastest.
    const auto cell = k / 2;
    EXPECT_EQ(v.replicate, k % 2);
    EXPECT_DOUBLE_EQ(v.param("a"), spec.axes[0].values[cell / 2]);
    EXPECT_DOUBLE_EQ(v.param("b"), spec.axes[1].values[cell % 2]);
  }
  EXPECT_EQ(seeds.size(), 12u);  // collision-free by construction

  // variant(k) is exactly expand()[k]; bad indices and axes are spec bugs.
  const campaign::Variant v5 = spec.variant(5);
  EXPECT_EQ(v5.seed, variants[5].seed);
  EXPECT_EQ(v5.params, variants[5].params);
  EXPECT_THROW((void)spec.variant(12), std::logic_error);
  EXPECT_THROW((void)v5.param("nope"), std::logic_error);
}

// ----- determinism under concurrency ----------------------------------------

TEST(Campaign, WorkerCountDoesNotChangeTheReport) {
  // The satellite contract: the same 64-variant campaign run with one
  // worker and with several produces byte-identical deterministic reports
  // (results are keyed by variant index, never completion order).
  const campaign::ScenarioSpec spec = small_vehicle(50 * kMillisecond, 8);
  ASSERT_EQ(spec.variant_count(), 64u);

  campaign::CampaignRunner::Config one;
  one.workers = 1;
  campaign::CampaignRunner::Config four;
  four.workers = 4;
  const campaign::CampaignResult a =
      campaign::CampaignRunner(one).run(spec);
  const campaign::CampaignResult b =
      campaign::CampaignRunner(four).run(spec);

  ASSERT_EQ(a.variants.size(), b.variants.size());
  for (std::size_t k = 0; k < a.variants.size(); ++k) {
    EXPECT_EQ(a.variants[k].fingerprint, b.variants[k].fingerprint);
    EXPECT_EQ(a.variants[k].violations, b.variants[k].violations);
  }
  EXPECT_EQ(a.to_json(/*with_timing=*/false),
            b.to_json(/*with_timing=*/false));
  EXPECT_EQ(a.workers, 1u);
  EXPECT_EQ(b.workers, 4u);
}

TEST(Campaign, ThreadBudgetBoundsWorkersTimesVariantThreads) {
  const campaign::ScenarioSpec spec = small_vehicle(50 * kMillisecond, 8);

  // workers x variant_threads <= thread_budget: an 8-thread budget with
  // 2 shard threads per variant caps the pool at 4 workers, whatever was
  // requested.
  campaign::CampaignRunner::Config cfg;
  cfg.workers = 16;
  cfg.thread_budget = 8;
  cfg.variant_threads = 2;
  const campaign::CampaignResult capped =
      campaign::CampaignRunner(cfg).run(spec);
  EXPECT_LE(capped.workers * cfg.variant_threads, cfg.thread_budget);
  EXPECT_EQ(capped.workers, 4u);

  // A budget smaller than one variant's fan-out still runs (one worker).
  campaign::CampaignRunner::Config tiny;
  tiny.workers = 16;
  tiny.thread_budget = 1;
  tiny.variant_threads = 4;
  EXPECT_EQ(campaign::CampaignRunner(tiny).run(spec).workers, 1u);
}

TEST(Campaign, ThreadBudgetDoesNotChangeTheReport) {
  // The budget (and the per-variant shard thread count it rations) moves
  // work between threads, never between variants: every budget choice
  // produces a byte-identical deterministic report section.
  const campaign::ScenarioSpec spec = small_vehicle(50 * kMillisecond, 4);

  campaign::CampaignRunner::Config serial;
  serial.workers = 1;
  serial.variant_threads = 1;
  campaign::CampaignRunner::Config budgeted;
  budgeted.workers = 4;
  budgeted.thread_budget = 4;
  budgeted.variant_threads = 2;
  campaign::CampaignRunner::Config wide;
  wide.thread_budget = 16;
  wide.variant_threads = 4;

  const std::string base =
      campaign::CampaignRunner(serial).run(spec).to_json(false);
  EXPECT_EQ(campaign::CampaignRunner(budgeted).run(spec).to_json(false),
            base);
  EXPECT_EQ(campaign::CampaignRunner(wide).run(spec).to_json(false), base);
}

// ----- replay ----------------------------------------------------------------

TEST(Campaign, ReplayReproducesAVariantBitIdentically) {
  const campaign::ScenarioSpec spec = small_vehicle(50 * kMillisecond, 2);
  campaign::CampaignRunner::Config cfg;
  cfg.workers = 2;
  const campaign::CampaignResult result =
      campaign::CampaignRunner(cfg).run(spec);

  // Replay a faulted variant (the interesting case: its RNG draws matter).
  const campaign::VariantResult* target = nullptr;
  for (const auto& v : result.variants) {
    if (v.bit_errors > 0) {
      target = &v;
      break;
    }
  }
  ASSERT_NE(target, nullptr) << "expected at least one faulted variant";

  const campaign::VariantResult replayed =
      campaign::CampaignRunner().replay(spec, target->index, target->seed);
  EXPECT_EQ(replayed.fingerprint, target->fingerprint);
  EXPECT_EQ(replayed.bit_errors, target->bit_errors);
  EXPECT_EQ(replayed.events, target->events);
  ASSERT_EQ(replayed.paths.size(), target->paths.size());
  for (std::size_t k = 0; k < replayed.paths.size(); ++k) {
    EXPECT_EQ(replayed.paths[k].frames, target->paths[k].frames);
    EXPECT_EQ(replayed.paths[k].min_latency, target->paths[k].min_latency);
    EXPECT_EQ(replayed.paths[k].max_latency, target->paths[k].max_latency);
    EXPECT_EQ(replayed.paths[k].total_latency,
              target->paths[k].total_latency);
  }

  // A seed from a different spec revision must fail loudly, not replay
  // the wrong experiment.
  EXPECT_THROW((void)campaign::CampaignRunner().replay(
                   spec, target->index, target->seed + 1),
               std::logic_error);
}

// ----- soundness -------------------------------------------------------------

TEST(Campaign, FaultFreeVariantsStayWithinPathRtaBounds) {
  campaign::ScenarioSpec spec =
      campaign::presets::vehicle_spec(100 * kMillisecond);
  spec.axes = {
      {"error_period_ns", {0.0}},
      {"gw_depth", {8.0, 1.0}},
      {"load_pct", {100.0, 160.0}},
  };
  spec.replicates = 2;
  const campaign::CampaignResult result =
      campaign::CampaignRunner().run(spec);

  EXPECT_EQ(result.bit_errors, 0u);
  for (const auto& v : result.variants) {
    EXPECT_TRUE(v.violations.empty())
        << "variant " << v.index << ": " << v.violations.front();
    for (const auto& p : v.paths) {
      EXPECT_TRUE(p.bound_schedulable);
      EXPECT_FALSE(p.bound_exceeded);
      EXPECT_GT(p.frames, 0u);
      EXPECT_LE(p.max_latency, p.bound);
    }
  }
}

TEST(Campaign, SeededFaultCampaignsInjectAndAreCounted) {
  campaign::ScenarioSpec spec = small_vehicle(50 * kMillisecond, 2);
  const campaign::CampaignResult result =
      campaign::CampaignRunner().run(spec);
  std::uint64_t faulted_bit_errors = 0;
  for (const auto& v : result.variants) {
    double period = -1.0;
    for (const auto& [name, value] : v.params) {
      if (name == "error_period_ns") {
        period = value;
      }
    }
    if (period == 0.0) {
      EXPECT_EQ(v.bit_errors, 0u);
    } else {
      faulted_bit_errors += v.bit_errors;
    }
  }
  EXPECT_GT(faulted_bit_errors, 0u);
  EXPECT_EQ(result.bit_errors, faulted_bit_errors);
}

// ----- node-fault axis, supervision, availability ----------------------------

// One model producer on one bus, publishing 0x120 every 10 ms, with a
// heartbeat-monitoring supervisor that restarts it on a miss. The
// "fault_at_ns" axis sweeps from fault-free (0 disables the plan) to a
// crash mid-run.
campaign::ScenarioSpec fault_drill_spec() {
  campaign::ScenarioSpec spec;
  spec.name = "fault-drill";
  spec.master_seed = 11;
  spec.horizon = 500 * kMillisecond;
  spec.axes = {{"fault_at_ns", {0.0, 100.0e6}}};
  spec.topology = [](const campaign::Variant&) {
    net::NetworkBuilder nb;
    const net::BusId bus = nb.bus("body", 250'000);
    net::ModelTask sender;
    sender.name = "sender";
    sender.priority = 5;
    sender.exec = 200 * kMicrosecond;
    sender.period = 10 * kMillisecond;
    can::CanFrame tx;
    tx.id = 0x120;
    tx.dlc = 4;
    sender.tx = tx;
    nb.ecu(bus, "producer", {sender});
    return nb;
  };
  campaign::NodeFaultPlan nf;
  nf.ecu = 0;
  nf.kind = net::NodeFault::Kind::crash;
  nf.at_axis = "fault_at_ns";
  spec.node_faults.push_back(nf);
  campaign::PathSpec path;
  path.name = "producer_frames";
  path.dst_bus = 0;
  path.dst_id = 0x120;
  path.expected_period = 10 * kMillisecond;
  spec.paths.push_back(path);
  spec.assertions.min_availability = 0.5;
  spec.configure = [](net::Network& net, const campaign::Variant&) {
    can::CanFrame hb;
    hb.id = 0x050;
    hb.dlc = 1;
    net.ecu(0).start_heartbeat(hb, 20 * kMillisecond);
    net::SupervisorNode& sup = net.add_supervisor(0, "sup");
    net::SupervisorNode::Monitor mon;
    mon.name = "producer";
    mon.heartbeat_id = 0x050;
    mon.period = 20 * kMillisecond;
    mon.window = 2 * kMillisecond;
    mon.ecu = &net.ecu(0);
    mon.mitigations.push_back(
        net::Mitigation::restart_ecu(net.ecu(0), 10 * kMillisecond));
    sup.add_monitor(mon);
    sup.start();
  };
  return spec;
}

TEST(Campaign, NodeFaultAxisMeasuresAvailabilityAndRecovery) {
  const campaign::ScenarioSpec spec = fault_drill_spec();
  campaign::CampaignRunner::Config cfg;
  cfg.workers = 1;
  const campaign::CampaignResult result =
      campaign::CampaignRunner(cfg).run(spec);
  ASSERT_EQ(result.variants.size(), 2u);

  // Variant 0: fault_at 0 disables the plan — clean run, full
  // availability, no supervision activity.
  const campaign::VariantResult& clean = result.variants[0];
  EXPECT_EQ(clean.heartbeat_misses, 0u);
  EXPECT_EQ(clean.recoveries, 0u);
  EXPECT_TRUE(clean.recovery_times.empty());
  ASSERT_GE(clean.paths[0].availability, 0.0);
  EXPECT_GT(clean.paths[0].availability, 0.95);
  EXPECT_TRUE(clean.violations.empty());

  // Variant 1: crash at 100 ms, detected and mitigated — a short outage,
  // one recovery, availability degraded but above the floor.
  const campaign::VariantResult& faulted = result.variants[1];
  EXPECT_EQ(faulted.heartbeat_misses, 1u);
  EXPECT_EQ(faulted.mitigations, 1u);
  EXPECT_EQ(faulted.recoveries, 1u);
  ASSERT_EQ(faulted.recovery_times.size(), 1u);
  EXPECT_GT(faulted.recovery_times[0], 0);
  EXPECT_LT(faulted.paths[0].availability, clean.paths[0].availability);
  EXPECT_GT(faulted.paths[0].availability, 0.5);
  EXPECT_FALSE(faulted.watchdog_tripped);
  EXPECT_TRUE(faulted.violations.empty());

  // Campaign roll-up + report sections.
  EXPECT_EQ(result.recoveries, 1u);
  EXPECT_EQ(result.heartbeat_misses, 1u);
  EXPECT_GT(result.recovery_p99, 0);
  EXPECT_GE(result.recovery_max, result.recovery_p99 ? 1 : 0);
  EXPECT_GE(result.paths[0].availability, 0.9);
  EXPECT_EQ(result.paths[0].min_availability,
            faulted.paths[0].availability);
  const std::string json = result.to_json(/*with_timing=*/false);
  EXPECT_NE(json.find("\"supervision\""), std::string::npos);
  EXPECT_NE(json.find("\"availability\""), std::string::npos);
  EXPECT_NE(json.find("\"watchdog_timeouts\": 0"), std::string::npos);
}

TEST(Campaign, NodeFaultVariantReplaysBitIdentically) {
  const campaign::ScenarioSpec spec = fault_drill_spec();
  campaign::CampaignRunner::Config cfg;
  cfg.workers = 2;
  const campaign::CampaignRunner runner(cfg);
  const campaign::CampaignResult result = runner.run(spec);
  const campaign::VariantResult& faulted = result.variants[1];
  ASSERT_EQ(faulted.recoveries, 1u);

  const campaign::VariantResult again =
      runner.replay(spec, faulted.index, faulted.seed);
  EXPECT_EQ(again.fingerprint, faulted.fingerprint);
  EXPECT_EQ(again.recovery_times, faulted.recovery_times);
  EXPECT_EQ(again.paths[0].availability, faulted.paths[0].availability);

  // And the worker count never changes the deterministic report.
  campaign::CampaignRunner::Config one;
  one.workers = 1;
  const campaign::CampaignResult serial =
      campaign::CampaignRunner(one).run(spec);
  EXPECT_EQ(serial.to_json(/*with_timing=*/false),
            result.to_json(/*with_timing=*/false));
}

TEST(Campaign, WatchdogStopsAHungVariantLoudly) {
  campaign::ScenarioSpec spec = fault_drill_spec();
  spec.axes = {{"fault_at_ns", {0.0}}};
  // Wedge the variant: a same-instant livelock armed mid-run.
  const auto base_configure = spec.configure;
  // The chain's queued copies capture a raw pointer to the function (a
  // self-owning shared_ptr would be a leak cycle), so the spec keeps the
  // per-variant function objects alive for the campaign's lifetime.
  auto spins = std::make_shared<
      std::vector<std::shared_ptr<std::function<void()>>>>();
  spec.configure = [base_configure, spins](net::Network& net,
                                           const campaign::Variant& v) {
    base_configure(net, v);
    sim::Simulation& sim = net.shard(0);
    auto spin = std::make_shared<std::function<void()>>();
    *spin = [&sim, raw = spin.get()] { sim.schedule_in(0, *raw); };
    sim.schedule_at(10 * kMillisecond, [spin] { (*spin)(); });
    spins->push_back(spin);
  };
  campaign::CampaignRunner::Config cfg;
  cfg.workers = 1;
  cfg.watchdog_events = 50'000;
  const campaign::CampaignResult result =
      campaign::CampaignRunner(cfg).run(spec);

  ASSERT_EQ(result.variants.size(), 1u);
  const campaign::VariantResult& hung = result.variants[0];
  EXPECT_TRUE(hung.watchdog_tripped);
  ASSERT_FALSE(hung.violations.empty());
  EXPECT_NE(hung.violations.back().find("watchdog"), std::string::npos);
  EXPECT_EQ(result.watchdog_timeouts, 1u);
  EXPECT_NE(result.to_json(false).find("\"watchdog_timeouts\": 1"),
            std::string::npos);

  // The event-count watchdog is deterministic: the stopped variant
  // replays to the same fingerprint.
  const campaign::VariantResult again =
      campaign::CampaignRunner(cfg).replay(spec, hung.index, hung.seed);
  EXPECT_EQ(again.fingerprint, hung.fingerprint);
  EXPECT_TRUE(again.watchdog_tripped);
}

// ----- histogram -------------------------------------------------------------

TEST(CampaignHistogram, BinsPercentilesAndMergeGeometry) {
  campaign::LatencyHistogram h;
  h.bin_width = 100;
  h.bins.assign(5, 0);  // 4 regular bins + overflow
  for (int k = 0; k < 99; ++k) {
    h.add(50);  // bin 0
  }
  h.add(10'000);  // overflow bucket
  EXPECT_EQ(h.bins[0], 99u);
  EXPECT_EQ(h.bins[4], 1u);
  EXPECT_EQ(h.percentile(0.5), 100);   // upper edge of bin 0
  EXPECT_EQ(h.percentile(0.99), 100);
  EXPECT_EQ(h.percentile(1.0), 400);   // ceiling: overflow reports max edge

  campaign::LatencyHistogram other;
  other.bin_width = 100;
  other.bins.assign(5, 0);
  other.add(150);
  h.merge(other);
  EXPECT_EQ(h.bins[1], 1u);

  campaign::LatencyHistogram wrong;
  wrong.bin_width = 7;
  wrong.bins.assign(5, 0);
  EXPECT_THROW(h.merge(wrong), std::logic_error);
}

// ----- stats hygiene ---------------------------------------------------------

// A compact two-bus gateway topology whose periods all divide the window,
// so consecutive measurement windows carry identical traffic.
net::NetworkBuilder hygiene_topology() {
  net::NetworkBuilder nb;
  const net::BusId a = nb.bus("a", 500'000);
  const net::BusId b = nb.bus("b", 250'000);
  net::ModelTask fast;
  fast.name = "fast";
  fast.priority = 5;
  fast.exec = 200 * kMicrosecond;
  fast.period = 5 * kMillisecond;
  can::CanFrame ff;
  ff.id = 0x100;
  ff.dlc = 8;
  fast.tx = ff;
  nb.ecu(a, "tx_fast", {fast});
  net::ModelTask slow;
  slow.name = "slow";
  slow.priority = 5;
  slow.exec = 200 * kMicrosecond;
  slow.period = 10 * kMillisecond;
  can::CanFrame sf;
  sf.id = 0x200;
  sf.dlc = 4;
  slow.tx = sf;
  nb.ecu(b, "tx_slow", {slow});
  net::GatewayConfig gc;
  gc.forwarding_latency = 100 * kMicrosecond;
  gc.queue_depth = 4;
  const net::GatewayId gw = nb.gateway("gw", gc);
  nb.route(gw, {a, b, 0x100, 0x7FF, std::uint32_t{0x300}});
  return nb;
}

struct WindowSnapshot {
  std::uint64_t sent_a = 0, sent_b = 0;
  SimTime worst_a = 0, worst_b = 0;
  std::uint64_t forwarded = 0, delivered = 0, dropped = 0;
  std::uint64_t events = 0;

  [[nodiscard]] static WindowSnapshot capture(net::Network& net) {
    WindowSnapshot s;
    for (const auto& [id, ms] : net.bus(0).stats()) {
      s.sent_a += ms.sent;
      s.worst_a = std::max(s.worst_a, ms.worst_latency);
    }
    for (const auto& [id, ms] : net.bus(1).stats()) {
      s.sent_b += ms.sent;
      s.worst_b = std::max(s.worst_b, ms.worst_latency);
    }
    s.forwarded = net.gateway(0).stats().frames_forwarded;
    s.delivered = net.gateway(0).stats().frames_delivered;
    s.dropped = net.gateway(0).stats().frames_dropped;
    s.events = net.simulation().stats().events_executed;
    return s;
  }

  bool operator==(const WindowSnapshot&) const = default;
};

void reset_all(net::Network& net) {
  for (std::size_t b = 0; b < net.bus_count(); ++b) {
    net.bus(static_cast<net::BusId>(b)).reset_stats();
  }
  for (std::size_t g = 0; g < net.gateway_count(); ++g) {
    net.gateway(static_cast<net::GatewayId>(g)).reset_stats();
  }
  net.simulation().reset_stats();
}

TEST(StatsHygiene, SequentialWindowsMatchFreshRuns) {
  constexpr SimTime kWindow = 100 * kMillisecond;

  // Reused network: warm up one window, then measure two more.
  net::Network reused = hygiene_topology().build();
  reused.run_until(kWindow);
  reset_all(reused);
  reused.run_until(2 * kWindow);
  const auto second = WindowSnapshot::capture(reused);
  reset_all(reused);
  reused.run_until(3 * kWindow);
  const auto third = WindowSnapshot::capture(reused);

  // Fresh network driven identically: its second window must match the
  // reused network's windows exactly — reset_stats leaves no residue and
  // misses nothing.
  net::Network fresh = hygiene_topology().build();
  fresh.run_until(kWindow);
  reset_all(fresh);
  fresh.run_until(2 * kWindow);
  const auto fresh_second = WindowSnapshot::capture(fresh);

  EXPECT_GT(second.sent_a, 0u);
  EXPECT_GT(second.forwarded, 0u);
  EXPECT_TRUE(second == third);
  EXPECT_TRUE(second == fresh_second);
}

TEST(StatsHygiene, ResetClearsFaultCountersAndPreservesLiveState) {
  net::Network net = hygiene_topology().build();
  // Corrupt every first transmission attempt of 0x100 on bus a.
  can::CanBus& bus = net.bus(0);
  bus.set_bit_error_model(
      [](const can::CanFrame& f, can::NodeId, SimTime) {
        static thread_local std::uint64_t n = 0;
        if (f.id == 0x100 && (n++ % 2) == 0) {
          return 20;
        }
        return -1;
      });
  net.run_until(50 * kMillisecond);
  EXPECT_GT(bus.fault_stats().bit_errors, 0u);

  bus.set_bit_error_model(nullptr);
  reset_all(net);
  EXPECT_EQ(bus.fault_stats().bit_errors, 0u);
  EXPECT_EQ(bus.fault_stats().retransmissions, 0u);
  EXPECT_EQ(bus.stats().size(), 0u);
  EXPECT_EQ(net.gateway(0).stats().frames_forwarded, 0u);
  EXPECT_EQ(net.simulation().stats().events_executed, 0u);

  // The network keeps running cleanly after the reset.
  net.run_until(100 * kMillisecond);
  EXPECT_EQ(bus.fault_stats().bit_errors, 0u);
  EXPECT_GT(net.gateway(0).stats().frames_delivered, 0u);
}

}  // namespace
}  // namespace aces
