// Randomized property tests.
//
// 1. KIR program fuzzing: random straight-line programs (arithmetic,
//    selects, bitfields, divides) are executed by a host-side reference
//    interpreter and by the simulator under all three encodings — results
//    must agree bit-for-bit. This sweeps lowering corner cases (two-address
//    fixups, immediate materialization, IT-block selects, spills) far
//    beyond the hand-written kernels.
// 2. Decode fuzzing: random bit patterns either fail to decode or decode to
//    an instruction that re-encodes to the identical bytes (decode/encode
//    fixed point), for every codec.
#include <gtest/gtest.h>

#include "cpu/system.h"
#include "isa/codec.h"
#include "isa/disasm.h"
#include "kir/kir.h"
#include "kir/lower.h"
#include "support/bits.h"
#include "support/rng.h"

namespace aces {
namespace {

using isa::Cond;
using isa::Encoding;
using kir::KFunction;
using kir::KOp;
using kir::VReg;

// ----- 1. KIR fuzz -----------------------------------------------------------

// Host-side interpreter for the generated subset (no memory, no loops).
class KirInterpreter {
 public:
  explicit KirInterpreter(int vregs) : regs_(static_cast<std::size_t>(vregs), 0) {}

  void set(VReg v, std::uint32_t value) {
    regs_[static_cast<std::size_t>(v)] = value;
  }

  std::uint32_t run(const KFunction& f) {
    for (const kir::KInsn& i : f.body()) {
      step(i);
      if (returned_) {
        return result_;
      }
    }
    ADD_FAILURE() << "interpreter fell off the end";
    return 0;
  }

 private:
  [[nodiscard]] std::uint32_t get(VReg v) const {
    return regs_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::uint32_t operand(const kir::KInsn& i) const {
    if (i.b_is_imm) {
      return static_cast<std::uint32_t>(i.imm);
    }
    // One-operand instructions leave b at its -1 sentinel; their (unused)
    // operand must not be read out of regs_.
    return i.b >= 0 ? get(i.b) : 0;
  }
  [[nodiscard]] static bool compare(Cond c, std::uint32_t a,
                                    std::uint32_t b) {
    isa::Flags f;
    const std::uint64_t u = static_cast<std::uint64_t>(a) + (~b) + 1;
    const std::int64_t s =
        static_cast<std::int64_t>(static_cast<std::int32_t>(a)) -
        static_cast<std::int32_t>(b);
    const auto r = static_cast<std::uint32_t>(u);
    f.n = (r >> 31) != 0;
    f.z = r == 0;
    f.c = (u >> 32) != 0;
    f.v = s != static_cast<std::int32_t>(r);
    return isa::cond_holds(c, f);
  }

  void step(const kir::KInsn& i) {
    const std::uint32_t b = i.a >= 0 ? operand(i) : 0;
    switch (i.op) {
      case KOp::movi: set(i.dst, static_cast<std::uint32_t>(i.imm)); break;
      case KOp::mov: set(i.dst, get(i.a)); break;
      case KOp::add: set(i.dst, get(i.a) + b); break;
      case KOp::sub: set(i.dst, get(i.a) - b); break;
      case KOp::rsb: set(i.dst, b - get(i.a)); break;
      case KOp::mul: set(i.dst, get(i.a) * b); break;
      case KOp::udiv: set(i.dst, b == 0 ? 0 : get(i.a) / b); break;
      case KOp::sdiv: {
        const auto n = static_cast<std::int32_t>(get(i.a));
        const auto m = static_cast<std::int32_t>(b);
        set(i.dst, m == 0 ? 0
                   : (n == INT32_MIN && m == -1)
                       ? static_cast<std::uint32_t>(INT32_MIN)
                       : static_cast<std::uint32_t>(n / m));
        break;
      }
      case KOp::and_: set(i.dst, get(i.a) & b); break;
      case KOp::orr: set(i.dst, get(i.a) | b); break;
      case KOp::eor: set(i.dst, get(i.a) ^ b); break;
      case KOp::bic: set(i.dst, get(i.a) & ~b); break;
      case KOp::shl: set(i.dst, get(i.a) << (b & 31)); break;
      case KOp::shr_u: set(i.dst, get(i.a) >> (b & 31)); break;
      case KOp::shr_s:
        set(i.dst, static_cast<std::uint32_t>(
                       static_cast<std::int32_t>(get(i.a)) >>
                       static_cast<int>(b & 31)));
        break;
      case KOp::ror:
        set(i.dst, support::rotate_right(get(i.a), b & 31));
        break;
      case KOp::mla: set(i.dst, get(i.a) * get(i.b) + get(i.c)); break;
      case KOp::bfx_u:
        set(i.dst, support::bits(get(i.a), i.lsb, i.bf_width));
        break;
      case KOp::bfx_s:
        set(i.dst, static_cast<std::uint32_t>(support::sign_extend(
                       support::bits(get(i.a), i.lsb, i.bf_width),
                       i.bf_width)));
        break;
      case KOp::bfi:
        set(i.dst, support::insert_bits(get(i.dst), get(i.a), i.lsb,
                                        i.bf_width));
        break;
      case KOp::bit_rev: set(i.dst, support::reverse_bits(get(i.a))); break;
      case KOp::byte_rev: set(i.dst, support::reverse_bytes(get(i.a))); break;
      case KOp::clz: set(i.dst, support::count_leading_zeros(get(i.a))); break;
      case KOp::ext_s8:
        set(i.dst, static_cast<std::uint32_t>(
                       support::sign_extend(get(i.a) & 0xFF, 8)));
        break;
      case KOp::ext_s16:
        set(i.dst, static_cast<std::uint32_t>(
                       support::sign_extend(get(i.a) & 0xFFFF, 16)));
        break;
      case KOp::ext_u8: set(i.dst, get(i.a) & 0xFF); break;
      case KOp::ext_u16: set(i.dst, get(i.a) & 0xFFFF); break;
      case KOp::select:
        set(i.dst, compare(i.cond, get(i.a), operand(i)) ? get(i.t)
                                                         : get(i.c));
        break;
      case KOp::ret:
        returned_ = true;
        result_ = get(i.a);
        break;
      default:
        ADD_FAILURE() << "unexpected opcode in fuzz program";
        break;
    }
  }

  std::vector<std::uint32_t> regs_;
  bool returned_ = false;
  std::uint32_t result_ = 0;
};

// Generates a random straight-line function over `live` virtual registers.
KFunction generate(support::Rng256& rng, int id) {
  KFunction f("fuzz" + std::to_string(id), 4);
  std::vector<VReg> pool = {0, 1, 2, 3};
  const auto any = [&pool, &rng] {
    return pool[rng.next_below(pool.size())];
  };
  const int len = 10 + static_cast<int>(rng.next_below(40));
  for (int k = 0; k < len; ++k) {
    const std::uint64_t kind = rng.next_below(12);
    // Mostly reuse registers; occasionally mint a new one (raises pressure
    // and exercises N16 spilling). Sources are always drawn from vregs that
    // are already defined, and bfi — which reads its destination — never
    // targets a fresh one; every value the program reads is thus
    // well-defined (the interpreter and the machine must agree on junk
    // otherwise).
    const bool mint = kind != 6 && rng.chance(0.25) && pool.size() < 14;
    // Draw the sources first so a freshly minted dst can't be one of them.
    const VReg s1 = any(), s2 = any(), s3 = any(), s4 = any();
    const VReg dst = mint ? [&] {
      const VReg v = f.v();
      pool.push_back(v);
      return v;
    }()
                          : any();
    switch (kind) {
      case 0:
        f.movi(dst, static_cast<std::int64_t>(rng.next_u32()));
        break;
      case 1: {
        static constexpr KOp ops[] = {KOp::add, KOp::sub, KOp::rsb,
                                      KOp::mul, KOp::and_, KOp::orr,
                                      KOp::eor, KOp::bic};
        f.arith(ops[rng.next_below(8)], dst, s1, s2);
        break;
      }
      case 2: {
        static constexpr KOp ops[] = {KOp::add, KOp::sub, KOp::and_,
                                      KOp::orr, KOp::eor};
        f.arith_imm(ops[rng.next_below(5)], dst, s1,
                    static_cast<std::int64_t>(rng.next_below(4096)));
        break;
      }
      case 3: {
        static constexpr KOp ops[] = {KOp::shl, KOp::shr_u, KOp::shr_s,
                                      KOp::ror};
        f.arith_imm(ops[rng.next_below(4)], dst, s1,
                    static_cast<std::int64_t>(rng.next_below(32)));
        break;
      }
      case 4:
        f.arith(rng.chance(0.5) ? KOp::udiv : KOp::sdiv, dst, s1, s2);
        break;
      case 5: {
        const unsigned width = 1 + static_cast<unsigned>(rng.next_below(31));
        const unsigned lsb = static_cast<unsigned>(
            rng.next_below(33 - width));
        f.bfx(dst, s1, lsb, width, rng.chance(0.5));
        break;
      }
      case 6: {
        const unsigned width = 1 + static_cast<unsigned>(rng.next_below(31));
        const unsigned lsb = static_cast<unsigned>(
            rng.next_below(33 - width));
        f.bfi(dst, s1, lsb, width);
        break;
      }
      case 7: {
        static constexpr KOp ops[] = {KOp::bit_rev, KOp::byte_rev, KOp::clz,
                                      KOp::ext_s8, KOp::ext_s16, KOp::ext_u8,
                                      KOp::ext_u16};
        f.unary(ops[rng.next_below(7)], dst, s1);
        break;
      }
      case 8: {
        static constexpr Cond conds[] = {Cond::eq, Cond::ne, Cond::lt,
                                         Cond::ge, Cond::hi, Cond::ls,
                                         Cond::gt, Cond::le};
        f.select(dst, conds[rng.next_below(8)], s1, s2, s3, s4);
        break;
      }
      case 9:
        f.mla(dst, s1, s2, s3);
        break;
      case 10:
        f.arith_imm(KOp::mul, dst, s1,
                    static_cast<std::int64_t>(rng.next_below(256)));
        break;
      default:
        f.mov(dst, s1);
        break;
    }
  }
  f.ret(pool[rng.next_below(pool.size())]);
  return f;
}

TEST(KirFuzz, RandomProgramsMatchInterpreterOnAllEncodings) {
  support::Rng256 rng(0xF00D);
  for (int trial = 0; trial < 60; ++trial) {
    const KFunction f = generate(rng, trial);
    std::uint32_t args[4];
    for (auto& a : args) {
      a = rng.next_u32();
    }
    KirInterpreter interp(f.num_vregs());
    for (int k = 0; k < 4; ++k) {
      interp.set(k, args[k]);
    }
    const std::uint32_t expected = interp.run(f);

    for (const Encoding enc :
         {Encoding::w32, Encoding::n16, Encoding::b32}) {
      const kir::LoweredProgram prog =
          kir::lower_program({&f}, enc, cpu::kFlashBase);
      cpu::System sys(
          cpu::SystemBuilder().encoding(enc).flash_size(256 * 1024));
      sys.load(prog.image);
      const std::uint32_t got = sys.call(
          prog.entry_of(f.name()), {args[0], args[1], args[2], args[3]});
      ASSERT_EQ(got, expected)
          << f.name() << " on " << isa::encoding_name(enc) << " args "
          << args[0] << "," << args[1] << "," << args[2] << "," << args[3];
    }
  }
}

// ----- 2. decode-cache differential fuzz --------------------------------------

// The decoded-instruction cache must be invisible to the model: running the
// same random program with the cache enabled and disabled has to retire an
// identical (pc, cycles) trace instruction by instruction, in both the
// ideal-memory and slow-flash (stateful prefetch streamer) regimes.
TEST(KirFuzz, CachedAndUncachedRunsRetireIdenticalTraces) {
  support::Rng256 rng(0xCAFE);
  for (int trial = 0; trial < 12; ++trial) {
    const KFunction f = generate(rng, trial);
    std::uint32_t args[4];
    for (auto& a : args) {
      a = rng.next_u32();
    }
    for (const Encoding enc :
         {Encoding::w32, Encoding::n16, Encoding::b32}) {
      for (const std::uint32_t flash_wait : {1u, 5u}) {
        const kir::LoweredProgram prog =
            kir::lower_program({&f}, enc, cpu::kFlashBase);
        const auto builder = [&](std::uint32_t cache_lines) {
          return cpu::SystemBuilder()
              .encoding(enc)
              .flash_size(256 * 1024)
              .flash_wait(flash_wait)
              .decode_cache_lines(cache_lines);
        };
        cpu::System cached(builder(1024));
        cpu::System reference(builder(0));
        cached.load(prog.image);
        reference.load(prog.image);
        const std::uint32_t entry = prog.entry_of(f.name());
        cached.core().reset(entry, cached.initial_sp());
        reference.core().reset(entry, reference.initial_sp());
        for (int k = 0; k < 4; ++k) {
          cached.core().set_reg(static_cast<isa::Reg>(k), args[k]);
          reference.core().set_reg(static_cast<isa::Reg>(k), args[k]);
        }
        for (std::uint64_t step = 0; step < 1'000'000; ++step) {
          const bool a = cached.core().step();
          const bool b = reference.core().step();
          ASSERT_EQ(a, b) << f.name() << " step " << step;
          ASSERT_EQ(cached.core().pc(), reference.core().pc())
              << f.name() << " on " << isa::encoding_name(enc) << " wait "
              << flash_wait << " step " << step;
          ASSERT_EQ(cached.core().cycles(), reference.core().cycles())
              << f.name() << " on " << isa::encoding_name(enc) << " wait "
              << flash_wait << " step " << step;
          if (!a) {
            break;
          }
        }
        ASSERT_EQ(cached.core().halt_reason(), cpu::HaltReason::exited)
            << f.name();
        ASSERT_EQ(cached.core().reg(isa::r0), reference.core().reg(isa::r0));
        ASSERT_EQ(cached.core().cycles(), reference.core().cycles());
      }
    }
  }
}

// The same property, one tier up: all three dispatch tiers — uncached
// reference, per-instruction decode cache, and the threaded superblock
// dispatcher — must retire identical (pc, cycles) traces step by step. A
// seeded invalidation storm flushes the cached tiers' decoded state at
// random instants mid-run; a flush may cost host work but must never move a
// guest-visible cycle. The final assertion proves the superblock tier
// actually engaged (blocks formed and retired instructions) rather than
// trivially passing by falling back to per-instruction execution.
TEST(KirFuzz, AllDispatchTiersRetireIdenticalTraces) {
  support::Rng256 rng(0x5B0C);
  std::uint64_t block_instructions = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const KFunction f = generate(rng, trial);
    std::uint32_t args[4];
    for (auto& a : args) {
      a = rng.next_u32();
    }
    for (const Encoding enc :
         {Encoding::w32, Encoding::n16, Encoding::b32}) {
      for (const std::uint32_t flash_wait : {1u, 5u}) {
        const kir::LoweredProgram prog =
            kir::lower_program({&f}, enc, cpu::kFlashBase);
        const auto builder = [&](std::uint32_t cache_lines,
                                 cpu::DispatchTier tier) {
          return cpu::SystemBuilder()
              .encoding(enc)
              .flash_size(256 * 1024)
              .flash_wait(flash_wait)
              .decode_cache_lines(cache_lines)
              .dispatch_tier(tier);
        };
        cpu::System reference(builder(0, cpu::DispatchTier::off));
        cpu::System per_insn(builder(1024, cpu::DispatchTier::per_insn));
        cpu::System sblock(builder(1024, cpu::DispatchTier::superblock));
        cpu::System* const systems[] = {&reference, &per_insn, &sblock};
        const std::uint32_t entry = prog.entry_of(f.name());
        for (cpu::System* sys : systems) {
          sys->load(prog.image);
          sys->core().reset(entry, sys->initial_sp());
          for (int k = 0; k < 4; ++k) {
            sys->core().set_reg(static_cast<isa::Reg>(k), args[k]);
          }
        }
        ASSERT_EQ(sblock.core().dispatch_tier(),
                  cpu::DispatchTier::superblock);
        for (std::uint64_t step = 0; step < 1'000'000; ++step) {
          // Invalidation storm: flush the cached tiers' decoded state at a
          // random subset of boundaries (including mid-block for the
          // superblock tier, which is resumed via its cursor and must
          // re-form or fall back without a timing wobble).
          if (rng.chance(0.05)) {
            per_insn.core().invalidate_decoded();
            sblock.core().invalidate_decoded();
          }
          const bool a = reference.core().step();
          const bool b = per_insn.core().step();
          const bool c = sblock.core().step();
          ASSERT_EQ(a, b) << f.name() << " step " << step;
          ASSERT_EQ(a, c) << f.name() << " step " << step;
          for (cpu::System* sys : {&per_insn, &sblock}) {
            ASSERT_EQ(sys->core().pc(), reference.core().pc())
                << f.name() << " on " << isa::encoding_name(enc) << " wait "
                << flash_wait << " step " << step;
            ASSERT_EQ(sys->core().cycles(), reference.core().cycles())
                << f.name() << " on " << isa::encoding_name(enc) << " wait "
                << flash_wait << " step " << step;
          }
          if (!a) {
            break;
          }
        }
        for (cpu::System* sys : systems) {
          ASSERT_EQ(sys->core().halt_reason(), cpu::HaltReason::exited)
              << f.name();
          ASSERT_EQ(sys->core().reg(isa::r0), reference.core().reg(isa::r0));
        }
        block_instructions += sblock.core().jit_stats().block_instructions;
      }
    }
  }
  // The property is vacuous if the superblock tier never ran a block.
  EXPECT_GT(block_instructions, 0u);
}

// ----- 3. decode fuzz ----------------------------------------------------------

class DecodeFuzz : public ::testing::TestWithParam<Encoding> {};

TEST_P(DecodeFuzz, DecodeEncodeFixedPoint) {
  const isa::Codec& codec = isa::codec_for(GetParam());
  support::Rng256 rng(0xBEEF);
  int decoded_count = 0;
  for (int trial = 0; trial < 40'000; ++trial) {
    std::uint8_t bytes[4];
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    isa::Instruction insn;
    const int n = codec.decode(bytes, insn);
    if (n == 0) {
      continue;
    }
    ++decoded_count;
    // Whatever decoded must re-encode to the same bytes.
    const bool pcrel = insn.addr == isa::AddrMode::pc_rel ||
                       insn.op == isa::Op::adr || insn.op == isa::Op::b ||
                       insn.op == isa::Op::bl || insn.op == isa::Op::cbz ||
                       insn.op == isa::Op::cbnz;
    const std::int64_t disp = pcrel ? insn.imm : 0;
    const int size = codec.size_for(insn, disp);
    char bytestr[16];
    std::snprintf(bytestr, sizeof bytestr, "%02x%02x%02x%02x", bytes[0],
                  bytes[1], bytes[2], bytes[3]);
    ASSERT_GT(size, 0) << isa::disassemble(insn, 0) << " trial " << trial
                       << " bytes " << bytestr;
    std::vector<std::uint8_t> out;
    codec.encode(insn, disp, size, out);
    if (size == n) {
      // Same length: bytes must be identical (catches ignored fields).
      for (int k = 0; k < n; ++k) {
        ASSERT_EQ(out[static_cast<std::size_t>(k)], bytes[k])
            << isa::disassemble(insn, 0) << " byte " << k << " trial "
            << trial << " bytes " << bytestr;
      }
    } else {
      // The only tolerated divergence: a wide pattern whose instruction
      // also has a narrow form re-encodes shorter (narrow-preferred
      // assembler); it must still decode to the same instruction.
      ASSERT_LT(size, n) << isa::disassemble(insn, 0) << " trial " << trial
                         << " bytes " << bytestr;
      isa::Instruction again;
      ASSERT_EQ(codec.decode(out, again), size)
          << isa::disassemble(insn, 0);
      EXPECT_EQ(again.op, insn.op) << isa::disassemble(insn, 0);
      EXPECT_EQ(again.rd, insn.rd);
      EXPECT_EQ(again.rn, insn.rn);
      EXPECT_EQ(again.imm, insn.imm);
    }
  }
  // The opcode space must be reasonably dense.
  EXPECT_GT(decoded_count, 1000);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, DecodeFuzz,
                         ::testing::Values(Encoding::w32, Encoding::n16,
                                           Encoding::b32),
                         [](const auto& info) {
                           return std::string(
                               isa::encoding_name(info.param));
                         });

}  // namespace
}  // namespace aces
