#include <gtest/gtest.h>

#include <set>

#include "support/bits.h"
#include "support/fixed.h"
#include "support/rng.h"
#include "support/splitmix.h"

namespace aces::support {
namespace {

TEST(Bits, ExtractInsert) {
  EXPECT_EQ(bits(0xDEADBEEFu, 0, 8), 0xEFu);
  EXPECT_EQ(bits(0xDEADBEEFu, 8, 8), 0xBEu);
  EXPECT_EQ(bits(0xDEADBEEFu, 28, 4), 0xDu);
  EXPECT_EQ(bits(0xFFFFFFFFu, 0, 32), 0xFFFFFFFFu);
  EXPECT_EQ(insert_bits(0u, 0xFFu, 8, 8), 0x0000FF00u);
  EXPECT_EQ(insert_bits(0xFFFFFFFFu, 0u, 8, 8), 0xFFFF00FFu);
  EXPECT_EQ(insert_bits(0x12345678u, 0xAB, 4, 8), 0x12345AB8u);
}

TEST(Bits, InsertExtractRoundTrip) {
  Rng256 rng(7);
  for (int k = 0; k < 1000; ++k) {
    const std::uint32_t x = rng.next_u32();
    const unsigned width = 1 + static_cast<unsigned>(rng.next_below(32));
    const unsigned lsb = static_cast<unsigned>(rng.next_below(33 - width));
    const std::uint32_t v = rng.next_u32() & ((width >= 32) ? 0xFFFFFFFFu
                                                            : ((1u << width) - 1));
    EXPECT_EQ(bits(insert_bits(x, v, lsb, width), lsb, width), v);
  }
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0xFF, 8), -1);
  EXPECT_EQ(sign_extend(0x7F, 8), 127);
  EXPECT_EQ(sign_extend(0x80, 8), -128);
  EXPECT_EQ(sign_extend(0x1, 1), -1);
  EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
}

TEST(Bits, FitsSigned) {
  EXPECT_TRUE(fits_signed(127, 8));
  EXPECT_FALSE(fits_signed(128, 8));
  EXPECT_TRUE(fits_signed(-128, 8));
  EXPECT_FALSE(fits_signed(-129, 8));
  EXPECT_TRUE(fits_signed(0, 1));
  EXPECT_TRUE(fits_signed(-1, 1));
  EXPECT_FALSE(fits_signed(1, 1));
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0x00000001u), 0x80000000u);
  EXPECT_EQ(reverse_bits(0x80000000u), 0x00000001u);
  EXPECT_EQ(reverse_bits(0xF0000000u), 0x0000000Fu);
  Rng256 rng(3);
  for (int k = 0; k < 100; ++k) {
    const std::uint32_t x = rng.next_u32();
    EXPECT_EQ(reverse_bits(reverse_bits(x)), x);
  }
}

TEST(Bits, ReverseBytes) {
  EXPECT_EQ(reverse_bytes(0x12345678u), 0x78563412u);
  EXPECT_EQ(reverse_bytes16(0x12345678u), 0x34127856u);
}

TEST(Bits, CountLeadingZeros) {
  EXPECT_EQ(count_leading_zeros(0), 32u);
  EXPECT_EQ(count_leading_zeros(1), 31u);
  EXPECT_EQ(count_leading_zeros(0x80000000u), 0u);
  EXPECT_EQ(count_leading_zeros(0x0000FFFFu), 16u);
}

TEST(Bits, Align) {
  EXPECT_EQ(align_up(0, 4), 0u);
  EXPECT_EQ(align_up(1, 4), 4u);
  EXPECT_EQ(align_up(4, 4), 4u);
  EXPECT_EQ(align_up(5, 8), 8u);
  EXPECT_EQ(align_down(7, 4), 4u);
  EXPECT_EQ(align_down(8, 4), 8u);
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(4096));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(12));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng256 a(42), b(42);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng256 a(1), b(2);
  int same = 0;
  for (int k = 0; k < 64; ++k) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundsRespected) {
  Rng256 rng(9);
  for (int k = 0; k < 2000; ++k) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto v = rng.next_in(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double u = rng.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng256 rng(11);
  std::set<std::uint64_t> seen;
  for (int k = 0; k < 400; ++k) {
    seen.insert(rng.next_below(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, ChanceEdges) {
  Rng256 rng(1);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
  int hits = 0;
  for (int k = 0; k < 10000; ++k) {
    hits += rng.chance(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
}

TEST(Rng, ForkIndependent) {
  Rng256 a(5);
  Rng256 b = a.fork();
  int same = 0;
  for (int k = 0; k < 64; ++k) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Fixed, Q16Multiply) {
  EXPECT_EQ(q16_mul(q16_from_int(3), q16_from_int(4)), q16_from_int(12));
  EXPECT_EQ(q16_mul(q16_from_int(-3), q16_from_int(4)), q16_from_int(-12));
  // 0.5 * 0.5 = 0.25
  EXPECT_EQ(q16_mul(0x8000, 0x8000), 0x4000);
}

TEST(Fixed, Q16Divide) {
  EXPECT_EQ(q16_div(q16_from_int(12), q16_from_int(4)), q16_from_int(3));
  EXPECT_EQ(q16_div(q16_from_int(1), q16_from_int(2)), 0x8000);
}

TEST(Fixed, Clamp) {
  EXPECT_EQ(clamp_i32(5, 0, 10), 5);
  EXPECT_EQ(clamp_i32(-5, 0, 10), 0);
  EXPECT_EQ(clamp_i32(50, 0, 10), 10);
  EXPECT_EQ(clamp_i32(std::int64_t{1} << 40, 0, 100), 100);
}


// ----- splitmix / pcg32 (campaign seed derivation) ---------------------------

TEST(SplitMix, KnownFinalizerBijectionDerivesUniqueStreams) {
  // 10k variant indices from one master seed: all distinct (injective by
  // construction — Weyl step then bijective mix), and different masters
  // give disjoint-looking sets.
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    seen.insert(derive_stream(0xDEADBEEFull, k));
  }
  EXPECT_EQ(seen.size(), 10'000u);
  EXPECT_NE(derive_stream(1, 0), derive_stream(2, 0));
  // Matches the k+1-th output of a SplitMix64 seeded with the master.
  SplitMix64 sm(0xDEADBEEFull);
  EXPECT_EQ(sm.next(), derive_stream(0xDEADBEEFull, 0));
  EXPECT_EQ(sm.next(), derive_stream(0xDEADBEEFull, 1));
}

TEST(Pcg32, MatchesReferenceKnownAnswers) {
  // pcg32_srandom(42, 54) from the PCG reference implementation.
  Pcg32 g(42, 54);
  EXPECT_EQ(g.next_u32(), 0xa15c02b7u);
  EXPECT_EQ(g.next_u32(), 0x7b47f409u);
  EXPECT_EQ(g.next_u32(), 0xba1d3330u);
  EXPECT_EQ(g.next_u32(), 0x83d2f293u);
  EXPECT_EQ(g.next_u32(), 0xbfa4784bu);
  EXPECT_EQ(g.next_u32(), 0xcbed606eu);
}

TEST(Pcg32, StreamsAreIndependentSequences) {
  // Same seed, different stream selectors: no shared prefix, and the
  // draws stay decorrelated over a long window (distinct multisets).
  Pcg32 a(7, 1);
  Pcg32 b(7, 2);
  int equal = 0;
  for (int k = 0; k < 1000; ++k) {
    equal += a.next_u32() == b.next_u32() ? 1 : 0;
  }
  EXPECT_LE(equal, 2);  // coincidences only, never lockstep
  // Determinism: the same (seed, stream) replays exactly.
  Pcg32 c(7, 1), d(7, 1);
  for (int k = 0; k < 100; ++k) {
    EXPECT_EQ(c.next_u32(), d.next_u32());
  }
}

TEST(Pcg32, BoundedDrawsRespectBounds) {
  Pcg32 g(99, 3);
  std::set<std::uint32_t> values;
  for (int k = 0; k < 2000; ++k) {
    const std::uint32_t v = g.below(10);
    EXPECT_LT(v, 10u);
    values.insert(v);
  }
  EXPECT_EQ(values.size(), 10u);  // covers the range
  for (int k = 0; k < 100; ++k) {
    const double u = g.next_unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_FALSE(g.chance(0.0));
  EXPECT_TRUE(g.chance(1.0));
}

TEST(Rng, SeedSequenceUnchangedBySplitMixMigration) {
  // Rng256 now seeds its xoshiro256** state through support::SplitMix64
  // (previously an inline copy of the same algorithm). The migration must
  // be invisible: pin the first draws of a known seed so any drift in the
  // shared derivation path fails loudly.
  Rng256 g(42);
  EXPECT_EQ(g.next_u64(), 0x15780b2e0c2ec716ull);
  EXPECT_EQ(g.next_u64(), 0x6104d9866d113a7eull);
}

}  // namespace
}  // namespace aces::support
