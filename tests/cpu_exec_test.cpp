// End-to-end executor tests: assemble small programs and run them on the
// System harness, across all three encodings where the program permits.
#include <gtest/gtest.h>

#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/assembler.h"
#include "isa/disasm.h"

namespace aces::cpu {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Encoding;
using isa::Image;
using isa::Instruction;
using isa::Label;
using isa::Op;
using isa::SetFlags;
using namespace isa;  // registers r0..

SystemBuilder basic_config(Encoding e) {
  return profiles::for_encoding(e).flash_size(64 * 1024);
}

// Assembles, loads and runs `build(a)`; returns r0.
std::uint32_t run_program(
    Encoding e, const std::function<void(Assembler&)>& build,
    std::initializer_list<std::uint32_t> args = {}) {
  Assembler a(e, kFlashBase);
  build(a);
  const Image image = a.assemble();
  System sys(basic_config(e));
  sys.load(image);
  return sys.call(image.base, args);
}

class ExecAllEncodings : public ::testing::TestWithParam<Encoding> {};

TEST_P(ExecAllEncodings, ArithmeticChain) {
  // r0 = (((7 + 5) - 3) * 2) ^ 1 = 19
  const auto r = run_program(GetParam(), [](Assembler& a) {
    a.ins(ins_mov_imm(r0, 7, SetFlags::any));
    a.ins(ins_rri(Op::add, r0, r0, 5, SetFlags::any));
    a.ins(ins_rri(Op::sub, r0, r0, 3, SetFlags::any));
    a.ins(ins_mov_imm(r1, 2, SetFlags::any));
    a.ins(ins_rrr(Op::mul, r0, r0, r1, SetFlags::any));
    a.ins(ins_mov_imm(r2, 1, SetFlags::any));
    a.ins(ins_rrr(Op::eor, r0, r0, r2, SetFlags::any));
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 19u);
}

TEST_P(ExecAllEncodings, SumLoop) {
  // r0 = sum(1..r0) via loop with flags + conditional branch.
  const auto build = [](Assembler& a) {
    a.ins(ins_mov_reg(r1, r0, SetFlags::any));
    a.ins(ins_mov_imm(r0, 0, SetFlags::any));
    const Label top = a.bound_label();
    a.ins(ins_rrr(Op::add, r0, r0, r1, SetFlags::any));
    a.ins(ins_rri(Op::sub, r1, r1, 1, SetFlags::yes));
    a.b(top, Cond::ne);
    a.ins(ins_ret());
  };
  EXPECT_EQ(run_program(GetParam(), build, {10}), 55u);
  EXPECT_EQ(run_program(GetParam(), build, {100}), 5050u);
}

TEST_P(ExecAllEncodings, MemoryRoundTrip) {
  // Store a word, bytes, halfword into SRAM and reassemble them.
  const auto r = run_program(GetParam(), [](Assembler& a) {
    a.load_literal(r4, kSramBase + 0x100);
    a.ins(ins_mov_imm(r0, 0xAB, SetFlags::any));
    a.ins(ins_ldst_imm(Op::strb, r0, r4, 0));
    a.ins(ins_mov_imm(r1, 0xCD, SetFlags::any));
    a.ins(ins_ldst_imm(Op::strb, r1, r4, 1));
    a.ins(ins_ldst_imm(Op::ldrh, r0, r4, 0));  // 0xCDAB
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 0xCDABu);
}

TEST_P(ExecAllEncodings, SignedLoads) {
  const auto r = run_program(GetParam(), [](Assembler& a) {
    a.load_literal(r4, kSramBase + 0x40);
    a.ins(ins_mov_imm(r0, 0x80, SetFlags::any));  // -128 as a byte
    a.ins(ins_ldst_imm(Op::strb, r0, r4, 0));
    a.ins(ins_mov_imm(r5, 0, SetFlags::any));
    a.ins(ins_ldst_reg(Op::ldrsb, r1, r4, r5));
    // r1 = 0xFFFFFF80; r0 = r1 + 129 = 1
    a.ins(ins_mov_imm(r2, 129, SetFlags::any));
    a.ins(ins_rrr(Op::add, r0, r1, r2, SetFlags::any));
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 1u);
}

TEST_P(ExecAllEncodings, FunctionCall) {
  const auto r = run_program(GetParam(), [](Assembler& a) {
    const Label fn = a.new_label();
    a.ins(ins_push(1u << lr));
    a.ins(ins_mov_imm(r0, 20, SetFlags::any));
    a.bl(fn);
    a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
    a.ins(ins_pop(1u << pc));
    a.bind(fn);  // r0 += 100
    a.ins(ins_mov_imm(r1, 100, SetFlags::any));
    a.ins(ins_rrr(Op::add, r0, r0, r1, SetFlags::any));
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 121u);
}

TEST_P(ExecAllEncodings, PushPopPreservesRegisters) {
  const auto r = run_program(GetParam(), [](Assembler& a) {
    a.ins(ins_mov_imm(r4, 44, SetFlags::any));
    a.ins(ins_mov_imm(r5, 55, SetFlags::any));
    a.ins(ins_push((1u << r4) | (1u << r5)));
    a.ins(ins_mov_imm(r4, 0, SetFlags::any));
    a.ins(ins_mov_imm(r5, 0, SetFlags::any));
    a.ins(ins_pop((1u << r4) | (1u << r5)));
    a.ins(ins_rrr(Op::add, r0, r4, r5, SetFlags::any));
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 99u);
}

TEST_P(ExecAllEncodings, LdmStmBlockCopy) {
  const auto r = run_program(GetParam(), [](Assembler& a) {
    a.load_literal(r0, kSramBase);
    // Fill r1..r3 and store-multiple with writeback.
    a.ins(ins_mov_imm(r1, 11, SetFlags::any));
    a.ins(ins_mov_imm(r2, 22, SetFlags::any));
    a.ins(ins_mov_imm(r3, 33, SetFlags::any));
    Instruction stm;
    stm.op = Op::stm;
    stm.rn = r0;
    stm.reglist = 0b1110;  // r1-r3
    stm.writeback = true;
    a.ins(stm);
    // r0 advanced by 12; reload from base with ldm.
    a.load_literal(r4, kSramBase);
    Instruction ldm;
    ldm.op = Op::ldm;
    ldm.rn = r4;
    ldm.reglist = 0b11100000;  // r5-r7
    ldm.writeback = true;
    a.ins(ldm);
    // r0 = (r0 - base) + r5 + r6 + r7 = 12 + 66 = 78
    a.load_literal(r1, kSramBase);
    a.ins(ins_rrr(Op::sub, r0, r0, r1, SetFlags::any));
    a.ins(ins_rrr(Op::add, r0, r0, r5, SetFlags::any));
    a.ins(ins_rrr(Op::add, r0, r0, r6, SetFlags::any));
    a.ins(ins_rrr(Op::add, r0, r0, r7, SetFlags::any));
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 78u);
}

TEST_P(ExecAllEncodings, ShiftSemantics) {
  const auto build = [](std::int64_t amount, Op op) {
    return [amount, op](Assembler& a) {
      a.ins(ins_rri(op, r0, r0, amount, SetFlags::any));
      a.ins(ins_ret());
    };
  };
  EXPECT_EQ(run_program(GetParam(), build(4, Op::lsl), {0x1001}), 0x10010u);
  EXPECT_EQ(run_program(GetParam(), build(8, Op::lsr), {0xFF00FF00}),
            0x00FF00FFu);
  EXPECT_EQ(run_program(GetParam(), build(31, Op::asr), {0x80000000}),
            0xFFFFFFFFu);
}

TEST_P(ExecAllEncodings, CarryChainAdd64) {
  // 64-bit add via adds/adc: (0xFFFFFFFF + 1) -> carry into high word.
  const auto r = run_program(GetParam(), [](Assembler& a) {
    a.load_literal(r0, 0xFFFFFFFF);
    a.ins(ins_mov_imm(r1, 0, SetFlags::any));   // high word a
    a.ins(ins_mov_imm(r2, 1, SetFlags::any));   // low word b
    a.ins(ins_mov_imm(r3, 0, SetFlags::any));   // high word b
    a.ins(ins_rrr(Op::add, r0, r0, r2, SetFlags::yes));
    a.ins(ins_rrr(Op::adc, r1, r1, r3, SetFlags::any));
    a.ins(ins_mov_reg(r0, r1, SetFlags::any));
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 1u);
}

TEST_P(ExecAllEncodings, ConditionalMax) {
  // r0 = max(r0, r1) using cmp + conditional move-ish control flow.
  const auto build = [](Assembler& a) {
    const Label done = a.new_label();
    a.ins(ins_cmp_reg(r0, r1));
    a.b(done, Cond::ge);
    a.ins(ins_mov_reg(r0, r1, SetFlags::any));
    a.bind(done);
    a.ins(ins_ret());
  };
  EXPECT_EQ(run_program(GetParam(), build, {3, 9}), 9u);
  EXPECT_EQ(run_program(GetParam(), build, {9, 3}), 9u);
  EXPECT_EQ(
      run_program(GetParam(), build,
                  {static_cast<std::uint32_t>(-5), 2}),
      2u);
}

TEST_P(ExecAllEncodings, LiteralPoolLoads) {
  const auto r = run_program(GetParam(), [](Assembler& a) {
    a.load_literal(r0, 0x12345678);
    a.load_literal(r1, 0x9ABCDEF0);
    a.ins(ins_rrr(Op::eor, r0, r0, r1, SetFlags::any));
    a.ins(ins_ret());
  });
  EXPECT_EQ(r, 0x12345678u ^ 0x9ABCDEF0u);
}

TEST_P(ExecAllEncodings, CpsTogglesInterruptEnable) {
  Assembler a(GetParam(), kFlashBase);
  Instruction cpsid;
  cpsid.op = Op::cps;
  cpsid.uses_imm = true;
  cpsid.imm = 1;
  a.ins(cpsid);
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(GetParam()));
  sys.load(image);
  sys.core().reset(image.base, sys.initial_sp());
  EXPECT_TRUE(sys.core().interrupts_enabled());
  (void)sys.core().run(100);
  EXPECT_FALSE(sys.core().interrupts_enabled());
}

TEST_P(ExecAllEncodings, UnmappedLoadFaults) {
  Assembler a(GetParam(), kFlashBase);
  a.load_literal(r1, 0x7000'0000);  // no device there
  a.ins(ins_ldst_imm(Op::ldr, r0, r1, 0));
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(GetParam()));
  sys.load(image);
  sys.core().reset(image.base, sys.initial_sp());
  EXPECT_EQ(sys.core().run(100), HaltReason::fault);
  EXPECT_EQ(sys.core().fault_info().kind, mem::Fault::unmapped);
  EXPECT_EQ(sys.core().fault_info().address, 0x7000'0000u);
}

TEST_P(ExecAllEncodings, FaultHandlerCatches) {
  Assembler a(GetParam(), kFlashBase);
  const Label handler = a.new_label();
  a.load_literal(r1, 0x7000'0000);
  a.ins(ins_ldst_imm(Op::ldr, r0, r1, 0));
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));  // skipped
  a.ins(ins_ret());
  a.bind(handler);
  a.ins(ins_mov_imm(r0, 42, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(GetParam()));
  sys.load(image);
  sys.core().set_fault_handler(a.label_address(handler));
  EXPECT_EQ(sys.call(image.base), 42u);
}

TEST_P(ExecAllEncodings, BkptHalts) {
  Assembler a(GetParam(), kFlashBase);
  Instruction bkpt;
  bkpt.op = Op::bkpt;
  bkpt.uses_imm = true;
  bkpt.imm = 7;
  a.ins(bkpt);
  const Image image = a.assemble();
  System sys(basic_config(GetParam()));
  sys.load(image);
  sys.core().reset(image.base, sys.initial_sp());
  EXPECT_EQ(sys.core().run(10), HaltReason::breakpoint);
}

TEST_P(ExecAllEncodings, CyclesAdvanceMonotonically) {
  Assembler a(GetParam(), kFlashBase);
  for (int k = 0; k < 20; ++k) {
    a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  }
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(GetParam()));
  sys.load(image);
  sys.core().reset(image.base, sys.initial_sp());
  std::uint64_t last = 0;
  while (sys.core().step()) {
    EXPECT_GT(sys.core().cycles(), last);
    last = sys.core().cycles();
  }
  EXPECT_EQ(sys.core().reg(r0), 20u);
  EXPECT_GE(sys.core().cycles(), 21u);
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, ExecAllEncodings,
                         ::testing::Values(Encoding::w32, Encoding::n16,
                                           Encoding::b32),
                         [](const auto& info) {
                           return std::string(encoding_name(info.param));
                         });

// ----- encoding-specific execution ---------------------------------------------

TEST(ExecW32, PredicatedExecutionSkips) {
  Assembler a(Encoding::w32, kFlashBase);
  a.ins(ins_cmp_imm(r0, 5));
  Instruction addlt = ins_rri(Op::add, r1, r1, 100);
  addlt.cond = Cond::lt;
  a.ins(addlt);
  Instruction addge = ins_rri(Op::add, r1, r1, 1);
  addge.cond = Cond::ge;
  a.ins(addge);
  a.ins(ins_mov_reg(r0, r1));
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::w32));
  sys.load(image);
  EXPECT_EQ(sys.call(image.base, {3}), 100u);   // lt path
  EXPECT_EQ(sys.call(image.base, {7}), 1u);     // ge path
  EXPECT_GE(sys.core().stats().predicated_skips, 1u);
}

TEST(ExecB32, ItBlockPredication) {
  // if (r0 >= r1) r2 = 1 else r2 = 2; plus a then-slot add.
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_cmp_reg(r0, r1));
  a.ins(ins_it(Cond::ge, "e"));              // ite ge
  a.ins(ins_mov_imm(r2, 1, SetFlags::any));  // ge
  a.ins(ins_mov_imm(r2, 2, SetFlags::any));  // lt
  a.ins(ins_mov_reg(r0, r2, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::b32));
  sys.load(image);
  EXPECT_EQ(sys.call(image.base, {5, 3}), 1u);
  EXPECT_EQ(sys.call(image.base, {2, 3}), 2u);
}

TEST(ExecB32, ItBlockSuppressesFlagWrites) {
  // Inside an IT block a 16-bit ALU op must not clobber flags: the second
  // slot still sees the original comparison.
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_cmp_imm(r0, 10));            // r0=0 -> lt
  a.ins(ins_it(Cond::lt, "t"));
  a.ins(ins_rri(Op::add, r1, r1, 200, SetFlags::any));  // would set flags
  a.ins(ins_rri(Op::add, r1, r1, 1, SetFlags::any));    // also lt slot
  a.ins(ins_mov_reg(r0, r1, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::b32));
  sys.load(image);
  EXPECT_EQ(sys.call(image.base, {0, 0}), 201u);
}

TEST(ExecB32, HardwareDivide) {
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_rrr(Op::sdiv, r0, r0, r1));
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::b32));
  sys.load(image);
  EXPECT_EQ(sys.call(image.base, {100, 7}), 14u);
  EXPECT_EQ(sys.call(image.base,
                     {static_cast<std::uint32_t>(-100), 7}),
            static_cast<std::uint32_t>(-14));
  EXPECT_EQ(sys.call(image.base, {100, 0}), 0u);  // ARM divide-by-zero
}

TEST(ExecB32, BitfieldOps) {
  Assembler a(Encoding::b32, kFlashBase);
  // ubfx r0, r0, #8, #8 then bfi r0, r1, #16, #4
  Instruction ubfx = ins_rrr(Op::ubfx, r0, r0, 0);
  ubfx.imm = 8;
  ubfx.width = 8;
  a.ins(ubfx);
  Instruction bfi = ins_rrr(Op::bfi, r0, r1, 0);
  bfi.imm = 16;
  bfi.width = 4;
  a.ins(bfi);
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::b32));
  sys.load(image);
  EXPECT_EQ(sys.call(image.base, {0x00CD1200, 0x5}), 0x50012u);
}

TEST(ExecB32, MovwMovtBuildsConstant) {
  Assembler a(Encoding::b32, kFlashBase);
  Instruction movw;
  movw.op = Op::movw;
  movw.rd = r0;
  movw.uses_imm = true;
  movw.imm = 0x5678;
  a.ins(movw);
  Instruction movt = movw;
  movt.op = Op::movt;
  movt.imm = 0x1234;
  a.ins(movt);
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::b32));
  sys.load(image);
  EXPECT_EQ(sys.call(image.base), 0x12345678u);
}

TEST(ExecB32, CbzAndTableBranch) {
  // switch (r0) { 0: 10; 1: 20; 2: 30 } using tbb; cbz guards r1==0 path.
  Assembler a(Encoding::b32, kFlashBase);
  const Label t0 = a.new_label(), t1 = a.new_label(), t2 = a.new_label();
  const Label table = a.new_label();
  a.adr(r2, table);
  const Label site = a.bound_label();
  Instruction tbb;
  tbb.op = Op::tbb;
  tbb.rn = r2;
  tbb.rm = r0;
  a.ins(tbb);
  a.bind(table);
  a.jump_table(site, {t0, t1, t2});
  a.align(2);
  a.bind(t0);
  a.ins(ins_mov_imm(r0, 10, SetFlags::any));
  a.ins(ins_ret());
  a.bind(t1);
  a.ins(ins_mov_imm(r0, 20, SetFlags::any));
  a.ins(ins_ret());
  a.bind(t2);
  a.ins(ins_mov_imm(r0, 30, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::b32));
  sys.load(image);
  EXPECT_EQ(sys.call(image.base, {0}), 10u);
  EXPECT_EQ(sys.call(image.base, {1}), 20u);
  EXPECT_EQ(sys.call(image.base, {2}), 30u);
}

TEST(ExecB32, RbitRevClz) {
  Assembler a(Encoding::b32, kFlashBase);
  Instruction rbit;
  rbit.op = Op::rbit;
  rbit.rd = r1;
  rbit.rm = r0;
  a.ins(rbit);
  Instruction clz;
  clz.op = Op::clz;
  clz.rd = r0;
  clz.rm = r1;
  a.ins(clz);
  a.ins(ins_ret());
  const Image image = a.assemble();
  System sys(basic_config(Encoding::b32));
  sys.load(image);
  // rbit(0x00000001) = 0x80000000 -> clz = 0
  EXPECT_EQ(sys.call(image.base, {1}), 0u);
  // rbit(0x80000000) = 1 -> clz = 31
  EXPECT_EQ(sys.call(image.base, {0x80000000u}), 31u);
}

// ----- MPU integration -----------------------------------------------------------

TEST(ExecMpu, UnprivilegedStoreBlocked) {
  Assembler a(Encoding::b32, kFlashBase);
  a.load_literal(r1, kSramBase + 0x800);
  a.ins(ins_ldst_imm(Op::str, r0, r1, 0));
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();

  SystemBuilder cfg = basic_config(Encoding::b32).privileged(false);
  System sys(cfg);
  sys.load(image);

  mem::Mpu mpu(mem::MpuConfig::fine());
  // Unprivileged code may execute flash and use the stack region, but the
  // region at kSramBase+0x800 is not granted.
  mem::MpuRegion code;
  code.base = kFlashBase;
  code.size = 64 * 1024;
  code.read = true;
  code.execute = true;
  mpu.set_region(0, code);
  mem::MpuRegion stack;
  stack.base = kSramBase + 0xC000;
  stack.size = 0x4000;
  stack.read = true;
  stack.write = true;
  mpu.set_region(1, stack);
  sys.core().set_mpu(&mpu);

  sys.core().reset(image.base, sys.initial_sp());
  EXPECT_EQ(sys.core().run(100), HaltReason::fault);
  EXPECT_EQ(sys.core().fault_info().kind, mem::Fault::mpu_violation);

  // Grant the region and the same program succeeds.
  mem::MpuRegion data;
  data.base = kSramBase + 0x800;
  data.size = 32;
  data.read = true;
  data.write = true;
  mpu.set_region(2, data);
  sys.core().reset(image.base, sys.initial_sp());
  EXPECT_EQ(sys.core().run(100), HaltReason::exited);
}

}  // namespace
}  // namespace aces::cpu
