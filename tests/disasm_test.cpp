// Disassembler formatting and the assembler's pool-island mechanism.
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "isa/disasm.h"

namespace aces::isa {
namespace {

TEST(Disasm, DataProcessingForms) {
  EXPECT_EQ(disassemble(ins_rrr(Op::add, r1, r2, r3)), "add r1, r2, r3");
  EXPECT_EQ(disassemble(ins_rrr(Op::add, r1, r2, r3, SetFlags::yes)),
            "adds r1, r2, r3");
  EXPECT_EQ(disassemble(ins_rri(Op::sub, r0, r0, 42)), "sub r0, r0, #42");
  EXPECT_EQ(disassemble(ins_mov_imm(r7, 255)), "mov r7, #255");
  EXPECT_EQ(disassemble(ins_cmp_reg(r3, r4)), "cmp r3, r4");
  EXPECT_EQ(disassemble(ins_cmp_imm(r3, 9)), "cmp r3, #9");
}

TEST(Disasm, PredicatesAndIt) {
  Instruction i = ins_rri(Op::add, r1, r1, 1);
  i.cond = Cond::eq;
  EXPECT_EQ(disassemble(i), "addeq r1, r1, #1");
  EXPECT_EQ(disassemble(ins_it(Cond::ge, "")), "it ge");
  EXPECT_EQ(disassemble(ins_it(Cond::ge, "e")), "ite ge");
  EXPECT_EQ(disassemble(ins_it(Cond::lt, "tt")), "ittt lt");
}

TEST(Disasm, MemoryForms) {
  EXPECT_EQ(disassemble(ins_ldst_imm(Op::ldr, r0, r1, 8)),
            "ldr r0, [r1, #8]");
  EXPECT_EQ(disassemble(ins_ldst_imm(Op::strb, r0, r1, 0)),
            "strb r0, [r1]");
  EXPECT_EQ(disassemble(ins_ldst_reg(Op::ldrsh, r2, r3, r4)),
            "ldrsh r2, [r3, r4]");
}

TEST(Disasm, StackAndMultiple) {
  EXPECT_EQ(disassemble(ins_push(0x000F | (1u << lr))),
            "push {r0, r1, r2, r3, lr}");
  EXPECT_EQ(disassemble(ins_pop((1u << r4) | (1u << pc))),
            "pop {r4, pc}");
  Instruction ldm;
  ldm.op = Op::ldm;
  ldm.rn = r2;
  ldm.reglist = 0x30;
  ldm.writeback = true;
  EXPECT_EQ(disassemble(ldm), "ldm r2!, {r4, r5}");
}

TEST(Disasm, BranchTargetsResolved) {
  Instruction b;
  b.op = Op::b;
  b.imm = 0x20;
  EXPECT_EQ(disassemble(b, 0x1000), "b 0x1020");
  b.cond = Cond::ne;
  EXPECT_EQ(disassemble(b, 0x1000), "bne 0x1020");
  EXPECT_EQ(disassemble(ins_ret()), "bx lr");
}

TEST(Disasm, SystemForms) {
  Instruction i;
  i.op = Op::svc;
  i.uses_imm = true;
  i.imm = 3;
  EXPECT_EQ(disassemble(i), "svc #3");
  i.op = Op::cps;
  i.imm = 1;
  EXPECT_EQ(disassemble(i), "cpsid");
  i.imm = 0;
  EXPECT_EQ(disassemble(i), "cpsie");
}

TEST(Disasm, ImageWalkerStopsAtPool) {
  Assembler a(Encoding::b32, 0);
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));
  a.load_literal(r1, 0xDEADBEEF);
  a.ins(ins_ret());
  const Image image = a.assemble();
  const std::string text = disassemble_image(image);
  EXPECT_NE(text.find("mov"), std::string::npos);
  EXPECT_NE(text.find("ldr"), std::string::npos);
  EXPECT_NE(text.find("bx lr"), std::string::npos);
  EXPECT_NE(text.find("data/pool"), std::string::npos);
}

// ----- pool islands ------------------------------------------------------------

TEST(PoolIsland, KeepsLiteralsInRangeForLongFunctions) {
  // A straight-line N16 function far longer than the 1020-byte pc-relative
  // load range; islands every ~100 instructions must keep it assemblable.
  Assembler a(Encoding::n16, 0);
  for (int k = 0; k < 40; ++k) {
    a.load_literal(r0, 0xABCD0000u + static_cast<std::uint32_t>(k));
    for (int j = 0; j < 60; ++j) {
      a.ins(ins_rri(Op::add, r1, r1, 1, SetFlags::any));
    }
    a.pool_island();
  }
  a.ins(ins_ret());
  const Image image = a.assemble();
  EXPECT_GT(image.size(), 4000u);
}

TEST(PoolIsland, NoopWhenNothingPending) {
  Assembler a(Encoding::b32, 0);
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));
  const int before = a.pending_literals();
  a.pool_island();
  a.ins(ins_ret());
  const Image image = a.assemble();
  EXPECT_EQ(before, 0);
  // mov(2) + ret(2): the island added nothing.
  EXPECT_EQ(image.size(), 4u);
}

TEST(PoolIsland, ExecutionSkipsOverPool) {
  // The island's branch must jump over the literal data.
  Assembler a(Encoding::b32, 0);
  a.load_literal(r0, 123456);
  a.pool_island();
  a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  // Verified by execution in kir fuzz tests; here check the pool really is
  // before the final instructions (island placement).
  bool found = false;
  for (std::uint32_t off = 0; off + 4 <= image.size(); off += 2) {
    const std::uint32_t w = static_cast<std::uint32_t>(image.bytes[off]) |
                            (image.bytes[off + 1] << 8) |
                            (image.bytes[off + 2] << 16) |
                            (static_cast<std::uint32_t>(image.bytes[off + 3])
                             << 24);
    if (w == 123456u && off + 4 < image.size()) {
      found = true;  // literal sits before the end
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace aces::isa
