// Cross-encoding equivalence for the whole AutoIndy-like suite: every
// kernel, lowered to every encoding, must match its host reference on many
// randomized instances. This is the correctness backbone under Table 1.
#include <gtest/gtest.h>

#include "cpu/profiles.h"
#include "kir/lower.h"
#include "workloads/autoindy.h"
#include "workloads/runner.h"

namespace aces::workloads {
namespace {

using cpu::System;
using cpu::SystemBuilder;
using isa::Encoding;

SystemBuilder config_for(Encoding e) {
  return cpu::profiles::for_encoding(e).flash_size(128 * 1024);
}

struct Case {
  std::size_t kernel_index;
  Encoding encoding;
};

class SuiteEquivalence
    : public ::testing::TestWithParam<Case> {};

TEST_P(SuiteEquivalence, MatchesHostReference) {
  const Kernel& kernel = autoindy_suite()[GetParam().kernel_index];
  const Encoding enc = GetParam().encoding;
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, enc, cpu::kFlashBase);
  System sys(config_for(enc));
  sys.load(prog.image);
  support::Rng256 rng(1234 + GetParam().kernel_index);
  for (int k = 0; k < 25; ++k) {
    const Instance in = kernel.make_instance(rng, kDataBase);
    const RunResult r = run_instance(sys, prog.entry_of(kernel.name), in);
    ASSERT_EQ(r.value, in.expected)
        << kernel.name << " on " << isa::encoding_name(enc)
        << " instance " << k;
  }
}

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (std::size_t k = 0; k < autoindy_suite().size(); ++k) {
    for (const Encoding e :
         {Encoding::w32, Encoding::n16, Encoding::b32}) {
      cases.push_back(Case{k, e});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllEncodings, SuiteEquivalence, ::testing::ValuesIn(all_cases()),
    [](const auto& info) {
      return autoindy_suite()[info.param.kernel_index].name + "_" +
             std::string(isa::encoding_name(info.param.encoding));
    });

TEST(Suite, HasSixKernels) {
  EXPECT_EQ(autoindy_suite().size(), 6u);
}

TEST(Suite, DensityShapeHolds) {
  // Table 1 precondition: summed over the suite, N16 and B32 code is far
  // smaller than W32 and B32 is within ~15% of N16.
  std::uint32_t w = 0, n = 0, b = 0;
  for (const Kernel& kernel : autoindy_suite()) {
    const kir::KFunction f = kernel.build();
    w += kir::lower_program({&f}, Encoding::w32, 0).code_bytes;
    n += kir::lower_program({&f}, Encoding::n16, 0).code_bytes;
    b += kir::lower_program({&f}, Encoding::b32, 0).code_bytes;
  }
  // Paper shape: both compressed encodings are far denser than W32 and B32
  // is at least as dense as N16 (the paper reports 57%/57%; our teaching-
  // grade allocator lands N16 nearer 75%, see EXPERIMENTS.md).
  EXPECT_LT(n, w * 80 / 100) << "N16 should be well under 80% of W32";
  EXPECT_LT(b, w * 70 / 100) << "B32 should be well under 70% of W32";
  EXPECT_LE(b, n) << "B32 must not be less dense than N16";
}

TEST(Suite, AblationAllOffStillCorrect) {
  // B32 with every feature disabled must still compute correct results
  // (it degenerates to roughly Thumb-1-plus-wide-ALU).
  kir::LoweringOptions opts = kir::LoweringOptions::for_encoding(
      Encoding::b32);
  opts.use_movw_movt = false;
  opts.use_bitfield = false;
  opts.use_hw_divide = false;
  opts.use_it_blocks = false;
  opts.use_cbz = false;
  for (const Kernel& kernel : autoindy_suite()) {
    const kir::KFunction f = kernel.build();
    const kir::LoweredProgram prog =
        kir::lower_program({&f}, Encoding::b32, opts, cpu::kFlashBase);
    System sys(config_for(Encoding::b32));
    sys.load(prog.image);
    support::Rng256 rng(777);
    for (int k = 0; k < 5; ++k) {
      const Instance in = kernel.make_instance(rng, kDataBase);
      const RunResult r = run_instance(sys, prog.entry_of(kernel.name), in);
      ASSERT_EQ(r.value, in.expected) << kernel.name << " ablated";
    }
  }
}

}  // namespace
}  // namespace aces::workloads
