// Co-simulation scheduler tests: cycle-accurate Systems as first-class
// participants of the one event-driven time base.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "can/controller.h"
#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/assembler.h"
#include "net/flexray_fabric.h"
#include "sched/flexray.h"
#include "sim/simulation.h"

namespace aces {
namespace {

using namespace aces::isa;
using Ctl = can::CanController;

constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;
constexpr unsigned kLine = 1;

// ----- plain Clocked probes ---------------------------------------------------

struct ProbeClocked final : sim::Clocked {
  std::string label;
  std::vector<sim::SimTime>* trace;  // shared across probes: global order
  std::vector<std::string>* order;
  sim::SimTime busy_until = 0;  // reports busy (now) below this local limit
  sim::SimTime local = 0;

  ProbeClocked(std::string l, std::vector<sim::SimTime>* t,
               std::vector<std::string>* o)
      : label(std::move(l)), trace(t), order(o) {}

  [[nodiscard]] std::string_view name() const override { return label; }
  void advance_to(sim::SimTime t) override {
    local = t;
    trace->push_back(t);
    order->push_back(label);
  }
  [[nodiscard]] sim::SimTime next_activity() override {
    return local < busy_until ? local : sim::kNever;
  }
};

TEST(Simulation, RoundRobinIsRegistrationOrder) {
  sim::Simulation sim(10 * sim::kMicrosecond);
  std::vector<sim::SimTime> trace;
  std::vector<std::string> order;
  ProbeClocked a("a", &trace, &order);
  ProbeClocked b("b", &trace, &order);
  a.busy_until = 50 * sim::kMicrosecond;
  b.busy_until = 50 * sim::kMicrosecond;
  sim.add(a);
  sim.add(b);
  sim.run_until(30 * sim::kMicrosecond);
  // Three quantum windows, each advancing a then b to the same target.
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t k = 0; k < order.size(); k += 2) {
    EXPECT_EQ(order[k], "a");
    EXPECT_EQ(order[k + 1], "b");
    EXPECT_EQ(trace[k], trace[k + 1]);
  }
  EXPECT_EQ(trace.back(), 30 * sim::kMicrosecond);
}

TEST(Simulation, SlicesAreCutAtEventTimes) {
  sim::Simulation sim(1 * sim::kMillisecond);
  std::vector<sim::SimTime> trace;
  std::vector<std::string> order;
  ProbeClocked a("a", &trace, &order);
  a.busy_until = sim::kNever;
  sim.add(a);
  bool fired = false;
  sim.schedule_at(300 * sim::kMicrosecond, [&] {
    fired = true;
    // The participant must have been advanced exactly to the event time,
    // not quantum-rounded past it.
    EXPECT_EQ(a.local, 300 * sim::kMicrosecond);
  });
  sim.run_until(2 * sim::kMillisecond);
  EXPECT_TRUE(fired);
  ASSERT_FALSE(trace.empty());
  EXPECT_EQ(trace.front(), 300 * sim::kMicrosecond);
}

TEST(Simulation, IdleNetworkFastForwards) {
  sim::Simulation sim(10 * sim::kMicrosecond);
  std::vector<sim::SimTime> trace;
  std::vector<std::string> order;
  ProbeClocked a("a", &trace, &order);  // idle: busy_until = 0
  sim.add(a);
  sim.run_until(10 * sim::kSecond);  // a million quanta if walked naively
  EXPECT_EQ(sim.now(), 10 * sim::kSecond);
  EXPECT_LE(sim.stats().slices, 2u);
  EXPECT_GE(sim.stats().idle_jumps, 1u);
  // Per-participant breakdown: the lone participant owns every slice, and
  // its idle window count records the WFI-style fast-forward.
  ASSERT_EQ(sim.stats().participants.size(), 1u);
  EXPECT_EQ(sim.stats().participants[0].name, "a");
  EXPECT_EQ(sim.stats().participants[0].slices, sim.stats().slices);
  EXPECT_GE(sim.stats().participants[0].idle_windows, 1u);
}

TEST(Simulation, PerParticipantStatsPartitionTheSliceCount) {
  sim::Simulation sim(100 * sim::kMicrosecond);
  std::vector<sim::SimTime> trace;
  std::vector<std::string> order;
  ProbeClocked busy("busy", &trace, &order);
  busy.busy_until = 5 * sim::kMillisecond;
  ProbeClocked idle("idle", &trace, &order);  // busy_until = 0: asleep
  sim.add(busy);
  sim.add(idle);
  sim.run_until(10 * sim::kMillisecond);
  const auto& st = sim.stats();
  ASSERT_EQ(st.participants.size(), 2u);
  EXPECT_EQ(st.participants[0].slices + st.participants[1].slices,
            st.slices);
  // Both advance in lock-step round-robin...
  EXPECT_EQ(st.participants[0].slices, st.participants[1].slices);
  // ...but only the sleeping one accrues idle (fast-forwarded) windows
  // while the busy one is driving the quantum march.
  EXPECT_GT(st.participants[1].idle_windows,
            st.participants[0].idle_windows);
}

TEST(Simulation, RejectsDuplicateParticipantsAndBackwardRuns) {
  sim::Simulation sim;
  std::vector<sim::SimTime> trace;
  std::vector<std::string> order;
  ProbeClocked a("a", &trace, &order);
  sim.add(a);
  EXPECT_THROW(sim.add(a), std::logic_error);
  sim.run_until(100);
  EXPECT_THROW(sim.run_until(50), std::logic_error);
  EXPECT_THROW(sim::Simulation(0), std::logic_error);
}

TEST(Simulation, RejectsReentrantRun) {
  sim::Simulation sim;
  bool threw = false;
  sim.schedule_at(10, [&] {
    try {
      sim.run_until(20);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  sim.run_until(100);
  EXPECT_TRUE(threw);
  // The guard resets: a fresh top-level run still works.
  sim.schedule_at(200, [] {});
  sim.run_until(300);
  EXPECT_EQ(sim.now(), 300);
}

// ----- bound Systems ----------------------------------------------------------

// Minimal interrupt-driven guest: WFI main loop; the ISR bumps a counter
// in SRAM and returns.
Image build_wfi_guest(Assembler& a, Label* entry, Label* isr) {
  *entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  *isr = a.bound_label();
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_ret());
  a.pool();
  return a.assemble();
}

struct BoundEcu {
  Assembler assembler{Encoding::b32, cpu::kFlashBase};
  Label entry, isr;
  cpu::System sys;
  cpu::SystemBinding& binding;

  BoundEcu(const char* name, sim::Simulation& sim, std::uint64_t hz)
      : sys(cpu::profiles::modern_mcu().name(name).clock_hz(hz).flash_size(
            16 * 1024).ivc([] {
          cpu::Ivc::Config c;
          c.vector_table = kVectors;
          c.lines = 4;
          return c;
        }())),
        binding(sys.bind(sim)) {
    const Image image = build_wfi_guest(assembler, &entry, &isr);
    sys.load(image);
    sys.set_irq_handler(kLine, assembler.label_address(isr));
    sys.ivc()->enable_line(kLine, 32);
    sys.core().reset(assembler.label_address(entry), sys.initial_sp());
  }

  [[nodiscard]] std::uint32_t count() {
    return sys.bus().read(kCount, 4, mem::Access::read, 0).value;
  }
};

TEST(CoSim, SameInstantIrqsFireFifoAcrossTwoSystems) {
  sim::Simulation sim(100 * sim::kMicrosecond);
  BoundEcu a("a", sim, 8'000'000);
  BoundEcu b("b", sim, 16'000'000);

  // Two IRQ-raising events at the same instant, scheduled b-first: FIFO
  // dispatch raises b's line before a's, regardless of registration order.
  std::vector<std::string> raise_order;
  const sim::SimTime t = 1 * sim::kMillisecond;
  sim.schedule_at(t, [&] {
    raise_order.push_back("b");
    b.binding.raise_irq(kLine);
  });
  sim.schedule_at(t, [&] {
    raise_order.push_back("a");
    a.binding.raise_irq(kLine);
  });
  sim.run_until(2 * sim::kMillisecond);

  EXPECT_EQ(raise_order, (std::vector<std::string>{"b", "a"}));
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(b.count(), 1u);
  // Both sleeping cores were woken at the same shared instant, each in its
  // own clock domain: the raise lands at exactly t cycles.
  ASSERT_EQ(a.sys.ivc()->latencies(kLine).size(), 1u);
  ASSERT_EQ(b.sys.ivc()->latencies(kLine).size(), 1u);
  // 1 ms at 8 MHz = 8000 cycles; at 16 MHz = 16000 cycles. Entry happens
  // a few cycles later (stacking); the *raise* bookkeeping is exact.
  EXPECT_GE(a.sys.core().cycles(), 8'000u);
  EXPECT_GE(b.sys.core().cycles(), 16'000u);
  EXPECT_EQ(a.sys.ivc()->latencies(kLine)[0],
            b.sys.ivc()->latencies(kLine)[0]);
}

// A queue event created *mid-window* (here: by a clocked participant's
// advance_to, the guest-TX pattern) can land after a sleeping System was
// already fast-forwarded past it. The wakeup is then up to one quantum
// late — and that lateness must show up in the latency measurement, not be
// silently absorbed by stamping the raise at the slice end.
struct MidWindowScheduler final : sim::Clocked {
  sim::Simulation& sim;
  cpu::SystemBinding& target;
  bool armed = false;

  MidWindowScheduler(sim::Simulation& s, cpu::SystemBinding& t)
      : sim(s), target(t) {}
  [[nodiscard]] std::string_view name() const override { return "midwin"; }
  void advance_to(sim::SimTime) override {
    if (!armed) {
      armed = true;
      // 400 us into the 1 ms window the planner has already laid out.
      sim.schedule_at(400 * sim::kMicrosecond,
                      [this] { target.raise_irq(kLine); });
    }
  }
  [[nodiscard]] sim::SimTime next_activity() override {
    return armed ? sim::kNever : sim.now();
  }
};

TEST(CoSim, QuantumLateWakeupIsChargedToLatency) {
  sim::Simulation sim(1 * sim::kMillisecond);  // quantum >> event offset
  cpu::System sys(cpu::profiles::modern_mcu().name("late").clock_hz(
      8'000'000).flash_size(16 * 1024).ivc([] {
    cpu::Ivc::Config c;
    c.vector_table = kVectors;
    c.lines = 4;
    return c;
  }()));
  Assembler a(Encoding::b32, cpu::kFlashBase);
  Label entry, isr;
  const Image image = build_wfi_guest(a, &entry, &isr);
  sys.load(image);
  sys.set_irq_handler(kLine, a.label_address(isr));
  sys.ivc()->enable_line(kLine, 32);
  cpu::SystemBinding& binding = sys.bind(sim);
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  MidWindowScheduler scheduler(sim, binding);
  sim.add(scheduler);
  sim.run_until(3 * sim::kMillisecond);

  // The guest serviced the interrupt...
  ASSERT_EQ(sys.ivc()->latencies(kLine).size(), 1u);
  // ...and the measured entry latency includes the late wake: the raise is
  // stamped at 400 us (3200 cycles @ 8 MHz) while the sleeping core had
  // been fast-forwarded to the 1 ms window end (8000 cycles), so entry
  // cannot be sooner than 4800 cycles after the stamp.
  EXPECT_GE(sys.ivc()->latencies(kLine)[0], 4'800u);
}

TEST(CoSim, WfiIdlingCostsZeroHostWork) {
  sim::Simulation sim(50 * sim::kMicrosecond);
  BoundEcu a("sleeper", sim, 100'000'000);  // 100 MHz, always asleep
  sim.schedule_at(1 * sim::kMillisecond, [&] { a.binding.raise_irq(kLine); });
  sim.run_until(10 * sim::kSecond);

  EXPECT_EQ(a.count(), 1u);
  // 10 simulated seconds at 100 MHz is 1e9 cycles; virtually all of them
  // must have been slept through, not stepped.
  EXPECT_EQ(a.sys.core().cycles(), 1'000'000'000u);
  EXPECT_LT(a.binding.stats().steps, 100u);
  EXPECT_GT(a.binding.stats().idle_cycles, 999'000'000u);
}

TEST(CoSim, ClockConversionsRoundTripAtAwkwardFrequencies) {
  // 48 MHz: 20.833... ns per cycle, nothing divides evenly. cycles_at is
  // the first boundary at or after t, making it the exact inverse of
  // time_of_cycles.
  sim::Simulation sim;
  cpu::System sys(cpu::profiles::modern_mcu().name("odd"));
  cpu::SystemBinding& b = sys.bind(sim, 48'000'000);
  for (const std::uint64_t c :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
        std::uint64_t{123'456}, std::uint64_t{999'999'937}}) {
    EXPECT_EQ(b.cycles_at(b.time_of_cycles(c)), c);
  }
  // cycles_at(t) is the smallest cycle count whose start time has reached
  // t: a core advanced there is never early, and one cycle less is late.
  for (sim::SimTime t = 0; t < 2'000; t += 13) {
    const std::uint64_t c = b.cycles_at(t);
    EXPECT_GE(b.time_of_cycles(c), t);
    if (c > 0) {
      EXPECT_LT(b.time_of_cycles(c - 1), t);
    }
  }
}

TEST(CoSim, BindValidatesClockAndSingleUse) {
  sim::Simulation sim;
  cpu::System no_clock(cpu::SystemBuilder{});  // no profile: no clock_hz
  EXPECT_THROW(no_clock.bind(sim), std::logic_error);

  cpu::System sys(cpu::profiles::modern_mcu());
  EXPECT_EQ(sys.clock_hz(), 50'000'000u);  // profile-declared default
  sys.bind(sim);
  EXPECT_THROW(sys.bind(sim), std::logic_error);

  cpu::System too_fast(cpu::profiles::modern_mcu().clock_hz(2'000'000'000));
  sim::Simulation sim2;
  EXPECT_THROW(too_fast.bind(sim2), std::logic_error);
}

// ----- ecu_node regression ----------------------------------------------------

// Replica of examples/ecu_node.cpp's scenario. The asserted numbers are
// the goldens from the pre-co-simulation implementation (manual cycle-hook
// bridging): the migration to Simulation/bind must not move them.
constexpr std::uint32_t kSampleCount = cpu::kSramBase + 0x100;
constexpr std::uint32_t kSpeedAccum = cpu::kSramBase + 0x104;
constexpr std::uint32_t kSensorId = 0x120;
constexpr std::uint32_t kStatusId = 0x310;

Image build_wheel_guest(Assembler& a, Label* entry, Label* isr) {
  *entry = a.bound_label();
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r6, r6, 1, SetFlags::any));
  a.b(top);
  a.pool();
  *isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, Ctl::kRxData0));
  a.load_literal(r3, kSampleCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_ldst_imm(Op::ldr, r12, r3, 4));
  a.ins(ins_rrr(Op::add, r12, r12, r1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r3, 4));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_rri(Op::and_, r12, r2, 3, SetFlags::yes));
  const Label done = a.new_label();
  a.b(done, Cond::ne);
  a.load_literal(r12, kStatusId);
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxId));
  a.ins(ins_mov_imm(r12, 4, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxDlc));
  a.ins(ins_ldst_imm(Op::ldr, r12, r3, 4));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxData0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxCmd));
  a.bind(done);
  a.ins(ins_ret());
  a.pool();
  return a.assemble();
}

struct WheelRun {
  std::uint32_t samples = 0;
  std::uint32_t accum = 0;
  int status_frames = 0;
  std::uint64_t isr_entries = 0;
  std::vector<std::uint64_t> latencies;
};

WheelRun run_wheel_scenario() {
  sim::Simulation sim(100 * sim::kMicrosecond);
  can::CanBus bus(sim.queue(), 500'000);
  Ctl::Config cc;
  cc.rx_line = kLine;
  Ctl controller(bus, "ecu", cc);

  const can::NodeId sensor = bus.attach_node("wheel-sensor");
  WheelRun out;
  bus.subscribe(sensor, [&](const can::CanFrame& f, sim::SimTime) {
    if (f.id == kStatusId) {
      ++out.status_frames;
    }
  });

  Assembler a(Encoding::b32, cpu::kFlashBase);
  Label entry, isr;
  const Image image = build_wheel_guest(a, &entry, &isr);

  cpu::Ivc::Config ic;
  ic.vector_table = kVectors;
  ic.lines = 4;
  cpu::System sys(cpu::profiles::modern_mcu()
                      .name("wheel-ecu")
                      .clock_hz(8'000'000)
                      .flash_size(64 * 1024)
                      .device(cpu::kPeriphBase, controller)
                      .ivc(ic));
  sys.load(image);
  sys.set_irq_handler(kLine, a.label_address(isr));
  sys.ivc()->enable_line(kLine, 32);
  cpu::SystemBinding& ecu = sys.bind(sim);
  controller.connect_irq(ecu);
  ACES_CHECK(
      sys.bus().write(cpu::kPeriphBase + Ctl::kCtrl, 4, Ctl::kCtrlRxie, 0)
          .ok());

  for (int k = 0; k < 16; ++k) {
    sim.schedule_at((k + 1) * 2 * sim::kMillisecond, [&bus, sensor, k] {
      can::CanFrame f;
      f.id = kSensorId;
      f.dlc = 4;
      const std::uint32_t speed = 1200 - 40 * static_cast<std::uint32_t>(k);
      f.data[0] = static_cast<std::uint8_t>(speed);
      f.data[1] = static_cast<std::uint8_t>(speed >> 8);
      bus.send(sensor, f);
    });
  }
  sys.core().reset(a.label_address(entry), sys.initial_sp());
  sim.run_until(35 * sim::kMillisecond);

  out.samples = sys.bus().read(kSampleCount, 4, mem::Access::read, 0).value;
  out.accum = sys.bus().read(kSpeedAccum, 4, mem::Access::read, 0).value;
  out.isr_entries = sys.ivc()->stats().entries;
  out.latencies = sys.ivc()->latencies(kLine);
  return out;
}

TEST(CoSim, EcuNodeLatencyNumbersUnchangedByMigration) {
  const WheelRun r = run_wheel_scenario();
  EXPECT_EQ(r.samples, 16u);
  EXPECT_EQ(r.accum, 14'400u);
  EXPECT_EQ(r.status_frames, 4);
  EXPECT_EQ(r.isr_entries, 16u);
  std::uint64_t worst = 0;
  for (const std::uint64_t l : r.latencies) {
    worst = std::max(worst, l);
  }
  // Golden from the pre-migration manual-bridging implementation.
  EXPECT_EQ(worst, 11u);
}

TEST(CoSim, ScenariosAreDeterministic) {
  const WheelRun r1 = run_wheel_scenario();
  const WheelRun r2 = run_wheel_scenario();
  EXPECT_EQ(r1.samples, r2.samples);
  EXPECT_EQ(r1.accum, r2.accum);
  EXPECT_EQ(r1.isr_entries, r2.isr_entries);
  EXPECT_EQ(r1.latencies, r2.latencies);
}

// ----- FlexRay static segment on the shared time base -------------------------

TEST(CoSim, FlexrayFabricPlaysStaticSlotsDeterministically) {
  sim::Simulation sim;
  net::FlexrayFabricConfig config;
  config.static_cfg.cycle_length = 5 * sim::kMillisecond;
  config.static_cfg.static_slots = 4;
  config.static_cfg.slot_length = 100 * sim::kMicrosecond;
  net::FlexrayFabric fabric(sim, config);
  fabric.assign_static({
      {"fast", 0, 5 * sim::kMillisecond},    // every cycle
      {"slow", 1, 10 * sim::kMillisecond},   // every 2nd cycle
  });
  ASSERT_TRUE(fabric.static_schedule().feasible);

  std::vector<std::pair<std::string, sim::SimTime>> played;
  fabric.on_static_slot([&](const sched::FlexrayFrame& f,
                            const sched::FlexrayAssignment& assignment,
                            sim::SimTime slot_start) {
    EXPECT_EQ(slot_start % config.static_cfg.slot_length, 0);
    EXPECT_LT(assignment.slot, config.static_cfg.static_slots);
    played.emplace_back(f.name, slot_start);
  });
  fabric.start();
  sim.run_until(14 * sim::kMillisecond);  // cycles 0, 1 and 2 complete

  std::vector<std::pair<std::string, sim::SimTime>> fast, slow;
  for (const auto& p : played) {
    (p.first == "fast" ? fast : slow).push_back(p);
  }
  // "fast" fires once per cycle in its slot; "slow" every other cycle.
  ASSERT_EQ(fast.size(), 3u);
  EXPECT_EQ(fast[0].second - 0, fast[1].second - 5 * sim::kMillisecond);
  EXPECT_EQ(fast[1].second + 5 * sim::kMillisecond, fast[2].second);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[1].second - slow[0].second, 10 * sim::kMillisecond);
  EXPECT_EQ(fabric.slots_played(), played.size());
}

// ----- mixed fidelity ---------------------------------------------------------

TEST(CoSim, GuestEcuAndEventModelShareOneBus) {
  // A guest-code ECU (ISS) and a plain event-driven sender on one CAN bus:
  // the compact version of examples/body_network.cpp's mixed-fidelity
  // scenario, asserted deterministically.
  sim::Simulation sim(50 * sim::kMicrosecond);
  can::CanBus bus(sim.queue(), 125'000);

  Ctl::Config cc;
  cc.rx_line = kLine;
  Ctl controller(bus, "guest", cc);

  Assembler a(Encoding::b32, cpu::kFlashBase);
  Label entry, isr;
  // Like the WFI guest, but the ISR must drain the controller: count,
  // then pop and ack.
  entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  cpu::Ivc::Config ic;
  ic.vector_table = kVectors;
  ic.lines = 4;
  cpu::System sys(cpu::profiles::modern_mcu()
                      .name("guest")
                      .clock_hz(8'000'000)
                      .flash_size(16 * 1024)
                      .device(cpu::kPeriphBase, controller)
                      .ivc(ic));
  sys.load(image);
  sys.set_irq_handler(kLine, a.label_address(isr));
  sys.ivc()->enable_line(kLine, 32);
  cpu::SystemBinding& binding = sys.bind(sim);
  controller.connect_irq(binding);
  ACES_CHECK(
      sys.bus().write(cpu::kPeriphBase + Ctl::kCtrl, 4, Ctl::kCtrlRxie, 0)
          .ok());
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  const can::NodeId sender = bus.attach_node("model");
  for (int k = 0; k < 10; ++k) {
    sim.schedule_at((k + 1) * 10 * sim::kMillisecond, [&bus, sender] {
      can::CanFrame f;
      f.id = 0x123;
      f.dlc = 2;
      bus.send(sender, f);
    });
  }
  sim.run_until(200 * sim::kMillisecond);

  EXPECT_EQ(sys.bus().read(kCount, 4, mem::Access::read, 0).value, 10u);
  EXPECT_EQ(controller.stats().frames_received, 10u);
  EXPECT_EQ(controller.stats().frames_dropped, 0u);
  // The guest slept between frames: steps are a tiny fraction of the
  // 1.6 M cycles that 200 ms at 8 MHz represents.
  EXPECT_EQ(sys.core().cycles(), 1'600'000u);
  EXPECT_LT(binding.stats().steps, 2'000u);
}

}  // namespace
}  // namespace aces
