// CAN fault-model tests: error frames, automatic retransmission, the
// TEC/REC fault-confinement state machine, bus-off recovery, and the
// load-bearing differential property — under injected bit errors, every
// simulated latency stays below the faulted response-time bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "can/bit_error.h"
#include "can/bus.h"
#include "can/frame.h"
#include "sched/can_rta.h"
#include "support/rng.h"

namespace aces::can {
namespace {

using sim::kMillisecond;
using sim::SimTime;

CanFrame frame(std::uint32_t id, unsigned dlc, std::uint8_t fill = 0) {
  CanFrame f;
  f.id = id;
  f.dlc = dlc;
  f.data.fill(fill);
  return f;
}

struct BusFixture {
  sim::EventQueue q;
  CanBus bus{q, 500'000};  // 500 kbit/s -> 2 us/bit
  NodeId a = bus.attach_node("a");
  NodeId b = bus.attach_node("b");
};

// Corrupts bit 0 of the next `n` transmission attempts.
CanBus::BitErrorModel corrupt_next(int& n) {
  return [&n](const CanFrame&, NodeId, SimTime) {
    if (n > 0) {
      --n;
      return 0;
    }
    return -1;
  };
}

TEST(CanFault, CorruptedFrameIsRetransmittedAndDeliveredOnce) {
  BusFixture f;
  int to_corrupt = 1;
  f.bus.set_bit_error_model(corrupt_next(to_corrupt));
  int received = 0;
  SimTime delivered_at = 0;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime at) {
    EXPECT_EQ(fr.id, 0x100u);
    ++received;
    delivered_at = at;
  });
  const CanFrame fr = frame(0x100, 4, 0x5A);
  f.bus.send(f.a, fr);
  f.q.run_until(sim::kSecond);

  EXPECT_EQ(received, 1);  // exactly one delivery despite the retry
  EXPECT_EQ(f.bus.fault_stats().bit_errors, 1u);
  EXPECT_EQ(f.bus.fault_stats().retransmissions, 1u);
  const auto& s = f.bus.stats().at(0x100);
  EXPECT_EQ(s.sent, 1u);
  EXPECT_EQ(s.errors, 1u);
  // Latency is exact: 1 corrupted bit + active error frame (6 flag +
  // 8 delimiter + 3 intermission), then the full retransmission.
  const SimTime expect =
      f.bus.bit_time() * (1 + CanBus::kErrorFlagBits +
                          CanBus::kErrorDelimiterBits +
                          CanBus::kIntermissionBits) +
      f.bus.frame_time(fr);
  EXPECT_EQ(s.worst_latency, expect);
  EXPECT_EQ(delivered_at, expect);
  // Counters: transmit error +8, then the successful retry -1; the
  // receiver's observed error +1 counts down on the clean reception.
  EXPECT_EQ(f.bus.tec(f.a), 7u);
  EXPECT_EQ(f.bus.rec(f.b), 0u);
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::error_active);
}

TEST(CanFault, StateMachineWalksActivePassiveBusOffAndRecovers) {
  BusFixture f;
  int to_corrupt = 32;  // 32 x (+8) drives TEC to 256 -> bus-off
  f.bus.set_bit_error_model(corrupt_next(to_corrupt));
  std::vector<CanBus::ErrorEvent> events;
  f.bus.subscribe_err(f.a, [&](const CanBus::ErrorEvent& e, SimTime) {
    events.push_back(e);
  });
  int received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame&, SimTime) { ++received; });
  f.bus.send(f.a, frame(0x123, 2));
  f.q.run_until(sim::kSecond);

  EXPECT_EQ(f.bus.fault_stats().bit_errors, 32u);
  EXPECT_EQ(f.bus.fault_stats().bus_off_events, 1u);
  EXPECT_EQ(f.bus.fault_stats().recoveries, 1u);
  // After auto-recovery the pending frame finally goes through.
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::error_active);
  EXPECT_EQ(f.bus.tec(f.a), 0u);  // recovery clears the counters

  // The state-change walk: error-active -> error-passive (TEC 128) ->
  // bus-off (TEC > 255) -> error-active (recovery).
  std::vector<ErrorState> walk;
  for (const auto& e : events) {
    if (e.kind == CanBus::ErrorEvent::Kind::state_change) {
      walk.push_back(e.state);
    }
  }
  ASSERT_EQ(walk.size(), 3u);
  EXPECT_EQ(walk[0], ErrorState::error_passive);
  EXPECT_EQ(walk[1], ErrorState::bus_off);
  EXPECT_EQ(walk[2], ErrorState::error_active);
  // tx_error events carry the post-bump TEC; the 16th crossing reads 128.
  std::vector<unsigned> tecs;
  for (const auto& e : events) {
    if (e.kind == CanBus::ErrorEvent::Kind::tx_error) {
      tecs.push_back(e.tec);
    }
  }
  ASSERT_EQ(tecs.size(), 32u);
  EXPECT_EQ(tecs[0], 8u);
  EXPECT_EQ(tecs[15], 128u);
  EXPECT_EQ(tecs[31], 256u);
}

TEST(CanFault, BusOffRecoveryTakes128x11RecessiveBits) {
  BusFixture f;
  int to_corrupt = 32;
  f.bus.set_bit_error_model(corrupt_next(to_corrupt));
  SimTime bus_off_at = -1;
  SimTime recovered_at = -1;
  f.bus.subscribe_err(f.a, [&](const CanBus::ErrorEvent& e, SimTime at) {
    if (e.kind != CanBus::ErrorEvent::Kind::state_change) {
      return;
    }
    if (e.state == ErrorState::bus_off) {
      bus_off_at = at;
    } else if (e.state == ErrorState::error_active) {
      recovered_at = at;
    }
  });
  f.bus.send(f.a, frame(0x123, 2));
  f.q.run_until(sim::kSecond);
  ASSERT_GE(bus_off_at, 0);
  ASSERT_GE(recovered_at, 0);
  EXPECT_EQ(recovered_at - bus_off_at,
            f.bus.bit_time() * CanBus::kBusOffRecoveryBits);
}

TEST(CanFault, ManualRecoveryWaitsForSoftwareRequest) {
  BusFixture f;
  f.bus.set_manual_bus_off_recovery(f.a, true);
  int to_corrupt = 32;
  f.bus.set_bit_error_model(corrupt_next(to_corrupt));
  int received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame&, SimTime) { ++received; });
  f.bus.send(f.a, frame(0x123, 2));
  f.q.run_until(sim::kSecond);

  // No request: the node stays off the bus indefinitely.
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::bus_off);
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.bus.fault_stats().recoveries, 0u);

  f.bus.request_recovery(f.a);
  f.q.run_until(f.q.now() + sim::kSecond);
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::error_active);
  EXPECT_EQ(received, 1);  // the pending frame survived bus-off
  EXPECT_EQ(f.bus.fault_stats().recoveries, 1u);
}

TEST(CanFault, SwitchingToManualRevokesAnArmedAutoRecovery) {
  BusFixture f;
  int to_corrupt = 32;
  f.bus.set_bit_error_model(corrupt_next(to_corrupt));
  f.bus.send(f.a, frame(0x123, 2));
  // Step until bus-off; the auto-recovery timer is now armed.
  while (f.bus.error_state(f.a) != ErrorState::bus_off &&
         f.q.step(sim::kSecond)) {
  }
  ASSERT_EQ(f.bus.error_state(f.a), ErrorState::bus_off);
  // Claiming the node for software-controlled recovery must cancel the
  // pending timer: the node stays off the wire until request_recovery().
  f.bus.set_manual_bus_off_recovery(f.a, true);
  f.q.run_until(f.q.now() + sim::kSecond);
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::bus_off);
  EXPECT_EQ(f.bus.fault_stats().recoveries, 0u);
  f.bus.request_recovery(f.a);
  f.q.run_until(f.q.now() + sim::kSecond);
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::error_active);
  EXPECT_EQ(f.bus.fault_stats().recoveries, 1u);
}

TEST(CanFault, ReceiveErrorCounterSaturatesLikeAn8BitCounter) {
  // 10 bus-off cycles x 32 errors each would push the receiver's REC to
  // 320 unbounded; it must saturate at 255 (the controller's ERRCNT
  // register packs REC into 9 bits and guest code reads it live).
  BusFixture f;
  int to_corrupt = 320;
  f.bus.set_bit_error_model(corrupt_next(to_corrupt));
  f.bus.send(f.a, frame(0x123, 2));
  f.q.run_until(sim::kSecond);
  EXPECT_EQ(f.bus.fault_stats().bus_off_events, 10u);
  EXPECT_EQ(f.bus.fault_stats().recoveries, 10u);
  // Saturated at 255 through the storm, minus one for the clean final
  // exchange after the 10th recovery.
  EXPECT_EQ(f.bus.rec(f.b), 254u);
  EXPECT_EQ(f.bus.tec(f.a), 0u);  // cleared by the last recovery
  EXPECT_EQ(f.bus.stats().at(0x123).sent, 1u);
}

TEST(CanFault, BusOffNodeIsDisconnectedFromArbitrationAndDelivery) {
  BusFixture f;
  // Only node b's transmissions are corrupted.
  f.bus.set_manual_bus_off_recovery(f.b, true);
  f.bus.set_bit_error_model(
      [&f](const CanFrame&, NodeId tx, SimTime) { return tx == f.b ? 0 : -1; });
  int b_received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame&, SimTime) { ++b_received; });
  f.bus.send(f.b, frame(0x050, 1));  // b hammers itself into bus-off
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(f.bus.error_state(f.b), ErrorState::bus_off);

  // Traffic from a flows cleanly (b's pending 0x050 cannot interfere) and
  // is not delivered to the dead node.
  int a_sent = 0;
  f.bus.subscribe_tx(f.a, [&](const CanFrame&, SimTime) { ++a_sent; });
  f.bus.send(f.a, frame(0x100, 1));
  f.q.run_until(f.q.now() + sim::kSecond);
  EXPECT_EQ(a_sent, 1);
  EXPECT_EQ(b_received, 0);
  EXPECT_EQ(f.bus.stats().at(0x100).errors, 0u);
}

TEST(CanFault, ErrorModelMaySendReentrantly) {
  // The wire is claimed before the model runs: a model that reacts to a
  // corruption by injecting traffic (e.g. a diagnostic frame) must not
  // start a nested transmission or displace the in-flight frame.
  BusFixture f;
  bool once = true;
  f.bus.set_bit_error_model(
      [&](const CanFrame& fr, NodeId, SimTime) -> int {
        if (fr.id == 0x200 && once) {
          once = false;
          f.bus.send(f.b, frame(0x050, 1));
          return 3;
        }
        return -1;
      });
  const NodeId c = f.bus.attach_node("c");
  std::vector<std::uint32_t> order;
  f.bus.subscribe(c, [&](const CanFrame& fr, SimTime) {
    order.push_back(fr.id);
  });
  f.bus.send(f.a, frame(0x200, 1));
  f.q.run_until(sim::kSecond);
  // The injected high-priority frame wins the post-error arbitration,
  // then the corrupted frame retransmits.
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0x050u);
  EXPECT_EQ(order[1], 0x200u);
  EXPECT_EQ(f.bus.fault_stats().bit_errors, 1u);
  EXPECT_EQ(f.bus.fault_stats().retransmissions, 1u);
}

TEST(CanFault, ErrorPassiveTransmitterPaysTheSuspendPenalty) {
  BusFixture f;
  int to_corrupt = 17;  // 16 errors reach TEC 128 (passive); one more while
                        // passive takes the suspend-transmission penalty
  f.bus.set_bit_error_model(corrupt_next(to_corrupt));
  f.bus.send(f.a, frame(0x123, 0));
  f.q.run_until(sim::kSecond);
  const auto& s = f.bus.stats().at(0x123);
  ASSERT_EQ(s.sent, 1u);
  const SimTime active_err =
      f.bus.bit_time() * (1 + CanBus::kErrorFlagBits +
                          CanBus::kErrorDelimiterBits +
                          CanBus::kIntermissionBits);
  const SimTime passive_err =
      active_err + f.bus.bit_time() * CanBus::kSuspendTransmissionBits;
  EXPECT_EQ(s.worst_latency,
            16 * active_err + passive_err + f.bus.frame_time(frame(0x123, 0)));
}

// ----- the differential property -------------------------------------------
//
// An SAE-flavored message set runs for seconds under a seeded bit-error
// campaign whose error instants are spaced at least T_error apart; every
// observed queue-to-delivery latency must stay below the faulted
// analytical bound R_faulted = RTA + E(t). This is the fault-extended twin
// of sched_test's CanRta.DominatesSimulatedBus.
TEST(CanFault, FaultedRtaDominatesSimulatedBusUnderInjectedErrors) {
  std::vector<sched::CanMessage> msgs;
  const auto add = [&msgs](const char* name, std::uint32_t id, unsigned dlc,
                           SimTime period) {
    msgs.push_back(sched::CanMessage{name, id, dlc, period, 0, 0, false});
  };
  add("engine_torque", 0x050, 8, 5 * kMillisecond);
  add("wheel_speed", 0x0A0, 6, 10 * kMillisecond);
  add("brake_pressure", 0x0C0, 4, 10 * kMillisecond);
  add("steering_angle", 0x120, 4, 20 * kMillisecond);
  add("gear_state", 0x200, 2, 50 * kMillisecond);
  add("hvac_state", 0x500, 4, 100 * kMillisecond);

  // Spacing is chosen so TEC decay (-1 per success, ~480 frames/s) beats
  // TEC growth (+8 per error): the transmitter stays error-active and the
  // campaign never triggers bus-off (whose recovery the RTA term does not
  // model).
  const SimTime t_error = 20 * kMillisecond;
  const sched::CanRtaResult bound =
      sched::can_rta(msgs, 250'000, sched::CanErrorModel{t_error});
  ASSERT_TRUE(bound.schedulable);
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    // The error term strictly inflates every bound.
    EXPECT_GT(bound.response_faulted[k], bound.response_fault_free[k]);
    EXPECT_EQ(bound.response[k], bound.response_faulted[k]);
  }

  sim::EventQueue q;
  CanBus bus(q, 250'000);
  const NodeId tx = bus.attach_node("tx");
  (void)bus.attach_node("rx");

  // Seeded campaign: a coin flip per eligible attempt, corrupting a
  // uniformly chosen wire bit, with the *error instants* spaced at least
  // T_error apart — the shared seeded model campaign runs use.
  SeededErrorCampaign campaign;
  campaign.min_interarrival = t_error;
  campaign.probability = 0.6;
  campaign.seed = 97;
  bus.set_bit_error_model(make_seeded_error_model(bus, campaign));

  for (const sched::CanMessage& m : msgs) {
    q.schedule_every(m.period, [&bus, m, tx]() {
      CanFrame f;
      f.id = m.id;
      f.dlc = m.dlc;
      bus.send(tx, f);
    });
  }
  q.run_until(4 * sim::kSecond);

  EXPECT_GT(bus.fault_stats().bit_errors, 50u);  // the campaign had teeth
  EXPECT_EQ(bus.fault_stats().bus_off_events, 0u);
  std::uint64_t total_errors = 0;
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    const auto it = bus.stats().find(msgs[k].id);
    ASSERT_NE(it, bus.stats().end()) << msgs[k].name;
    EXPECT_LE(it->second.worst_latency, bound.response[k]) << msgs[k].name;
    EXPECT_GT(it->second.sent, 30u) << msgs[k].name;
    total_errors += it->second.errors;
  }
  EXPECT_EQ(total_errors, bus.fault_stats().bit_errors);
}

// ----- CAN FD under the error machinery --------------------------------------

struct FdBusFixture {
  sim::EventQueue q;
  CanBus bus{q, 500'000, 2'000'000};  // 2 us nominal, 0.5 us data phase
  NodeId a = bus.attach_node("a");
  NodeId b = bus.attach_node("b");
};

CanFrame fd_frame(std::uint32_t id, unsigned dlc_code) {
  CanFrame f;
  f.id = id;
  f.fd = true;
  f.brs = true;
  f.dlc = dlc_code;
  f.data.fill(0x5A);
  return f;
}

TEST(CanFdFault, DataPhaseErrorIsPricedAtTheDataRateAndRetransmitted) {
  FdBusFixture f;
  // Corrupt bit 200 of the first attempt: for a 64-byte BRS frame that is
  // deep inside the data phase, so most of the carried prefix runs at the
  // 4x data rate.
  int remaining = 1;
  f.bus.set_bit_error_model([&](const CanFrame&, NodeId, SimTime) {
    if (remaining > 0) {
      --remaining;
      return 200;
    }
    return -1;
  });
  SimTime err_at = -1;
  f.bus.subscribe_err(f.a, [&](const CanBus::ErrorEvent& e, SimTime at) {
    if (e.kind == CanBus::ErrorEvent::Kind::tx_error) {
      err_at = at;
    }
  });
  int received = 0;
  SimTime delivered_at = 0;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime at) {
    EXPECT_TRUE(fr.fd);
    ++received;
    delivered_at = at;
  });
  const CanFrame fr = fd_frame(0x100, 15);  // DLC 15 = 64 bytes
  f.bus.send(f.a, fr);
  f.q.run_until(10 * kMillisecond);

  EXPECT_EQ(received, 1);  // retransmitted, delivered exactly once
  EXPECT_EQ(f.bus.fault_stats().bit_errors, 1u);
  EXPECT_EQ(f.bus.fault_stats().retransmissions, 1u);
  EXPECT_EQ(f.bus.stats().at(0x100).errors, 1u);
  // TEC: +8 for the corrupted attempt, -1 for the clean retransmission.
  EXPECT_EQ(f.bus.tec(f.a), 7u);
  // The retransmission starts right after the error signaling completes.
  ASSERT_GE(err_at, 0);
  EXPECT_EQ(delivered_at, err_at + f.bus.frame_time(fr));
  // Dual-rate pricing: 201 prefix bits mostly at the data rate plus
  // 17 error-signaling bits at the nominal rate come to far less than 201
  // nominal bit times — a classic-rate model would put err_at past 402 us.
  EXPECT_LT(err_at, 201 * f.bus.bit_time());
  EXPECT_GT(err_at, 0);
}

TEST(CanFdFault, RepeatedFdErrorsWalkTecToPassiveThenBusOff) {
  FdBusFixture f;
  int corrupt_all = 1;  // stays > 0: every attempt corrupted
  f.bus.set_bit_error_model([&](const CanFrame&, NodeId, SimTime) {
    return corrupt_all > 0 ? 40 : -1;
  });
  std::vector<ErrorState> states;
  f.bus.subscribe_err(f.a, [&](const CanBus::ErrorEvent& e, SimTime) {
    if (e.kind == CanBus::ErrorEvent::Kind::state_change) {
      states.push_back(e.state);
      if (e.state == ErrorState::bus_off) {
        corrupt_all = 0;  // fault clears at bus-off entry
      }
    }
  });
  int received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame&, SimTime) { ++received; });
  f.bus.send(f.a, fd_frame(0x100, 8));
  f.q.run_until(40 * kMillisecond);

  // 16 corrupted attempts reach TEC 128 (error-passive); 16 more cross
  // 255 (bus-off). Automatic recovery then re-admits the node and the
  // still-queued FD frame goes out clean.
  ASSERT_GE(states.size(), 2u);
  EXPECT_EQ(states[0], ErrorState::error_passive);
  EXPECT_EQ(states[1], ErrorState::bus_off);
  EXPECT_EQ(f.bus.fault_stats().bus_off_events, 1u);
  EXPECT_EQ(f.bus.fault_stats().recoveries, 1u);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::error_active);
}

// ----- lonely transmitter: bounded retries, no livelock ----------------------

TEST(CanAck, LonelyTransmitterSuspendsAfterBoundedRetries) {
  BusFixture f;
  f.bus.set_ack_errors(true);
  f.bus.detach(f.b);  // nobody left to drive the ACK slot

  int received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame&, SimTime) { ++received; });
  f.bus.send(f.a, frame(0x100, 4));
  // The regression this pins: with every peer gone, retransmission must
  // not livelock the event queue. run_until returning at all is half the
  // assertion; the exact retry budget is the other half.
  f.q.run_until(100 * kMillisecond);

  // 16 ACK errors at +8 TEC reach exactly error-passive (TEC 128); the
  // 17th attempt also fails but — per the fault-confinement exception —
  // does not bump TEC, and the transmitter suspends instead of retrying.
  EXPECT_EQ(f.bus.fault_stats().ack_errors, 17u);
  EXPECT_EQ(f.bus.tec(f.a), 128u);
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::error_passive);
  EXPECT_EQ(received, 0);
  const std::uint64_t errors_at_suspend = f.bus.fault_stats().ack_errors;

  // Still suspended much later: bounded work, not slow-motion livelock.
  f.q.run_until(sim::kSecond);
  EXPECT_EQ(f.bus.fault_stats().ack_errors, errors_at_suspend);

  // A peer reappearing wakes the transmitter; the pending frame delivers.
  f.bus.attach(f.b);
  f.q.run_until(2 * sim::kSecond);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.bus.stats().at(0x100).sent, 1u);
}

TEST(CanAck, AllPeersBusOffAlsoSuspendsAndRecoveryRedelivers) {
  BusFixture f;
  f.bus.set_ack_errors(true);
  f.bus.set_manual_bus_off_recovery(f.b, true);

  // Drive b to bus-off: corrupt every attempt by b only.
  f.bus.set_bit_error_model([&](const CanFrame&, NodeId tx, SimTime) {
    return tx == f.b ? 0 : -1;
  });
  f.bus.send(f.b, frame(0x050, 1));  // b retries itself into bus-off
  f.q.run_until(50 * kMillisecond);
  ASSERT_EQ(f.bus.error_state(f.b), ErrorState::bus_off);

  int received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame&, SimTime) { ++received; });
  f.bus.send(f.a, frame(0x100, 4));
  f.q.run_until(sim::kSecond);
  // b is bus-off, so a has no ACK peer: same bounded suspend as detach.
  EXPECT_EQ(f.bus.error_state(f.a), ErrorState::error_passive);
  EXPECT_EQ(received, 0);

  // The fault clears and software requests recovery of b: an ACK peer is
  // re-admitted and a's pending frame (and b's own queued one) complete.
  f.bus.set_bit_error_model(nullptr);
  f.bus.request_recovery(f.b);
  f.q.run_until(2 * sim::kSecond);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(f.bus.stats().at(0x100).sent, 1u);
}

}  // namespace
}  // namespace aces::can
