// net layer tests: multi-bus topologies, gateway routing/queueing, the
// EcuNode abstraction at both fidelities, and the load-bearing property —
// measured end-to-end latency of routed traffic never exceeds the
// sched::path_rta bound, fault-free and under a bounded bit-error campaign.
#include <gtest/gtest.h>

#include <map>

#include "cpu/profiles.h"
#include "isa/assembler.h"
#include "net/network.h"
#include "sched/can_rta.h"

namespace aces::net {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

constexpr unsigned kRxLine = 1;
constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;

// Minimal counting guest: WFI loop; the ISR bumps a counter, pops, acks.
GuestProgram counting_program() {
  using namespace isa;
  using Ctl = can::CanController;
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  GuestProgram p;
  p.image = a.assemble();
  p.entry = a.label_address(entry);
  p.handlers.push_back({kRxLine, a.label_address(isr), 32});
  return p;
}

TEST(Gateway, ForwardsMatchingFramesWithRemapAndLatency) {
  NetworkBuilder nb;
  const BusId a = nb.bus("a", 500'000);
  const BusId b = nb.bus("b", 125'000);
  GatewayConfig gc;
  gc.forwarding_latency = 300 * kMicrosecond;
  const GatewayId gw = nb.gateway("gw", gc);
  Route r;
  r.from = a;
  r.to = b;
  r.match = 0x100;
  r.mask = 0x7F0;  // a whole identifier window
  r.remap = 0x210;
  nb.route(gw, r);
  Network net = nb.build();

  const can::NodeId src = net.bus(a).attach_node("src");
  const can::NodeId dst = net.bus(b).attach_node("dst");
  std::vector<std::uint32_t> heard;
  SimTime delivered_at = 0;
  SimTime origin_stamp = -1;
  net.bus(b).subscribe(dst, [&](const can::CanFrame& f, SimTime at) {
    heard.push_back(f.id);
    delivered_at = at;
    origin_stamp = f.timestamp;
  });

  can::CanFrame in_window;  // 0x104 & 0x7F0 == 0x100: forwarded
  in_window.id = 0x104;
  in_window.dlc = 4;
  in_window.data[0] = 0xAB;
  can::CanFrame outside;  // 0x300: not forwarded
  outside.id = 0x300;
  outside.dlc = 2;
  net.shard(a).schedule_at(kMillisecond, [&] {
    net.bus(a).send(src, in_window);
    net.bus(a).send(src, outside);
  });
  net.run_until(sim::kSecond);

  ASSERT_EQ(heard.size(), 1u);
  EXPECT_EQ(heard[0], 0x210u);  // remapped on egress
  // Origin timestamp rides across the hop: stamped at the source queue
  // instant, so the receiver measures true end-to-end latency.
  EXPECT_EQ(origin_stamp, kMillisecond);
  // Exact transit: ingress frame time + forwarding latency + egress frame
  // time (the bus is otherwise idle).
  const SimTime hop1 =
      net.bus(a).frame_time(in_window);  // same dlc, exact stuffing
  can::CanFrame remapped = in_window;
  remapped.id = 0x210;
  const SimTime hop2 = net.bus(b).frame_time(remapped);
  EXPECT_EQ(delivered_at,
            kMillisecond + hop1 + gc.forwarding_latency + hop2);
  const GatewayNode::DirectionStats& d = net.gateway(gw).direction(a, b);
  EXPECT_EQ(d.forwarded, 1u);
  EXPECT_EQ(d.delivered, 1u);
  EXPECT_EQ(d.dropped_overflow, 0u);
  EXPECT_EQ(d.worst_transit, hop1 + gc.forwarding_latency + hop2 -
                                 net.bus(a).frame_time(in_window));
}

TEST(Gateway, BoundedQueueDropsOnOverflowAndRecovers) {
  NetworkBuilder nb;
  const BusId fast = nb.bus("fast", 1'000'000);
  const BusId slow = nb.bus("slow", 125'000);
  GatewayConfig gc;
  gc.forwarding_latency = 0;
  gc.queue_depth = 2;
  const GatewayId gw = nb.gateway("gw", gc);
  Route r;
  r.from = fast;
  r.to = slow;
  r.match = 0;
  r.mask = 0;  // match everything
  nb.route(gw, r);
  Network net = nb.build();

  const can::NodeId src = net.bus(fast).attach_node("src");
  // A burst of 6 distinct frames on the fast bus: the slow egress drains
  // one at a time, so with depth 2 the later arrivals overflow.
  for (int k = 0; k < 6; ++k) {
    can::CanFrame f;
    f.id = 0x100 + static_cast<std::uint32_t>(k);
    f.dlc = 8;
    net.bus(fast).send(src, f);
  }
  net.run_until(sim::kSecond);

  const GatewayNode::DirectionStats& d =
      net.gateway(gw).direction(fast, slow);
  EXPECT_EQ(d.forwarded + d.dropped_overflow, 6u);
  EXPECT_EQ(d.forwarded, d.delivered);  // everything accepted got out
  EXPECT_GE(d.dropped_overflow, 1u);
  EXPECT_EQ(d.peak_queued, 2u);  // the bound held
  EXPECT_EQ(d.queued, 0u);       // drained at the horizon
  EXPECT_EQ(net.gateway(gw).stats().frames_dropped, d.dropped_overflow);

  // The direction keeps forwarding after the burst: no stuck accounting.
  can::CanFrame late;
  late.id = 0x050;
  late.dlc = 1;
  net.bus(fast).send(src, late);
  net.run_until(2 * sim::kSecond);
  // direction() is a point-in-time snapshot — re-fetch after the run.
  const GatewayNode::DirectionStats after =
      net.gateway(gw).direction(fast, slow);
  EXPECT_EQ(after.forwarded + after.dropped_overflow, 7u);
  EXPECT_EQ(after.forwarded, after.delivered);
}

TEST(EcuNode, BothFidelitiesAttachThroughOneCall) {
  NetworkBuilder nb;
  const BusId bus = nb.bus("body", 250'000);

  // Kernel-model ECU: a periodic task publishing a frame each completion,
  // and a second task activated by received traffic.
  ModelTask sender;
  sender.name = "sender";
  sender.priority = 5;
  sender.exec = 200 * kMicrosecond;
  sender.period = 10 * kMillisecond;
  can::CanFrame tx;
  tx.id = 0x120;
  tx.dlc = 4;
  sender.tx = tx;
  ModelTask listener;
  listener.name = "listener";
  listener.priority = 3;
  listener.exec = 100 * kMicrosecond;
  listener.activate_on_rx = 0x120;  // its own ECU never receives its own tx
  const EcuId model_id = nb.ecu(bus, "model", {sender, listener});

  // A second model ECU whose listener sees the first ECU's frames.
  ModelTask rx_task;
  rx_task.name = "consumer";
  rx_task.priority = 4;
  rx_task.exec = 100 * kMicrosecond;
  rx_task.activate_on_rx = 0x120;
  const EcuId consumer_id = nb.ecu(bus, "consumer", {rx_task});

  // ISS ECU counting every delivered frame in a compiled ISR.
  can::CanController::Config cc;
  cc.rx_line = kRxLine;
  const EcuId iss_id =
      nb.ecu(bus,
             cpu::profiles::modern_mcu().name("iss").clock_hz(8'000'000)
                 .flash_size(16 * 1024),
             counting_program(), cc);

  Network net = nb.build();
  EXPECT_EQ(net.ecu_count(), 3u);
  // The fidelity probes: exactly one side is non-null.
  EXPECT_NE(net.ecu(model_id).kernel(), nullptr);
  EXPECT_EQ(net.ecu(model_id).system(), nullptr);
  EXPECT_NE(net.ecu(iss_id).system(), nullptr);
  EXPECT_EQ(net.ecu(iss_id).kernel(), nullptr);

  net.run_until(sim::kSecond);

  // 101 activations (t = 0..1s inclusive at 10ms); the t=1s instance
  // completes 200us past the horizon, so 100 completions -> 100 frames.
  const auto& sent = net.model(model_id).task_stats(0);
  EXPECT_EQ(sent.activations, 101u);
  EXPECT_EQ(sent.completions, 100u);
  EXPECT_EQ(sent.worst_response, 200 * kMicrosecond);
  // Every delivered frame activated the consumer's task...
  EXPECT_EQ(net.model(consumer_id).task_stats(0).activations, 100u);
  // ...but never the sender ECU's own listener (CAN skips the sender).
  EXPECT_EQ(net.model(model_id).task_stats(1).activations, 0u);
  // And the ISS ECU serviced the same 100 frames in its compiled ISR.
  EXPECT_EQ(net.iss(iss_id).read_word(kCount), 100u);
  EXPECT_EQ(net.iss(iss_id).controller().stats().frames_received, 100u);
}

// Shared topology for the bound checks: traffic on a fast source bus
// routed through the gateway onto a slower bus with local competition.
struct PathFixture {
  NetworkBuilder nb;
  BusId src_bus, dst_bus;
  GatewayId gw;
  static constexpr std::uint32_t kRouted = 0x100;
  static constexpr SimTime kLatency = 200 * kMicrosecond;

  PathFixture() {
    src_bus = nb.bus("powertrain", 500'000);
    dst_bus = nb.bus("body", 125'000);
    GatewayConfig gc;
    gc.forwarding_latency = kLatency;
    gc.queue_depth = 8;
    gw = nb.gateway("gw", gc);
    Route r;
    r.from = src_bus;
    r.to = dst_bus;
    r.match = kRouted;
    nb.route(gw, r);
  }

  // The analysis sets mirror exactly the traffic the test generates.
  [[nodiscard]] std::vector<sched::CanMessage> src_set() const {
    return {
        {"hp_local", 0x080, 8, 5 * kMillisecond, 0, 0},
        {"routed", kRouted, 8, 10 * kMillisecond, 0, 0},
        {"lp_local", 0x300, 8, 5 * kMillisecond, 0, 0},
    };
  }
  [[nodiscard]] std::vector<sched::CanMessage> dst_set() const {
    return {
        {"dst_hp", 0x090, 8, 5 * kMillisecond, 0, 0},
        {"routed", kRouted, 8, 10 * kMillisecond, 0, 0},
        {"dst_lp", 0x400, 8, 10 * kMillisecond, 0, 0},
    };
  }

  // Drives the traffic and returns the worst measured end-to-end latency
  // (source queue instant -> delivery on the destination bus).
  SimTime run(Network& net, SimTime horizon) {
    const can::NodeId src = net.bus(src_bus).attach_node("src");
    const can::NodeId src2 = net.bus(src_bus).attach_node("src2");
    const can::NodeId dst = net.bus(dst_bus).attach_node("dst");
    const can::NodeId dst2 = net.bus(dst_bus).attach_node("dst2");
    const auto periodic = [](can::CanBus& bus, can::NodeId node,
                             std::uint32_t id, SimTime period) {
      // Schedule on the bus's own shard queue: traffic generation must
      // live where the bus lives once the network is sharded.
      bus.queue().schedule_every(period, [&bus, node, id] {
        can::CanFrame f;
        f.id = id;
        f.dlc = 8;
        bus.send(node, f);
      });
    };
    periodic(net.bus(src_bus), src, 0x080, 5 * kMillisecond);
    periodic(net.bus(src_bus), src2, kRouted, 10 * kMillisecond);
    periodic(net.bus(src_bus), src, 0x300, 5 * kMillisecond);
    periodic(net.bus(dst_bus), dst, 0x090, 5 * kMillisecond);
    periodic(net.bus(dst_bus), dst2, 0x400, 10 * kMillisecond);

    SimTime worst_e2e = 0;
    std::uint64_t routed_heard = 0;
    net.bus(dst_bus).subscribe(dst, [&](const can::CanFrame& f, SimTime at) {
      if (f.id == kRouted) {
        ++routed_heard;
        // Every forwarded frame carries its source-bus queue instant —
        // including the very first one, queued at t=0 (0 is a valid
        // stamp, not the "unset" sentinel).
        EXPECT_GE(f.timestamp, 0);
        EXPECT_LT(f.timestamp, at);
        worst_e2e = std::max(worst_e2e, at - f.timestamp);
      }
    });
    net.run_until(horizon);
    EXPECT_GT(routed_heard, 0u);
    EXPECT_EQ(net.gateway(gw).direction(src_bus, dst_bus).dropped_overflow,
              0u);
    return worst_e2e;
  }
};

TEST(PathRta, MeasuredEndToEndLatencyWithinBound) {
  PathFixture fx;
  Network net = fx.nb.build();
  const SimTime worst = fx.run(net, 10 * sim::kSecond);

  std::vector<sched::PathHop> hops(2);
  hops[0].messages = fx.src_set();
  hops[0].message = 1;
  hops[0].bitrate_bps = 500'000;
  hops[1].messages = fx.dst_set();
  hops[1].message = 1;
  hops[1].bitrate_bps = 125'000;
  hops[1].gateway_latency = PathFixture::kLatency;
  const sched::PathRtaResult bound = sched::path_rta(hops);

  EXPECT_TRUE(bound.schedulable);
  EXPECT_GT(worst, 0);
  EXPECT_LE(worst, bound.response);
  // The end-to-end bound exceeds what either bus alone could explain.
  EXPECT_GT(bound.response, bound.hop_response[0]);
  EXPECT_EQ(bound.response, bound.hop_response[1]);
  EXPECT_EQ(bound.response, bound.response_fault_free);
}

TEST(PathRta, MeasuredEndToEndLatencyWithinFaultedBound) {
  PathFixture fx;
  Network net = fx.nb.build();

  // Bit-error campaign on the destination bus only, respecting a minimum
  // inter-error gap — exactly the hypothesis Tindell's E(t) term charges.
  constexpr SimTime kTError = 20 * kMillisecond;
  SimTime next_allowed = 5 * kMillisecond;
  std::uint64_t injected = 0;
  net.bus(fx.dst_bus).set_bit_error_model(
      [&](const can::CanFrame&, can::NodeId, SimTime now) {
        if (now >= next_allowed) {
          next_allowed = now + kTError;
          ++injected;
          return 10;  // corrupt bit 10 of the attempt
        }
        return -1;
      });

  const SimTime worst = fx.run(net, 10 * sim::kSecond);
  EXPECT_GT(injected, 0u);

  std::vector<sched::PathHop> hops(2);
  hops[0].messages = fx.src_set();
  hops[0].message = 1;
  hops[0].bitrate_bps = 500'000;
  hops[1].messages = fx.dst_set();
  hops[1].message = 1;
  hops[1].bitrate_bps = 125'000;
  hops[1].gateway_latency = PathFixture::kLatency;
  hops[1].errors = sched::CanErrorModel{kTError};
  const sched::PathRtaResult bound = sched::path_rta(hops);

  EXPECT_LE(worst, bound.response);
  // The fault hypothesis strictly inflates the end-to-end bound.
  EXPECT_GT(bound.response_faulted, bound.response_fault_free);
  EXPECT_EQ(bound.response, bound.response_faulted);
}

TEST(Network, DoubleRunIsBitIdentical) {
  const auto run = [](std::uint64_t& events, std::uint64_t& forwarded,
                      std::uint64_t& iss_count, SimTime& worst_e2e) {
    PathFixture fx;
    can::CanController::Config cc;
    cc.rx_line = kRxLine;
    const EcuId iss_id = fx.nb.ecu(
        fx.dst_bus,
        cpu::profiles::modern_mcu().name("obs").clock_hz(8'000'000)
            .flash_size(16 * 1024),
        counting_program(), cc);
    Network net = fx.nb.build();
    worst_e2e = fx.run(net, 2 * sim::kSecond);
    events = net.simulation().stats().events_executed;
    forwarded = net.gateway(fx.gw).stats().frames_forwarded;
    iss_count = net.iss(iss_id).read_word(kCount);
  };
  std::uint64_t e1, f1, c1, e2, f2, c2;
  SimTime w1, w2;
  run(e1, f1, c1, w1);
  run(e2, f2, c2, w2);
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(w1, w2);
  EXPECT_GT(c1, 0u);
}

}  // namespace
}  // namespace aces::net
