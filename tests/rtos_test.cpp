// OSEK-like kernel model tests: preemption, priority ceiling, alarms,
// deadline accounting, and the no-unbounded-priority-inversion property.
#include <gtest/gtest.h>

#include "rtos/kernel.h"

namespace aces::rtos {
namespace {

using sim::kMillisecond;
using sim::kMicrosecond;
using sim::SimTime;

Segment exec(SimTime d) {
  Segment s;
  s.kind = Segment::Kind::execute;
  s.duration = d;
  return s;
}
Segment lock(ResourceId r) {
  Segment s;
  s.kind = Segment::Kind::lock;
  s.resource = r;
  return s;
}
Segment unlock(ResourceId r) {
  Segment s;
  s.kind = Segment::Kind::unlock;
  s.resource = r;
  return s;
}

TEST(Kernel, SingleTaskRunsToCompletion) {
  sim::EventQueue q;
  Kernel k(q);
  const TaskId t = k.create_task({"t", 1, {exec(5 * kMillisecond)}, 0});
  k.start();
  k.activate(t);
  q.run_until(sim::kSecond);
  EXPECT_EQ(k.stats(t).completions, 1u);
  EXPECT_EQ(k.stats(t).worst_response, 5 * kMillisecond);
}

TEST(Kernel, HigherPriorityPreempts) {
  sim::EventQueue q;
  Kernel k(q);
  const TaskId lo = k.create_task({"lo", 1, {exec(10 * kMillisecond)}, 0});
  const TaskId hi = k.create_task({"hi", 5, {exec(2 * kMillisecond)}, 0});
  k.start();
  k.activate(lo);
  q.schedule_at(3 * kMillisecond, [&] { k.activate(hi); });
  q.run_until(sim::kSecond);
  // hi ran immediately (response 2ms); lo stretched to 12ms.
  EXPECT_EQ(k.stats(hi).worst_response, 2 * kMillisecond);
  EXPECT_EQ(k.stats(lo).worst_response, 12 * kMillisecond);
  EXPECT_GE(k.context_switches(), 2u);
}

TEST(Kernel, EqualPriorityDoesNotPreempt) {
  sim::EventQueue q;
  Kernel k(q);
  const TaskId a = k.create_task({"a", 3, {exec(4 * kMillisecond)}, 0});
  const TaskId b = k.create_task({"b", 3, {exec(4 * kMillisecond)}, 0});
  k.start();
  k.activate(a);
  q.schedule_at(1 * kMillisecond, [&] { k.activate(b); });
  q.run_until(sim::kSecond);
  EXPECT_EQ(k.stats(a).worst_response, 4 * kMillisecond);
  EXPECT_EQ(k.stats(b).worst_response, 7 * kMillisecond);  // waited for a
}

TEST(Kernel, AlarmsActivatePeriodically) {
  sim::EventQueue q;
  Kernel k(q);
  const TaskId t =
      k.create_task({"periodic", 1, {exec(1 * kMillisecond)}, 0});
  k.set_alarm(t, 0, 10 * kMillisecond);
  k.start();
  q.run_until(95 * kMillisecond);
  EXPECT_EQ(k.stats(t).completions, 10u);  // t = 0,10,...,90
}

TEST(Kernel, PriorityCeilingBoundsInversion) {
  // Classic scenario: low locks R, high needs R via ceiling; medium must
  // NOT be able to run while low holds the ceiling-raised resource.
  sim::EventQueue q;
  Kernel k(q);
  const ResourceId r = k.create_resource("R");
  const TaskId lo = k.create_task(
      {"lo", 1,
       {exec(1 * kMillisecond), lock(r), exec(4 * kMillisecond), unlock(r),
        exec(1 * kMillisecond)},
       0});
  const TaskId mid = k.create_task({"mid", 3, {exec(20 * kMillisecond)}, 0});
  const TaskId hi = k.create_task(
      {"hi", 5, {lock(r), exec(1 * kMillisecond), unlock(r)}, 0});
  k.task_uses(lo, r);
  k.task_uses(hi, r);
  k.start();
  k.activate(lo);
  q.schedule_at(2 * kMillisecond, [&] {
    k.activate(mid);
    k.activate(hi);
  });
  q.run_until(sim::kSecond);
  // With the immediate ceiling protocol, lo runs at hi's priority inside
  // the critical section, so hi waits at most the remaining critical
  // section (3ms) + its own 1ms execution; mid cannot wedge in between.
  EXPECT_LE(k.stats(hi).worst_response, 5 * kMillisecond);
  // mid completes only after hi.
  EXPECT_GT(k.stats(mid).worst_response, k.stats(hi).worst_response);
  EXPECT_EQ(k.stats(lo).completions, 1u);
  EXPECT_EQ(k.stats(mid).completions, 1u);
  EXPECT_EQ(k.stats(hi).completions, 1u);
}

TEST(Kernel, DeadlineMissDetected) {
  sim::EventQueue q;
  Kernel k(q);
  TaskConfig cfg{"tight", 1, {exec(8 * kMillisecond)}, 5 * kMillisecond};
  const TaskId t = k.create_task(cfg);
  k.start();
  k.activate(t);
  q.run_until(sim::kSecond);
  EXPECT_EQ(k.stats(t).deadline_misses, 1u);
}

TEST(Kernel, PendingActivationQueuesOnce) {
  sim::EventQueue q;
  Kernel k(q);
  const TaskId t = k.create_task({"t", 1, {exec(10 * kMillisecond)}, 0});
  k.start();
  k.activate(t);
  q.schedule_at(2 * kMillisecond, [&] {
    k.activate(t);  // queued
    k.activate(t);  // lost (OSEK activation limit)
  });
  q.run_until(sim::kSecond);
  EXPECT_EQ(k.stats(t).completions, 2u);
  EXPECT_EQ(k.stats(t).lost_activations, 1u);
}

TEST(Kernel, LostActivationAccounting) {
  // OSEK basic tasks queue at most one activation: while the task is
  // running with one activation already pending, every further activation
  // is lost — and only the lost ones count as lost.
  sim::EventQueue q;
  Kernel k(q);
  const TaskId t = k.create_task({"t", 1, {exec(10 * kMillisecond)}, 0});
  k.start();
  k.activate(t);  // runs 0..10ms
  q.schedule_at(1 * kMillisecond, [&] { k.activate(t); });  // queued
  q.schedule_at(2 * kMillisecond, [&] { k.activate(t); });  // lost
  q.schedule_at(3 * kMillisecond, [&] { k.activate(t); });  // lost
  // After the first instance completes, the queued activation runs
  // 10..20ms; an activation arriving then queues again (nothing lost).
  q.schedule_at(15 * kMillisecond, [&] { k.activate(t); });  // queued
  q.run_until(sim::kSecond);
  EXPECT_EQ(k.stats(t).activations, 5u);
  EXPECT_EQ(k.stats(t).lost_activations, 2u);
  EXPECT_EQ(k.stats(t).completions, 3u);  // 1 direct + 2 queued
  // The queued instance's response runs from its activation instant (1ms)
  // to its completion (20ms).
  EXPECT_EQ(k.stats(t).worst_response, 19 * kMillisecond);
}

TEST(Kernel, DeadlineMissStatsCountEveryLateInstance) {
  // A 6ms job with a 5ms deadline activated every 10ms misses every time;
  // an easy sibling never does. Misses accumulate per instance.
  sim::EventQueue q;
  Kernel k(q);
  const TaskId tight =
      k.create_task({"tight", 5, {exec(6 * kMillisecond)}, 5 * kMillisecond});
  const TaskId easy =
      k.create_task({"easy", 1, {exec(1 * kMillisecond)}, 10 * kMillisecond});
  k.set_alarm(tight, 0, 10 * kMillisecond);
  k.set_alarm(easy, 0, 10 * kMillisecond);
  k.start();
  // Activations at t = 0..90ms; the last instances complete at 96/97ms.
  q.run_until(99 * kMillisecond);
  EXPECT_EQ(k.stats(tight).completions, 10u);
  EXPECT_EQ(k.stats(tight).deadline_misses, 10u);
  EXPECT_EQ(k.stats(tight).worst_response, 6 * kMillisecond);
  // easy runs after tight (lower priority): response 7ms <= 10ms deadline.
  EXPECT_EQ(k.stats(easy).completions, 10u);
  EXPECT_EQ(k.stats(easy).deadline_misses, 0u);
  EXPECT_EQ(k.stats(easy).worst_response, 7 * kMillisecond);
}

TEST(Kernel, CompletionHookFiresPerCompletion) {
  sim::EventQueue q;
  Kernel k(q);
  const TaskId t = k.create_task({"t", 1, {exec(1 * kMillisecond)}, 0});
  int fired = 0;
  sim::SimTime last_at = -1;
  k.on_complete(t, [&] {
    ++fired;
    last_at = q.now();
  });
  k.set_alarm(t, 0, 10 * kMillisecond);
  k.start();
  q.run_until(25 * kMillisecond);
  EXPECT_EQ(fired, 3);  // t = 1, 11, 21 ms
  EXPECT_EQ(last_at, 21 * kMillisecond);
}

TEST(Kernel, ContextSwitchCostDelaysCompletion) {
  sim::EventQueue q;
  Kernel k(q, /*context_switch_cost=*/100 * kMicrosecond);
  const TaskId lo = k.create_task({"lo", 1, {exec(5 * kMillisecond)}, 0});
  const TaskId hi = k.create_task({"hi", 5, {exec(1 * kMillisecond)}, 0});
  k.start();
  k.activate(lo);
  q.schedule_at(1 * kMillisecond, [&] { k.activate(hi); });
  q.run_until(sim::kSecond);
  // hi pays the switch-in cost.
  EXPECT_EQ(k.stats(hi).worst_response, 1 * kMillisecond + 100 * kMicrosecond);
}

TEST(Kernel, HoldingResourceAtTerminationThrows) {
  sim::EventQueue q;
  Kernel k(q);
  const ResourceId r = k.create_resource("R");
  const TaskId bad =
      k.create_task({"bad", 1, {lock(r), exec(1 * kMillisecond)}, 0});
  k.task_uses(bad, r);
  k.start();
  k.activate(bad);
  EXPECT_THROW(q.run_until(sim::kSecond), std::logic_error);
}

}  // namespace
}  // namespace aces::rtos
