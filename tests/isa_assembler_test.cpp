#include <gtest/gtest.h>

#include <map>

#include "isa/assembler.h"
#include "isa/codec.h"
#include "isa/disasm.h"

namespace aces::isa {
namespace {

// Decodes the whole image into (offset -> instruction).
std::map<std::uint32_t, Instruction> decode_image(const Image& image) {
  const Codec& codec = codec_for(image.encoding);
  std::map<std::uint32_t, Instruction> out;
  std::uint32_t offset = 0;
  while (offset < image.size()) {
    Instruction insn;
    const int n =
        codec.decode(std::span(image.bytes).subspan(offset), insn);
    if (n == 0) {
      break;  // literal pool / data tail
    }
    out[offset] = insn;
    offset += static_cast<std::uint32_t>(n);
  }
  return out;
}

class AssemblerTest : public ::testing::TestWithParam<Encoding> {};

TEST_P(AssemblerTest, StraightLineProgram) {
  Assembler a(GetParam(), 0x1000);
  a.ins(ins_mov_imm(r0, 5, SetFlags::any));
  a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  EXPECT_EQ(image.base, 0x1000u);
  const auto insns = decode_image(image);
  ASSERT_EQ(insns.size(), 3u);
  EXPECT_EQ(insns.begin()->second.op, Op::mov);
}

TEST_P(AssemblerTest, BackwardBranchLoop) {
  Assembler a(GetParam(), 0);
  a.ins(ins_mov_imm(r0, 10, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::sub, r0, r0, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_ret());
  const Image image = a.assemble();
  const auto insns = decode_image(image);
  // Find the conditional branch and verify it points back at `top`.
  bool found = false;
  for (const auto& [offset, insn] : insns) {
    if (insn.op == Op::b) {
      EXPECT_EQ(static_cast<std::int64_t>(offset) + insn.imm,
                static_cast<std::int64_t>(a.label_address(top)));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(AssemblerTest, ForwardBranchResolves) {
  Assembler a(GetParam(), 0);
  const Label done = a.new_label();
  a.ins(ins_cmp_imm(r0, 0));
  a.b(done, Cond::eq);
  a.ins(ins_mov_imm(r1, 1, SetFlags::any));
  a.bind(done);
  a.ins(ins_ret());
  const Image image = a.assemble();
  const auto insns = decode_image(image);
  for (const auto& [offset, insn] : insns) {
    if (insn.op == Op::b) {
      EXPECT_EQ(offset + insn.imm, a.label_address(done));
    }
  }
}

TEST_P(AssemblerTest, CallAndReturn) {
  Assembler a(GetParam(), 0);
  const Label fn = a.new_label();
  a.bl(fn);
  a.ins(Instruction{});  // nop landing pad
  a.ins(ins_ret());
  a.bind(fn);
  a.ins(ins_mov_imm(r0, 7, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  const auto insns = decode_image(image);
  bool found = false;
  for (const auto& [offset, insn] : insns) {
    if (insn.op == Op::bl) {
      EXPECT_EQ(offset + insn.imm, a.label_address(fn));
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_P(AssemblerTest, LiteralPoolDeduplicates) {
  Assembler a(GetParam(), 0);
  a.load_literal(r0, 0xDEADBEEF);
  a.load_literal(r1, 0xCAFEF00D);
  a.load_literal(r2, 0xDEADBEEF);  // duplicate
  a.ins(ins_ret());
  const Image image = a.assemble();
  // Image must contain exactly one copy of 0xDEADBEEF.
  int copies = 0;
  for (std::uint32_t off = 0; off + 4 <= image.size(); off += 4) {
    const std::uint32_t w = static_cast<std::uint32_t>(image.bytes[off]) |
                            (image.bytes[off + 1] << 8) |
                            (image.bytes[off + 2] << 16) |
                            (static_cast<std::uint32_t>(image.bytes[off + 3])
                             << 24);
    if (w == 0xDEADBEEF) {
      ++copies;
    }
  }
  EXPECT_EQ(copies, 1);
}

TEST_P(AssemblerTest, LiteralLoadsDecodeWithCorrectSlot) {
  Assembler a(GetParam(), 0);
  a.load_literal(r0, 0x11111111);
  a.load_literal(r1, 0x22222222);
  a.ins(ins_ret());
  const Image image = a.assemble();
  const Codec& codec = codec_for(GetParam());
  std::uint32_t offset = 0;
  int checked = 0;
  while (offset < image.size()) {
    Instruction insn;
    const int n =
        codec.decode(std::span(image.bytes).subspan(offset), insn);
    if (n == 0) {
      break;
    }
    if (insn.op == Op::ldr && insn.addr == AddrMode::pc_rel) {
      const std::uint32_t lit_addr = static_cast<std::uint32_t>(
          ((offset + 4) & ~3u) + insn.imm);
      ASSERT_LE(lit_addr + 4, image.size());
      const std::uint32_t w =
          static_cast<std::uint32_t>(image.bytes[lit_addr]) |
          (image.bytes[lit_addr + 1] << 8) |
          (image.bytes[lit_addr + 2] << 16) |
          (static_cast<std::uint32_t>(image.bytes[lit_addr + 3]) << 24);
      EXPECT_EQ(w, insn.rd == r0 ? 0x11111111u : 0x22222222u);
      ++checked;
    }
    offset += static_cast<std::uint32_t>(n);
  }
  EXPECT_EQ(checked, 2);
}

TEST_P(AssemblerTest, PoolBarrierPlacesLiteralsEarly) {
  Assembler a(GetParam(), 0);
  a.load_literal(r0, 0x33333333);
  a.ins(ins_ret());
  a.pool();
  // A second "function" after the pool.
  a.ins(ins_mov_imm(r0, 0, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  // The pool (and the literal) must appear before the second function's
  // mov — i.e. not at the very end of the image.
  std::uint32_t lit_at = 0;
  for (std::uint32_t off = 0; off + 4 <= image.size(); ++off) {
    const std::uint32_t w = static_cast<std::uint32_t>(image.bytes[off]) |
                            (image.bytes[off + 1] << 8) |
                            (image.bytes[off + 2] << 16) |
                            (static_cast<std::uint32_t>(image.bytes[off + 3])
                             << 24);
    if (w == 0x33333333u) {
      lit_at = off;
      break;
    }
  }
  EXPECT_LT(lit_at + 4, image.size());
}

TEST_P(AssemblerTest, AlignAndData) {
  Assembler a(GetParam(), 0);
  a.ins(Instruction{});  // nop
  a.align(8);
  const Label data = a.bound_label();
  a.word(0x12345678);
  a.half(0xABCD);
  const std::uint8_t raw_bytes[] = {1, 2, 3};
  a.raw(raw_bytes);
  const Image image = a.assemble();
  EXPECT_EQ(a.label_address(data) % 8, 0u);
  const std::uint32_t off = a.label_address(data);
  EXPECT_EQ(image.bytes[off], 0x78);
  EXPECT_EQ(image.bytes[off + 3], 0x12);
  EXPECT_EQ(image.bytes[off + 4], 0xCD);
  EXPECT_EQ(image.bytes[off + 6], 1);
  EXPECT_EQ(image.bytes[off + 8], 3);
}

TEST_P(AssemblerTest, UnboundLabelThrows) {
  Assembler a(GetParam(), 0);
  const Label ghost = a.new_label();
  a.b(ghost);
  EXPECT_THROW((void)a.assemble(), std::logic_error);
}

TEST_P(AssemblerTest, DoubleBindThrows) {
  Assembler a(GetParam(), 0);
  const Label l = a.bound_label();
  EXPECT_THROW(a.bind(l), std::logic_error);
}

TEST_P(AssemblerTest, LongConditionalBranchRelaxes) {
  // Force the conditional branch displacement beyond every short form;
  // N16 must expand to an inverted branch over an unconditional one.
  Assembler a(GetParam(), 0);
  const Label far = a.new_label();
  a.ins(ins_cmp_imm(r0, 0));
  a.b(far, Cond::eq);
  for (int k = 0; k < 400; ++k) {
    a.ins(Instruction{});  // nop
  }
  a.bind(far);
  a.ins(ins_ret());
  const Image image = a.assemble();
  // Execution check happens in the cpu tests; here: assembles and the
  // target address is consistent.
  EXPECT_GT(image.size(), 800u / (GetParam() == Encoding::w32 ? 1 : 2));
  EXPECT_EQ(a.label_address(far),
            image.size() - (GetParam() == Encoding::w32 ? 4u : 2u) -
                (GetParam() == Encoding::w32
                     ? 0u
                     : static_cast<std::uint32_t>(image.size() % 2)));
}

INSTANTIATE_TEST_SUITE_P(AllEncodings, AssemblerTest,
                         ::testing::Values(Encoding::w32, Encoding::n16,
                                           Encoding::b32),
                         [](const auto& info) {
                           return std::string(encoding_name(info.param));
                         });

TEST(AssemblerB32, JumpTable) {
  Assembler a(Encoding::b32, 0);
  const Label t0 = a.new_label(), t1 = a.new_label(), t2 = a.new_label();
  const Label table = a.new_label();
  a.adr(r0, table);
  const Label site = a.bound_label();
  {
    Instruction tbb;
    tbb.op = Op::tbb;
    tbb.rn = r0;
    tbb.rm = r1;
    a.ins(tbb);
  }
  a.bind(table);
  a.jump_table(site, {t0, t1, t2});
  a.bind(t0);
  a.ins(ins_mov_imm(r0, 0, SetFlags::any));
  a.ins(ins_ret());
  a.bind(t1);
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));
  a.ins(ins_ret());
  a.bind(t2);
  a.ins(ins_mov_imm(r0, 2, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();
  // Table bytes: (target - (site+4))/2.
  const std::uint32_t site_addr = a.label_address(site);
  const std::uint32_t table_addr = a.label_address(table);
  EXPECT_EQ(image.bytes[table_addr],
            (a.label_address(t0) - (site_addr + 4)) / 2);
  EXPECT_EQ(image.bytes[table_addr + 1],
            (a.label_address(t1) - (site_addr + 4)) / 2);
  EXPECT_EQ(image.bytes[table_addr + 2],
            (a.label_address(t2) - (site_addr + 4)) / 2);
}

TEST(AssemblerB32, CbzExpandsWhenOutOfRange) {
  Assembler a(Encoding::b32, 0);
  const Label far = a.new_label();
  Instruction cbz;
  cbz.op = Op::cbz;
  cbz.rn = r2;
  a.branch(cbz, far);
  for (int k = 0; k < 200; ++k) {
    a.ins(Instruction{});
  }
  a.bind(far);
  a.ins(ins_ret());
  const Image image = a.assemble();
  // First instruction should now be cmp r2, #0.
  Instruction first;
  ASSERT_GT(codec_for(Encoding::b32).decode(image.bytes, first), 0);
  EXPECT_EQ(first.op, Op::cmp);
  EXPECT_EQ(first.rn, r2);
}

TEST(AssemblerB32, CbzStaysNarrowWhenClose) {
  Assembler a(Encoding::b32, 0);
  const Label near = a.new_label();
  Instruction cbz;
  cbz.op = Op::cbz;
  cbz.rn = r2;
  a.branch(cbz, near);
  a.ins(Instruction{});
  a.bind(near);
  a.ins(ins_ret());
  const Image image = a.assemble();
  Instruction first;
  ASSERT_EQ(codec_for(Encoding::b32).decode(image.bytes, first), 2);
  EXPECT_EQ(first.op, Op::cbz);
}

TEST(AssemblerDensity, B32MatchesN16WithinMargin) {
  // A small flavor of Table 1: the same instruction stream should assemble
  // much smaller under N16/B32 than W32.
  const auto build = [](Encoding e) {
    Assembler a(e, 0);
    a.ins(ins_push(0x00F0 | (1u << lr)));
    a.ins(ins_mov_imm(r0, 0, SetFlags::any));
    a.ins(ins_mov_imm(r1, 10, SetFlags::any));
    const Label top = a.bound_label();
    a.ins(ins_rrr(Op::add, r0, r0, r1, SetFlags::any));
    a.ins(ins_rri(Op::sub, r1, r1, 1, SetFlags::yes));
    a.b(top, Cond::ne);
    a.ins(ins_pop(0x00F0 | (1u << pc)));
    return a.assemble().size();
  };
  const auto w = build(Encoding::w32);
  const auto n = build(Encoding::n16);
  const auto b = build(Encoding::b32);
  EXPECT_EQ(n, b);      // this stream is fully narrow
  EXPECT_LE(2 * n, w + 4);
}

}  // namespace
}  // namespace aces::isa
