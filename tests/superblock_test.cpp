// Superblock tier: formation/termination rules, every invalidation source
// (guest stores splitting a live block, FlashPatch remaps, MPU execute
// revocation), interrupt delivery instants, and byte-identity against the
// uncached reference tier. The randomized counterpart lives in
// fuzz_test.cpp (three-way tier differential).
#include <gtest/gtest.h>

#include "cpu/fpb.h"
#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/assembler.h"
#include "isa/codec.h"

namespace aces::cpu {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Encoding;
using isa::Image;
using isa::Instruction;
using isa::Label;
using isa::Op;
using isa::SetFlags;
using namespace isa;  // r0..r15

// 1-cycle flash is the fixed-fetch-cost regime superblocks may chain in
// (the default 5-cycle streamer is stateful, so formation would decline).
SystemBuilder mcu() {
  return profiles::modern_mcu().flash_size(64 * 1024).flash_wait(1);
}

std::uint16_t encode_halfword(const Instruction& insn) {
  const isa::Codec& codec = isa::b32_codec();
  const int size = codec.size_for(insn, 0);
  EXPECT_EQ(size, 2);
  std::vector<std::uint8_t> bytes;
  codec.encode(insn, 0, size, bytes);
  return static_cast<std::uint16_t>(bytes[0] | (bytes[1] << 8));
}

// ----- formation / termination ----------------------------------------------

TEST(Superblock, FormationChainsStraightLineAndStopsAtTerminator) {
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_mov_imm(r0, 1, SetFlags::any));
  a.ins(ins_rri(Op::add, r0, r0, 2, SetFlags::any));
  a.ins(ins_rrr(Op::eor, r1, r0, r0, SetFlags::any));
  a.ins(ins_rri(Op::sub, r0, r0, 1, SetFlags::any));
  a.ins(ins_ret());  // bx lr: terminator, included as the final entry
  const Image image = a.assemble();

  System sys(mcu());
  sys.load(image);
  EXPECT_EQ(sys.core().dispatch_tier(), DispatchTier::superblock);
  EXPECT_EQ(sys.call(image.base), 2u);

  SuperblockCache* sb = sys.core().superblock_cache();
  ASSERT_NE(sb, nullptr);
  SuperblockCache::Block* b = sb->lookup(image.base, /*privileged=*/true);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->entries.size(), 5u);
  EXPECT_EQ(b->start_pc, image.base);
  EXPECT_EQ(b->end_pc, image.base + image.bytes.size());
  // The terminator stays generic (it leaves the straight line); everything
  // before it was specialized.
  EXPECT_EQ(b->entries.back().klass, ExecClass::generic);
  for (std::size_t k = 0; k + 1 < b->entries.size(); ++k) {
    EXPECT_NE(b->entries[k].klass, ExecClass::generic) << "entry " << k;
  }
  EXPECT_GE(sb->stats().blocks_formed, 1u);
  EXPECT_GT(sb->stats().block_instructions, 0u);
}

TEST(Superblock, BackwardBranchTerminatesBlockAndLoopsInDispatch) {
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_mov_imm(r0, 0, SetFlags::any));
  a.ins(ins_mov_imm(r1, 1000, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  a.ins(ins_rri(Op::sub, r1, r1, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_ret());
  const Image image = a.assemble();

  System sys(mcu());
  sys.load(image);
  EXPECT_EQ(sys.call(image.base), 1000u);

  SuperblockCache::Block* b =
      sys.core().superblock_cache()->lookup(a.label_address(top), true);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->entries.size(), 3u);
  EXPECT_EQ(b->entries.back().klass, ExecClass::branch);
  // The taken back-branch re-enters the same block without leaving the
  // dispatcher, so block hits dwarf the 1000 iterations' worth of misses.
  EXPECT_GT(sys.core().superblock_cache()->stats().hits, 900u);
  const Core::JitStats js = sys.core().jit_stats();
  EXPECT_GT(js.block_instructions, 2900u);
  EXPECT_GT(js.avg_block_length, 2.0);
}

TEST(Superblock, ItBodyIsSpecializedWithBakedConditions) {
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_cmp_imm(r0, 0));
  a.ins(ins_it(Cond::eq, "e"));  // ite eq
  a.ins(ins_mov_imm(r1, 1));     // then-slot
  a.ins(ins_mov_imm(r1, 2));     // else-slot
  a.ins(ins_mov_reg(r0, r1, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();

  System sys(mcu());
  sys.load(image);
  EXPECT_EQ(sys.call(image.base, {0}), 1u);
  EXPECT_EQ(sys.call(image.base, {7}), 2u);

  SuperblockCache::Block* b =
      sys.core().superblock_cache()->lookup(image.base, true);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->entries.size(), 6u);
  EXPECT_EQ(b->entries[1].klass, ExecClass::it_);
  // Body slots carry their 1-based position and the statically-known
  // condition the dispatch gate applies (then = eq, else = ne).
  EXPECT_EQ(b->entries[2].it_info, 1);
  EXPECT_EQ(b->entries[2].d.insn.cond, Cond::eq);
  EXPECT_EQ(b->entries[3].it_info, 2);
  EXPECT_EQ(b->entries[3].d.insn.cond, Cond::ne);
  EXPECT_EQ(b->entries[4].it_info, 0);  // past the body
}

TEST(Superblock, UnspecializableItBodyCutsBlockBeforeIt) {
  // The IT body contains a load — a memory class, outside the pure
  // in-dispatch range — so the block must end just before the IT
  // instruction and the per-instruction tier runs the real predication.
  Assembler a(Encoding::b32, kFlashBase);
  a.load_literal(r2, kSramBase + 0x100);
  a.ins(ins_cmp_imm(r0, 0));
  const Label it_at = a.bound_label();
  a.ins(ins_it(Cond::eq, ""));
  a.ins(ins_ldst_imm(Op::ldr, r1, r2, 0));  // then-slot: unspecializable
  a.ins(ins_mov_reg(r0, r1, SetFlags::any));
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  System sys(mcu());
  sys.load(image);
  ASSERT_TRUE(sys.bus().write(kSramBase + 0x100, 4, 42, 0).ok());
  EXPECT_EQ(sys.call(image.base, {0, 9}), 42u);  // eq: load runs
  EXPECT_EQ(sys.call(image.base, {5, 9}), 9u);   // ne: annulled

  SuperblockCache::Block* b =
      sys.core().superblock_cache()->lookup(image.base, true);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->end_pc, a.label_address(it_at));
  for (const SuperblockCache::Entry& e : b->entries) {
    EXPECT_NE(e.d.insn.op, Op::it);
  }
}

// ----- self-modifying code: a store splitting a live block -------------------

TEST(Superblock, GuestStoreSplitsLiveBlockAndExecutesFresh) {
  // The loop body patches its own second instruction (mov r2,#5 ->
  // mov r2,#9) while the block containing it is live; pass 2 must run the
  // patched instruction. The store lands strictly inside the chained
  // range, so it is counted as a split, not just a kill.
  const std::uint32_t code_base = kSramBase + 0x4000;
  Assembler a(Encoding::b32, code_base);
  a.ins(ins_mov_imm(r5, 0, SetFlags::any));  // accumulator
  a.ins(ins_mov_imm(r4, 2, SetFlags::any));  // iterations
  const Label top = a.bound_label();
  Instruction nop;
  nop.op = Op::nop;
  a.ins(nop);  // pad: keeps the patch target off the block's first entry
  a.ins(ins_mov_imm(r2, 5, SetFlags::any));
  a.ins(ins_rrr(Op::add, r5, r5, r2, SetFlags::any));
  a.ins(ins_ldst_imm(Op::strh, r1, r0, 0));  // r0 = &patchme, r1 = new insn
  a.ins(ins_rri(Op::sub, r4, r4, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_mov_reg(r0, r5, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();

  System sys(mcu());
  sys.load(image);
  const std::uint32_t patchme = a.label_address(top) + 2;
  const std::uint16_t patched =
      encode_halfword(ins_mov_imm(r2, 9, SetFlags::yes));
  EXPECT_EQ(sys.call(image.base, {patchme, patched}), 14u);
  const Core::JitStats js = sys.core().jit_stats();
  EXPECT_GE(js.block_splits, 1u);
  EXPECT_GE(js.blocks_killed, 1u);
}

// ----- FlashPatchUnit remap killing a hot block ------------------------------

TEST(Superblock, FpbRemapMidRunKillsHotBlock) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label top = a.bound_label();
  Instruction nop;
  nop.op = Op::nop;
  a.ins(nop);
  const Label loop_branch = a.bound_label();
  a.b(top);
  const Image image = a.assemble();

  System sys(mcu());
  sys.load(image);
  FlashPatchUnit fpb;
  sys.core().set_flash_patch(&fpb);
  sys.core().reset(image.base, sys.initial_sp());
  ASSERT_EQ(sys.core().run(10'000), HaltReason::insn_limit);
  ASSERT_GT(sys.core().jit_stats().block_instructions, 0u);

  // Remap the loop branch (buried in a hot, currently-resumable block) to a
  // return served from patch RAM; the version bump must flush the block.
  FlashPatchUnit::Patch patch;
  patch.breakpoint = false;
  patch.replacement = ins_ret();
  patch.replacement_size = 2;
  fpb.set_patch(0, a.label_address(loop_branch), patch);
  EXPECT_EQ(sys.core().run(10'000), HaltReason::exited);
  EXPECT_GE(sys.core().jit_stats().block_flushes, 1u);
}

// ----- MPU execute revocation ------------------------------------------------

TEST(Superblock, MpuExecRevocationFaultsDespiteFormedBlocks) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label top = a.bound_label();
  Instruction nop;
  nop.op = Op::nop;
  a.ins(nop);
  a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  a.b(top);
  const Image image = a.assemble();

  System sys(mcu().privileged(false).mpu(mem::MpuConfig::fine()));
  sys.load(image);
  mem::MpuRegion code;
  code.base = kFlashBase;
  code.size = 4096;
  code.read = true;
  code.execute = true;
  sys.mpu()->set_region(0, code);

  sys.core().reset(image.base, sys.initial_sp());
  ASSERT_EQ(sys.core().run(1'000), HaltReason::insn_limit);
  ASSERT_GT(sys.core().jit_stats().block_instructions, 0u);

  // Revoking execute permission must take effect even though the loop body
  // lives in a formed block validated under the old configuration.
  sys.mpu()->clear_region(0);
  EXPECT_EQ(sys.core().run(1'000), HaltReason::fault);
  EXPECT_EQ(sys.core().fault_info().kind, mem::Fault::mpu_violation);
  EXPECT_EQ(sys.core().fault_info().access, mem::Access::fetch);
  EXPECT_GE(sys.core().jit_stats().block_flushes, 1u);
}

// ----- interrupt delivery instants -------------------------------------------

// Raises Ivc line 1 (once) the first time the cycle counter passes
// `fire_at`, from the per-boundary cycle hook — the exact mechanism the
// experiments use, and one the superblock tier must honor at every entry
// boundary, including mid-block.
struct IrqRig {
  System sys;
  Ivc ivc;
  bool fired = false;

  IrqRig(SystemBuilder builder, const Image& image, std::uint32_t handler,
         std::uint64_t fire_at)
      : sys(std::move(builder)), ivc([] {
          Ivc::Config c;
          c.vector_table = kSramBase + 0x40;
          c.lines = 4;
          return c;
        }()) {
    sys.load(image);
    const std::uint8_t v[4] = {
        static_cast<std::uint8_t>(handler),
        static_cast<std::uint8_t>(handler >> 8),
        static_cast<std::uint8_t>(handler >> 16),
        static_cast<std::uint8_t>(handler >> 24)};
    EXPECT_TRUE(sys.bus().load_image(kSramBase + 0x40 + 4, v, 4));
    sys.core().set_interrupt_controller(&ivc);
    ivc.enable_line(1, 32);
    sys.core().set_cycle_hook([this, fire_at](std::uint64_t cycles) {
      if (!fired && cycles >= fire_at) {
        fired = true;
        ivc.raise(1, cycles);
      }
    });
    sys.core().reset(image.base, sys.initial_sp());
  }
};

TEST(Superblock, IrqMidBlockDeliversAtSameInstantAsReferenceTier) {
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_mov_imm(r0, 0, SetFlags::any));
  const Label top = a.bound_label();  // long straight-line block
  for (int k = 0; k < 12; ++k) {
    a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  }
  a.b(top);
  a.pool();
  const Label handler = a.bound_label();
  a.load_literal(r4, kSramBase + 0x100);
  a.ins(ins_ldst_imm(Op::ldr, r5, r4, 0));
  a.ins(ins_rri(Op::add, r5, r5, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r5, r4, 0));
  a.ins(ins_ret());  // exception return
  a.pool();
  const Image image = a.assemble();
  const std::uint32_t handler_pc = a.label_address(handler);

  // Fire instants chosen to land mid-block (the block is 13 entries long),
  // at a block boundary, and deep into a later iteration.
  for (const std::uint64_t fire_at : {37u, 64u, 301u}) {
    IrqRig sblock(mcu(), image, handler_pc, fire_at);
    IrqRig reference(mcu().decode_cache_lines(0), image, handler_pc, fire_at);
    ASSERT_EQ(sblock.sys.core().dispatch_tier(), DispatchTier::superblock);
    ASSERT_EQ(reference.sys.core().dispatch_tier(), DispatchTier::off);
    for (int step = 0; step < 600; ++step) {
      ASSERT_TRUE(sblock.sys.core().step());
      ASSERT_TRUE(reference.sys.core().step());
      ASSERT_EQ(sblock.sys.core().pc(), reference.sys.core().pc())
          << "fire_at " << fire_at << " step " << step;
      ASSERT_EQ(sblock.sys.core().cycles(), reference.sys.core().cycles())
          << "fire_at " << fire_at << " step " << step;
    }
    // Both tiers entered the handler exactly once (the mailbox increment
    // proves it ran to completion); the lock-step pc/cycles equality above
    // pins the delivery to the same instant.
    EXPECT_EQ(sblock.ivc.stats().entries, 1u);
    EXPECT_EQ(reference.ivc.stats().entries, 1u);
    EXPECT_EQ(sblock.sys.bus().read(kSramBase + 0x100, 4, mem::Access::read, 0)
                  .value,
              1u);
  }
}

// ----- byte-identity against the reference tier ------------------------------

TEST(Superblock, LongRunMatchesReferenceTierExactly) {
  // A loop mixing every specialization family (ALU, IT body, memory, taken
  // and fall-through branches) run to completion on both tiers through
  // run() — the quiet-boundary batch path, not single-stepping — must land
  // on identical (r0, cycles, instructions).
  Assembler a(Encoding::b32, kFlashBase);
  a.ins(ins_mov_imm(r0, 0, SetFlags::any));
  a.ins(ins_mov_imm(r1, 500, SetFlags::any));
  a.load_literal(r2, kSramBase + 0x200);
  const Label top = a.bound_label();
  a.ins(ins_ldst_imm(Op::str, r1, r2, 0));
  a.ins(ins_ldst_imm(Op::ldr, r3, r2, 0));
  a.ins(ins_rri(Op::and_, r4, r3, 1, SetFlags::yes));
  a.ins(ins_it(Cond::ne, "e"));
  a.ins(ins_rri(Op::add, r0, r0, 3));
  a.ins(ins_rri(Op::add, r0, r0, 1));
  a.ins(ins_rri(Op::sub, r1, r1, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  System sblock(mcu());
  System reference(mcu().decode_cache_lines(0));
  std::uint64_t cycles[2] = {0, 0};
  std::uint64_t insns[2] = {0, 0};
  std::uint32_t r0v[2] = {0, 0};
  int k = 0;
  for (System* sys : {&sblock, &reference}) {
    sys->load(image);
    sys->core().reset(image.base, sys->initial_sp());
    ASSERT_EQ(sys->core().run(100'000), HaltReason::exited);
    cycles[k] = sys->core().cycles();
    insns[k] = sys->core().instructions();
    r0v[k] = sys->core().reg(r0);
    ++k;
  }
  EXPECT_EQ(cycles[0], cycles[1]);
  EXPECT_EQ(insns[0], insns[1]);
  EXPECT_EQ(r0v[0], r0v[1]);
  EXPECT_EQ(r0v[0], 1000u);  // 250 odd passes * 3 + 250 even * 1
  EXPECT_GT(sblock.core().jit_stats().block_instructions, 3000u);
}

}  // namespace
}  // namespace aces::cpu
