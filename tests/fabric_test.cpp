// Heterogeneous fabrics: CAN FD conformance (wire-bit closed forms, DLC
// map, classic-format validation), gateway signal pack/unpack round trips,
// the FlexRay dynamic segment (grant order, pLatestTx deferral, analytic
// bound), and the fd_backbone campaign axis (replay identity).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "campaign/presets.h"
#include "campaign/runner.h"
#include "can/bus.h"
#include "can/frame.h"
#include "net/flexray_fabric.h"
#include "net/network.h"
#include "sched/can_rta.h"
#include "sim/event_queue.h"
#include "support/rng.h"

namespace aces {
namespace {

using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

// ----- CAN FD conformance ----------------------------------------------------

TEST(FdConformance, DlcPayloadMap) {
  // DLC codes 0..8 carry their own count; 9..15 map onto the FD sizes.
  for (unsigned dlc = 0; dlc <= 8; ++dlc) {
    EXPECT_EQ(can::fd_payload_bytes(dlc), dlc);
  }
  const unsigned want[7] = {12, 16, 20, 24, 32, 48, 64};
  for (unsigned dlc = 9; dlc <= 15; ++dlc) {
    EXPECT_EQ(can::fd_payload_bytes(dlc), want[dlc - 9]);
  }
  can::CanFrame f;
  f.fd = true;
  f.dlc = 15;
  EXPECT_EQ(can::payload_bytes(f), 64u);
  f.fd = false;
  f.dlc = 8;
  EXPECT_EQ(can::payload_bytes(f), 8u);
}

TEST(FdConformance, WorstCaseClosedForms) {
  // Nominal-phase stuffed worst case: 34 bits (base), 57 bits (extended).
  EXPECT_EQ(can::fd_worst_case_nominal_bits(false), 34u);
  EXPECT_EQ(can::fd_worst_case_nominal_bits(true), 57u);
  // Data-phase stuffed worst case: 10n + 34 under CRC17 (n <= 16 bytes),
  // 10n + 39 under CRC21 (n > 16 bytes).
  for (unsigned dlc = 0; dlc <= 15; ++dlc) {
    const unsigned n = can::fd_payload_bytes(dlc);
    const unsigned want = n <= 16 ? 10 * n + 34 : 10 * n + 39;
    EXPECT_EQ(can::fd_worst_case_data_bits(dlc), want) << "dlc=" << dlc;
  }
}

TEST(FdConformance, ExactBitsNeverExceedWorstCasePerPhase) {
  // Property: for random frames, the exact stuffed wire size stays within
  // the closed-form worst case, phase by phase.
  support::Rng256 rng(20260807);
  for (int round = 0; round < 4000; ++round) {
    can::CanFrame f;
    f.fd = true;
    f.extended = (rng.next_u64() & 1) != 0;
    f.brs = (rng.next_u64() & 1) != 0;
    f.dlc = static_cast<unsigned>(rng.next_below(16));
    const unsigned n = can::fd_payload_bytes(f.dlc);
    for (unsigned k = 0; k < n; ++k) {
      f.data[k] = static_cast<std::uint8_t>(rng.next_u64());
    }
    const can::FdWireBits w = can::fd_exact_wire_bits(f);
    EXPECT_LE(w.nominal_bits, can::fd_worst_case_nominal_bits(f.extended));
    EXPECT_LE(w.data_bits, can::fd_worst_case_data_bits(f.dlc));
    EXPECT_GT(w.nominal_bits, 0u);
    EXPECT_GT(w.data_bits, 0u);
  }
}

TEST(FdConformance, AllOnesAndAllZerosPayloadsStuffHeavily) {
  // Degenerate payloads exercise the stuffing path hardest; they must
  // still respect the bound (regression guard for the stuff counter).
  for (const std::uint8_t fill : {0x00, 0xFF}) {
    can::CanFrame f;
    f.fd = true;
    f.dlc = 15;
    f.data.fill(fill);
    const can::FdWireBits w = can::fd_exact_wire_bits(f);
    EXPECT_LE(w.data_bits, can::fd_worst_case_data_bits(15));
    // 64 raw payload bytes = 512 bits; stuffing must have added bits.
    EXPECT_GT(w.data_bits, 512u);
  }
}

// ----- classic-format validation --------------------------------------------

TEST(ClassicValidation, DlcAboveEightIsRejected) {
  // The classic closed form is meaningless past 8 data bytes.
  EXPECT_THROW((void)can::worst_case_wire_bits(9, false),
               std::logic_error);
  EXPECT_THROW((void)can::worst_case_wire_bits(15, true),
               std::logic_error);
  EXPECT_EQ(can::worst_case_wire_bits(8, false), 135u);

  sim::EventQueue queue;
  can::CanBus classic(queue, 500'000);
  const can::NodeId n = classic.attach_node("n");
  can::CanFrame bad;
  bad.id = 0x10;
  bad.fd = false;
  bad.dlc = 9;  // classic framing cannot carry an FD DLC code
  EXPECT_THROW(classic.send(n, bad), std::logic_error);

  can::CanFrame fd_frame;
  fd_frame.id = 0x11;
  fd_frame.fd = true;
  fd_frame.dlc = 9;
  // A classic-only bus (no data bit rate) rejects FD frames outright.
  EXPECT_FALSE(classic.fd_enabled());
  EXPECT_THROW(classic.send(n, fd_frame), std::logic_error);

  can::CanBus fd_bus(queue, 500'000, 2'000'000);
  const can::NodeId m = fd_bus.attach_node("m");
  EXPECT_TRUE(fd_bus.fd_enabled());
  EXPECT_THROW(fd_bus.send(m, bad), std::logic_error);  // still classic
  fd_bus.send(m, fd_frame);  // and the FD frame is fine here
}

// ----- gateway signal packing round trip ------------------------------------

TEST(GatewayTranslation, PackUnpackRoundTripIsLossless) {
  // Property: three classic frames packed into one FD aggregate on a
  // backbone, then unpacked onto a third bus, reproduce the original
  // bytes exactly — including the zero-fill of bytes past a short
  // ingress payload. 25 seeded rounds of random payloads.
  net::NetworkBuilder nb;
  const net::BusId a = nb.bus("a", 500'000);
  const net::BusId b = nb.bus("b", 500'000, 2'000'000);
  const net::BusId c = nb.bus("c", 500'000);
  net::GatewayConfig gc;
  gc.forwarding_latency = 20 * kMicrosecond;
  const net::GatewayId g1 = nb.gateway("g1", gc);
  const net::GatewayId g2 = nb.gateway("g2", gc);

  net::PackedRoute pr;
  pr.from = a;
  pr.to = b;
  pr.table = {{0x10, 0, 4}, {0x11, 4, 8}, {0x12, 12, 2}};
  pr.trigger_id = 0x12;
  pr.egress_id = 0x200;
  pr.egress_fd = true;
  pr.egress_dlc = 10;  // 16 bytes >= 14-byte table extent
  nb.packed_route(g1, pr);

  net::UnpackRoute ur;
  ur.from = b;
  ur.to = c;
  ur.match_id = 0x200;
  ur.table = {{0x20, false, 4, 0}, {0x21, false, 8, 4}, {0x22, false, 2, 12}};
  nb.unpack_route(g2, ur);

  net::Network net = nb.build();
  const can::NodeId src = net.bus(a).attach_node("src");
  const can::NodeId sink = net.bus(c).attach_node("sink");

  std::map<std::uint32_t, std::vector<std::vector<std::uint8_t>>> got;
  net.bus(c).subscribe(sink, [&](const can::CanFrame& f, SimTime) {
    std::vector<std::uint8_t> bytes(f.data.begin(),
                                    f.data.begin() + can::payload_bytes(f));
    got[f.id].push_back(bytes);
  });

  support::Rng256 rng(42);
  std::vector<std::array<std::uint8_t, 14>> want;
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    net.shard(a).schedule_at(
        SimTime(round + 1) * 5 * kMillisecond, [&, round] {
          std::array<std::uint8_t, 14> agg{};
          // 0x11 sends a short payload on odd rounds: the gateway must
          // zero-fill its slot past the received bytes.
          const unsigned b11 = (round & 1) != 0 ? 3 : 8;
          const struct {
            std::uint32_t id;
            unsigned offset;
            unsigned slot_bytes;
            unsigned dlc;
          } sends[3] = {
              {0x10, 0, 4, 4}, {0x11, 4, 8, b11}, {0x12, 12, 2, 2}};
          for (const auto& s : sends) {
            can::CanFrame f;
            f.id = s.id;
            f.dlc = s.dlc;
            for (unsigned k = 0; k < s.dlc; ++k) {
              f.data[k] = static_cast<std::uint8_t>(rng.next_u64());
              agg[s.offset + k] = f.data[k];
            }
            net.bus(a).send(src, f);
          }
          want.push_back(agg);
        });
  }
  net.run_until(SimTime(kRounds + 2) * 5 * kMillisecond);

  ASSERT_EQ(want.size(), static_cast<std::size_t>(kRounds));
  ASSERT_EQ(got[0x20].size(), static_cast<std::size_t>(kRounds));
  ASSERT_EQ(got[0x21].size(), static_cast<std::size_t>(kRounds));
  ASSERT_EQ(got[0x22].size(), static_cast<std::size_t>(kRounds));
  for (int round = 0; round < kRounds; ++round) {
    const auto& agg = want[static_cast<std::size_t>(round)];
    const struct {
      std::uint32_t id;
      unsigned offset;
      unsigned dlc;
    } slices[3] = {{0x20, 0, 4}, {0x21, 4, 8}, {0x22, 12, 2}};
    for (const auto& s : slices) {
      const auto& bytes = got[s.id][static_cast<std::size_t>(round)];
      ASSERT_EQ(bytes.size(), s.dlc);
      for (unsigned k = 0; k < s.dlc; ++k) {
        EXPECT_EQ(bytes[k], agg[s.offset + k])
            << "round " << round << " id 0x" << std::hex << s.id
            << std::dec << " byte " << k;
      }
    }
  }
  // Translation stats: one aggregate per trigger, three slices per big
  // frame, every update counted.
  EXPECT_EQ(net.gateway(g1).packed_stats(0).updates, 3u * kRounds);
  EXPECT_EQ(net.gateway(g1).packed_stats(0).emitted,
            static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(net.gateway(g2).unpack_stats(0).updates,
            static_cast<std::uint64_t>(kRounds));
  EXPECT_EQ(net.gateway(g2).unpack_stats(0).emitted, 3u * kRounds);
  EXPECT_GT(net.gateway(g1).packed_stats(0).worst_transit, 0);
}

// ----- FlexRay dynamic segment ----------------------------------------------

net::FlexrayFabricConfig small_dyn_config(unsigned minislots) {
  net::FlexrayFabricConfig cfg;
  cfg.static_cfg.cycle_length = kMillisecond;
  cfg.static_cfg.static_slots = 1;
  cfg.static_cfg.slot_length = 50 * kMicrosecond;
  cfg.minislots = minislots;
  cfg.minislot = 20 * kMicrosecond;
  return cfg;
}

TEST(FlexrayDynamic, GrantsFollowSlotPriorityOrder) {
  sim::EventQueue queue;
  // 8-byte frame: 91 + 80 = 171 bits at 10 Mbps = 17.1 us -> 1 minislot
  // of 20 us. The walk also burns one minislot per idle slot id, so the
  // highest occupied id (5) needs at least 5 of the 8 minislots.
  net::FlexrayFabric fabric(queue, small_dyn_config(8));
  const auto n1 = fabric.attach_node("n1");
  const auto n2 = fabric.attach_node("n2");
  const auto n3 = fabric.attach_node("n3");
  const auto lo = fabric.add_dynamic_frame(n1, "lo", 5, 8);
  const auto hi = fabric.add_dynamic_frame(n2, "hi", 1, 8);
  const auto mid = fabric.add_dynamic_frame(n3, "mid", 3, 8);
  fabric.start();

  const auto obs = fabric.attach_node("obs");
  std::vector<unsigned> order;
  fabric.subscribe(obs, [&](const net::FlexrayFabric::DynFrameInfo& i,
                            const net::FlexrayFabric::DynPayload&,
                            SimTime) { order.push_back(i.slot_id); });

  // Queue in reverse priority order before the segment starts: the walk
  // must still grant by slot id, not arrival order.
  net::FlexrayFabric::DynPayload p;
  p.bytes = 8;
  fabric.send_dynamic(lo, p);
  fabric.send_dynamic(mid, p);
  fabric.send_dynamic(hi, p);
  queue.run_until(kMillisecond);

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 5u);
  EXPECT_EQ(fabric.dyn_stats(hi).deferrals, 0u);
}

TEST(FlexrayDynamic, LatestTxRuleDefersWhatNoLongerFits) {
  sim::EventQueue queue;
  // 24-byte frames: 91 + 240 = 331 bits = 33.1 us -> 2 minislots each.
  // A 3-minislot segment fits one such frame per cycle: the second is
  // deferred by the pLatestTx rule and goes out next cycle.
  net::FlexrayFabric fabric(queue, small_dyn_config(3));
  const auto n1 = fabric.attach_node("n1");
  const auto n2 = fabric.attach_node("n2");
  const auto first = fabric.add_dynamic_frame(n1, "first", 1, 24);
  const auto second = fabric.add_dynamic_frame(n2, "second", 2, 24);
  fabric.start();

  std::vector<std::pair<unsigned, SimTime>> deliveries;
  const auto obs = fabric.attach_node("obs");
  fabric.subscribe(obs, [&](const net::FlexrayFabric::DynFrameInfo& i,
                            const net::FlexrayFabric::DynPayload&,
                            SimTime at) { deliveries.emplace_back(i.slot_id, at); });

  net::FlexrayFabric::DynPayload p;
  p.bytes = 24;
  fabric.send_dynamic(first, p);
  fabric.send_dynamic(second, p);
  queue.run_until(3 * kMillisecond);

  ASSERT_EQ(deliveries.size(), 2u);
  EXPECT_EQ(deliveries[0].first, 1u);
  EXPECT_EQ(deliveries[1].first, 2u);
  // The deferred frame crossed into the next cycle.
  EXPECT_LT(deliveries[0].second, kMillisecond);
  EXPECT_GT(deliveries[1].second, kMillisecond);
  EXPECT_GE(fabric.dyn_stats(second).deferrals, 1u);
  EXPECT_EQ(fabric.dyn_stats(first).deferrals, 0u);
}

TEST(FlexrayDynamic, MeasuredLatencyStaysWithinDynamicHopBound) {
  sim::EventQueue queue;
  net::FlexrayFabric fabric(queue, small_dyn_config(10));
  const auto n1 = fabric.attach_node("n1");
  const auto n2 = fabric.attach_node("n2");
  const auto n3 = fabric.attach_node("n3");
  const auto a = fabric.add_dynamic_frame(n1, "a", 1, 24);
  const auto b = fabric.add_dynamic_frame(n2, "b", 2, 16);
  const auto probe = fabric.add_dynamic_frame(n3, "probe", 3, 8);
  fabric.start();

  // Saturating senders at the cycle period (the bound's assumption).
  const std::vector<std::pair<net::FlexrayFabric::DynId, unsigned>> senders =
      {{a, 24}, {b, 16}, {probe, 8}};
  for (const auto& s : senders) {
    queue.schedule_every(kMillisecond, [&fabric, s] {
      net::FlexrayFabric::DynPayload p;
      p.bytes = s.second;
      fabric.send_dynamic(s.first, p);
    });
  }
  queue.run_until(500 * kMillisecond);

  const sched::PathRtaResult bound =
      sched::path_rta({fabric.dynamic_hop(probe, 5 * kMillisecond)});
  ASSERT_TRUE(bound.schedulable);
  EXPECT_GT(fabric.dyn_stats(probe).sent, 0u);
  EXPECT_LE(fabric.dyn_stats(probe).worst_latency, bound.response);
  // Higher-priority frames also stay within their own (tighter) bounds.
  EXPECT_LE(fabric.dyn_stats(a).worst_latency,
            sched::path_rta({fabric.dynamic_hop(a, 5 * kMillisecond)})
                .response);
}

// ----- fd_backbone campaign axis --------------------------------------------

TEST(CampaignFdBackbone, SweepRunsAndReplaysBitIdentically) {
  // The vehicle preset swept over the fd_backbone axis: both variants
  // fault-free, within their (format-aware) path bounds, with distinct
  // fingerprints — and the FD variant replays bit-identically.
  campaign::ScenarioSpec spec =
      campaign::presets::vehicle_spec(60 * kMillisecond);
  spec.axes = {
      {"error_period_ns", {0.0}},
      {"gw_depth", {8.0}},
      {"load_pct", {100.0}},
      {"fd_backbone", {0.0, 1.0}},
  };
  spec.replicates = 1;
  ASSERT_EQ(spec.variant_count(), 2u);

  const campaign::CampaignResult result =
      campaign::CampaignRunner().run(spec);
  ASSERT_EQ(result.variants.size(), 2u);
  for (const auto& v : result.variants) {
    EXPECT_TRUE(v.violations.empty())
        << "variant " << v.index << ": " << v.violations.front();
    for (const auto& p : v.paths) {
      EXPECT_TRUE(p.bound_schedulable);
      EXPECT_GT(p.frames, 0u);
      EXPECT_LE(p.max_latency, p.bound);
    }
  }
  // Same seed discipline, different wire format -> different dynamics.
  EXPECT_NE(result.variants[0].fingerprint, result.variants[1].fingerprint);

  const campaign::VariantResult replayed = campaign::CampaignRunner().replay(
      spec, result.variants[1].index, result.variants[1].seed);
  EXPECT_EQ(replayed.fingerprint, result.variants[1].fingerprint);
  ASSERT_EQ(replayed.paths.size(), result.variants[1].paths.size());
  for (std::size_t k = 0; k < replayed.paths.size(); ++k) {
    EXPECT_EQ(replayed.paths[k].max_latency,
              result.variants[1].paths[k].max_latency);
  }
}

}  // namespace
}  // namespace aces
