#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace aces::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, FifoAtSameInstant) {
  EventQueue q;
  std::vector<int> order;
  for (int k = 0; k < 5; ++k) {
    q.schedule_at(5, [&order, k] { order.push_back(k); });
  }
  q.run_until(5);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, HorizonIsInclusive) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(11, [&] { ++fired; });
  q.run_until(10);
  EXPECT_EQ(fired, 1);
  q.run_until(11);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  std::function<void()> recur = [&] {
    fire_times.push_back(q.now());
    if (q.now() < 50) {
      q.schedule_in(10, recur);
    }
  };
  q.schedule_at(10, recur);
  q.run_until(1000);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.cancel(id);
  q.run_until(100);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(10, [&] { ++fired; });
  q.run_until(15);
  q.cancel(id);  // already fired
  q.run_until(100);
  EXPECT_EQ(fired, 1);
  // A stale cancel must not make an empty queue look occupied.
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelDuringDispatchOfSameInstant) {
  EventQueue q;
  int fired = 0;
  EventId second = 0;
  q.schedule_at(10, [&] { q.cancel(second); });
  second = q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(10, [&] { ++fired; });
  q.run_until(100);
  EXPECT_EQ(fired, 1);  // only the third event survives
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, DenseCancellationStaysCorrect) {
  // The O(1) cancellation path: thousands of timers armed and cancelled
  // (the re-arm pattern of watchdog/timeout models), interleaved with
  // live events.
  EventQueue q;
  int fired = 0;
  std::vector<EventId> armed;
  for (int k = 0; k < 5000; ++k) {
    armed.push_back(q.schedule_at(10 + k, [&] { ++fired; }));
  }
  for (int k = 0; k < 5000; ++k) {
    if (k % 2 == 0) {
      q.cancel(armed[static_cast<std::size_t>(k)]);
    }
  }
  for (const EventId id : armed) {
    q.cancel(id);  // double-cancel half, first-cancel the rest
  }
  EXPECT_TRUE(q.empty());
  q.schedule_at(20'000, [&] { ++fired; });
  q.run_until(30'000);
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ScheduleEveryFiresPeriodicallyFromNow) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  q.run_until(5);
  q.schedule_every(10, [&] { fire_times.push_back(q.now()); });
  q.run_until(40);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{5, 15, 25, 35}));
  EXPECT_THROW(q.schedule_every(0, [] {}), std::logic_error);
}

TEST(EventQueue, ScheduleEveryInterleavesFifoWithPlainEvents) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_every(10, [&] { order.push_back(1); });  // fires at 0, 10, ...
  q.schedule_at(10, [&] { order.push_back(2); });
  q.run_until(10);
  // At t=10 the periodic rearm (scheduled during the t=0 firing) has a
  // later sequence number than the plain event scheduled up front.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1}));
}

TEST(EventQueue, ScheduleEveryCancelStopsTheWholeSeries) {
  EventQueue q;
  std::vector<SimTime> fire_times;
  const EventId id =
      q.schedule_every(10, [&] { fire_times.push_back(q.now()); });
  q.run_until(25);  // fires at 0, 10, 20; next occurrence armed for 30
  q.cancel(id);     // cancellation mid-period kills the armed occurrence
  q.run_until(100);
  EXPECT_EQ(fire_times, (std::vector<SimTime>{0, 10, 20}));
  q.cancel(id);  // double-cancel of a periodic id is a no-op
  q.run_until(200);
  EXPECT_EQ(fire_times.size(), 3u);
}

TEST(EventQueue, ScheduleEveryCancelFromInsideItsOwnCallback) {
  EventQueue q;
  int fired = 0;
  EventId id = 0;
  id = q.schedule_every(10, [&] {
    ++fired;
    if (fired == 3) {
      q.cancel(id);  // self-cancel: the rearm after this firing must die
    }
  });
  q.run_until(1000);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ScheduleEveryIdsAreIndependent) {
  EventQueue q;
  int a = 0, b = 0;
  const EventId ida = q.schedule_every(10, [&] { ++a; });
  const EventId idb = q.schedule_every(10, [&] { ++b; });
  EXPECT_NE(ida, idb);
  q.run_until(5);
  q.cancel(ida);
  q.run_until(45);  // b keeps firing: 0, 10, 20, 30, 40
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 5);
}

TEST(EventQueue, NextTimePeeksEarliestLiveEvent) {
  EventQueue q;
  EXPECT_EQ(q.next_time(), kNever);
  const EventId early = q.schedule_at(10, [] {});
  q.schedule_at(20, [] {});
  EXPECT_EQ(q.next_time(), 10);
  q.cancel(early);
  EXPECT_EQ(q.next_time(), 20);
  q.run_until(100);
  EXPECT_EQ(q.next_time(), kNever);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(10, [] {});
  q.run_until(10);
  EXPECT_THROW(q.schedule_at(5, [] {}), std::logic_error);
}

TEST(EventQueue, StepReturnsFalseWhenNothingPending) {
  EventQueue q;
  EXPECT_FALSE(q.step(100));
  q.schedule_at(10, [] {});
  EXPECT_TRUE(q.step(100));
  EXPECT_FALSE(q.step(100));
}

TEST(EventQueue, EmptyTracksCancellations) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  const EventId id = q.schedule_at(10, [] {});
  EXPECT_FALSE(q.empty());
  q.cancel(id);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule_at(42, [&] { seen = q.now(); });
  q.run_until(100);
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace aces::sim
