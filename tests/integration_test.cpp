// System-level integration properties.
//
// Interrupt transparency: a computation's results must be bit-identical
// whether or not random interrupt storms preempt it — on both interrupt
// models. This exercises hardware stacking / software save-restore,
// restartable LDM, IT-state banking across exceptions and the whole
// memory path at once; any context-save bug anywhere shows up as a wrong
// kernel result.
#include <gtest/gtest.h>

#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "cpu/vic.h"
#include "isa/assembler.h"
#include "kir/lower.h"
#include "workloads/autoindy.h"
#include "workloads/runner.h"

namespace aces {
namespace {

using isa::Encoding;

constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;

// Builds a trivial handler (dirty the caller-saved set, return).
isa::Image make_handler_image(Encoding enc, std::uint32_t base,
                              std::uint32_t* handler_addr,
                              bool software_save) {
  using namespace isa;
  Assembler a(enc, base);
  const Label h = a.bound_label();
  if (software_save) {
    a.ins(ins_push(0x100F | (1u << lr)));
  }
  a.ins(ins_mov_imm(r0, 0xAA, SetFlags::any));
  a.ins(ins_mov_imm(r1, 0xBB, SetFlags::any));
  a.ins(ins_mov_imm(r2, 0xCC, SetFlags::any));
  a.ins(ins_mov_imm(r3, 0xDD, SetFlags::any));
  if (software_save) {
    a.ins(ins_pop(0x100F | (1u << pc)));
  } else {
    a.ins(ins_ret());
  }
  isa::Image img = a.assemble();
  *handler_addr = a.label_address(h);
  return img;
}

class InterruptTransparency
    : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InterruptTransparency, IvcStormDoesNotPerturbResults) {
  const workloads::Kernel& kernel = workloads::autoindy_suite()[GetParam()];
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, Encoding::b32, cpu::kFlashBase);

  cpu::System sys(cpu::profiles::modern_mcu().flash_size(128 * 1024));
  sys.load(prog.image);

  // Handler placed after the kernel in flash.
  std::uint32_t handler = 0;
  const isa::Image himg = make_handler_image(
      Encoding::b32, (prog.image.end() + 0x40u) & ~3u, &handler, false);
  sys.load(himg);
  const std::uint8_t vb[4] = {
      static_cast<std::uint8_t>(handler), static_cast<std::uint8_t>(handler >> 8),
      static_cast<std::uint8_t>(handler >> 16),
      static_cast<std::uint8_t>(handler >> 24)};
  for (unsigned k = 0; k < 4; ++k) {
    ASSERT_TRUE(sys.bus().load_image(kVectors + 4 * k, vb, 4));
  }
  cpu::Ivc::Config ic;
  ic.vector_table = kVectors;
  ic.lines = 4;
  cpu::Ivc ivc(ic);
  ivc.enable_line(1, 32);
  sys.core().set_interrupt_controller(&ivc);

  support::Rng256 storm_rng(31337);
  std::uint64_t next = 50;
  sys.core().set_cycle_hook([&](std::uint64_t now) {
    if (now >= next) {
      ivc.raise(1, now);
      next = now + 37 + storm_rng.next_below(90);
    }
  });

  support::Rng256 rng(777);
  for (int k = 0; k < 20; ++k) {
    // System reset between runs: an interrupt in flight at program exit
    // must not wedge the controller.
    ivc.reset();
    const workloads::Instance in = kernel.make_instance(rng, workloads::kDataBase);
    const workloads::RunResult r =
        workloads::run_instance(sys, prog.entry_of(kernel.name), in);
    ASSERT_EQ(r.value, in.expected)
        << kernel.name << " perturbed by interrupt storm, instance " << k;
  }
  EXPECT_GT(ivc.stats().entries, 10u);  // the storm really ran
}

TEST_P(InterruptTransparency, VicStormWithRestartableLdm) {
  const workloads::Kernel& kernel = workloads::autoindy_suite()[GetParam()];
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, Encoding::w32, cpu::kFlashBase);

  cpu::System sys(cpu::profiles::legacy_hp()
                      .restartable_ldm(true)
                      .flash_size(128 * 1024));
  sys.load(prog.image);

  std::uint32_t handler = 0;
  const isa::Image himg = make_handler_image(
      Encoding::w32, (prog.image.end() + 0x40u) & ~3u, &handler, true);
  sys.load(himg);
  cpu::ClassicVic::Config vc;
  vc.irq_handler = handler;
  cpu::ClassicVic vic(vc);
  sys.core().set_interrupt_controller(&vic);

  support::Rng256 storm_rng(999);
  std::uint64_t next = 50;
  sys.core().set_cycle_hook([&](std::uint64_t now) {
    if (now >= next) {
      vic.raise(cpu::ClassicVic::kIrq, now);
      next = now + 53 + storm_rng.next_below(120);
    }
  });

  support::Rng256 rng(4242);
  for (int k = 0; k < 20; ++k) {
    vic.reset();
    const workloads::Instance in = kernel.make_instance(rng, workloads::kDataBase);
    const workloads::RunResult r =
        workloads::run_instance(sys, prog.entry_of(kernel.name), in);
    ASSERT_EQ(r.value, in.expected)
        << kernel.name << " perturbed by VIC storm, instance " << k;
  }
  EXPECT_GT(vic.latencies(cpu::ClassicVic::kIrq).size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, InterruptTransparency,
    ::testing::Range<std::size_t>(0, 6), [](const auto& info) {
      return workloads::autoindy_suite()[info.param].name;
    });

// Caches + interrupts + workloads together: cached HP system under a storm
// still computes correctly (exercises line fills racing handler entries).
TEST(Integration, CachedSystemUnderStorm) {
  const workloads::Kernel& kernel = workloads::autoindy_suite()[1];
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, Encoding::w32, cpu::kFlashBase);

  mem::CacheConfig icache;
  icache.line_bytes = 16;
  icache.num_sets = 16;
  icache.ways = 2;
  cpu::System sys(cpu::SystemBuilder()
                      .encoding(Encoding::w32)
                      .flash_size(128 * 1024)
                      .flash_wait(6)
                      .icache(icache));
  sys.load(prog.image);

  std::uint32_t handler = 0;
  const isa::Image himg = make_handler_image(
      Encoding::w32, (prog.image.end() + 0x40u) & ~3u, &handler, true);
  sys.load(himg);
  cpu::ClassicVic::Config vc;
  vc.irq_handler = handler;
  cpu::ClassicVic vic(vc);
  sys.core().set_interrupt_controller(&vic);
  std::uint64_t next = 100;
  sys.core().set_cycle_hook([&](std::uint64_t now) {
    if (now >= next) {
      vic.raise(cpu::ClassicVic::kIrq, now);
      next = now + 211;
    }
  });

  support::Rng256 rng(5);
  for (int k = 0; k < 30; ++k) {
    vic.reset();
    const workloads::Instance in = kernel.make_instance(rng, workloads::kDataBase);
    const workloads::RunResult r =
        workloads::run_instance(sys, prog.entry_of(kernel.name), in);
    ASSERT_EQ(r.value, in.expected) << "instance " << k;
  }
  EXPECT_GT(sys.icache()->stats().hits, 1000u);
}

}  // namespace
}  // namespace aces
