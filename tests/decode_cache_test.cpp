// Decoded-instruction cache: invalidation correctness.
//
// The decode cache only speeds up the host; every test here is about the
// ways cached decodes can go stale — guest stores into code (self-modifying
// code through the core's DirectSpan fast path), host pokes through the bus
// write-snoop, FlashPatchUnit remaps, MPU reconfiguration and fault-injector
// bit flips in code memory — plus differential runs proving the cached and
// uncached simulators retire identical (pc, cycles) traces.
#include <gtest/gtest.h>

#include <vector>

#include "cpu/fpb.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/assembler.h"
#include "isa/codec.h"

namespace aces::cpu {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::Encoding;
using isa::Image;
using isa::Instruction;
using isa::Label;
using isa::Op;
using isa::SetFlags;
using namespace isa;  // r0..r15

// Encodes `insn` as one B32 halfword (the tests patch 16-bit slots).
std::uint16_t encode_halfword(const Instruction& insn) {
  const isa::Codec& codec = isa::b32_codec();
  const int size = codec.size_for(insn, 0);
  EXPECT_EQ(size, 2);
  std::vector<std::uint8_t> bytes;
  codec.encode(insn, 0, size, bytes);
  return static_cast<std::uint16_t>(bytes[0] | (bytes[1] << 8));
}

// ----- self-modifying code through the core's own store path ----------------

TEST(DecodeCache, GuestStoreOverCachedInstructionIsExecutedFresh) {
  // Loop body runs twice. The first pass executes the original mov r2,#5
  // (filling the decode cache) and then overwrites that very instruction
  // with mov r2,#9; the second pass must execute the patched instruction.
  // A stale decode-cache entry would yield 5 + 5 instead of 5 + 9.
  const std::uint32_t code_base = kSramBase + 0x4000;
  Assembler a(Encoding::b32, code_base);
  a.ins(ins_mov_imm(r5, 0, SetFlags::any));  // accumulator
  a.ins(ins_mov_imm(r4, 2, SetFlags::any));  // iterations
  const Label top = a.bound_label();
  const Label patchme = a.bound_label();
  a.ins(ins_mov_imm(r2, 5, SetFlags::any));
  a.ins(ins_rrr(Op::add, r5, r5, r2, SetFlags::any));
  a.ins(ins_ldst_imm(Op::strh, r1, r0, 0));  // r0 = &patchme, r1 = new insn
  a.ins(ins_rri(Op::sub, r4, r4, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_mov_reg(r0, r5, SetFlags::any));
  a.ins(ins_ret());
  const Image image = a.assemble();

  // Pinned to the per-instruction tier: the assertions below count decode
  // cache hits/invalidations, which the superblock tier bypasses (its SMC
  // handling is covered by superblock_test.cpp and the three-way fuzzer).
  System sys(profiles::modern_mcu()
                 .flash_size(16 * 1024)
                 .dispatch_tier(DispatchTier::per_insn));
  sys.load(image);
  const std::uint16_t patched =
      encode_halfword(ins_mov_imm(r2, 9, SetFlags::yes));
  EXPECT_EQ(sys.call(image.base, {a.label_address(patchme), patched}), 14u);
  ASSERT_NE(sys.core().decode_cache(), nullptr);
  // Invalidation is targeted: each pass's store kills the patched line
  // (one invalidation per store, plus the reset() flush), while the rest
  // of the loop body stays cached and re-hits on the second pass.
  EXPECT_EQ(sys.core().decode_cache()->stats().invalidations, 3u);
  EXPECT_GT(sys.core().decode_cache()->stats().hits, 0u);
}

// ----- host poke through the bus write snoop --------------------------------

TEST(DecodeCache, HostBusWriteOverCachedInstructionIsSeen) {
  // Infinite loop in SRAM; after the decode cache is warm, the host pokes
  // the loop branch into a return through the bus. A stale entry would spin
  // to the instruction budget forever.
  const std::uint32_t code_base = kSramBase + 0x4000;
  Assembler a(Encoding::b32, code_base);
  const Label top = a.bound_label();
  Instruction nop;
  nop.op = Op::nop;
  a.ins(nop);
  const Label loop_branch = a.bound_label();
  a.b(top);
  const Image image = a.assemble();

  System sys(profiles::modern_mcu().flash_size(16 * 1024));
  sys.load(image);
  sys.core().reset(image.base, sys.initial_sp());
  ASSERT_EQ(sys.core().run(10'000), HaltReason::insn_limit);

  ASSERT_TRUE(sys.bus()
                  .write(a.label_address(loop_branch), 2,
                         encode_halfword(ins_ret()), 0)
                  .ok());
  EXPECT_EQ(sys.core().run(10'000), HaltReason::exited);
}

// ----- FlashPatchUnit remap mid-run ----------------------------------------

TEST(DecodeCache, FpbRemapMidRunOverridesCachedDecode) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label top = a.bound_label();
  Instruction nop;
  nop.op = Op::nop;
  a.ins(nop);
  const Label loop_branch = a.bound_label();
  a.b(top);
  const Image image = a.assemble();

  System sys(profiles::modern_mcu().flash_size(16 * 1024));
  sys.load(image);
  FlashPatchUnit fpb;
  sys.core().set_flash_patch(&fpb);
  sys.core().reset(image.base, sys.initial_sp());
  ASSERT_EQ(sys.core().run(10'000), HaltReason::insn_limit);

  // Remap the (cached) loop branch to a return served from patch RAM.
  FlashPatchUnit::Patch patch;
  patch.breakpoint = false;
  patch.replacement = ins_ret();
  patch.replacement_size = 2;
  fpb.set_patch(0, a.label_address(loop_branch), patch);
  EXPECT_EQ(sys.core().run(10'000), HaltReason::exited);

  // And a breakpoint at the same site halts once the patch is cleared.
  sys.core().reset(image.base, sys.initial_sp());
  fpb.clear(0);
  fpb.set_breakpoint(0, a.label_address(loop_branch));
  EXPECT_EQ(sys.core().run(10'000), HaltReason::breakpoint);
}

// ----- MPU reconfiguration ---------------------------------------------------

TEST(DecodeCache, MpuReconfigurationRevokesCachedFetchPermission) {
  Assembler a(Encoding::b32, kFlashBase);
  const Label top = a.bound_label();
  Instruction nop;
  nop.op = Op::nop;
  a.ins(nop);
  a.b(top);
  const Image image = a.assemble();

  System sys(profiles::modern_mcu()
                 .flash_size(16 * 1024)
                 .privileged(false)
                 .mpu(mem::MpuConfig::fine()));
  sys.load(image);
  mem::MpuRegion code;
  code.base = kFlashBase;
  code.size = 4096;
  code.read = true;
  code.execute = true;
  sys.mpu()->set_region(0, code);

  sys.core().reset(image.base, sys.initial_sp());
  ASSERT_EQ(sys.core().run(1'000), HaltReason::insn_limit);

  // Revoking execute permission must take effect even though every fetch in
  // the loop is a decode-cache hit (validated under the old configuration).
  sys.mpu()->clear_region(0);
  EXPECT_EQ(sys.core().run(1'000), HaltReason::fault);
  EXPECT_EQ(sys.core().fault_info().kind, mem::Fault::mpu_violation);
  EXPECT_EQ(sys.core().fault_info().access, mem::Access::fetch);
}

// ----- fault-injector flips in code memory (differential) -------------------

// Builds the shared differential workload: a counting loop in TCM.
Image tcm_loop_image() {
  Assembler a(Encoding::b32, kTcmBase);
  a.ins(ins_mov_imm(r0, 0, SetFlags::any));
  a.ins(ins_mov_imm(r1, 200, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
  a.ins(ins_rri(Op::sub, r1, r1, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_ret());
  return a.assemble();
}

SystemBuilder tcm_system(bool fault_tolerant, std::uint32_t cache_lines) {
  mem::TcmConfig tcm;
  tcm.size_bytes = 64;  // tiny: upsets land in code with high probability
  tcm.access_cycles = 1;
  tcm.fault_tolerant = fault_tolerant;
  mem::FaultInjectorConfig inj;
  inj.upsets_per_mcycle = 3000.0;
  return SystemBuilder()
      .encoding(Encoding::b32)
      .timings(CoreTimings::modern_mcu())
      .flash_size(4 * 1024)
      .tcm(tcm)
      .fault_injector(inj, 0xFEED)
      .decode_cache_lines(cache_lines);
}

// Steps `cached` and `reference` in lock-step, asserting identical retired
// (pc, cycles) traces until both halt (or `budget` instructions).
void expect_identical_traces(System& cached, System& reference,
                             std::uint32_t entry, std::uint64_t budget) {
  cached.core().reset(entry, cached.initial_sp());
  reference.core().reset(entry, reference.initial_sp());
  for (std::uint64_t k = 0; k < budget; ++k) {
    const bool a = cached.core().step();
    const bool b = reference.core().step();
    ASSERT_EQ(a, b) << "step " << k;
    ASSERT_EQ(cached.core().pc(), reference.core().pc()) << "step " << k;
    ASSERT_EQ(cached.core().cycles(), reference.core().cycles())
        << "step " << k;
    if (!a) {
      break;
    }
  }
  ASSERT_EQ(cached.core().halt_reason(), reference.core().halt_reason());
  ASSERT_EQ(cached.core().reg(isa::r0), reference.core().reg(isa::r0));
  ASSERT_EQ(cached.core().instructions(), reference.core().instructions());
}

TEST(DecodeCache, InjectorFlipsInCodeKeepCachedAndUncachedIdentical) {
  // Identically seeded soft-error storms over TCM-resident code: the cached
  // run must mirror the uncached one bit for bit, including decodes of
  // corrupted instructions (fault tolerance off) and hold-and-repair stalls
  // (fault tolerance on).
  const Image image = tcm_loop_image();
  for (const bool ft : {false, true}) {
    System cached(tcm_system(ft, 2048));
    System reference(tcm_system(ft, 0));
    ASSERT_NE(cached.core().decode_cache(), nullptr);
    ASSERT_EQ(reference.core().decode_cache(), nullptr);
    cached.load(image);
    reference.load(image);
    expect_identical_traces(cached, reference, image.base, 5'000);
  }
}

// ----- snoop window precision ------------------------------------------------

TEST(DecodeCache, DataStoresOutsideCodeWindowDoNotInvalidate) {
  // The SMC snoop is range-filtered: a data-heavy loop must not thrash the
  // decode cache. One invalidation comes from reset(); stores to SRAM data
  // far from the (flash) code must add none.
  Assembler a(Encoding::b32, kFlashBase);
  a.load_literal(r1, kSramBase + 0x100);
  a.ins(ins_mov_imm(r2, 50, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_ldst_imm(Op::str, r2, r1, 0));
  a.ins(ins_rri(Op::sub, r2, r2, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_mov_imm(r0, 0, SetFlags::any));
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  System sys(profiles::modern_mcu().flash_size(16 * 1024));
  sys.load(image);
  (void)sys.call(image.base);
  const DecodeCache::Stats& s = sys.core().decode_cache()->stats();
  EXPECT_GT(s.hits, 100u);
  EXPECT_EQ(s.invalidations, 1u);  // the reset() safety net only
}

}  // namespace
}  // namespace aces::cpu
