// CAN frame serialization and bus arbitration tests.
#include <gtest/gtest.h>

#include "can/bus.h"
#include "can/frame.h"
#include "support/rng.h"

namespace aces::can {
namespace {

using sim::SimTime;

CanFrame frame(std::uint32_t id, unsigned dlc, std::uint8_t fill = 0) {
  CanFrame f;
  f.id = id;
  f.dlc = dlc;
  f.data.fill(fill);
  return f;
}

TEST(Frame, StuffableBitCount) {
  // SOF + 11 id + RTR/IDE/r0 + 4 DLC + data + 15 CRC = 34 + 8*dlc.
  for (unsigned dlc = 0; dlc <= 8; ++dlc) {
    EXPECT_EQ(stuffable_bits(frame(0x123, dlc)).size(), 34u + 8 * dlc);
  }
}

TEST(Frame, Crc15KnownProperty) {
  // CRC of an all-zero sequence is zero; flipping any bit changes it.
  const std::vector<bool> zeros(34, false);
  EXPECT_EQ(crc15(zeros), 0);
  std::vector<bool> one = zeros;
  one[5] = true;
  EXPECT_NE(crc15(one), 0);
}

TEST(Frame, WorstCaseBoundsExactLength) {
  support::Rng256 rng(31);
  for (int k = 0; k < 500; ++k) {
    CanFrame f;
    f.id = static_cast<std::uint32_t>(rng.next_below(1u << 11));
    f.dlc = static_cast<unsigned>(rng.next_below(9));
    for (auto& b : f.data) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const unsigned exact = exact_wire_bits(f);
    const unsigned worst = worst_case_wire_bits(f.dlc);
    EXPECT_LE(exact, worst) << "id=" << f.id << " dlc=" << f.dlc;
    // And the frame always needs at least the unstuffed length.
    EXPECT_GE(exact, 34u + 8 * f.dlc + 13u);
  }
}

TEST(Frame, AllZeroPayloadMaximizesStuffing) {
  // Long runs of identical bits force a stuff bit every 4 data bits.
  const unsigned zero_bits = exact_wire_bits(frame(0, 8, 0x00));
  const unsigned alt_bits = exact_wire_bits(frame(0x555, 8, 0xAA));
  EXPECT_GT(zero_bits, alt_bits);
}

struct BusFixture {
  sim::EventQueue q;
  CanBus bus{q, 500'000};  // 500 kbit/s -> 2 us/bit
  NodeId a = bus.attach_node("a");
  NodeId b = bus.attach_node("b");
};

TEST(Bus, DeliversToOtherNodes) {
  BusFixture f;
  int received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime) {
    EXPECT_EQ(fr.id, 0x100u);
    ++received;
  });
  int self_received = 0;
  f.bus.subscribe(f.a, [&](const CanFrame&, SimTime) { ++self_received; });
  f.bus.send(f.a, frame(0x100, 4));
  f.q.run_until(sim::kSecond);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(self_received, 0);  // transmitter does not hear itself
}

TEST(Bus, LowestIdWinsArbitration) {
  BusFixture f;
  std::vector<std::uint32_t> order;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime) {
    order.push_back(fr.id);
  });
  // Fill the bus, then enqueue contenders while busy.
  f.bus.send(f.a, frame(0x200, 8));
  f.q.schedule_at(10'000, [&] {
    f.bus.send(f.a, frame(0x300, 2));
    f.bus.send(f.a, frame(0x050, 2));  // should win despite arriving last
  });
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0x200u);
  EXPECT_EQ(order[1], 0x050u);
  EXPECT_EQ(order[2], 0x300u);
}

TEST(Bus, CrossNodeArbitration) {
  BusFixture f;
  const NodeId c = f.bus.attach_node("c");
  std::vector<std::uint32_t> order;
  f.bus.subscribe(c, [&](const CanFrame& fr, SimTime) {
    order.push_back(fr.id);
  });
  f.bus.send(f.a, frame(0x400, 1));
  // While busy: both nodes queue; b's lower id goes first.
  f.q.schedule_at(5'000, [&] {
    f.bus.send(f.a, frame(0x120, 1));
    f.bus.send(f.b, frame(0x110, 1));
  });
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], 0x110u);
  EXPECT_EQ(order[2], 0x120u);
}

TEST(Bus, TransmissionIsNonPreemptive) {
  BusFixture f;
  std::vector<std::pair<std::uint32_t, SimTime>> deliveries;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime at) {
    deliveries.push_back({fr.id, at});
  });
  f.bus.send(f.a, frame(0x700, 8));  // low priority, long
  f.q.schedule_at(1'000, [&] { f.bus.send(f.a, frame(0x001, 0)); });
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(deliveries.size(), 2u);
  // The low-priority frame completes first (started already).
  EXPECT_EQ(deliveries[0].first, 0x700u);
  const SimTime long_frame_time = f.bus.frame_time(frame(0x700, 8));
  EXPECT_EQ(deliveries[0].second, long_frame_time);
}

TEST(Bus, LatencyStatsTracked) {
  BusFixture f;
  f.bus.send(f.a, frame(0x100, 8));
  f.bus.send(f.a, frame(0x100, 8));  // second one waits for the first
  f.q.run_until(sim::kSecond);
  const auto& s = f.bus.stats().at(0x100);
  EXPECT_EQ(s.sent, 2u);
  EXPECT_GT(s.worst_latency, s.avg_latency() * 1.2);
}

TEST(Bus, FrameTimeMatchesBitCount) {
  BusFixture f;
  const CanFrame fr = frame(0x25, 3, 0x5A);
  EXPECT_EQ(f.bus.frame_time(fr),
            static_cast<SimTime>(exact_wire_bits(fr)) * 2'000);
}

TEST(Bus, UtilizationAccounting) {
  BusFixture f;
  for (int k = 0; k < 10; ++k) {
    f.bus.send(f.a, frame(0x100, 8));
  }
  f.q.run_until(10 * sim::kMillisecond);
  const double u = f.bus.utilization(10 * sim::kMillisecond);
  EXPECT_GT(u, 0.1);
  EXPECT_LE(u, 1.0);
}

}  // namespace
}  // namespace aces::can
