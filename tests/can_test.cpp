// CAN frame serialization and bus arbitration tests.
#include <gtest/gtest.h>

#include "can/bus.h"
#include "can/frame.h"
#include "support/rng.h"

namespace aces::can {
namespace {

using sim::SimTime;

CanFrame frame(std::uint32_t id, unsigned dlc, std::uint8_t fill = 0) {
  CanFrame f;
  f.id = id;
  f.dlc = dlc;
  f.data.fill(fill);
  return f;
}

TEST(Frame, StuffableBitCount) {
  // SOF + 11 id + RTR/IDE/r0 + 4 DLC + data + 15 CRC = 34 + 8*dlc.
  for (unsigned dlc = 0; dlc <= 8; ++dlc) {
    EXPECT_EQ(stuffable_bits(frame(0x123, dlc)).size(), 34u + 8 * dlc);
  }
}

TEST(Frame, Crc15KnownProperty) {
  // CRC of an all-zero sequence is zero; flipping any bit changes it.
  const std::vector<bool> zeros(34, false);
  EXPECT_EQ(crc15(zeros), 0);
  std::vector<bool> one = zeros;
  one[5] = true;
  EXPECT_NE(crc15(one), 0);
}

TEST(Frame, WorstCaseBoundsExactLength) {
  support::Rng256 rng(31);
  for (int k = 0; k < 500; ++k) {
    CanFrame f;
    f.id = static_cast<std::uint32_t>(rng.next_below(1u << 11));
    f.dlc = static_cast<unsigned>(rng.next_below(9));
    for (auto& b : f.data) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const unsigned exact = exact_wire_bits(f);
    const unsigned worst = worst_case_wire_bits(f.dlc);
    EXPECT_LE(exact, worst) << "id=" << f.id << " dlc=" << f.dlc;
    // And the frame always needs at least the unstuffed length.
    EXPECT_GE(exact, 34u + 8 * f.dlc + 13u);
  }
}

TEST(Frame, WorstCaseMatchesPublishedClosedForms) {
  // Tindell/Davis stuffed-length bounds, pinned for every dlc and both
  // identifier formats: standard 8n + 47 + floor((34 + 8n - 1) / 4),
  // extended 8n + 67 + floor((54 + 8n - 1) / 4).
  for (unsigned n = 0; n <= 8; ++n) {
    EXPECT_EQ(worst_case_wire_bits(n), 8 * n + 47 + (34 + 8 * n - 1) / 4);
    EXPECT_EQ(worst_case_wire_bits(n, false), worst_case_wire_bits(n));
    EXPECT_EQ(worst_case_wire_bits(n, true),
              8 * n + 67 + (54 + 8 * n - 1) / 4);
  }
  // Spot values: 135 bits for a full standard frame, 160 for extended.
  EXPECT_EQ(worst_case_wire_bits(8), 135u);
  EXPECT_EQ(worst_case_wire_bits(0), 55u);
  EXPECT_EQ(worst_case_wire_bits(8, true), 160u);
}

TEST(Frame, ExtendedAndRemoteStuffableRegionLengths) {
  for (unsigned dlc = 0; dlc <= 8; ++dlc) {
    CanFrame e;
    e.extended = true;
    e.id = 0x1ABC'DE01;
    e.dlc = dlc;
    EXPECT_EQ(stuffable_bits(e).size(), 54u + 8 * dlc);
    // Remote frames keep the DLC field but carry no data bytes.
    CanFrame r = frame(0x123, dlc);
    r.rtr = true;
    EXPECT_EQ(stuffable_bits(r).size(), 34u);
    e.rtr = true;
    EXPECT_EQ(stuffable_bits(e).size(), 54u);
  }
}

TEST(Frame, WorstCaseBoundsExactLengthAllFormats) {
  support::Rng256 rng(47);
  for (int k = 0; k < 500; ++k) {
    CanFrame f;
    f.extended = rng.chance(0.5);
    f.rtr = rng.chance(0.25);
    f.id = static_cast<std::uint32_t>(
        rng.next_below(1u << (f.extended ? 29 : 11)));
    f.dlc = static_cast<unsigned>(rng.next_below(9));
    for (auto& b : f.data) {
      b = static_cast<std::uint8_t>(rng.next_below(256));
    }
    const unsigned exact = exact_wire_bits(f);
    const unsigned worst = worst_case_wire_bits(f.dlc, f.extended);
    EXPECT_LE(exact, worst) << "id=" << f.id << " dlc=" << f.dlc
                            << " ext=" << f.extended << " rtr=" << f.rtr;
    // And at least the unstuffed length.
    const unsigned g =
        (f.extended ? 54u : 34u) + (f.rtr ? 0 : 8 * f.dlc);
    EXPECT_GE(exact, g + 13u);
  }
}

TEST(Frame, ArbitrationKeyMatchesWireDominance) {
  CanFrame s = frame(0x100, 4);
  CanFrame s_hi = frame(0x101, 4);
  EXPECT_LT(arbitration_key(s), arbitration_key(s_hi));
  // A standard frame beats the extended frame sharing its base id (the
  // standard RTR/IDE bits are dominant where extended sends SRR/IDE
  // recessive) ...
  CanFrame e;
  e.extended = true;
  e.id = (0x100u << 18) | 0x1234u;
  EXPECT_LT(arbitration_key(s), arbitration_key(e));
  // ... but an extended frame with a lower base id beats both.
  CanFrame e_lo = e;
  e_lo.id = (0x0FFu << 18) | 0x3FFFFu;
  EXPECT_LT(arbitration_key(e_lo), arbitration_key(s));
  // A data frame beats the same-identifier remote frame.
  CanFrame r = s;
  r.rtr = true;
  EXPECT_LT(arbitration_key(s), arbitration_key(r));
}

TEST(Frame, AllZeroPayloadMaximizesStuffing) {
  // Long runs of identical bits force a stuff bit every 4 data bits.
  const unsigned zero_bits = exact_wire_bits(frame(0, 8, 0x00));
  const unsigned alt_bits = exact_wire_bits(frame(0x555, 8, 0xAA));
  EXPECT_GT(zero_bits, alt_bits);
}

struct BusFixture {
  sim::EventQueue q;
  CanBus bus{q, 500'000};  // 500 kbit/s -> 2 us/bit
  NodeId a = bus.attach_node("a");
  NodeId b = bus.attach_node("b");
};

TEST(Bus, DeliversToOtherNodes) {
  BusFixture f;
  int received = 0;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime) {
    EXPECT_EQ(fr.id, 0x100u);
    ++received;
  });
  int self_received = 0;
  f.bus.subscribe(f.a, [&](const CanFrame&, SimTime) { ++self_received; });
  f.bus.send(f.a, frame(0x100, 4));
  f.q.run_until(sim::kSecond);
  EXPECT_EQ(received, 1);
  EXPECT_EQ(self_received, 0);  // transmitter does not hear itself
}

TEST(Bus, LowestIdWinsArbitration) {
  BusFixture f;
  std::vector<std::uint32_t> order;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime) {
    order.push_back(fr.id);
  });
  // Fill the bus, then enqueue contenders while busy.
  f.bus.send(f.a, frame(0x200, 8));
  f.q.schedule_at(10'000, [&] {
    f.bus.send(f.a, frame(0x300, 2));
    f.bus.send(f.a, frame(0x050, 2));  // should win despite arriving last
  });
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0x200u);
  EXPECT_EQ(order[1], 0x050u);
  EXPECT_EQ(order[2], 0x300u);
}

TEST(Bus, CrossNodeArbitration) {
  BusFixture f;
  const NodeId c = f.bus.attach_node("c");
  std::vector<std::uint32_t> order;
  f.bus.subscribe(c, [&](const CanFrame& fr, SimTime) {
    order.push_back(fr.id);
  });
  f.bus.send(f.a, frame(0x400, 1));
  // While busy: both nodes queue; b's lower id goes first.
  f.q.schedule_at(5'000, [&] {
    f.bus.send(f.a, frame(0x120, 1));
    f.bus.send(f.b, frame(0x110, 1));
  });
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], 0x110u);
  EXPECT_EQ(order[2], 0x120u);
}

TEST(Bus, TransmissionIsNonPreemptive) {
  BusFixture f;
  std::vector<std::pair<std::uint32_t, SimTime>> deliveries;
  f.bus.subscribe(f.b, [&](const CanFrame& fr, SimTime at) {
    deliveries.push_back({fr.id, at});
  });
  f.bus.send(f.a, frame(0x700, 8));  // low priority, long
  f.q.schedule_at(1'000, [&] { f.bus.send(f.a, frame(0x001, 0)); });
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(deliveries.size(), 2u);
  // The low-priority frame completes first (started already).
  EXPECT_EQ(deliveries[0].first, 0x700u);
  const SimTime long_frame_time = f.bus.frame_time(frame(0x700, 8));
  EXPECT_EQ(deliveries[0].second, long_frame_time);
}

TEST(Bus, LatencyStatsTracked) {
  BusFixture f;
  f.bus.send(f.a, frame(0x100, 8));
  f.bus.send(f.a, frame(0x100, 8));  // second one waits for the first
  f.q.run_until(sim::kSecond);
  const auto& s = f.bus.stats().at(0x100);
  EXPECT_EQ(s.sent, 2u);
  EXPECT_GT(s.worst_latency, s.avg_latency() * 1.2);
}

TEST(Bus, FrameTimeMatchesBitCount) {
  BusFixture f;
  const CanFrame fr = frame(0x25, 3, 0x5A);
  EXPECT_EQ(f.bus.frame_time(fr),
            static_cast<SimTime>(exact_wire_bits(fr)) * 2'000);
}

TEST(Bus, UtilizationAccounting) {
  BusFixture f;
  for (int k = 0; k < 10; ++k) {
    f.bus.send(f.a, frame(0x100, 8));
  }
  f.q.run_until(10 * sim::kMillisecond);
  const double u = f.bus.utilization(10 * sim::kMillisecond);
  EXPECT_GT(u, 0.1);
  EXPECT_LE(u, 1.0);
}

TEST(Bus, UtilizationIsProRatedMidFrame) {
  // Regression: busy time used to accrue in full at transmission start,
  // so a query while a frame was on the wire counted unsent bits and a
  // saturated bus could report >100%.
  BusFixture f;
  const CanFrame fr = frame(0x100, 8);
  const SimTime ft = f.bus.frame_time(fr);
  for (int k = 0; k < 4; ++k) {  // keep the bus saturated throughout
    f.bus.send(f.a, fr);
  }
  bool queried = false;
  f.q.schedule_at(ft / 2, [&] {  // halfway through the first frame
    queried = true;
    EXPECT_NEAR(f.bus.utilization(ft / 2), 1.0, 1e-9);
  });
  f.q.schedule_at(2 * ft + ft / 4, [&] {  // a quarter into the third
    EXPECT_NEAR(f.bus.utilization(2 * ft + ft / 4), 1.0, 1e-9);
  });
  f.q.run_until(sim::kSecond);
  EXPECT_TRUE(queried);
  // Fully drained: busy time equals exactly the four completed frames.
  EXPECT_NEAR(f.bus.utilization(4 * ft), 1.0, 1e-9);
  EXPECT_NEAR(f.bus.utilization(8 * ft), 0.5, 1e-9);
}

TEST(Bus, DuplicateIdentifierAcrossNodesIsDiagnosed) {
  // Two nodes presenting the same identifier in one arbitration round is
  // a CAN protocol violation (and voids the RTA's unique-priority
  // assumption); the bus resolves it deterministically but diagnoses it.
  BusFixture f;
  const NodeId c = f.bus.attach_node("c");
  std::vector<std::uint32_t> order;
  f.bus.subscribe(c, [&](const CanFrame& fr, SimTime) {
    order.push_back(fr.id);
  });
  f.bus.send(f.a, frame(0x080, 1));
  f.q.schedule_at(1'000, [&] {  // while the bus is busy
    f.bus.send(f.a, frame(0x200, 1));
    f.bus.send(f.b, frame(0x200, 2));
  });
  f.q.run_until(sim::kSecond);
  EXPECT_EQ(f.bus.fault_stats().duplicate_id_conflicts, 1u);
  EXPECT_EQ(f.bus.fault_stats().last_duplicate_id, 0x200u);
  // Deterministic resolution: the lower node index wins the first round.
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[1], 0x200u);
  EXPECT_EQ(order[2], 0x200u);
  // Distinct formats sharing a number are NOT duplicates on the wire:
  // queue a standard and an extended 0x300 while the bus is busy, so both
  // meet in the same arbitration round.
  f.bus.send(f.a, frame(0x080, 1));
  f.q.schedule_at(f.q.now() + 1'000, [&] {
    CanFrame e;
    e.extended = true;
    e.id = 0x300;
    f.bus.send(f.a, frame(0x300, 1));
    f.bus.send(f.b, e);
  });
  f.q.run_until(f.q.now() + sim::kSecond);
  EXPECT_EQ(f.bus.fault_stats().duplicate_id_conflicts, 1u);
}

TEST(Bus, StandardFrameBeatsExtendedSharingItsBase) {
  BusFixture f;
  const NodeId c = f.bus.attach_node("c");
  std::vector<bool> ext_order;
  f.bus.subscribe(c, [&](const CanFrame& fr, SimTime) {
    ext_order.push_back(fr.extended);
  });
  f.bus.send(f.a, frame(0x700, 1));  // occupy the wire
  f.q.schedule_at(1'000, [&] {
    CanFrame e;
    e.extended = true;
    e.id = 0x120u << 18;  // base 0x120, extension 0
    e.dlc = 1;
    f.bus.send(f.a, e);
    f.bus.send(f.b, frame(0x120, 1));  // same base, standard: wins
  });
  f.q.run_until(sim::kSecond);
  ASSERT_EQ(ext_order.size(), 3u);
  EXPECT_FALSE(ext_order[1]);
  EXPECT_TRUE(ext_order[2]);
}

}  // namespace
}  // namespace aces::can
