// KIR lowering tests.
//
// The central property: a KIR function lowered to W32, N16 and B32 produces
// bit-identical results to a host-side reference on randomized inputs —
// cross-encoding execution equivalence is exactly what makes the Table 1
// comparison meaningful.
#include <gtest/gtest.h>

#include <functional>

#include "cpu/profiles.h"
#include "cpu/system.h"
#include "kir/kir.h"
#include "kir/lower.h"
#include "support/bits.h"
#include "support/rng.h"

namespace aces::kir {
namespace {

using cpu::System;
using cpu::SystemBuilder;
using isa::Cond;
using isa::Encoding;

SystemBuilder config_for(Encoding e) {
  return cpu::profiles::for_encoding(e).flash_size(128 * 1024);
}

// Runs `f` on every encoding with the given args; checks each result
// against `expected`.
void expect_all_encodings(const KFunction& f,
                          std::initializer_list<std::uint32_t> args,
                          std::uint32_t expected, const char* what) {
  for (const Encoding e :
       {Encoding::w32, Encoding::n16, Encoding::b32}) {
    const LoweredProgram prog = lower_program({&f}, e, cpu::kFlashBase);
    System sys(config_for(e));
    sys.load(prog.image);
    const std::uint32_t got =
        sys.call(prog.entry_of(f.name()), args);
    EXPECT_EQ(got, expected)
        << what << " on " << isa::encoding_name(e) << " args{"
        << (args.size() > 0 ? *args.begin() : 0u) << ",...}";
  }
}

// ----- basic arithmetic -------------------------------------------------------

KFunction make_poly() {
  // f(a, b) = (a*3 + b) ^ (a >> 2) - b
  KFunction f("poly", 2);
  const VReg a = 0, b = 1;
  const VReg t1 = f.v(), t2 = f.v(), t3 = f.v();
  f.arith_imm(KOp::mul, t1, a, 3);
  f.arith(KOp::add, t1, t1, b);
  f.arith_imm(KOp::shr_u, t2, a, 2);
  f.arith(KOp::eor, t3, t1, t2);
  f.arith(KOp::sub, t3, t3, b);
  f.ret(t3);
  return f;
}

TEST(KirLowering, PolynomialMatchesReference) {
  const KFunction f = make_poly();
  support::Rng256 rng(42);
  for (int k = 0; k < 12; ++k) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    const std::uint32_t expected = ((a * 3 + b) ^ (a >> 2)) - b;
    expect_all_encodings(f, {a, b}, expected, "poly");
  }
}

TEST(KirLowering, LargeConstants) {
  // Forces every materialization strategy: pools on W32/N16, movw/movt on
  // B32, shifted imm8 on N16.
  KFunction f("consts", 1);
  const VReg a = 0;
  const VReg c1 = f.v(), c2 = f.v(), c3 = f.v();
  f.movi(c1, 0xDEADBEEF);
  f.movi(c2, 0x0003FC00);  // imm8 << 10 — N16 shifted form
  f.movi(c3, 255);
  f.arith(KOp::eor, c1, c1, a);
  f.arith(KOp::add, c1, c1, c2);
  f.arith(KOp::sub, c1, c1, c3);
  f.ret(c1);
  return expect_all_encodings(f, {0x12345678},
                              ((0xDEADBEEFu ^ 0x12345678u) + 0x0003FC00u) -
                                  255u,
                              "consts");
}

TEST(KirLowering, LoopSumOfSquares) {
  // f(n) = sum_{k=1..n} k*k  — loop with back edge, tests interval
  // extension around loops.
  KFunction f("sumsq", 1);
  const VReg n = 0;
  const VReg acc = f.v(), k = f.v(), sq = f.v();
  f.movi(acc, 0);
  f.movi(k, 0);
  const KLabel top = f.make_label();
  f.bind(top);
  f.arith_imm(KOp::add, k, k, 1);
  f.arith(KOp::mul, sq, k, k);
  f.arith(KOp::add, acc, acc, sq);
  f.brcc(Cond::ne, k, n, top);
  f.ret(acc);

  const auto reference = [](std::uint32_t n) {
    std::uint32_t acc = 0;
    for (std::uint32_t k = 1; k <= n; ++k) {
      acc += k * k;
    }
    return acc;
  };
  expect_all_encodings(f, {1}, reference(1), "sumsq");
  expect_all_encodings(f, {10}, reference(10), "sumsq");
  expect_all_encodings(f, {100}, reference(100), "sumsq");
}

// ----- memory -------------------------------------------------------------------

TEST(KirLowering, MemoryFillamdSum) {
  // f(base, n): writes k*3+1 bytes then sums halfwords.
  KFunction f("memfill", 2);
  const VReg base = 0, n = 1;
  const VReg k = f.v(), val = f.v(), acc = f.v(), addr = f.v();
  f.movi(k, 0);
  f.mov(addr, base);
  const KLabel wtop = f.make_label();
  f.bind(wtop);
  f.arith_imm(KOp::mul, val, k, 3);
  f.arith_imm(KOp::add, val, val, 1);
  f.storex(val, base, k, Width::w8);
  f.arith_imm(KOp::add, k, k, 1);
  f.brcc(Cond::ne, k, n, wtop);
  // Sum as unsigned bytes via loads.
  f.movi(acc, 0);
  f.movi(k, 0);
  const KLabel rtop = f.make_label();
  f.bind(rtop);
  const VReg b = f.v();
  f.loadx(b, base, k, Width::w8);
  f.arith(KOp::add, acc, acc, b);
  f.arith_imm(KOp::add, k, k, 1);
  f.brcc(Cond::ne, k, n, rtop);
  f.ret(acc);

  const std::uint32_t count = 40;
  std::uint32_t expected = 0;
  for (std::uint32_t k = 0; k < count; ++k) {
    expected += static_cast<std::uint8_t>(k * 3 + 1);
  }
  expect_all_encodings(f, {cpu::kSramBase + 0x100, count}, expected,
                       "memfill");
}

TEST(KirLowering, SignedSubwordLoads) {
  KFunction f("sload", 1);
  const VReg base = 0;
  const VReg v1 = f.v(), v2 = f.v();
  const VReg c = f.v();
  f.movi(c, 0x80);  // will read back as -128 signed byte
  f.store(c, base, 0, Width::w8);
  f.movi(c, 0x8000);
  f.store(c, base, 2, Width::w16);
  f.load(v1, base, 0, Width::w8, /*sign=*/true);
  f.load(v2, base, 2, Width::w16, /*sign=*/true);
  f.arith(KOp::add, v1, v1, v2);
  f.ret(v1);
  const std::uint32_t expected =
      static_cast<std::uint32_t>(-128 + -32768);
  expect_all_encodings(f, {cpu::kSramBase + 0x40}, expected, "sload");
}

// ----- division -------------------------------------------------------------------

TEST(KirLowering, UnsignedDivide) {
  KFunction f("udivf", 2);
  const VReg q = f.v();
  f.arith(KOp::udiv, q, 0, 1);
  f.ret(q);
  expect_all_encodings(f, {100, 7}, 14, "udiv");
  expect_all_encodings(f, {0xFFFFFFFF, 3}, 0xFFFFFFFFu / 3u, "udiv");
  expect_all_encodings(f, {5, 100}, 0, "udiv");
  expect_all_encodings(f, {42, 1}, 42, "udiv");
  expect_all_encodings(f, {42, 0}, 0, "udiv by zero");
}

TEST(KirLowering, SignedDivide) {
  KFunction f("sdivf", 2);
  const VReg q = f.v();
  f.arith(KOp::sdiv, q, 0, 1);
  f.ret(q);
  expect_all_encodings(f, {100, 7}, 14, "sdiv");
  expect_all_encodings(f, {static_cast<std::uint32_t>(-100), 7},
                       static_cast<std::uint32_t>(-14), "sdiv");
  expect_all_encodings(f, {100, static_cast<std::uint32_t>(-7)},
                       static_cast<std::uint32_t>(-14), "sdiv");
  expect_all_encodings(f, {static_cast<std::uint32_t>(-100),
                           static_cast<std::uint32_t>(-7)},
                       14, "sdiv");
  expect_all_encodings(f, {7, 0}, 0, "sdiv by zero");
  expect_all_encodings(f, {0x80000000u, static_cast<std::uint32_t>(-1)},
                       0x80000000u, "sdiv INT_MIN/-1");
}

TEST(KirLowering, DividePreservesOtherValues) {
  // A value live across the helper call must survive r0-r3 clobbering.
  KFunction f("divlive", 2);
  const VReg a = 0, b = 1;
  const VReg keep = f.v(), q = f.v();
  f.arith_imm(KOp::mul, keep, a, 5);  // live across the call
  f.arith(KOp::udiv, q, a, b);
  f.arith(KOp::add, q, q, keep);
  f.ret(q);
  expect_all_encodings(f, {100, 10}, 100 / 10 + 500, "divlive");
}

// ----- bitfield / bit ops -----------------------------------------------------------

TEST(KirLowering, BitfieldExtractInsert) {
  KFunction f("bits", 2);
  const VReg a = 0, b = 1;
  const VReg x = f.v(), y = f.v();
  f.bfx(x, a, 4, 8);           // x = a[11:4]
  f.bfx(y, a, 16, 4, true);    // y = sext(a[19:16])
  f.arith(KOp::add, x, x, y);
  f.mov(y, b);
  f.bfi(y, x, 8, 12);          // y[19:8] = x
  f.ret(y);

  const auto reference = [](std::uint32_t a, std::uint32_t b) {
    const std::uint32_t x0 = (a >> 4) & 0xFF;
    const std::int32_t y0 =
        static_cast<std::int32_t>((a >> 16) & 0xF) << 28 >> 28;
    const std::uint32_t x = x0 + static_cast<std::uint32_t>(y0);
    return (b & ~0x000FFF00u) | ((x & 0xFFF) << 8);
  };
  support::Rng256 rng(7);
  for (int k = 0; k < 8; ++k) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    expect_all_encodings(f, {a, b}, reference(a, b), "bits");
  }
}

TEST(KirLowering, BitReverse) {
  KFunction f("brev", 1);
  const VReg r = f.v();
  f.unary(KOp::bit_rev, r, 0);
  f.ret(r);
  support::Rng256 rng(9);
  for (int k = 0; k < 6; ++k) {
    const std::uint32_t a = rng.next_u32();
    expect_all_encodings(f, {a}, support::reverse_bits(a), "brev");
  }
}

TEST(KirLowering, ByteReverse) {
  KFunction f("rev", 1);
  const VReg r = f.v();
  f.unary(KOp::byte_rev, r, 0);
  f.ret(r);
  expect_all_encodings(f, {0x12345678}, 0x78563412u, "rev");
  expect_all_encodings(f, {0xFF0000AA}, 0xAA0000FFu, "rev");
}

TEST(KirLowering, CountLeadingZeros) {
  KFunction f("clzf", 1);
  const VReg r = f.v();
  f.unary(KOp::clz, r, 0);
  f.ret(r);
  expect_all_encodings(f, {0}, 32, "clz(0)");
  expect_all_encodings(f, {1}, 31, "clz(1)");
  expect_all_encodings(f, {0x80000000u}, 0, "clz(msb)");
  expect_all_encodings(f, {0x00010000u}, 15, "clz");
  support::Rng256 rng(21);
  for (int k = 0; k < 6; ++k) {
    const std::uint32_t a = rng.next_u32();
    expect_all_encodings(f, {a}, support::count_leading_zeros(a), "clz");
  }
}

TEST(KirLowering, Extensions) {
  KFunction f("ext", 1);
  const VReg a = 0;
  const VReg s8 = f.v(), u16 = f.v();
  f.unary(KOp::ext_s8, s8, a);
  f.unary(KOp::ext_u16, u16, a);
  f.arith(KOp::eor, s8, s8, u16);
  f.ret(s8);
  const auto reference = [](std::uint32_t a) {
    const auto se = static_cast<std::uint32_t>(
        static_cast<std::int32_t>(static_cast<std::int8_t>(a & 0xFF)));
    return se ^ (a & 0xFFFF);
  };
  expect_all_encodings(f, {0x1234F688}, reference(0x1234F688), "ext");
  expect_all_encodings(f, {0x00000077}, reference(0x77), "ext");
}

// ----- select --------------------------------------------------------------------

TEST(KirLowering, SelectMinMaxClamp) {
  // f(a, b) = clamp(a, 10, 100) + max(a, b) with signed compares.
  KFunction f("clampmax", 2);
  const VReg a = 0, b = 1;
  const VReg lo = f.v(), hi = f.v(), c = f.v(), m = f.v();
  f.movi(lo, 10);
  f.movi(hi, 100);
  f.select(c, Cond::lt, a, lo, lo, a);    // c = a < 10 ? 10 : a
  f.select(c, Cond::gt, c, hi, hi, c);    // c = c > 100 ? 100 : c
  f.select(m, Cond::ge, a, b, a, b);      // m = max(a, b)
  f.arith(KOp::add, c, c, m);
  f.ret(c);

  const auto reference = [](std::int32_t a, std::int32_t b) {
    const std::int32_t c = a < 10 ? 10 : (a > 100 ? 100 : a);
    return static_cast<std::uint32_t>(c + std::max(a, b));
  };
  for (const std::int32_t a : {-50, 0, 10, 55, 100, 1000}) {
    for (const std::int32_t b : {-10, 60, 2000}) {
      expect_all_encodings(f,
                           {static_cast<std::uint32_t>(a),
                            static_cast<std::uint32_t>(b)},
                           reference(a, b), "clampmax");
    }
  }
}

// ----- register pressure / spilling ----------------------------------------------

TEST(KirLowering, SpillsUnderPressure) {
  // 12 simultaneously-live values force spills on N16 (6 allocatable) and
  // exercise the spill machinery everywhere.
  KFunction f("pressure", 2);
  const VReg a = 0, b = 1;
  std::vector<VReg> vals;
  for (int k = 0; k < 12; ++k) {
    const VReg v = f.v();
    f.arith_imm(KOp::add, v, a, k * 7 + 1);
    f.arith(KOp::eor, v, v, b);
    vals.push_back(v);
  }
  VReg acc = f.v();
  f.movi(acc, 0);
  for (const VReg v : vals) {
    f.arith(KOp::add, acc, acc, v);
  }
  f.ret(acc);

  const auto reference = [](std::uint32_t a, std::uint32_t b) {
    std::uint32_t acc = 0;
    for (int k = 0; k < 12; ++k) {
      acc += (a + static_cast<std::uint32_t>(k * 7 + 1)) ^ b;
    }
    return acc;
  };
  support::Rng256 rng(5);
  for (int k = 0; k < 8; ++k) {
    const std::uint32_t a = rng.next_u32();
    const std::uint32_t b = rng.next_u32();
    expect_all_encodings(f, {a, b}, reference(a, b), "pressure");
  }
}

TEST(KirLowering, MlaForms) {
  KFunction f("mlaf", 3);
  const VReg r = f.v();
  f.mla(r, 0, 1, 2);
  f.ret(r);
  expect_all_encodings(f, {7, 9, 100}, 7 * 9 + 100, "mla");
}

// ----- density property (the Table 1 precondition) --------------------------------

TEST(KirLowering, DensityOrdering) {
  // For every kernel here: N16 and B32 images must be substantially
  // smaller than W32 (paper: ~55-60%, allow generous margins).
  for (const KFunction& f :
       {make_poly()}) {
    const auto w = lower_program({&f}, Encoding::w32, 0).code_bytes;
    const auto n = lower_program({&f}, Encoding::n16, 0).code_bytes;
    const auto b = lower_program({&f}, Encoding::b32, 0).code_bytes;
    EXPECT_LT(n, w) << f.name();
    EXPECT_LT(b, w) << f.name();
  }
}

TEST(KirLowering, AblationTogglesChangeCode) {
  // Disabling movw/movt must reintroduce literal pools (bigger or equal
  // code, more data accesses at run time).
  KFunction f("consts2", 0);
  const VReg c = f.v(), d = f.v();
  f.movi(c, 0xCAFEBABE);
  f.movi(d, 0x12345678);
  f.arith(KOp::eor, c, c, d);
  f.ret(c);

  LoweringOptions with = LoweringOptions::for_encoding(Encoding::b32);
  LoweringOptions without = with;
  without.use_movw_movt = false;
  const auto a = lower_program({&f}, Encoding::b32, with, 0);
  const auto b = lower_program({&f}, Encoding::b32, without, 0);
  // Both run correctly.
  for (const auto* prog : {&a, &b}) {
    System sys(config_for(Encoding::b32));
    sys.load(prog->image);
    EXPECT_EQ(sys.call(prog->entry_of("consts2")),
              0xCAFEBABEu ^ 0x12345678u);
  }
}

}  // namespace
}  // namespace aces::kir
