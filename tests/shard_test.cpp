// Sharded co-simulation tests: the ShardedSimulation epoch machinery
// (adaptive boundaries, deterministic cross-shard merge, watchdog
// propagation), the NetworkBuilder partitioning pass (gateway-bounded
// shards, lookahead derivation, zero-latency collapse), and the contract
// the whole PR rests on — double runs are bit-identical at any thread
// count, and a sharded model-fidelity network reproduces the single-shard
// run exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "net/network.h"
#include "sim/sharded.h"

namespace aces::sim {
namespace {

using aces::net::BusId;
using aces::net::GatewayId;
using aces::net::ModelTask;
using aces::net::NetworkBuilder;

// ----- coordinator-level: epochs, merge order, determinism -------------------

TEST(ShardedSimulation, SingleShardIsThePlainScheduler) {
  ShardedSimulation sim;
  Shard& s = sim.add_shard();
  std::vector<SimTime> fired;
  s.schedule_at(10, [&] { fired.push_back(s.now()); });
  s.schedule_at(30, [&] { fired.push_back(s.now()); });
  sim.run_until(100);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 30}));
  EXPECT_EQ(sim.now(), 100);
  EXPECT_EQ(sim.epochs(), 0u);  // short-circuited, no epoch machinery
}

TEST(ShardedSimulation, CrossShardEventLandsAtItsExactTimestamp) {
  ShardedSimulation sim;
  Shard& a = sim.add_shard();
  Shard& b = sim.add_shard();
  sim.set_lookahead(100);
  sim.set_threads(1);
  std::vector<SimTime> arrivals;
  // Posted mid-epoch from a's loop: crosses at least one boundary, must
  // still fire on b at exactly t=500 (the stamp, not the boundary).
  a.schedule_at(17, [&] {
    Shard::current()->post_cross(b, 500, [&] { arrivals.push_back(b.now()); });
  });
  sim.run_until(1000);
  EXPECT_EQ(arrivals, (std::vector<SimTime>{500}));
}

TEST(ShardedSimulation, SameInstantCrossShardArrivalsMergeInShardOrder) {
  // Three source shards all post to shard 0 at the same instant; the
  // merge order must be (timestamp, source shard, post order) — FIFO
  // sequence numbers on the destination queue — at every thread count.
  for (const unsigned threads : {1u, 2u, 4u}) {
    ShardedSimulation sim;
    Shard& dst = sim.add_shard();
    std::vector<Shard*> src;
    for (int k = 0; k < 3; ++k) {
      src.push_back(&sim.add_shard());
    }
    sim.set_lookahead(50);
    sim.set_threads(threads);
    std::vector<int> order;
    for (int k = 0; k < 3; ++k) {
      Shard* s = src[static_cast<std::size_t>(k)];
      s->schedule_at(10, [&, s, k] {
        // Two posts per shard, same timestamp: post order is the tie-break.
        Shard::current()->post_cross(dst, 200,
                                     [&order, k] { order.push_back(2 * k); });
        Shard::current()->post_cross(
            dst, 200, [&order, k] { order.push_back(2 * k + 1); });
      });
    }
    sim.run_until(400);
    // Source shards 1..3 in index order, each shard's two posts in post
    // order: {0,1} then {2,3} then {4,5}.
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5}))
        << "threads=" << threads;
    EXPECT_EQ(dst.now(), 400);
  }
}

TEST(ShardedSimulation, PostCrossBelowTheLookaheadContractThrows) {
  ShardedSimulation sim;
  Shard& a = sim.add_shard();
  Shard& b = sim.add_shard();
  sim.set_lookahead(100);
  sim.set_threads(1);
  bool threw = false;
  a.schedule_at(10, [&] {
    try {
      Shard::current()->post_cross(b, 11, [] {});  // 11 < epoch end
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  sim.run_until(1000);
  EXPECT_TRUE(threw);
}

TEST(ShardedSimulation, IdleShardsJumpInFewEpochs) {
  ShardedSimulation sim;
  Shard& a = sim.add_shard();
  sim.add_shard();
  sim.set_lookahead(10);  // tiny lookahead, huge horizon
  sim.set_threads(1);
  int fired = 0;
  a.schedule_at(1'000'000, [&] { ++fired; });
  sim.run_until(100'000'000);
  EXPECT_EQ(fired, 1);
  // Adaptive epochs: one hop to the event, one tail hop — not 10^7 ticks.
  EXPECT_LE(sim.epochs(), 4u);
}

TEST(ShardedSimulation, RelaxedPostRunsAtTheNextBoundary) {
  ShardedSimulation sim;
  Shard& a = sim.add_shard();
  Shard& b = sim.add_shard();
  sim.set_lookahead(100);
  sim.set_threads(1);
  SimTime applied_at = -1;
  a.schedule_at(10, [&] {
    run_on(b, [&] { applied_at = b.now(); });
  });
  sim.run_until(1000);
  // Bounded lateness: after the posting instant, at most one epoch later.
  EXPECT_GE(applied_at, 10);
  EXPECT_LE(applied_at, 10 + 100);
}

TEST(ShardedSimulation, DoubleRunsAreIdenticalAcrossThreadCounts) {
  // A ping-pong workload: every arrival posts back to the peer shard at
  // +lookahead, two independent chains plus same-instant collisions.
  // The full arrival trace (shard, time, tag) must be identical at every
  // thread count.
  using Trace = std::vector<std::tuple<int, SimTime, int>>;
  const auto run = [](unsigned threads) {
    ShardedSimulation sim;
    Shard& a = sim.add_shard();
    Shard& b = sim.add_shard();
    sim.set_lookahead(100);
    sim.set_threads(threads);
    auto trace = std::make_shared<Trace>();
    std::function<void(Shard&, Shard&, int)> bounce =
        [&bounce, trace](Shard& here, Shard& peer, int tag) {
          trace->emplace_back(static_cast<int>(here.index()), here.now(), tag);
          if (here.now() < 2000) {
            Shard::current()->post_cross(
                peer, here.now() + 100,
                [&peer, &here, tag, &bounce] { bounce(peer, here, tag); });
          }
        };
    a.schedule_at(0, [&] { bounce(a, b, 1); });
    a.schedule_at(0, [&] { bounce(a, b, 2); });
    b.schedule_at(50, [&] { bounce(b, a, 3); });
    sim.run_until(3000);
    Trace out = *trace;
    return out;
  };
  const Trace t1 = run(1);
  const Trace t2 = run(2);
  const Trace t4 = run(4);
  EXPECT_FALSE(t1.empty());
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
}

TEST(ShardedSimulation, WatchdogTripsOnTheGlobalCountAcrossShards) {
  for (const unsigned threads : {1u, 2u}) {
    ShardedSimulation sim;
    Shard& a = sim.add_shard();
    Shard& b = sim.add_shard();
    sim.set_lookahead(100);
    sim.set_threads(threads);
    // Shard a livelocks at t=10: same-instant self-rescheduling chain
    // that never advances time. Only the watchdog can stop the run.
    // The chain captures a raw pointer to the function (a self-owning
    // shared_ptr would be a leak cycle); the local keeps it alive.
    auto spin = std::make_shared<std::function<void()>>();
    *spin = [&a, raw = spin.get()] { a.schedule_in(0, *raw); };
    a.schedule_at(10, [spin] { (*spin)(); });
    int b_fired = 0;
    b.schedule_at(5, [&] { ++b_fired; });
    sim.set_watchdog([](std::uint64_t events) { return events >= 50'000; });
    sim.run_until(kSecond);
    EXPECT_TRUE(sim.watchdog_tripped());
    EXPECT_EQ(b_fired, 1);  // the healthy shard ran its pre-trip work
    EXPECT_LT(sim.now(), kSecond);
    // Tripped latch: further runs are frozen until a new watchdog.
    const SimTime frozen = sim.now();
    sim.run_until(kSecond);
    EXPECT_EQ(sim.now(), frozen);
  }
}

// ----- partitioning pass ------------------------------------------------------

net::GatewayConfig gw_cfg(SimTime latency) {
  net::GatewayConfig gc;
  gc.forwarding_latency = latency;
  return gc;
}

TEST(NetworkSharding, GatewayBoundedPartitionAndLookahead) {
  NetworkBuilder nb;
  const BusId pt = nb.bus("powertrain", 500'000);
  const BusId body = nb.bus("body", 125'000);
  const BusId diag = nb.bus("diag", 250'000);
  const GatewayId gw = nb.gateway("central", gw_cfg(200 * kMicrosecond));
  nb.route(gw, {pt, body, 0x100, 0x7FF, {}});
  nb.route(gw, {body, diag, 0x200, 0x7FF, {}});
  net::Network net = nb.build();
  // Three buses, gateway-bounded edges only: one shard per bus, the
  // uniform forwarding latency is the lookahead.
  EXPECT_EQ(net.shard_count(), 3u);
  EXPECT_EQ(net.lookahead(), 200 * kMicrosecond);
  // Distinct buses, distinct shards.
  EXPECT_NE(&net.shard(pt), &net.shard(body));
  EXPECT_NE(&net.shard(body), &net.shard(diag));
}

TEST(NetworkSharding, ZeroLatencyGatewayMergesItsBuses) {
  NetworkBuilder nb;
  const BusId a = nb.bus("a", 500'000);
  const BusId b = nb.bus("b", 500'000);
  const GatewayId gw = nb.gateway("gw", gw_cfg(0));
  nb.route(gw, {a, b, 0x100, 0x7FF, {}});
  net::Network net = nb.build();
  // Zero lookahead cannot shard: both buses collapse onto one shard and
  // the network runs the pre-sharding single-shard path.
  EXPECT_EQ(net.shard_count(), 1u);
  EXPECT_EQ(&net.shard(a), &net.shard(b));
}

TEST(NetworkSharding, MixedPerRouteLatenciesMergeTheDirection) {
  NetworkBuilder nb;
  const BusId a = nb.bus("a", 500'000);
  const BusId b = nb.bus("b", 500'000, 2'000'000);
  const GatewayId gw = nb.gateway("gw", gw_cfg(100 * kMicrosecond));
  nb.route(gw, {a, b, 0x100, 0x7FF, {}});
  net::PackedRoute pr;
  pr.from = a;
  pr.to = b;
  pr.table = {{0x10, 0, 4}};
  pr.trigger_id = 0x10;
  pr.egress_id = 0x200;
  pr.egress_fd = true;
  pr.egress_dlc = 9;
  pr.latency = 40 * kMicrosecond;  // second distinct latency a -> b
  nb.packed_route(gw, pr);
  net::Network net = nb.build();
  // Two distinct latencies on one directed pair would break the egress
  // admission replay; the partitioner merges those buses instead.
  EXPECT_EQ(net.shard_count(), 1u);
}

TEST(NetworkSharding, ShardCapMergesTightestCoupledFirst) {
  NetworkBuilder nb;
  const BusId a = nb.bus("a", 500'000);
  const BusId b = nb.bus("b", 500'000);
  const BusId c = nb.bus("c", 500'000);
  const GatewayId g1 = nb.gateway("g1", gw_cfg(50 * kMicrosecond));
  const GatewayId g2 = nb.gateway("g2", gw_cfg(500 * kMicrosecond));
  nb.route(g1, {a, b, 0x100, 0x7FF, {}});  // tight coupling a -- b
  nb.route(g2, {b, c, 0x200, 0x7FF, {}});  // loose coupling b -- c
  nb.shards(2);
  net::Network net = nb.build();
  // The cap merges the 50us edge away; the 500us edge survives and its
  // latency becomes the (larger) lookahead.
  EXPECT_EQ(net.shard_count(), 2u);
  EXPECT_EQ(&net.shard(a), &net.shard(b));
  EXPECT_NE(&net.shard(b), &net.shard(c));
  EXPECT_EQ(net.lookahead(), 500 * kMicrosecond);
}

// ----- net-level determinism: sharded == single-shard ------------------------

// A three-bus kernel-model vehicle: periodic senders on two buses, a
// central gateway routing both directions, RX-activated consumers.
// Model-fidelity networks are pure event-driven, so the sharded run must
// reproduce the single-shard run EXACTLY (same frames, same instants).
NetworkBuilder vehicle_topology() {
  NetworkBuilder nb;
  const BusId pt = nb.bus("powertrain", 500'000);
  const BusId body = nb.bus("body", 125'000);
  const BusId diag = nb.bus("diag", 250'000);
  const GatewayId gw = nb.gateway("central", gw_cfg(200 * kMicrosecond));
  nb.route(gw, {pt, body, 0x100, 0x700, {}});
  nb.route(gw, {body, pt, 0x300, 0x700, {}});
  nb.route(gw, {pt, diag, 0x100, 0x700, {}});

  ModelTask speed;
  speed.name = "speed";
  speed.priority = 5;
  speed.exec = 200 * kMicrosecond;
  speed.period = 5 * kMillisecond;
  speed.deadline = 5 * kMillisecond;
  can::CanFrame speed_tx;
  speed_tx.id = 0x120;
  speed_tx.dlc = 8;
  speed.tx = speed_tx;
  nb.ecu(pt, "engine", {speed});

  ModelTask door;
  door.name = "door";
  door.priority = 4;
  door.exec = 300 * kMicrosecond;
  door.period = 10 * kMillisecond;
  door.deadline = 10 * kMillisecond;
  can::CanFrame door_tx;
  door_tx.id = 0x320;
  door_tx.dlc = 4;
  door.tx = door_tx;
  nb.ecu(body, "door", {door});
  return nb;
}

struct RunSignature {
  std::uint64_t frames = 0;
  std::uint64_t latency_hash = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t delivered = 0;

  bool operator==(const RunSignature& o) const {
    return frames == o.frames && latency_hash == o.latency_hash &&
           forwarded == o.forwarded && delivered == o.delivered;
  }
};

RunSignature run_vehicle(NetworkBuilder nb, unsigned threads) {
  nb.threads(threads);
  net::Network net = nb.build();
  RunSignature sig;
  // Observe every delivery on every bus: id and exact end-of-frame time
  // folded into an order-independent-but-exact hash (sum of products).
  // Accumulate per bus: each bus lives on one shard, so its callbacks are
  // sequential, but different buses fire on different worker threads — a
  // shared accumulator would be a data race. Folded after the run.
  struct BusAcc {
    std::uint64_t frames = 0;
    std::uint64_t hash = 0;
  };
  std::vector<BusAcc> acc(net.bus_count());
  for (std::size_t b = 0; b < net.bus_count(); ++b) {
    const auto id = static_cast<BusId>(b);
    const can::NodeId probe = net.bus(id).attach_node("probe");
    net.bus(id).subscribe(probe,
                          [a = &acc[b]](const can::CanFrame& f, SimTime at) {
                            ++a->frames;
                            a->hash +=
                                (static_cast<std::uint64_t>(f.id) + 1) *
                                static_cast<std::uint64_t>(at);
                          });
  }
  net.run_until(400 * kMillisecond);
  for (const BusAcc& a : acc) {
    sig.frames += a.frames;
    sig.latency_hash += a.hash;
  }
  sig.forwarded = net.gateway(0).stats().frames_forwarded;
  sig.delivered = net.gateway(0).stats().frames_delivered;
  return sig;
}

TEST(NetworkSharding, ShardedVehicleReproducesTheSingleShardRun) {
  NetworkBuilder sharded = vehicle_topology();
  NetworkBuilder single = vehicle_topology();
  single.shards(1);
  {
    net::Network probe = vehicle_topology().build();
    ASSERT_EQ(probe.shard_count(), 3u);  // the sharded build really shards
  }
  const RunSignature base = run_vehicle(single, 1);
  EXPECT_GT(base.frames, 0u);
  EXPECT_GT(base.forwarded, 0u);
  // 1-vs-N shards and 1-vs-N threads: all identical to the serial run.
  EXPECT_EQ(run_vehicle(sharded, 1), base);
  EXPECT_EQ(run_vehicle(sharded, 2), base);
  EXPECT_EQ(run_vehicle(sharded, 4), base);
}

TEST(NetworkSharding, ZonalFlexrayTopologyIsShardCountInvariant) {
  // CAN zone -> translating gateway -> FlexRay backbone -> gateway -> CAN
  // zone: the cross-fabric path of the zonal example, here pinned to be
  // identical between the single-shard and sharded builds.
  const auto topology = [] {
    NetworkBuilder nb;
    const BusId zone_f = nb.bus("zone_front", 500'000);
    const BusId zone_r = nb.bus("zone_rear", 500'000);
    net::FlexrayFabricConfig fc;
    fc.static_cfg.cycle_length = kMillisecond;
    fc.static_cfg.static_slots = 1;
    fc.static_cfg.slot_length = 50 * kMicrosecond;
    fc.minislots = 40;  // dynamic slot id 30 is reachable within a cycle
    fc.minislot = 20 * kMicrosecond;
    const BusId bb = nb.flexray("backbone", fc);
    const GatewayId gf = nb.gateway("gw_front", gw_cfg(100 * kMicrosecond));
    const GatewayId gr = nb.gateway("gw_rear", gw_cfg(100 * kMicrosecond));
    net::PackedRoute pr;
    pr.from = zone_f;
    pr.to = bb;
    pr.table = {{0x10, 0, 4}, {0x11, 4, 4}};
    pr.trigger_id = 0x11;
    nb.packed_route_flexray(gf, pr, "agg", 30);
    net::UnpackRoute ur;
    ur.from = bb;
    ur.to = zone_r;
    ur.table = {{0x20, false, 4, 0}, {0x21, false, 4, 4}};
    nb.unpack_route_flexray(gr, ur, 30);

    ModelTask sensor;
    sensor.name = "sensor";
    sensor.priority = 5;
    sensor.exec = 100 * kMicrosecond;
    sensor.period = 5 * kMillisecond;
    sensor.deadline = 5 * kMillisecond;
    can::CanFrame sensor_tx;
    sensor_tx.id = 0x10;
    sensor_tx.dlc = 4;
    sensor.tx = sensor_tx;
    ModelTask trigger = sensor;
    trigger.name = "trigger";
    trigger.priority = 4;
    can::CanFrame trigger_tx;
    trigger_tx.id = 0x11;
    trigger_tx.dlc = 4;
    trigger.tx = trigger_tx;
    nb.ecu(zone_f, "front_sensors", {sensor, trigger});
    return nb;
  };
  const auto run = [&](bool single_shard, unsigned threads) {
    NetworkBuilder nb = topology();
    if (single_shard) {
      nb.shards(1);
    }
    nb.threads(threads);
    net::Network net = nb.build();
    std::uint64_t frames = 0, hash = 0;
    const can::NodeId probe = net.bus(1).attach_node("probe");
    net.bus(1).subscribe(probe, [&](const can::CanFrame& f, SimTime at) {
      ++frames;
      hash += (static_cast<std::uint64_t>(f.id) + 1) *
              static_cast<std::uint64_t>(at);
    });
    net.run_until(200 * kMillisecond);
    return std::pair<std::uint64_t, std::uint64_t>(frames, hash);
  };
  {
    net::Network probe = topology().build();
    ASSERT_EQ(probe.shard_count(), 3u);
  }
  const auto base = run(true, 1);
  EXPECT_GT(base.first, 0u);
  EXPECT_EQ(run(false, 1), base);
  EXPECT_EQ(run(false, 2), base);
}

TEST(NetworkSharding, WatchdogTripPropagatesAcrossNetworkShards) {
  NetworkBuilder nb = vehicle_topology();
  net::Network net = nb.build();
  ASSERT_GT(net.shard_count(), 1u);
  // Livelock one shard's queue mid-run; the global watchdog must stop
  // every shard, and the trip must be visible at the network surface.
  sim::Simulation& victim = net.shard(0);
  auto spin = std::make_shared<std::function<void()>>();
  *spin = [&victim, raw = spin.get()] { victim.schedule_in(0, *raw); };
  victim.schedule_at(20 * kMillisecond, [spin] { (*spin)(); });
  net.simulation().set_watchdog(
      [](std::uint64_t events) { return events >= 100'000; });
  net.run_until(kSecond);
  EXPECT_TRUE(net.simulation().watchdog_tripped());
  EXPECT_LT(net.now(), kSecond);
}

}  // namespace
}  // namespace aces::sim
