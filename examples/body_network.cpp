// Body-control network: the paper's §1/§3.2 distributed vision in one
// executable — mixed-fidelity, now declared with net::NetworkBuilder.
//
// Four ECUs share one 125 kbps CAN bus under one co-simulation time base:
//
//   gateway   (kernel model)  consolidates body state, issues lock
//                             commands every 20 ms
//   climate   (kernel model)  temperature regulation, broadcasts state
//   door      (guest code)    modern-MCU ISS @ 8 MHz; a compiled ISR
//                             executes each lock command and answers with
//                             a door-status frame
//   seat      (guest code)    modern-MCU ISS @ 16 MHz; a compiled ISR
//                             tracks door status and publishes seat
//                             position on every 2nd update
//
// The two guest ECUs run real interrupt handlers on the instruction-set
// simulator; between frames they sleep in WFI, so the scheduler
// fast-forwards them at zero host cost. The kernel-model ECUs stay
// abstract workload models. Both fidelities attach through the same
// NetworkBuilder::ecu() call — the whole vehicle is one declarative
// description materialized by build(), which is the engineering basis for
// treating "the distributed network of processors ... as a single compute
// resource". (examples/vehicle_network.cpp scales the same description to
// 24 ECUs on three gateway-bridged buses.)
//
//   $ ./examples/body_network
#include <cstdio>

#include "can/bus.h"
#include "can/controller.h"
#include "cpu/profiles.h"
#include "guest_util.h"
#include "isa/assembler.h"
#include "net/network.h"
#include "sched/can_rta.h"

using namespace aces;
using namespace aces::isa;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;
using Ctl = can::CanController;

namespace {

constexpr std::uint32_t kLockCmdId = 0x0F0;     // gateway -> door
constexpr std::uint32_t kDoorStatusId = 0x110;  // door -> bus
constexpr std::uint32_t kSeatPosId = 0x180;     // seat -> bus
constexpr std::uint32_t kClimateId = 0x300;     // climate -> bus

constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;  // serviced frames
constexpr std::uint32_t kLastData = cpu::kSramBase + 0x104;
constexpr unsigned kRxLine = 1;

// A guest ECU program: WFI main loop; the shared relay ISR services
// matching frames and replies with the running count (see guest_util.h).
net::GuestProgram relay_program(std::uint32_t match_id,
                                std::uint32_t reply_id,
                                std::uint32_t reply_mask) {
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = examples::emit_idle_loop(a, /*wfi=*/true);
  const Label isr =
      examples::emit_relay_isr(a, match_id, reply_id, reply_mask, kCount);
  net::GuestProgram p;
  p.image = a.assemble();
  p.entry = a.label_address(entry);
  p.handlers.push_back({kRxLine, a.label_address(isr), 32});
  return p;
}

}  // namespace

int main() {
  // --- the whole vehicle, declaratively -------------------------------
  net::NetworkBuilder nb;
  const net::BusId body = nb.bus("body", 125'000);  // classic body rate

  // Kernel-model ECUs: abstract periodic workloads.
  const net::EcuId climate = nb.ecu(
      body, "climate",
      {{"hvac_ctl", 5, 4 * kMillisecond, 50 * kMillisecond,
        3 * kMillisecond, 50 * kMillisecond, {}, {}}},
      20 * kMicrosecond);
  const net::EcuId gateway = nb.ecu(
      body, "gateway",
      {{"consolidate", 7, 500 * kMicrosecond, 5 * kMillisecond, 0,
        5 * kMillisecond, {}, {}}},
      20 * kMicrosecond);

  // Guest-code ECUs on the instruction-set simulator.
  Ctl::Config cc;
  cc.rx_line = kRxLine;
  // door: executes lock commands, answers with door status.
  const net::EcuId door = nb.ecu(
      body,
      cpu::profiles::modern_mcu().name("door").clock_hz(8'000'000).flash_size(
          32 * 1024),
      relay_program(kLockCmdId, kDoorStatusId, 0), cc);
  // seat: tracks door status, publishes position on every 2nd update.
  const net::EcuId seat = nb.ecu(
      body,
      cpu::profiles::modern_mcu().name("seat").clock_hz(16'000'000).flash_size(
          32 * 1024),
      relay_program(kDoorStatusId, kSeatPosId, 1), cc);

  net::Network net = nb.build();
  can::CanBus& bus = net.bus(body);

  // --- network traffic -------------------------------------------------
  // Gateway lock command (alternating lock/unlock) and climate state are
  // periodic application traffic from the model ECUs' bus nodes.
  int lock_commands_sent = 0;
  can::CanFrame lock;
  lock.id = kLockCmdId;
  lock.dlc = 2;
  net.send_every(gateway, 20 * kMillisecond, lock,
                 [&lock_commands_sent](can::CanFrame& f) {
                   f.data[0] =
                       static_cast<std::uint8_t>(lock_commands_sent & 1);
                   ++lock_commands_sent;
                 });
  can::CanFrame clim;
  clim.id = kClimateId;
  clim.dlc = 6;
  net.send_every(climate, 100 * kMillisecond, clim);

  // The gateway consolidates what the guest ECUs report.
  int door_status_heard = 0;
  int seat_pos_heard = 0;
  bus.subscribe(net.ecu(gateway).can_node(),
                [&](const can::CanFrame& f, SimTime) {
                  if (f.id == kDoorStatusId) {
                    ++door_status_heard;
                  } else if (f.id == kSeatPosId) {
                    ++seat_pos_heard;
                  }
                });

  constexpr SimTime kHorizon = 5 * sim::kSecond;
  net.run_until(kHorizon);

  std::printf("=== body-control network, 5 simulated seconds ===\n\n");
  std::printf("kernel-model ECUs\n");
  std::printf("%-10s %-12s %12s %12s %10s\n", "ECU", "task", "worst resp",
              "avg resp", "misses");
  std::printf("---------------------------------------------------------"
              "---\n");
  for (const net::EcuId id : {climate, gateway}) {
    net::ModelEcuNode& e = net.model(id);
    const auto& st = e.task_stats(0);
    std::printf("%-10s %-12s %10lldus %10.0fus %10llu\n",
                std::string(e.name()).c_str(),
                e.kernel()->task_name(e.task(0)).c_str(),
                static_cast<long long>(st.worst_response / 1000),
                st.avg_response() / 1000.0,
                static_cast<unsigned long long>(st.deadline_misses));
  }

  std::printf("\nguest-code ECUs (ISS, interrupt-driven)\n");
  std::printf("%-10s %10s %12s %12s %14s %14s\n", "ECU", "clock",
              "ISR frames", "worst entry", "core steps", "idle cycles");
  std::printf("---------------------------------------------------------"
              "--------------------\n");
  for (const net::EcuId id : {door, seat}) {
    net::IssEcuNode& g = net.iss(id);
    std::printf("%-10s %7lluMHz %12u %10llucyc %14llu %14llu\n",
                std::string(g.name()).c_str(),
                static_cast<unsigned long long>(g.binding().hz() /
                                                1'000'000),
                g.read_word(kCount),
                static_cast<unsigned long long>(
                    g.worst_irq_latency(kRxLine)),
                static_cast<unsigned long long>(g.binding().stats().steps),
                static_cast<unsigned long long>(
                    g.binding().stats().idle_cycles));
  }

  std::printf("\n%-8s %12s %12s %14s\n", "CAN id", "frames", "worst lat",
              "RTA bound");
  std::printf("---------------------------------------------------------"
              "---\n");
  std::vector<sched::CanMessage> msgs = {
      {"lock_cmd", kLockCmdId, 2, 20 * kMillisecond, 0, 0},
      {"door_stat", kDoorStatusId, 4, 20 * kMillisecond, 0, 0},
      {"seat_pos", kSeatPosId, 4, 40 * kMillisecond, 0, 0},
      {"climate", kClimateId, 6, 100 * kMillisecond, 0, 0},
  };
  const sched::CanRtaResult rta = sched::can_rta(msgs, 125'000);
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    const auto& st = bus.stats().at(msgs[k].id);
    std::printf("%#8x %12llu %10lldus %12lldus\n", msgs[k].id,
                static_cast<unsigned long long>(st.sent),
                static_cast<long long>(st.worst_latency / 1000),
                static_cast<long long>(rta.response[k] / 1000));
  }
  std::printf("\nbus utilization %.1f%%, co-sim: %llu events, "
              "%llu idle jumps\n",
              100.0 * bus.utilization(kHorizon),
              static_cast<unsigned long long>(
                  net.simulation().stats().events_executed),
              static_cast<unsigned long long>(
                  net.simulation().stats().idle_jumps));
  std::printf("analysis verdict: %s\n",
              rta.schedulable ? "message set schedulable"
                              : "message set NOT schedulable");

  // Self-checks: the frame relay chain gateway -> door -> seat is exact
  // and deterministic. 251 commands are queued (the t=0 and t=5s ticks are
  // both inside the inclusive horizon); 250 reach the wire in time.
  ACES_CHECK(lock_commands_sent == 251);
  ACES_CHECK(net.iss(door).read_word(kCount) == 250);
  ACES_CHECK(net.iss(door).read_word(kLastData) == 1);  // command #249 (odd)
  ACES_CHECK(net.iss(seat).read_word(kCount) == 250);
  ACES_CHECK(door_status_heard == 250);
  ACES_CHECK(seat_pos_heard == 125);  // every 2nd update
  std::printf("\nall checks passed: two ISS ECUs and two kernel models on "
              "one deterministic time base.\n");
  return 0;
}
