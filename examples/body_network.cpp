// Body-control network: the paper's §1/§3.2 distributed vision in one
// executable — now mixed-fidelity.
//
// Four ECUs share one 125 kbps CAN bus under one co-simulation time base:
//
//   gateway   (kernel model)  consolidates body state, issues lock
//                             commands every 20 ms
//   climate   (kernel model)  temperature regulation, broadcasts state
//   door      (guest code)    modern-MCU ISS @ 8 MHz; a compiled ISR
//                             executes each lock command and answers with
//                             a door-status frame
//   seat      (guest code)    modern-MCU ISS @ 16 MHz; a compiled ISR
//                             tracks door status and publishes seat
//                             position on every 2nd update
//
// The two guest ECUs run real interrupt handlers on the instruction-set
// simulator; between frames they sleep in WFI, so the scheduler
// fast-forwards them at zero host cost — simulated idle cycles are free.
// The kernel-model ECUs stay abstract workload models. Both fidelities
// progress under the same deterministic event-driven scheduler, which is
// the engineering basis for treating "the distributed network of
// processors ... as a single compute resource".
//
//   $ ./examples/body_network
#include <cstdio>

#include "can/bus.h"
#include "can/controller.h"
#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/assembler.h"
#include "rtos/kernel.h"
#include "sched/can_rta.h"
#include "sim/simulation.h"

using namespace aces;
using namespace aces::isa;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;
using Ctl = can::CanController;

namespace {

constexpr std::uint32_t kLockCmdId = 0x0F0;   // gateway -> door
constexpr std::uint32_t kDoorStatusId = 0x110;  // door -> bus
constexpr std::uint32_t kSeatPosId = 0x180;     // seat -> bus
constexpr std::uint32_t kClimateId = 0x300;     // climate -> bus

constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;  // serviced frames
constexpr std::uint32_t kLastData = cpu::kSramBase + 0x104;
constexpr unsigned kRxLine = 1;

rtos::Segment exec_for(SimTime d) {
  rtos::Segment s;
  s.kind = rtos::Segment::Kind::execute;
  s.duration = d;
  return s;
}

// A guest ECU program: WFI main loop (r6 counts wakeups); the ISR services
// the RX FIFO head if its identifier matches `match_id`, bumping kCount
// and latching the payload, and replies with `reply_id` (carrying the
// running count) when `reply_mask` of the count is zero. Non-matching
// traffic is popped and acknowledged unhandled.
Image build_guest(Assembler& a, Label* entry, Label* isr,
                  std::uint32_t match_id, std::uint32_t reply_id,
                  std::uint32_t reply_mask) {
  *entry = a.bound_label();
  const Label top = a.bound_label();
  a.ins(ins_rri(Op::add, r6, r6, 1, SetFlags::any));  // wakeup counter
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();

  *isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, Ctl::kRxId));
  a.load_literal(r2, match_id);
  a.ins(ins_cmp_reg(r1, r2));
  const Label discard = a.new_label();
  a.b(discard, Cond::ne);
  // ++count; last = payload word 0.
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_ldst_imm(Op::ldr, r12, r0, Ctl::kRxData0));
  a.ins(ins_ldst_imm(Op::str, r12, r3, 4));
  // Retire the frame before the reply: pop, ack.
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  const Label done = a.new_label();
  if (reply_mask != 0) {
    // Reply only when (count & reply_mask) == 0.
    a.ins(ins_rri(Op::and_, r12, r2, reply_mask, SetFlags::yes));
    a.b(done, Cond::ne);
  }
  a.load_literal(r12, reply_id);
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxId));
  a.ins(ins_mov_imm(r12, 4, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxDlc));
  a.ins(ins_ldst_imm(Op::str, r2, r0, Ctl::kTxData0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxCmd));
  a.bind(done);
  a.ins(ins_ret());
  // Unmatched traffic: pop + ack, no reply.
  a.bind(discard);
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  return a.assemble();
}

// One guest ECU: a System described by the builder, its CAN controller,
// and the binding that joins both to the co-simulation.
struct GuestEcu {
  Assembler assembler;
  Label entry, isr;
  Ctl controller;
  cpu::System sys;
  cpu::SystemBinding& binding;

  GuestEcu(const char* name, sim::Simulation& sim, can::CanBus& bus,
           std::uint64_t hz, std::uint32_t match_id, std::uint32_t reply_id,
           std::uint32_t reply_mask)
      : assembler(Encoding::b32, cpu::kFlashBase),
        controller(bus, name, [] {
          Ctl::Config c;
          c.rx_line = kRxLine;
          return c;
        }()),
        sys(cpu::profiles::modern_mcu()
                .name(name)
                .clock_hz(hz)
                .flash_size(32 * 1024)
                .device(cpu::kPeriphBase, controller)
                .ivc([] {
                  cpu::Ivc::Config c;
                  c.vector_table = kVectors;
                  c.lines = 4;
                  return c;
                }())),
        binding(sys.bind(sim)) {
    const Image image =
        build_guest(assembler, &entry, &isr, match_id, reply_id, reply_mask);
    sys.load(image);
    sys.set_irq_handler(kRxLine, assembler.label_address(isr));
    sys.ivc()->enable_line(kRxLine, 32);
    controller.connect_irq(binding);
    ACES_CHECK(
        sys.bus().write(cpu::kPeriphBase + Ctl::kCtrl, 4, Ctl::kCtrlRxie, 0)
            .ok());
    sys.core().reset(assembler.label_address(entry), sys.initial_sp());
  }

  [[nodiscard]] std::uint32_t count() {
    return sys.bus().read(kCount, 4, mem::Access::read, 0).value;
  }
  [[nodiscard]] std::uint32_t last_data() {
    return sys.bus().read(kLastData, 4, mem::Access::read, 0).value;
  }
  [[nodiscard]] std::uint64_t worst_latency() {
    std::uint64_t worst = 0;
    for (const std::uint64_t l : sys.ivc()->latencies(kRxLine)) {
      worst = worst > l ? worst : l;
    }
    return worst;
  }
};

struct ModelEcu {
  const char* name;
  rtos::Kernel kernel;
  can::NodeId node;
  ModelEcu(const char* n, sim::Simulation& sim, can::CanBus& bus)
      : name(n), kernel(sim, 20 * kMicrosecond), node(bus.attach_node(n)) {}
};

}  // namespace

int main() {
  sim::Simulation sim(50 * kMicrosecond);
  can::CanBus bus(sim.queue(), 125'000);  // classic body bus rate

  // --- kernel-model ECUs ---
  ModelEcu climate("climate", sim, bus);
  ModelEcu gateway("gateway", sim, bus);

  const auto hvac = climate.kernel.create_task(
      {"hvac_ctl", 5, {exec_for(4 * kMillisecond)}, 50 * kMillisecond});
  climate.kernel.set_alarm(hvac, 3 * kMillisecond, 50 * kMillisecond);

  const auto consolidate = gateway.kernel.create_task(
      {"consolidate", 7, {exec_for(500 * kMicrosecond)}, 5 * kMillisecond});
  gateway.kernel.set_alarm(consolidate, 0, 5 * kMillisecond);

  for (ModelEcu* e : {&climate, &gateway}) {
    e->kernel.start();
  }

  // --- guest-code ECUs on the instruction-set simulator ---
  // door: executes lock commands, answers with door status.
  GuestEcu door("door", sim, bus, 8'000'000, kLockCmdId, kDoorStatusId, 0);
  // seat: tracks door status, publishes position on every 2nd update.
  GuestEcu seat("seat", sim, bus, 16'000'000, kDoorStatusId, kSeatPosId, 1);

  // --- network traffic ---
  // Gateway lock command (alternating lock/unlock) and climate state are
  // event-queue senders, exactly like the kernel models they belong to.
  struct Tx {
    can::NodeId node;
    std::uint32_t id;
    unsigned dlc;
    SimTime period;
  };
  const Tx txs[] = {
      {gateway.node, kLockCmdId, 2, 20 * kMillisecond},
      {climate.node, kClimateId, 6, 100 * kMillisecond},
  };
  int lock_commands_sent = 0;
  for (const Tx& tx : txs) {
    sim.schedule_every(tx.period, [&bus, tx, &lock_commands_sent]() {
      can::CanFrame f;
      f.id = tx.id;
      f.dlc = tx.dlc;
      if (tx.id == kLockCmdId) {
        f.data[0] = static_cast<std::uint8_t>(lock_commands_sent & 1);
        ++lock_commands_sent;
      }
      bus.send(tx.node, f);
    });
  }

  // The gateway consolidates what the guest ECUs report.
  int door_status_heard = 0;
  int seat_pos_heard = 0;
  bus.subscribe(gateway.node, [&](const can::CanFrame& f, SimTime) {
    if (f.id == kDoorStatusId) {
      ++door_status_heard;
    } else if (f.id == kSeatPosId) {
      ++seat_pos_heard;
    }
  });

  constexpr SimTime kHorizon = 5 * sim::kSecond;
  sim.run_until(kHorizon);

  std::printf("=== body-control network, 5 simulated seconds ===\n\n");
  std::printf("kernel-model ECUs\n");
  std::printf("%-10s %-12s %12s %12s %10s\n", "ECU", "task", "worst resp",
              "avg resp", "misses");
  std::printf("---------------------------------------------------------"
              "---\n");
  struct Row {
    ModelEcu* e;
    rtos::TaskId t;
  };
  for (const Row r : {Row{&climate, hvac}, Row{&gateway, consolidate}}) {
    const auto& st = r.e->kernel.stats(r.t);
    std::printf("%-10s %-12s %10lldus %10.0fus %10llu\n", r.e->name,
                r.e->kernel.task_name(r.t).c_str(),
                static_cast<long long>(st.worst_response / 1000),
                st.avg_response() / 1000.0,
                static_cast<unsigned long long>(st.deadline_misses));
  }

  std::printf("\nguest-code ECUs (ISS, interrupt-driven)\n");
  std::printf("%-10s %10s %12s %12s %14s %14s\n", "ECU", "clock",
              "ISR frames", "worst entry", "core steps", "idle cycles");
  std::printf("---------------------------------------------------------"
              "--------------------\n");
  for (GuestEcu* g : {&door, &seat}) {
    std::printf("%-10s %7lluMHz %12u %10llucyc %14llu %14llu\n",
                g->sys.name().c_str(),
                static_cast<unsigned long long>(g->binding.hz() / 1'000'000),
                g->count(),
                static_cast<unsigned long long>(g->worst_latency()),
                static_cast<unsigned long long>(g->binding.stats().steps),
                static_cast<unsigned long long>(
                    g->binding.stats().idle_cycles));
  }

  std::printf("\n%-8s %12s %12s %14s\n", "CAN id", "frames", "worst lat",
              "RTA bound");
  std::printf("---------------------------------------------------------"
              "---\n");
  std::vector<sched::CanMessage> msgs = {
      {"lock_cmd", kLockCmdId, 2, 20 * kMillisecond, 0, 0},
      {"door_stat", kDoorStatusId, 4, 20 * kMillisecond, 0, 0},
      {"seat_pos", kSeatPosId, 4, 40 * kMillisecond, 0, 0},
      {"climate", kClimateId, 6, 100 * kMillisecond, 0, 0},
  };
  const sched::CanRtaResult rta = sched::can_rta(msgs, 125'000);
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    const auto& st = bus.stats().at(msgs[k].id);
    std::printf("%#8x %12llu %10lldus %12lldus\n", msgs[k].id,
                static_cast<unsigned long long>(st.sent),
                static_cast<long long>(st.worst_latency / 1000),
                static_cast<long long>(rta.response[k] / 1000));
  }
  std::printf("\nbus utilization %.1f%%, co-sim: %llu events, "
              "%llu idle jumps\n",
              100.0 * bus.utilization(kHorizon),
              static_cast<unsigned long long>(sim.stats().events_executed),
              static_cast<unsigned long long>(sim.stats().idle_jumps));
  std::printf("analysis verdict: %s\n",
              rta.schedulable ? "message set schedulable"
                              : "message set NOT schedulable");

  // Self-checks: the frame relay chain gateway -> door -> seat is exact
  // and deterministic. 251 commands are queued (the t=0 and t=5s ticks are
  // both inside the inclusive horizon); 250 reach the wire in time.
  ACES_CHECK(lock_commands_sent == 251);
  ACES_CHECK(door.count() == 250);     // every delivered command executed
  ACES_CHECK(door.last_data() == 1);   // payload of command #249 (odd)
  ACES_CHECK(seat.count() == 250);     // every door status tracked
  ACES_CHECK(door_status_heard == 250);
  ACES_CHECK(seat_pos_heard == 125);   // every 2nd update
  std::printf("\nall checks passed: two ISS ECUs and two kernel models on "
              "one deterministic time base.\n");
  return 0;
}
