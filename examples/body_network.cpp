// Body-control network: the paper's §1/§3.2 distributed vision in one
// executable.
//
// Four ECUs — door, seat, climate and a gateway — each run an OSEK-like
// kernel; sensor tasks publish CAN frames, actuator tasks react to them.
// The example prints per-task and per-message worst-case behavior from the
// simulation next to the closed-form schedulability analysis: the
// engineering basis for treating "the distributed network of processors
// ... as a single compute resource".
//
//   $ ./examples/body_network
#include <cstdio>

#include "can/bus.h"
#include "rtos/kernel.h"
#include "sched/can_rta.h"
#include "sched/rta.h"

using namespace aces;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

namespace {

rtos::Segment exec_for(SimTime d) {
  rtos::Segment s;
  s.kind = rtos::Segment::Kind::execute;
  s.duration = d;
  return s;
}

struct Ecu {
  const char* name;
  rtos::Kernel kernel;
  can::NodeId node;
  Ecu(const char* n, sim::EventQueue& q, can::CanBus& bus)
      : name(n), kernel(q, 20 * kMicrosecond), node(bus.attach_node(n)) {}
};

}  // namespace

int main() {
  sim::EventQueue q;
  can::CanBus bus(q, 125'000);  // classic body bus rate

  Ecu door("door", q, bus);
  Ecu seat("seat", q, bus);
  Ecu climate("climate", q, bus);
  Ecu gateway("gateway", q, bus);

  // --- door ECU: window switch scan (2 ms) publishes switch state;
  //     lock actuator task reacts to gateway commands.
  const auto scan = door.kernel.create_task(
      {"win_scan", 10, {exec_for(150 * kMicrosecond)}, 2 * kMillisecond});
  door.kernel.set_alarm(scan, 0, 2 * kMillisecond);
  const auto lock_act = door.kernel.create_task(
      {"lock_act", 8, {exec_for(300 * kMicrosecond)}, 20 * kMillisecond});
  int lock_count = 0;

  // --- seat ECU: position control loop (10 ms).
  const auto seat_ctl = seat.kernel.create_task(
      {"seat_ctl", 9, {exec_for(900 * kMicrosecond)}, 10 * kMillisecond});
  seat.kernel.set_alarm(seat_ctl, 1 * kMillisecond, 10 * kMillisecond);

  // --- climate ECU: temperature regulation (50 ms).
  const auto hvac = climate.kernel.create_task(
      {"hvac_ctl", 5, {exec_for(4 * kMillisecond)}, 50 * kMillisecond});
  climate.kernel.set_alarm(hvac, 3 * kMillisecond, 50 * kMillisecond);

  // --- gateway: consolidates body state (5 ms) and issues lock commands.
  const auto consolidate = gateway.kernel.create_task(
      {"consolidate", 7, {exec_for(500 * kMicrosecond)}, 5 * kMillisecond});
  gateway.kernel.set_alarm(consolidate, 0, 5 * kMillisecond);

  for (Ecu* e : {&door, &seat, &climate, &gateway}) {
    e->kernel.start();
  }

  // CAN traffic: switch state (door, 10 ms), seat position (20 ms),
  // climate state (100 ms), lock command (gateway, 20 ms).
  struct Tx {
    Ecu* ecu;
    std::uint32_t id;
    unsigned dlc;
    SimTime period;
  };
  const Tx txs[] = {
      {&door, 0x110, 2, 10 * kMillisecond},
      {&seat, 0x180, 4, 20 * kMillisecond},
      {&climate, 0x300, 6, 100 * kMillisecond},
      {&gateway, 0x0F0, 2, 20 * kMillisecond},
  };
  for (const Tx& tx : txs) {
    std::function<void()> kick = [&bus, &q, tx, &kick]() {
      can::CanFrame f;
      f.id = tx.id;
      f.dlc = tx.dlc;
      bus.send(tx.ecu->node, f);
      q.schedule_in(tx.period, kick);
    };
    q.schedule_at(0, kick);
  }
  // Gateway lock command activates the door actuator task on arrival.
  bus.subscribe(door.node, [&](const can::CanFrame& f, SimTime) {
    if (f.id == 0x0F0) {
      door.kernel.activate(lock_act);
      ++lock_count;
    }
  });

  q.run_until(5 * sim::kSecond);

  std::printf("=== body-control network, 5 simulated seconds ===\n\n");
  std::printf("%-10s %-12s %12s %12s %10s\n", "ECU", "task",
              "worst resp", "avg resp", "misses");
  std::printf("---------------------------------------------------------"
              "---\n");
  struct Row {
    Ecu* e;
    rtos::TaskId t;
  };
  for (const Row r : {Row{&door, scan}, Row{&door, lock_act},
                      Row{&seat, seat_ctl}, Row{&climate, hvac},
                      Row{&gateway, consolidate}}) {
    const auto& st = r.e->kernel.stats(r.t);
    std::printf("%-10s %-12s %10lldus %10.0fus %10llu\n", r.e->name,
                r.e->kernel.task_name(r.t).c_str(),
                static_cast<long long>(st.worst_response / 1000),
                st.avg_response() / 1000.0,
                static_cast<unsigned long long>(st.deadline_misses));
  }

  std::printf("\n%-8s %12s %12s %14s\n", "CAN id", "frames", "worst lat",
              "RTA bound");
  std::printf("---------------------------------------------------------"
              "---\n");
  std::vector<sched::CanMessage> msgs;
  for (const Tx& tx : txs) {
    msgs.push_back(sched::CanMessage{"", tx.id, tx.dlc, tx.period, 0, 0});
  }
  std::sort(msgs.begin(), msgs.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  const sched::CanRtaResult rta = sched::can_rta(msgs, 125'000);
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    const auto& st = bus.stats().at(msgs[k].id);
    std::printf("%#8x %12llu %10lldus %12lldus\n", msgs[k].id,
                static_cast<unsigned long long>(st.sent),
                static_cast<long long>(st.worst_latency / 1000),
                static_cast<long long>(rta.response[k] / 1000));
  }
  std::printf("\nbus utilization %.1f%%, lock commands delivered: %d\n",
              100.0 * bus.utilization(5 * sim::kSecond), lock_count);
  std::printf("analysis verdict: %s\n",
              rta.schedulable ? "message set schedulable"
                              : "message set NOT schedulable");
  return 0;
}
