// Soft-error recovery plus single-wire debug (§3.1.3 + §3.2.2).
//
// A CRC workload runs on a cached core while the fault injector plants
// cosmic-ray-style upsets. With fault tolerance enabled the run survives
// every upset; the single-wire debug port then peeks at memory and core
// registers over its one-bit interface and patches a flash constant via
// the debug backdoor — the calibration workflow the paper sketches.
//
//   $ ./examples/soft_error_recovery
#include <cstdio>

#include "cpu/profiles.h"
#include "cpu/swd.h"
#include "cpu/system.h"
#include "kir/lower.h"
#include "mem/fault_injector.h"
#include "workloads/autoindy.h"
#include "workloads/runner.h"

using namespace aces;

int main() {
  const workloads::Kernel& kernel = workloads::autoindy_suite()[4];  // crc16
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, isa::Encoding::w32, cpu::kFlashBase);

  mem::CacheConfig cache;
  cache.line_bytes = 16;
  cache.num_sets = 32;
  cache.ways = 2;
  cache.fault_tolerant = true;
  mem::FaultInjectorConfig fic;
  fic.upsets_per_mcycle = 2000.0;  // grossly accelerated flux
  // The injector is part of the machine description: the built system
  // attaches it to the cache and advances it from the cycle hook itself.
  cpu::System sys(cpu::profiles::legacy_hp()
                      .flash_size(128 * 1024)
                      .icache(cache)
                      .fault_injector(fic, 2));
  sys.load(prog.image);
  const mem::FaultInjector& injector = *sys.fault_injector();

  std::printf("running crc16 under accelerated soft-error flux (FT cache "
              "on)...\n");
  support::Rng256 rng(17);
  int ok = 0;
  for (int k = 0; k < 100; ++k) {
    const workloads::Instance in = kernel.make_instance(rng, workloads::kDataBase);
    const workloads::RunResult r =
        workloads::run_instance(sys, prog.entry_of(kernel.name), in);
    ok += r.value == in.expected ? 1 : 0;
  }
  std::printf("  correct results      : %d/100\n", ok);
  std::printf("  upsets injected      : %llu\n",
              static_cast<unsigned long long>(injector.injected()));
  std::printf("  I-fetch recoveries   : %llu (invalidate + reload)\n",
              static_cast<unsigned long long>(
                  sys.icache()->stats().ifetch_refills));
  std::printf("  tag errors -> misses : %llu\n",
              static_cast<unsigned long long>(
                  sys.icache()->stats().tag_errors_detected));

  // --- single-wire debug session ---
  std::printf("\nattaching single-wire debugger...\n");
  cpu::SingleWireDebug port(sys.core(), sys.bus());
  cpu::SwdHost host(port);

  const auto pc = host.read_reg(15);
  const auto r0 = host.read_reg(0);
  std::printf("  core peek            : pc=%#x r0=%#x\n", pc.value_or(0),
              r0.value_or(0));
  const auto word = host.read_mem(workloads::kDataBase);
  std::printf("  memory peek          : [%#x] = %#x\n", workloads::kDataBase,
              word.value_or(0));
  // Calibration write straight into flash through the debug backdoor.
  ACES_CHECK(host.write_mem(cpu::kFlashBase + 0x2000, 0x00C0FFEE));
  const auto readback = host.read_mem(cpu::kFlashBase + 0x2000);
  std::printf("  flash calibration    : wrote %#x, read back %#x\n",
              0x00C0FFEE, readback.value_or(0));
  std::printf("  wire traffic         : %llu bits over one pin\n",
              static_cast<unsigned long long>(port.bits_transferred()));
  return ok == 100 ? 0 : 1;
}
