// Zonal E/E architecture: heterogeneous fabrics bridged by translating
// gateways.
//
// Two legacy zone buses (classic CAN, 125 kbps) feed a CAN FD backbone
// (500 kbps arbitration / 2 Mbps data phase) through signal-packing
// gateways; a FlexRay chassis fabric (10 Mbps, static TDMA + minislot
// dynamic segment) hangs off the backbone through a third gateway:
//
//      front 125k (classic)                 rear 125k (classic)
//   fl fr brake lights park fbody       rl rr brake trailer rpark rbody
//   fzc(ISS 8MHz)                       rzc(ISS 8MHz)
//        |                                   |
//    gw_front == pack/unpack ==    ===== gw_rear == pack + fd translate
//        |                                   |
//        +------ backbone 500k/2M (CAN FD) --+
//        |   adas_cmd adas_stat telem infotain cockpit datalog
//    gw_chassis == pack to FlexRay / unpack from FlexRay ==
//        |
//      chassis FlexRay 10M: 8 static slots + 60 minislots
//        static: damper/level/height     dynamic: axle_agg, susp
//
// Translating routes exercised end to end (every emitted frame keeps the
// origin timestamp of the frame that triggered it):
//   P1 front_agg   4 classic front frames pack into one 12-byte FD frame
//   P2 adas_cmd    one 12-byte FD frame unpacks into 2 classic commands
//   P3 axle        rear brake -> FD rear_agg -> packed into a FlexRay
//                  dynamic frame (3 fabrics, 2 translations)
//   P4 adas_stat   FD frame demoted to classic framing for the rear bus
//   P5 susp        FlexRay dynamic frame unpacked onto the backbone
//   P6 trailer     classic rear frame promoted to FD framing
//
// Each path's measured worst end-to-end latency is checked against
// sched::path_rta with per-fabric hop plugins (CAN/CAN FD hops analyzed
// by can_rta, the FlexRay hops by the minislot bound) — fault-free AND
// under a seeded bit-error campaign on both legacy buses, where the
// legacy hops carry the matching fault hypothesis. Both scenarios run
// twice and must be bit-identical.
//
//   $ ./examples/zonal_network
#include <cstdarg>
#include <cstdio>

#include <algorithm>
#include <map>
#include <string>

#include "can/bit_error.h"
#include "can/bus.h"
#include "can/controller.h"
#include "cpu/profiles.h"
#include "guest_util.h"
#include "isa/assembler.h"
#include "net/network.h"
#include "sched/can_rta.h"

using namespace aces;
using namespace aces::isa;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;
using Ctl = can::CanController;

namespace {

// ----- identifiers ----------------------------------------------------------
// front zone (classic)
constexpr std::uint32_t kFlWheelId = 0x100;
constexpr std::uint32_t kFrWheelId = 0x101;
constexpr std::uint32_t kFBrakeId = 0x108;   // packing trigger
constexpr std::uint32_t kFLightsId = 0x120;
constexpr std::uint32_t kFParkId = 0x130;
constexpr std::uint32_t kCmdAId = 0x140;     // unpacked from adas_cmd
constexpr std::uint32_t kCmdBId = 0x141;     // unpacked from adas_cmd
constexpr std::uint32_t kFzcReplyId = 0x148; // fzc ISS answer to kCmdBId
// rear zone (classic)
constexpr std::uint32_t kRlWheelId = 0x110;
constexpr std::uint32_t kRrWheelId = 0x111;
constexpr std::uint32_t kRBrakeId = 0x118;   // packing trigger
constexpr std::uint32_t kRzcAckId = 0x119;   // rzc ISS answer to kRBrakeId
constexpr std::uint32_t kTrailerId = 0x128;  // promoted to FD on backbone
constexpr std::uint32_t kRParkId = 0x131;
// backbone (CAN FD)
constexpr std::uint32_t kAdasStatId = 0x085; // FD, demoted onto rear
constexpr std::uint32_t kAdasCmdId = 0x090;  // FD, unpacked onto front
constexpr std::uint32_t kFrontAggId = 0x0A0; // packed front zone state
constexpr std::uint32_t kRearAggId = 0x0B0;  // packed rear zone state
constexpr std::uint32_t kTelemId = 0x320;
constexpr std::uint32_t kSuspId = 0x330;     // unpacked from FlexRay
constexpr std::uint32_t kInfotainId = 0x340;
// FlexRay dynamic slot ids
constexpr unsigned kAxleSlot = 1;  // gw_chassis aggregate, 24 bytes
constexpr unsigned kSuspSlot = 2;  // suspension sensor, 8 bytes

constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;
constexpr unsigned kRxLine = 1;
constexpr SimTime kGwLatency = 200 * kMicrosecond;
constexpr SimTime kHorizon = 2 * sim::kSecond;
// Seeded campaign hypothesis: at most one injected bit error per kTError
// per legacy bus. Aggressive enough to force visible retransmission tails,
// gentle enough that no node reaches bus-off inside the horizon — the
// Tindell error term models retransmission, not the 128x11-bit recovery
// gap (11.3 ms at 125 kbps), so a bus-off voids the bound (the campaign
// runner has the same skip rule).
constexpr SimTime kTError = 10 * kMillisecond;
// End-to-end budget for paths ending on (or starting from) the chassis
// fabric: a FlexRay dynamic frame alone costs up to a full cycle plus the
// static segment, so cross-fabric chassis paths get a 20 ms budget.
constexpr SimTime kDynDeadline = 20 * kMillisecond;

net::GuestProgram relay_program(std::uint32_t match_id,
                                std::uint32_t reply_id) {
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = examples::emit_idle_loop(a, /*wfi=*/true);
  const Label isr =
      examples::emit_relay_isr(a, match_id, reply_id, /*mask=*/0, kCount);
  net::GuestProgram p;
  p.image = a.assemble();
  p.entry = a.label_address(entry);
  p.handlers.push_back({kRxLine, a.label_address(isr), 32});
  return p;
}

net::ModelTask publisher(const char* task, int prio, SimTime exec,
                         SimTime period, std::uint32_t id, unsigned dlc,
                         bool fd = false) {
  net::ModelTask t;
  t.name = task;
  t.priority = prio;
  t.exec = exec;
  t.period = period;
  can::CanFrame f;
  f.id = id;
  f.dlc = dlc;
  f.fd = fd;
  t.tx = f;
  return t;
}

net::ModelTask consumer(const char* task, int prio, SimTime exec,
                        std::uint32_t rx_id) {
  net::ModelTask t;
  t.name = task;
  t.priority = prio;
  t.exec = exec;
  t.activate_on_rx = rx_id;
  return t;
}

struct E2e {
  SimTime worst = 0;
  std::uint64_t heard = 0;
};

struct Report {
  std::string text;       // printed + compared for bit-identity
  std::uint64_t checks = 0;
};

void line(Report& r, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  r.text += buf;
  r.text += '\n';
}

Report run_scenario(bool faulted) {
  Report rep;

  // ===== topology =======================================================
  net::NetworkBuilder nb;
  const net::BusId front = nb.bus("front", 125'000);
  const net::BusId rear = nb.bus("rear", 125'000);
  const net::BusId bb = nb.bus("backbone", 500'000, 2'000'000);
  net::FlexrayFabricConfig fc;
  fc.static_cfg.cycle_length = 5 * kMillisecond;
  fc.static_cfg.static_slots = 8;
  fc.static_cfg.slot_length = 50 * kMicrosecond;
  fc.minislots = 60;
  fc.minislot = 10 * kMicrosecond;
  const net::BusId chassis = nb.flexray("chassis", fc);
  nb.flexray_static(chassis, {{"damper", 0, 5 * kMillisecond},
                              {"level", 1, 10 * kMillisecond},
                              {"height", 2, 20 * kMillisecond}});

  Ctl::Config cc;
  cc.rx_line = kRxLine;

  // --- front zone: 6 kernel-model ECUs + 1 ISS zone controller ---------
  const net::EcuId f_brake = nb.ecu(
      front, "f_brake", {publisher("brake_acq", 8, 500 * kMicrosecond,
                                   10 * kMillisecond, kFBrakeId, 4)});
  nb.ecu(front, "fl_wheel", {publisher("fl_acq", 7, 500 * kMicrosecond,
                                       10 * kMillisecond, kFlWheelId, 2)});
  nb.ecu(front, "fr_wheel", {publisher("fr_acq", 7, 500 * kMicrosecond,
                                       10 * kMillisecond, kFrWheelId, 2)});
  nb.ecu(front, "f_lights", {publisher("light_ctl", 5, kMillisecond,
                                       50 * kMillisecond, kFLightsId, 4)});
  nb.ecu(front, "f_park", {publisher("park_aid", 4, 2 * kMillisecond,
                                     100 * kMillisecond, kFParkId, 2)});
  const net::EcuId f_body = nb.ecu(
      front, "f_body", {consumer("cmd_apply", 6, kMillisecond, kCmdAId)});
  const net::EcuId fzc = nb.ecu(
      front,
      cpu::profiles::modern_mcu().name("fzc").clock_hz(8'000'000)
          .flash_size(32 * 1024),
      relay_program(kCmdBId, kFzcReplyId), cc);

  // --- rear zone: 6 kernel-model ECUs + 1 ISS zone controller ----------
  const net::EcuId r_brake = nb.ecu(
      rear, "r_brake", {publisher("brake_acq", 8, 500 * kMicrosecond,
                                  10 * kMillisecond, kRBrakeId, 4)});
  nb.ecu(rear, "rl_wheel", {publisher("rl_acq", 7, 500 * kMicrosecond,
                                      10 * kMillisecond, kRlWheelId, 2)});
  nb.ecu(rear, "rr_wheel", {publisher("rr_acq", 7, 500 * kMicrosecond,
                                      10 * kMillisecond, kRrWheelId, 2)});
  nb.ecu(rear, "trailer", {publisher("hitch_mon", 5, kMillisecond,
                                  20 * kMillisecond, kTrailerId, 2)});
  nb.ecu(rear, "r_park", {publisher("park_aid", 4, 2 * kMillisecond,
                                    100 * kMillisecond, kRParkId, 2)});
  const net::EcuId r_body = nb.ecu(
      rear, "r_body", {consumer("stat_apply", 6, kMillisecond, kAdasStatId)});
  const net::EcuId rzc = nb.ecu(
      rear,
      cpu::profiles::modern_mcu().name("rzc").clock_hz(8'000'000)
          .flash_size(32 * 1024),
      relay_program(kRBrakeId, kRzcAckId), cc);

  // --- CAN FD backbone: 6 kernel-model ECUs ----------------------------
  nb.ecu(bb, "adas", {publisher("cmd_plan", 8, 2 * kMillisecond,
                             20 * kMillisecond, kAdasCmdId, 9, true)});
  nb.ecu(bb, "adas_mon", {publisher("stat_pub", 7, 2 * kMillisecond,
                                    20 * kMillisecond, kAdasStatId, 8,
                                    true)});
  nb.ecu(bb, "telem", {publisher("telem_pub", 5, 2 * kMillisecond,
                                 50 * kMillisecond, kTelemId, 10, true)});
  nb.ecu(bb, "infotain", {publisher("media", 3, 2 * kMillisecond,
                                    20 * kMillisecond, kInfotainId, 12,
                                    true)});
  const net::EcuId cockpit = nb.ecu(
      bb, "cockpit", {consumer("zone_disp", 6, kMillisecond, kFrontAggId)});
  const net::EcuId datalog = nb.ecu(
      bb, "datalog", {consumer("susp_log", 4, kMillisecond, kSuspId)});

  // --- translating gateways --------------------------------------------
  net::GatewayConfig gc;
  gc.forwarding_latency = kGwLatency;
  gc.queue_depth = 8;
  const net::GatewayId gwf = nb.gateway("gw_front", gc);
  const net::GatewayId gwr = nb.gateway("gw_rear", gc);
  const net::GatewayId gwc = nb.gateway("gw_chassis", gc);

  // P1: four classic front frames -> one 12-byte FD frame (trigger: brake).
  net::PackedRoute pf;
  pf.from = front;
  pf.to = bb;
  pf.table = {{kFlWheelId, 0, 2}, {kFrWheelId, 2, 2}, {kFBrakeId, 4, 4}};
  pf.trigger_id = kFBrakeId;
  pf.egress_id = kFrontAggId;
  pf.egress_fd = true;
  pf.egress_dlc = 9;  // DLC code 9 = 12 bytes
  nb.packed_route(gwf, pf);
  // P2: adas_cmd FD frame -> two classic zone commands.
  net::UnpackRoute uf;
  uf.from = bb;
  uf.to = front;
  uf.match_id = kAdasCmdId;
  uf.table = {{kCmdAId, false, 4, 0}, {kCmdBId, false, 4, 4}};
  nb.unpack_route(gwf, uf);
  // P3 (first translation): rear mirror of P1.
  net::PackedRoute pr;
  pr.from = rear;
  pr.to = bb;
  pr.table = {{kRlWheelId, 0, 2}, {kRrWheelId, 2, 2}, {kRBrakeId, 4, 4}};
  pr.trigger_id = kRBrakeId;
  pr.egress_id = kRearAggId;
  pr.egress_fd = true;
  pr.egress_dlc = 9;
  nb.packed_route(gwr, pr);
  // P4: FD status demoted to classic framing for the legacy rear bus.
  net::Route demote;
  demote.from = bb;
  demote.to = rear;
  demote.match = kAdasStatId;
  demote.fd = false;
  nb.route(gwr, demote);
  // P6: classic trailer frame promoted to FD framing on the backbone.
  net::Route promote;
  promote.from = rear;
  promote.to = bb;
  promote.match = kTrailerId;
  promote.fd = true;
  nb.route(gwr, promote);
  // P3 (second translation): both zone aggregates pack into one 24-byte
  // FlexRay dynamic frame (trigger: the rear aggregate).
  net::PackedRoute pc;
  pc.from = bb;
  pc.to = chassis;
  pc.table = {{kFrontAggId, 0, 12}, {kRearAggId, 12, 12}};
  pc.trigger_id = kRearAggId;
  nb.packed_route_flexray(gwc, pc, "axle_agg", kAxleSlot);

  net::Network net = nb.build();

  // --- chassis suspension sensor: a raw FlexRay node wired through the
  // gateway API (P5), showing the non-builder surface -------------------
  net::FlexrayFabric& fr = net.flexray(chassis);
  const auto sensor = fr.attach_node("susp_sensor");
  const auto susp_dyn = fr.add_dynamic_frame(sensor, "susp", kSuspSlot, 8);
  net.shard(chassis).schedule_every(
      10 * kMillisecond, [&fr, susp_dyn] {
        net::FlexrayFabric::DynPayload p;
        p.bytes = 8;
        fr.send_dynamic(susp_dyn, p);  // stamped at the queue instant
      });
  net::UnpackRoute uc;
  uc.from = chassis;
  uc.to = bb;
  uc.match_dyn = susp_dyn;
  uc.table = {{kSuspId, false, 8, 0}};
  net.gateway(gwc).add_unpack_route(uc);

  // ===== probes =========================================================
  std::map<std::uint32_t, E2e> e2e;
  const auto probe = [&net, &e2e](net::BusId bus_id, std::uint32_t id) {
    const can::NodeId node =
        net.bus(bus_id).attach_node("probe:" + net.bus_name(bus_id));
    net.bus(bus_id).subscribe(
        node, [&e2e, id](const can::CanFrame& f, SimTime at) {
          if (f.id != id) {
            return;
          }
          E2e& p = e2e[id];
          ++p.heard;
          p.worst = std::max(p.worst, at - f.timestamp);
        });
  };
  probe(bb, kFrontAggId);   // P1
  probe(front, kCmdAId);    // P2
  probe(rear, kAdasStatId); // P4
  probe(bb, kSuspId);       // P5
  probe(bb, kTrailerId);    // P6
  E2e axle;  // P3, delivered on the FlexRay fabric
  const auto fr_probe = fr.attach_node("probe:chassis");
  fr.subscribe(fr_probe, [&axle](const net::FlexrayFabric::DynFrameInfo& i,
                                 const net::FlexrayFabric::DynPayload& p,
                                 SimTime at) {
    if (i.slot_id == kAxleSlot) {
      ++axle.heard;
      axle.worst = std::max(axle.worst, at - p.timestamp);
    }
  });

  // ===== seeded bit-error campaign on the legacy buses ==================
  if (faulted) {
    can::SeededErrorCampaign cfg;
    cfg.min_interarrival = kTError;
    cfg.probability = 0.15;
    cfg.seed = 777;
    cfg.stream = 1;
    net.bus(front).set_bit_error_model(
        can::make_seeded_error_model(net.bus(front), cfg));
    cfg.stream = 2;
    net.bus(rear).set_bit_error_model(
        can::make_seeded_error_model(net.bus(rear), cfg));
  }

  net.run_until(kHorizon);

  // ===== analysis: cross-fabric path_rta ================================
  // Every publisher is a single-task kernel (J = 0 at the source); routed
  // interferers carry their inherited jitter (upstream bound + gateway
  // latency), derived in dependency order. Legacy hops carry the seeded
  // campaign's fault hypothesis in the faulted scenario.
  using sched::CanMessage;
  const sched::CanErrorModel legacy_err =
      faulted ? sched::CanErrorModel{kTError} : sched::CanErrorModel{};

  const auto front_set = [](SimTime j_cmd) -> std::vector<CanMessage> {
    return {
        {"fl", kFlWheelId, 2, 10 * kMillisecond, 0, 0},
        {"fr", kFrWheelId, 2, 10 * kMillisecond, 0, 0},
        {"brake", kFBrakeId, 4, 10 * kMillisecond, 0, 0},
        {"lights", kFLightsId, 4, 50 * kMillisecond, 0, 0},
        {"park", kFParkId, 2, 100 * kMillisecond, 0, 0},
        {"cmd_a", kCmdAId, 4, 20 * kMillisecond, 0, j_cmd},
        {"cmd_b", kCmdBId, 4, 20 * kMillisecond, 0, j_cmd},
        {"fzc", kFzcReplyId, 4, 20 * kMillisecond, 0, j_cmd},
    };
  };
  const auto rear_set = [](SimTime j_stat,
                           SimTime j_ack) -> std::vector<CanMessage> {
    return {
        {"stat", kAdasStatId, 8, 20 * kMillisecond, 0, j_stat},
        {"rl", kRlWheelId, 2, 10 * kMillisecond, 0, 0},
        {"rr", kRrWheelId, 2, 10 * kMillisecond, 0, 0},
        {"brake", kRBrakeId, 4, 10 * kMillisecond, 0, 0},
        {"ack", kRzcAckId, 4, 10 * kMillisecond, 0, j_ack},
        {"trailer", kTrailerId, 2, 20 * kMillisecond, 0, 0},
        {"rpark", kRParkId, 2, 100 * kMillisecond, 0, 0},
    };
  };
  // On the backbone the trailer frame is FD (the gateway promotes it) and
  // the unpacked susp frame is classic — formats exactly as simulated.
  const auto bb_set = [](SimTime j_a0, SimTime j_b0, SimTime j_128,
                         SimTime j_330) -> std::vector<CanMessage> {
    return {
        {"adas_stat", kAdasStatId, 8, 20 * kMillisecond, 0, 0, false, true},
        {"adas_cmd", kAdasCmdId, 9, 20 * kMillisecond, 0, 0, false, true},
        {"front_agg", kFrontAggId, 9, 10 * kMillisecond, 0, j_a0, false,
         true},
        {"rear_agg", kRearAggId, 9, 10 * kMillisecond, 0, j_b0, false,
         true},
        {"trailer", kTrailerId, 2, 20 * kMillisecond, 0, j_128, false,
         true},
        {"telem", kTelemId, 10, 50 * kMillisecond, 0, 0, false, true},
        {"susp", kSuspId, 8, 10 * kMillisecond, 0, j_330, false, false},
        {"infotain", kInfotainId, 12, 20 * kMillisecond, 0, 0, false, true},
    };
  };

  // P4 first: the demoted status outranks everything on rear, and its
  // rear-leg bound feeds every later rear-hop set as inherited jitter.
  const sched::PathRtaResult r_stat = sched::path_rta(
      {sched::make_hop(bb_set(0, 0, 0, 0), kAdasStatId, 500'000, 0, {}, bb,
                       2'000'000),
       sched::make_hop(rear_set(0, 0), kAdasStatId, 125'000, kGwLatency,
                       legacy_err, rear)});
  const SimTime j_stat = r_stat.hop_response[0] + kGwLatency;
  // P2: adas_cmd across the backbone, unpacked slice on front.
  const sched::PathRtaResult r_cmd = sched::path_rta(
      {sched::make_hop(bb_set(0, 0, 0, 0), kAdasCmdId, 500'000, 0, {}, bb,
                       2'000'000),
       sched::make_hop(front_set(0), kCmdAId, 125'000, kGwLatency,
                       legacy_err, front)});
  // P1: front brake -> packed FD aggregate on the backbone.
  const sched::PathRtaResult r_fagg = sched::path_rta(
      {sched::make_hop(front_set(0), kFBrakeId, 125'000, 0, legacy_err,
                       front),
       sched::make_hop(bb_set(0, 0, 0, 0), kFrontAggId, 500'000, kGwLatency,
                       {}, bb, 2'000'000)});
  const SimTime j_a0 = r_fagg.hop_response[0] + kGwLatency;
  // P3: rear brake -> FD aggregate -> FlexRay dynamic frame (3 hops).
  const sched::PathRtaResult r_axle = sched::path_rta(
      {sched::make_hop(rear_set(j_stat, 0), kRBrakeId, 125'000, 0,
                       legacy_err, rear),
       sched::make_hop(bb_set(j_a0, 0, 0, 0), kRearAggId, 500'000,
                       kGwLatency, {}, bb, 2'000'000),
       fr.dynamic_hop(fr.dyn_by_slot(kAxleSlot), kDynDeadline, kGwLatency,
                      chassis)});
  const SimTime j_b0 = r_axle.hop_response[1] + kGwLatency;
  // The rzc's brake ack releases when the brake frame delivers: its
  // release jitter is the brake's rear-leg bound plus the ISR turnaround.
  const SimTime j_ack = r_axle.hop_response[0] + kMillisecond;
  // P6: trailer, promoted to FD on the backbone.
  const sched::PathRtaResult r_trailer = sched::path_rta(
      {sched::make_hop(rear_set(j_stat, j_ack), kTrailerId, 125'000, 0,
                       legacy_err, rear),
       sched::make_hop(bb_set(j_a0, j_b0, 0, 0), kTrailerId, 500'000,
                       kGwLatency, {}, bb, 2'000'000)});
  const SimTime j_128 = r_trailer.hop_response[0] + kGwLatency;
  // P5: FlexRay suspension frame, unpacked onto the backbone.
  const sched::PathRtaResult r_susp = sched::path_rta(
      {fr.dynamic_hop(susp_dyn, kDynDeadline, 0, chassis),
       sched::make_hop(bb_set(j_a0, j_b0, j_128, 0), kSuspId, 500'000,
                       kGwLatency, {}, bb, 2'000'000)});

  // ===== report + checks ================================================
  line(rep, "scenario: %s", faulted ? "seeded bit errors on front+rear"
                                    : "fault-free");
  struct PathRow {
    const char* name;
    const E2e* p;
    const sched::PathRtaResult* bound;
  };
  const PathRow rows[] = {
      {"P1 front_agg  front->bb (pack->FD)", &e2e[kFrontAggId], &r_fagg},
      {"P2 adas_cmd   bb->front (unpack)", &e2e[kCmdAId], &r_cmd},
      {"P3 axle       rear->bb->chassis", &axle, &r_axle},
      {"P4 adas_stat  bb->rear (demote)", &e2e[kAdasStatId], &r_stat},
      {"P5 susp       chassis->bb (unpack)", &e2e[kSuspId], &r_susp},
      {"P6 trailer    rear->bb (promote)", &e2e[kTrailerId], &r_trailer},
  };
  for (const PathRow& row : rows) {
    line(rep, "%-36s %6llu frames  measured %8lldus <= bound %8lldus",
         row.name, static_cast<unsigned long long>(row.p->heard),
         static_cast<long long>(row.p->worst / 1000),
         static_cast<long long>(row.bound->response / 1000));
    ACES_CHECK_MSG(row.p->heard > 0, "routed path carried no frames");
    ACES_CHECK_MSG(row.p->worst <= row.bound->response,
                   std::string(row.name) + ": measured " +
                       std::to_string(row.p->worst) + "ns > bound " +
                       std::to_string(row.bound->response) + "ns");
    ACES_CHECK_MSG(row.bound->schedulable, row.name);
    ++rep.checks;
  }
  line(rep, "chassis: %llu cycles, %llu static slots played",
       static_cast<unsigned long long>(fr.cycles_run()),
       static_cast<unsigned long long>(fr.slots_played()));
  for (const net::GatewayId g : {gwf, gwr, gwc}) {
    const auto& st = net.gateway(g).stats();
    line(rep, "%-10s forwarded %6llu delivered %6llu dropped %llu",
         net.gateway(g).name().c_str(),
         static_cast<unsigned long long>(st.frames_forwarded),
         static_cast<unsigned long long>(st.frames_delivered),
         static_cast<unsigned long long>(st.frames_dropped));
  }
  // Translation statistics: pack/unpack consumed and emitted exactly as
  // the topology implies.
  const auto& pfs = net.gateway(gwf).packed_stats(0);
  const auto& ufs = net.gateway(gwf).unpack_stats(0);
  const auto& pcs = net.gateway(gwc).packed_stats(0);
  const auto& ucs = net.gateway(gwc).unpack_stats(0);
  line(rep,
       "gw_front pack: %llu updates -> %llu agg; unpack: %llu big -> %llu "
       "slices",
       static_cast<unsigned long long>(pfs.updates),
       static_cast<unsigned long long>(pfs.emitted),
       static_cast<unsigned long long>(ufs.updates),
       static_cast<unsigned long long>(ufs.emitted));
  line(rep, "gw_chassis pack: %llu -> %llu; unpack: %llu -> %llu",
       static_cast<unsigned long long>(pcs.updates),
       static_cast<unsigned long long>(pcs.emitted),
       static_cast<unsigned long long>(ucs.updates),
       static_cast<unsigned long long>(ucs.emitted));

  if (faulted) {
    for (const net::BusId b : {front, rear}) {
      const auto& fs = net.bus(b).fault_stats();
      line(rep, "%-8s bit errors %3llu  retransmissions %3llu  bus-off %llu",
           net.bus_name(b).c_str(),
           static_cast<unsigned long long>(fs.bit_errors),
           static_cast<unsigned long long>(fs.retransmissions),
           static_cast<unsigned long long>(fs.bus_off_events));
      // The campaign is calibrated to stay below the bus-off threshold:
      // past it the 128x11-bit recovery gap voids the retransmission-only
      // error term (same skip rule as the campaign runner).
      ACES_CHECK_MSG(fs.bus_off_events == 0,
                     "seeded campaign drove a node to bus-off");
      ACES_CHECK(fs.bit_errors > 0);  // the campaign actually fired
      ++rep.checks;
    }
  }

  // ===== exact deterministic self-checks (fault-free topology) =========
  if (!faulted) {
    // 10 ms publishers: activations at 0,10,...,2000 ms; the horizon
    // instance completes past the horizon -> 200 frames each.
    ACES_CHECK(net.model(f_brake).task_stats(0).completions == 200);
    ACES_CHECK(net.model(r_brake).task_stats(0).completions == 200);
    // every brake completion triggers one packed aggregate; every
    // aggregate triggers the chassis pack (rear trigger), minus frames
    // still inside a fabric at the horizon.
    ACES_CHECK(e2e[kFrontAggId].heard == pfs.emitted ||
               e2e[kFrontAggId].heard + 1 == pfs.emitted);
    ACES_CHECK(net.model(cockpit).task_stats(0).activations ==
               e2e[kFrontAggId].heard);
    // adas_cmd 20 ms -> 100 big frames -> 100 cmd_a + 100 cmd_b slices;
    // the fzc ISS answers every cmd_b.
    ACES_CHECK(ufs.updates == 100);
    ACES_CHECK(ufs.emitted == 200);
    ACES_CHECK(e2e[kCmdAId].heard == 100);
    ACES_CHECK(net.model(f_body).task_stats(0).activations == 100);
    ACES_CHECK(net.iss(fzc).read_word(kCount) == 100);
    // the rzc ISS acks every rear brake frame.
    ACES_CHECK(net.iss(rzc).read_word(kCount) == 200);
    // demotion + promotion routes carried every frame.
    ACES_CHECK(e2e[kAdasStatId].heard == 100);
    ACES_CHECK(net.model(r_body).task_stats(0).activations == 100);
    ACES_CHECK(e2e[kTrailerId].heard == 100);
    // FlexRay: one suspension frame per 10 ms from t = 0 -> 201 queued,
    // every one delivered and unpacked onto the backbone.
    ACES_CHECK(fr.dyn_stats(susp_dyn).sent == ucs.updates);
    ACES_CHECK(e2e[kSuspId].heard == ucs.emitted ||
               e2e[kSuspId].heard + 1 == ucs.emitted);
    ACES_CHECK(net.model(datalog).task_stats(0).activations ==
               e2e[kSuspId].heard);
    // nothing dropped anywhere, no deadline misses in the model fleet.
    for (const net::GatewayId g : {gwf, gwr, gwc}) {
      ACES_CHECK(net.gateway(g).stats().frames_dropped == 0);
    }
    for (std::size_t k = 0; k < net.ecu_count(); ++k) {
      if (auto* kernel = net.ecu(static_cast<net::EcuId>(k)).kernel()) {
        for (int t = 0; t < kernel->task_count(); ++t) {
          ACES_CHECK(kernel->stats(t).deadline_misses == 0);
        }
      }
    }
    rep.checks += 20;
  }
  return rep;
}

}  // namespace

int main() {
  std::printf("=== zonal network: 20 ECUs, 2 legacy zones + CAN FD "
              "backbone + FlexRay chassis ===\n\n");
  // Both scenarios run twice: a deterministic co-simulation must be
  // bit-identical run to run, including the seeded fault campaign.
  const Report ff_a = run_scenario(false);
  const Report ff_b = run_scenario(false);
  ACES_CHECK_MSG(ff_a.text == ff_b.text,
                 "fault-free double run was not bit-identical");
  const Report f_a = run_scenario(true);
  const Report f_b = run_scenario(true);
  ACES_CHECK_MSG(f_a.text == f_b.text,
                 "faulted double run was not bit-identical");
  std::fputs(ff_a.text.c_str(), stdout);
  std::printf("\n");
  std::fputs(f_a.text.c_str(), stdout);
  std::printf("\nall checks passed: 6 translated paths within their "
              "cross-fabric bounds, fault-free and faulted, double runs "
              "bit-identical.\n");
  return 0;
}
