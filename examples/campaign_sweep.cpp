// Campaign sweep: where does the vehicle network stop being provably sound?
//
// Sweeps the seeded bit-error period (the Tindell fault hypothesis T_error)
// against the central gateway's queue depth over the 3-bus vehicle preset,
// several seeded replicates per grid point, and prints the violation
// frontier: the region where variants stay analytically schedulable and
// within their sched::path_rta bounds, versus the region where the fault
// burden makes a routed path unprovable (or measurably late). One violating
// variant is then replayed alone from its (spec, seed) pair and must
// reproduce the campaign's result bit-identically — the debugging workflow
// the campaign engine exists for: a thousand-variant sweep finds the bad
// corner, one replay reproduces it.
#include <cstdio>
#include <map>
#include <utility>

#include "campaign/presets.h"
#include "campaign/runner.h"
#include "support/check.h"

using namespace aces;
using sim::kMillisecond;

int main() {
  campaign::ScenarioSpec spec =
      campaign::presets::vehicle_spec(250 * kMillisecond);
  // Re-grid the preset: a finer fault axis against both queue depths at a
  // fixed elevated background load, five seeds per cell.
  spec.axes = {
      {"error_period_ns",
       {0.0, 50.0e6, 20.0e6, 10.0e6, 5.0e6, 2.0e6, 1.0e6}},
      {"gw_depth", {8.0, 1.0}},
      {"load_pct", {130.0}},
  };
  spec.replicates = 5;

  std::printf("=== campaign sweep: T_error x gateway depth, %zu variants "
              "===\n\n", spec.variant_count());
  const campaign::CampaignResult result =
      campaign::CampaignRunner().run(spec);

  // --- the frontier ------------------------------------------------------
  // cell (T_error, depth) -> (violating replicates, total replicates)
  std::map<std::pair<double, double>, std::pair<int, int>> cells;
  for (const auto& v : result.variants) {
    double period = 0.0, depth = 0.0;
    for (const auto& [name, value] : v.params) {
      if (name == "error_period_ns") period = value;
      if (name == "gw_depth") depth = value;
    }
    auto& cell = cells[{period, depth}];
    cell.first += v.violating() ? 1 : 0;
    cell.second += 1;
  }
  std::printf("violating replicates per cell ('.' = all clean):\n\n");
  std::printf("%14s", "T_error");
  for (const double depth : spec.axes[1].values) {
    std::printf("   depth %-3.0f", depth);
  }
  std::printf("\n");
  for (const double period : spec.axes[0].values) {
    if (period == 0.0) {
      std::printf("%14s", "fault-free");
    } else {
      std::printf("%11.0f ms", period / 1e6);
    }
    for (const double depth : spec.axes[1].values) {
      const auto& cell = cells.at({period, depth});
      if (cell.first == 0) {
        std::printf("   %-9s", ".");
      } else {
        std::printf("   %d/%-7d", cell.first, cell.second);
      }
    }
    std::printf("\n");
  }

  // --- replay one violating seed end to end -------------------------------
  const campaign::VariantResult* bad = result.first_violating();
  ACES_CHECK_MSG(bad != nullptr,
                 "expected the aggressive corner of the sweep to violate");
  std::printf("\nfirst violating variant: index %u, seed %llu\n",
              bad->index, static_cast<unsigned long long>(bad->seed));
  for (const auto& reason : bad->violations) {
    std::printf("  reason: %s\n", reason.c_str());
  }
  const campaign::VariantResult replayed =
      campaign::CampaignRunner().replay(spec, bad->index, bad->seed);
  ACES_CHECK(replayed.fingerprint == bad->fingerprint);
  ACES_CHECK(replayed.bit_errors == bad->bit_errors);
  ACES_CHECK(replayed.bus_off_events == bad->bus_off_events);
  ACES_CHECK(replayed.overflow_drops == bad->overflow_drops);
  ACES_CHECK(replayed.violations == bad->violations);
  for (std::size_t k = 0; k < replayed.paths.size(); ++k) {
    ACES_CHECK(replayed.paths[k].frames == bad->paths[k].frames);
    ACES_CHECK(replayed.paths[k].max_latency == bad->paths[k].max_latency);
  }
  std::printf("replayed alone from (spec, seed): fingerprint %016llx, "
              "%llu bit errors, %zu frames on '%s' — bit-identical\n",
              static_cast<unsigned long long>(replayed.fingerprint),
              static_cast<unsigned long long>(replayed.bit_errors),
              static_cast<std::size_t>(replayed.paths[0].frames),
              result.paths[0].name.c_str());
  std::printf("\n[campaign_sweep] all checks passed\n");
  return 0;
}
