// Quickstart: one automotive routine, three encodings, one simulator.
//
// Builds a small sensor-scaling function in KIR, lowers it to each of the
// UC32 encodings, disassembles the blended-encoding image, and runs all
// three on matching cores — the smallest end-to-end tour of the library.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/disasm.h"
#include "kir/kir.h"
#include "kir/lower.h"

using namespace aces;

int main() {
  // scale(raw, gain, offset) = clamp(raw * gain / 256 + offset, 0, 4095)
  kir::KFunction f("scale", 3);
  const kir::VReg raw = 0, gain = 1, offset = 2;
  const kir::VReg t = f.v(), lo = f.v(), hi = f.v();
  f.arith(kir::KOp::mul, t, raw, gain);
  f.arith_imm(kir::KOp::shr_s, t, t, 8);
  f.arith(kir::KOp::add, t, t, offset);
  f.movi(lo, 0);
  f.movi(hi, 4095);
  f.select(t, isa::Cond::lt, t, lo, lo, t);
  f.select(t, isa::Cond::gt, t, hi, hi, t);
  f.ret(t);

  std::printf("scale(raw, gain, offset) on the three UC32 encodings\n\n");
  for (const isa::Encoding enc :
       {isa::Encoding::w32, isa::Encoding::n16, isa::Encoding::b32}) {
    const kir::LoweredProgram prog =
        kir::lower_program({&f}, enc, cpu::kFlashBase);

    cpu::System sys(cpu::profiles::for_encoding(enc));
    sys.load(prog.image);

    sys.core().reset(prog.entry_of("scale"), sys.initial_sp());
    sys.core().set_reg(isa::r0, 900);   // raw ADC counts
    sys.core().set_reg(isa::r1, 320);   // gain (Q8.8 ~ 1.25)
    sys.core().set_reg(isa::r2, 100);   // offset
    ACES_CHECK(sys.core().run(10'000) == cpu::HaltReason::exited);

    std::printf("%s: result=%u  code=%u bytes  cycles=%llu  insns=%llu\n",
                std::string(isa::encoding_name(enc)).c_str(),
                sys.core().reg(isa::r0), prog.code_bytes,
                static_cast<unsigned long long>(sys.core().cycles()),
                static_cast<unsigned long long>(sys.core().instructions()));
  }

  std::printf("\nBlended-encoding disassembly:\n%s\n",
              isa::disassemble_image(
                  kir::lower_program({&f}, isa::Encoding::b32, 0).image)
                  .c_str());
  return 0;
}
