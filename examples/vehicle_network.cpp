// Whole-vehicle network: 24 ECUs on three gateway-bridged CAN buses.
//
// The paper's distributed vision scaled up: a segmented E/E architecture —
// powertrain (500 kbps), body (125 kbps) and diagnostics (250 kbps) —
// bridged by a central store-and-forward gateway, declared bus-by-bus and
// ECU-by-ECU with net::NetworkBuilder and advanced on one deterministic
// co-simulation time base.
//
//            powertrain 500k          body 125k             diag 250k
//   ISS    engine(16MHz)          door(8MHz) seat(8MHz)         -
//   model  abs trans esc inj      bcm lights wipers hvac    tester logger
//          turbo egr oil          windows mirrors park      obd dtc
//                                 cluster                   gwmon fwsvc
//              |                      |                       |
//              +--------------- gateway "central" ------------+
//                     (200 us store-and-forward, depth 8)
//
// Routed traffic exercises every direction:
//   0x700 diag request   diag -> powertrain (remapped 0x0F0); the engine's
//                        compiled ISR answers with 0x110 engine status
//   0x110 engine status  powertrain -> diag (remapped 0x610); activates
//                        the logger's task
//   0x050 wheel speed    powertrain -> body; activates the cluster's task
//   0x1A0 door status    body -> diag (remapped 0x660)
// while the body bus runs the body_network relay chain (bcm lock command
// -> door ISS -> seat ISS) as local traffic.
//
// Every routed frame carries its origin timestamp, so the example measures
// true end-to-end latency per path and checks it against sched::path_rta —
// the per-bus response-time analysis composed across gateway hops, with
// inherited jitters derived in dependency order. All frame counts are
// exact and the run is deterministic (double runs are bit-identical).
//
//   $ ./examples/vehicle_network
#include <cstdio>

#include <algorithm>
#include <map>

#include "can/bus.h"
#include "can/controller.h"
#include "cpu/profiles.h"
#include "guest_util.h"
#include "isa/assembler.h"
#include "net/network.h"
#include "sched/can_rta.h"

using namespace aces;
using namespace aces::isa;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;
using Ctl = can::CanController;

namespace {

// Identifiers. Per bus, every identifier is unique (the RTA's priority
// assumption, diagnosed by the bus as duplicate_id_conflicts otherwise).
constexpr std::uint32_t kWheelId = 0x050;      // abs -> powertrain (+ body)
constexpr std::uint32_t kDiagReqPtId = 0x0F0;  // 0x700 remapped onto pt
constexpr std::uint32_t kEngStatusId = 0x110;  // engine -> powertrain
constexpr std::uint32_t kLockCmdId = 0x0E0;    // bcm -> body
constexpr std::uint32_t kDoorStatusId = 0x1A0; // door -> body
constexpr std::uint32_t kSeatPosId = 0x200;    // seat -> body
constexpr std::uint32_t kEngStatusDiagId = 0x610;  // 0x110 remapped
constexpr std::uint32_t kDoorStatusDiagId = 0x660; // 0x1A0 remapped
constexpr std::uint32_t kDiagReqId = 0x700;    // tester -> diag

constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;
constexpr unsigned kRxLine = 1;
constexpr SimTime kGwLatency = 200 * kMicrosecond;
constexpr SimTime kHorizon = 5 * sim::kSecond;

net::GuestProgram relay_program(std::uint32_t match_id,
                                std::uint32_t reply_id,
                                std::uint32_t reply_mask) {
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = examples::emit_idle_loop(a, /*wfi=*/true);
  const Label isr =
      examples::emit_relay_isr(a, match_id, reply_id, reply_mask, kCount);
  net::GuestProgram p;
  p.image = a.assemble();
  p.entry = a.label_address(entry);
  p.handlers.push_back({kRxLine, a.label_address(isr), 32});
  return p;
}

// A single-task periodic publisher: completion is exactly periodic (one
// task, no contention), so its CAN release has zero jitter — which is what
// lets the analysis sets below use J = 0 for local traffic.
net::ModelTask publisher(const char* task, int prio, SimTime exec,
                         SimTime period, std::uint32_t id, unsigned dlc) {
  net::ModelTask t;
  t.name = task;
  t.priority = prio;
  t.exec = exec;
  t.period = period;
  can::CanFrame f;
  f.id = id;
  f.dlc = dlc;
  t.tx = f;
  return t;
}

net::ModelTask consumer(const char* task, int prio, SimTime exec,
                        std::uint32_t rx_id) {
  net::ModelTask t;
  t.name = task;
  t.priority = prio;
  t.exec = exec;
  t.activate_on_rx = rx_id;
  return t;
}

// End-to-end latency probe: worst (delivery - origin timestamp) per id.
struct E2e {
  SimTime worst = 0;
  std::uint64_t heard = 0;
};

}  // namespace

int main() {
  // ===== topology =======================================================
  net::NetworkBuilder nb;
  const net::BusId pt = nb.bus("powertrain", 500'000);
  const net::BusId body = nb.bus("body", 125'000);
  const net::BusId diag = nb.bus("diag", 250'000);

  Ctl::Config cc;
  cc.rx_line = kRxLine;

  // --- powertrain: 1 ISS + 7 kernel-model ECUs --------------------------
  const net::EcuId engine = nb.ecu(
      pt,
      cpu::profiles::modern_mcu().name("engine").clock_hz(16'000'000)
          .flash_size(32 * 1024),
      relay_program(kDiagReqPtId, kEngStatusId, 0), cc);
  const net::EcuId abs = nb.ecu(
      pt, "abs", {publisher("wheel_acq", 8, kMillisecond, 5 * kMillisecond,
                            kWheelId, 8)});
  nb.ecu(pt, "trans", {publisher("shift_ctl", 7, 2 * kMillisecond,
                                 10 * kMillisecond, 0x060, 8)});
  nb.ecu(pt, "esc", {publisher("stability", 7, kMillisecond,
                               10 * kMillisecond, 0x070, 6)});
  nb.ecu(pt, "inj", {publisher("injection", 6, 2 * kMillisecond,
                               10 * kMillisecond, 0x130, 4)});
  nb.ecu(pt, "turbo", {publisher("boost", 5, 2 * kMillisecond,
                                 20 * kMillisecond, 0x150, 4)});
  nb.ecu(pt, "egr", {publisher("egr_ctl", 5, 2 * kMillisecond,
                               20 * kMillisecond, 0x170, 2)});
  nb.ecu(pt, "oil", {publisher("oil_mon", 4, 5 * kMillisecond,
                               50 * kMillisecond, 0x190, 2)});

  // --- body: 2 ISS + 8 kernel-model ECUs (the body_network relay chain
  // as local traffic) ----------------------------------------------------
  const net::EcuId door = nb.ecu(
      body,
      cpu::profiles::modern_mcu().name("door").clock_hz(8'000'000)
          .flash_size(32 * 1024),
      relay_program(kLockCmdId, kDoorStatusId, 0), cc);
  const net::EcuId seat = nb.ecu(
      body,
      cpu::profiles::modern_mcu().name("seat").clock_hz(8'000'000)
          .flash_size(32 * 1024),
      relay_program(kDoorStatusId, kSeatPosId, 1), cc);
  const net::EcuId bcm = nb.ecu(
      body, "bcm", {publisher("lock_ctl", 8, kMillisecond,
                              20 * kMillisecond, kLockCmdId, 2)});
  nb.ecu(body, "lights", {publisher("light_ctl", 6, kMillisecond,
                                    20 * kMillisecond, 0x210, 4)});
  nb.ecu(body, "wipers", {publisher("wipe_ctl", 5, 2 * kMillisecond,
                                    50 * kMillisecond, 0x220, 2)});
  nb.ecu(body, "hvac", {publisher("hvac_ctl", 5, 4 * kMillisecond,
                                  100 * kMillisecond, 0x230, 6)});
  nb.ecu(body, "windows", {publisher("win_ctl", 4, 2 * kMillisecond,
                                     50 * kMillisecond, 0x240, 2)});
  nb.ecu(body, "mirrors", {publisher("mirror", 3, 2 * kMillisecond,
                                     100 * kMillisecond, 0x250, 2)});
  nb.ecu(body, "park", {publisher("park_aid", 3, 2 * kMillisecond,
                                  100 * kMillisecond, 0x260, 2)});
  const net::EcuId cluster =
      nb.ecu(body, "cluster",
             {consumer("speed_disp", 6, 500 * kMicrosecond, kWheelId)});

  // --- diag: 6 kernel-model ECUs ---------------------------------------
  const net::EcuId tester = nb.ecu(
      diag, "tester", {publisher("poll_ecu", 7, 2 * kMillisecond,
                                 50 * kMillisecond, kDiagReqId, 2)});
  const net::EcuId logger =
      nb.ecu(diag, "logger",
             {consumer("log_status", 6, kMillisecond, kEngStatusDiagId)});
  nb.ecu(diag, "obd", {publisher("obd_bcast", 5, 2 * kMillisecond,
                                 100 * kMillisecond, 0x620, 8)});
  nb.ecu(diag, "dtc", {publisher("dtc_scan", 4, 5 * kMillisecond,
                                 200 * kMillisecond, 0x630, 4)});
  nb.ecu(diag, "gwmon", {publisher("gw_mon", 3, 5 * kMillisecond,
                                   100 * kMillisecond, 0x640, 2)});
  nb.ecu(diag, "fwsvc", {publisher("fw_svc", 2, 10 * kMillisecond,
                                   500 * kMillisecond, 0x650, 8)});

  // --- the central gateway ---------------------------------------------
  net::GatewayConfig gc;
  gc.forwarding_latency = kGwLatency;
  gc.queue_depth = 8;
  const net::GatewayId gw = nb.gateway("central", gc);
  nb.route(gw, {diag, pt, kDiagReqId, 0x7FF, kDiagReqPtId});
  nb.route(gw, {pt, diag, kEngStatusId, 0x7FF, kEngStatusDiagId});
  nb.route(gw, {pt, body, kWheelId, 0x7FF, {}});
  nb.route(gw, {body, diag, kDoorStatusId, 0x7FF, kDoorStatusDiagId});

  net::Network net = nb.build();

  // ===== end-to-end probes =============================================
  std::map<std::uint32_t, E2e> e2e;
  const auto probe = [&net, &e2e](net::BusId bus_id,
                                  std::uint32_t id) {
    const can::NodeId node =
        net.bus(bus_id).attach_node("probe:" + net.bus_name(bus_id));
    net.bus(bus_id).subscribe(node,
                              [&e2e, id](const can::CanFrame& f, SimTime at) {
                                if (f.id != id) {
                                  return;
                                }
                                E2e& p = e2e[id];
                                ++p.heard;
                                p.worst =
                                    std::max(p.worst, at - f.timestamp);
                              });
  };
  probe(pt, kDiagReqPtId);        // tester request, arriving on powertrain
  probe(body, kWheelId);          // wheel speed, arriving on body
  probe(diag, kEngStatusDiagId);  // engine status, arriving on diag
  probe(diag, kDoorStatusDiagId); // door status, arriving on diag

  net.run_until(kHorizon);

  // ===== the analysis: path_rta with inherited jitters =================
  // Every local publisher is a single-task kernel (completion exactly
  // periodic, J = 0); routed messages inherit the upstream bound as
  // release jitter, computed in dependency order below.
  using sched::CanMessage;
  const auto pt_set = [](SimTime j_req) -> std::vector<CanMessage> {
    return {
        {"wheel", kWheelId, 8, 5 * kMillisecond, 0, 0},
        {"trans", 0x060, 8, 10 * kMillisecond, 0, 0},
        {"esc", 0x070, 6, 10 * kMillisecond, 0, 0},
        {"diag_req", kDiagReqPtId, 2, 50 * kMillisecond, 0, j_req},
        {"eng_status", kEngStatusId, 4, 50 * kMillisecond, 0, 0},
        {"inj", 0x130, 4, 10 * kMillisecond, 0, 0},
        {"turbo", 0x150, 4, 20 * kMillisecond, 0, 0},
        {"egr", 0x170, 2, 20 * kMillisecond, 0, 0},
        {"oil", 0x190, 2, 50 * kMillisecond, 0, 0},
    };
  };
  const auto body_set = [](SimTime j_wheel) -> std::vector<CanMessage> {
    return {
        {"wheel", kWheelId, 8, 5 * kMillisecond, 0, j_wheel},
        {"lock_cmd", kLockCmdId, 2, 20 * kMillisecond, 0, 0},
        {"door_stat", kDoorStatusId, 4, 20 * kMillisecond, 0, 0},
        {"seat_pos", kSeatPosId, 4, 40 * kMillisecond, 0, 0},
        {"lights", 0x210, 4, 20 * kMillisecond, 0, 0},
        {"wipers", 0x220, 2, 50 * kMillisecond, 0, 0},
        {"hvac", 0x230, 6, 100 * kMillisecond, 0, 0},
        {"windows", 0x240, 2, 50 * kMillisecond, 0, 0},
        {"mirrors", 0x250, 2, 100 * kMillisecond, 0, 0},
        {"park", 0x260, 2, 100 * kMillisecond, 0, 0},
    };
  };
  const auto diag_set = [](SimTime j_status) -> std::vector<CanMessage> {
    return {
        {"eng_status", kEngStatusDiagId, 4, 50 * kMillisecond, 0, j_status},
        {"obd", 0x620, 8, 100 * kMillisecond, 0, 0},
        {"dtc", 0x630, 4, 200 * kMillisecond, 0, 0},
        {"gw_mon", 0x640, 2, 100 * kMillisecond, 0, 0},
        {"door_stat", kDoorStatusDiagId, 4, 20 * kMillisecond, 0, 0},
        {"fw_svc", 0x650, 8, 500 * kMillisecond, 0, 0},
        {"diag_req", kDiagReqId, 2, 50 * kMillisecond, 0, 0},
    };
  };
  const auto hop = [](std::vector<CanMessage> msgs, std::uint32_t id,
                      std::uint32_t bps, SimTime latency) {
    sched::PathHop h;
    h.messages = std::move(msgs);
    for (std::size_t k = 0; k < h.messages.size(); ++k) {
      if (h.messages[k].id == id) {
        h.message = k;
      }
    }
    h.bitrate_bps = bps;
    h.gateway_latency = latency;
    return h;
  };

  // 1) diag request: diag -> powertrain. All higher-priority interference
  //    on both hops is exactly periodic, so no inherited jitters needed.
  const sched::PathRtaResult r_req =
      sched::path_rta({hop(diag_set(0), kDiagReqId, 250'000, 0),
                       hop(pt_set(0), kDiagReqPtId, 500'000, kGwLatency)});
  // 2) wheel speed: powertrain -> body (it is the top priority on both).
  const sched::PathRtaResult r_wheel =
      sched::path_rta({hop(pt_set(0), kWheelId, 500'000, 0),
                       hop(body_set(0), kWheelId, 125'000, kGwLatency)});
  // 3) engine status: powertrain -> diag. On powertrain the routed diag
  //    request outranks it, so that interferer carries its inherited
  //    release jitter (its own diag-leg bound).
  const sched::PathRtaResult r_status = sched::path_rta(
      {hop(pt_set(r_req.hop_response[0]), kEngStatusId, 500'000, 0),
       hop(diag_set(0), kEngStatusDiagId, 250'000, kGwLatency)});
  // 4) door status: body -> diag. The routed wheel frame outranks it on
  //    body; the routed engine status outranks it on diag.
  const sched::PathRtaResult r_door = sched::path_rta(
      {hop(body_set(r_wheel.hop_response[0]), kDoorStatusId, 125'000, 0),
       hop(diag_set(r_status.response), kDoorStatusDiagId, 250'000,
           kGwLatency)});

  // ===== report ========================================================
  std::printf("=== vehicle network: 24 ECUs, 3 bridged buses, "
              "5 simulated seconds ===\n\n");
  std::printf("%-12s %8s %6s %8s %12s %12s\n", "bus", "rate", "ECUs",
              "frames", "utilization", "worst lat");
  std::printf("----------------------------------------------------------"
              "-----\n");
  for (const net::BusId b : {pt, body, diag}) {
    std::uint64_t frames = 0;
    SimTime worst = 0;
    for (const auto& [id, st] : net.bus(b).stats()) {
      frames += st.sent;
      worst = std::max(worst, st.worst_latency);
    }
    int ecus = 0;
    for (std::size_t k = 0; k < net.ecu_count(); ++k) {
      ecus += net.ecu(static_cast<net::EcuId>(k)).bus() == b ? 1 : 0;
    }
    std::printf("%-12s %5ukbps %6d %8llu %11.1f%% %10lldus\n",
                net.bus_name(b).c_str(),
                b == pt ? 500u : (b == body ? 125u : 250u), ecus,
                static_cast<unsigned long long>(frames),
                100.0 * net.bus(b).utilization(kHorizon),
                static_cast<long long>(worst / 1000));
  }

  const net::GatewayNode& g = net.gateway(gw);
  std::printf("\ngateway 'central' (%lldus store-and-forward, depth %u)\n",
              static_cast<long long>(kGwLatency / 1000), gc.queue_depth);
  std::printf("%-12s %-12s %9s %9s %8s %6s %12s\n", "from", "to", "forwarded",
              "delivered", "dropped", "peak", "worst transit");
  std::printf("----------------------------------------------------------"
              "-------------\n");
  const std::pair<net::BusId, net::BusId> dirs[] = {
      {diag, pt}, {pt, diag}, {pt, body}, {body, diag}};
  for (const auto& [from, to] : dirs) {
    const auto& d = g.direction(from, to);
    std::printf("%-12s %-12s %9llu %9llu %8llu %6u %10lldus\n",
                net.bus_name(from).c_str(), net.bus_name(to).c_str(),
                static_cast<unsigned long long>(d.forwarded),
                static_cast<unsigned long long>(d.delivered),
                static_cast<unsigned long long>(d.dropped_overflow),
                d.peak_queued,
                static_cast<long long>(d.worst_transit / 1000));
  }

  std::printf("\nrouted paths: measured end-to-end vs path_rta bound\n");
  std::printf("%-26s %8s %12s %12s %8s\n", "path", "frames", "measured",
              "bound", "margin");
  std::printf("----------------------------------------------------------"
              "-------\n");
  struct PathRow {
    const char* name;
    std::uint32_t dst_id;
    const sched::PathRtaResult* bound;
  };
  const PathRow rows[] = {
      {"diag_req  diag->pt", kDiagReqPtId, &r_req},
      {"wheel     pt->body", kWheelId, &r_wheel},
      {"eng_stat  pt->diag", kEngStatusDiagId, &r_status},
      {"door_stat body->diag", kDoorStatusDiagId, &r_door},
  };
  for (const PathRow& row : rows) {
    const E2e& p = e2e[row.dst_id];
    std::printf("%-26s %8llu %10lldus %10lldus %7.0f%%\n", row.name,
                static_cast<unsigned long long>(p.heard),
                static_cast<long long>(p.worst / 1000),
                static_cast<long long>(row.bound->response / 1000),
                100.0 * static_cast<double>(p.worst) /
                    static_cast<double>(row.bound->response));
    ACES_CHECK_MSG(p.heard > 0, "routed path carried no frames");
    ACES_CHECK_MSG(p.worst <= row.bound->response,
                   "measured end-to-end latency exceeded the path bound");
    ACES_CHECK(row.bound->schedulable);
  }

  // Per-participant scheduler accounting: three ISS ECUs sleep in WFI
  // between interrupts, so nearly every window is an O(1) fast-forward.
  std::printf("\nco-sim: %llu events, %llu slices, %llu idle jumps\n",
              static_cast<unsigned long long>(
                  net.simulation().stats().events_executed),
              static_cast<unsigned long long>(
                  net.simulation().stats().slices),
              static_cast<unsigned long long>(
                  net.simulation().stats().idle_jumps));
  for (const auto& ps : net.simulation().stats().participants) {
    std::printf("  %-8s %9llu slices %9llu idle windows\n", ps.name.c_str(),
                static_cast<unsigned long long>(ps.slices),
                static_cast<unsigned long long>(ps.idle_windows));
  }

  // ===== exact deterministic self-checks ===============================
  // tester: activations at t = 0,50,...,5000ms (101); the t=5s instance
  // completes past the horizon -> 100 requests on the wire.
  ACES_CHECK(net.model(tester).task_stats(0).completions == 100);
  ACES_CHECK(e2e[kDiagReqPtId].heard == 100);   // all routed to powertrain
  ACES_CHECK(net.iss(engine).read_word(kCount) == 100);  // all serviced
  ACES_CHECK(e2e[kEngStatusDiagId].heard == 100);  // all answers routed back
  ACES_CHECK(net.model(logger).task_stats(0).activations == 100);
  // abs: 1001 activations, 1000 completions -> 1000 wheel frames, every
  // one bridged to body and seen by the cluster.
  ACES_CHECK(net.model(abs).task_stats(0).completions == 1000);
  ACES_CHECK(e2e[kWheelId].heard == 1000);
  ACES_CHECK(net.model(cluster).task_stats(0).activations == 1000);
  // the body relay chain: 250 lock commands -> 250 door statuses (also
  // bridged to diag) -> 125 seat position updates.
  ACES_CHECK(net.model(bcm).task_stats(0).completions == 250);
  ACES_CHECK(net.iss(door).read_word(kCount) == 250);
  ACES_CHECK(net.iss(seat).read_word(kCount) == 250);
  ACES_CHECK(e2e[kDoorStatusDiagId].heard == 250);
  ACES_CHECK(net.bus(body).stats().at(kSeatPosId).sent == 125);
  // the gateway moved every routed frame, dropped nothing, and its
  // bounded queues never saturated.
  ACES_CHECK(g.stats().frames_forwarded == 100 + 100 + 1000 + 250);
  ACES_CHECK(g.stats().frames_delivered == g.stats().frames_forwarded);
  ACES_CHECK(g.stats().frames_dropped == 0);
  // no deadline misses anywhere in the model fleet.
  for (std::size_t k = 0; k < net.ecu_count(); ++k) {
    if (auto* kernel = net.ecu(static_cast<net::EcuId>(k)).kernel()) {
      for (int t = 0; t < kernel->task_count(); ++t) {
        ACES_CHECK(kernel->stats(t).deadline_misses == 0);
      }
    }
  }
  std::printf("\nall checks passed: 24 ECUs, 3 buses, 4 routed paths, "
              "every measured latency within its analytic bound.\n");
  return 0;
}
