// Bit-band semaphores under interrupt pressure (§3.2.3 / Figure 5).
//
// Eight semaphores packed into one RAM byte. The main loop sets and clears
// its flag through the bit-band alias with single stores; an interrupt
// handler concurrently toggles a DIFFERENT flag in the SAME byte. With the
// alias, neither side masks interrupts and no update is ever lost — the
// paper's "what was a multiple operation task becomes a simple, single
// write".
//
//   $ ./examples/bitband_semaphore
#include <cstdio>

#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "isa/assembler.h"

using namespace aces;
using namespace aces::isa;

namespace {

constexpr std::uint32_t kFlagsByte = cpu::kSramBase;  // 8 semaphores
constexpr unsigned kMainBit = 2;
constexpr unsigned kIsrBit = 6;
constexpr std::uint32_t alias_of(unsigned bit) {
  return cpu::kBitBandBase + 0 * 32u + bit * 4u;
}

}  // namespace

int main() {
  Assembler a(Encoding::b32, cpu::kFlashBase);
  // Main loop: set own flag, do "work", clear own flag; count iterations
  // in r6. Interrupted constantly by the ISR touching another bit.
  const Label entry = a.bound_label();
  a.load_literal(r4, alias_of(kMainBit));
  a.ins(ins_mov_imm(r1, 1, SetFlags::any));
  a.ins(ins_mov_imm(r2, 0, SetFlags::any));
  const Label top = a.bound_label();
  a.ins(ins_ldst_imm(Op::str, r1, r4, 0));   // set flag (atomic)
  a.ins(ins_rri(Op::add, r6, r6, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r4, 0));   // clear flag (atomic)
  a.b(top);
  a.pool();
  // ISR: toggle its own flag via the alias — no masking, no RMW.
  const Label isr = a.bound_label();
  a.load_literal(r0, alias_of(kIsrBit));
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, 0));
  a.ins(ins_rri(Op::eor, r1, r1, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r1, r0, 0));
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  cpu::Ivc::Config ic;
  ic.vector_table = cpu::kSramBase + 0x40;
  ic.lines = 2;
  cpu::System sys(cpu::profiles::modern_mcu()
                      .flash_size(64 * 1024)
                      .bitband(0x100)
                      .ivc(ic));
  sys.load(image);

  cpu::Ivc& ivc = *sys.ivc();
  const std::uint32_t v = a.label_address(isr);
  const std::uint8_t vb[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  ACES_CHECK(sys.bus().load_image(ic.vector_table + 4, vb, 4));
  ivc.enable_line(1, 16);
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  // Interrupt storm: raise line 1 every ~150 cycles.
  std::uint64_t next = 100;
  sys.set_cycle_hook([&](std::uint64_t now) {
    if (now >= next) {
      ivc.raise(1, now);
      next = now + 150;
    }
  });

  int isr_toggles_seen = 0;
  int main_flag_glitches = 0;
  for (int k = 0; k < 200'000; ++k) {
    (void)sys.core().step();
    const std::uint32_t flags =
        sys.bus().read(kFlagsByte, 1, mem::Access::read, 0).value;
    // The ISR's bit must never leak into other bits of the byte.
    if ((flags & ~((1u << kMainBit) | (1u << kIsrBit))) != 0) {
      ++main_flag_glitches;
    }
    isr_toggles_seen += (flags >> kIsrBit) & 1u;
  }

  std::printf("bit-band semaphores under an interrupt storm\n");
  std::printf("  main-loop iterations : %u\n", sys.core().reg(r6));
  std::printf("  ISR entries          : %llu\n",
              static_cast<unsigned long long>(
                  ivc.stats().entries));
  std::printf("  foreign-bit glitches : %d  (must be 0: each alias write\n"
              "                          touches exactly one bit)\n",
              main_flag_glitches);
  std::printf("  interrupts masked    : never — no cpsid in either path\n");
  ACES_CHECK(main_flag_glitches == 0);
  (void)isr_toggles_seen;
  return 0;
}
