// Graceful degradation: a supervised two-bus vehicle rides out three
// node-level faults.
//
//             0x110 @10ms   +----------+  route 0: 0x110 pt->body (primary)
//   [speed]--------------+  | central  |  route 1: 0x111->0x110   (standby,
//   [speed_b] 0x111 @10ms+--| gateway  |           pre-declared disabled)
//   [engine]  ISS, hb 0x055 +----------+
//   [sup-pt]  supervisor    |          |   [aux]     0x130 @20ms, hb 0x061
//   ===========powertrain 500k         |   [dash]    consumer
//                                      |   [sup-body] supervisor + limp-home
//                  ======body 250k=====+
//
// Three drills, one deterministic run:
//
//   t=1.500s  speed CRASHES (silent death — vanishes from arbitration).
//             sup-body deadline-monitors the routed 0x110 signal itself;
//             the miss fires Mitigation::gateway_failover, which flips the
//             standby route on: speed_b's hot-standby 0x111 stream is
//             remapped onto 0x110 and the dash signal resumes.
//   t=2.503s  engine (full ISS fidelity) HANGS — compute frozen, the
//             transceiver still acknowledges, exactly the failure alive
//             supervision exists for. sup-pt misses the 0x055 heartbeat
//             and fires Mitigation::restart_ecu: a supervised reboot
//             (image reload, vector patch, core reset) revives the guest.
//   t=3.503s  aux wedges into a BABBLING IDIOT: software hangs while the
//             driver floods top-priority 0x001 every 1 ms. sup-body
//             detects the lost heartbeat, detaches the node from the bus
//             (the flood dies mid-burst) and publishes limp-home 0x130
//             substitution frames so the dash keeps seeing safe data.
//
// Every detection is measured against the analytic bound
// period + window + delivery_bound, every count is self-checked exactly,
// and the whole drill is run twice to pin bit-identical replay.
//
//   $ ./examples/degraded_network
#include <cstdio>

#include "can/bus.h"
#include "cpu/profiles.h"
#include "guest_util.h"
#include "isa/assembler.h"
#include "net/network.h"
#include "sim/simulation.h"

using namespace aces;
using sim::kMillisecond;
using sim::kMicrosecond;
using sim::SimTime;

namespace {

constexpr std::uint32_t kSpeedId = 0x110;    // primary + failover signal
constexpr std::uint32_t kStandbyId = 0x111;  // hot-standby stream (pt only)
constexpr std::uint32_t kAuxId = 0x130;      // aux signal + limp substitute
constexpr std::uint32_t kEngineHb = 0x055;
constexpr std::uint32_t kAuxHb = 0x061;
constexpr std::uint32_t kBabbleId = 0x001;

constexpr unsigned kRxLine = 1;
constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;

constexpr SimTime kCrashAt = 1500 * kMillisecond;
constexpr SimTime kHangAt = 2503 * kMillisecond;
constexpr SimTime kBabbleAt = 3503 * kMillisecond;
constexpr SimTime kHorizon = 5 * sim::kSecond;

can::CanFrame frame(std::uint32_t id, std::uint8_t dlc) {
  can::CanFrame f;
  f.id = id;
  f.dlc = dlc;
  return f;
}

// Counting guest for the ISS engine ECU: WFI loop; the RX ISR bumps a
// SRAM counter for every delivered frame, pops the mailbox, acks.
net::GuestProgram counting_program() {
  using namespace isa;
  using Ctl = can::CanController;
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  examples::emit_inc_word(a, kCount);
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  net::GuestProgram p;
  p.image = a.assemble();
  p.entry = a.label_address(entry);
  p.handlers.push_back({kRxLine, a.label_address(isr), 32});
  return p;
}

// Everything one drill run measures — compared field by field across the
// double run to pin bit-identical replay.
struct DrillResult {
  std::uint64_t events = 0;
  // dash-side frame counts on the body bus.
  std::uint64_t speed_heard = 0;
  std::uint64_t aux_heard = 0;
  std::uint64_t babble_heard = 0;
  SimTime speed_max_gap = 0;  // worst 0x110 inter-arrival (the outage)
  // per-monitor supervision outcomes.
  net::SupervisorNode::MonitorStats speed_mon;
  net::SupervisorNode::MonitorStats engine_mon;
  net::SupervisorNode::MonitorStats aux_mon;
  SimTime speed_bound = 0;
  SimTime engine_bound = 0;
  SimTime aux_bound = 0;
  bool aux_still_failed = false;
  bool aux_attached = true;
  // engine ISS state.
  std::uint32_t engine_serviced = 0;
  std::uint64_t engine_frozen_drops = 0;
  std::uint64_t engine_reboots = 0;
  // bus / gateway tallies.
  std::uint64_t babble_queued = 0;
  std::uint64_t body_detached_drops = 0;
  std::uint64_t gw_delivered = 0;
  std::uint64_t gw_drops_seen = 0;
};

DrillResult run_drill() {
  net::NetworkBuilder nb;
  const net::BusId pt = nb.bus("powertrain", 500'000);
  const net::BusId body = nb.bus("body", 250'000);

  net::ModelTask speed_task;
  speed_task.name = "speed";
  speed_task.priority = 5;
  speed_task.exec = 200 * kMicrosecond;
  speed_task.period = 10 * kMillisecond;
  speed_task.tx = frame(kSpeedId, 4);
  const net::EcuId speed = nb.ecu(pt, "speed", {speed_task});

  net::ModelTask standby_task = speed_task;
  standby_task.name = "speed_b";
  standby_task.tx = frame(kStandbyId, 4);
  const net::EcuId speed_b = nb.ecu(pt, "speed_b", {standby_task});

  can::CanController::Config cc;
  cc.rx_line = kRxLine;
  const net::EcuId engine = nb.ecu(
      pt,
      cpu::profiles::modern_mcu().name("engine").clock_hz(8'000'000)
          .flash_size(16 * 1024),
      counting_program(), cc);

  net::ModelTask aux_task;
  aux_task.name = "climate";
  aux_task.priority = 5;
  aux_task.exec = 300 * kMicrosecond;
  aux_task.period = 20 * kMillisecond;
  aux_task.tx = frame(kAuxId, 4);
  const net::EcuId aux = nb.ecu(body, "aux", {aux_task});

  net::ModelTask idle;
  idle.name = "poll";
  idle.priority = 1;
  idle.exec = 50 * kMicrosecond;
  idle.period = 50 * kMillisecond;
  const net::EcuId dash = nb.ecu(body, "dash", {idle});

  const net::GatewayId gw = nb.gateway("central", {200 * kMicrosecond, 8});
  net::Route primary;
  primary.from = pt;
  primary.to = body;
  primary.match = kSpeedId;
  nb.route(gw, primary);
  net::Route standby;
  standby.from = pt;
  standby.to = body;
  standby.match = kStandbyId;
  standby.remap = kSpeedId;
  standby.enabled = false;  // switched on by the failover mitigation
  nb.route(gw, standby);

  net::Network net = nb.build();

  // --- supervision -----------------------------------------------------
  net::SupervisorNode& sup_pt = net.add_supervisor(pt, "sup-pt");
  net::SupervisorNode& sup_body = net.add_supervisor(body, "sup-body");
  sup_body.watch_gateway(net.gateway(gw));

  net::SupervisorNode::Monitor m;
  m.name = "engine";
  m.heartbeat_id = kEngineHb;
  m.period = 20 * kMillisecond;
  m.window = 5 * kMillisecond;
  m.delivery_bound = 2 * kMillisecond;
  m.ecu = &net.ecu(engine);
  m.mitigations.push_back(
      net::Mitigation::restart_ecu(net.ecu(engine), 10 * kMillisecond));
  const auto engine_mon = sup_pt.add_monitor(m);

  m = {};
  m.name = "speed-signal";
  m.heartbeat_id = kSpeedId;  // the routed signal is its own heartbeat
  m.period = 10 * kMillisecond;
  m.window = 5 * kMillisecond;
  m.delivery_bound = 5 * kMillisecond;  // one gateway hop
  m.ecu = &net.ecu(speed);
  m.mitigations.push_back(
      net::Mitigation::gateway_failover(net.gateway(gw), 0, 1));
  const auto speed_mon = sup_body.add_monitor(m);

  m = {};
  m.name = "aux";
  m.heartbeat_id = kAuxHb;
  m.period = 20 * kMillisecond;
  m.window = 5 * kMillisecond;
  m.delivery_bound = 2 * kMillisecond;
  m.ecu = &net.ecu(aux);
  m.mitigations.push_back(net::Mitigation::detach_node(
      net.bus(body), net.ecu(aux).can_node()));
  can::CanFrame limp = frame(kAuxId, 4);
  limp.data[0] = 0xEE;  // "degraded data" marker for consumers
  m.limp_frame = limp;
  m.limp_period = 20 * kMillisecond;
  const auto aux_mon = sup_body.add_monitor(m);

  net.ecu(engine).start_heartbeat(frame(kEngineHb, 1), 20 * kMillisecond);
  net.ecu(aux).start_heartbeat(frame(kAuxHb, 1), 20 * kMillisecond);
  sup_pt.start();
  sup_body.start();

  // --- the dash: counts what the body bus actually sees ----------------
  DrillResult r;
  SimTime last_speed_at = 0;
  net.bus(body).subscribe(
      net.ecu(dash).can_node(), [&](const can::CanFrame& f, SimTime at) {
        if (f.id == kSpeedId) {
          ++r.speed_heard;
          if (at - last_speed_at > r.speed_max_gap)
            r.speed_max_gap = at - last_speed_at;
          last_speed_at = at;
        } else if (f.id == kAuxId) {
          ++r.aux_heard;
        } else if (f.id == kBabbleId) {
          ++r.babble_heard;
        }
      });

  // --- the three faults ------------------------------------------------
  net::NodeFault crash;
  crash.kind = net::NodeFault::Kind::crash;
  crash.at = kCrashAt;
  net.ecu(speed).inject(crash);

  net::NodeFault hang;
  hang.kind = net::NodeFault::Kind::hang;
  hang.at = kHangAt;
  net.ecu(engine).inject(hang);

  net::NodeFault babble;
  babble.kind = net::NodeFault::Kind::babble;
  babble.at = kBabbleAt;
  babble.babble_frame = frame(kBabbleId, 0);  // outranks everything
  babble.babble_period = kMillisecond;
  net.ecu(aux).inject(babble);
  net::NodeFault wedge = hang;  // the classic wedged-software babble
  wedge.at = kBabbleAt;
  net.ecu(aux).inject(wedge);

  net.run_until(kHorizon);

  r.events = net.simulation().events_executed();
  r.speed_mon = sup_body.stats(speed_mon);
  r.engine_mon = sup_pt.stats(engine_mon);
  r.aux_mon = sup_body.stats(aux_mon);
  r.speed_bound = sup_body.detection_bound(speed_mon);
  r.engine_bound = sup_pt.detection_bound(engine_mon);
  r.aux_bound = sup_body.detection_bound(aux_mon);
  r.aux_still_failed = sup_body.failed(aux_mon);
  r.aux_attached = net.bus(body).attached(net.ecu(aux).can_node());
  r.engine_serviced = net.iss(engine).read_word(kCount);
  r.engine_frozen_drops = net.iss(engine).binding().stats().frozen_irq_drops;
  r.engine_reboots = net.ecu(engine).fault_stats().reboots;
  r.babble_queued = net.ecu(aux).fault_stats().babble_frames;
  r.body_detached_drops = net.bus(body).fault_stats().detached_drops;
  r.gw_delivered = net.gateway(gw).stats().frames_delivered;
  r.gw_drops_seen = sup_body.gateway_drops();
  (void)speed_b;
  return r;
}

bool same(const net::SupervisorNode::MonitorStats& a,
          const net::SupervisorNode::MonitorStats& b) {
  return a.heartbeats == b.heartbeats && a.misses == b.misses &&
         a.mitigations == b.mitigations && a.recoveries == b.recoveries &&
         a.limp_frames == b.limp_frames &&
         a.last_detect_at == b.last_detect_at &&
         a.worst_detect_latency == b.worst_detect_latency &&
         a.worst_recover_latency == b.worst_recover_latency;
}

void print_monitor(const char* name, const net::SupervisorNode::MonitorStats& s,
                   SimTime bound) {
  std::printf("%-13s misses %llu  mitigations %llu  recoveries %llu  "
              "detect %.2fms (bound %.2fms)  recover %.2fms\n",
              name, static_cast<unsigned long long>(s.misses),
              static_cast<unsigned long long>(s.mitigations),
              static_cast<unsigned long long>(s.recoveries),
              s.worst_detect_latency / 1e6, bound / 1e6,
              s.worst_recover_latency / 1e6);
}

}  // namespace

int main() {
  const DrillResult a = run_drill();
  const DrillResult b = run_drill();  // the replay

  std::printf("=== graceful degradation: three faults, three mitigations "
              "===\n\n");
  print_monitor("speed-signal", a.speed_mon, a.speed_bound);
  print_monitor("engine", a.engine_mon, a.engine_bound);
  print_monitor("aux", a.aux_mon, a.aux_bound);
  std::printf("\n");
  std::printf("0x110 heard on body      %8llu (worst gap %.2fms)\n",
              static_cast<unsigned long long>(a.speed_heard),
              a.speed_max_gap / 1e6);
  std::printf("0x130 heard on body      %8llu (%llu limp-home)\n",
              static_cast<unsigned long long>(a.aux_heard),
              static_cast<unsigned long long>(a.aux_mon.limp_frames));
  std::printf("babble frames on wire    %8llu of %llu queued\n",
              static_cast<unsigned long long>(a.babble_heard),
              static_cast<unsigned long long>(a.babble_queued));
  std::printf("post-detach flood drops  %8llu\n",
              static_cast<unsigned long long>(a.body_detached_drops));
  std::printf("engine frames serviced   %8u (%llu dropped frozen, "
              "%llu reboot)\n",
              a.engine_serviced,
              static_cast<unsigned long long>(a.engine_frozen_drops),
              static_cast<unsigned long long>(a.engine_reboots));
  std::printf("gateway delivered        %8llu (drops seen %llu)\n",
              static_cast<unsigned long long>(a.gw_delivered),
              static_cast<unsigned long long>(a.gw_drops_seen));
  std::printf("events executed          %8llu\n",
              static_cast<unsigned long long>(a.events));

  // --- exact frame accounting ------------------------------------------
  // 0x110 on body: 150 primary frames before the 1.5s crash, then the
  // standby stream from the ~1.506s failover to the horizon — one 10ms
  // period lost to detection. Aux: 175 real 0x130 frames before the
  // 3.503s wedge + 74 limp-home substitutes. The babble flood lands 23
  // frames before the detach cuts it off; the remaining 1475 queued
  // flood frames die as detached drops.
  ACES_CHECK(a.speed_heard == 499);
  ACES_CHECK(a.gw_delivered == 499);
  ACES_CHECK(a.aux_heard == 250);
  ACES_CHECK(a.aux_mon.limp_frames == 74);
  ACES_CHECK(a.babble_heard == 23);
  ACES_CHECK(a.babble_queued == 1498);
  ACES_CHECK(a.body_detached_drops == 1475);
  ACES_CHECK(a.engine_serviced == 649);
  ACES_CHECK(a.engine_frozen_drops == 2);

  // --- drill 1: crash -> gateway failover ------------------------------
  ACES_CHECK(a.speed_mon.misses == 1);
  ACES_CHECK(a.speed_mon.mitigations == 1);
  ACES_CHECK(a.speed_mon.recoveries == 1);
  ACES_CHECK(a.speed_mon.worst_detect_latency >= 0);
  ACES_CHECK(a.speed_mon.worst_detect_latency <= a.speed_bound);
  ACES_CHECK(a.speed_mon.worst_recover_latency >
              a.speed_mon.worst_detect_latency);
  // The outage the dash saw is the detection latency plus one standby
  // period plus the gateway hop — well under bound + period + 5ms slack.
  ACES_CHECK(a.speed_max_gap <= a.speed_bound + 10 * kMillisecond +
                                     5 * kMillisecond);
  ACES_CHECK(a.speed_max_gap > 10 * kMillisecond);

  // --- drill 2: ISS hang -> supervised restart -------------------------
  ACES_CHECK(a.engine_mon.misses == 1);
  ACES_CHECK(a.engine_mon.mitigations == 1);
  ACES_CHECK(a.engine_mon.recoveries == 1);
  ACES_CHECK(a.engine_mon.worst_detect_latency >= 0);
  ACES_CHECK(a.engine_mon.worst_detect_latency <= a.engine_bound);
  ACES_CHECK(a.engine_frozen_drops > 0);
  ACES_CHECK(a.engine_reboots == 1);
  ACES_CHECK(a.engine_serviced > 0);

  // --- drill 3: babbling idiot -> detach + limp-home -------------------
  ACES_CHECK(a.aux_mon.misses == 1);
  ACES_CHECK(a.aux_mon.mitigations == 1);
  ACES_CHECK(a.aux_mon.recoveries == 0);  // stays down by design
  ACES_CHECK(a.aux_still_failed);
  ACES_CHECK(!a.aux_attached);
  ACES_CHECK(a.aux_mon.worst_detect_latency >= 0);
  ACES_CHECK(a.aux_mon.worst_detect_latency <= a.aux_bound);
  ACES_CHECK(a.aux_mon.limp_frames > 0);
  ACES_CHECK(a.babble_heard < a.babble_queued);  // flood cut mid-burst
  ACES_CHECK(a.body_detached_drops > 0);
  ACES_CHECK(a.gw_drops_seen == 0);

  // --- the replay is bit-identical -------------------------------------
  ACES_CHECK(a.events == b.events);
  ACES_CHECK(a.speed_heard == b.speed_heard);
  ACES_CHECK(a.aux_heard == b.aux_heard);
  ACES_CHECK(a.babble_heard == b.babble_heard);
  ACES_CHECK(a.speed_max_gap == b.speed_max_gap);
  ACES_CHECK(same(a.speed_mon, b.speed_mon));
  ACES_CHECK(same(a.engine_mon, b.engine_mon));
  ACES_CHECK(same(a.aux_mon, b.aux_mon));
  ACES_CHECK(a.engine_serviced == b.engine_serviced);
  ACES_CHECK(a.engine_frozen_drops == b.engine_frozen_drops);
  ACES_CHECK(a.babble_queued == b.babble_queued);
  ACES_CHECK(a.body_detached_drops == b.body_detached_drops);
  ACES_CHECK(a.gw_delivered == b.gw_delivered);

  std::printf("\nall checks passed: every fault detected within its bound, "
              "mitigated, and replayed bit-identically.\n");
  return 0;
}
