// A complete ECU node: CAN-interrupt-driven guest program on a declarative
// system, scheduled by the unified co-simulation API.
//
// This is where the paper's single-ECU sections (§2-§3: the core, its
// memories, the interrupt controller) and its network section (§4: CAN)
// meet in one executable scenario. A wheel-speed sensor node broadcasts
// frames over an arbitrated CAN bus; a modern-MCU ECU, described with
// SystemBuilder, maps a CAN controller at the peripheral base and services
// every frame in a compiled interrupt handler:
//
//   sensor node ──CAN──▶ controller RX FIFO ──IRQ line──▶ Ivc ──▶ guest ISR
//                          ▲                                        │
//                          └───────── TX mailbox ◀── response ──────┘
//
// The ISR reads the wheel-speed sample from the RX registers, folds it
// into a running average in SRAM, and answers every 4th sample with a
// status frame that the sensor-side node receives — guest-initiated TX
// through the same register file. The main loop just counts; all the work
// is interrupt-driven, as an OSEK basic task would be.
//
// Time: sim::Simulation owns the one nanosecond time base. The System
// declares its clock rate in the builder and joins with bind(); frame
// delivery raises the IRQ at the exact bus instant through the binding.
// No hand-rolled cycle-to-ns bridging, no manual drain loops.
//
//   $ ./examples/ecu_node
#include <cstdio>

#include "can/controller.h"
#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "guest_util.h"
#include "isa/assembler.h"
#include "sim/simulation.h"

using namespace aces;
using namespace aces::isa;
using Ctl = can::CanController;

namespace {

constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
constexpr std::uint32_t kSampleCount = cpu::kSramBase + 0x100;
constexpr std::uint32_t kSpeedAccum = cpu::kSramBase + 0x104;
constexpr std::uint32_t kLastSpeed = cpu::kSramBase + 0x108;
constexpr unsigned kRxLine = 1;

constexpr std::uint32_t kSensorId = 0x120;  // wheel-speed broadcast
constexpr std::uint32_t kStatusId = 0x310;  // ECU status response

constexpr std::uint64_t kCoreHz = 8'000'000;  // 8 MHz MCU

// The guest program, hand-assembled B32 from the shared guest_util idioms.
// Registers: r0 = controller base.
Image build_guest(Assembler& a, Label* entry, Label* isr) {
  *entry = examples::emit_idle_loop(a, /*wfi=*/false);  // r6 counts spins

  *isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  // Pull the sample out of the FIFO head.
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, Ctl::kRxData0));  // wheel speed
  // ++samples; accum += speed; last = speed.
  examples::emit_inc_word(a, kSampleCount);
  a.ins(ins_ldst_imm(Op::ldr, r12, r3, 4));
  a.ins(ins_rrr(Op::add, r12, r12, r1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r3, 4));
  a.ins(ins_ldst_imm(Op::str, r1, r3, 8));
  // Retire the frame before any reply: pop, ack.
  examples::emit_pop_ack(a, r0);
  // Every 4th sample (count & 3 == 0): transmit a status frame carrying
  // the current accumulated speed.
  a.ins(ins_rri(Op::and_, r12, r2, 3, SetFlags::yes));
  const Label done = a.new_label();
  a.b(done, Cond::ne);
  examples::emit_tx_header(a, r0, kStatusId, 4);
  a.ins(ins_ldst_imm(Op::ldr, r12, r3, 4));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kTxData0));
  examples::emit_tx_commit(a, r0);
  a.bind(done);
  a.ins(ins_ret());
  a.pool();
  return a.assemble();
}

}  // namespace

int main() {
  // --- the shared time base and the network ---
  sim::Simulation sim(100 * sim::kMicrosecond);
  can::CanBus bus(sim.queue(), 500'000);  // 500 kbps powertrain bus

  Ctl::Config cc;
  cc.rx_line = kRxLine;
  Ctl controller(bus, "ecu", cc);

  // Sensor side: a plain bus node driven directly from the event queue.
  const can::NodeId sensor = bus.attach_node("wheel-sensor");
  int status_frames_seen = 0;
  std::uint32_t last_status = 0;
  bus.subscribe(sensor, [&](const can::CanFrame& f, sim::SimTime) {
    if (f.id == kStatusId) {
      ++status_frames_seen;
      last_status = static_cast<std::uint32_t>(f.data[0]) |
                    (static_cast<std::uint32_t>(f.data[1]) << 8) |
                    (static_cast<std::uint32_t>(f.data[2]) << 16) |
                    (static_cast<std::uint32_t>(f.data[3]) << 24);
    }
  });

  // --- the ECU ---
  Assembler a(Encoding::b32, cpu::kFlashBase);
  Label entry, isr;
  const Image image = build_guest(a, &entry, &isr);

  cpu::Ivc::Config ic;
  ic.vector_table = kVectors;
  ic.lines = 4;
  cpu::System sys(cpu::profiles::modern_mcu()
                      .name("wheel-ecu")
                      .clock_hz(kCoreHz)
                      .flash_size(64 * 1024)
                      .device(cpu::kPeriphBase, controller)
                      .ivc(ic));
  sys.load(image);

  sys.set_irq_handler(kRxLine, a.label_address(isr));
  sys.ivc()->enable_line(kRxLine, 32);

  // Join the co-simulation: the binding is both the clock-domain bridge
  // and the IRQ sink the controller delivers its lines through.
  cpu::SystemBinding& ecu = sys.bind(sim);
  controller.connect_irq(ecu);

  // Boot code would set RXIE; the host pokes it through the bus instead.
  ACES_CHECK(
      sys.bus().write(cpu::kPeriphBase + Ctl::kCtrl, 4, Ctl::kCtrlRxie, 0)
          .ok());

  // The sensor broadcasts a decaying wheel-speed ramp every 2 ms.
  constexpr int kSamples = 16;
  for (int k = 0; k < kSamples; ++k) {
    sim.schedule_at((k + 1) * 2 * sim::kMillisecond, [&bus, sensor, k] {
      can::CanFrame f;
      f.id = kSensorId;
      f.dlc = 4;
      const std::uint32_t speed = 1200 - 40 * static_cast<std::uint32_t>(k);
      f.data[0] = static_cast<std::uint8_t>(speed);
      f.data[1] = static_cast<std::uint8_t>(speed >> 8);
      bus.send(sensor, f);
    });
  }

  sys.core().reset(a.label_address(entry), sys.initial_sp());
  // One call runs everything: 16 samples land by 32 ms; the horizon leaves
  // room for the last ISR and its status frame to drain.
  sim.run_until(35 * sim::kMillisecond);

  const std::uint32_t samples = examples::read_word(sys, kSampleCount);
  const std::uint32_t accum = examples::read_word(sys, kSpeedAccum);
  const std::uint32_t last = examples::read_word(sys, kLastSpeed);

  std::printf("ECU node: CAN-interrupt-driven wheel-speed consumer\n\n");
  std::printf("  bus                  : 500 kbps, MCU clock %llu Hz\n",
              static_cast<unsigned long long>(kCoreHz));
  std::printf("  sensor frames sent   : %d (id %#x, every 2 ms)\n", kSamples,
              kSensorId);
  std::printf("  ISR entries          : %llu\n",
              static_cast<unsigned long long>(sys.ivc()->stats().entries));
  std::printf("  samples consumed     : %u\n", samples);
  std::printf("  last wheel speed     : %u\n", last);
  std::printf("  accumulated speed    : %u\n", accum);
  std::printf("  status frames heard  : %d (id %#x, every 4th sample)\n",
              status_frames_seen, kStatusId);
  std::printf("  last status payload  : %u\n", last_status);
  std::printf("  main-loop iterations : %u (all real work in the ISR)\n",
              sys.core().reg(r6));
  std::printf("  co-sim               : %llu events, %llu core steps, "
              "%llu IRQ raises\n",
              static_cast<unsigned long long>(sim.stats().events_executed),
              static_cast<unsigned long long>(ecu.stats().steps),
              static_cast<unsigned long long>(ecu.stats().irq_raises));

  // Worst-case ISR entry latency, the Figure 4 quantity, now measured on
  // real traffic instead of a synthetic raise.
  const std::uint64_t worst =
      examples::worst_irq_latency(*sys.ivc(), kRxLine);
  std::printf("  worst entry latency  : %llu cycles\n",
              static_cast<unsigned long long>(worst));

  // The run is self-checking: every sample serviced, every 4th answered.
  std::uint32_t expected_accum = 0;
  for (int k = 0; k < kSamples; ++k) {
    expected_accum += 1200 - 40 * static_cast<std::uint32_t>(k);
  }
  ACES_CHECK(samples == kSamples);
  ACES_CHECK(accum == expected_accum);
  ACES_CHECK(status_frames_seen == kSamples / 4);
  std::printf("\nall checks passed: RX interrupt path and guest-initiated "
              "TX are live.\n");
  return 0;
}
