// Fleet-scale sharded co-simulation: dozens of buses, hundreds of ECUs,
// one deterministic time base — the scenario the sharding tentpole exists
// for.
//
// Topology: a 1 Mbps spine bus and kZones 500 kbps zone buses, each zone
// bridged to the spine by its own store-and-forward gateway (200 us
// forwarding latency). Every zone carries kEcusPerZone kernel-model ECUs
// publishing periodic state frames; the zone's status frame (one id per
// zone) is routed up to the spine, and a fleet-wide command frame
// published by the spine controller is routed down into every zone.
//
// NetworkBuilder::build() partitions this into kZones + 1 gateway-bounded
// shards with the gateway latency as the synchronization lookahead, and
// ShardedSimulation advances them in lock-stepped epochs on a worker
// pool. The example self-checks the contract that makes the parallelism
// free: the auto-sharded run reproduces the single-shard run EXACTLY —
// same delivered frames at the same nanoseconds, same gateway counters,
// same event totals — at every thread count.
//
//   $ ./examples/fleet_network
#include <cstdio>
#include <cstdint>

#include "net/network.h"
#include "support/check.h"

using namespace aces;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

namespace {

constexpr int kZones = 24;
constexpr int kEcusPerZone = 10;
constexpr SimTime kGwLatency = 200 * kMicrosecond;
constexpr SimTime kHorizon = 2 * sim::kSecond;
constexpr std::uint32_t kCommandId = 0x050;

net::NetworkBuilder fleet_topology() {
  net::NetworkBuilder nb;
  const net::BusId spine = nb.bus("spine", 1'000'000);

  // Spine controller: fleet-wide command every 20 ms, fanned out into
  // every zone by the per-zone gateways.
  net::ModelTask command;
  command.name = "command";
  command.priority = 5;
  command.exec = 100 * kMicrosecond;
  command.period = 20 * kMillisecond;
  command.deadline = 20 * kMillisecond;
  can::CanFrame cmd;
  cmd.id = kCommandId;
  cmd.dlc = 8;
  command.tx = cmd;
  nb.ecu(spine, "fleet_controller", {command});

  net::GatewayConfig gc;
  gc.forwarding_latency = kGwLatency;
  gc.queue_depth = 16;

  for (int z = 0; z < kZones; ++z) {
    const net::BusId zone =
        nb.bus("zone" + std::to_string(z), 500'000);
    const net::GatewayId gw =
        nb.gateway("gw" + std::to_string(z), gc);
    // Zone status up to the spine; fleet command down into the zone.
    const auto status_id = static_cast<std::uint32_t>(0x100 + z);
    nb.route(gw, {zone, spine, status_id, 0x7FF, {}});
    nb.route(gw, {spine, zone, kCommandId, 0x7FF, {}});

    for (int e = 0; e < kEcusPerZone; ++e) {
      net::ModelTask task;
      task.name = "app";
      task.priority = 5;
      task.exec = 150 * kMicrosecond;
      task.period = 10 * kMillisecond;
      // Stagger activations so the bus sees realistic interleaving, not
      // one synchronized burst per period.
      task.offset = static_cast<SimTime>(e) * 300 * kMicrosecond;
      task.deadline = 10 * kMillisecond;
      can::CanFrame f;
      // ECU 0 publishes the routed zone-status id; the rest stay local.
      f.id = e == 0 ? status_id
                    : static_cast<std::uint32_t>(0x200 + z * 0x10 + e);
      f.dlc = 8;
      task.tx = f;
      nb.ecu(zone, "z" + std::to_string(z) + "e" + std::to_string(e),
             {task});
    }
  }
  return nb;
}

struct FleetResult {
  std::uint64_t frames = 0;        // deliveries heard across every bus
  std::uint64_t delivery_hash = 0; // exact (id, instant) fold
  std::uint64_t forwarded = 0;     // summed over the zone gateways
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t events = 0;
  std::uint64_t epochs = 0;
  std::size_t shards = 0;
  SimTime lookahead = 0;
};

FleetResult run_fleet(net::NetworkBuilder nb) {
  net::Network net = nb.build();
  FleetResult r;
  for (std::size_t b = 0; b < net.bus_count(); ++b) {
    const auto id = static_cast<net::BusId>(b);
    const can::NodeId probe = net.bus(id).attach_node("probe");
    net.bus(id).subscribe(probe, [&r](const can::CanFrame& f, SimTime at) {
      ++r.frames;
      r.delivery_hash += (static_cast<std::uint64_t>(f.id) + 1) *
                         static_cast<std::uint64_t>(at);
    });
  }
  net.run_until(kHorizon);
  for (std::size_t g = 0; g < net.gateway_count(); ++g) {
    const auto st = net.gateway(static_cast<net::GatewayId>(g)).stats();
    r.forwarded += st.frames_forwarded;
    r.delivered += st.frames_delivered;
    r.dropped += st.frames_dropped;
  }
  r.events = net.simulation().events_executed();
  r.epochs = net.simulation().epochs();
  r.shards = net.shard_count();
  r.lookahead = net.lookahead();
  return r;
}

}  // namespace

int main() {
  std::printf("=== fleet network: %d zones x %d ECUs + spine, gateway "
              "latency %lldus ===\n\n",
              kZones, kEcusPerZone,
              static_cast<long long>(kGwLatency / 1000));

  // Reference: the same fleet forced onto a single shard — byte-for-byte
  // the pre-sharding scheduler.
  net::NetworkBuilder single = fleet_topology();
  single.shards(1);
  const FleetResult base = run_fleet(single);
  ACES_CHECK(base.shards == 1);
  ACES_CHECK(base.frames > 0);
  ACES_CHECK(base.dropped == 0);

  // Auto-sharded at 1 and 2 worker threads: the partition must split one
  // shard per bus, and every observable must match the serial run.
  FleetResult sharded[2];
  for (int k = 0; k < 2; ++k) {
    net::NetworkBuilder nb = fleet_topology();
    nb.threads(static_cast<unsigned>(k + 1));
    sharded[k] = run_fleet(nb);
  }

  std::printf("%-22s %10s %12s %12s %10s %8s\n", "run", "shards", "frames",
              "events", "epochs", "fwd");
  const auto row = [](const char* name, const FleetResult& r) {
    std::printf("%-22s %10zu %12llu %12llu %10llu %8llu\n", name, r.shards,
                static_cast<unsigned long long>(r.frames),
                static_cast<unsigned long long>(r.events),
                static_cast<unsigned long long>(r.epochs),
                static_cast<unsigned long long>(r.forwarded));
  };
  row("single-shard", base);
  row("sharded, 1 thread", sharded[0]);
  row("sharded, 2 threads", sharded[1]);

  for (const FleetResult& r : sharded) {
    ACES_CHECK(r.shards == static_cast<std::size_t>(kZones) + 1);
    ACES_CHECK(r.lookahead == kGwLatency);
    ACES_CHECK(r.frames == base.frames);
    ACES_CHECK(r.delivery_hash == base.delivery_hash);
    ACES_CHECK(r.forwarded == base.forwarded);
    ACES_CHECK(r.delivered == base.delivered);
    ACES_CHECK(r.dropped == 0);
    ACES_CHECK(r.events == base.events);
    ACES_CHECK(r.epochs == sharded[0].epochs);  // thread-count invariant
  }

  std::printf("\nall checks passed: %d ECUs on %d buses, %zu shards, "
              "sharded runs identical to the single-shard scheduler at "
              "every thread count.\n",
              kZones * kEcusPerZone + 1, kZones + 1, sharded[0].shards);
  return 0;
}
