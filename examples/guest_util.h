// Shared guest-image assembly helpers for the example ECUs.
//
// Every interrupt-driven example guest is built from the same few idioms:
// an idle main loop counting wakeups in r6, a saturating "pop the RX FIFO
// head and acknowledge the interrupt" epilogue, a running counter in SRAM,
// and a TX mailbox compose/commit sequence. These helpers emit exactly
// those instruction sequences (the examples' golden outputs — ISR entry
// latencies, cycle counts — depend on the emitted code staying
// byte-identical), so a new scenario assembles a working CAN ISR in a few
// lines instead of forty.
//
// Register conventions (matching the hand-written originals):
//   r0  controller base (caller loads it at ISR entry)
//   r2  running counter value after emit_inc_word
//   r3  counter address after emit_inc_word
//   r12 scratch (clobbered by every helper)
#ifndef ACES_EXAMPLES_GUEST_UTIL_H
#define ACES_EXAMPLES_GUEST_UTIL_H

#include "can/controller.h"
#include "cpu/ivc.h"
#include "cpu/system.h"
#include "isa/assembler.h"

namespace aces::examples {

// Idle main loop: r6 counts iterations; with `wfi` the guest sleeps
// between interrupts (and the co-simulation fast-forwards it for free).
// Returns the entry label.
inline isa::Label emit_idle_loop(isa::Assembler& a, bool wfi) {
  const isa::Label entry = a.bound_label();
  const isa::Label top = a.bound_label();
  a.ins(isa::ins_rri(isa::Op::add, isa::r6, isa::r6, 1,
                     isa::SetFlags::any));
  if (wfi) {
    isa::Instruction w;
    w.op = isa::Op::wfi;
    a.ins(w);
  }
  a.b(top);
  a.pool();
  return entry;
}

// ++word at `addr`: leaves the address in r3 and the incremented value in
// r2 (callers use both — e.g. to latch a payload next to the counter or
// transmit the running count).
inline void emit_inc_word(isa::Assembler& a, std::uint32_t addr) {
  a.load_literal(isa::r3, addr);
  a.ins(isa::ins_ldst_imm(isa::Op::ldr, isa::r2, isa::r3, 0));
  a.ins(isa::ins_rri(isa::Op::add, isa::r2, isa::r2, 1,
                     isa::SetFlags::any));
  a.ins(isa::ins_ldst_imm(isa::Op::str, isa::r2, isa::r3, 0));
}

// Retire the RX FIFO head and acknowledge the interrupt: the epilogue
// every RX handler runs before (or instead of) replying.
inline void emit_pop_ack(isa::Assembler& a, isa::Reg base) {
  a.ins(isa::ins_mov_imm(isa::r12, 1, isa::SetFlags::any));
  a.ins(isa::ins_ldst_imm(isa::Op::str, isa::r12, base,
                          can::CanController::kRxPop));
  a.ins(isa::ins_ldst_imm(isa::Op::str, isa::r12, base,
                          can::CanController::kIrqAck));
}

// TX compose: identifier and DLC into the mailbox. The caller stores the
// payload word(s) to kTxData0/1 between header and commit.
inline void emit_tx_header(isa::Assembler& a, isa::Reg base,
                           std::uint32_t id, unsigned dlc) {
  a.load_literal(isa::r12, id);
  a.ins(isa::ins_ldst_imm(isa::Op::str, isa::r12, base,
                          can::CanController::kTxId));
  a.ins(isa::ins_mov_imm(isa::r12, dlc, isa::SetFlags::any));
  a.ins(isa::ins_ldst_imm(isa::Op::str, isa::r12, base,
                          can::CanController::kTxDlc));
}

// TX commit: queue the composed frame.
inline void emit_tx_commit(isa::Assembler& a, isa::Reg base) {
  a.ins(isa::ins_mov_imm(isa::r12, 1, isa::SetFlags::any));
  a.ins(isa::ins_ldst_imm(isa::Op::str, isa::r12, base,
                          can::CanController::kTxCmd));
}

// The relay ISR shared by the networked examples: service the FIFO head if
// its identifier equals `match_id` — bump the counter at `count_addr`,
// latch payload word 0 at `count_addr + 4`, retire the frame — and reply
// with `reply_id` carrying the running count when (count & reply_mask) is
// zero (mask 0: reply every time). Non-matching traffic is popped and
// acknowledged unhandled. Returns the ISR entry label.
inline isa::Label emit_relay_isr(isa::Assembler& a, std::uint32_t match_id,
                                 std::uint32_t reply_id,
                                 std::uint32_t reply_mask,
                                 std::uint32_t count_addr) {
  using namespace isa;
  using Ctl = can::CanController;
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, Ctl::kRxId));
  a.load_literal(r2, match_id);
  a.ins(ins_cmp_reg(r1, r2));
  const Label discard = a.new_label();
  a.b(discard, Cond::ne);
  emit_inc_word(a, count_addr);
  a.ins(ins_ldst_imm(Op::ldr, r12, r0, Ctl::kRxData0));
  a.ins(ins_ldst_imm(Op::str, r12, r3, 4));
  // Retire the frame before the reply: pop, ack.
  emit_pop_ack(a, r0);
  const Label done = a.new_label();
  if (reply_mask != 0) {
    // Reply only when (count & reply_mask) == 0.
    a.ins(ins_rri(Op::and_, r12, r2, reply_mask, SetFlags::yes));
    a.b(done, Cond::ne);
  }
  emit_tx_header(a, r0, reply_id, 4);
  a.ins(ins_ldst_imm(Op::str, r2, r0, Ctl::kTxData0));
  emit_tx_commit(a, r0);
  a.bind(done);
  a.ins(ins_ret());
  // Unmatched traffic: pop + ack, no reply.
  a.bind(discard);
  emit_pop_ack(a, r0);
  a.ins(ins_ret());
  a.pool();
  return isr;
}

// Host-side probes shared by the self-checked examples.
inline std::uint32_t read_word(cpu::System& sys, std::uint32_t addr) {
  return sys.bus().read(addr, 4, mem::Access::read, 0).value;
}

inline std::uint64_t worst_irq_latency(const cpu::Ivc& ivc, unsigned line) {
  std::uint64_t worst = 0;
  for (const std::uint64_t l : ivc.latencies(line)) {
    worst = worst > l ? worst : l;
  }
  return worst;
}

}  // namespace aces::examples

#endif  // ACES_EXAMPLES_GUEST_UTIL_H
