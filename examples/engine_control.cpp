// Engine control: the paper's §3.1.2 "tooth-to-spark" scenario.
//
// A crank-wheel tooth fires an interrupt; the handler must compute the
// spark delay "regularly and timely... if it is to be serviced predictably
// and reliably". The main loop streams multi-word loads (diagnostics) from
// slow flash — exactly the workload whose cache/LDM behavior jeopardizes
// predictability. The example sweeps engine speed and reports ISR latency
// jitter with the atomic vs restartable LDM configurations.
//
//   $ ./examples/engine_control
#include <cstdio>

#include "cpu/profiles.h"
#include "cpu/system.h"
#include "cpu/vic.h"
#include "isa/assembler.h"
#include "support/rng.h"

using namespace aces;
using namespace aces::isa;

namespace {

struct JitterReport {
  std::uint64_t best = ~0ull;
  std::uint64_t worst = 0;
  double avg = 0.0;
};

JitterReport run(bool restartable, unsigned rpm, int teeth) {
  // Main loop: block diagnostics (ldm-heavy) from flash data.
  Assembler a(Encoding::w32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  a.load_literal(r0, cpu::kFlashBase + 0x1000);
  const Label top = a.bound_label();
  Instruction ldm;
  ldm.op = Op::ldm;
  ldm.rn = r0;
  ldm.reglist = 0x0FF0;
  a.ins(ldm);
  a.b(top);
  a.pool();
  // Crank ISR: tooth period -> spark delay (multiply + shift; the full
  // table-based version lives in the workloads suite).
  const Label isr = a.bound_label();
  a.ins(ins_push(0x000F | (1u << lr)));
  a.load_literal(r1, cpu::kSramBase + 0x200);  // tooth period mailbox
  a.ins(ins_ldst_imm(Op::ldr, r2, r1, 0));
  a.ins(ins_mov_imm(r3, 45, SetFlags::any));   // advance (deg x2)
  a.ins(ins_rrr(Op::mul, r2, r2, r3, SetFlags::any));
  a.ins(ins_rri(Op::lsr, r2, r2, 4, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r1, 4));     // schedule the spark
  a.ins(ins_pop(0x000F | (1u << pc)));
  a.pool();
  const Image image = a.assemble();

  cpu::ClassicVic::Config vc;
  vc.irq_handler = a.label_address(isr);
  cpu::System sys(cpu::profiles::legacy_hp()
                      .restartable_ldm(restartable)
                      .flash_size(128 * 1024)
                      .flash_wait(8)
                      .vic(vc));
  sys.load(image);
  cpu::ClassicVic& vic = *sys.vic();
  sys.core().reset(a.label_address(entry), sys.initial_sp());

  // Tooth period in core cycles at 100 MHz, 60-tooth wheel.
  const std::uint64_t tooth_cycles = 100'000'000ull * 60 / (rpm * 60 * 60);
  std::uint64_t next_tooth = 500;
  int fired = 0;
  sys.set_cycle_hook([&](std::uint64_t now) {
    if (fired < teeth && now >= next_tooth) {
      vic.raise(cpu::ClassicVic::kIrq, now);
      next_tooth += tooth_cycles;
      ++fired;
    }
  });
  while (static_cast<int>(vic.latencies(0).size()) < teeth) {
    (void)sys.core().step();
  }
  JitterReport rep;
  for (const std::uint64_t latency : vic.latencies(0)) {
    rep.best = std::min(rep.best, latency);
    rep.worst = std::max(rep.worst, latency);
    rep.avg += static_cast<double>(latency) / teeth;
  }
  return rep;
}

}  // namespace

int main() {
  std::printf("tooth-to-spark ISR latency, 100 MHz core, ldm-heavy "
              "background (cycles)\n\n");
  std::printf("%-8s | %26s | %26s\n", "", "atomic ldm", "restartable ldm");
  std::printf("%-8s | %8s %8s %8s | %8s %8s %8s\n", "rpm", "best", "avg",
              "worst", "best", "avg", "worst");
  std::printf("-------------------------------------------------------------"
              "-------------\n");
  for (const unsigned rpm : {800u, 2400u, 6000u}) {
    const JitterReport atomic = run(false, rpm, 120);
    const JitterReport restart = run(true, rpm, 120);
    std::printf("%-8u | %8llu %8.1f %8llu | %8llu %8.1f %8llu\n", rpm,
                static_cast<unsigned long long>(atomic.best), atomic.avg,
                static_cast<unsigned long long>(atomic.worst),
                static_cast<unsigned long long>(restart.best), restart.avg,
                static_cast<unsigned long long>(restart.worst));
  }
  std::printf("\nThe restartable configuration caps the worst case near the "
              "single-beat\nlatency — the jitter an ignition schedule "
              "actually cares about.\n");
  return 0;
}
