// Bus-off and back: a guest ISR runs real CAN fault recovery.
//
// The fault-accurate protocol layer meets the ISS here. One guest-code
// ECU ("sensor", modern-MCU ISS @ 8 MHz) answers a kernel-model poller's
// request frame every 10 ms over a 125 kbps bus. Half a second in, a
// deterministic bit-error burst corrupts 32 consecutive transmission
// attempts of the sensor — exactly what it takes to walk its transmit
// error counter through error-passive (TEC 128) into bus-off (TEC > 255).
//
// The controller models real hardware: it does NOT restart itself. Its
// error interrupt line fires on every transmit error and state change;
// the guest's error ISR reads STATUS, and when it sees BOFF it performs
// the recovery a production CAN driver would — write CTRL.BOR, which
// starts the bus-side 128 x 11-recessive-bit recovery sequence. A final
// error interrupt reports the return to error-active, the pending reply
// drains, and the request/reply traffic resumes — all verified by exact
// deterministic counts.
//
//   $ ./examples/bus_fault_recovery
#include <cstdio>

#include "can/bus.h"
#include "can/controller.h"
#include "cpu/ivc.h"
#include "cpu/profiles.h"
#include "cpu/system.h"
#include "guest_util.h"
#include "isa/assembler.h"
#include "sim/simulation.h"

using namespace aces;
using namespace aces::isa;
using sim::kMillisecond;
using sim::SimTime;
using Ctl = can::CanController;

namespace {

constexpr std::uint32_t kReqId = 0x0A0;  // poller -> sensor
constexpr std::uint32_t kRepId = 0x150;  // sensor -> poller

constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
constexpr std::uint32_t kReplyCount = cpu::kSramBase + 0x100;
constexpr std::uint32_t kBoffSeen = cpu::kSramBase + 0x104;  // recovery writes
constexpr std::uint32_t kErrIrqCount = cpu::kSramBase + 0x108;
constexpr unsigned kRxLine = 1;
constexpr unsigned kErrLine = 2;

// Guest program: WFI main loop; an RX ISR answering each request frame
// with a reply carrying the running count; an error ISR that acknowledges
// every bus-error interrupt and, when STATUS.BOFF is set, performs the
// bus-off recovery sequence by writing CTRL.BOR.
Image build_guest(Assembler& a, Label* entry, Label* rx_isr, Label* err_isr) {
  *entry = examples::emit_idle_loop(a, /*wfi=*/true);

  // ----- RX ISR: pop the request, acknowledge, queue the reply --------
  *rx_isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, Ctl::kRxId));
  a.load_literal(r2, kReqId);
  a.ins(ins_cmp_reg(r1, r2));
  const Label discard = a.new_label();
  a.b(discard, Cond::ne);
  examples::emit_inc_word(a, kReplyCount);  // ++replies
  examples::emit_pop_ack(a, r0);            // retire request, ack RX
  examples::emit_tx_header(a, r0, kRepId, 4);  // compose + queue the reply
  a.ins(ins_ldst_imm(Op::str, r2, r0, Ctl::kTxData0));
  examples::emit_tx_commit(a, r0);
  a.ins(ins_ret());
  a.bind(discard);  // unmatched traffic: pop + ack, no reply
  examples::emit_pop_ack(a, r0);
  a.ins(ins_ret());
  a.pool();

  // ----- error ISR: real bus-off recovery ------------------------------
  *err_isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  examples::emit_inc_word(a, kErrIrqCount);  // ++error interrupts
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, Ctl::kStatus));
  a.ins(ins_rri(Op::and_, r2, r1, Ctl::kStatusBoff, SetFlags::yes));
  const Label ack = a.new_label();
  a.b(ack, Cond::eq);
  examples::emit_inc_word(a, kBoffSeen);  // ++recovery requests
  // The production driver move: restart the node. Keep RXIE/ERRIE, set
  // BOR (self-clearing) to begin the 128x11-recessive-bit sequence.
  a.ins(ins_mov_imm(r12, Ctl::kCtrlRxie | Ctl::kCtrlErrie | Ctl::kCtrlBor,
                    SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kCtrl));
  a.bind(ack);
  a.ins(ins_mov_imm(r12, Ctl::kIrqErr, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  return a.assemble();
}

}  // namespace

int main() {
  sim::Simulation sim(50 * sim::kMicrosecond);
  can::CanBus bus(sim.queue(), 125'000);  // classic body bus rate

  // --- the guest ECU under fault attack --------------------------------
  Assembler assembler(Encoding::b32, cpu::kFlashBase);
  Ctl::Config cc;
  cc.rx_line = kRxLine;
  cc.err_line = kErrLine;  // manual_bus_off_recovery stays on (default)
  Ctl controller(bus, "sensor", cc);
  cpu::System sys(cpu::profiles::modern_mcu()
                      .name("sensor")
                      .clock_hz(8'000'000)
                      .flash_size(32 * 1024)
                      .device(cpu::kPeriphBase, controller)
                      .ivc([] {
                        cpu::Ivc::Config c;
                        c.vector_table = kVectors;
                        c.lines = 4;
                        return c;
                      }()));
  cpu::SystemBinding& binding = sys.bind(sim);
  Label entry, rx_isr, err_isr;
  const Image image = build_guest(assembler, &entry, &rx_isr, &err_isr);
  sys.load(image);
  sys.set_irq_handler(kRxLine, assembler.label_address(rx_isr));
  sys.set_irq_handler(kErrLine, assembler.label_address(err_isr));
  sys.ivc()->enable_line(kRxLine, 32);
  sys.ivc()->enable_line(kErrLine, 16);  // faults preempt traffic service
  controller.connect_irq(binding);
  ACES_CHECK(sys.bus()
                 .write(cpu::kPeriphBase + Ctl::kCtrl, 4,
                        Ctl::kCtrlRxie | Ctl::kCtrlErrie, 0)
                 .ok());
  sys.core().reset(assembler.label_address(entry), sys.initial_sp());

  // --- the poller (kernel-model side) ----------------------------------
  const can::NodeId poller = bus.attach_node("poller");
  int requests_sent = 0;
  sim.schedule_every(10 * kMillisecond, [&bus, poller, &requests_sent] {
    can::CanFrame f;
    f.id = kReqId;
    f.dlc = 1;
    ++requests_sent;
    bus.send(poller, f);
  });
  int replies_heard = 0;
  std::uint32_t last_reply_payload = 0;
  bus.subscribe(poller, [&](const can::CanFrame& f, SimTime) {
    if (f.id == kRepId) {
      ++replies_heard;
      last_reply_payload = static_cast<std::uint32_t>(f.data[0]) |
                           static_cast<std::uint32_t>(f.data[1]) << 8 |
                           static_cast<std::uint32_t>(f.data[2]) << 16 |
                           static_cast<std::uint32_t>(f.data[3]) << 24;
    }
  });

  // --- the fault: a burst of 32 corrupted sensor transmissions ---------
  // Exactly the walk to bus-off: 32 x (TEC += 8) with no successful
  // decrement in between. Deterministic — no RNG needed for the
  // demonstration; see tests/can_fault_test.cpp for seeded campaigns.
  constexpr SimTime kBurstStart = 500 * kMillisecond;
  int burst_left = 32;
  bus.set_bit_error_model(
      [&, sensor = controller.node()](const can::CanFrame&, can::NodeId tx,
                                      SimTime now) {
        if (tx == sensor && now >= kBurstStart && burst_left > 0) {
          --burst_left;
          return 0;  // corrupt the SOF bit of the attempt
        }
        return -1;
      });

  SimTime bus_off_at = 0;
  SimTime recovered_at = 0;
  bus.subscribe_err(controller.node(),
                    [&](const can::CanBus::ErrorEvent& e, SimTime at) {
                      if (e.kind != can::CanBus::ErrorEvent::Kind::state_change)
                        return;
                      if (e.state == can::ErrorState::bus_off) {
                        bus_off_at = at;
                      } else if (e.state == can::ErrorState::error_active &&
                                 bus_off_at != 0) {
                        recovered_at = at;
                      }
                    });

  constexpr SimTime kHorizon = 2 * sim::kSecond;
  sim.run_until(kHorizon);

  const auto rd = [&sys](std::uint32_t addr) {
    return examples::read_word(sys, addr);
  };
  std::printf("=== bus-off and back: guest-ISR CAN fault recovery ===\n\n");
  std::printf("requests sent            %8d\n", requests_sent);
  std::printf("replies heard            %8d\n", replies_heard);
  std::printf("guest replies queued     %8u\n", rd(kReplyCount));
  std::printf("guest error IRQ entries  %8u\n", rd(kErrIrqCount));
  std::printf("guest recovery requests  %8u\n", rd(kBoffSeen));
  std::printf("bit errors on the wire   %8llu\n",
              static_cast<unsigned long long>(bus.fault_stats().bit_errors));
  std::printf("bus-off events           %8llu\n",
              static_cast<unsigned long long>(
                  bus.fault_stats().bus_off_events));
  std::printf("recoveries               %8llu\n",
              static_cast<unsigned long long>(bus.fault_stats().recoveries));
  std::printf("bus-off window           %lldus -> %lldus (%lldus dark)\n",
              static_cast<long long>(bus_off_at / 1000),
              static_cast<long long>(recovered_at / 1000),
              static_cast<long long>((recovered_at - bus_off_at) / 1000));
  std::printf("final state              TEC=%u REC=%u %s\n",
              bus.tec(controller.node()), bus.rec(controller.node()),
              bus.error_state(controller.node()) ==
                      can::ErrorState::error_active
                  ? "error-active"
                  : "NOT recovered");

  // Deterministic self-checks: the fault burst fired in full, the guest
  // saw bus-off exactly once, restarted the node itself, and traffic
  // resumed afterwards.
  ACES_CHECK(bus.fault_stats().bit_errors == 32);
  ACES_CHECK(bus.fault_stats().bus_off_events == 1);
  ACES_CHECK(bus.fault_stats().recoveries == 1);
  ACES_CHECK(rd(kBoffSeen) == 1);          // one CTRL.BOR, from the ISR
  ACES_CHECK(rd(kErrIrqCount) >= 33);      // >= 32 tx errors + state changes
  ACES_CHECK(bus_off_at > kBurstStart);
  ACES_CHECK(recovered_at - bus_off_at >=
             bus.bit_time() * can::CanBus::kBusOffRecoveryBits);
  ACES_CHECK(bus.error_state(controller.node()) ==
             can::ErrorState::error_active);
  ACES_CHECK(bus.tec(controller.node()) == 0);
  // Requests flow every 10 ms; only the bus-off window goes dark (the
  // one request inside it is lost while the node is off the bus), and
  // the final request is still on the wire at the horizon, so it is
  // never answered: 201 sent -> 199 replies.
  ACES_CHECK(requests_sent == 201);
  ACES_CHECK(rd(kReplyCount) == 199);
  ACES_CHECK(replies_heard == 199);
  ACES_CHECK(last_reply_payload == 199);
  std::printf("\nall checks passed: the guest ISR carried the node through "
              "bus-off and back.\n");
  return 0;
}
