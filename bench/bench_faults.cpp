// E13 — fault injection and recovery at campaign scale.
//
// Sweeps node-crash instant x supervised reboot delay x bus bit-error
// period over a supervised single-bus producer (>= 1000 seeded variants by
// default) and aggregates what the dependability story is made of:
// heartbeat-miss detection latencies, fault -> recovery distributions, and
// per-path availability. Three properties are self-checked, not just
// reported:
//
//   determinism   the same subset campaign run at 1, 2 and N workers must
//                 produce a byte-identical deterministic report;
//   soundness     every clean variant (no crash, no bit errors) keeps full
//                 availability and zero supervision activity; every
//                 error-free crash variant is detected, mitigated and
//                 recovered with availability above the floor, and mean
//                 recovery grows with the configured reboot delay;
//   replay        the first faulted variant, re-run alone from its
//                 (spec, seed) pair, must reproduce its fingerprint.
//
// `--json PATH` writes the BENCH_faults.json CI artifact: the full
// campaign report (with timing) wrapped with the scaling sweep.
//
//   bench_faults [--variants N] [--horizon-ms M] [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "campaign/runner.h"
#include "support/check.h"

using namespace aces;
using campaign::CampaignResult;
using campaign::CampaignRunner;
using campaign::ScenarioSpec;
using sim::kMicrosecond;
using sim::kMillisecond;

namespace {

constexpr std::uint32_t kSignalId = 0x110;
constexpr std::uint32_t kHeartbeatId = 0x050;

ScenarioSpec fault_sweep_spec(sim::SimTime horizon) {
  ScenarioSpec spec;
  spec.name = "fault-sweep";
  spec.master_seed = 1305;
  spec.horizon = horizon;
  spec.axes = {
      {"fault_at_ns", {0.0, 60.0e6, 120.0e6, 180.0e6, 240.0e6, 300.0e6}},
      {"reboot_delay_ns", {5.0e6, 20.0e6, 40.0e6}},
      {"error_period_ns", {0.0, 3.0e6}},
  };
  spec.topology = [](const campaign::Variant&) {
    net::NetworkBuilder nb;
    const net::BusId bus = nb.bus("pt", 500'000);
    net::ModelTask sender;
    sender.name = "speed";
    sender.priority = 5;
    sender.exec = 200 * kMicrosecond;
    sender.period = 10 * kMillisecond;
    can::CanFrame tx;
    tx.id = kSignalId;
    tx.dlc = 4;
    sender.tx = tx;
    nb.ecu(bus, "producer", {sender});
    return nb;
  };

  campaign::FaultPlan errors;
  errors.bus = 0;
  errors.period_axis = "error_period_ns";
  spec.faults.push_back(errors);

  campaign::NodeFaultPlan crash;
  crash.ecu = 0;
  crash.kind = net::NodeFault::Kind::crash;
  crash.at_axis = "fault_at_ns";
  spec.node_faults.push_back(crash);

  campaign::PathSpec path;
  path.name = "speed_signal";
  path.dst_bus = 0;
  path.dst_id = kSignalId;
  path.expected_period = 10 * kMillisecond;
  spec.paths.push_back(path);
  spec.assertions.min_availability = 0.3;

  spec.configure = [](net::Network& net, const campaign::Variant& v) {
    can::CanFrame hb;
    hb.id = kHeartbeatId;
    hb.dlc = 1;
    net.ecu(0).start_heartbeat(hb, 20 * kMillisecond);
    net::SupervisorNode& sup = net.add_supervisor(0, "sup");
    net::SupervisorNode::Monitor mon;
    mon.name = "producer";
    mon.heartbeat_id = kHeartbeatId;
    mon.period = 20 * kMillisecond;
    mon.window = 2 * kMillisecond;
    mon.delivery_bound = kMillisecond;
    mon.ecu = &net.ecu(0);
    mon.mitigations.push_back(net::Mitigation::restart_ecu(
        net.ecu(0), v.param_ns("reboot_delay_ns")));
    sup.add_monitor(mon);
    sup.start();
  };
  return spec;
}

CampaignResult run_with(const ScenarioSpec& spec, unsigned workers) {
  CampaignRunner::Config cfg;
  cfg.workers = workers;
  cfg.watchdog_events = 5'000'000;  // backstop; no variant should trip it
  return CampaignRunner(cfg).run(spec);
}

double axis_of(const campaign::VariantResult& v, const char* name) {
  for (const auto& [axis, value] : v.params) {
    if (axis == name) {
      return value;
    }
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t want_variants = 1008;
  sim::SimTime horizon = 400 * kMillisecond;
  const char* json_path = nullptr;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc) {
      json_path = argv[++k];
    } else if (std::strcmp(argv[k], "--variants") == 0 && k + 1 < argc) {
      want_variants = static_cast<std::size_t>(std::atoll(argv[++k]));
    } else if (std::strcmp(argv[k], "--horizon-ms") == 0 && k + 1 < argc) {
      horizon = std::atoll(argv[++k]) * kMillisecond;
    }
  }

  ScenarioSpec spec = fault_sweep_spec(horizon);
  const std::size_t grid = spec.variant_count();
  spec.replicates = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, (want_variants + grid - 1) / grid));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("=== E13: fault campaign — %zu variants (%zu-point grid x %u "
              "replicates), horizon %lld ms, hw threads %u ===\n",
              spec.variant_count(), grid, spec.replicates,
              static_cast<long long>(horizon / kMillisecond), hw);

  // --- worker scaling on a subset, determinism checked across counts -----
  ScenarioSpec subset = spec;
  subset.replicates = std::max(1u, std::min(spec.replicates, 4u));
  std::string scaling_json = "[";
  std::string reference;
  bool first = true;
  for (unsigned w : {1u, 2u, hw}) {
    const CampaignResult r = run_with(subset, w);
    const std::string deterministic = r.to_json(/*with_timing=*/false);
    if (reference.empty()) {
      reference = deterministic;
    } else {
      ACES_CHECK_MSG(deterministic == reference,
                     "deterministic report differs across worker counts");
    }
    std::printf("scaling: workers %2u -> %6.2f s (%.1f variants/s)\n", w,
                r.wall_seconds, r.variants_per_second);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"workers\": %u, \"wall_seconds\": %.3f, "
                  "\"variants_per_second\": %.1f}",
                  first ? "" : ",", r.workers, r.wall_seconds,
                  r.variants_per_second);
    scaling_json += buf;
    first = false;
    if (w >= hw) {
      break;
    }
  }
  scaling_json += "\n  ]";
  std::printf("scaling subset deterministic report: byte-identical across "
              "worker counts (%zu variants)\n", subset.variant_count());

  // --- the full campaign -------------------------------------------------
  const CampaignResult full = run_with(spec, hw);
  std::printf("supervision: %llu misses, %llu mitigations, %llu recoveries; "
              "recovery p99 %.2f ms, max %.2f ms; watchdog %llu\n",
              static_cast<unsigned long long>(full.heartbeat_misses),
              static_cast<unsigned long long>(full.mitigations),
              static_cast<unsigned long long>(full.recoveries),
              static_cast<double>(full.recovery_p99) / 1e6,
              static_cast<double>(full.recovery_max) / 1e6,
              static_cast<unsigned long long>(full.watchdog_timeouts));
  for (const auto& p : full.paths) {
    std::printf("path %-12s %8llu frames, availability %.4f (worst variant "
                "%.4f)\n", p.name.c_str(),
                static_cast<unsigned long long>(p.frames), p.availability,
                p.min_availability);
  }
  ACES_CHECK_MSG(full.watchdog_timeouts == 0,
                 "a variant tripped the event watchdog");

  // Soundness: clean variants stay fully available; error-free crash
  // variants detect, mitigate, recover and stay above the availability
  // floor; recovery time tracks the configured reboot delay.
  std::uint64_t clean = 0;
  std::uint64_t crashed = 0;
  double recovery_sum_fast = 0.0, recovery_sum_slow = 0.0;
  std::uint64_t recovery_n_fast = 0, recovery_n_slow = 0;
  for (const auto& v : full.variants) {
    const double fault_at = axis_of(v, "fault_at_ns");
    const double err = axis_of(v, "error_period_ns");
    const double reboot = axis_of(v, "reboot_delay_ns");
    if (fault_at == 0.0 && err == 0.0) {
      ++clean;
      ACES_CHECK_MSG(v.heartbeat_misses == 0 && v.recoveries == 0,
                     "clean variant saw supervision activity");
      ACES_CHECK_MSG(v.paths[0].availability > 0.95,
                     "clean variant lost availability");
    } else if (fault_at > 0.0 && err == 0.0) {
      ++crashed;
      ACES_CHECK_MSG(v.heartbeat_misses >= 1, "crash went undetected");
      ACES_CHECK_MSG(v.mitigations >= 1, "no mitigation fired");
      ACES_CHECK_MSG(!v.recovery_times.empty(), "no recovery measured");
      ACES_CHECK_MSG(v.paths[0].availability > 0.5,
                     "crash variant fell below the availability floor");
      for (const sim::SimTime t : v.recovery_times) {
        if (reboot <= 5.0e6) {
          recovery_sum_fast += static_cast<double>(t);
          ++recovery_n_fast;
        } else if (reboot >= 40.0e6) {
          recovery_sum_slow += static_cast<double>(t);
          ++recovery_n_slow;
        }
      }
    }
  }
  ACES_CHECK(clean > 0 && crashed > 0);
  ACES_CHECK(recovery_n_fast > 0 && recovery_n_slow > 0);
  const double mean_fast = recovery_sum_fast / recovery_n_fast;
  const double mean_slow = recovery_sum_slow / recovery_n_slow;
  std::printf("soundness: %llu clean + %llu crash variants checked; mean "
              "recovery %.2f ms (5 ms reboot) vs %.2f ms (40 ms reboot)\n",
              static_cast<unsigned long long>(clean),
              static_cast<unsigned long long>(crashed), mean_fast / 1e6,
              mean_slow / 1e6);
  ACES_CHECK_MSG(mean_slow > mean_fast,
                 "recovery time does not track the reboot delay");

  // Replay: the first crash variant must reproduce bit-identically.
  for (const auto& v : full.variants) {
    if (axis_of(v, "fault_at_ns") == 0.0) {
      continue;
    }
    const auto replayed = CampaignRunner().replay(spec, v.index, v.seed);
    ACES_CHECK_MSG(replayed.fingerprint == v.fingerprint,
                   "replayed variant fingerprint differs from the campaign");
    std::printf("replay: variant %u (seed %llu) reproduced fingerprint "
                "%016llx\n", v.index,
                static_cast<unsigned long long>(v.seed),
                static_cast<unsigned long long>(v.fingerprint));
    break;
  }

  if (json_path != nullptr) {
    std::string json = "{\n  \"bench\": \"bench_faults\",\n";
    json += "  \"scaling\": " + scaling_json + ",\n";
    json += "  \"campaign\": " + full.to_json(/*with_timing=*/true);
    // to_json ends with "}\n"; splice it into the wrapper.
    json.erase(json.size() - 1);
    json += "\n}\n";
    std::FILE* f = std::fopen(json_path, "w");
    ACES_CHECK_MSG(f != nullptr, "cannot open --json output path");
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
