// E1 — Table 1: "Comparing Thumb-2 performance and code density with Thumb
// and ARM".
//
// Paper rows (preliminary EEMBC AutoIndy data):
//   Scaled GM/MHz : ARM7(ARM) 100% | ARM7(Thumb) 79% | Cortex-M3(T2) 137%
//   Code size     : ARM 100%       | Thumb 57%       | Thumb-2 57%
//
// Reproduction: the six AutoIndy-like kernels, lowered per encoding, run on
// the matching core profile. Per-MHz rates are geometric means of 1/cycles,
// scaled to W32 = 100%. Both the paper's zero-wait regime and the embedded
// flash regime are reported (the latter is where density buys speed, §2.2).
#include "bench_util.h"

using namespace aces;
using namespace aces::bench;

namespace {

void report(MemRegime regime, const char* label) {
  const auto w = run_suite(isa::Encoding::w32, regime);
  const auto n = run_suite(isa::Encoding::n16, regime);
  const auto b = run_suite(isa::Encoding::b32, regime);
  const double base = geomean_rate(w);

  std::printf("\n[%s memory]\n", label);
  std::printf("%-28s %14s %10s\n", "Processor / encoding", "Scaled GM", "(rel)");
  print_rule();
  std::printf("%-28s %14.1f %9.0f%%\n", "legacy_hp  (W32  ~ARM)",
              100.0, 100.0 * geomean_rate(w) / base);
  std::printf("%-28s %14.1f %9.0f%%\n", "legacy_hp  (N16  ~Thumb)",
              100.0 * geomean_rate(n) / base,
              100.0 * geomean_rate(n) / base);
  std::printf("%-28s %14.1f %9.0f%%\n", "modern_mcu (B32  ~Thumb-2)",
              100.0 * geomean_rate(b) / base,
              100.0 * geomean_rate(b) / base);

  std::printf("\n%-28s %14s %10s\n", "Encoding", "Code bytes", "(rel)");
  print_rule();
  std::printf("%-28s %14u %9.0f%%\n", "W32  (~ARM)", total_code(w), 100.0);
  std::printf("%-28s %14u %9.0f%%\n", "N16  (~Thumb)", total_code(n),
              100.0 * total_code(n) / total_code(w));
  std::printf("%-28s %14u %9.0f%%\n", "B32  (~Thumb-2)", total_code(b),
              100.0 * total_code(b) / total_code(w));
}

}  // namespace

int main() {
  std::printf("=== E1 / Table 1: performance and code density across the "
              "common ISA's encodings ===\n");
  std::printf("(paper: GM/MHz ARM 100%% / Thumb 79%% / Thumb-2 137%%; "
              "code 100%% / 57%% / 57%%)\n");
  report(MemRegime::zero_wait, "zero-wait");
  report(MemRegime::slow_flash, "embedded-flash");
  std::printf(
      "\nShape check: N16 well below W32 performance at zero-wait, B32 "
      "above W32\nin both regimes; both compressed encodings far denser "
      "than W32.\n");
  return 0;
}
