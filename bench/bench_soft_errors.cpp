// E6 — §3.1.3: soft errors in cache and TCM RAM, with and without fault
// tolerance.
//
// Paper: cosmic-ray upsets are detected by the fault-tolerant RAM; tag
// errors become cache misses, corrupted I-fetches force invalidate+reload,
// corrupted data reads abort precisely and recover, and the TCM "hold and
// repair" stalls the core without an interrupt.
//
// Harness: the map_interp kernel runs continuously on a cached HP-class
// system while a seeded injector plants upsets at an accelerated rate.
// Reported per rate x FT setting: detected/recovered counts, silent
// corruptions (wrong kernel results), and the cycle overhead of recovery.
#include "bench_util.h"
#include "mem/fault_injector.h"

using namespace aces;
using namespace aces::bench;

namespace {

struct Outcome {
  std::uint64_t runs = 0;
  std::uint64_t wrong_results = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t tag_errors = 0;
  std::uint64_t silent = 0;
  double overhead_pct = 0.0;
};

Outcome run_rate(double upsets_per_mcycle, bool ft) {
  const workloads::Kernel& kernel = workloads::autoindy_suite()[1];  // map
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, isa::Encoding::w32, cpu::kFlashBase);

  mem::CacheConfig icache;
  icache.line_bytes = 16;
  icache.num_sets = 32;
  icache.ways = 2;
  icache.fault_tolerant = ft;
  mem::CacheConfig dcache = icache;
  dcache.cacheable_base = cpu::kFlashBase;
  dcache.cacheable_limit = cpu::kSramBase + 0x10000;
  const cpu::SystemBuilder cfg =
      system_for(isa::Encoding::w32, MemRegime::slow_flash)
          .icache(icache)
          .dcache(dcache);

  // The injected system layers the fault injector on top of the same
  // description; the clean reference below builds from `cfg` untouched.
  mem::FaultInjectorConfig fic;
  fic.upsets_per_mcycle = upsets_per_mcycle;
  cpu::System sys(cpu::SystemBuilder(cfg).fault_injector(fic, 123));
  sys.load(prog.image);

  // Baseline cycles with no injection for the overhead metric.
  support::Rng256 rng(55);
  std::vector<workloads::Instance> instances;
  for (int k = 0; k < 150; ++k) {
    instances.push_back(kernel.make_instance(rng, workloads::kDataBase));
  }

  Outcome out;
  std::uint64_t cycles = 0;
  std::uint64_t completed = 0;
  for (const workloads::Instance& in : instances) {
    ++out.runs;
    // The loader writes beneath the cache; invalidate for coherence.
    sys.dcache()->invalidate_all();
    try {
      const workloads::RunResult r =
          workloads::run_instance(sys, prog.entry_of(kernel.name), in);
      cycles += r.cycles;
      ++completed;
      if (r.value != in.expected) {
        ++out.wrong_results;
      }
    } catch (const std::logic_error&) {
      // Corrupted fetch decoded into wild code that faulted or ran away —
      // the unprotected configuration's worst outcome.
      ++out.wrong_results;
    }
  }
  const auto& is = sys.icache()->stats();
  const auto& ds = sys.dcache()->stats();
  out.recoveries = is.ifetch_refills + ds.ifetch_refills +
                   is.data_aborts_recovered + ds.data_aborts_recovered;
  out.tag_errors = is.tag_errors_detected + ds.tag_errors_detected;
  out.silent = is.silent_corruptions + ds.silent_corruptions;

  // Clean reference run for overhead (same share of the instance list).
  cpu::System clean(cfg);
  clean.load(prog.image);
  std::uint64_t clean_cycles = 0;
  std::uint64_t clean_completed = 0;
  for (const workloads::Instance& in : instances) {
    clean.dcache()->invalidate_all();
    clean_cycles +=
        workloads::run_instance(clean, prog.entry_of(kernel.name), in).cycles;
    ++clean_completed;
  }
  if (completed > 0 && clean_completed > 0) {
    const double per = static_cast<double>(cycles) /
                       static_cast<double>(completed);
    const double clean_per = static_cast<double>(clean_cycles) /
                             static_cast<double>(clean_completed);
    out.overhead_pct = 100.0 * (per - clean_per) / clean_per;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== E6 / §3.1.3: soft errors with fault-tolerant cache RAM "
              "===\n\n");
  std::printf("map_interp x150 on cached W32 core, accelerated upset "
              "rates:\n\n");
  std::printf("%-10s %-4s %8s %10s %10s %10s %10s\n", "rate/Mcy", "FT",
              "wrong", "recovered", "tag-err", "silent", "overhead");
  print_rule();
  for (const double rate : {50.0, 500.0, 5000.0}) {
    for (const bool ft : {false, true}) {
      const Outcome o = run_rate(rate, ft);
      std::printf("%-10.0f %-4s %8llu %10llu %10llu %10llu %9.2f%%\n", rate,
                  ft ? "on" : "off",
                  static_cast<unsigned long long>(o.wrong_results),
                  static_cast<unsigned long long>(o.recoveries),
                  static_cast<unsigned long long>(o.tag_errors),
                  static_cast<unsigned long long>(o.silent), o.overhead_pct);
    }
  }
  std::printf("\nShape: FT=on never returns a wrong result (recoveries "
              "absorb every upset)\nat bounded overhead; FT=off lets "
              "corrupted values reach the application.\n");

  // TCM hold-and-repair micro-measurement.
  std::printf("\nTCM hold-and-repair:\n");
  print_rule();
  for (const bool ft : {false, true}) {
    mem::TcmConfig tc;
    tc.size_bytes = 1024;
    tc.fault_tolerant = ft;
    tc.repair_cycles = 6;
    mem::Tcm tcm(tc);
    support::Rng256 rng(9);
    std::uint64_t cycles = 0;
    std::uint64_t bad = 0;
    for (int k = 0; k < 4096; ++k) {
      const std::uint32_t addr = static_cast<std::uint32_t>(
          rng.next_below(256)) * 4;
      ACES_CHECK(tcm.write(addr, 4, 0xA5A5A5A5u, 0).ok());
      if (rng.chance(0.05)) {
        tcm.inject_bit_flips(addr + rng.next_below(4),
                             static_cast<std::uint8_t>(
                                 1u << rng.next_below(8)));
      }
      const mem::MemResult r = tcm.read(addr, 4, mem::Access::read, 0);
      cycles += r.cycles;
      bad += r.value != 0xA5A5A5A5u ? 1 : 0;
    }
    std::printf("FT=%-3s  avg read %.3f cy   corrupted reads %llu/4096   "
                "repairs %llu\n",
                ft ? "on" : "off", static_cast<double>(cycles) / 4096.0,
                static_cast<unsigned long long>(bad),
                static_cast<unsigned long long>(tcm.stats().repairs));
  }
  return 0;
}
