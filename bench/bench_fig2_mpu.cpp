// E4 — Figure 2 / §3.1.1: fine-grained MPU vs classic 4 KB-granule MPU.
//
// Paper: "Current MPUs typically offer 4KByte code boundaries... too large
// for systems which have limited memory resource... often several tasks
// will have to be included within the same protection scheme."
//
// Harness: a population of OSEK software modules with realistic (small)
// footprints is packed into protection regions under both MPU models.
// Reported: memory wasted by region rounding, how many modules one 8/12/16
// region set can isolate, and whether cross-module interference is caught.
#include "bench_util.h"
#include "mem/mpu.h"
#include "support/rng.h"

using namespace aces;
using namespace aces::bench;

namespace {

struct Module {
  std::uint32_t code = 0;
  std::uint32_t data = 0;
};

std::vector<Module> make_modules(int count, support::Rng256& rng) {
  std::vector<Module> mods;
  for (int k = 0; k < count; ++k) {
    Module m;
    // Body-control routines: tens of bytes to ~2 KB.
    m.code = static_cast<std::uint32_t>(64 + rng.next_below(2048 - 64));
    m.data = static_cast<std::uint32_t>(16 + rng.next_below(512 - 16));
    mods.push_back(m);
  }
  return mods;
}

}  // namespace

int main() {
  std::printf("=== E4 / Figure 2: MPU granularity vs OSEK module isolation "
              "===\n\n");
  support::Rng256 rng(4242);
  const auto modules = make_modules(24, rng);

  std::uint32_t footprint = 0;
  for (const Module& m : modules) {
    footprint += m.code + m.data;
  }
  std::printf("24 software modules, true footprint %u bytes\n\n", footprint);

  std::printf("%-22s %14s %14s %10s\n", "MPU model", "rounded bytes",
              "waste", "waste%");
  print_rule();
  for (const bool fine : {false, true}) {
    const mem::Mpu mpu(fine ? mem::MpuConfig::fine()
                            : mem::MpuConfig::coarse());
    std::uint32_t rounded = 0;
    for (const Module& m : modules) {
      rounded += mpu.smallest_region_span(m.code) +
                 mpu.smallest_region_span(m.data);
    }
    std::printf("%-22s %14u %14u %9.0f%%\n",
                fine ? "fine (32 B granule)" : "classic (4 KB granule)",
                rounded, rounded - footprint,
                100.0 * (rounded - footprint) / footprint);
  }

  // Modules isolatable on a 64 KB-SRAM / 256 KB-flash part: each module
  // needs two regions (code RX, data RW) AND its rounded footprint must
  // fit. Coarse granularity exhausts the *memory* long before the region
  // file; that is why several tasks end up "included within the same
  // protection scheme" (the paper's complaint).
  std::printf("\nFully isolatable modules on a 64 KB-RAM / 256 KB-flash "
              "part:\n");
  std::printf("%-22s %8s %8s %8s\n", "MPU model", "8 reg", "12 reg",
              "16 reg");
  print_rule();
  for (const bool fine : {false, true}) {
    const mem::Mpu mpu(fine ? mem::MpuConfig::fine()
                            : mem::MpuConfig::coarse());
    std::printf("%-22s", fine ? "fine (32 B granule)" : "classic (4 KB)");
    for (const unsigned regions : {8u, 12u, 16u}) {
      const unsigned region_limit = (regions - 2) / 2;  // 2 kept for kernel
      std::uint32_t flash_left = 128 * 1024, ram_left = 16 * 1024;
      unsigned by_memory = 0;
      for (const Module& m : modules) {
        const std::uint32_t code = mpu.smallest_region_span(m.code);
        const std::uint32_t data = mpu.smallest_region_span(m.data);
        if (code <= flash_left && data <= ram_left) {
          flash_left -= code;
          ram_left -= data;
          ++by_memory;
        }
      }
      std::printf(" %8u", std::min(region_limit, by_memory));
    }
    std::printf("\n");
  }
  std::printf("(the fine MPU is limited only by the region file; the classic MPU "
              "exhausts the\n16 KB RAM after four 4 KB data granules)\n");

  // Fault containment: a wild write from one module into another must be
  // caught under both models once isolated — but the coarse model packs
  // multiple modules into one 4 KB region, where it CANNOT distinguish
  // them. Quantify: probability a random wild write inside the shared
  // region goes undetected.
  std::printf("\nWild-write containment (module A scribbles into B):\n");
  print_rule();
  {
    // Fine: module B's data region is exactly its rounded span.
    mem::Mpu fine(mem::MpuConfig::fine());
    mem::MpuRegion a_data;
    a_data.base = 0x2000'0000;
    a_data.size = fine.smallest_region_span(200);
    a_data.read = true;
    a_data.write = true;
    fine.set_region(0, a_data);
    // B's data lives right after A's — outside A's region.
    const std::uint32_t b_addr = a_data.base + a_data.size + 32;
    const bool caught = fine.check(b_addr, 4, mem::Access::write,
                                   /*privileged=*/false) != mem::Fault::none;
    std::printf("fine MPU:    write into neighbour module %s\n",
                caught ? "BLOCKED (fault raised)" : "missed");

    mem::Mpu coarse(mem::MpuConfig::coarse());
    mem::MpuRegion shared;
    shared.base = 0x2000'0000;
    shared.size = 4096;  // A and B share the 4 KB granule
    shared.read = true;
    shared.write = true;
    coarse.set_region(0, shared);
    const bool caught_coarse =
        coarse.check(b_addr, 4, mem::Access::write, false) !=
        mem::Fault::none;
    std::printf("classic MPU: write into neighbour module %s "
                "(same 4 KB granule)\n",
                caught_coarse ? "blocked" : "UNDETECTED");
  }
  return 0;
}
