// Heterogeneous fabrics — one application payload, four wires.
//
// Moves the same 64-byte application payload once per millisecond over
// every fabric the simulator models and contrasts delivered throughput,
// wire utilization and worst queue-to-delivery latency:
//
//   classic 500k      8 classic CAN frames per burst (the only way to
//                     carry 64 bytes on CAN 2.0) — saturates: the burst
//                     needs more wire time than the period provides
//   fd 500k/2M        one CAN FD frame, DLC 15, BRS data phase at 2 Mbps
//   fd 500k/5M        the same frame with a 5 Mbps data phase
//   flexray 10M       one FlexRay dynamic-segment frame (minislot scheme)
//
// Latencies are measured on the simulated wire and, for the feasible
// transports, checked against the matching analytic worst case (CAN FD
// stuffed closed forms, FlexRay minislot bound) — the bench fails if a
// measurement ever exceeds its bound. `--json PATH` writes the
// BENCH_fabric.json CI artifact.
//
//   bench_fabric [--horizon-ms N] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "can/bus.h"
#include "can/frame.h"
#include "net/flexray_fabric.h"
#include "sim/event_queue.h"
#include "support/check.h"

using namespace aces;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

namespace {

constexpr unsigned kPayloadBytes = 64;
constexpr SimTime kBurstPeriod = kMillisecond;

struct TransportResult {
  std::string name;
  bool feasible = true;           // wire can sustain the offered load
  double utilization = 0.0;       // worst-case wire time / period
  std::uint64_t bursts = 0;       // payloads fully delivered
  SimTime worst_latency = 0;      // burst queue -> last byte delivered
  SimTime analytic_worst = 0;     // closed-form bound (feasible only)
  double wall_ms = 0.0;           // host time for the simulation
};

double wall_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// 64 bytes as `nframes` classic frames or one FD frame on one bus.
TransportResult run_can(const char* name, std::uint32_t bitrate,
                        std::uint32_t data_bitrate, bool fd,
                        SimTime horizon) {
  TransportResult r;
  r.name = name;
  const auto t0 = std::chrono::steady_clock::now();

  sim::EventQueue queue;
  can::CanBus bus(queue, bitrate, data_bitrate);
  const can::NodeId tx = bus.attach_node("source");
  const can::NodeId rx = bus.attach_node("sink");

  const unsigned nframes = fd ? 1 : kPayloadBytes / 8;
  std::uint64_t delivered_in_burst = 0;
  bus.subscribe(rx, [&](const can::CanFrame& f, SimTime at) {
    if (++delivered_in_burst % nframes == 0) {
      r.bursts += 1;
      const SimTime lat = at - f.timestamp;
      r.worst_latency = std::max(r.worst_latency, lat);
    }
  });
  queue.schedule_every(kBurstPeriod, [&] {
    for (unsigned k = 0; k < nframes; ++k) {
      can::CanFrame f;
      f.id = 0x100 + k;
      f.fd = fd;
      f.dlc = fd ? 15 : 8;  // DLC 15 = 64 bytes
      bus.send(tx, f);
    }
  });
  queue.run_until(horizon);

  // Worst-case wire time of one whole burst, from the stuffed closed
  // forms (what a schedulability analysis would charge).
  const SimTime bit = sim::kSecond / bitrate;
  if (fd) {
    const SimTime dbit = sim::kSecond / data_bitrate;
    r.analytic_worst = can::fd_worst_case_nominal_bits(false) * bit +
                       can::fd_worst_case_data_bits(15) * dbit;
  } else {
    r.analytic_worst =
        static_cast<SimTime>(nframes) *
        (can::worst_case_wire_bits(8, false) * bit);
  }
  r.utilization = static_cast<double>(r.analytic_worst) /
                  static_cast<double>(kBurstPeriod);
  r.feasible = r.utilization <= 1.0;
  // A saturated wire has no finite worst case: the backlog (and the
  // measured "worst latency") grows with the horizon.
  if (r.feasible) {
    ACES_CHECK_MSG(r.worst_latency <= r.analytic_worst,
                   std::string(name) + ": measured latency above bound");
  }
  r.wall_ms = wall_since(t0);
  return r;
}

TransportResult run_flexray(SimTime horizon) {
  TransportResult r;
  r.name = "flexray 10M dyn";
  const auto t0 = std::chrono::steady_clock::now();

  sim::EventQueue queue;
  net::FlexrayFabricConfig cfg;
  cfg.static_cfg.cycle_length = kMillisecond;
  cfg.static_cfg.static_slots = 2;
  cfg.static_cfg.slot_length = 50 * kMicrosecond;
  cfg.minislots = 80;
  cfg.minislot = 10 * kMicrosecond;
  net::FlexrayFabric fabric(queue, cfg);
  const auto src = fabric.attach_node("source");
  const auto dyn = fabric.add_dynamic_frame(src, "payload", 1, kPayloadBytes);
  fabric.start();
  queue.schedule_every(kBurstPeriod, [&] {
    net::FlexrayFabric::DynPayload p;
    p.bytes = kPayloadBytes;
    fabric.send_dynamic(dyn, p);
  });
  queue.run_until(horizon);

  const auto& st = fabric.dyn_stats(dyn);
  r.bursts = st.sent;
  r.worst_latency = st.worst_latency;
  const sched::FlexrayDynHopParams hp =
      fabric.dynamic_hop_params(dyn, /*deadline=*/2 * kMillisecond);
  // One producer at the highest dynamic priority: bound = one full cycle
  // of offset + the static segment + its own occupancy.
  r.analytic_worst = hp.cycle_length + hp.static_segment +
                     static_cast<SimTime>(hp.slot_minislots) * hp.minislot;
  r.utilization = static_cast<double>(fabric.dyn_info(dyn).minislots) *
                  static_cast<double>(cfg.minislot) /
                  static_cast<double>(kBurstPeriod);
  ACES_CHECK_MSG(r.worst_latency <= r.analytic_worst,
                 "flexray: measured latency above bound");
  r.wall_ms = wall_since(t0);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  SimTime horizon = 2 * sim::kSecond;
  const char* json_path = nullptr;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--horizon-ms") == 0 && k + 1 < argc) {
      horizon = std::atoll(argv[++k]) * kMillisecond;
    } else if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc) {
      json_path = argv[++k];
    }
  }

  std::printf("=== heterogeneous fabrics: 64 bytes every 1 ms, four wires "
              "===\n\n");
  std::vector<TransportResult> results;
  results.push_back(
      run_can("classic 500k", 500'000, 0, /*fd=*/false, horizon));
  results.push_back(
      run_can("fd 500k/2M", 500'000, 2'000'000, /*fd=*/true, horizon));
  results.push_back(
      run_can("fd 500k/5M", 500'000, 5'000'000, /*fd=*/true, horizon));
  results.push_back(run_flexray(horizon));

  std::printf("%-14s %9s %6s %12s %12s %9s\n", "transport", "bursts",
              "util", "worst", "bound", "wall");
  for (const TransportResult& r : results) {
    std::printf("%-14s %9llu %5.0f%% %10lldus %10lldus %7.0fms%s\n",
                r.name.c_str(), static_cast<unsigned long long>(r.bursts),
                100.0 * r.utilization,
                static_cast<long long>(r.worst_latency / 1000),
                r.feasible ? static_cast<long long>(r.analytic_worst / 1000)
                           : -1,
                r.wall_ms, r.feasible ? "" : "  SATURATED");
  }
  std::printf("\nShape: 64 bytes/ms needs 8 classic frames and more wire "
              "time than the period\nprovides — classic CAN saturates and "
              "its backlog diverges. One FD frame at a\n2 Mbps data phase "
              "carries the same payload in a fifth of the wire time, and\n"
              "the FlexRay dynamic segment trades a cycle of latency for "
              "TDMA isolation.\n");

  if (json_path != nullptr) {
    std::string json = "{\n  \"bench\": \"bench_fabric\",\n";
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "  \"payload_bytes\": %u,\n  \"burst_period_us\": %lld,\n"
                  "  \"horizon_ms\": %lld,\n  \"transports\": [",
                  kPayloadBytes,
                  static_cast<long long>(kBurstPeriod / 1000),
                  static_cast<long long>(horizon / kMillisecond));
    json += buf;
    for (std::size_t k = 0; k < results.size(); ++k) {
      const TransportResult& r = results[k];
      std::snprintf(
          buf, sizeof buf,
          "%s\n    {\"name\": \"%s\", \"feasible\": %s, "
          "\"utilization\": %.4f, \"bursts\": %llu, "
          "\"worst_latency_us\": %lld, \"bound_us\": %lld, "
          "\"wall_ms\": %.1f}",
          k == 0 ? "" : ",", r.name.c_str(), r.feasible ? "true" : "false",
          r.utilization, static_cast<unsigned long long>(r.bursts),
          static_cast<long long>(r.worst_latency / 1000),
          r.feasible ? static_cast<long long>(r.analytic_worst / 1000) : -1,
          r.wall_ms);
      json += buf;
    }
    json += "\n  ]\n}\n";
    std::FILE* f = std::fopen(json_path, "w");
    ACES_CHECK_MSG(f != nullptr, "cannot open --json output path");
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
