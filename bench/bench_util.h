// Shared helpers for the experiment harnesses.
//
// Each bench binary regenerates one table/figure of the paper (see the
// per-experiment index in DESIGN.md) and prints paper-style rows. Numbers
// are simulated cycles from the ACES models — the shapes, not ARM's
// absolute silicon numbers, are the reproduction target (EXPERIMENTS.md
// records both).
#ifndef ACES_BENCH_BENCH_UTIL_H
#define ACES_BENCH_BENCH_UTIL_H

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "cpu/profiles.h"
#include "cpu/system.h"
#include "kir/lower.h"
#include "workloads/autoindy.h"
#include "workloads/runner.h"

namespace aces::bench {

// Memory regimes for the encoding comparisons.
enum class MemRegime {
  zero_wait,   // ideal 32-bit memory (Table 1's benchmarking condition)
  slow_flash,  // embedded flash behind a fast core (§2.2's condition)
};

inline cpu::SystemBuilder system_for(isa::Encoding e, MemRegime regime) {
  return cpu::profiles::for_encoding(e)
      .flash_size(128 * 1024)
      .flash_wait(regime == MemRegime::zero_wait ? 1 : 5);
}

struct KernelScore {
  std::string name;
  std::uint64_t cycles = 0;     // total over the instance batch
  std::uint32_t code_bytes = 0;
};

// Runs every suite kernel on one encoding/regime; deterministic seeds.
inline std::vector<KernelScore> run_suite(isa::Encoding e, MemRegime regime,
                                          int instances = 20,
                                          const kir::LoweringOptions* opts =
                                              nullptr) {
  std::vector<KernelScore> out;
  for (const workloads::Kernel& k : workloads::autoindy_suite()) {
    const kir::KFunction f = k.build();
    const kir::LoweredProgram prog =
        opts != nullptr
            ? kir::lower_program({&f}, e, *opts, cpu::kFlashBase)
            : kir::lower_program({&f}, e, cpu::kFlashBase);
    cpu::System sys(system_for(e, regime));
    sys.load(prog.image);
    support::Rng256 rng(99);  // same instances for every encoding
    KernelScore score;
    score.name = k.name;
    score.code_bytes = prog.code_bytes;
    for (int it = 0; it < instances; ++it) {
      const workloads::Instance in = k.make_instance(rng, workloads::kDataBase);
      const workloads::RunResult r =
          workloads::run_instance(sys, prog.entry_of(k.name), in);
      ACES_CHECK_MSG(r.value == in.expected, "kernel result mismatch");
      score.cycles += r.cycles;
    }
    out.push_back(score);
  }
  return out;
}

// Geometric mean of per-kernel rates (1/cycles), normalized later.
inline double geomean_rate(const std::vector<KernelScore>& scores) {
  double acc = 0.0;
  for (const KernelScore& s : scores) {
    acc += std::log(1.0 / static_cast<double>(s.cycles));
  }
  return std::exp(acc / static_cast<double>(scores.size()));
}

inline std::uint32_t total_code(const std::vector<KernelScore>& scores) {
  std::uint32_t total = 0;
  for (const KernelScore& s : scores) {
    total += s.code_bytes;
  }
  return total;
}

inline void print_rule() {
  std::printf(
      "--------------------------------------------------------------\n");
}

}  // namespace aces::bench

#endif  // ACES_BENCH_BENCH_UTIL_H
