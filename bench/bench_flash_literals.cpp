// E3 — §2.2: literal pools break the flash prefetch stream; MOVW/MOVT
// restores sequential access.
//
// Paper claims: "Benchmarks show a performance degradation of 15 percent is
// possible because of this effect" and "a cached architecture will
// typically outperform a Harvard machine by a similar margin under these
// conditions."
//
// Harness: a constant-heavy kernel (8 distinct 32-bit calibration constants
// per iteration) lowered for B32 twice — literal pools vs movw/movt — and
// run from flash across a wait-state sweep. A dual-buffer controller and an
// I-cached configuration complete the design space.
#include "bench_util.h"

using namespace aces;
using namespace aces::bench;

namespace {

// Mixes eight large constants with the argument; every iteration touches
// each constant once (sensor-scaling style code).
kir::KFunction make_const_heavy() {
  using kir::KOp;
  kir::KFunction f("const_heavy", 2);  // (x, iterations)
  const kir::VReg x = 0, n = 1;
  const kir::VReg acc = f.v(), i = f.v(), c = f.v();
  f.movi(acc, 0);
  f.movi(i, 0);
  const kir::KLabel top = f.make_label();
  f.bind(top);
  const std::uint32_t constants[8] = {0xDEADBEEF, 0x12345678, 0xCAFEF00D,
                                      0x00C0FFEE, 0xA5A5A5A5, 0x0BADF00D,
                                      0xFEEDFACE, 0x87654321};
  for (const std::uint32_t k : constants) {
    f.movi(c, k);
    f.arith(KOp::eor, acc, acc, c);
    f.arith(KOp::add, acc, acc, x);
  }
  f.arith_imm(KOp::add, i, i, 1);
  f.brcc(isa::Cond::ne, i, n, top);
  f.ret(acc);
  return f;
}

std::uint64_t run(const kir::LoweredProgram& prog,
                  const cpu::SystemBuilder& cfg) {
  cpu::System sys(cfg);
  sys.load(prog.image);
  sys.core().reset(prog.entry_of("const_heavy"), sys.initial_sp());
  sys.core().set_reg(isa::r0, 7);
  sys.core().set_reg(isa::r1, 500);
  const auto halt = sys.core().run(2'000'000);
  ACES_CHECK(halt == cpu::HaltReason::exited);
  return sys.core().cycles();
}

}  // namespace

int main() {
  std::printf("=== E3 / §2.2: literal pools vs MOVW/MOVT on embedded flash "
              "===\n");
  std::printf("(paper: ~15%% degradation from literal-pool fetches "
              "disrupting the prefetch stream)\n\n");

  const kir::KFunction f = make_const_heavy();
  kir::LoweringOptions with_movw =
      kir::LoweringOptions::for_encoding(isa::Encoding::b32);
  kir::LoweringOptions with_pools = with_movw;
  with_pools.use_movw_movt = false;
  const auto prog_movw =
      kir::lower_program({&f}, isa::Encoding::b32, with_movw, cpu::kFlashBase);
  const auto prog_pool =
      kir::lower_program({&f}, isa::Encoding::b32, with_pools, cpu::kFlashBase);

  std::printf("%-14s %12s %12s %12s %12s\n", "flash wait", "movw/movt",
              "literal pool", "degradation", "dual-buffer");
  print_rule();
  for (const std::uint32_t wait : {1u, 2u, 3u, 4u, 5u, 6u, 8u}) {
    cpu::SystemBuilder cfg =
        system_for(isa::Encoding::b32, MemRegime::slow_flash).flash_wait(wait);
    const std::uint64_t c_movw = run(prog_movw, cfg);
    const std::uint64_t c_pool = run(prog_pool, cfg);
    const std::uint64_t c_dual = run(prog_pool, cfg.flash_dual_buffer(true));
    std::printf("%-14u %12llu %12llu %11.1f%% %11.1f%%\n", wait,
                static_cast<unsigned long long>(c_movw),
                static_cast<unsigned long long>(c_pool),
                100.0 * (static_cast<double>(c_pool) - c_movw) / c_movw,
                100.0 * (static_cast<double>(c_dual) - c_movw) / c_movw);
  }

  // Cached configuration: the I-cache restores sequential-fetch behavior.
  std::printf("\n%-14s %12s %12s %12s\n", "flash wait", "pool+icache",
              "vs movw", "note");
  print_rule();
  for (const std::uint32_t wait : {4u, 8u}) {
    const cpu::SystemBuilder cfg =
        system_for(isa::Encoding::b32, MemRegime::slow_flash).flash_wait(wait);
    mem::CacheConfig icache;
    icache.line_bytes = 16;
    icache.num_sets = 64;
    icache.ways = 2;
    const std::uint64_t c_cached =
        run(prog_pool, cpu::SystemBuilder(cfg).icache(icache));
    const std::uint64_t c_movw = run(prog_movw, cfg);
    std::printf("%-14u %12llu %11.1f%% %s\n", wait,
                static_cast<unsigned long long>(c_cached),
                100.0 * (static_cast<double>(c_cached) - c_movw) / c_movw,
                "cache hides the pool fetches");
  }

  std::printf("\ncode bytes: movw/movt %u, literal pools %u\n",
              prog_movw.code_bytes, prog_pool.code_bytes);
  return 0;
}
