// E5 — §3.1.2: predictability on the high-performance core.
//
// Paper: a multi-word load whose cache lines miss can delay interrupt entry
// by several line fills; the "low latency interruptible, re-startable
// load/store multiple" bounds that, and the NMI option keeps the watchdog
// serviceable inside interrupt-locked regions.
//
// Harness: (a) an LDM-heavy loop streaming from slow flash; interrupts are
// asserted at randomized cycle instants and entry latency is recorded, with
// restartable LDM off/on. (b) a workload with cpsid/cpsie critical
// sections; a watchdog FIQ is asserted inside them, with and without NMI.
#include "bench_util.h"
#include "cpu/vic.h"
#include "isa/assembler.h"
#include "support/rng.h"

using namespace aces;
using namespace aces::bench;
using namespace aces::isa;

namespace {

struct LatencyStats {
  std::uint64_t worst = 0;
  double avg = 0.0;
  std::uint64_t restarts = 0;
};

LatencyStats ldm_latency(bool restartable, int samples) {
  Assembler a(Encoding::w32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  a.load_literal(r0, cpu::kFlashBase + 0x800);  // slow data source
  const Label top = a.bound_label();
  Instruction ldm;
  ldm.op = Op::ldm;
  ldm.rn = r0;
  ldm.reglist = 0x0FF0;  // r4-r11
  a.ins(ldm);
  a.b(top);
  a.pool();
  const Label handler = a.bound_label();
  a.ins(ins_push((1u << r4) | (1u << lr)));
  a.ins(ins_pop((1u << r4) | (1u << pc)));
  a.pool();
  const Image image = a.assemble();

  LatencyStats stats;
  support::Rng256 rng(7);
  for (int s = 0; s < samples; ++s) {
    cpu::SystemBuilder cfg = system_for(Encoding::w32, MemRegime::slow_flash)
                                 .flash_wait(10)
                                 .restartable_ldm(restartable);
    cpu::System sys(cfg);
    sys.load(image);
    cpu::ClassicVic::Config vc;
    vc.irq_handler = a.label_address(handler);
    cpu::ClassicVic vic(vc);
    sys.core().set_interrupt_controller(&vic);
    sys.core().reset(a.label_address(entry), sys.initial_sp());
    for (int k = 0; k < 20; ++k) {
      (void)sys.core().step();
    }
    const std::uint64_t raise_at =
        sys.core().cycles() + rng.next_below(200);
    bool raised = false;
    sys.core().set_cycle_hook([&vic, &raised, raise_at](std::uint64_t now) {
      if (!raised && now >= raise_at) {
        raised = true;
        vic.raise(cpu::ClassicVic::kIrq, now);
      }
    });
    for (int k = 0; k < 2000 && vic.latencies(0).empty(); ++k) {
      (void)sys.core().step();
    }
    ACES_CHECK(!vic.latencies(0).empty());
    const std::uint64_t latency = vic.latencies(0)[0];
    stats.worst = std::max(stats.worst, latency);
    stats.avg += static_cast<double>(latency) / samples;
    stats.restarts += sys.core().stats().ldm_restarts;
  }
  return stats;
}

}  // namespace

int main() {
  std::printf("=== E5 / §3.1.2: interrupt latency under multi-word "
              "loads and NMI ===\n\n");
  std::printf("LDM-heavy loop from 10-wait flash, 60 randomized arrivals:\n");
  std::printf("%-26s %10s %10s %10s\n", "configuration", "worst", "avg",
              "restarts");
  print_rule();
  for (const bool restartable : {false, true}) {
    const LatencyStats s = ldm_latency(restartable, 60);
    std::printf("%-26s %10llu %10.1f %10llu\n",
                restartable ? "restartable ldm/stm" : "atomic ldm/stm",
                static_cast<unsigned long long>(s.worst), s.avg,
                static_cast<unsigned long long>(s.restarts));
  }

  // NMI experiment: watchdog assertion inside a cpsid region.
  std::printf("\nWatchdog FIQ asserted inside an interrupt-locked critical "
              "section:\n");
  std::printf("%-26s %14s\n", "configuration", "serviced within");
  print_rule();
  for (const bool nmi : {false, true}) {
    Assembler a(Encoding::w32, cpu::kFlashBase);
    const Label entry = a.bound_label();
    Instruction cpsid;
    cpsid.op = Op::cps;
    cpsid.uses_imm = true;
    cpsid.imm = 1;
    a.ins(cpsid);
    for (int k = 0; k < 300; ++k) {
      a.ins(ins_rri(Op::add, r0, r0, 1, SetFlags::any));
    }
    Instruction cpsie = cpsid;
    cpsie.imm = 0;
    a.ins(cpsie);
    const Label spin = a.bound_label();
    a.b(spin);
    a.pool();
    const Label handler = a.bound_label();
    a.ins(ins_push(1u << lr));
    a.ins(ins_pop(1u << pc));
    a.pool();
    const Image image = a.assemble();

    cpu::SystemBuilder cfg = system_for(Encoding::w32, MemRegime::zero_wait);
    cpu::System sys(cfg);
    sys.load(image);
    cpu::ClassicVic::Config vc;
    vc.fiq_handler = a.label_address(handler);
    vc.fiq_is_nmi = nmi;
    cpu::ClassicVic vic(vc);
    sys.core().set_interrupt_controller(&vic);
    sys.core().reset(a.label_address(entry), sys.initial_sp());
    for (int k = 0; k < 10; ++k) {
      (void)sys.core().step();  // inside the locked section now
    }
    vic.raise(cpu::ClassicVic::kFiq, sys.core().cycles());
    for (int k = 0; k < 5000 && vic.latencies(1).empty(); ++k) {
      (void)sys.core().step();
    }
    if (vic.latencies(1).empty()) {
      std::printf("%-26s %14s\n", nmi ? "FIQ as NMI" : "maskable FIQ",
                  "starved");
    } else {
      std::printf("%-26s %11llu cy\n", nmi ? "FIQ as NMI" : "maskable FIQ",
                  static_cast<unsigned long long>(vic.latencies(1)[0]));
    }
  }
  std::printf("\nShape: restartable LDM cuts the worst case; the NMI lands "
              "in tens of cycles\nwhile the maskable FIQ waits for the "
              "whole locked section.\n");
  return 0;
}
