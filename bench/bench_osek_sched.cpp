// E10 — OSEK task scheduling: simulated kernel vs response-time analysis.
//
// Random task sets are generated at increasing utilization; each runs for
// two simulated seconds on the OSEK-like kernel with priority-ceiling
// resources, and the observed worst responses are set against the RTA
// bounds (with PCP blocking terms).
#include <cstdio>

#include "bench_util.h"
#include "rtos/kernel.h"
#include "sched/rta.h"

using namespace aces;
using namespace aces::bench;
using sim::SimTime;
using sim::kMicrosecond;
using sim::kMillisecond;

int main() {
  std::printf("=== E10: OSEK fixed-priority scheduling — simulation vs RTA "
              "===\n");
  support::Rng256 rng(808);
  for (const double target_util : {0.35, 0.55, 0.75}) {
    // Build a 5-task set near the target utilization, with one shared
    // resource between the lowest and highest priority tasks.
    std::vector<sched::RtaTask> tasks;
    const int n = 5;
    for (int k = 0; k < n; ++k) {
      sched::RtaTask t;
      t.name = "t" + std::to_string(k);
      t.period = (4 + static_cast<SimTime>(rng.next_below(40))) *
                 kMillisecond;
      t.wcet = static_cast<SimTime>(static_cast<double>(t.period) *
                                    target_util / n);
      t.priority = 100 - k;
      tasks.push_back(t);
    }
    const SimTime cs_len = tasks[n - 1].wcet / 4;
    std::vector<sched::CriticalSection> sections = {
        {n - 1, 0, cs_len},
        {0, 0, cs_len / 4},
    };
    sched::apply_pcp_blocking(tasks, sections);
    // Standard overhead accounting: each job costs two context switches.
    std::vector<sched::RtaTask> analysis = tasks;
    for (auto& t : analysis) {
      t.wcet += 2 * 5 * kMicrosecond;
    }
    const sched::RtaResult bound = sched::response_time_analysis(analysis);

    sim::EventQueue q;
    rtos::Kernel kernel(q, 5 * kMicrosecond);
    const rtos::ResourceId res = kernel.create_resource("shared");
    std::vector<rtos::TaskId> ids;
    for (int k = 0; k < n; ++k) {
      rtos::TaskConfig cfg;
      cfg.name = tasks[static_cast<std::size_t>(k)].name;
      cfg.priority = tasks[static_cast<std::size_t>(k)].priority;
      const SimTime c = tasks[static_cast<std::size_t>(k)].wcet;
      if (k == 0 || k == n - 1) {
        const SimTime cs = k == 0 ? cs_len / 4 : cs_len;
        rtos::Segment pre{rtos::Segment::Kind::execute, (c - cs) / 2, -1};
        rtos::Segment lock{rtos::Segment::Kind::lock, 0, res};
        rtos::Segment body{rtos::Segment::Kind::execute, cs, -1};
        rtos::Segment unlock{rtos::Segment::Kind::unlock, 0, res};
        rtos::Segment post{rtos::Segment::Kind::execute, c - cs - (c - cs) / 2,
                           -1};
        cfg.body = {pre, lock, body, unlock, post};
      } else {
        cfg.body = {rtos::Segment{rtos::Segment::Kind::execute, c, -1}};
      }
      ids.push_back(kernel.create_task(cfg));
      kernel.task_uses(ids.back(), res);
      kernel.set_alarm(ids.back(), 0,
                       tasks[static_cast<std::size_t>(k)].period);
    }
    kernel.start();
    q.run_until(2 * sim::kSecond);

    std::printf("\n-- utilization %.0f%% (analysis: %s) --\n",
                100.0 * sched::utilization(tasks),
                bound.schedulable ? "schedulable" : "NOT schedulable");
    std::printf("%-6s %8s %8s %10s %12s %12s %8s\n", "task", "C(us)",
                "T(ms)", "B(us)", "sim worst", "RTA bound", "margin");
    print_rule();
    for (int k = 0; k < n; ++k) {
      const auto& st = kernel.stats(ids[static_cast<std::size_t>(k)]);
      const auto bk = bound.response[static_cast<std::size_t>(k)];
      std::printf("%-6s %8lld %8lld %10lld %10lldus %10lldus %7.0f%%\n",
                  tasks[static_cast<std::size_t>(k)].name.c_str(),
                  static_cast<long long>(
                      tasks[static_cast<std::size_t>(k)].wcet / 1000),
                  static_cast<long long>(
                      tasks[static_cast<std::size_t>(k)].period /
                      kMillisecond),
                  static_cast<long long>(
                      tasks[static_cast<std::size_t>(k)].blocking / 1000),
                  static_cast<long long>(st.worst_response / 1000),
                  static_cast<long long>(bk / 1000),
                  bk == 0 ? 0.0
                          : 100.0 * static_cast<double>(st.worst_response) /
                                static_cast<double>(bk));
    }
    std::printf("context switches: %llu, worst ceiling blocking observed: "
                "%lldus\n",
                static_cast<unsigned long long>(kernel.context_switches()),
                static_cast<long long>(kernel.worst_blocking() / 1000));
  }
  std::printf("\nNote: the RTA charges each job two context switches "
              "(standard overhead\naccounting), so the bounds dominate the "
              "simulation with margins approaching\n100%% as load rises.\n");
  return 0;
}
