// E8 — Figure 5 / §3.2.3: bit-banding vs classic masked read-modify-write.
//
// Paper: setting one semaphore bit classically requires disabling
// interrupts, read/mask/write, and re-enabling; the bit-band alias turns it
// into one atomic store — "what was a multiple operation task becomes a
// simple, single write saving many cycles... there is now no need to
// disable other interrupts".
#include "bench_util.h"
#include "isa/assembler.h"

using namespace aces;
using namespace aces::bench;
using namespace aces::isa;

namespace {

constexpr std::uint32_t kSemaphores = cpu::kSramBase;  // byte 0 of SRAM
constexpr unsigned kBit = 3;
constexpr std::uint32_t kAlias = cpu::kBitBandBase + 0 * 32 + kBit * 4;

struct Shape {
  std::uint64_t cycles_per_op = 0;
  std::uint32_t code_bytes = 0;
};

Shape run(bool bitband, int ops) {
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  // r0 = op counter, r4 = byte address, r5 = alias address.
  a.load_literal(r4, kSemaphores);
  a.load_literal(r5, kAlias);
  a.ins(ins_mov_imm(r1, 1, SetFlags::any));
  const Label top = a.bound_label();
  const std::uint32_t code_start = 0;
  (void)code_start;
  if (bitband) {
    // Single atomic store to the alias sets the bit.
    a.ins(ins_ldst_imm(Op::str, r1, r5, 0));
  } else {
    // Classic: cpsid; ldrb; orr; strb; cpsie.
    Instruction cpsid;
    cpsid.op = Op::cps;
    cpsid.uses_imm = true;
    cpsid.imm = 1;
    a.ins(cpsid);
    a.ins(ins_ldst_imm(Op::ldrb, r2, r4, 0));
    a.ins(ins_rri(Op::orr, r2, r2, 1u << kBit, SetFlags::any));
    a.ins(ins_ldst_imm(Op::strb, r2, r4, 0));
    Instruction cpsie = cpsid;
    cpsie.imm = 0;
    a.ins(cpsie);
  }
  a.ins(ins_rri(Op::sub, r0, r0, 1, SetFlags::yes));
  a.b(top, Cond::ne);
  a.ins(ins_ret());
  const Image image = a.assemble();

  cpu::SystemBuilder cfg = system_for(Encoding::b32, MemRegime::zero_wait);
  cfg.bitband(0x1000);
  cpu::System sys(cfg);
  sys.load(image);
  sys.core().reset(a.label_address(entry), sys.initial_sp());
  sys.core().set_reg(r0, static_cast<std::uint32_t>(ops));
  const std::uint64_t c0 = sys.core().cycles();
  ACES_CHECK(sys.core().run(100'000'000) == cpu::HaltReason::exited);
  Shape s;
  s.cycles_per_op = (sys.core().cycles() - c0) / static_cast<unsigned>(ops);
  s.code_bytes = image.size();
  // Verify the bit really is set.
  ACES_CHECK((sys.bus().read(kSemaphores, 1, mem::Access::read, 0).value >>
              kBit) & 1u);
  return s;
}

}  // namespace

int main() {
  std::printf("=== E8 / Figure 5: semaphore set via bit-band alias vs "
              "masked RMW ===\n\n");
  const Shape classic = run(false, 10'000);
  const Shape alias = run(true, 10'000);
  std::printf("%-34s %14s %12s\n", "scheme", "cycles/op", "loop bytes");
  print_rule();
  std::printf("%-34s %14llu %12u\n", "cpsid + ldrb/orr/strb + cpsie",
              static_cast<unsigned long long>(classic.cycles_per_op),
              classic.code_bytes);
  std::printf("%-34s %14llu %12u\n", "bit-band alias store",
              static_cast<unsigned long long>(alias.cycles_per_op),
              alias.code_bytes);
  std::printf("\nspeedup: %.1fx, and the bit-band path never masks "
              "interrupts.\n",
              static_cast<double>(classic.cycles_per_op) /
                  static_cast<double>(alias.cycles_per_op));
  return 0;
}
