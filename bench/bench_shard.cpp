// Sharded co-simulation scaling — the BENCH_shard.json CI artifact.
//
// Two workloads, each run at a sweep of worker-thread counts:
//
//   fleet   the fleet_network topology (kZones zone buses + spine, one
//           gateway per zone, hundreds of kernel-model ECUs): scheduler
//           throughput (events/s) vs threads;
//   iss     a gateway-bridged vehicle with ISS ECUs running compiled
//           WFI/ISR guests on every zone bus: simulated guest MIPS vs
//           threads.
//
// Determinism is asserted, not assumed: the exact delivery fingerprint
// (fleet) and guest retirement counts (iss) must be identical at every
// thread count — threads only decide who runs a shard, never what
// happens. Speedups are reported against the 1-thread run on the same
// machine; on a single-core host the sweep still runs (and still checks
// determinism), it just cannot show scaling.
//
//   bench_shard [--horizon-ms N] [--zones N] [--threads-max N] [--json PATH]
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "cpu/profiles.h"
#include "isa/assembler.h"
#include "net/network.h"
#include "support/check.h"

using namespace aces;
using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

namespace {

// ----- fleet workload (kernel-model, exact across shard counts) --------------

struct FleetConfig {
  int zones = 16;
  int ecus_per_zone = 8;
  SimTime horizon = 500 * kMillisecond;
};

net::NetworkBuilder fleet_topology(const FleetConfig& cfg) {
  net::NetworkBuilder nb;
  const net::BusId spine = nb.bus("spine", 1'000'000);
  net::ModelTask command;
  command.name = "command";
  command.priority = 5;
  command.exec = 100 * kMicrosecond;
  command.period = 20 * kMillisecond;
  command.deadline = 20 * kMillisecond;
  can::CanFrame cmd;
  cmd.id = 0x050;
  cmd.dlc = 8;
  command.tx = cmd;
  nb.ecu(spine, "fleet_controller", {command});

  net::GatewayConfig gc;
  gc.forwarding_latency = 200 * kMicrosecond;
  gc.queue_depth = 16;
  for (int z = 0; z < cfg.zones; ++z) {
    const net::BusId zone = nb.bus("zone" + std::to_string(z), 500'000);
    const net::GatewayId gw = nb.gateway("gw" + std::to_string(z), gc);
    const auto status_id = static_cast<std::uint32_t>(0x100 + z);
    nb.route(gw, {zone, spine, status_id, 0x7FF, {}});
    nb.route(gw, {spine, zone, 0x050, 0x7FF, {}});
    for (int e = 0; e < cfg.ecus_per_zone; ++e) {
      net::ModelTask task;
      task.name = "app";
      task.priority = 5;
      task.exec = 150 * kMicrosecond;
      task.period = 10 * kMillisecond;
      task.offset = static_cast<SimTime>(e) * 300 * kMicrosecond;
      task.deadline = 10 * kMillisecond;
      can::CanFrame f;
      f.id = e == 0 ? status_id
                    : static_cast<std::uint32_t>(0x200 + z * 0x10 + e);
      f.dlc = 8;
      task.tx = f;
      nb.ecu(zone, "z" + std::to_string(z) + "e" + std::to_string(e),
             {task});
    }
  }
  return nb;
}

struct FleetRun {
  double wall_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
  std::size_t shards = 0;
};

FleetRun run_fleet(const FleetConfig& cfg, unsigned threads) {
  net::NetworkBuilder nb = fleet_topology(cfg);
  nb.threads(threads);
  net::Network net = nb.build();
  FleetRun r;
  for (std::size_t b = 0; b < net.bus_count(); ++b) {
    const auto id = static_cast<net::BusId>(b);
    const can::NodeId probe = net.bus(id).attach_node("probe");
    net.bus(id).subscribe(probe, [&r](const can::CanFrame& f, SimTime at) {
      r.fingerprint += (static_cast<std::uint64_t>(f.id) + 1) *
                       static_cast<std::uint64_t>(at);
    });
  }
  const auto start = std::chrono::steady_clock::now();
  net.run_until(cfg.horizon);
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  r.events = net.simulation().events_executed();
  r.shards = net.shard_count();
  return r;
}

// ----- ISS workload (guest MIPS) ---------------------------------------------

struct IssRun {
  double wall_seconds = 0.0;
  std::uint64_t instructions = 0;
  std::uint64_t events = 0;
  std::size_t shards = 0;
};

IssRun run_iss(SimTime horizon, unsigned threads) {
  using namespace aces::isa;
  using Ctl = can::CanController;
  constexpr unsigned kLine = 1;
  constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
  constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;

  // Count-and-ack guest ISR over a WFI idle loop, shared by all ECUs.
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  net::GuestProgram prog;
  prog.image = a.assemble();
  prog.entry = a.label_address(entry);
  prog.ivc.vector_table = kVectors;
  prog.handlers.push_back({kLine, a.label_address(isr), 32});

  net::NetworkBuilder nb;
  const net::BusId buses[3] = {nb.bus("pt", 500'000),
                               nb.bus("body", 125'000),
                               nb.bus("diag", 250'000)};
  Ctl::Config cc;
  cc.rx_line = kLine;
  std::vector<net::EcuId> ecus;
  for (int k = 0; k < 6; ++k) {
    ecus.push_back(nb.ecu(
        buses[k / 2],
        cpu::profiles::modern_mcu()
            .name("ecu" + std::to_string(k))
            .clock_hz(8'000'000 * (1u << (k % 2)))
            .flash_size(16 * 1024),
        prog, cc));
  }
  net::GatewayConfig gc;
  gc.forwarding_latency = 100 * kMicrosecond;
  const net::GatewayId gw = nb.gateway("central", gc);
  nb.route(gw, {buses[0], buses[1], 0x100, 0x7FF, {}});
  nb.route(gw, {buses[0], buses[2], 0x100, 0x7FF, {}});
  nb.threads(threads);
  net::Network net = nb.build();

  const can::NodeId sensor = net.bus(buses[0]).attach_node("sensor");
  net.shard(buses[0]).schedule_every(sim::kMillisecond,
                                     [&net, &buses, sensor] {
                                       can::CanFrame f;
                                       f.id = 0x100;
                                       f.dlc = 4;
                                       net.bus(buses[0]).send(sensor, f);
                                     });
  const auto start = std::chrono::steady_clock::now();
  net.run_until(horizon);
  IssRun r;
  r.wall_seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  for (const net::EcuId id : ecus) {
    r.instructions += net.iss(id).binding().stats().steps;
  }
  r.events = net.simulation().events_executed();
  r.shards = net.shard_count();
  return r;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  FleetConfig cfg;
  SimTime iss_horizon = 200 * kMillisecond;
  const char* json_path = nullptr;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  unsigned threads_max = std::max(8u, hw);
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc) {
      json_path = argv[++k];
    } else if (std::strcmp(argv[k], "--horizon-ms") == 0 && k + 1 < argc) {
      cfg.horizon = std::atoll(argv[++k]) * kMillisecond;
    } else if (std::strcmp(argv[k], "--zones") == 0 && k + 1 < argc) {
      cfg.zones = std::atoi(argv[++k]);
    } else if (std::strcmp(argv[k], "--threads-max") == 0 && k + 1 < argc) {
      threads_max = static_cast<unsigned>(std::atoi(argv[++k]));
    }
  }
  std::vector<unsigned> sweep;
  for (unsigned t = 1; t <= threads_max; t *= 2) {
    sweep.push_back(t);
  }

  std::printf("=== sharded co-simulation scaling: %d zones x %d ECUs, "
              "horizon %lld ms, hw threads %u ===\n\n",
              cfg.zones, cfg.ecus_per_zone,
              static_cast<long long>(cfg.horizon / kMillisecond), hw);

  std::string fleet_json = "[";
  std::printf("fleet (kernel-model, %d buses):\n", cfg.zones + 1);
  FleetRun fleet_base;
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const FleetRun r = run_fleet(cfg, sweep[k]);
    if (k == 0) {
      fleet_base = r;
    } else {
      ACES_CHECK_MSG(r.fingerprint == fleet_base.fingerprint &&
                         r.events == fleet_base.events,
                     "fleet run diverged across thread counts");
    }
    const double evps =
        r.wall_seconds > 0 ? static_cast<double>(r.events) / r.wall_seconds
                           : 0.0;
    const double speedup =
        r.wall_seconds > 0 ? fleet_base.wall_seconds / r.wall_seconds : 0.0;
    std::printf("  threads %2u: %7.3f s  %12.0f events/s  speedup %5.2fx"
                "  (%zu shards)\n",
                sweep[k], r.wall_seconds, evps, speedup, r.shards);
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"threads\": %u, \"wall_seconds\": %.4f, "
                  "\"events\": %s, \"events_per_second\": %.0f, "
                  "\"speedup\": %.3f, \"shards\": %zu}",
                  k == 0 ? "" : ",", sweep[k], r.wall_seconds,
                  fmt_u64(r.events).c_str(), evps, speedup, r.shards);
    fleet_json += buf;
  }
  fleet_json += "\n  ]";

  std::string iss_json = "[";
  std::printf("\niss (6 guest cores, 3 buses):\n");
  IssRun iss_base;
  for (std::size_t k = 0; k < sweep.size(); ++k) {
    const IssRun r = run_iss(iss_horizon, sweep[k]);
    if (k == 0) {
      iss_base = r;
    } else {
      // ISS topologies pin exact identity across THREAD counts for a
      // fixed partition (the shard count is fixed here).
      ACES_CHECK_MSG(r.instructions == iss_base.instructions &&
                         r.events == iss_base.events,
                     "iss run diverged across thread counts");
    }
    const double mips = r.wall_seconds > 0
                            ? static_cast<double>(r.instructions) * 1e-6 /
                                  r.wall_seconds
                            : 0.0;
    const double speedup =
        r.wall_seconds > 0 ? iss_base.wall_seconds / r.wall_seconds : 0.0;
    std::printf("  threads %2u: %7.3f s  %8.2f guest MIPS  speedup %5.2fx"
                "  (%zu shards)\n",
                sweep[k], r.wall_seconds, mips, speedup, r.shards);
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"threads\": %u, \"wall_seconds\": %.4f, "
                  "\"guest_instructions\": %s, \"guest_mips\": %.2f, "
                  "\"speedup\": %.3f, \"shards\": %zu}",
                  k == 0 ? "" : ",", sweep[k], r.wall_seconds,
                  fmt_u64(r.instructions).c_str(), mips, speedup, r.shards);
    iss_json += buf;
  }
  iss_json += "\n  ]";

  std::printf("\ndeterminism: every thread count produced identical "
              "results.\n");

  if (json_path != nullptr) {
    std::string j = "{\n  \"bench\": \"shard\",\n";
    j += "  \"hw_threads\": " + std::to_string(hw) + ",\n";
    j += "  \"zones\": " + std::to_string(cfg.zones) + ",\n";
    j += "  \"horizon_ms\": " +
         std::to_string(cfg.horizon / kMillisecond) + ",\n";
    j += "  \"fleet\": " + fleet_json + ",\n";
    j += "  \"iss\": " + iss_json + "\n}\n";
    std::FILE* f = std::fopen(json_path, "w");
    ACES_CHECK_MSG(f != nullptr, "cannot open json output path");
    std::fwrite(j.data(), 1, j.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
