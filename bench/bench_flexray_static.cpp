// E12 (extension) — FlexRay static segment vs CAN for the same traffic.
//
// The paper's distributed vision eventually pushed safety traffic toward
// time-triggered buses; this harness assigns the SAE-flavored message set
// to a FlexRay static schedule and contrasts worst-case latency and
// determinism against the CAN bounds of E9.
#include <cstdio>

#include "bench_util.h"
#include "net/flexray_fabric.h"
#include "sched/can_rta.h"
#include "sched/flexray.h"
#include "sim/simulation.h"

using namespace aces;
using namespace aces::bench;
using sim::SimTime;
using sim::kMicrosecond;
using sim::kMillisecond;

int main() {
  std::printf("=== E12: FlexRay static segment vs CAN (same message set) "
              "===\n\n");
  std::vector<sched::CanMessage> msgs = {
      {"engine_torque", 0x050, 8, 5 * kMillisecond, 0, 0},
      {"wheel_speed", 0x0A0, 6, 10 * kMillisecond, 0, 0},
      {"brake_pressure", 0x0C0, 4, 10 * kMillisecond, 0, 0},
      {"steering_angle", 0x120, 4, 20 * kMillisecond, 0, 0},
      {"gear_state", 0x200, 2, 40 * kMillisecond, 0, 0},
      {"door_status", 0x400, 1, 80 * kMillisecond, 0, 0},
      {"hvac_state", 0x500, 4, 80 * kMillisecond, 0, 0},
      {"diag_response", 0x7A0, 8, 160 * kMillisecond, 0, 0},
  };
  const sched::CanRtaResult can_bound = sched::can_rta(msgs, 250'000);

  // The schedule is built and owned by the fabric (net::FlexrayFabric) —
  // the same construction the simulated static segment replays, so the
  // figures below are exactly what the wire would carry.
  sim::Simulation sim;
  net::FlexrayFabricConfig cfg;
  cfg.static_cfg.cycle_length = 5 * kMillisecond;
  cfg.static_cfg.static_slots = 12;
  cfg.static_cfg.slot_length = 100 * kMicrosecond;
  net::FlexrayFabric fabric(sim, cfg);
  std::vector<sched::FlexrayFrame> frames;
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    frames.push_back(sched::FlexrayFrame{
        msgs[k].name, static_cast<int>(k % 4), msgs[k].period});
  }
  fabric.assign_static(frames);  // checked feasible
  const sched::FlexraySchedule& schedule = fabric.static_schedule();

  std::printf("%-16s %10s %14s %14s %8s\n", "message", "period",
              "CAN bound", "FlexRay bound", "slot/rep");
  print_rule();
  for (std::size_t k = 0; k < msgs.size(); ++k) {
    const auto& a = schedule.of(static_cast<int>(k));
    std::printf("%-16s %8lldms %12lldus %12lldus %5u/%u\n",
                msgs[k].name.c_str(),
                static_cast<long long>(msgs[k].period / kMillisecond),
                static_cast<long long>(can_bound.response[k] / 1000),
                static_cast<long long>(a.worst_latency / 1000), a.slot,
                a.repetition);
  }
  std::printf("\nstatic segment utilization: %.0f%%\n",
              100.0 * schedule.static_utilization);
  std::printf("\nShape: CAN gives tight latency to the top identifiers but "
              "degrades down the\npriority order; the TDMA table gives "
              "every frame a flat, load-independent bound.\n");
  return 0;
}
