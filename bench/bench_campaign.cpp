// E12 — the campaign engine at production scale.
//
// Expands the vehicle preset (campaign/presets.h) into >= 1000 seeded
// variants — bit-error period x gateway queue depth x bus load over the
// 3-bus / 23-ECU topology — and fans them across the worker pool. Three
// properties are self-checked here, not just reported:
//
//   scaling      the same subset campaign is timed at 1, 2 and N workers
//               (near-linear on real cores; also how CI smoke-tests the
//               pool), and its deterministic report must be byte-identical
//               at every worker count;
//   soundness    no fault-free variant may exceed its sched::path_rta
//               bound (analysis >= simulation is the repo's core claim);
//   replay       the first violating variant, re-run alone from its
//               (spec, seed) pair, must reproduce its fingerprint exactly.
//
// `--json PATH` writes the BENCH_campaign.json CI artifact: the full
// campaign report (with timing) wrapped with the scaling sweep.
//
//   bench_campaign [--variants N] [--horizon-ms M] [--json PATH]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "campaign/presets.h"
#include "campaign/runner.h"
#include "support/check.h"

using namespace aces;
using campaign::CampaignResult;
using campaign::CampaignRunner;
using campaign::ScenarioSpec;

namespace {

CampaignResult run_with(const ScenarioSpec& spec, unsigned workers) {
  CampaignRunner::Config cfg;
  cfg.workers = workers;
  return CampaignRunner(cfg).run(spec);
}

void print_summary(const CampaignResult& r) {
  std::printf("%-12s %8s %10s %10s %10s %10s %8s\n", "path", "frames",
              "min_us", "mean_us", "p99_us", "max_us", "viol");
  for (const auto& p : r.paths) {
    std::printf("%-12s %8llu %10.1f %10.1f %10.1f %10.1f %8llu\n",
                p.name.c_str(), static_cast<unsigned long long>(p.frames),
                static_cast<double>(p.min_latency) / 1000.0,
                p.mean_latency / 1000.0,
                static_cast<double>(p.p99_latency) / 1000.0,
                static_cast<double>(p.max_latency) / 1000.0,
                static_cast<unsigned long long>(p.bound_exceeded_variants));
  }
  std::printf("violating %llu / %llu variants (rta %llu, unschedulable "
              "%llu, drops %llu, bus-off %llu, deadline %llu); bit errors "
              "%llu\n",
              static_cast<unsigned long long>(r.violating_variants),
              static_cast<unsigned long long>(r.variants.size()),
              static_cast<unsigned long long>(r.rta_violations),
              static_cast<unsigned long long>(r.unschedulable),
              static_cast<unsigned long long>(r.overflow_drops),
              static_cast<unsigned long long>(r.bus_off_events),
              static_cast<unsigned long long>(r.deadline_misses),
              static_cast<unsigned long long>(r.bit_errors));
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t want_variants = 1008;
  sim::SimTime horizon = 250 * sim::kMillisecond;
  const char* json_path = nullptr;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc) {
      json_path = argv[++k];
    } else if (std::strcmp(argv[k], "--variants") == 0 && k + 1 < argc) {
      want_variants = static_cast<std::size_t>(std::atoll(argv[++k]));
    } else if (std::strcmp(argv[k], "--horizon-ms") == 0 && k + 1 < argc) {
      horizon = std::atoll(argv[++k]) * sim::kMillisecond;
    }
  }

  ScenarioSpec spec = campaign::presets::vehicle_spec(horizon);
  const std::size_t grid = spec.variant_count();  // replicates == 1 here
  spec.replicates = static_cast<std::uint32_t>(
      std::max<std::size_t>(1, (want_variants + grid - 1) / grid));
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());

  std::printf("=== E12: campaign engine — %zu variants (%zu-point grid x %u "
              "replicates), horizon %lld ms, hw threads %u ===\n",
              spec.variant_count(), grid, spec.replicates,
              static_cast<long long>(horizon / sim::kMillisecond), hw);

  // --- worker scaling on a subset, determinism checked across counts -----
  ScenarioSpec subset = spec;
  subset.replicates = std::max(1u, std::min(spec.replicates, 4u));
  std::string scaling_json = "[";
  std::string reference;
  bool first = true;
  for (unsigned w : {1u, 2u, hw}) {
    const CampaignResult r = run_with(subset, w);
    const std::string deterministic = r.to_json(/*with_timing=*/false);
    if (reference.empty()) {
      reference = deterministic;
    } else {
      ACES_CHECK_MSG(deterministic == reference,
                     "deterministic report differs across worker counts");
    }
    std::printf("scaling: workers %2u -> %6.2f s (%.1f variants/s)\n", w,
                r.wall_seconds, r.variants_per_second);
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "%s\n    {\"workers\": %u, \"wall_seconds\": %.3f, "
                  "\"variants_per_second\": %.1f}",
                  first ? "" : ",", r.workers, r.wall_seconds,
                  r.variants_per_second);
    scaling_json += buf;
    first = false;
    if (w >= hw) {
      break;
    }
  }
  scaling_json += "\n  ]";
  std::printf("scaling subset deterministic report: byte-identical across "
              "worker counts (%zu variants)\n", subset.variant_count());

  // --- the full campaign -------------------------------------------------
  const CampaignResult full = run_with(spec, hw);
  print_summary(full);

  // Soundness: a fault-free variant must never beat its analytic bound.
  std::uint64_t fault_free = 0;
  for (const auto& v : full.variants) {
    bool no_faults = true;
    for (const auto& [name, value] : v.params) {
      if (name == "error_period_ns" && value != 0.0) {
        no_faults = false;
      }
    }
    if (!no_faults) {
      continue;
    }
    ++fault_free;
    for (const auto& p : v.paths) {
      ACES_CHECK_MSG(!p.bound_exceeded,
                     "fault-free variant exceeded its path_rta bound");
    }
  }
  std::printf("soundness: %llu fault-free variants all within path_rta "
              "bounds\n", static_cast<unsigned long long>(fault_free));

  // Replay: the first violating variant must reproduce bit-identically.
  if (const auto* v = full.first_violating()) {
    const auto replayed = CampaignRunner().replay(spec, v->index, v->seed);
    ACES_CHECK_MSG(replayed.fingerprint == v->fingerprint,
                   "replayed variant fingerprint differs from the campaign");
    std::printf("replay: variant %u (seed %llu) reproduced fingerprint "
                "%016llx\n", v->index,
                static_cast<unsigned long long>(v->seed),
                static_cast<unsigned long long>(v->fingerprint));
  } else {
    std::printf("replay: no violating variant to replay\n");
  }

  if (json_path != nullptr) {
    std::string json = "{\n  \"bench\": \"bench_campaign\",\n";
    json += "  \"scaling\": " + scaling_json + ",\n";
    json += "  \"campaign\": " + full.to_json(/*with_timing=*/true);
    // to_json ends with "}\n"; splice it into the wrapper.
    json.erase(json.size() - 1);
    json += "\n}\n";
    std::FILE* f = std::fopen(json_path, "w");
    ACES_CHECK_MSG(f != nullptr, "cannot open --json output path");
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }
  return 0;
}
