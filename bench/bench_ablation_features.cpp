// E11 — ablation of the blended encoding's feature set.
//
// DESIGN.md calls out five B32 features the paper motivates individually:
// movw/movt (§2.2), bitfield ops (§2.1), hardware divide (§2.1), IT blocks
// (§2.3) and cbz. Each is disabled in isolation and the suite re-measured;
// the delta attributes the B32 advantage to its mechanisms.
#include "bench_util.h"

using namespace aces;
using namespace aces::bench;

namespace {

struct Variant {
  const char* name;
  void (*apply)(kir::LoweringOptions&);
};

}  // namespace

int main() {
  std::printf("=== E11: B32 feature ablation (suite geomean & code size) "
              "===\n\n");
  const Variant variants[] = {
      {"full B32", [](kir::LoweringOptions&) {}},
      {"- movw/movt", [](kir::LoweringOptions& o) { o.use_movw_movt = false; }},
      {"- bitfield ops", [](kir::LoweringOptions& o) { o.use_bitfield = false; }},
      {"- hw divide", [](kir::LoweringOptions& o) { o.use_hw_divide = false; }},
      {"- IT blocks", [](kir::LoweringOptions& o) { o.use_it_blocks = false; }},
      {"- cbz/cbnz", [](kir::LoweringOptions& o) { o.use_cbz = false; }},
      {"bare (all off)",
       [](kir::LoweringOptions& o) {
         o.use_movw_movt = false;
         o.use_bitfield = false;
         o.use_hw_divide = false;
         o.use_it_blocks = false;
         o.use_cbz = false;
       }},
  };

  double base_rate = 0.0;
  std::uint32_t base_code = 0;
  std::printf("%-18s %12s %10s %12s %10s   (flash regime)\n", "variant",
              "GM rate", "vs full", "code bytes", "vs full");
  print_rule();
  for (const Variant& v : variants) {
    kir::LoweringOptions opts =
        kir::LoweringOptions::for_encoding(isa::Encoding::b32);
    v.apply(opts);
    const auto scores =
        run_suite(isa::Encoding::b32, MemRegime::slow_flash, 10, &opts);
    const double rate = geomean_rate(scores);
    const std::uint32_t code = total_code(scores);
    if (base_rate == 0.0) {
      base_rate = rate;
      base_code = code;
    }
    std::printf("%-18s %12.3e %9.0f%% %12u %9.0f%%\n", v.name, rate,
                100.0 * rate / base_rate, code,
                100.0 * code / base_code);
  }
  std::printf("\nShape: every feature removal costs performance and/or "
              "density; the divide\nand bitfield instructions carry the "
              "largest shares on this suite.\n");
  return 0;
}
