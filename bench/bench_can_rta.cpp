// E9 — the distributed-vision substrate: CAN schedulability.
//
// An SAE-flavored body/powertrain message set is swept across bus loads;
// for every message the worst simulated latency is compared against the
// Davis-et-al. response-time bound. The property that makes the "virtual
// multi-core" vision engineerable: analysis >= simulation, tight at the
// top priorities.
//
// `--json PATH` additionally writes a machine-readable artifact (the CI
// `BENCH_can.json`) carrying, per sweep and message, the simulated worst
// latency plus BOTH analytic bounds: fault-free and faulted (Tindell's
// error term at one bit error per 10 ms). The human-readable stdout is
// unchanged by the flag.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "can/bus.h"
#include "sched/can_rta.h"

using namespace aces;
using namespace aces::bench;
using sim::SimTime;
using sim::kMillisecond;

namespace {

std::vector<sched::CanMessage> base_set() {
  std::vector<sched::CanMessage> m;
  const auto add = [&m](const char* name, std::uint32_t id, unsigned dlc,
                        SimTime period) {
    m.push_back(sched::CanMessage{name, id, dlc, period, 0, 0});
  };
  add("engine_torque", 0x050, 8, 5 * kMillisecond);
  add("wheel_speed", 0x0A0, 6, 10 * kMillisecond);
  add("brake_pressure", 0x0C0, 4, 10 * kMillisecond);
  add("steering_angle", 0x120, 4, 20 * kMillisecond);
  add("gear_state", 0x200, 2, 50 * kMillisecond);
  add("door_status", 0x400, 1, 100 * kMillisecond);
  add("hvac_state", 0x500, 4, 100 * kMillisecond);
  add("diag_response", 0x7A0, 8, 200 * kMillisecond);
  return m;
}

// Pads the set with extra mid-priority traffic to reach a target load.
std::vector<sched::CanMessage> padded_set(int extra) {
  auto msgs = base_set();
  for (int k = 0; k < extra; ++k) {
    sched::CanMessage m;
    m.name = "pad" + std::to_string(k);
    m.id = static_cast<std::uint32_t>(0x300 + k * 8);
    m.dlc = 8;
    m.period = 10 * kMillisecond;
    msgs.push_back(m);
  }
  return msgs;
}

// Fault hypothesis used for the artifact's faulted bounds.
constexpr SimTime kTError = 10 * kMillisecond;

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = nullptr;
  for (int k = 1; k < argc; ++k) {
    if (std::strcmp(argv[k], "--json") == 0 && k + 1 < argc) {
      json_path = argv[k + 1];
    }
  }

  std::string json = "{\n  \"bench\": \"bench_can_rta\",\n"
                     "  \"bitrate_bps\": 250000,\n"
                     "  \"t_error_ns\": " +
                     std::to_string(kTError) + ",\n  \"sweeps\": [";
  bool first_sweep = true;

  std::printf("=== E9: CAN worst-case latency — simulation vs response-time "
              "analysis (250 kbit/s) ===\n");
  for (const int extra : {0, 4, 8}) {
    const auto msgs = padded_set(extra);
    const sched::CanRtaResult bound = sched::can_rta(msgs, 250'000);
    const sched::CanRtaResult faulted =
        sched::can_rta(msgs, 250'000, sched::CanErrorModel{kTError});

    sim::EventQueue q;
    can::CanBus bus(q, 250'000);
    const can::NodeId tx = bus.attach_node("tx");
    (void)bus.attach_node("rx");
    for (const sched::CanMessage& m : msgs) {
      q.schedule_every(m.period, [&bus, m, tx]() {
        can::CanFrame f;
        f.id = m.id;
        f.dlc = m.dlc;
        bus.send(tx, f);
      });
    }
    q.run_until(4 * sim::kSecond);

    std::printf("\n-- bus utilization %.0f%% (analysis: %s) --\n",
                100.0 * bound.bus_utilization,
                bound.schedulable ? "schedulable" : "NOT schedulable");
    std::printf("%-16s %6s %10s %12s %12s %8s\n", "message", "id", "period",
                "sim worst", "RTA bound", "margin");
    print_rule();
    json += std::string(first_sweep ? "" : ",") + "\n    {\"extra_load\": " +
            std::to_string(extra) +
            ", \"utilization\": " + std::to_string(bound.bus_utilization) +
            ", \"schedulable\": " + (bound.schedulable ? "true" : "false") +
            ", \"schedulable_faulted\": " +
            (faulted.schedulable ? "true" : "false") + ",\n     \"messages\": [";
    first_sweep = false;
    for (std::size_t k = 0; k < msgs.size(); ++k) {
      const auto it = bus.stats().find(msgs[k].id);
      const SimTime sim_worst =
          it == bus.stats().end() ? 0 : it->second.worst_latency;
      json += std::string(k == 0 ? "" : ",") + "\n      {\"name\": \"" +
              msgs[k].name + "\", \"id\": " + std::to_string(msgs[k].id) +
              ", \"period_ns\": " + std::to_string(msgs[k].period) +
              ", \"sim_worst_ns\": " + std::to_string(sim_worst) +
              ", \"bound_fault_free_ns\": " +
              std::to_string(faulted.response_fault_free[k]) +
              ", \"bound_faulted_ns\": " +
              std::to_string(faulted.response_faulted[k]) + "}";
      if (msgs[k].name.rfind("pad", 0) == 0 && k % 3 != 0) {
        continue;  // keep the table readable
      }
      std::printf("%-16s %#6x %8lldms %10lldus %10lldus %7.0f%%\n",
                  msgs[k].name.c_str(), msgs[k].id,
                  static_cast<long long>(msgs[k].period / kMillisecond),
                  static_cast<long long>(sim_worst / 1000),
                  static_cast<long long>(bound.response[k] / 1000),
                  bound.response[k] == 0
                      ? 0.0
                      : 100.0 * static_cast<double>(sim_worst) /
                            static_cast<double>(bound.response[k]));
      ACES_CHECK_MSG(sim_worst <= bound.response[k],
                     "analysis violated by simulation!");
      ACES_CHECK_MSG(bound.response[k] <= faulted.response[k],
                     "error term shrank a bound!");
    }
    json += "\n     ]}";
  }
  json += "\n  ]\n}\n";
  std::printf("\nProperty held: every simulated latency <= its analytic "
              "bound.\n");

  if (json_path != nullptr) {
    std::FILE* f = std::fopen(json_path, "w");
    ACES_CHECK_MSG(f != nullptr, "cannot open --json output path");
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
  }
  return 0;
}
