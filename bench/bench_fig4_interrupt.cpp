// E7 — Figure 4 / §3.2.1: fast interrupt response on the microcontroller.
//
// Paper: hardware pre/postamble lets handlers be plain compiled functions,
// the vector fetch overlaps the stacking, and back-to-back interrupts are
// tail-chained without restoring/re-saving context.
//
// Harness: identical handler work under three schemes:
//   classic  — ClassicVic: hardware saves nothing; the handler's push/pop
//              of the caller-saved set is the software pre/postamble;
//   hw-stack — Ivc: 8-word hardware stacking + vector fetch;
//   and the back-to-back pair measuring tail-chaining.
#include "bench_util.h"
#include "cpu/ivc.h"
#include "cpu/vic.h"
#include "isa/assembler.h"

using namespace aces;
using namespace aces::bench;
using namespace aces::isa;

namespace {

constexpr std::uint32_t kMailbox = cpu::kSramBase + 0x100;
constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;

// Handler body: bump the mailbox (caller-saved registers get dirtied,
// exactly what an AAPCS compiler would emit).
void emit_handler_body(Assembler& a) {
  a.load_literal(r0, kMailbox);
  a.ins(ins_ldst_imm(Op::ldr, r1, r0, 0));
  a.ins(ins_rri(Op::add, r1, r1, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r1, r0, 0));
}

std::uint32_t read_mailbox(cpu::System& sys) {
  return sys.bus().read(kMailbox, 4, mem::Access::read, 0).value;
}

struct Measured {
  std::uint64_t first_latency = 0;   // raise -> first handler instruction
  std::uint64_t pair_cycles = 0;     // raise(2) -> both handlers done
  std::uint64_t tail_chains = 0;
};

Measured run_classic() {
  Assembler a(Encoding::w32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label spin = a.bound_label();
  a.ins(ins_rri(Op::add, r6, r6, 1, SetFlags::any));
  a.b(spin);
  a.pool();
  const Label handler = a.bound_label();
  // Software preamble: a compiler-visible handler must preserve the
  // caller-saved set itself.
  a.ins(ins_push(0x100F | (1u << lr)));  // r0-r3, r12, lr
  emit_handler_body(a);
  a.ins(ins_pop(0x100F | (1u << pc)));
  a.pool();
  const Image image = a.assemble();

  cpu::SystemBuilder cfg = system_for(Encoding::w32, MemRegime::zero_wait);
  cpu::System sys(cfg);
  sys.load(image);
  cpu::ClassicVic::Config vc;
  vc.irq_handler = a.label_address(handler);
  cpu::ClassicVic vic(vc);
  sys.core().set_interrupt_controller(&vic);
  sys.core().reset(a.label_address(entry), sys.initial_sp());
  for (int k = 0; k < 10; ++k) {
    (void)sys.core().step();
  }
  Measured m;
  // Single interrupt: raise -> handler's useful work complete. For the
  // classic scheme this includes the software preamble the handler must
  // execute before touching anything.
  const std::uint64_t t0 = sys.core().cycles();
  vic.raise(cpu::ClassicVic::kIrq, t0);
  while (read_mailbox(sys) < 1) {
    (void)sys.core().step();
  }
  m.first_latency = sys.core().cycles() - t0;

  // Back-to-back pair: raise two; the classic scheme returns fully
  // (postamble+context restore) before re-entering.
  vic.raise(cpu::ClassicVic::kIrq, sys.core().cycles());
  const std::uint64_t t1 = sys.core().cycles();
  while (read_mailbox(sys) < 2) {
    (void)sys.core().step();
  }
  // Service one more immediately after return to include the re-entry.
  vic.raise(cpu::ClassicVic::kIrq, sys.core().cycles());
  while (read_mailbox(sys) < 3) {
    (void)sys.core().step();
  }
  m.pair_cycles = sys.core().cycles() - t1;
  return m;
}

Measured run_ivc() {
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label spin = a.bound_label();
  a.ins(ins_rri(Op::add, r6, r6, 1, SetFlags::any));
  a.b(spin);
  a.pool();
  const Label handler = a.bound_label();
  // No preamble: hardware stacked r0-r3/r12/lr/pc/psr already.
  emit_handler_body(a);
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  cpu::SystemBuilder cfg = system_for(Encoding::b32, MemRegime::zero_wait);
  cpu::System sys(cfg);
  sys.load(image);
  cpu::Ivc::Config ic;
  ic.vector_table = kVectors;
  ic.lines = 4;
  cpu::Ivc ivc(ic);
  const std::uint32_t v = a.label_address(handler);
  const std::uint8_t vb[4] = {
      static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16), static_cast<std::uint8_t>(v >> 24)};
  for (unsigned k = 0; k < 4; ++k) {
    ACES_CHECK(sys.bus().load_image(kVectors + 4 * k, vb, 4));
  }
  ivc.enable_line(1, 32);
  ivc.enable_line(2, 48);
  sys.core().set_interrupt_controller(&ivc);
  sys.core().reset(a.label_address(entry), sys.initial_sp());
  for (int k = 0; k < 10; ++k) {
    (void)sys.core().step();
  }
  Measured m;
  const std::uint64_t t0 = sys.core().cycles();
  ivc.raise(1, t0);
  while (read_mailbox(sys) < 1) {
    (void)sys.core().step();
  }
  m.first_latency = sys.core().cycles() - t0;

  // Back-to-back: both pending; the second is tail-chained.
  const std::uint64_t t1 = sys.core().cycles();
  ivc.raise(1, sys.core().cycles());
  ivc.raise(2, sys.core().cycles());
  while (read_mailbox(sys) < 3) {
    (void)sys.core().step();
  }
  m.pair_cycles = sys.core().cycles() - t1;
  m.tail_chains = ivc.stats().tail_chains;
  return m;
}

}  // namespace

int main() {
  std::printf("=== E7 / Figure 4: interrupt response, software vs hardware "
              "pre/postamble ===\n\n");
  const Measured classic = run_classic();
  const Measured ivc = run_ivc();
  std::printf("%-34s %10s %14s\n", "scheme", "service cy",
              "b2b pair cy");
  print_rule();
  std::printf("%-34s %10llu %14llu\n",
              "classic VIC + software save",
              static_cast<unsigned long long>(classic.first_latency),
              static_cast<unsigned long long>(classic.pair_cycles));
  std::printf("%-34s %10llu %14llu   (%llu tail-chain)\n",
              "IVC hardware stacking",
              static_cast<unsigned long long>(ivc.first_latency),
              static_cast<unsigned long long>(ivc.pair_cycles),
              static_cast<unsigned long long>(ivc.tail_chains));
  std::printf("\n'service cy' = interrupt raise until the handler's work is "
              "visible (includes\nthe classic scheme's software preamble); "
              "the pair metric adds the return/\nre-entry path where "
              "tail-chaining removes the unstack+restack (Figure 4).\n");
  return 0;
}
