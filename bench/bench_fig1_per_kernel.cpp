// E2 — Figure 1: "Thumb-2 Performance and Code Size", per-benchmark view.
//
// The figure shows per-benchmark bars of performance and code size for the
// three encodings; this harness prints the same series, normalized to W32.
#include "bench_util.h"

using namespace aces;
using namespace aces::bench;

namespace {

void bar(double pct) {
  const int n = static_cast<int>(pct / 5.0 + 0.5);
  for (int k = 0; k < n && k < 60; ++k) {
    std::printf("#");
  }
  std::printf(" %.0f%%\n", pct);
}

}  // namespace

int main() {
  std::printf("=== E2 / Figure 1: per-kernel performance and code size "
              "(W32 = 100%%) ===\n");
  const auto w = run_suite(isa::Encoding::w32, MemRegime::zero_wait);
  const auto n = run_suite(isa::Encoding::n16, MemRegime::zero_wait);
  const auto b = run_suite(isa::Encoding::b32, MemRegime::zero_wait);

  std::printf("\n-- Performance (higher is better) --\n");
  for (std::size_t k = 0; k < w.size(); ++k) {
    std::printf("%s\n", w[k].name.c_str());
    std::printf("  %-4s ", "N16");
    bar(100.0 * static_cast<double>(w[k].cycles) /
        static_cast<double>(n[k].cycles));
    std::printf("  %-4s ", "B32");
    bar(100.0 * static_cast<double>(w[k].cycles) /
        static_cast<double>(b[k].cycles));
  }

  std::printf("\n-- Code size (lower is better) --\n");
  std::printf("%-16s %8s %8s %6s %8s %6s\n", "kernel", "W32", "N16", "rel",
              "B32", "rel");
  print_rule();
  for (std::size_t k = 0; k < w.size(); ++k) {
    std::printf("%-16s %8u %8u %5.0f%% %8u %5.0f%%\n", w[k].name.c_str(),
                w[k].code_bytes, n[k].code_bytes,
                100.0 * n[k].code_bytes / w[k].code_bytes, b[k].code_bytes,
                100.0 * b[k].code_bytes / w[k].code_bytes);
  }
  return 0;
}
