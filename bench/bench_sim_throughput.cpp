// Host-side microbenchmarks (google-benchmark): throughput of the
// simulation substrate itself — instruction-set simulator MIPS and
// event-queue operations/second. Not a paper experiment; it documents that
// the models are fast enough for the sweeps the other benches run.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sim/event_queue.h"

using namespace aces;
using namespace aces::bench;

namespace {

void BM_IssInstructionThroughput(benchmark::State& state) {
  const workloads::Kernel& kernel = workloads::autoindy_suite()[4];  // crc16
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, isa::Encoding::b32, cpu::kFlashBase);
  cpu::System sys(system_for(isa::Encoding::b32, MemRegime::zero_wait));
  sys.load(prog.image);
  support::Rng256 rng(1);
  const workloads::Instance in = kernel.make_instance(rng, workloads::kDataBase);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const workloads::RunResult r =
        workloads::run_instance(sys, prog.entry_of(kernel.name), in);
    benchmark::DoNotOptimize(r.value);
    instructions += r.instructions;
  }
  state.counters["sim_insns/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_IssInstructionThroughput);

void BM_EventQueueThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int k = 0; k < 1000; ++k) {
      q.schedule_at(k * 10, [&fired] { ++fired; });
    }
    q.run_until(1'000'000);
    benchmark::DoNotOptimize(fired);
    events += 1000;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_LoweringThroughput(benchmark::State& state) {
  const kir::KFunction f = workloads::build_crc16();
  for (auto _ : state) {
    const kir::LoweredProgram prog =
        kir::lower_program({&f}, isa::Encoding::b32, 0);
    benchmark::DoNotOptimize(prog.code_bytes);
  }
}
BENCHMARK(BM_LoweringThroughput);

}  // namespace

BENCHMARK_MAIN();
