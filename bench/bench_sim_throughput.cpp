// Host-side microbenchmarks (google-benchmark): throughput of the
// simulation substrate itself — instruction-set simulator MIPS,
// event-queue operations/second and multi-ECU co-simulation events/second.
// Not a paper experiment; it documents that the models are fast enough for
// the sweeps the other benches run, and records the perf trajectory of the
// co-sim scheduler.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "can/controller.h"
#include "cpu/ivc.h"
#include "net/network.h"
#include "sim/event_queue.h"
#include "sim/simulation.h"

using namespace aces;
using namespace aces::bench;

namespace {

void IssThroughput(benchmark::State& state, std::uint32_t decode_cache_lines,
                   cpu::DispatchTier tier) {
  const workloads::Kernel& kernel = workloads::autoindy_suite()[4];  // crc16
  const kir::KFunction f = kernel.build();
  const kir::LoweredProgram prog =
      kir::lower_program({&f}, isa::Encoding::b32, cpu::kFlashBase);
  cpu::System sys(system_for(isa::Encoding::b32, MemRegime::zero_wait)
                      .decode_cache_lines(decode_cache_lines)
                      .dispatch_tier(tier));
  sys.load(prog.image);
  support::Rng256 rng(1);
  const workloads::Instance in = kernel.make_instance(rng, workloads::kDataBase);
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    const workloads::RunResult r =
        workloads::run_instance(sys, prog.entry_of(kernel.name), in);
    benchmark::DoNotOptimize(r.value);
    instructions += r.instructions;
  }
  state.counters["sim_insns/s"] = benchmark::Counter(
      static_cast<double>(instructions), benchmark::Counter::kIsRate);
  // Guest MIPS: the headline simulation-speed number (identical quantity,
  // scaled for reading against the paper's MHz-class cores).
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) * 1e-6, benchmark::Counter::kIsRate);
  // Speed-tier health counters: how much of the run the tiers actually
  // carried (a formation or invalidation bug shows up here long before it
  // shows up as a throughput regression).
  const cpu::Core::JitStats js = sys.core().jit_stats();
  state.counters["decode_hits"] = static_cast<double>(js.decode_hits);
  state.counters["blocks_formed"] = static_cast<double>(js.blocks_formed);
  state.counters["block_hits"] = static_cast<double>(js.block_hits);
  state.counters["block_instructions"] =
      static_cast<double>(js.block_instructions);
  state.counters["avg_block_length"] = js.avg_block_length;
  if (instructions > 0) {
    state.counters["block_insn_share"] =
        static_cast<double>(js.block_instructions) /
        static_cast<double>(instructions);
  }
}

// The three-tier ladder CI tracks (BENCH_core.json): superblock is the
// default shipping configuration, the per-insn decode-cache tier is the
// previous PR's configuration, and Uncached doubles as the pre-decode-cache
// baseline. The perf smoke gate asserts Superblock >= 2x the per-insn tier.
void BM_IssInstructionThroughputSuperblock(benchmark::State& state) {
  IssThroughput(state, 2048, cpu::DispatchTier::superblock);
}
BENCHMARK(BM_IssInstructionThroughputSuperblock);

void BM_IssInstructionThroughput(benchmark::State& state) {
  IssThroughput(state, 2048, cpu::DispatchTier::per_insn);
}
BENCHMARK(BM_IssInstructionThroughput);

// The pre-decode-cache configuration, kept as a self-measuring baseline so
// the speedup is visible in every BENCH_core.json artifact.
void BM_IssInstructionThroughputUncached(benchmark::State& state) {
  IssThroughput(state, 0, cpu::DispatchTier::per_insn);
}
BENCHMARK(BM_IssInstructionThroughputUncached);

void BM_EventQueueThroughput(benchmark::State& state) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    sim::EventQueue q;
    int fired = 0;
    for (int k = 0; k < 1000; ++k) {
      q.schedule_at(k * 10, [&fired] { ++fired; });
    }
    q.run_until(1'000'000);
    benchmark::DoNotOptimize(fired);
    events += 1000;
  }
  state.counters["events/s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EventQueueThroughput);

// Multi-ECU co-simulation: four guest ECUs (WFI main loop, RX-interrupt
// ISR on the ISS) on one CAN bus, woken by a 1 kHz broadcast. The counter
// is scheduler work per wall second — queue events plus core steps — the
// number that has to stay high for many-ECU scenarios to be sweepable.
void BM_CoSimMultiEcu(benchmark::State& state) {
  using namespace aces::isa;
  using Ctl = can::CanController;
  constexpr unsigned kLine = 1;
  constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
  constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;

  // Shared guest image: sleep, count serviced frames in the ISR.
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  const Image image = a.assemble();

  std::uint64_t cosim_events = 0;
  std::uint64_t frames = 0;
  std::uint64_t slices = 0;
  std::uint64_t idle_windows = 0;
  for (auto _ : state) {
    sim::Simulation sim(50 * sim::kMicrosecond);
    can::CanBus bus(sim.queue(), 500'000);
    constexpr int kEcus = 4;
    std::vector<std::unique_ptr<Ctl>> controllers;
    std::vector<std::unique_ptr<cpu::System>> systems;
    for (int k = 0; k < kEcus; ++k) {
      Ctl::Config cc;
      cc.rx_line = kLine;
      controllers.push_back(std::make_unique<Ctl>(
          bus, "ecu" + std::to_string(k), cc));
      cpu::Ivc::Config ic;
      ic.vector_table = kVectors;
      ic.lines = 4;
      systems.push_back(std::make_unique<cpu::System>(
          cpu::profiles::modern_mcu()
              .name("ecu" + std::to_string(k))
              .clock_hz(8'000'000 * (1u << (k % 2)))  // mixed clock domains
              .flash_size(16 * 1024)
              .device(cpu::kPeriphBase, *controllers.back())
              .ivc(ic)));
      cpu::System& sys = *systems.back();
      sys.load(image);
      sys.set_irq_handler(kLine, a.label_address(isr));
      sys.ivc()->enable_line(kLine, 32);
      controllers.back()->connect_irq(sys.bind(sim));
      ACES_CHECK(sys.bus()
                     .write(cpu::kPeriphBase + Ctl::kCtrl, 4, Ctl::kCtrlRxie,
                            0)
                     .ok());
      sys.core().reset(a.label_address(entry), sys.initial_sp());
    }
    const can::NodeId sensor = bus.attach_node("sensor");
    sim.schedule_every(sim::kMillisecond, [&bus, sensor] {
      can::CanFrame f;
      f.id = 0x100;
      f.dlc = 4;
      bus.send(sensor, f);
    });
    sim.run_until(100 * sim::kMillisecond);

    std::uint64_t events = sim.stats().events_executed;
    for (const std::unique_ptr<cpu::System>& sys : systems) {
      events += sys->binding()->stats().steps;
      frames += sys->bus().read(kCount, 4, mem::Access::read, 0).value;
    }
    // Per-participant scheduler accounting (Simulation::Stats): total
    // round-robin slices and WFI fast-forwarded windows across the fleet —
    // the idle share is what keeps many-ECU scenarios sweepable.
    for (const sim::Simulation::ParticipantStats& ps :
         sim.stats().participants) {
      slices += ps.slices;
      idle_windows += ps.idle_windows;
    }
    benchmark::DoNotOptimize(events);
    cosim_events += events;
  }
  state.counters["cosim_events/s"] = benchmark::Counter(
      static_cast<double>(cosim_events), benchmark::Counter::kIsRate);
  state.counters["frames_serviced"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kAvgIterations);
  state.counters["participant_slices"] = benchmark::Counter(
      static_cast<double>(slices), benchmark::Counter::kAvgIterations);
  state.counters["participant_idle_windows"] = benchmark::Counter(
      static_cast<double>(idle_windows), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CoSimMultiEcu);

// Multi-bus scaling: a NetworkBuilder vehicle — three buses at different
// bit rates, six ISS ECUs sleeping in WFI between compiled RX ISRs, and a
// central gateway fanning a 1 kHz powertrain broadcast out to both other
// segments. The counters (events/s and guest MIPS) are the BENCH_net.json
// figures CI tracks: scheduler throughput and simulated-core throughput of
// a whole routed vehicle, not a single hot loop.
void BM_CoSimGatewayNetwork(benchmark::State& state) {
  using namespace aces::isa;
  using Ctl = can::CanController;
  constexpr unsigned kLine = 1;
  constexpr std::uint32_t kVectors = cpu::kSramBase + 0x40;
  constexpr std::uint32_t kCount = cpu::kSramBase + 0x100;

  // Count-and-ack guest ISR, shared by all six ECUs.
  Assembler a(Encoding::b32, cpu::kFlashBase);
  const Label entry = a.bound_label();
  const Label top = a.bound_label();
  Instruction wfi;
  wfi.op = Op::wfi;
  a.ins(wfi);
  a.b(top);
  a.pool();
  const Label isr = a.bound_label();
  a.load_literal(r0, cpu::kPeriphBase);
  a.load_literal(r3, kCount);
  a.ins(ins_ldst_imm(Op::ldr, r2, r3, 0));
  a.ins(ins_rri(Op::add, r2, r2, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r2, r3, 0));
  a.ins(ins_mov_imm(r12, 1, SetFlags::any));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kRxPop));
  a.ins(ins_ldst_imm(Op::str, r12, r0, Ctl::kIrqAck));
  a.ins(ins_ret());
  a.pool();
  net::GuestProgram prog;
  prog.image = a.assemble();
  prog.entry = a.label_address(entry);
  prog.ivc.vector_table = kVectors;
  prog.handlers.push_back({kLine, a.label_address(isr), 32});

  std::uint64_t cosim_events = 0;
  std::uint64_t instructions = 0;
  std::uint64_t forwarded = 0;
  for (auto _ : state) {
    net::NetworkBuilder nb;
    const net::BusId buses[3] = {nb.bus("pt", 500'000),
                                 nb.bus("body", 125'000),
                                 nb.bus("diag", 250'000)};
    Ctl::Config cc;
    cc.rx_line = kLine;
    std::vector<net::EcuId> ecus;
    for (int k = 0; k < 6; ++k) {
      ecus.push_back(nb.ecu(
          buses[k / 2],
          cpu::profiles::modern_mcu()
              .name("ecu" + std::to_string(k))
              .clock_hz(8'000'000 * (1u << (k % 2)))
              .flash_size(16 * 1024),
          prog, cc));
    }
    net::GatewayConfig gc;
    gc.forwarding_latency = 100 * sim::kMicrosecond;
    const net::GatewayId gw = nb.gateway("central", gc);
    nb.route(gw, {buses[0], buses[1], 0x100, 0x7FF, {}});
    nb.route(gw, {buses[0], buses[2], 0x100, 0x7FF, {}});
    // Arg: worker threads for the sharded epoch fan-out (the topology
    // partitions into one shard per bus). Results are thread-invariant;
    // only the wall clock moves.
    nb.threads(static_cast<unsigned>(state.range(0)));
    net::Network net = nb.build();

    const can::NodeId sensor = net.bus(buses[0]).attach_node("sensor");
    net.shard(buses[0]).schedule_every(sim::kMillisecond, [&net, &buses,
                                                          sensor] {
      can::CanFrame f;
      f.id = 0x100;
      f.dlc = 4;
      net.bus(buses[0]).send(sensor, f);
    });
    net.run_until(100 * sim::kMillisecond);

    std::uint64_t events = net.simulation().stats().events_executed;
    for (const net::EcuId id : ecus) {
      events += net.iss(id).binding().stats().steps;
      instructions += net.iss(id).binding().stats().steps;
    }
    forwarded += net.gateway(gw).stats().frames_delivered;
    benchmark::DoNotOptimize(events);
    cosim_events += events;
  }
  state.counters["cosim_events/s"] = benchmark::Counter(
      static_cast<double>(cosim_events), benchmark::Counter::kIsRate);
  // Simulated guest instructions per wall second across the whole fleet.
  state.counters["guest_mips"] = benchmark::Counter(
      static_cast<double>(instructions) * 1e-6, benchmark::Counter::kIsRate);
  state.counters["frames_forwarded"] = benchmark::Counter(
      static_cast<double>(forwarded), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CoSimGatewayNetwork)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_LoweringThroughput(benchmark::State& state) {
  const kir::KFunction f = workloads::build_crc16();
  for (auto _ : state) {
    const kir::LoweredProgram prog =
        kir::lower_program({&f}, isa::Encoding::b32, 0);
    benchmark::DoNotOptimize(prog.code_bytes);
  }
}
BENCHMARK(BM_LoweringThroughput);

}  // namespace

BENCHMARK_MAIN();
