#include "rtos/kernel.h"

#include <algorithm>

namespace aces::rtos {

using sim::SimTime;

TaskId Kernel::create_task(TaskConfig config) {
  ACES_CHECK_MSG(!started_, "create_task after start()");
  Task t;
  t.config = std::move(config);
  t.dynamic_priority = t.config.priority;
  tasks_.push_back(std::move(t));
  return static_cast<TaskId>(tasks_.size() - 1);
}

ResourceId Kernel::create_resource(std::string name) {
  ACES_CHECK_MSG(!started_, "create_resource after start()");
  Resource r;
  r.name = std::move(name);
  resources_.push_back(std::move(r));
  return static_cast<ResourceId>(resources_.size() - 1);
}

void Kernel::task_uses(TaskId task, ResourceId resource) {
  ACES_CHECK_MSG(!started_, "task_uses after start()");
  resources_[static_cast<std::size_t>(resource)].users.push_back(task);
}

void Kernel::on_complete(TaskId task, std::function<void()> hook) {
  tasks_[static_cast<std::size_t>(task)].on_complete = std::move(hook);
}

void Kernel::set_alarm(TaskId task, SimTime offset, SimTime period) {
  ACES_CHECK_MSG(!started_, "set_alarm after start()");
  ACES_CHECK(period > 0);
  alarms_.push_back(Alarm{task, offset, period});
}

void Kernel::start() {
  ACES_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  // Immediate ceiling protocol: ceiling = max priority of declared users.
  for (Resource& r : resources_) {
    r.ceiling = 0;
    for (const TaskId t : r.users) {
      r.ceiling = std::max(r.ceiling,
                           tasks_[static_cast<std::size_t>(t)].config.priority);
    }
  }
  for (const Alarm& alarm : alarms_) {
    arm_alarm(alarm);
  }
}

void Kernel::arm_alarm(const Alarm& alarm) {
  // Each link of the self-rescheduling chain carries the epoch it was
  // armed under; halt() bumps the epoch, so pre-halt links fire as no-ops
  // and the chain dies without individual cancellation.
  queue_.schedule_at(alarm.offset, [this, alarm, epoch = alarm_epoch_] {
    if (epoch != alarm_epoch_) {
      return;
    }
    activate(alarm.task);
    Alarm next = alarm;
    next.offset = queue_.now() + alarm.period;
    arm_alarm(next);
  });
}

void Kernel::halt() {
  ACES_CHECK_MSG(started_, "halt() before start()");
  if (halted_) {
    return;
  }
  halted_ = true;
  ++alarm_epoch_;
  for (Task& t : tasks_) {
    ++t.token;  // abandon any in-flight completion event
    t.state = State::suspended;
    t.segment = 0;
    t.segment_left = -1;
    t.pending = false;
    t.prio_stack.clear();
    t.dynamic_priority = t.config.priority;
    t.blocked_since = -1;
  }
  for (Resource& r : resources_) {
    r.holder = -1;
  }
  running_ = -1;
}

void Kernel::reboot() {
  ACES_CHECK_MSG(halted_, "reboot() of a kernel that is not halted");
  halted_ = false;
  ever_dispatched_ = false;  // the boot dispatch is not a context switch
  for (const Alarm& alarm : alarms_) {
    Alarm fresh = alarm;
    fresh.offset = queue_.now() + alarm.offset;
    arm_alarm(fresh);
  }
}

void Kernel::activate(TaskId id) {
  if (halted_) {
    return;
  }
  Task& t = tasks_[static_cast<std::size_t>(id)];
  ++t.stats.activations;
  if (t.state != State::suspended) {
    // OSEK basic tasks queue at most one pending activation. Remember the
    // request instant: the queued instance's response (and deadline
    // verdict) runs from the ActivateTask call, not from the moment the
    // previous instance got out of the way.
    if (t.pending) {
      ++t.stats.lost_activations;
    } else {
      t.pending = true;
      t.pending_since = queue_.now();
    }
    return;
  }
  release(id, queue_.now());
}

void Kernel::release(TaskId id, SimTime activated_at) {
  Task& t = tasks_[static_cast<std::size_t>(id)];
  t.state = State::ready;
  t.segment = 0;
  t.segment_left = -1;  // sentinel: segment not started
  t.activated_at = activated_at;
  t.blocked_since = -1;
  schedule();
}

void Kernel::schedule() {
  // Highest dynamic priority among ready+running. The incumbent wins ties:
  // equal priority never preempts, which is precisely what makes the
  // immediate ceiling protocol block would-be lockers of a held resource.
  TaskId best = -1;
  if (running_ >= 0 &&
      tasks_[static_cast<std::size_t>(running_)].state == State::running) {
    best = running_;
  }
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    const Task& t = tasks_[k];
    if (t.state == State::suspended) {
      continue;
    }
    if (best < 0 ||
        t.dynamic_priority >
            tasks_[static_cast<std::size_t>(best)].dynamic_priority) {
      best = static_cast<TaskId>(k);
    }
  }
  if (best < 0 || best == running_) {
    // Ceiling blocking: ready tasks whose base priority exceeds the
    // incumbent's base priority are being held off by a raised ceiling.
    if (best >= 0) {
      for (Task& t : tasks_) {
        if (t.state == State::ready && t.blocked_since < 0 &&
            t.config.priority >
                tasks_[static_cast<std::size_t>(best)].config.priority) {
          t.blocked_since = queue_.now();
        }
      }
    }
    return;
  }

  // Preempt the incumbent.
  if (running_ >= 0) {
    Task& old = tasks_[static_cast<std::size_t>(running_)];
    if (old.state == State::running) {
      const SimTime elapsed = queue_.now() - old.segment_started;
      old.segment_left = std::max<SimTime>(0, old.segment_left - elapsed);
      old.state = State::ready;
      ++old.token;  // invalidate its in-flight completion event
    }
  }

  // Blocking witness: a ready task with higher base priority than the
  // incumbent's base priority was prevented from running by a raised
  // ceiling. Track the interval until it is dispatched.
  Task& chosen = tasks_[static_cast<std::size_t>(best)];
  if (chosen.blocked_since >= 0) {
    worst_blocking_ =
        std::max(worst_blocking_, queue_.now() - chosen.blocked_since);
    chosen.blocked_since = -1;
  }
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    Task& t = tasks_[k];
    if (static_cast<TaskId>(k) != best && t.state == State::ready &&
        t.config.priority > chosen.config.priority &&
        t.blocked_since < 0) {
      t.blocked_since = queue_.now();
    }
  }

  // Every dispatch after the very first is a context switch (preemption or
  // resumption) and pays the switch cost.
  const bool real_switch = ever_dispatched_;
  ever_dispatched_ = true;
  running_ = best;
  chosen.state = State::running;
  if (real_switch) {
    ++context_switches_;
  }
  dispatch(best, real_switch ? switch_cost_ : 0);
}

void Kernel::dispatch(TaskId id, SimTime extra_cost) {
  Task& t = tasks_[static_cast<std::size_t>(id)];
  // Process instantaneous segments (locks/unlocks) until an execute
  // segment or completion.
  while (t.segment < t.config.body.size()) {
    const Segment& seg = t.config.body[t.segment];
    if (seg.kind == Segment::Kind::execute) {
      if (t.segment_left < 0) {
        t.segment_left = seg.duration;
      }
      break;
    }
    Resource& r = resources_[static_cast<std::size_t>(seg.resource)];
    if (seg.kind == Segment::Kind::lock) {
      ACES_CHECK_MSG(r.holder < 0, "OSEK-PCP resource already held");
      r.holder = id;
      t.prio_stack.push_back(t.dynamic_priority);
      t.dynamic_priority = std::max(t.dynamic_priority, r.ceiling);
    } else {
      ACES_CHECK_MSG(r.holder == id, "unlock of resource not held");
      r.holder = -1;
      ACES_CHECK(!t.prio_stack.empty());
      t.dynamic_priority = t.prio_stack.back();
      t.prio_stack.pop_back();
    }
    ++t.segment;
  }
  if (t.segment >= t.config.body.size()) {
    complete(id);
    return;
  }
  t.segment_started = queue_.now();
  // An unlock above may have dropped our ceiling below a waiting task.
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    if (static_cast<TaskId>(k) != id &&
        tasks_[k].state == State::ready &&
        tasks_[k].dynamic_priority > t.dynamic_priority) {
      schedule();
      return;
    }
  }
  const std::uint64_t token = ++t.token;
  queue_.schedule_in(extra_cost + t.segment_left, [this, id, token] {
    Task& task = tasks_[static_cast<std::size_t>(id)];
    if (task.token != token || task.state != State::running) {
      return;  // preempted; a fresh event exists
    }
    task.segment_left = -1;
    ++task.segment;
    dispatch(id, 0);
  });
  // A ceiling change (lock processed above) can demand a reschedule; the
  // immediate-ceiling protocol raises only the running task, so no other
  // task can newly preempt here.
}

void Kernel::complete(TaskId id) {
  Task& t = tasks_[static_cast<std::size_t>(id)];
  ACES_CHECK_MSG(t.prio_stack.empty(),
                 t.config.name + " terminated holding a resource");
  const SimTime response = queue_.now() - t.activated_at;
  ++t.stats.completions;
  t.stats.total_response += response;
  t.stats.worst_response = std::max(t.stats.worst_response, response);
  if (t.config.deadline > 0 && response > t.config.deadline) {
    ++t.stats.deadline_misses;
  }
  t.state = State::suspended;
  t.dynamic_priority = t.config.priority;
  running_ = -1;
  if (t.on_complete) {
    t.on_complete();
  }
  if (t.pending) {
    // Release the queued activation directly: it was already counted when
    // ActivateTask queued it, and its response clock started then.
    t.pending = false;
    release(id, t.pending_since);
    return;
  }
  schedule();
}

}  // namespace aces::rtos
