// OSEK-like fixed-priority kernel model (§3.1: "particular attention has
// been paid to the requirements of OSEK (Version 2.1.1) compliant real-time
// operating systems").
//
// This is a discrete-event *model* of an OSEK kernel, not code running on
// the UC32 ISA: tasks are workload descriptions (sequences of execute /
// lock / unlock segments), scheduled with OSEK semantics — static
// priorities, immediate-ceiling resource protocol (OSEK's OSEK-PCP),
// basic/extended task states, counters+alarms for periodic activation, and
// a configurable context-switch overhead. Response-time measurements from
// this model validate (and are bounded by) the closed-form analysis in
// sched/rta.h, which is the CAN/OSEK schedulability story the paper's
// distributed-vision section rests on.
#ifndef ACES_RTOS_KERNEL_H
#define ACES_RTOS_KERNEL_H

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulation.h"
#include "support/check.h"

namespace aces::rtos {

using TaskId = int;
using ResourceId = int;

// One step of a task body.
struct Segment {
  enum class Kind : std::uint8_t { execute, lock, unlock };
  Kind kind = Kind::execute;
  sim::SimTime duration = 0;  // execute
  ResourceId resource = -1;   // lock/unlock
};

struct TaskConfig {
  std::string name;
  int priority = 0;  // larger = more urgent (OSEK convention)
  std::vector<Segment> body;
  // Implicit deadline = period for periodic tasks (0 = none declared).
  sim::SimTime deadline = 0;
};

struct TaskStats {
  std::uint64_t activations = 0;
  std::uint64_t completions = 0;
  std::uint64_t lost_activations = 0;  // activated while already pending
  std::uint64_t deadline_misses = 0;
  sim::SimTime worst_response = 0;
  sim::SimTime total_response = 0;

  [[nodiscard]] double avg_response() const {
    return completions == 0
               ? 0.0
               : static_cast<double>(total_response) /
                     static_cast<double>(completions);
  }
};

class Kernel {
 public:
  explicit Kernel(sim::EventQueue& queue,
                  sim::SimTime context_switch_cost = 0)
      : queue_(queue), switch_cost_(context_switch_cost) {}
  // Co-simulation form: a kernel model is a pure event-queue participant,
  // so joining a Simulation just means living on its queue — it then
  // interleaves deterministically with bound cycle-accurate Systems.
  explicit Kernel(sim::Simulation& sim, sim::SimTime context_switch_cost = 0)
      : Kernel(sim.queue(), context_switch_cost) {}

  // ----- configuration (before start) -----
  TaskId create_task(TaskConfig config);
  ResourceId create_resource(std::string name);
  // Declares that `task` locks `resource` somewhere in its body (used for
  // the ceiling computation; lock segments are checked against this).
  void task_uses(TaskId task, ResourceId resource);
  // Periodic activation: first at `offset`, then every `period`.
  void set_alarm(TaskId task, sim::SimTime offset, sim::SimTime period);
  // Finalizes ceilings and arms alarms. Call once.
  void start();

  // Completion hook: runs at every completion of `task`, after the
  // statistics update and before any queued activation re-dispatches. The
  // kernel-model analogue of "the task's final action transmits its
  // result" — net::EcuNode wires CAN transmission through this so a
  // workload model publishes frames exactly when its task instance ends.
  void on_complete(TaskId task, std::function<void()> hook);

  // ----- runtime API -----
  void activate(TaskId task);  // OSEK ActivateTask (also from "ISRs")

  // ----- node-fault support (net::ModelEcuNode) -----
  // halt() freezes the kernel where it stands: the running instance is
  // abandoned (its in-flight completion dies against the task token),
  // queued activations are dropped, every task returns to suspended with a
  // clean body position, resources are released, and alarms stop
  // activating (their queued events die against the alarm epoch).
  // ActivateTask on a halted kernel is a silent no-op — a dead ECU's
  // "ISRs" fire into the void. Statistics survive: completions before the
  // halt stay counted.
  // reboot() cold-starts a halted kernel: every alarm restarts relative to
  // now (first activation at now + offset, then its period), and the first
  // dispatch after reboot is not charged as a context switch.
  void halt();
  void reboot();
  [[nodiscard]] bool halted() const { return halted_; }

  [[nodiscard]] const TaskStats& stats(TaskId task) const {
    return tasks_[static_cast<std::size_t>(task)].stats;
  }
  [[nodiscard]] const std::string& task_name(TaskId task) const {
    return tasks_[static_cast<std::size_t>(task)].config.name;
  }
  [[nodiscard]] std::uint64_t context_switches() const {
    return context_switches_;
  }
  [[nodiscard]] int task_count() const {
    return static_cast<int>(tasks_.size());
  }
  // Longest observed blocking of a higher-priority task by a lower one
  // holding a resource (priority-inversion bound witness).
  [[nodiscard]] sim::SimTime worst_blocking() const { return worst_blocking_; }

 private:
  enum class State : std::uint8_t { suspended, ready, running };

  struct Task {
    TaskConfig config;
    TaskStats stats;
    State state = State::suspended;
    std::size_t segment = 0;           // index into body
    sim::SimTime segment_left = -1;    // remaining execute time (-1: fresh)
    sim::SimTime segment_started = 0;  // when the running segment began
    sim::SimTime activated_at = 0;
    bool pending = false;              // queued activation (OSEK: max 1)
    sim::SimTime pending_since = 0;    // when the queued request arrived
    int dynamic_priority = 0;          // base or raised ceiling
    std::vector<int> prio_stack;       // restore values for nested locks
    sim::SimTime blocked_since = -1;   // for blocking stats
    std::uint64_t token = 0;           // invalidates stale completion events
    std::function<void()> on_complete;
  };

  struct Resource {
    std::string name;
    int ceiling = 0;
    TaskId holder = -1;
    std::vector<TaskId> users;
  };

  struct Alarm {
    TaskId task = -1;
    sim::SimTime offset = 0;
    sim::SimTime period = 0;
  };

  void arm_alarm(const Alarm& alarm);
  // Moves a suspended task to ready with its response clock anchored at
  // `activated_at` (the ActivateTask instant, even for queued requests).
  void release(TaskId task, sim::SimTime activated_at);
  void schedule();  // dispatch decision
  // Advances through instantaneous segments, then runs/continues the
  // current execute segment (extra_cost models the context switch).
  void dispatch(TaskId task, sim::SimTime extra_cost);
  void complete(TaskId task);

  sim::EventQueue& queue_;
  sim::SimTime switch_cost_;
  std::vector<Task> tasks_;
  std::vector<Resource> resources_;
  std::vector<Alarm> alarms_;
  TaskId running_ = -1;
  std::uint64_t context_switches_ = 0;
  sim::SimTime worst_blocking_ = 0;
  bool started_ = false;
  bool ever_dispatched_ = false;
  bool halted_ = false;
  std::uint64_t alarm_epoch_ = 0;  // kills pre-halt alarm chains
};

}  // namespace aces::rtos

#endif  // ACES_RTOS_KERNEL_H
