// The AutoIndy-like automotive kernel suite.
//
// EEMBC's AutoIndy/AutoBench suite (which Table 1's "6 available AutoIndy
// benchmarks" refers to) is proprietary, so per the substitution rule we
// provide six kernels with the same domain mix — engine-timing arithmetic,
// map interpolation, bit-level I/O packing, signal filtering, data
// integrity and closed-loop control:
//
//   tooth_to_spark — §3.1.2's motivating function: crank-synchronous spark
//                    delay from RPM and advance angle (multiply + divide).
//   map_interp     — bilinear interpolation in a 16x16 engine map
//                    (sub-word loads, shifts, multiplies).
//   can_pack       — unpack/transform/repack CAN signal fields (§2.1's
//                    bit-manipulation story: bfx/bfi/byte_rev).
//   fir16          — 16-tap FIR over signed 16-bit sensor samples
//                    (mla, signed loads, nested loops).
//   crc16          — CRC-CCITT over a message buffer (shift/xor, tight
//                    inner loop, select).
//   pid_control    — fixed-point PID with output clamping (select-heavy,
//                    read-modify-write state).
//
// Each kernel is one KIR function plus a bit-exact host reference. The
// cross-encoding equivalence tests and every Table 1 / Figure 1 bench run
// on exactly these definitions.
#ifndef ACES_WORKLOADS_AUTOINDY_H
#define ACES_WORKLOADS_AUTOINDY_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "kir/kir.h"
#include "support/rng.h"

namespace aces::workloads {

// One concrete invocation of a kernel: memory image (placed at data_base),
// up to four register arguments, and the host-computed expected result.
struct Instance {
  std::vector<std::uint8_t> memory;
  std::array<std::uint32_t, 4> args{};
  int nargs = 0;
  std::uint32_t expected = 0;
};

struct Kernel {
  std::string name;
  // Builds the KIR function (cached by the caller as needed).
  kir::KFunction (*build)();
  // Generates a random instance; `data_base` is where `memory` will live.
  Instance (*make_instance)(support::Rng256& rng, std::uint32_t data_base);
};

// The six-kernel suite, in a stable order.
[[nodiscard]] const std::vector<Kernel>& autoindy_suite();

// Individual kernels (exposed for focused tests/benches).
[[nodiscard]] kir::KFunction build_tooth_to_spark();
[[nodiscard]] kir::KFunction build_map_interp();
[[nodiscard]] kir::KFunction build_can_pack();
[[nodiscard]] kir::KFunction build_fir16();
[[nodiscard]] kir::KFunction build_crc16();
[[nodiscard]] kir::KFunction build_pid_control();

}  // namespace aces::workloads

#endif  // ACES_WORKLOADS_AUTOINDY_H
