// Helpers to execute kernel instances on a System (shared by tests,
// benches and examples).
#ifndef ACES_WORKLOADS_RUNNER_H
#define ACES_WORKLOADS_RUNNER_H

#include "cpu/system.h"
#include "workloads/autoindy.h"

namespace aces::workloads {

// Where instance memory lives by convention.
inline constexpr std::uint32_t kDataBase = cpu::kSramBase + 0x1000;

struct RunResult {
  std::uint32_t value = 0;
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
};

// Loads the instance's memory at kDataBase, resets the core at `entry` and
// runs to completion. Throws if the program faults or exceeds the budget.
inline RunResult run_instance(cpu::System& sys, std::uint32_t entry,
                              const Instance& instance,
                              std::uint64_t max_insns = 50'000'000,
                              std::uint32_t data_base = kDataBase) {
  if (!instance.memory.empty()) {
    ACES_CHECK_MSG(sys.bus().load_image(data_base, instance.memory.data(),
                                        static_cast<std::uint32_t>(
                                            instance.memory.size())),
                   "instance memory outside the map");
  }
  sys.core().reset(entry, sys.initial_sp());
  for (int k = 0; k < instance.nargs; ++k) {
    sys.core().set_reg(static_cast<isa::Reg>(k),
                       instance.args[static_cast<std::size_t>(k)]);
  }
  const std::uint64_t c0 = sys.core().cycles();
  const std::uint64_t i0 = sys.core().instructions();
  const cpu::HaltReason r = sys.core().run(max_insns);
  ACES_CHECK_MSG(r == cpu::HaltReason::exited,
                 "kernel did not exit cleanly");
  RunResult out;
  out.value = sys.core().reg(isa::r0);
  out.cycles = sys.core().cycles() - c0;
  out.instructions = sys.core().instructions() - i0;
  return out;
}

}  // namespace aces::workloads

#endif  // ACES_WORKLOADS_RUNNER_H
