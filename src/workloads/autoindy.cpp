#include "workloads/autoindy.h"

#include "support/bits.h"
#include "support/check.h"

namespace aces::workloads {

using kir::KFunction;
using kir::KLabel;
using kir::KOp;
using kir::VReg;
using kir::Width;
using isa::Cond;

namespace {

void put_u16(std::vector<std::uint8_t>& m, std::size_t at, std::uint16_t v) {
  m[at] = static_cast<std::uint8_t>(v);
  m[at + 1] = static_cast<std::uint8_t>(v >> 8);
}
void put_u32(std::vector<std::uint8_t>& m, std::size_t at, std::uint32_t v) {
  put_u16(m, at, static_cast<std::uint16_t>(v));
  put_u16(m, at + 2, static_cast<std::uint16_t>(v >> 16));
}
[[nodiscard]] std::uint16_t get_u16(const std::vector<std::uint8_t>& m,
                                    std::size_t at) {
  return static_cast<std::uint16_t>(m[at] | (m[at + 1] << 8));
}

}  // namespace

// ----- tooth_to_spark ---------------------------------------------------------

KFunction build_tooth_to_spark() {
  // f(rpm, advance_deg_x2, dwell_us):
  //   rev_us       = 60'000'000 / rpm
  //   spark_delay  = rev_us * advance_x2 / 720
  //   dwell_start  = max(spark_delay - dwell_us, 0)
  //   return dwell_start + spark_delay
  KFunction f("tooth_to_spark", 3);
  const VReg rpm = 0, adv = 1, dwell = 2;
  const VReg c = f.v(), rev = f.v(), delay = f.v(), start = f.v(),
             zero = f.v();
  f.movi(c, 60'000'000);
  f.arith(KOp::udiv, rev, c, rpm);
  f.arith(KOp::mul, delay, rev, adv);
  f.arith_imm(KOp::udiv, delay, delay, 720);
  f.arith(KOp::sub, start, delay, dwell);
  f.movi(zero, 0);
  f.select(start, Cond::lt, start, zero, zero, start);
  f.arith(KOp::add, start, start, delay);
  f.ret(start);
  return f;
}

namespace {

std::uint32_t ref_tooth_to_spark(std::uint32_t rpm, std::uint32_t adv,
                                 std::uint32_t dwell) {
  const std::uint32_t rev = 60'000'000u / rpm;
  const std::uint32_t delay = (rev * adv) / 720u;
  const std::uint32_t diff = delay - dwell;
  const std::uint32_t start =
      static_cast<std::int32_t>(diff) < 0 ? 0u : diff;
  return start + delay;
}

Instance make_tooth_to_spark(support::Rng256& rng, std::uint32_t) {
  Instance in;
  in.nargs = 3;
  in.args[0] = static_cast<std::uint32_t>(rng.next_in(600, 8000));   // rpm
  in.args[1] = static_cast<std::uint32_t>(rng.next_in(0, 90));       // adv
  in.args[2] = static_cast<std::uint32_t>(rng.next_in(500, 4000));   // dwell
  in.expected = ref_tooth_to_spark(in.args[0], in.args[1], in.args[2]);
  return in;
}

}  // namespace

// ----- map_interp ---------------------------------------------------------------

KFunction build_map_interp() {
  // f(map_base, rpm, load): bilinear lookup in a 16x16 table of u16,
  // rpm/load in 0..4095, row stride 32 bytes.
  KFunction f("map_interp", 3);
  const VReg base = 0, rpm = 1, load = 2;
  const VReg ri = f.v(), rf = f.v(), li = f.v(), lf = f.v();
  f.arith_imm(KOp::shr_u, ri, rpm, 8);
  f.arith_imm(KOp::and_, rf, rpm, 255);
  f.arith_imm(KOp::shr_u, li, load, 8);
  f.arith_imm(KOp::and_, lf, load, 255);
  // Clamp the integer indices to 14 so the +1 neighbors stay in range.
  const VReg c14 = f.v();
  f.movi(c14, 14);
  f.select(ri, Cond::hi, ri, c14, c14, ri);
  f.select(li, Cond::hi, li, c14, c14, li);
  // addr of (ri, li): base + ri*32 + li*2
  const VReg off = f.v(), t = f.v();
  f.arith_imm(KOp::shl, off, ri, 5);
  f.arith_imm(KOp::shl, t, li, 1);
  f.arith(KOp::add, off, off, t);
  const VReg a = f.v(), b = f.v(), cc = f.v(), d = f.v();
  f.loadx(a, base, off, Width::w16);
  f.arith_imm(KOp::add, off, off, 2);
  f.loadx(b, base, off, Width::w16);
  f.arith_imm(KOp::add, off, off, 30);
  f.loadx(cc, base, off, Width::w16);
  f.arith_imm(KOp::add, off, off, 2);
  f.loadx(d, base, off, Width::w16);
  // top = (a*(256-lf) + b*lf) >> 8 ; bot likewise; out blends by rf.
  const VReg inv = f.v(), top = f.v(), bot = f.v();
  f.arith_imm(KOp::rsb, inv, lf, 256);  // inv = 256 - lf
  f.arith(KOp::mul, top, a, inv);
  f.mla(top, b, lf, top);
  f.arith_imm(KOp::shr_u, top, top, 8);
  f.arith(KOp::mul, bot, cc, inv);
  f.mla(bot, d, lf, bot);
  f.arith_imm(KOp::shr_u, bot, bot, 8);
  const VReg invr = f.v(), out = f.v();
  f.arith_imm(KOp::rsb, invr, rf, 256);
  f.arith(KOp::mul, out, top, invr);
  f.mla(out, bot, rf, out);
  f.arith_imm(KOp::shr_u, out, out, 8);
  f.ret(out);
  return f;
}

namespace {

std::uint32_t ref_map_interp(const std::vector<std::uint8_t>& mem,
                             std::uint32_t rpm, std::uint32_t load) {
  std::uint32_t ri = rpm >> 8, rf = rpm & 255, li = load >> 8,
                lf = load & 255;
  ri = ri > 14 ? 14 : ri;
  li = li > 14 ? 14 : li;
  const auto at = [&mem](std::uint32_t r, std::uint32_t c) {
    return static_cast<std::uint32_t>(get_u16(mem, r * 32 + c * 2));
  };
  const std::uint32_t inv = 256 - lf;
  const std::uint32_t top = (at(ri, li) * inv + at(ri, li + 1) * lf) >> 8;
  const std::uint32_t bot =
      (at(ri + 1, li) * inv + at(ri + 1, li + 1) * lf) >> 8;
  return (top * (256 - rf) + bot * rf) >> 8;
}

Instance make_map_interp(support::Rng256& rng, std::uint32_t data_base) {
  Instance in;
  in.memory.resize(16 * 32);
  for (std::size_t k = 0; k < in.memory.size(); k += 2) {
    put_u16(in.memory, k, static_cast<std::uint16_t>(rng.next_below(4096)));
  }
  in.nargs = 3;
  in.args[0] = data_base;
  in.args[1] = static_cast<std::uint32_t>(rng.next_below(4096));
  in.args[2] = static_cast<std::uint32_t>(rng.next_below(4096));
  in.expected = ref_map_interp(in.memory, in.args[1], in.args[2]);
  return in;
}

}  // namespace

// ----- can_pack ------------------------------------------------------------------

KFunction build_can_pack() {
  // f(frame_base): unpack six signal fields from an 8-byte frame image,
  // transform them, repack into the next 8 bytes, return a mixed checksum.
  KFunction f("can_pack", 1);
  const VReg base = 0;
  const VReg w0 = f.v(), w1 = f.v();
  f.load(w0, base, 0, Width::w32);
  f.load(w1, base, 4, Width::w32);
  const VReg rpm = f.v(), temp = f.v(), flags = f.v(), pedal = f.v(),
             gear = f.v(), crc = f.v();
  f.bfx(rpm, w0, 0, 13);
  f.bfx(temp, w0, 13, 9, /*sign=*/true);
  f.bfx(flags, w0, 22, 6);
  f.bfx(pedal, w1, 0, 10);
  f.bfx(gear, w1, 10, 3);
  f.bfx(crc, w1, 16, 16);
  // Transform: rpm += 100 (saturate 13 bits), temp += 5, pedal >>= 1,
  // flags rotated mirror.
  f.arith_imm(KOp::add, rpm, rpm, 100);
  const VReg cmax = f.v();
  f.movi(cmax, 8191);
  f.select(rpm, Cond::hi, rpm, cmax, cmax, rpm);
  f.arith_imm(KOp::add, temp, temp, 5);
  f.arith_imm(KOp::shr_u, pedal, pedal, 1);
  const VReg fl2 = f.v();
  f.unary(KOp::bit_rev, fl2, flags);
  f.arith_imm(KOp::shr_u, fl2, fl2, 26);  // 6-bit mirror
  // Repack.
  const VReg o0 = f.v(), o1 = f.v();
  f.movi(o0, 0);
  f.bfi(o0, rpm, 0, 13);
  f.bfi(o0, temp, 13, 9);
  f.bfi(o0, fl2, 22, 6);
  f.movi(o1, 0);
  f.bfi(o1, pedal, 0, 10);
  f.bfi(o1, gear, 10, 3);
  f.bfi(o1, crc, 16, 16);
  f.store(o0, base, 8, Width::w32);
  f.store(o1, base, 12, Width::w32);
  // Checksum mixes byte order (network-endian view).
  const VReg rev = f.v();
  f.unary(KOp::byte_rev, rev, o0);
  f.arith(KOp::eor, rev, rev, o1);
  f.ret(rev);
  return f;
}

namespace {

std::uint32_t ref_can_pack(std::vector<std::uint8_t>& mem) {
  const std::uint32_t w0 = mem[0] | (mem[1] << 8) | (mem[2] << 16) |
                           (static_cast<std::uint32_t>(mem[3]) << 24);
  const std::uint32_t w1 = mem[4] | (mem[5] << 8) | (mem[6] << 16) |
                           (static_cast<std::uint32_t>(mem[7]) << 24);
  std::uint32_t rpm = support::bits(w0, 0, 13);
  std::uint32_t temp = static_cast<std::uint32_t>(
      support::sign_extend(support::bits(w0, 13, 9), 9));
  const std::uint32_t flags = support::bits(w0, 22, 6);
  std::uint32_t pedal = support::bits(w1, 0, 10);
  const std::uint32_t gear = support::bits(w1, 10, 3);
  const std::uint32_t crc = support::bits(w1, 16, 16);
  rpm += 100;
  rpm = rpm > 8191 ? 8191 : rpm;
  temp += 5;
  pedal >>= 1;
  const std::uint32_t fl2 = support::reverse_bits(flags) >> 26;
  std::uint32_t o0 = 0, o1 = 0;
  o0 = support::insert_bits(o0, rpm, 0, 13);
  o0 = support::insert_bits(o0, temp, 13, 9);
  o0 = support::insert_bits(o0, fl2, 22, 6);
  o1 = support::insert_bits(o1, pedal, 0, 10);
  o1 = support::insert_bits(o1, gear, 10, 3);
  o1 = support::insert_bits(o1, crc, 16, 16);
  put_u32(mem, 8, o0);
  put_u32(mem, 12, o1);
  return support::reverse_bytes(o0) ^ o1;
}

Instance make_can_pack(support::Rng256& rng, std::uint32_t data_base) {
  Instance in;
  in.memory.resize(16);
  for (std::size_t k = 0; k < 8; ++k) {
    in.memory[k] = static_cast<std::uint8_t>(rng.next_below(256));
  }
  in.nargs = 1;
  in.args[0] = data_base;
  std::vector<std::uint8_t> scratch = in.memory;
  in.expected = ref_can_pack(scratch);
  return in;
}

}  // namespace

// ----- fir16 ---------------------------------------------------------------------

KFunction build_fir16() {
  // f(samples, coeffs, n): for each of n output positions, a 16-tap dot
  // product of signed 16-bit samples and coefficients; accumulates the
  // scaled outputs.
  KFunction f("fir16", 3);
  const VReg samples = 0, coeffs = 1, n = 2;
  const VReg acc = f.v(), j = f.v();
  f.movi(acc, 0);
  f.movi(j, 0);
  const KLabel outer = f.make_label();
  f.bind(outer);
  const VReg sum = f.v(), k = f.v(), soff = f.v();
  f.movi(sum, 0);
  f.movi(k, 0);
  const KLabel inner = f.make_label();
  f.bind(inner);
  const VReg s = f.v(), c = f.v();
  f.arith(KOp::add, soff, j, k);
  f.loadx(s, samples, soff, Width::w16, /*sign=*/true);
  f.loadx(c, coeffs, k, Width::w16, /*sign=*/true);
  f.mla(sum, s, c, sum);
  f.arith_imm(KOp::add, k, k, 2);
  f.brcc_imm(Cond::ne, k, 32, inner);  // 16 taps x 2 bytes
  f.arith_imm(KOp::shr_s, sum, sum, 6);
  f.arith(KOp::add, acc, acc, sum);
  f.arith_imm(KOp::add, j, j, 2);
  f.brcc(Cond::ne, j, n, outer);
  f.ret(acc);
  return f;
}

namespace {

std::uint32_t ref_fir16(const std::vector<std::uint8_t>& mem,
                        std::uint32_t coeff_off, std::uint32_t n) {
  const auto s16 = [&mem](std::size_t at) {
    return static_cast<std::int32_t>(
        static_cast<std::int16_t>(get_u16(mem, at)));
  };
  std::uint32_t acc = 0;
  for (std::uint32_t j = 0; j < n; j += 2) {
    std::int32_t sum = 0;
    for (std::uint32_t k = 0; k < 32; k += 2) {
      sum += s16(j + k) * s16(coeff_off + k);
    }
    acc += static_cast<std::uint32_t>(sum >> 6);
  }
  return acc;
}

Instance make_fir16(support::Rng256& rng, std::uint32_t data_base) {
  Instance in;
  constexpr std::uint32_t kOutputs = 24;  // bytes of output positions
  const std::uint32_t sample_bytes = kOutputs + 32;
  in.memory.resize(sample_bytes + 32);
  for (std::size_t k = 0; k < in.memory.size(); k += 2) {
    put_u16(in.memory, k,
            static_cast<std::uint16_t>(rng.next_in(-2000, 2000)));
  }
  in.nargs = 3;
  in.args[0] = data_base;
  in.args[1] = data_base + sample_bytes;
  in.args[2] = kOutputs;
  in.expected = ref_fir16(in.memory, sample_bytes, kOutputs);
  return in;
}

}  // namespace

// ----- crc16 ---------------------------------------------------------------------

KFunction build_crc16() {
  // f(data, len): CRC-CCITT (0x1021), init 0xFFFF.
  KFunction f("crc16", 2);
  const VReg data = 0, len = 1;
  const VReg crc = f.v(), i = f.v(), byte = f.v(), bits = f.v();
  const VReg poly = f.v(), mask16 = f.v();
  f.movi(crc, 0xFFFF);
  f.movi(poly, 0x1021);
  f.movi(mask16, 0xFFFF);
  f.movi(i, 0);
  const KLabel outer = f.make_label();
  f.bind(outer);
  f.loadx(byte, data, i, Width::w8);
  f.arith_imm(KOp::shl, byte, byte, 8);
  f.arith(KOp::eor, crc, crc, byte);
  f.movi(bits, 8);
  const KLabel inner = f.make_label();
  f.bind(inner);
  const VReg msb = f.v(), shifted = f.v(), xored = f.v();
  f.arith_imm(KOp::shr_u, msb, crc, 15);
  f.arith_imm(KOp::and_, msb, msb, 1);
  f.arith_imm(KOp::shl, shifted, crc, 1);
  f.arith(KOp::and_, shifted, shifted, mask16);
  f.arith(KOp::eor, xored, shifted, poly);
  f.select_imm(crc, Cond::ne, msb, 0, xored, shifted);
  f.arith_imm(KOp::sub, bits, bits, 1);
  f.brcc_imm(Cond::ne, bits, 0, inner);
  f.arith_imm(KOp::add, i, i, 1);
  f.brcc(Cond::ne, i, len, outer);
  f.ret(crc);
  return f;
}

namespace {

std::uint32_t ref_crc16(const std::vector<std::uint8_t>& mem,
                        std::uint32_t len) {
  std::uint32_t crc = 0xFFFF;
  for (std::uint32_t i = 0; i < len; ++i) {
    crc ^= static_cast<std::uint32_t>(mem[i]) << 8;
    for (int b = 0; b < 8; ++b) {
      const std::uint32_t msb = (crc >> 15) & 1u;
      crc = (crc << 1) & 0xFFFFu;
      if (msb != 0) {
        crc ^= 0x1021u;
      }
    }
  }
  return crc;
}

Instance make_crc16(support::Rng256& rng, std::uint32_t data_base) {
  Instance in;
  in.memory.resize(32);
  for (auto& b : in.memory) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  in.nargs = 2;
  in.args[0] = data_base;
  in.args[1] = static_cast<std::uint32_t>(in.memory.size());
  in.expected = ref_crc16(in.memory, in.args[1]);
  return in;
}

}  // namespace

// ----- pid_control ---------------------------------------------------------------

KFunction build_pid_control() {
  // f(state, setpoint, measured):
  //   state: { s16 kp, s16 ki, s16 kd, s16 pad, s32 integ, s32 prev_err }
  //   err   = setpoint - measured
  //   integ = clamp(integ + err, ±(1<<20))
  //   deriv = err - prev_err
  //   out   = clamp((kp*err + ki*integ + kd*deriv) >> 8, 0..10000)
  //   state.integ = integ; state.prev_err = err; return out
  KFunction f("pid_control", 3);
  const VReg state = 0, sp = 1, meas = 2;
  const VReg err = f.v(), integ = f.v(), prev = f.v(), deriv = f.v();
  f.arith(KOp::sub, err, sp, meas);
  f.load(integ, state, 8, Width::w32);
  f.arith(KOp::add, integ, integ, err);
  const VReg lim = f.v(), nlim = f.v();
  f.movi(lim, 1 << 20);
  f.arith_imm(KOp::rsb, nlim, lim, 0);
  f.select(integ, Cond::gt, integ, lim, lim, integ);
  f.select(integ, Cond::lt, integ, nlim, nlim, integ);
  f.load(prev, state, 12, Width::w32);
  f.arith(KOp::sub, deriv, err, prev);
  const VReg kp = f.v(), ki = f.v(), kd = f.v(), out = f.v();
  f.load(kp, state, 0, Width::w16, /*sign=*/true);
  f.load(ki, state, 2, Width::w16, /*sign=*/true);
  f.load(kd, state, 4, Width::w16, /*sign=*/true);
  f.arith(KOp::mul, out, kp, err);
  f.mla(out, ki, integ, out);
  f.mla(out, kd, deriv, out);
  f.arith_imm(KOp::shr_s, out, out, 8);
  const VReg zero = f.v(), omax = f.v();
  f.movi(zero, 0);
  f.movi(omax, 10000);
  f.select(out, Cond::lt, out, zero, zero, out);
  f.select(out, Cond::gt, out, omax, omax, out);
  f.store(integ, state, 8, Width::w32);
  f.store(err, state, 12, Width::w32);
  f.ret(out);
  return f;
}

namespace {

std::uint32_t ref_pid_control(std::vector<std::uint8_t>& mem,
                              std::int32_t sp, std::int32_t meas) {
  const auto s16 = [&mem](std::size_t at) {
    return static_cast<std::int32_t>(
        static_cast<std::int16_t>(get_u16(mem, at)));
  };
  const auto s32 = [&mem](std::size_t at) {
    return static_cast<std::int32_t>(
        mem[at] | (mem[at + 1] << 8) | (mem[at + 2] << 16) |
        (static_cast<std::uint32_t>(mem[at + 3]) << 24));
  };
  const std::int32_t err = sp - meas;
  std::int32_t integ = s32(8) + err;
  const std::int32_t lim = 1 << 20;
  integ = integ > lim ? lim : (integ < -lim ? -lim : integ);
  const std::int32_t deriv = err - s32(12);
  std::int32_t out =
      (s16(0) * err + s16(2) * integ + s16(4) * deriv) >> 8;
  out = out < 0 ? 0 : (out > 10000 ? 10000 : out);
  put_u32(mem, 8, static_cast<std::uint32_t>(integ));
  put_u32(mem, 12, static_cast<std::uint32_t>(err));
  return static_cast<std::uint32_t>(out);
}

Instance make_pid_control(support::Rng256& rng, std::uint32_t data_base) {
  Instance in;
  in.memory.resize(16);
  put_u16(in.memory, 0, static_cast<std::uint16_t>(rng.next_in(50, 900)));
  put_u16(in.memory, 2, static_cast<std::uint16_t>(rng.next_in(1, 80)));
  put_u16(in.memory, 4, static_cast<std::uint16_t>(rng.next_in(0, 300)));
  put_u16(in.memory, 6, 0);
  put_u32(in.memory, 8,
          static_cast<std::uint32_t>(rng.next_in(-100000, 100000)));
  put_u32(in.memory, 12, static_cast<std::uint32_t>(rng.next_in(-500, 500)));
  in.nargs = 3;
  in.args[0] = data_base;
  in.args[1] = static_cast<std::uint32_t>(rng.next_in(0, 4000));
  in.args[2] = static_cast<std::uint32_t>(rng.next_in(0, 4000));
  // The reference mutates the state block; keep the instance's memory
  // pristine so the simulator sees the same inputs.
  std::vector<std::uint8_t> scratch = in.memory;
  in.expected = ref_pid_control(scratch,
                                static_cast<std::int32_t>(in.args[1]),
                                static_cast<std::int32_t>(in.args[2]));
  return in;
}

}  // namespace

// ----- suite -----------------------------------------------------------------------

const std::vector<Kernel>& autoindy_suite() {
  static const std::vector<Kernel> suite = {
      {"tooth_to_spark", &build_tooth_to_spark, &make_tooth_to_spark},
      {"map_interp", &build_map_interp, &make_map_interp},
      {"can_pack", &build_can_pack, &make_can_pack},
      {"fir16", &build_fir16, &make_fir16},
      {"crc16", &build_crc16, &make_crc16},
      {"pid_control", &build_pid_control, &make_pid_control},
  };
  return suite;
}

}  // namespace aces::workloads
