// campaign::ScenarioSpec — a declarative Monte-Carlo campaign over vehicle
// networks.
//
// One net::Network run is a single virtual vehicle; a campaign is the
// production shape of the same experiment: a topology template swept over
// declared axes (bit-error rates, bus load levels, gateway queue depths,
// task-set mutations), expanded into seeded scenario variants that each
// build an isolated Network, run to a horizon, and get judged against
// declarative assertions — per-routed-path latencies versus their
// sched::path_rta bounds, gateway overflow drops, bus-off events, deadline
// misses.
//
// The contract that makes the batch a product is exact replay: a variant is
// fully determined by the (spec, seed) pair. Seeds are derived from the
// master seed with support::derive_stream (collision-free by construction),
// the topology callback must be a pure function of the Variant, and every
// stochastic element (the per-bus fault campaigns) draws from per-variant
// Pcg32 streams — so CampaignRunner::replay reproduces any flagged variant
// bit-identically, alone, on one thread.
#ifndef ACES_CAMPAIGN_SPEC_H
#define ACES_CAMPAIGN_SPEC_H

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/network.h"
#include "sched/can_rta.h"

namespace aces::campaign {

// One swept parameter: a name and the discrete values it takes. A spec's
// axes expand as a cartesian product in declaration order (the first axis
// varies slowest), times `replicates` seeds per grid point.
struct SweepAxis {
  std::string name;
  std::vector<double> values;
};

// One fully resolved scenario: the grid point plus its derived seed. What
// the topology template, fault plans and bound callbacks see.
struct Variant {
  std::uint32_t index = 0;      // position in expansion order
  std::uint64_t seed = 0;       // support::derive_stream(master_seed, index)
  std::uint32_t replicate = 0;  // replicate number at this grid point
  // Axis values in axis declaration order.
  std::vector<std::pair<std::string, double>> params;

  // The resolved value of `axis` (checked: unknown axes are spec bugs).
  [[nodiscard]] double param(std::string_view axis) const;
  [[nodiscard]] sim::SimTime param_ns(std::string_view axis) const {
    return static_cast<sim::SimTime>(param(axis));
  }
  // Tolerant lookup for optional axes: `fallback` when the variant's spec
  // does not sweep `axis` (so a topology template with an optional feature
  // axis also serves specs that never declare it).
  [[nodiscard]] double param_or(std::string_view axis,
                                double fallback) const;
};

// Declarative per-bus bit-error campaign. The runner installs a
// can::make_seeded_error_model on the bus with a stream derived from the
// variant seed, and feeds the same T_error into every analyzed path hop
// tagged with this bus (sched::PathHop::bus), keeping simulation and
// analysis on one hypothesis.
struct FaultPlan {
  net::BusId bus = -1;
  // T_error in ns: fixed, or resolved from an axis per variant (the axis
  // wins when named). 0 disables the plan for that variant — the idiom for
  // sweeping from fault-free to aggressive campaigns on one axis.
  std::string period_axis;
  sim::SimTime period = 0;
  double probability = 1.0;
};

// Declarative node-lifecycle fault (net::NodeFault) against one declared
// ECU: crash, hang, reset-with-reboot, or babbling-idiot flood, injected
// at a fixed instant or one resolved from an axis per variant. Combined
// with a supervisor installed in ScenarioSpec::configure, this is how a
// campaign measures recovery-time distributions and path availability
// under node death.
struct NodeFaultPlan {
  net::EcuId ecu = -1;
  net::NodeFault::Kind kind = net::NodeFault::Kind::crash;
  // Injection instant in ns: fixed, or resolved from an axis per variant
  // (the axis wins when named). <= 0 disables the plan for that variant —
  // the idiom for sweeping fault-free to faulted on one axis.
  std::string at_axis;
  sim::SimTime at = 0;
  sim::SimTime reboot_delay = 0;  // reset kind
  can::CanFrame babble_frame;     // babble kind
  sim::SimTime babble_period = 0;
};

// Declarative dead-bus window: the whole CAN segment goes silent
// (partition / severed harness) for `duration` starting at `at`, both
// fixed or axis-resolved. <= 0 on either disables the plan.
struct BusFaultPlan {
  net::BusId bus = -1;
  std::string at_axis;
  sim::SimTime at = 0;
  std::string duration_axis;
  sim::SimTime duration = 0;
};

// One routed path to measure and bound. The runner attaches a probe node
// on `dst_bus` and records the queue-to-delivery latency (delivery instant
// minus CanFrame::timestamp, the stamp gateways preserve) of every `dst_id`
// frame into a per-variant distribution.
struct PathSpec {
  std::string name;
  net::BusId dst_bus = -1;
  std::uint32_t dst_id = 0;
  // Analytic bound: the sched::path_rta hops for this path, built from the
  // same variant parameters the topology used (sched::make_hop is the
  // intended constructor; tag hops with their bus id so fault plans attach).
  // Leave empty to measure without a bound.
  std::function<std::vector<sched::PathHop>(const Variant&)> hops;
  // Nominal production period of this path's traffic. When > 0 the runner
  // reports per-variant availability = delivered / expected, with
  // expected = horizon / expected_period — the fraction of the path's
  // traffic that survived the variant's faults.
  sim::SimTime expected_period = 0;
};

// Declarative pass/fail judgment per variant. A variant violating any
// enabled assertion is flagged in the report with machine-readable reasons
// and can be replayed from its (spec, seed) pair.
struct Assertions {
  // Measured path latency must stay within the path_rta bound whenever the
  // analysis says schedulable (skipped for variants that drove a node to
  // bus-off, whose recovery gap the analysis does not model); a variant
  // whose bound itself is unschedulable is flagged as such.
  bool path_bounds = true;
  bool no_deadline_misses = true;
  std::uint64_t max_overflow_drops = 0;  // gateway drops tolerated
  std::uint64_t max_bus_off = 0;         // bus-off events tolerated
  // Minimum per-path availability (paths with expected_period > 0 only);
  // 0 disables the check. A crashed producer with no mitigation drives
  // availability toward the fault instant's fraction of the horizon —
  // this is the assertion that catches it.
  double min_availability = 0.0;
};

struct ScenarioSpec {
  std::string name;
  std::uint64_t master_seed = 1;
  sim::SimTime horizon = sim::kSecond;

  std::vector<SweepAxis> axes;
  std::uint32_t replicates = 1;

  // The topology template: a pure function of the variant (same variant ->
  // same NetworkBuilder), so replay is exact. NetworkBuilder is a value —
  // returning it materializes nothing.
  std::function<net::NetworkBuilder(const Variant&)> topology;

  std::vector<FaultPlan> faults;
  std::vector<NodeFaultPlan> node_faults;
  std::vector<BusFaultPlan> bus_faults;
  std::vector<PathSpec> paths;
  Assertions assertions;

  // Optional extra per-variant setup on the built network (extra probes,
  // ad-hoc traffic), run after fault models and path probes are installed
  // and before the clock starts. Must be deterministic in the variant.
  std::function<void(net::Network&, const Variant&)> configure;

  // ----- expansion --------------------------------------------------------
  [[nodiscard]] std::size_t variant_count() const;
  // The index-th variant (checked), with its derived seed and resolved
  // parameters.
  [[nodiscard]] Variant variant(std::uint32_t index) const;
  [[nodiscard]] std::vector<Variant> expand() const;
};

}  // namespace aces::campaign

#endif  // ACES_CAMPAIGN_SPEC_H
