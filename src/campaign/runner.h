// campaign::CampaignRunner — fan a ScenarioSpec's variants across a worker
// pool and aggregate distributions against analytic bounds.
//
// Each worker owns one variant at a time and builds it a private
// net::Network (own sim::Simulation, buses, nodes — no shared mutable
// state anywhere in the library), so variants are embarrassingly parallel
// and every run is bit-identical to the same variant run alone: the
// determinism contract tests/campaign_test.cpp pins is that a 1-worker and
// an N-worker campaign produce byte-identical deterministic reports.
// Results are stored and aggregated by variant index, never by completion
// order.
//
// The aggregate is a machine-readable JSON report (the BENCH_campaign.json
// CI artifact): per-routed-path latency distributions (min / mean / p99 /
// max plus a fixed-bin histogram) checked against sched::path_rta, and
// RTA-violation / overflow / bus-off / deadline-miss counters, with every
// violating variant listed as its replayable (index, seed) pair.
#ifndef ACES_CAMPAIGN_RUNNER_H
#define ACES_CAMPAIGN_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.h"

namespace aces::campaign {

// Fixed-bin latency histogram; the last bin is the overflow bucket. Bin
// geometry is uniform across variants, so per-variant histograms merge by
// bin-wise addition in index order — what keeps the aggregate independent
// of worker count.
struct LatencyHistogram {
  sim::SimTime bin_width = 0;
  std::vector<std::uint64_t> bins;

  void add(sim::SimTime v);
  void merge(const LatencyHistogram& other);
  // Smallest upper bin edge covering fraction `p` of the samples (the
  // overflow bucket reports as the histogram ceiling). 0 when empty.
  [[nodiscard]] sim::SimTime percentile(double p) const;
};

// Measured distribution + analytic bound for one path in one variant.
struct PathResult {
  std::uint64_t frames = 0;
  sim::SimTime min_latency = 0;
  sim::SimTime max_latency = 0;
  sim::SimTime total_latency = 0;
  LatencyHistogram hist;
  sim::SimTime bound = 0;  // operative path_rta bound (0: no hops given)
  bool bound_schedulable = false;
  bool bound_exceeded = false;  // measured max > schedulable bound
  // delivered / expected when PathSpec::expected_period > 0, else -1.
  double availability = -1.0;
};

struct VariantResult {
  std::uint32_t index = 0;
  std::uint64_t seed = 0;
  std::vector<std::pair<std::string, double>> params;
  std::vector<PathResult> paths;  // one per ScenarioSpec::paths entry
  std::uint64_t bit_errors = 0;
  std::uint64_t bus_off_events = 0;
  std::uint64_t overflow_drops = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t events = 0;  // simulation events executed
  // Alive-supervision outcome, summed over every supervisor the variant's
  // configure hook installed (net::SupervisorNode).
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t mitigations = 0;
  std::uint64_t recoveries = 0;
  // Every measured fault -> recovery latency, in occurrence order.
  std::vector<sim::SimTime> recovery_times;
  // The per-variant watchdog (Config::watchdog_events /
  // watchdog_wall_seconds) stopped this variant before the horizon: a hung
  // variant fails loudly instead of wedging the worker pool.
  bool watchdog_tripped = false;
  // FNV-1a over every counter above (and per-path fields): the replay
  // identity — equal fingerprints mean bit-identical runs.
  std::uint64_t fingerprint = 0;
  std::vector<std::string> violations;  // empty = clean variant

  [[nodiscard]] bool violating() const { return !violations.empty(); }
};

struct CampaignResult {
  std::string spec_name;
  std::uint64_t master_seed = 0;
  sim::SimTime horizon = 0;
  std::vector<SweepAxis> axes;
  std::vector<VariantResult> variants;  // by variant index

  struct PathAggregate {
    std::string name;
    std::uint64_t frames = 0;
    sim::SimTime min_latency = 0;
    sim::SimTime max_latency = 0;
    double mean_latency = 0.0;
    sim::SimTime p99_latency = 0;
    LatencyHistogram hist;
    std::uint64_t bound_exceeded_variants = 0;
    std::uint64_t unschedulable_variants = 0;
    // Campaign-wide availability: total delivered / total expected across
    // variants (-1 when the path declares no expected_period), and the
    // worst single variant.
    double availability = -1.0;
    double min_availability = -1.0;
  };
  std::vector<PathAggregate> paths;

  // Campaign-wide counters.
  std::uint64_t violating_variants = 0;
  std::uint64_t rta_violations = 0;      // bound_exceeded across variants
  std::uint64_t unschedulable = 0;       // variants with an unschedulable path
  std::uint64_t overflow_drops = 0;
  std::uint64_t bus_off_events = 0;
  std::uint64_t deadline_misses = 0;
  std::uint64_t bit_errors = 0;
  // Supervision roll-up: heartbeat deadline misses, mitigation actions
  // fired, completed recoveries, and the fault -> recovery distribution.
  std::uint64_t heartbeat_misses = 0;
  std::uint64_t mitigations = 0;
  std::uint64_t recoveries = 0;
  sim::SimTime recovery_p99 = 0;
  sim::SimTime recovery_max = 0;
  LatencyHistogram recovery_hist;
  std::uint64_t watchdog_timeouts = 0;  // variants the watchdog stopped

  // Timing (excluded from the deterministic report).
  unsigned workers = 0;
  double wall_seconds = 0.0;
  double variants_per_second = 0.0;

  [[nodiscard]] const VariantResult* first_violating() const;

  // The machine-readable report. With `with_timing` false the output is a
  // pure function of the variant results — byte-identical across worker
  // counts (the determinism test compares exactly this form); the bench
  // artifact includes the timing section. Violating variants are listed up
  // to `max_listed_violations`, with the true total alongside so the cap
  // is never silent.
  [[nodiscard]] std::string to_json(bool with_timing = true,
                                    std::size_t max_listed_violations =
                                        64) const;
};

class CampaignRunner {
 public:
  struct Config {
    unsigned workers = 0;  // 0 = std::thread::hardware_concurrency()
    // Total thread budget shared by the whole campaign: the pool is sized
    // so that workers x variant_threads never exceeds it. A sharded
    // topology spends variant_threads threads per in-flight variant
    // (net::NetworkBuilder::threads is overridden with this value), so
    // the budget keeps campaign fan-out and per-variant shard fan-out
    // from oversubscribing the machine together. 0 sizes the *default*
    // pool from hardware concurrency without clamping an explicit
    // workers request; a non-zero budget clamps both. Neither knob ever
    // changes results — the deterministic report is byte-identical
    // across every budget choice.
    unsigned thread_budget = 0;
    unsigned variant_threads = 1;  // shard threads per variant (>= 1)
    // Histogram geometry shared by every variant (merging requires it).
    unsigned hist_bins = 64;
    sim::SimTime hist_max = 50 * sim::kMillisecond;
    // Per-variant watchdog, 0 = off. A variant executing more than
    // `watchdog_events` simulation events (deterministic) or running
    // longer than `watchdog_wall_seconds` of wall clock (the backstop for
    // a genuinely wedged variant; trips are timing-dependent, so keep the
    // event limit as the primary guard in deterministic campaigns) is
    // stopped and reported as watchdog_tripped instead of hanging its
    // worker forever.
    std::uint64_t watchdog_events = 0;
    double watchdog_wall_seconds = 0.0;
  };

  CampaignRunner() = default;
  explicit CampaignRunner(Config config) : config_(config) {}

  // Expands the spec and runs every variant across the worker pool.
  [[nodiscard]] CampaignResult run(const ScenarioSpec& spec) const;

  // Single-run replay entry point: re-executes one variant alone on the
  // calling thread. The seed must match the spec's derivation for `index`
  // (checked) — the (spec, seed) pair is the reproduction contract, so a
  // stale seed from a different spec revision fails loudly instead of
  // replaying the wrong experiment.
  [[nodiscard]] VariantResult replay(const ScenarioSpec& spec,
                                     std::uint32_t index,
                                     std::uint64_t seed) const;

 private:
  [[nodiscard]] VariantResult run_variant(const ScenarioSpec& spec,
                                          const Variant& v) const;

  Config config_;
};

}  // namespace aces::campaign

#endif  // ACES_CAMPAIGN_RUNNER_H
