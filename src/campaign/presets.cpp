#include "campaign/presets.h"

#include <utility>

#include "support/check.h"

namespace aces::campaign::presets {

using sim::kMicrosecond;
using sim::kMillisecond;
using sim::SimTime;

namespace {

// Buses are declared in this order by the template, so the ids are fixed.
constexpr net::BusId kPt = 0;
constexpr net::BusId kBody = 1;
constexpr net::BusId kDiag = 2;

constexpr std::uint32_t kWheelId = 0x050;          // abs -> pt, routed to body
constexpr std::uint32_t kDiagReqPtId = 0x0F0;      // 0x700 remapped onto pt
constexpr std::uint32_t kEngStatusId = 0x110;      // engine -> pt
constexpr std::uint32_t kLockCmdId = 0x0E0;        // bcm -> body
constexpr std::uint32_t kDoorStatusId = 0x1A0;     // doors -> body
constexpr std::uint32_t kEngStatusDiagId = 0x610;  // 0x110 remapped
constexpr std::uint32_t kDoorStatusDiagId = 0x660; // 0x1A0 remapped
constexpr std::uint32_t kDiagReqId = 0x700;        // tester -> diag

constexpr SimTime kGwLatency = 200 * kMicrosecond;

// Background publisher periods scale with the load axis: load_pct 100 is
// the baseline, 160 fires everything 1.6x as often.
[[nodiscard]] SimTime scaled(SimTime base, const Variant& v) {
  const auto pct = static_cast<SimTime>(v.param("load_pct"));
  return base * 100 / pct;
}

net::ModelTask publisher(const char* task, int prio, SimTime exec,
                         SimTime period, std::uint32_t id, unsigned dlc) {
  net::ModelTask t;
  t.name = task;
  t.priority = prio;
  t.exec = exec;
  t.period = period;
  can::CanFrame f;
  f.id = id;
  f.dlc = dlc;
  t.tx = f;
  return t;
}

net::ModelTask consumer(const char* task, int prio, SimTime exec,
                        std::uint32_t rx_id) {
  net::ModelTask t;
  t.name = task;
  t.priority = prio;
  t.exec = exec;
  t.activate_on_rx = rx_id;
  return t;
}

// A consumer that publishes its answer at completion: the kernel-model
// stand-in for the engine's RX-ISR-then-reply firmware.
net::ModelTask responder(const char* task, int prio, SimTime exec,
                         std::uint32_t rx_id, std::uint32_t tx_id,
                         unsigned dlc) {
  net::ModelTask t = consumer(task, prio, exec, rx_id);
  can::CanFrame f;
  f.id = tx_id;
  f.dlc = dlc;
  t.tx = f;
  return t;
}

// FD backbone axis: 0 = the legacy classic powertrain bus, 1 = the same
// bus CAN FD capable (2 Mbit/s data phase), every powertrain publisher
// promoted to FD framing and the gateway translating formats at the
// domain boundaries. Optional (param_or): specs that never sweep it get
// the classic topology.
constexpr std::uint32_t kFdDataRate = 2'000'000;

[[nodiscard]] bool fd_backbone(const Variant& v) {
  return v.param_or("fd_backbone", 0.0) != 0.0;
}

// Marks every transmitting task's frame as CAN FD (kernel-model tasks
// carry their frame template in ModelTask::tx).
std::vector<net::ModelTask> as_fd(std::vector<net::ModelTask> tasks) {
  for (net::ModelTask& t : tasks) {
    if (t.tx) {
      t.tx->fd = true;
    }
  }
  return tasks;
}

net::NetworkBuilder build_vehicle(const Variant& v) {
  const auto depth = static_cast<unsigned>(v.param("gw_depth"));
  const bool fd = fd_backbone(v);
  net::NetworkBuilder nb;
  const net::BusId pt = nb.bus("powertrain", 500'000, fd ? kFdDataRate : 0);
  const net::BusId body = nb.bus("body", 125'000);
  const net::BusId diag = nb.bus("diag", 250'000);
  // Powertrain ECUs publish FD frames on the FD variant; classic otherwise.
  const auto pt_tasks = [fd](std::vector<net::ModelTask> tasks) {
    return fd ? as_fd(std::move(tasks)) : tasks;
  };

  // --- powertrain: 8 model ECUs ----------------------------------------
  nb.ecu(pt, "abs", pt_tasks({publisher("wheel_acq", 8, 200 * kMicrosecond,
                                        5 * kMillisecond, kWheelId, 8)}));
  nb.ecu(pt, "engine",
         pt_tasks({responder("diag_svc", 7, 300 * kMicrosecond, kDiagReqPtId,
                             kEngStatusId, 4)}));
  nb.ecu(pt, "trans",
         pt_tasks({publisher("shift_ctl", 7, 200 * kMicrosecond,
                             scaled(10 * kMillisecond, v), 0x060, 8)}));
  nb.ecu(pt, "esc",
         pt_tasks({publisher("stability", 7, 200 * kMicrosecond,
                             scaled(10 * kMillisecond, v), 0x070, 6)}));
  nb.ecu(pt, "inj",
         pt_tasks({publisher("injection", 6, 200 * kMicrosecond,
                             scaled(10 * kMillisecond, v), 0x130, 4)}));
  nb.ecu(pt, "turbo",
         pt_tasks({publisher("boost", 5, 200 * kMicrosecond,
                             scaled(20 * kMillisecond, v), 0x150, 4)}));
  nb.ecu(pt, "egr",
         pt_tasks({publisher("egr_ctl", 5, 200 * kMicrosecond,
                             scaled(20 * kMillisecond, v), 0x170, 2)}));
  nb.ecu(pt, "oil",
         pt_tasks({publisher("oil_mon", 4, 500 * kMicrosecond,
                             scaled(50 * kMillisecond, v), 0x190, 2)}));

  // --- body: 9 model ECUs ----------------------------------------------
  nb.ecu(body, "bcm", {publisher("lock_ctl", 8, 200 * kMicrosecond,
                                 scaled(20 * kMillisecond, v), kLockCmdId,
                                 2)});
  nb.ecu(body, "doors", {publisher("door_stat", 7, 200 * kMicrosecond,
                                   20 * kMillisecond, kDoorStatusId, 4)});
  nb.ecu(body, "lights", {publisher("light_ctl", 6, 200 * kMicrosecond,
                                    scaled(20 * kMillisecond, v), 0x210, 4)});
  nb.ecu(body, "wipers", {publisher("wipe_ctl", 5, 200 * kMicrosecond,
                                    scaled(50 * kMillisecond, v), 0x220, 2)});
  nb.ecu(body, "hvac", {publisher("hvac_ctl", 5, 200 * kMicrosecond,
                                  scaled(100 * kMillisecond, v), 0x230, 6)});
  nb.ecu(body, "windows", {publisher("win_ctl", 4, 200 * kMicrosecond,
                                     scaled(50 * kMillisecond, v), 0x240,
                                     2)});
  nb.ecu(body, "mirrors", {publisher("mirror", 3, 200 * kMicrosecond,
                                     scaled(100 * kMillisecond, v), 0x250,
                                     2)});
  nb.ecu(body, "park", {publisher("park_aid", 3, 200 * kMicrosecond,
                                  scaled(100 * kMillisecond, v), 0x260, 2)});
  nb.ecu(body, "cluster",
         {consumer("speed_disp", 6, 300 * kMicrosecond, kWheelId)});

  // --- diag: 6 model ECUs ----------------------------------------------
  nb.ecu(diag, "tester", {publisher("poll_ecu", 7, 200 * kMicrosecond,
                                    50 * kMillisecond, kDiagReqId, 2)});
  nb.ecu(diag, "logger",
         {consumer("log_status", 6, 300 * kMicrosecond, kEngStatusDiagId)});
  nb.ecu(diag, "obd", {publisher("obd_bcast", 5, 200 * kMicrosecond,
                                 scaled(100 * kMillisecond, v), 0x620, 8)});
  nb.ecu(diag, "dtc", {publisher("dtc_scan", 4, 500 * kMicrosecond,
                                 scaled(200 * kMillisecond, v), 0x630, 4)});
  nb.ecu(diag, "gwmon", {publisher("gw_mon", 3, 200 * kMicrosecond,
                                   scaled(100 * kMillisecond, v), 0x640, 2)});
  nb.ecu(diag, "fwsvc", {publisher("fw_svc", 2, 500 * kMicrosecond,
                                   scaled(500 * kMillisecond, v), 0x650, 8)});

  // --- the central gateway ---------------------------------------------
  net::GatewayConfig gc;
  gc.forwarding_latency = kGwLatency;
  gc.queue_depth = depth;
  const net::GatewayId gw = nb.gateway("central", gc);
  // On the FD variant the gateway translates formats at the boundary:
  // diag traffic promotes onto the FD backbone, backbone traffic demotes
  // back to classic framing for the legacy buses.
  net::Route to_pt{diag, pt, kDiagReqId, 0x7FF, kDiagReqPtId};
  net::Route eng_to_diag{pt, diag, kEngStatusId, 0x7FF, kEngStatusDiagId};
  net::Route wheel_to_body{pt, body, kWheelId, 0x7FF, {}};
  if (fd) {
    to_pt.fd = true;
    eng_to_diag.fd = false;
    wheel_to_body.fd = false;
  }
  nb.route(gw, to_pt);
  nb.route(gw, eng_to_diag);
  nb.route(gw, wheel_to_body);
  nb.route(gw, {body, diag, kDoorStatusId, 0x7FF, kDoorStatusDiagId});
  return nb;
}

// ----- analysis message sets -------------------------------------------------
//
// The same periods the topology used, with routed interferers carrying the
// conservative inherited jitter (source period + gateway latency); the
// analyzed message itself carries zero — path_rta adds the true
// accumulated upstream bound to it per hop.

using sched::CanMessage;

[[nodiscard]] SimTime inherited(std::uint32_t analyzed, std::uint32_t id,
                                SimTime source_period) {
  return analyzed == id ? 0 : source_period + kGwLatency;
}

std::vector<CanMessage> pt_set(const Variant& v, std::uint32_t analyzed) {
  std::vector<CanMessage> set = {
      {"wheel", kWheelId, 8, 5 * kMillisecond, 0, 0},
      {"trans", 0x060, 8, scaled(10 * kMillisecond, v), 0, 0},
      {"esc", 0x070, 6, scaled(10 * kMillisecond, v), 0, 0},
      {"diag_req", kDiagReqPtId, 2, 50 * kMillisecond, 0,
       inherited(analyzed, kDiagReqPtId, 50 * kMillisecond)},
      {"eng_status", kEngStatusId, 4, 50 * kMillisecond, 0, 0},
      {"inj", 0x130, 4, scaled(10 * kMillisecond, v), 0, 0},
      {"turbo", 0x150, 4, scaled(20 * kMillisecond, v), 0, 0},
      {"egr", 0x170, 2, scaled(20 * kMillisecond, v), 0, 0},
      {"oil", 0x190, 2, scaled(50 * kMillisecond, v), 0, 0},
  };
  if (fd_backbone(v)) {  // the simulated backbone publishes FD frames
    for (CanMessage& m : set) {
      m.fd = true;
    }
  }
  return set;
}

// Powertrain hop data rate matching the topology's FD axis.
[[nodiscard]] std::uint32_t pt_data_rate(const Variant& v) {
  return fd_backbone(v) ? kFdDataRate : 0;
}

std::vector<CanMessage> body_set(const Variant& v, std::uint32_t analyzed) {
  return {
      {"wheel", kWheelId, 8, 5 * kMillisecond, 0,
       inherited(analyzed, kWheelId, 5 * kMillisecond)},
      {"lock_cmd", kLockCmdId, 2, scaled(20 * kMillisecond, v), 0, 0},
      {"door_stat", kDoorStatusId, 4, 20 * kMillisecond, 0, 0},
      {"lights", 0x210, 4, scaled(20 * kMillisecond, v), 0, 0},
      {"wipers", 0x220, 2, scaled(50 * kMillisecond, v), 0, 0},
      {"hvac", 0x230, 6, scaled(100 * kMillisecond, v), 0, 0},
      {"windows", 0x240, 2, scaled(50 * kMillisecond, v), 0, 0},
      {"mirrors", 0x250, 2, scaled(100 * kMillisecond, v), 0, 0},
      {"park", 0x260, 2, scaled(100 * kMillisecond, v), 0, 0},
  };
}

std::vector<CanMessage> diag_set(const Variant& v, std::uint32_t analyzed) {
  return {
      {"eng_status", kEngStatusDiagId, 4, 50 * kMillisecond, 0,
       inherited(analyzed, kEngStatusDiagId, 50 * kMillisecond)},
      {"obd", 0x620, 8, scaled(100 * kMillisecond, v), 0, 0},
      {"dtc", 0x630, 4, scaled(200 * kMillisecond, v), 0, 0},
      {"gw_mon", 0x640, 2, scaled(100 * kMillisecond, v), 0, 0},
      {"door_stat", kDoorStatusDiagId, 4, 20 * kMillisecond, 0,
       inherited(analyzed, kDoorStatusDiagId, 20 * kMillisecond)},
      {"fw_svc", 0x650, 8, scaled(500 * kMillisecond, v), 0, 0},
      {"diag_req", kDiagReqId, 2, 50 * kMillisecond, 0, 0},
  };
}

}  // namespace

ScenarioSpec vehicle_spec(SimTime horizon) {
  ScenarioSpec spec;
  spec.name = "vehicle_sweep";
  spec.master_seed = 2025;
  spec.horizon = horizon;
  spec.axes = {
      {"error_period_ns",
       {0.0, 50.0e6, 10.0e6, 2.0e6}},  // T_error: off, 50ms, 10ms, 2ms
      {"gw_depth", {8.0, 1.0}},
      {"load_pct", {100.0, 130.0, 160.0}},
      // 1 = CAN FD backbone: the powertrain bus gains a 2 Mbit/s data
      // phase, its publishers send FD frames and the gateway translates
      // formats at the domain boundaries. The analysis side follows (FD
      // worst-case lengths + dual-rate hop), so every variant still judges
      // measured <= bound on the same hypothesis.
      {"fd_backbone", {0.0, 1.0}},
  };
  spec.topology = build_vehicle;
  // One seeded campaign per bus, all driven by the same T_error axis but
  // each on its own per-variant Pcg32 stream.
  for (const net::BusId bus : {kPt, kBody, kDiag}) {
    FaultPlan plan;
    plan.bus = bus;
    plan.period_axis = "error_period_ns";
    plan.probability = 0.35;
    spec.faults.push_back(plan);
  }
  // The four routed paths, with their holistic bounds. Hops are tagged
  // with their bus id so the runner attaches the variant's fault
  // hypothesis to exactly the buses it corrupts.
  spec.paths.push_back(
      {"diag_req", kPt, kDiagReqPtId, [](const Variant& v) {
         return std::vector<sched::PathHop>{
             sched::make_hop(diag_set(v, kDiagReqId), kDiagReqId, 250'000, 0,
                             {}, kDiag),
             sched::make_hop(pt_set(v, kDiagReqPtId), kDiagReqPtId, 500'000,
                             kGwLatency, {}, kPt, pt_data_rate(v))};
       }});
  spec.paths.push_back(
      {"wheel", kBody, kWheelId, [](const Variant& v) {
         return std::vector<sched::PathHop>{
             sched::make_hop(pt_set(v, kWheelId), kWheelId, 500'000, 0, {},
                             kPt, pt_data_rate(v)),
             sched::make_hop(body_set(v, kWheelId), kWheelId, 125'000,
                             kGwLatency, {}, kBody)};
       }});
  spec.paths.push_back(
      {"eng_status", kDiag, kEngStatusDiagId, [](const Variant& v) {
         return std::vector<sched::PathHop>{
             sched::make_hop(pt_set(v, kEngStatusId), kEngStatusId, 500'000,
                             0, {}, kPt, pt_data_rate(v)),
             sched::make_hop(diag_set(v, kEngStatusDiagId), kEngStatusDiagId,
                             250'000, kGwLatency, {}, kDiag)};
       }});
  spec.paths.push_back(
      {"door_stat", kDiag, kDoorStatusDiagId, [](const Variant& v) {
         return std::vector<sched::PathHop>{
             sched::make_hop(body_set(v, kDoorStatusId), kDoorStatusId,
                             125'000, 0, {}, kBody),
             sched::make_hop(diag_set(v, kDoorStatusDiagId),
                             kDoorStatusDiagId, 250'000, kGwLatency, {},
                             kDiag)};
       }});
  return spec;
}

}  // namespace aces::campaign::presets
