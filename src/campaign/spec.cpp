#include "campaign/spec.h"

#include "support/check.h"
#include "support/splitmix.h"

namespace aces::campaign {

double Variant::param(std::string_view axis) const {
  for (const auto& [name, value] : params) {
    if (name == axis) {
      return value;
    }
  }
  ACES_CHECK_MSG(false, "variant has no axis named '" + std::string(axis) +
                            "' (check ScenarioSpec::axes)");
  return 0.0;  // unreachable
}

double Variant::param_or(std::string_view axis, double fallback) const {
  for (const auto& [name, value] : params) {
    if (name == axis) {
      return value;
    }
  }
  return fallback;
}

std::size_t ScenarioSpec::variant_count() const {
  std::size_t n = replicates;
  for (const SweepAxis& axis : axes) {
    ACES_CHECK_MSG(!axis.values.empty(),
                   "sweep axis '" + axis.name + "' has no values");
    n *= axis.values.size();
  }
  return n;
}

Variant ScenarioSpec::variant(std::uint32_t index) const {
  ACES_CHECK_MSG(index < variant_count(), "variant index out of range");
  ACES_CHECK(replicates > 0);
  Variant v;
  v.index = index;
  v.seed = support::derive_stream(master_seed, index);
  // Mixed-radix decode, last digit fastest: replicate first, then axes in
  // reverse declaration order — so the first axis varies slowest.
  std::size_t rest = index;
  v.replicate = static_cast<std::uint32_t>(rest % replicates);
  rest /= replicates;
  v.params.resize(axes.size());
  for (std::size_t k = axes.size(); k-- > 0;) {
    const SweepAxis& axis = axes[k];
    v.params[k] = {axis.name, axis.values[rest % axis.values.size()]};
    rest /= axis.values.size();
  }
  return v;
}

std::vector<Variant> ScenarioSpec::expand() const {
  const std::size_t n = variant_count();
  std::vector<Variant> out;
  out.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.push_back(variant(static_cast<std::uint32_t>(k)));
  }
  return out;
}

}  // namespace aces::campaign
