#include "campaign/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <thread>

#include "can/bit_error.h"
#include "support/check.h"

namespace aces::campaign {

using sim::SimTime;

// ----- histogram -------------------------------------------------------------

void LatencyHistogram::add(SimTime v) {
  if (bins.empty()) {
    return;
  }
  const auto regular = bins.size() - 1;  // last bin = overflow
  std::size_t k = regular;
  if (bin_width > 0 && v >= 0) {
    const auto idx = static_cast<std::uint64_t>(v) /
                     static_cast<std::uint64_t>(bin_width);
    k = std::min<std::size_t>(static_cast<std::size_t>(idx), regular);
  }
  ++bins[k];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  ACES_CHECK_MSG(bin_width == other.bin_width && bins.size() ==
                     other.bins.size(),
                 "cannot merge histograms with different geometry");
  for (std::size_t k = 0; k < bins.size(); ++k) {
    bins[k] += other.bins[k];
  }
}

SimTime LatencyHistogram::percentile(double p) const {
  std::uint64_t total = 0;
  for (const std::uint64_t b : bins) {
    total += b;
  }
  if (total == 0) {
    return 0;
  }
  const double clamped = std::min(1.0, std::max(0.0, p));
  const auto target = static_cast<std::uint64_t>(
      std::max(1.0, clamped * static_cast<double>(total)));
  std::uint64_t seen = 0;
  for (std::size_t k = 0; k < bins.size(); ++k) {
    seen += bins[k];
    if (seen >= target) {
      // Upper bin edge; the overflow bucket reports the histogram ceiling
      // (the aggregate carries the exact max alongside).
      const std::size_t regular = bins.size() - 1;
      return bin_width * static_cast<SimTime>(std::min(k + 1, regular));
    }
  }
  return bin_width * static_cast<SimTime>(bins.size() - 1);
}

// ----- fingerprint -----------------------------------------------------------

namespace {

struct Fnv1a {
  std::uint64_t h = 0xCBF2'9CE4'8422'2325ull;
  void add(std::uint64_t x) {
    for (int k = 0; k < 8; ++k) {
      h ^= (x >> (8 * k)) & 0xFF;
      h *= 0x0000'0100'0000'01B3ull;
    }
  }
};

std::uint64_t fingerprint_of(const VariantResult& r) {
  Fnv1a f;
  f.add(r.index);
  f.add(r.seed);
  f.add(r.events);
  f.add(r.bit_errors);
  f.add(r.bus_off_events);
  f.add(r.overflow_drops);
  f.add(r.deadline_misses);
  f.add(r.heartbeat_misses);
  f.add(r.mitigations);
  f.add(r.recoveries);
  for (const sim::SimTime t : r.recovery_times) {
    f.add(static_cast<std::uint64_t>(t));
  }
  f.add(r.watchdog_tripped ? 1 : 0);
  for (const PathResult& p : r.paths) {
    f.add(p.frames);
    f.add(static_cast<std::uint64_t>(p.min_latency));
    f.add(static_cast<std::uint64_t>(p.max_latency));
    f.add(static_cast<std::uint64_t>(p.total_latency));
    f.add(static_cast<std::uint64_t>(p.bound));
    f.add(p.bound_schedulable ? 1 : 0);
  }
  f.add(r.violations.size());
  return f.h;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string fmt_i64(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string json_params(
    const std::vector<std::pair<std::string, double>>& params) {
  std::string out = "{";
  for (std::size_t k = 0; k < params.size(); ++k) {
    out += std::string(k == 0 ? "" : ", ") + "\"" + params[k].first +
           "\": " + fmt_double(params[k].second);
  }
  return out + "}";
}

}  // namespace

// ----- one variant -----------------------------------------------------------

VariantResult CampaignRunner::run_variant(const ScenarioSpec& spec,
                                          const Variant& v) const {
  VariantResult out;
  out.index = v.index;
  out.seed = v.seed;
  out.params = v.params;
  out.paths.resize(spec.paths.size());
  for (PathResult& p : out.paths) {
    p.hist.bin_width =
        std::max<SimTime>(1, config_.hist_max /
                                 std::max(1u, config_.hist_bins));
    p.hist.bins.assign(config_.hist_bins + 1, 0);
  }

  try {
    net::NetworkBuilder nb = spec.topology(v);
    net::Network net = nb.build();
    // The campaign's budget owns thread placement: each variant runs its
    // shard fan-out on exactly variant_threads threads, whatever the
    // topology requested (thread count never changes results).
    net.simulation().set_threads(std::max(1u, config_.variant_threads));

    // Per-bus fault campaigns: one Pcg32 stream per plan, derived from the
    // variant seed, and the matching analysis hypothesis keyed by bus tag.
    std::map<int, sched::CanErrorModel> hop_errors;
    for (std::size_t k = 0; k < spec.faults.size(); ++k) {
      const FaultPlan& plan = spec.faults[k];
      ACES_CHECK_MSG(plan.bus >= 0 && static_cast<std::size_t>(plan.bus) <
                         net.bus_count(),
                     "fault plan references an unknown bus");
      const SimTime period = plan.period_axis.empty()
                                 ? plan.period
                                 : v.param_ns(plan.period_axis);
      if (period <= 0 || plan.probability <= 0.0) {
        continue;
      }
      can::SeededErrorCampaign cfg;
      cfg.min_interarrival = period;
      cfg.probability = plan.probability;
      cfg.seed = v.seed;
      cfg.stream = k + 1;  // sub-stream per plan, disjoint from plan 0
      can::CanBus& bus = net.bus(plan.bus);
      bus.set_bit_error_model(can::make_seeded_error_model(bus, cfg));
      hop_errors[plan.bus] = sched::CanErrorModel{period};
    }

    // Node-lifecycle faults: crash / hang / reset / babble against declared
    // ECUs, at fixed or axis-resolved instants (<= 0 disables).
    for (const NodeFaultPlan& plan : spec.node_faults) {
      ACES_CHECK_MSG(plan.ecu >= 0 && static_cast<std::size_t>(plan.ecu) <
                         net.ecu_count(),
                     "node fault plan references an unknown ecu");
      const SimTime at =
          plan.at_axis.empty() ? plan.at : v.param_ns(plan.at_axis);
      if (at <= 0) {
        continue;
      }
      net::NodeFault fault;
      fault.kind = plan.kind;
      fault.at = at;
      fault.reboot_delay = plan.reboot_delay;
      fault.babble_frame = plan.babble_frame;
      fault.babble_period = plan.babble_period;
      net.ecu(plan.ecu).inject(fault);
    }

    // Dead-bus windows: the whole segment silent for a duration.
    for (const BusFaultPlan& plan : spec.bus_faults) {
      ACES_CHECK_MSG(plan.bus >= 0 && static_cast<std::size_t>(plan.bus) <
                         net.bus_count(),
                     "bus fault plan references an unknown bus");
      const SimTime at =
          plan.at_axis.empty() ? plan.at : v.param_ns(plan.at_axis);
      const SimTime duration = plan.duration_axis.empty()
                                   ? plan.duration
                                   : v.param_ns(plan.duration_axis);
      if (at <= 0 || duration <= 0) {
        continue;
      }
      net.bus(plan.bus).schedule_bus_dead(at, duration);
    }

    // Path probes: measure queue-to-delivery of every destination frame.
    for (std::size_t k = 0; k < spec.paths.size(); ++k) {
      const PathSpec& path = spec.paths[k];
      ACES_CHECK_MSG(path.dst_bus >= 0 && static_cast<std::size_t>(
                         path.dst_bus) < net.bus_count(),
                     "path '" + path.name + "' references an unknown bus");
      can::CanBus& bus = net.bus(path.dst_bus);
      const can::NodeId probe = bus.attach_node("probe:" + path.name);
      PathResult* res = &out.paths[k];
      bus.subscribe(probe, [res, id = path.dst_id](const can::CanFrame& f,
                                                   SimTime at) {
        if (f.id != id) {
          return;
        }
        const SimTime lat = at - f.timestamp;
        if (res->frames == 0 || lat < res->min_latency) {
          res->min_latency = lat;
        }
        res->max_latency = std::max(res->max_latency, lat);
        res->total_latency += lat;
        ++res->frames;
        res->hist.add(lat);
      });
    }

    if (spec.configure) {
      spec.configure(net, v);
    }

    // Per-variant watchdog: the event limit is deterministic (a pure
    // function of the executed-event count); the wall-clock limit is the
    // last-resort backstop for a wedged variant.
    if (config_.watchdog_events > 0 || config_.watchdog_wall_seconds > 0.0) {
      const auto started = std::chrono::steady_clock::now();
      net.simulation().set_watchdog(
          [this, started](std::uint64_t events) {
            if (config_.watchdog_events > 0 &&
                events >= config_.watchdog_events) {
              return true;
            }
            if (config_.watchdog_wall_seconds > 0.0) {
              const double elapsed = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - started).count();
              if (elapsed >= config_.watchdog_wall_seconds) {
                return true;
              }
            }
            return false;
          });
    }

    net.run_until(spec.horizon);
    out.watchdog_tripped = net.simulation().watchdog_tripped();

    // Counters. FlexRay segments carry no CAN fault model — skipped.
    for (std::size_t b = 0; b < net.bus_count(); ++b) {
      if (!net.is_can(static_cast<net::BusId>(b))) {
        continue;
      }
      const auto& fs = net.bus(static_cast<net::BusId>(b)).fault_stats();
      out.bit_errors += fs.bit_errors;
      out.bus_off_events += fs.bus_off_events;
    }
    for (std::size_t g = 0; g < net.gateway_count(); ++g) {
      out.overflow_drops +=
          net.gateway(static_cast<net::GatewayId>(g)).stats().frames_dropped;
    }
    for (std::size_t e = 0; e < net.ecu_count(); ++e) {
      if (rtos::Kernel* k = net.ecu(static_cast<net::EcuId>(e)).kernel()) {
        for (int t = 0; t < k->task_count(); ++t) {
          out.deadline_misses += k->stats(t).deadline_misses;
        }
      }
    }
    out.events = net.simulation().stats().events_executed;

    // Supervision outcome: every supervisor the configure hook installed.
    for (std::size_t s = 0; s < net.supervisor_count(); ++s) {
      net::SupervisorNode& sup = net.supervisor(s);
      for (std::size_t m = 0; m < sup.monitor_count(); ++m) {
        const auto& st = sup.stats(static_cast<int>(m));
        out.heartbeat_misses += st.misses;
        out.mitigations += st.mitigations;
        out.recoveries += st.recoveries;
      }
      out.recovery_times.insert(out.recovery_times.end(),
                                sup.recovery_samples().begin(),
                                sup.recovery_samples().end());
    }

    // Bounds and judgment.
    for (std::size_t k = 0; k < spec.paths.size(); ++k) {
      const PathSpec& path = spec.paths[k];
      PathResult& res = out.paths[k];
      if (path.expected_period > 0) {
        const auto expected = static_cast<double>(
            spec.horizon / path.expected_period);
        res.availability = expected > 0.0
                               ? static_cast<double>(res.frames) / expected
                               : 0.0;
        if (spec.assertions.min_availability > 0.0 &&
            res.availability < spec.assertions.min_availability) {
          out.violations.push_back("path '" + path.name +
                                   "': availability " +
                                   fmt_double(res.availability) + " < " +
                                   fmt_double(
                                       spec.assertions.min_availability));
        }
      }
      if (!path.hops) {
        continue;
      }
      std::vector<sched::PathHop> hops = path.hops(v);
      // Attach this variant's fault hypotheses to hops tagged with a bus
      // under a fault plan (explicit per-hop errors win).
      for (sched::PathHop& h : hops) {
        if (h.errors.min_interarrival == 0 && h.bus >= 0) {
          const auto it = hop_errors.find(h.bus);
          if (it != hop_errors.end()) {
            h.errors = it->second;
          }
        }
      }
      const sched::PathRtaResult bound = sched::path_rta(hops);
      res.bound = bound.response;
      res.bound_schedulable = bound.schedulable;
      if (!spec.assertions.path_bounds) {
        continue;
      }
      if (!bound.schedulable) {
        out.violations.push_back("path '" + path.name +
                                 "': rta_unschedulable");
      } else if (out.bus_off_events == 0 && res.max_latency > bound.response) {
        res.bound_exceeded = true;
        out.violations.push_back("path '" + path.name + "': measured " +
                                 fmt_i64(res.max_latency) + "ns > bound " +
                                 fmt_i64(bound.response) + "ns");
      }
    }
    if (out.overflow_drops > spec.assertions.max_overflow_drops) {
      out.violations.push_back("gateway overflow drops: " +
                               fmt_u64(out.overflow_drops));
    }
    if (out.bus_off_events > spec.assertions.max_bus_off) {
      out.violations.push_back("bus-off events: " +
                               fmt_u64(out.bus_off_events));
    }
    if (spec.assertions.no_deadline_misses && out.deadline_misses > 0) {
      out.violations.push_back("deadline misses: " +
                               fmt_u64(out.deadline_misses));
    }
    if (out.watchdog_tripped) {
      out.violations.push_back("watchdog: variant stopped after " +
                               fmt_u64(out.events) + " events");
    }
  } catch (const std::exception& e) {
    // A throwing variant is a spec bug; flag it instead of tearing down
    // the whole batch (workers must never leak exceptions).
    out.violations.push_back(std::string("exception: ") + e.what());
  }

  out.fingerprint = fingerprint_of(out);
  return out;
}

// ----- the batch -------------------------------------------------------------

CampaignResult CampaignRunner::run(const ScenarioSpec& spec) const {
  ACES_CHECK_MSG(static_cast<bool>(spec.topology),
                 "ScenarioSpec::topology is required");
  const std::vector<Variant> variants = spec.expand();
  ACES_CHECK_MSG(!variants.empty(), "campaign expands to zero variants");

  CampaignResult out;
  out.spec_name = spec.name;
  out.master_seed = spec.master_seed;
  out.horizon = spec.horizon;
  out.axes = spec.axes;
  out.variants.resize(variants.size());

  // Worker-pool sizing under the total thread budget: each in-flight
  // variant spends variant_threads threads on its shard fan-out, so the
  // pool is workers x variant_threads wide. An explicit workers request
  // is honored (clamped only by an explicit budget); the default pool is
  // sized so the product stays within the budget (or the machine).
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const unsigned per_variant = std::max(1u, config_.variant_threads);
  unsigned workers = config_.workers;
  if (workers == 0) {
    const unsigned budget =
        config_.thread_budget != 0 ? config_.thread_budget : hw;
    workers = std::min(hw, std::max(1u, budget / per_variant));
  } else if (config_.thread_budget != 0) {
    workers =
        std::min(workers, std::max(1u, config_.thread_budget / per_variant));
  }
  workers = static_cast<unsigned>(
      std::min<std::size_t>(workers, variants.size()));
  out.workers = workers;

  const auto wall_start = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};
  const auto work = [&] {
    for (std::size_t k; (k = cursor.fetch_add(1)) < variants.size();) {
      // Slot k belongs to variant k alone: ordering is by variant index,
      // never by completion order.
      out.variants[k] = run_variant(spec, variants[k]);
    }
  };
  if (workers <= 1) {
    work();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      pool.emplace_back(work);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  out.variants_per_second =
      out.wall_seconds > 0.0
          ? static_cast<double>(variants.size()) / out.wall_seconds
          : 0.0;

  // Aggregate in index order (deterministic regardless of worker count).
  out.paths.resize(spec.paths.size());
  for (std::size_t k = 0; k < spec.paths.size(); ++k) {
    auto& agg = out.paths[k];
    agg.name = spec.paths[k].name;
    agg.hist.bin_width =
        std::max<SimTime>(1, config_.hist_max /
                                 std::max(1u, config_.hist_bins));
    agg.hist.bins.assign(config_.hist_bins + 1, 0);
  }
  out.recovery_hist.bin_width =
      std::max<SimTime>(1, config_.hist_max /
                               std::max(1u, config_.hist_bins));
  out.recovery_hist.bins.assign(config_.hist_bins + 1, 0);
  std::vector<std::uint64_t> path_totals(spec.paths.size(), 0);
  for (const VariantResult& r : out.variants) {
    if (r.violating()) {
      ++out.violating_variants;
    }
    out.overflow_drops += r.overflow_drops;
    out.bus_off_events += r.bus_off_events;
    out.deadline_misses += r.deadline_misses;
    out.bit_errors += r.bit_errors;
    out.heartbeat_misses += r.heartbeat_misses;
    out.mitigations += r.mitigations;
    out.recoveries += r.recoveries;
    for (const SimTime t : r.recovery_times) {
      out.recovery_hist.add(t);
      out.recovery_max = std::max(out.recovery_max, t);
    }
    if (r.watchdog_tripped) {
      ++out.watchdog_timeouts;
    }
    for (std::size_t k = 0; k < r.paths.size(); ++k) {
      const PathResult& p = r.paths[k];
      auto& agg = out.paths[k];
      if (p.frames > 0) {
        if (agg.frames == 0 || p.min_latency < agg.min_latency) {
          agg.min_latency = p.min_latency;
        }
        agg.max_latency = std::max(agg.max_latency, p.max_latency);
        agg.frames += p.frames;
        path_totals[k] += static_cast<std::uint64_t>(p.total_latency);
      }
      agg.hist.merge(p.hist);
      if (p.bound_exceeded) {
        ++agg.bound_exceeded_variants;
        ++out.rta_violations;
      }
      if (p.bound > 0 && !p.bound_schedulable) {
        ++agg.unschedulable_variants;
      }
      if (p.availability >= 0.0) {
        if (agg.min_availability < 0.0 ||
            p.availability < agg.min_availability) {
          agg.min_availability = p.availability;
        }
      }
    }
  }
  for (std::size_t k = 0; k < out.paths.size(); ++k) {
    auto& agg = out.paths[k];
    agg.mean_latency =
        agg.frames == 0 ? 0.0
                        : static_cast<double>(path_totals[k]) /
                              static_cast<double>(agg.frames);
    agg.p99_latency = agg.hist.percentile(0.99);
    out.unschedulable += agg.unschedulable_variants;
    if (spec.paths[k].expected_period > 0) {
      const double expected =
          static_cast<double>(spec.horizon / spec.paths[k].expected_period) *
          static_cast<double>(out.variants.size());
      agg.availability = expected > 0.0
                             ? static_cast<double>(agg.frames) / expected
                             : 0.0;
    }
  }
  out.recovery_p99 = out.recovery_hist.percentile(0.99);
  return out;
}

VariantResult CampaignRunner::replay(const ScenarioSpec& spec,
                                     std::uint32_t index,
                                     std::uint64_t seed) const {
  const Variant v = spec.variant(index);
  ACES_CHECK_MSG(v.seed == seed,
                 "replay seed does not match this spec's derivation for the "
                 "given index — the (spec, seed) pair belongs to a "
                 "different spec revision");
  return run_variant(spec, v);
}

// ----- report ----------------------------------------------------------------

const VariantResult* CampaignResult::first_violating() const {
  for (const VariantResult& r : variants) {
    if (r.violating()) {
      return &r;
    }
  }
  return nullptr;
}

std::string CampaignResult::to_json(bool with_timing,
                                    std::size_t max_listed_violations) const {
  std::string j = "{\n";
  j += "  \"bench\": \"campaign\",\n";
  j += "  \"spec\": \"" + spec_name + "\",\n";
  j += "  \"master_seed\": " + fmt_u64(master_seed) + ",\n";
  j += "  \"horizon_ns\": " + fmt_i64(horizon) + ",\n";
  j += "  \"variants\": " + fmt_u64(variants.size()) + ",\n";
  j += "  \"axes\": [";
  for (std::size_t k = 0; k < axes.size(); ++k) {
    j += std::string(k == 0 ? "" : ",") + "\n    {\"name\": \"" +
         axes[k].name + "\", \"values\": [";
    for (std::size_t i = 0; i < axes[k].values.size(); ++i) {
      j += std::string(i == 0 ? "" : ", ") + fmt_double(axes[k].values[i]);
    }
    j += "]}";
  }
  j += axes.empty() ? "],\n" : "\n  ],\n";
  j += "  \"paths\": [";
  for (std::size_t k = 0; k < paths.size(); ++k) {
    const PathAggregate& p = paths[k];
    j += std::string(k == 0 ? "" : ",") + "\n    {\"name\": \"" + p.name +
         "\", \"frames\": " + fmt_u64(p.frames) +
         ", \"min_ns\": " + fmt_i64(p.min_latency) +
         ", \"mean_ns\": " + fmt_double(p.mean_latency) +
         ", \"p99_ns\": " + fmt_i64(p.p99_latency) +
         ", \"max_ns\": " + fmt_i64(p.max_latency) +
         ",\n     \"bound_exceeded_variants\": " +
         fmt_u64(p.bound_exceeded_variants) +
         ", \"unschedulable_variants\": " +
         fmt_u64(p.unschedulable_variants) +
         (p.availability >= 0.0
              ? ",\n     \"availability\": " + fmt_double(p.availability) +
                    ", \"min_availability\": " +
                    fmt_double(p.min_availability)
              : std::string()) +
         ",\n     \"histogram\": {\"bin_width_ns\": " +
         fmt_i64(p.hist.bin_width) + ", \"counts\": [";
    for (std::size_t i = 0; i < p.hist.bins.size(); ++i) {
      j += std::string(i == 0 ? "" : ",") + fmt_u64(p.hist.bins[i]);
    }
    j += "]}}";
  }
  j += paths.empty() ? "],\n" : "\n  ],\n";
  j += "  \"counters\": {\"violating_variants\": " +
       fmt_u64(violating_variants) +
       ", \"rta_violations\": " + fmt_u64(rta_violations) +
       ", \"unschedulable\": " + fmt_u64(unschedulable) +
       ",\n    \"overflow_drops\": " + fmt_u64(overflow_drops) +
       ", \"bus_off_events\": " + fmt_u64(bus_off_events) +
       ", \"deadline_misses\": " + fmt_u64(deadline_misses) +
       ", \"bit_errors\": " + fmt_u64(bit_errors) + "},\n";
  j += "  \"supervision\": {\"heartbeat_misses\": " +
       fmt_u64(heartbeat_misses) + ", \"mitigations\": " +
       fmt_u64(mitigations) + ", \"recoveries\": " + fmt_u64(recoveries) +
       ",\n    \"recovery_p99_ns\": " + fmt_i64(recovery_p99) +
       ", \"recovery_max_ns\": " + fmt_i64(recovery_max) +
       ", \"watchdog_timeouts\": " + fmt_u64(watchdog_timeouts) + "},\n";
  std::uint64_t listed = 0;
  j += "  \"violating_variants\": {\"total\": " +
       fmt_u64(violating_variants) + ", \"entries\": [";
  for (const VariantResult& r : variants) {
    if (!r.violating() || listed >= max_listed_violations) {
      continue;
    }
    j += std::string(listed == 0 ? "" : ",") +
         "\n    {\"index\": " + fmt_u64(r.index) +
         ", \"seed\": " + fmt_u64(r.seed) + ", \"params\": " +
         json_params(r.params) + ",\n     \"reasons\": [";
    for (std::size_t k = 0; k < r.violations.size(); ++k) {
      j += std::string(k == 0 ? "" : ", ") + "\"" + r.violations[k] + "\"";
    }
    j += "]}";
    ++listed;
  }
  j += listed == 0 ? "], \"listed\": 0}" : "\n  ], \"listed\": " +
                                               fmt_u64(listed) + "}";
  if (with_timing) {
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  ",\n  \"timing\": {\"workers\": %u, \"wall_seconds\": "
                  "%.3f, \"variants_per_second\": %.1f}",
                  workers, wall_seconds, variants_per_second);
    j += buf;
  }
  j += "\n}\n";
  return j;
}

}  // namespace aces::campaign
