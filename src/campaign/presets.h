// Reference campaign specs over the repo's flagship topologies.
//
// vehicle_spec() is the batch twin of examples/vehicle_network.cpp: the
// same segmented E/E architecture — powertrain 500 kbps / body 125 kbps /
// diagnostics 250 kbps bridged by a central store-and-forward gateway —
// built entirely from kernel-model ECUs so one variant costs milliseconds
// and a campaign sweeps thousands of them. Swept axes:
//
//   error_period_ns  T_error of the seeded per-bus bit-error campaigns
//                    (0 = fault-free); also the fault hypothesis fed into
//                    every path's faulted sched::path_rta bound.
//   gw_depth         central gateway per-direction queue depth — small
//                    depths expose the overload drop behavior.
//   load_pct         background-traffic load scale: the periods of every
//                    non-routed publisher are multiplied by 100/load_pct
//                    (a declarative task-set mutation; 100 = baseline).
//
// Four routed paths are measured and bounded: diag request (diag -> pt,
// remapped, answered by a model responder standing in for the engine ECU),
// engine status (pt -> diag), wheel speed (pt -> body) and door status
// (body -> diag). Routed interferers carry a conservative inherited
// release jitter (their source period + gateway latency — an upper bound
// on their true inherited jitter whenever their own hop is schedulable,
// which each path's own check establishes per variant).
#ifndef ACES_CAMPAIGN_PRESETS_H
#define ACES_CAMPAIGN_PRESETS_H

#include "campaign/spec.h"

namespace aces::campaign::presets {

// The 3-bus, 23-ECU model-fidelity vehicle campaign. `horizon` is the
// per-variant simulated time; axes/replicates on the returned spec may be
// overridden before running (the default grid is 4 x 2 x 3 = 24 points,
// one replicate each).
[[nodiscard]] ScenarioSpec vehicle_spec(sim::SimTime horizon =
                                            sim::kSecond);

}  // namespace aces::campaign::presets

#endif  // ACES_CAMPAIGN_PRESETS_H
