#include "sim/event_queue.h"

#include "support/check.h"

namespace aces::sim {

EventId EventQueue::schedule_at(SimTime at, std::function<void()> fn) {
  ACES_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  const EventId id = next_id_++;
  pending_.push(Entry{at, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return id;
}

EventId EventQueue::schedule_every(SimTime period, std::function<void()> fn) {
  ACES_CHECK_MSG(period > 0, "periodic events need a positive period");
  const EventId id = next_id_++;
  periodics_.push_back(Periodic{period, std::move(fn), id});
  periodic_by_id_[id] = &periodics_.back();
  arm_periodic(periodics_.back(), now_);
  return id;
}

void EventQueue::arm_periodic(Periodic& p, SimTime at) {
  // `p` lives in periodics_ (deque: stable address for the queue's
  // lifetime), so the rearming lambda can capture it by reference.
  if (p.dead) {
    return;
  }
  p.current = schedule_at(at, [this, &p] {
    p.fn();
    arm_periodic(p, now_ + p.period);
  });
}

void EventQueue::cancel(EventId id) {
  // A periodic series: drop the armed occurrence and pin the series dead
  // so it never rearms — even when cancelled from inside its own callback
  // (the occurrence already fired; the dead flag stops the rearm).
  const auto pit = periodic_by_id_.find(id);
  if (pit != periodic_by_id_.end()) {
    Periodic& p = *pit->second;
    p.dead = true;
    periodic_by_id_.erase(pit);
    cancel(p.current);
    return;
  }
  // Only ids still in the heap move to the cancelled set: a fired (or
  // repeatedly cancelled) id is dropped here, so the sets never leak.
  if (live_.erase(id) != 0) {
    cancelled_.insert(id);
  }
}

void EventQueue::prune_cancelled() {
  while (!pending_.empty() && cancelled_.erase(pending_.top().id) != 0) {
    pending_.pop();
  }
}

SimTime EventQueue::next_time() {
  prune_cancelled();
  return pending_.empty() ? kNever : pending_.top().at;
}

bool EventQueue::step(SimTime horizon) {
  prune_cancelled();
  if (pending_.empty() || pending_.top().at > horizon) {
    return false;
  }
  // Copy out before popping: the callback may schedule new events.
  Entry entry = pending_.top();
  pending_.pop();
  live_.erase(entry.id);
  now_ = entry.at;
  entry.fn();
  return true;
}

void EventQueue::set_stop_check(StopCheck check) {
  stop_check_ = std::move(check);
  stopped_ = false;
}

std::size_t EventQueue::run_until(SimTime horizon) {
  std::size_t executed = 0;
  while (!stopped_ && step(horizon)) {
    ++executed;
    ++executed_total_;
    if (stop_check_ && executed_total_ % kStopCheckStride == 0 &&
        stop_check_(executed_total_)) {
      stopped_ = true;
    }
  }
  if (!stopped_ && now_ < horizon) {
    now_ = horizon;
  }
  return executed;
}

}  // namespace aces::sim
