#include "sim/event_queue.h"

#include <algorithm>

#include "support/check.h"

namespace aces::sim {

EventId EventQueue::schedule_at(SimTime at, std::function<void()> fn) {
  ACES_CHECK_MSG(at >= now_, "cannot schedule an event in the past");
  const EventId id = next_id_++;
  pending_.push(Entry{at, next_seq_++, id, std::move(fn)});
  return id;
}

void EventQueue::cancel(EventId id) {
  if (std::find(cancelled_.begin(), cancelled_.end(), id) ==
      cancelled_.end()) {
    cancelled_.push_back(id);
    ++cancelled_count_;
  }
}

bool EventQueue::step(SimTime horizon) {
  while (!pending_.empty()) {
    const Entry& top = pending_.top();
    if (top.at > horizon) {
      return false;
    }
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), top.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_count_;
      pending_.pop();
      continue;
    }
    // Copy out before popping: the callback may schedule new events.
    Entry entry = top;
    pending_.pop();
    now_ = entry.at;
    entry.fn();
    return true;
  }
  return false;
}

std::size_t EventQueue::run_until(SimTime horizon) {
  std::size_t executed = 0;
  while (step(horizon)) {
    ++executed;
  }
  if (now_ < horizon) {
    now_ = horizon;
  }
  return executed;
}

}  // namespace aces::sim
