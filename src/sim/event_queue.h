// Discrete-event simulation core shared by the CAN bus model, the OSEK-like
// kernel model and the system-level experiments.
//
// Time is an integer count of nanoseconds (SimTime). Events scheduled for
// the same instant fire in FIFO order of scheduling (a monotonically
// increasing sequence number breaks ties), which keeps every simulation
// deterministic.
#ifndef ACES_SIM_EVENT_QUEUE_H
#define ACES_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace aces::sim {

class Shard;

using SimTime = std::int64_t;  // nanoseconds

constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

// "No pending event / no self-scheduled activity" sentinel, shared with the
// co-simulation scheduler (simulation.h).
inline constexpr SimTime kNever = std::numeric_limits<SimTime>::max();

// Handle used to cancel a scheduled event. Cancellation is lazy: the event
// stays in the queue but is skipped when popped.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedules fn at absolute time `at` (must be >= now(), enforced).
  EventId schedule_at(SimTime at, std::function<void()> fn);

  // Schedules fn `delay` after now().
  EventId schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Fires fn at now(), now()+period, now()+2*period, ... The queue owns
  // the callback for its own lifetime (this is the safe home for the
  // self-rescheduling periodic-sender pattern — a loop-local
  // std::function that reschedules itself dangles once its scope ends).
  // The returned id cancels the whole series: the pending occurrence is
  // dropped and the series never rearms (safe to call from inside fn).
  EventId schedule_every(SimTime period, std::function<void()> fn);

  // Marks an event (or a periodic series) as cancelled; a no-op if it
  // already fired (or was already cancelled). O(1): ids live in hash
  // sets/maps, never searched.
  void cancel(EventId id);

  // Runs events until the queue is empty or the horizon is passed.
  // Returns the number of events executed. Events scheduled exactly at
  // `horizon` still run; later ones remain queued.
  std::size_t run_until(SimTime horizon);

  // Cooperative stop check, polled every kStopCheckStride executed events
  // inside run_until with the queue's lifetime event count. When it returns
  // true the run stops after the current event and stopped() latches — the
  // containment layer for livelocked scenarios (a callback chain that never
  // advances time would otherwise never return control). Deterministic when
  // the check is a pure function of the executed-event count. Installing a
  // new check (or an empty one) clears the latch.
  using StopCheck = std::function<bool(std::uint64_t events_executed)>;
  static constexpr std::uint64_t kStopCheckStride = 1024;
  void set_stop_check(StopCheck check);
  [[nodiscard]] bool stopped() const noexcept { return stopped_; }
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_total_;
  }

  // Runs a single event if one is pending within the horizon.
  // Returns false when nothing (non-cancelled) is pending in range.
  bool step(SimTime horizon);

  // Time of the earliest non-cancelled pending event, or kNever. Prunes
  // cancelled heads as a side effect (hence non-const).
  [[nodiscard]] SimTime next_time();

  [[nodiscard]] bool empty() const noexcept { return live_.empty(); }

  // The shard this queue belongs to, if any (set by sim::Shard; null for a
  // standalone queue). Lets bus-level helpers marshal mutations onto the
  // owning shard's thread without depending on the scheduler layer.
  void set_owner(Shard* owner) noexcept { owner_ = owner; }
  [[nodiscard]] Shard* owner() const noexcept { return owner_; }

 private:
  struct Entry {
    SimTime at = 0;
    std::uint64_t seq = 0;
    EventId id = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  struct Periodic {
    SimTime period = 0;
    std::function<void()> fn;
    EventId id = 0;       // the stable handle schedule_every returned
    EventId current = 0;  // the currently armed occurrence
    bool dead = false;    // cancelled: never rearms again
  };

  // Pops cancelled entries off the head of the heap.
  void prune_cancelled();
  void arm_periodic(Periodic& p, SimTime at);

  SimTime now_ = 0;
  std::uint64_t executed_total_ = 0;
  StopCheck stop_check_;
  bool stopped_ = false;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  Shard* owner_ = nullptr;
  std::priority_queue<Entry, std::vector<Entry>, Later> pending_;
  std::unordered_set<EventId> live_;       // scheduled, not fired/cancelled
  std::unordered_set<EventId> cancelled_;  // cancelled, still in the heap
  std::deque<Periodic> periodics_;         // stable homes for recurring fns
  std::unordered_map<EventId, Periodic*> periodic_by_id_;
};

}  // namespace aces::sim

#endif  // ACES_SIM_EVENT_QUEUE_H
