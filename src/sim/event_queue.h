// Discrete-event simulation core shared by the CAN bus model, the OSEK-like
// kernel model and the system-level experiments.
//
// Time is an integer count of nanoseconds (SimTime). Events scheduled for
// the same instant fire in FIFO order of scheduling (a monotonically
// increasing sequence number breaks ties), which keeps every simulation
// deterministic.
#ifndef ACES_SIM_EVENT_QUEUE_H
#define ACES_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace aces::sim {

using SimTime = std::int64_t;  // nanoseconds

constexpr SimTime kMicrosecond = 1'000;
constexpr SimTime kMillisecond = 1'000'000;
constexpr SimTime kSecond = 1'000'000'000;

// Handle used to cancel a scheduled event. Cancellation is lazy: the event
// stays in the queue but is skipped when popped.
using EventId = std::uint64_t;

class EventQueue {
 public:
  EventQueue() = default;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedules fn at absolute time `at` (must be >= now()).
  EventId schedule_at(SimTime at, std::function<void()> fn);

  // Schedules fn `delay` after now().
  EventId schedule_in(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  // Marks an event as cancelled; a no-op if it already fired.
  void cancel(EventId id);

  // Runs events until the queue is empty or the horizon is passed.
  // Returns the number of events executed. Events scheduled exactly at
  // `horizon` still run; later ones remain queued.
  std::size_t run_until(SimTime horizon);

  // Runs a single event if one is pending within the horizon.
  // Returns false when nothing (non-cancelled) is pending in range.
  bool step(SimTime horizon);

  [[nodiscard]] bool empty() const noexcept {
    return pending_.size() == cancelled_count_;
  }

 private:
  struct Entry {
    SimTime at = 0;
    std::uint64_t seq = 0;
    EventId id = 0;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) {
        return a.at > b.at;
      }
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Entry, std::vector<Entry>, Later> pending_;
  std::vector<EventId> cancelled_;  // sorted insertion not needed; small
  std::size_t cancelled_count_ = 0;
};

}  // namespace aces::sim

#endif  // ACES_SIM_EVENT_QUEUE_H
