// Co-simulation scheduler: one event-driven time base shared by
// cycle-accurate CPUs, network models and kernel models.
//
// The paper's distributed vision (§1/§3.2) treats "the distributed network
// of automotive processors ... as a single compute resource"; simulating
// that needs several ECUs with real software progressing against one shared
// network timeline. Simulation owns the EventQueue and a set of Clocked
// participants (things with their own clock, e.g. a cpu::System bound at a
// declared frequency) and advances everything under one deterministic
// interleaving:
//
//   - purely event-driven components (can::CanBus, rtos::Kernel,
//     net::FlexrayFabric) live on the queue and fire at exact
//     nanosecond times, exactly as before;
//   - clocked participants advance in registration-order round-robin
//     slices of at most one quantum, and every slice is cut short at the
//     next pending event time, so cross-domain delivery (frame arrival,
//     IRQ raise) happens at the precise instant, not quantum-rounded;
//   - a participant that reports itself idle (guest in WFI, core halted)
//     is fast-forwarded in O(1) — a sleeping ECU costs zero host work no
//     matter how high its clock rate — and when *everything* is idle the
//     scheduler jumps straight to the next event.
//
// Causality skew: work a clocked participant initiates mid-slice (e.g. a
// guest TXCMD register write) is timestamped with the global clock at the
// slice start, so it can appear up to one quantum early to other
// participants. Symmetrically, an event *created* mid-window can land
// after a sleeping System was already fast-forwarded past it and wake it
// up to one quantum late — the IRQ raise is stamped at the true event
// instant, so that lateness shows up in latency measurements instead of
// being silently absorbed. Slices are always cut at event times the
// planner can see, so event-to-event and event-to-running-guest delivery
// is exact. The interleaving is deterministic in all cases; shrink the
// quantum to shrink the skew.
#ifndef ACES_SIM_SIMULATION_H
#define ACES_SIM_SIMULATION_H

#include <string>
#include <string_view>
#include <vector>

#include "sim/event_queue.h"

namespace aces::sim {

// A participant that advances on its own clock. Implemented by
// cpu::SystemBinding (System::bind); purely event-driven models need no
// Clocked implementation.
class Clocked {
 public:
  virtual ~Clocked() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;

  // Advances local state to global time `t` (ns). Called with
  // non-decreasing targets; may schedule events on the queue.
  virtual void advance_to(SimTime t) = 0;

  // kNever when the participant is idle until an external event (a queue
  // callback or IRQ) wakes it; otherwise the next instant it wants host
  // cycles (its current local time while busy).
  [[nodiscard]] virtual SimTime next_activity() = 0;
};

// Interrupt delivery endpoint: how a peripheral hands IRQ lines to a
// clocked participant without depending on the cpu layer. Implemented by
// cpu::SystemBinding; accepted by can::CanController::connect_irq.
class IrqSink {
 public:
  virtual ~IrqSink() = default;
  virtual void raise_irq(unsigned line) = 0;
  virtual void clear_irq(unsigned line) = 0;
};

// One shard-local scheduler: an EventQueue plus the clocked participants
// that live on it, advanced by the round-robin loop below. Historically
// this class WAS the whole simulation (and the `Simulation` alias keeps
// that spelling working everywhere); under ShardedSimulation (sharded.h)
// several Shards run on a worker pool in lock-stepped epochs, and
// cross-shard work travels through per-shard outboxes merged
// deterministically at epoch boundaries.
class Shard {
 public:
  // `quantum` bounds how far a busy clocked participant may run ahead of
  // the others between interleaving points (and therefore the causality
  // skew of mid-slice actions). Must be >= 1 ns.
  explicit Shard(SimTime quantum = 50 * kMicrosecond);

  [[nodiscard]] EventQueue& queue() noexcept { return queue_; }
  [[nodiscard]] SimTime now() const noexcept { return queue_.now(); }
  [[nodiscard]] SimTime quantum() const noexcept { return quantum_; }

  // Event scheduling, forwarded to the owned queue.
  EventId schedule_at(SimTime at, std::function<void()> fn) {
    return queue_.schedule_at(at, std::move(fn));
  }
  EventId schedule_in(SimTime delay, std::function<void()> fn) {
    return queue_.schedule_in(delay, std::move(fn));
  }
  EventId schedule_every(SimTime period, std::function<void()> fn) {
    return queue_.schedule_every(period, std::move(fn));
  }
  void cancel(EventId id) { queue_.cancel(id); }

  // Registers a clocked participant. Registration order is the round-robin
  // order within every quantum — the deterministic interleaving.
  void add(Clocked& participant);

  [[nodiscard]] const std::vector<Clocked*>& participants() const noexcept {
    return participants_;
  }

  // Advances global time to `horizon` (inclusive, like
  // EventQueue::run_until).
  void run_until(SimTime horizon);
  void run_for(SimTime delta) { run_until(now() + delta); }

  // Per-participant share of the scheduler work, in registration order.
  // `slices` counts advance_to calls; `idle_windows` counts planning
  // windows the participant entered asleep (next_activity() == kNever), in
  // which its whole slice is a WFI fast-forward costing O(1) host work.
  struct ParticipantStats {
    std::string name;  // copied at add(): outlives the participant
    std::uint64_t slices = 0;
    std::uint64_t idle_windows = 0;
  };
  struct Stats {
    std::uint64_t events_executed = 0;
    std::uint64_t slices = 0;      // advance_to calls on participants
    std::uint64_t idle_jumps = 0;  // windows skipped with everyone idle
    std::vector<ParticipantStats> participants;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // Zeroes every scheduler counter (global and per-participant) while
  // keeping the participant roster; the next run_until counts a fresh
  // measurement window.
  void reset_stats();

  // Cooperative watchdog: `check` is polled inside the event loop (every
  // EventQueue::kStopCheckStride executed events, with the lifetime event
  // count) and a true return aborts the run at the next poll point — even
  // when a livelocked callback chain never lets time advance. run_until
  // then returns early with now() frozen at the trip instant;
  // watchdog_tripped() reports it. Deterministic when the check depends
  // only on the event count. Installing a new check clears the trip latch.
  void set_watchdog(EventQueue::StopCheck check) {
    queue_.set_stop_check(std::move(check));
  }
  [[nodiscard]] bool watchdog_tripped() const noexcept {
    return queue_.stopped();
  }

  // ----- sharding (inert when the shard runs standalone) --------------------

  // Position within the owning ShardedSimulation (0 when standalone).
  [[nodiscard]] std::size_t index() const noexcept { return index_; }

  // The shard whose run_until loop is executing on this thread, or null
  // outside any run (build time, coordinator thread). Thread-local.
  [[nodiscard]] static Shard* current() noexcept;

  // Posts fn to run on `dst` at absolute time `at`. Same-shard (or
  // outside any run loop) this is a plain schedule_at; cross-shard it
  // lands in this shard's outbox and is merged at the next epoch
  // boundary — `at` must respect the lookahead contract (at >= the
  // current epoch's end), which the coordinator enforces with a check.
  void post_cross(Shard& dst, SimTime at, std::function<void()> fn);

  // Posts fn to run on `dst` "as soon as the synchronization allows":
  // immediately when already on dst (or outside any run loop), otherwise
  // stamped at the next epoch boundary. For control-plane mutations
  // (route toggles, detach/restart) whose exact instant tolerates the
  // bounded one-epoch skew.
  void post_cross_relaxed(Shard& dst, std::function<void()> fn);

  // Earliest instant anything on this shard can happen: the next queue
  // event or the earliest participant activity (busy participants count
  // as `now()`). kNever when fully idle. Drives the coordinator's
  // adaptive epoch sizing.
  [[nodiscard]] SimTime next_wake();

 private:
  friend class ShardedSimulation;

  struct CrossEvent {
    Shard* dst = nullptr;
    SimTime at = 0;
    bool relaxed = false;  // stamp with the merge boundary instead of `at`
    std::function<void()> fn;
  };

  EventQueue queue_;
  SimTime quantum_;
  std::vector<Clocked*> participants_;
  Stats stats_;
  bool running_ = false;  // re-entrancy guard for run_until
  std::size_t index_ = 0;
  SimTime epoch_end_ = kNever;  // current epoch boundary, set per epoch
  std::vector<CrossEvent> outbox_;
};

// The name most of the codebase uses: a single-shard simulation IS the
// shard-local scheduler, unchanged.
using Simulation = Shard;

// Runs fn under `target`'s scheduler: immediately when already on that
// shard's thread (or outside any run loop — identical to a direct call),
// otherwise marshaled through the calling shard's outbox and delivered at
// the next epoch boundary (bounded lateness, deterministic order).
void run_on(Shard& target, std::function<void()> fn);

// Same, addressed by an EventQueue: resolves the queue's owning shard
// (standalone queues run fn immediately). Lets can::CanBus-level code
// marshal without seeing the scheduler layer.
void run_on_queue(EventQueue& queue, std::function<void()> fn);

}  // namespace aces::sim

#endif  // ACES_SIM_SIMULATION_H
