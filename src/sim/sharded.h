// Sharded parallel co-simulation: N shard-local schedulers (sim::Shard)
// advanced in lock-stepped epochs on a worker pool.
//
// Conservative PDES with the gateway's store-and-forward latency as the
// lookahead: nothing a shard does before the epoch boundary can affect
// another shard until at least `lookahead` later, so every shard may run
// one epoch without hearing from the others. Epochs are sized adaptively —
// the next boundary is min(horizon+1, quietest-next-wake + lookahead) — so
// an idle fleet still jumps in O(1) instead of ticking epoch by epoch.
//
// Cross-shard traffic travels through per-shard outboxes, drained at each
// barrier and scheduled in a deterministic merge order (timestamp, source
// shard, post order). Double runs are therefore bit-identical at any
// thread count: threads only decide WHO runs a shard, never WHAT order
// events fire in.
//
// A single-shard topology short-circuits run_until straight to
// Shard::run_until — byte-for-byte the pre-sharding scheduler.
#ifndef ACES_SIM_SHARDED_H
#define ACES_SIM_SHARDED_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/simulation.h"

namespace aces::sim {

class ShardedSimulation {
 public:
  explicit ShardedSimulation(SimTime quantum = 50 * kMicrosecond);
  ~ShardedSimulation();
  ShardedSimulation(const ShardedSimulation&) = delete;
  ShardedSimulation& operator=(const ShardedSimulation&) = delete;

  // Adds one shard (before the first run). Shard indices are assignment
  // order and define the cross-shard merge tie-break.
  Shard& add_shard();
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] Shard& shard(std::size_t k) { return *shards_.at(k); }

  // Minimum latency over all cross-shard edges (ns). kNever (default)
  // means the shards are fully independent: one epoch runs straight to
  // the horizon. Must be >= 1 when any cross-shard traffic exists.
  void set_lookahead(SimTime delta);
  [[nodiscard]] SimTime lookahead() const noexcept { return lookahead_; }

  // Worker threads for the epoch fan-out. 0 (default) = min(hardware
  // concurrency, shard count); 1 = run every shard on the calling thread
  // (identical results — thread count never changes event order).
  void set_threads(unsigned n);
  [[nodiscard]] unsigned threads() const;  // resolved count

  // Advances every shard to `horizon` (inclusive, like Shard::run_until).
  void run_until(SimTime horizon);
  void run_for(SimTime delta) { run_until(now() + delta); }
  [[nodiscard]] SimTime now() const;

  // Aggregated scheduler stats: counters summed, participants
  // concatenated in shard order. Rebuilt on each call; the reference
  // stays valid until the next stats() call.
  [[nodiscard]] const Simulation::Stats& stats() const;
  void reset_stats();
  [[nodiscard]] std::uint64_t events_executed() const;

  // Cooperative watchdog over the TOTAL event count, deterministic across
  // thread and shard counts: the check is evaluated against the exact
  // global count at every epoch boundary, and each shard additionally
  // polls it in-epoch against (other shards' boundary snapshot + own
  // count) as a livelock backstop. The check may be called concurrently
  // from shard threads — it must be thread-safe (pure functions of the
  // count, like the campaign's, are).
  void set_watchdog(EventQueue::StopCheck check);
  [[nodiscard]] bool watchdog_tripped() const;

  [[nodiscard]] SimTime quantum() const noexcept { return quantum_; }
  // Synchronization barriers executed so far (observability).
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  struct Pool;

  void run_epochs(SimTime horizon);
  void run_all(SimTime target);
  void merge_outboxes(SimTime boundary);
  [[nodiscard]] bool any_stopped() const;

  SimTime quantum_;
  SimTime lookahead_ = kNever;
  unsigned threads_setting_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;
  EventQueue::StopCheck watchdog_;
  bool tripped_ = false;
  std::uint64_t epochs_ = 0;
  mutable Simulation::Stats agg_;
  std::unique_ptr<Pool> pool_;
};

}  // namespace aces::sim

#endif  // ACES_SIM_SHARDED_H
