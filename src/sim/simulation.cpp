#include "sim/simulation.h"

#include <algorithm>

#include "support/check.h"

namespace aces::sim {

namespace {
thread_local Shard* t_current_shard = nullptr;
}  // namespace

Shard::Shard(SimTime quantum) : quantum_(quantum) {
  ACES_CHECK_MSG(quantum >= 1, "co-simulation quantum must be >= 1 ns");
  queue_.set_owner(this);
}

Shard* Shard::current() noexcept { return t_current_shard; }

void Shard::add(Clocked& participant) {
  for (const Clocked* p : participants_) {
    ACES_CHECK_MSG(p != &participant,
                   "clocked participant registered twice");
  }
  participants_.push_back(&participant);
  ParticipantStats ps;
  ps.name = std::string(participant.name());
  stats_.participants.push_back(std::move(ps));
}

void Shard::run_until(SimTime horizon) {
  ACES_CHECK_MSG(horizon >= now(), "cannot run the simulation backwards");
  ACES_CHECK_MSG(!running_,
                 "Simulation::run_until re-entered from a callback");
  running_ = true;
  t_current_shard = this;
  const struct Guard {
    bool& flag;
    ~Guard() {
      flag = false;
      t_current_shard = nullptr;
    }
  } guard{running_};
  while (true) {
    // Fire everything due at (or before) the current instant; callbacks may
    // wake sleeping participants, so this happens before slice planning.
    stats_.events_executed += queue_.run_until(now());
    if (queue_.stopped() || now() >= horizon) {
      return;
    }

    // Plan the next interleaving point: the earliest of the next queue
    // event, the next self-scheduled participant activity, the quantum
    // boundary (only while someone is busy) and the horizon.
    SimTime wake = queue_.next_time();
    bool busy = false;
    for (std::size_t k = 0; k < participants_.size(); ++k) {
      const SimTime t = participants_[k]->next_activity();
      if (t == kNever) {
        ++stats_.participants[k].idle_windows;
      }
      if (t <= now()) {
        busy = true;
      } else {
        wake = std::min(wake, t);
      }
    }
    SimTime target = 0;
    if (busy) {
      target = std::min(horizon, now() + quantum_);
      target = std::min(target, wake);
    } else if (wake == kNever) {
      // Dead network: no events, every participant idle. Nothing can
      // happen between here and any horizon — jump straight there, but
      // still sync every local clock (sleeping cores fast-forward in
      // O(1)) so callers observe all participants at the horizon.
      queue_.run_until(horizon);
      for (std::size_t k = 0; k < participants_.size(); ++k) {
        participants_[k]->advance_to(horizon);
        ++stats_.slices;
        ++stats_.participants[k].slices;
      }
      ++stats_.idle_jumps;
      return;
    } else {
      target = std::min(horizon, wake);
      ++stats_.idle_jumps;
    }

    // Round-robin: every clocked participant advances to the target (idle
    // ones fast-forward their local clocks in O(1)).
    for (std::size_t k = 0; k < participants_.size(); ++k) {
      participants_[k]->advance_to(target);
      ++stats_.slices;
      ++stats_.participants[k].slices;
    }
    stats_.events_executed += queue_.run_until(target);
    if (queue_.stopped()) {
      return;
    }
  }
}

void Shard::reset_stats() {
  stats_.events_executed = 0;
  stats_.slices = 0;
  stats_.idle_jumps = 0;
  for (ParticipantStats& ps : stats_.participants) {
    ps.slices = 0;
    ps.idle_windows = 0;
  }
}

SimTime Shard::next_wake() {
  SimTime wake = queue_.next_time();
  for (Clocked* p : participants_) {
    const SimTime t = p->next_activity();
    wake = std::min(wake, t <= now() ? now() : t);
  }
  return wake;
}

void Shard::post_cross(Shard& dst, SimTime at, std::function<void()> fn) {
  if (&dst == this || current() == nullptr) {
    dst.queue_.schedule_at(at, std::move(fn));
    return;
  }
  ACES_CHECK_MSG(current() == this,
                 "cross-shard post from a shard that is not running");
  ACES_CHECK_MSG(at >= epoch_end_,
                 "cross-shard event breaks the lookahead contract");
  outbox_.push_back(CrossEvent{&dst, at, false, std::move(fn)});
}

void Shard::post_cross_relaxed(Shard& dst, std::function<void()> fn) {
  if (&dst == this || current() == nullptr) {
    fn();
    return;
  }
  ACES_CHECK_MSG(current() == this,
                 "cross-shard post from a shard that is not running");
  outbox_.push_back(CrossEvent{&dst, 0, true, std::move(fn)});
}

void run_on(Shard& target, std::function<void()> fn) {
  Shard* cur = Shard::current();
  if (cur == nullptr || cur == &target) {
    fn();
    return;
  }
  cur->post_cross_relaxed(target, std::move(fn));
}

void run_on_queue(EventQueue& queue, std::function<void()> fn) {
  Shard* owner = queue.owner();
  if (owner == nullptr) {
    fn();
    return;
  }
  run_on(*owner, std::move(fn));
}

}  // namespace aces::sim
