#include "sim/sharded.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

#include "support/check.h"

namespace aces::sim {

// ----- worker pool ------------------------------------------------------------

// Persistent workers driven by a generation barrier. Each epoch the
// coordinator publishes (shards, target), workers pull shard indices off a
// shared cursor (load balancing is free: results never depend on who runs
// what), and the coordinator blocks until all workers report done. An
// exception from any shard (ACES_CHECK throws std::logic_error) is
// captured and rethrown on the coordinator thread after the barrier.
struct ShardedSimulation::Pool {
  explicit Pool(unsigned n) : count(n) {
    workers.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      workers.emplace_back([this] { work(); });
    }
  }

  ~Pool() {
    {
      const std::lock_guard<std::mutex> lock(m);
      quit = true;
    }
    work_cv.notify_all();
    for (std::thread& t : workers) {
      t.join();
    }
  }

  void run(std::vector<std::unique_ptr<Shard>>& shards, SimTime target) {
    {
      const std::lock_guard<std::mutex> lock(m);
      job = &shards;
      job_target = target;
      cursor.store(0, std::memory_order_relaxed);
      done = 0;
      error = nullptr;
      ++generation;
    }
    work_cv.notify_all();
    std::unique_lock<std::mutex> lock(m);
    done_cv.wait(lock, [this] { return done == count; });
    if (error) {
      std::exception_ptr e = std::exchange(error, nullptr);
      lock.unlock();
      std::rethrow_exception(e);
    }
  }

  void work() {
    std::uint64_t seen = 0;
    while (true) {
      std::vector<std::unique_ptr<Shard>>* shards = nullptr;
      SimTime target = 0;
      {
        std::unique_lock<std::mutex> lock(m);
        work_cv.wait(lock, [&] { return quit || generation != seen; });
        if (quit) {
          return;
        }
        seen = generation;
        shards = job;
        target = job_target;
      }
      while (true) {
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= shards->size()) {
          break;
        }
        try {
          (*shards)[i]->run_until(target);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(m);
          if (!error) {
            error = std::current_exception();
          }
        }
      }
      const std::lock_guard<std::mutex> lock(m);
      if (++done == count) {
        done_cv.notify_all();
      }
    }
  }

  const unsigned count;
  std::mutex m;
  std::condition_variable work_cv;
  std::condition_variable done_cv;
  std::vector<std::thread> workers;
  std::vector<std::unique_ptr<Shard>>* job = nullptr;
  SimTime job_target = 0;
  std::atomic<std::size_t> cursor{0};
  std::size_t done = 0;
  std::uint64_t generation = 0;
  bool quit = false;
  std::exception_ptr error;
};

// ----- coordinator ------------------------------------------------------------

ShardedSimulation::ShardedSimulation(SimTime quantum) : quantum_(quantum) {
  ACES_CHECK_MSG(quantum >= 1, "co-simulation quantum must be >= 1 ns");
}

ShardedSimulation::~ShardedSimulation() = default;

Shard& ShardedSimulation::add_shard() {
  shards_.push_back(std::make_unique<Shard>(quantum_));
  shards_.back()->index_ = shards_.size() - 1;
  return *shards_.back();
}

void ShardedSimulation::set_lookahead(SimTime delta) {
  ACES_CHECK_MSG(delta >= 1, "cross-shard lookahead must be >= 1 ns");
  lookahead_ = delta;
}

void ShardedSimulation::set_threads(unsigned n) {
  threads_setting_ = n;
  pool_.reset();  // rebuilt lazily at the next parallel epoch
}

unsigned ShardedSimulation::threads() const {
  unsigned n = threads_setting_;
  if (n == 0) {
    n = std::max(1u, std::thread::hardware_concurrency());
  }
  const unsigned cap =
      static_cast<unsigned>(std::max<std::size_t>(1, shards_.size()));
  return std::min(n, cap);
}

SimTime ShardedSimulation::now() const {
  ACES_CHECK_MSG(!shards_.empty(), "ShardedSimulation has no shards");
  return shards_.front()->now();
}

void ShardedSimulation::run_until(SimTime horizon) {
  ACES_CHECK_MSG(!shards_.empty(), "ShardedSimulation has no shards");
  if (shards_.size() == 1) {
    // Single shard: exactly the pre-sharding scheduler, no epochs, no
    // barrier, watchdog installed directly (see set_watchdog).
    shards_.front()->run_until(horizon);
    return;
  }
  run_epochs(horizon);
}

void ShardedSimulation::run_epochs(SimTime horizon) {
  ACES_CHECK_MSG(horizon >= now(), "cannot run the simulation backwards");
  ACES_CHECK_MSG(horizon < kNever, "run_until needs a finite horizon");
  if (tripped_) {
    return;  // matches the serial latch: frozen until a new watchdog
  }
  while (true) {
    // Size the epoch: nothing anywhere can happen before `quiet`, and
    // anything created at t >= quiet reaches another shard no earlier
    // than t + lookahead, so every event strictly before `boundary` is
    // safe to run without hearing from other shards. The max() clamp
    // guarantees progress (a zero-width epoch would spin: run_until(now)
    // does not advance busy participants).
    SimTime quiet = kNever;
    for (const auto& s : shards_) {
      quiet = std::min(quiet, s->next_wake());
    }
    SimTime boundary = horizon + 1;  // horizon inclusive, like run_until
    if (quiet != kNever && lookahead_ != kNever &&
        quiet < boundary - lookahead_) {
      boundary = quiet + lookahead_;
    }
    boundary = std::max(boundary, now() + 1);

    if (watchdog_) {
      // In-epoch livelock backstop, deterministic across thread counts:
      // each shard polls the global check against (everyone else's count
      // snapshotted at this barrier + its own live count). The exact
      // boundary-time evaluation below is the authoritative trip.
      const std::uint64_t total = events_executed();
      for (auto& s : shards_) {
        const std::uint64_t others = total - s->queue().events_executed();
        s->set_watchdog([check = watchdog_, others](std::uint64_t mine) {
          return check(others + mine);
        });
      }
    }
    for (auto& s : shards_) {
      s->epoch_end_ = boundary;
    }
    run_all(boundary - 1);
    ++epochs_;
    if (any_stopped()) {
      tripped_ = true;
      return;
    }
    merge_outboxes(boundary);
    if (watchdog_ && watchdog_(events_executed())) {
      tripped_ = true;
      return;
    }
    if (boundary > horizon) {
      return;
    }
  }
}

void ShardedSimulation::run_all(SimTime target) {
  const unsigned n = threads();
  if (n <= 1) {
    for (auto& s : shards_) {
      s->run_until(target);
    }
    return;
  }
  if (!pool_ || pool_->count != n) {
    pool_ = std::make_unique<Pool>(n);
  }
  pool_->run(shards_, target);
}

void ShardedSimulation::merge_outboxes(SimTime boundary) {
  struct Envelope {
    Shard::CrossEvent* event;
    std::size_t source;
    std::size_t seq;
  };
  std::vector<Envelope> all;
  for (std::size_t k = 0; k < shards_.size(); ++k) {
    std::vector<Shard::CrossEvent>& out = shards_[k]->outbox_;
    for (std::size_t i = 0; i < out.size(); ++i) {
      if (out[i].relaxed) {
        out[i].at = boundary;  // bounded-lateness control-plane marshaling
      }
      ACES_CHECK_MSG(out[i].at >= boundary,
                     "merged cross-shard event predates the epoch boundary");
      all.push_back(Envelope{&out[i], k, i});
    }
  }
  // Deterministic merge order — (timestamp, source shard, post order) —
  // so same-instant cross-shard arrivals get FIFO sequence numbers on the
  // destination queue in an order no thread schedule can change.
  std::sort(all.begin(), all.end(), [](const Envelope& a, const Envelope& b) {
    if (a.event->at != b.event->at) {
      return a.event->at < b.event->at;
    }
    if (a.source != b.source) {
      return a.source < b.source;
    }
    return a.seq < b.seq;
  });
  for (Envelope& env : all) {
    env.event->dst->queue_.schedule_at(env.event->at, std::move(env.event->fn));
  }
  for (auto& s : shards_) {
    s->outbox_.clear();
  }
}

bool ShardedSimulation::any_stopped() const {
  for (const auto& s : shards_) {
    if (s->watchdog_tripped()) {
      return true;
    }
  }
  return false;
}

const Simulation::Stats& ShardedSimulation::stats() const {
  agg_ = Simulation::Stats{};
  for (const auto& s : shards_) {
    const Simulation::Stats& st = s->stats();
    agg_.events_executed += st.events_executed;
    agg_.slices += st.slices;
    agg_.idle_jumps += st.idle_jumps;
    agg_.participants.insert(agg_.participants.end(), st.participants.begin(),
                             st.participants.end());
  }
  return agg_;
}

void ShardedSimulation::reset_stats() {
  for (auto& s : shards_) {
    s->reset_stats();
  }
}

std::uint64_t ShardedSimulation::events_executed() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->queue().events_executed();
  }
  return total;
}

void ShardedSimulation::set_watchdog(EventQueue::StopCheck check) {
  watchdog_ = std::move(check);
  tripped_ = false;
  for (auto& s : shards_) {
    // Single shard gets the check verbatim (serial semantics, including
    // the latch-clear); multi-shard latches clear here and per-epoch
    // wrappers are installed by run_epochs.
    s->set_watchdog(shards_.size() == 1 ? watchdog_ : EventQueue::StopCheck{});
  }
}

bool ShardedSimulation::watchdog_tripped() const {
  if (shards_.size() == 1) {
    return shards_.front()->watchdog_tripped();
  }
  return tripped_;
}

}  // namespace aces::sim
