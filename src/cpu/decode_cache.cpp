#include "cpu/decode_cache.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace aces::cpu {

DecodeCache::DecodeCache(std::uint32_t num_lines, unsigned pc_shift)
    : pc_shift_(pc_shift) {
  ACES_CHECK_MSG(support::is_power_of_two(num_lines),
                 "decode cache line count must be a power of two");
  lines_.resize(num_lines);
  mask_ = num_lines - 1;
}

// Installed `fixed` lines double as formation fodder for the superblock
// tier: Core::peek_decode reuses a valid line instead of re-probing the
// fetch path, so a warm loop upgrades to a block without extra bus reads.
void DecodeCache::install(std::uint32_t pc, const Decoded& d,
                          FetchReplay replay, std::uint32_t fixed_cycles,
                          bool privileged) {
  Line& l = lines_[(pc >> pc_shift_) & mask_];
  l.pc = pc;
  l.gen = generation_;
  l.replay = replay;
  l.privileged = privileged;
  l.fixed_cycles = fixed_cycles;
  l.d = d;
  watch_lo_ = std::min(watch_lo_, pc);
  watch_hi_ = std::max(watch_hi_, pc + static_cast<std::uint32_t>(d.size));
}

void DecodeCache::invalidate_range(std::uint32_t addr, std::uint32_t len) {
  if (len > 64) {
    invalidate_all();  // image reload: not worth probing per halfword
    return;
  }
  // Any cached instruction overlapping the write starts at most 3 bytes
  // (max size - 1) below it; instructions are at least halfword-aligned.
  const std::uint32_t first = (addr >= 3 ? addr - 3 : 0) & ~1u;
  const std::uint64_t end = static_cast<std::uint64_t>(addr) + len;
  bool killed = false;
  for (std::uint64_t candidate = first; candidate < end; candidate += 2) {
    const auto pc = static_cast<std::uint32_t>(candidate);
    Line& l = lines_[(pc >> pc_shift_) & mask_];
    if (l.gen == generation_ && l.pc == pc &&
        pc + static_cast<std::uint32_t>(l.d.size) > addr) {
      l.gen = 0;
      killed = true;
    }
  }
  if (killed) {
    ++stats_.invalidations;
  }
}

void DecodeCache::invalidate_all() {
  ++stats_.invalidations;
  watch_lo_ = 0xFFFF'FFFFu;
  watch_hi_ = 0;
  if (++generation_ == 0) {
    // Generation wrap (once per 2^32 invalidations): scrub line tags so no
    // ancient entry aliases the recycled generation value.
    for (Line& l : lines_) {
      l.gen = 0;
    }
    generation_ = 1;
  }
}

}  // namespace aces::cpu
