#include "cpu/vic.h"

#include "support/check.h"

namespace aces::cpu {

void ClassicVic::raise(unsigned line, std::uint64_t now) {
  ACES_CHECK(line <= kFiq);
  if (!pending_[line]) {
    pending_[line] = true;
    raised_at_[line] = now;
    ++pending_count_;
  }
}

void ClassicVic::clear(unsigned line) {
  ACES_CHECK(line <= kFiq);
  if (pending_[line]) {
    pending_[line] = false;
    --pending_count_;
  }
}

bool ClassicVic::would_preempt(const Core& core) const {
  const bool in_fiq = !active_.empty() && active_.back().line == kFiq;
  if (pending_[kFiq] && !in_fiq &&
      (config_.fiq_is_nmi || (fiq_enabled_ && core.interrupts_enabled()))) {
    return true;
  }
  if (pending_[kIrq] && active_.empty() && core.interrupts_enabled()) {
    return true;
  }
  return false;
}

void ClassicVic::enter(Core& core, unsigned line) {
  Saved s;
  s.return_pc = core.pc();
  s.psr = core.pack_psr();
  s.saved_lr = core.reg(isa::lr);
  s.line = line;
  active_.push_back(s);

  pending_[line] = false;
  --pending_count_;
  core.clear_it_state();
  core.set_privileged(true);
  core.set_interrupts_enabled(false);  // I (and effectively F) set on entry
  core.set_reg(isa::lr, kExcReturnBase +
                            static_cast<std::uint32_t>(active_.size() - 1));
  core.set_reg(isa::pc,
               line == kFiq ? config_.fiq_handler : config_.irq_handler);
  const CoreTimings& t = core.config().timings;
  core.add_cycles(t.exception_entry_base + t.branch_taken_penalty);
  latency_[line].push_back(core.cycles() - raised_at_[line]);
}

void ClassicVic::poll(Core& core) {
  const bool in_fiq = !active_.empty() && active_.back().line == kFiq;
  if (pending_[kFiq] && !in_fiq &&
      (config_.fiq_is_nmi || (fiq_enabled_ && core.interrupts_enabled()))) {
    enter(core, kFiq);
    return;
  }
  if (pending_[kIrq] && active_.empty() && core.interrupts_enabled()) {
    enter(core, kIrq);
  }
}

bool ClassicVic::exception_return(Core& core, std::uint32_t target) {
  if (active_.empty()) {
    return false;
  }
  const std::uint32_t expected =
      kExcReturnBase + static_cast<std::uint32_t>(active_.size() - 1);
  if (target != expected) {
    return false;
  }
  const Saved s = active_.back();
  active_.pop_back();
  core.set_reg(isa::pc, s.return_pc);
  core.set_reg(isa::lr, s.saved_lr);
  core.restore_psr(s.psr);
  const CoreTimings& t = core.config().timings;
  core.add_cycles(t.exception_return_base + t.branch_taken_penalty);
  return true;
}

}  // namespace aces::cpu
