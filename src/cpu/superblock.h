// Superblock tier: straight-line runs of decoded instructions executed by a
// threaded-dispatch loop (core.cpp's per-instruction tier is the fallback).
//
// A superblock chains consecutive decode-cache-grade entries starting at a
// block-entry pc and ending at the first terminator: any branch, any op that
// can leave the straight line (svc/bkpt/wfi, pop/ldm touching pc, any
// rd==pc writer), a 1 KiB page boundary, or the length cap. Every entry
// records the *modeled* fixed fetch cost, so block execution charges exactly
// the cycles the per-instruction tier would — the tiers are bit-identical in
// (pc, cycles) traces, proven by the three-way differential fuzzer.
//
// Formation is only attempted where the fetch cost is provably state-free
// (MemPort::fixed_fetch_cost answers: SRAM, flash in its 1-cycle or
// prefetch-off regimes, FPB patch RAM) and the observed read cost matches
// the prediction. Everywhere else — TCM under a fault injector, streaming
// flash, I-cache fronted ports — the core stays on the per-instruction tier,
// which replays fetches so stateful timing advances exactly.
//
// Invalidation mirrors the decode cache and adds block granularity: the
// core-side store snoop and the bus write snoop kill any block whose chained
// range the write lands in (a hit strictly inside the range counts as a
// split — the prefix/suffix re-form lazily); FPB/MPU version bumps, fault-
// injector upsets and reset() flush everything via a generation bump; a
// privilege mismatch at entry is a miss. Interrupts are polled at every
// entry boundary, gated by InterruptController::dispatch_needed(), so IRQ
// delivery instants are unchanged from the per-instruction tier.
#ifndef ACES_CPU_SUPERBLOCK_H
#define ACES_CPU_SUPERBLOCK_H

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "cpu/decode_cache.h"
#include "mem/bus.h"

namespace aces::cpu {

// How the threaded dispatcher executes one entry. `generic` funnels through
// Core::execute() (full semantics: IT predication, faults, every op); the
// rest are straight-line specializations valid only for rd != pc, outside
// IT bodies, and (for memory classes) cores without an MPU — the classifier
// in superblock.cpp enforces those rules at formation time. W32-encoded
// conditions are handled in-line: every specialized handler gates on
// cond_holds and charges the annulled-slot cycle on failure, exactly like
// Core::execute().
enum class ExecClass : std::uint8_t {
  generic,
  nop,
  // ALU with dynamic operand2 (imm or rm, per Instruction::uses_imm).
  mov, mvn, add, adc, sub, sbc, rsb, cmp, cmn,
  and_, orr, eor, bic, tst, teq,
  shift,  // lsl/lsr/asr/ror, imm or register amount
  mul,
  movw, movt, ubfx,
  sxtb, sxth, uxtb, uxth,
  adr,
  it_,     // IT instruction whose whole body was specialized (cost only)
  branch,  // direct b with an in-range target (taken: loops back in-dispatch)
  cbz,     // cbz/cbnz with an in-range target
  // Loads/stores on the DirectSpan fast path (slow path: generic funnel).
  ldr_imm, ldrb_imm, ldrh_imm, ldr_reg, ldrb_reg, ldrh_reg,
  str_imm, strb_imm, strh_imm, str_reg, strb_reg, strh_reg,
  count,
};

class SuperblockCache {
 public:
  // Formation stops at a page boundary so one guest write can only ever
  // affect blocks in its own and the previous page; the length cap bounds
  // formation cost (interrupt delivery is exact regardless — the executor
  // polls at every entry boundary).
  static constexpr std::uint32_t kMaxEntries = 32;
  static constexpr std::uint32_t kPageBytes = 1024;
  // Longest possible chained byte range (for the snoop probe window).
  static constexpr std::uint32_t kMaxSpanBytes = kMaxEntries * 4;

  struct Entry {
    Decoded d;
    std::uint32_t pc = 0;
    std::uint32_t fixed_cycles = 0;  // modeled fetch cost of this entry
    std::uint32_t base_cycles = 0;   // max(fixed_cycles, timings.data_op)
    ExecClass klass = ExecClass::generic;
    bool set = false;  // effective flag-setting (classifier-validated)
    // 1-based position inside a specialized IT body (0 = outside). The
    // body's static condition is baked into d.insn.cond for the dispatch
    // gate; this field lets the cold paths rebuild the architectural IT
    // state (the IT entry sits it_info slots back) for exception stacking
    // and per-instruction fallback.
    std::uint8_t it_info = 0;
  };

  struct Block {
    std::vector<Entry> entries;
    std::uint32_t start_pc = 0;
    std::uint32_t end_pc = 0;  // one past the last chained byte
    std::uint32_t gen = 0;     // valid iff == cache generation
    std::uint32_t seq = 0;     // bumped per install (guards resume cursors)
    bool privileged = false;
  };

  struct Stats {
    std::uint64_t blocks_formed = 0;
    std::uint64_t blocks_killed = 0;   // snoop/flush/evict invalidations
    std::uint64_t block_splits = 0;    // kills landing strictly mid-range
    std::uint64_t block_flushes = 0;   // invalidate_all calls
    std::uint64_t hits = 0;            // block entries from the dispatcher
    std::uint64_t misses = 0;          // lookups that fell to per-insn
    std::uint64_t entries_chained = 0; // sum of formed block lengths
    std::uint64_t block_instructions = 0;  // insns retired inside blocks
  };

  // `num_blocks` must be a power of two; `pc_shift` as in DecodeCache.
  explicit SuperblockCache(std::uint32_t num_blocks, unsigned pc_shift = 1);

  [[nodiscard]] Block* lookup(std::uint32_t pc, bool privileged) {
    Block& b = blocks_[(pc >> pc_shift_) & mask_];
    return (b.gen == generation_ && b.start_pc == pc &&
            b.privileged == privileged)
               ? &b
               : nullptr;
  }

  // Formation scratch: build entries here, then install() moves them into
  // the mapped slot (recycling the evicted block's capacity).
  [[nodiscard]] std::vector<Entry>& scratch() { return scratch_; }
  Block* install(std::uint32_t start_pc, bool privileged);

  // Negative formation cache: pcs where form_superblock just failed (a WFI
  // idle loop, a lone terminator, stateful fetch). Purely host-side — the
  // dispatcher falls back to step_insn either way — but it spares the
  // failed probe reads and decode on every re-entry. Entries die with the
  // generation, so any full flush (FPB/MPU bump, injector upset, reset)
  // re-opens formation.
  [[nodiscard]] bool known_unformable(std::uint32_t pc) const {
    return no_form_[(pc >> pc_shift_) & (no_form_.size() - 1)] ==
           ((static_cast<std::uint64_t>(generation_) << 32) | pc);
  }
  void note_unformable(std::uint32_t pc) {
    no_form_[(pc >> pc_shift_) & (no_form_.size() - 1)] =
        (static_cast<std::uint64_t>(generation_) << 32) | pc;
  }

  void invalidate_all();
  void invalidate_range(std::uint32_t addr, std::uint32_t len);

  // Core-side store snoop (DirectSpan writes bypass the bus); two compares
  // when the store is outside the chained-pc window.
  void snoop_write(std::uint32_t addr, std::uint32_t len) {
    if (addr < watch_hi_ &&
        static_cast<std::uint64_t>(addr) + len > watch_lo_) {
      invalidate_range(addr, len);
    }
  }

  [[nodiscard]] std::uint32_t generation() const { return generation_; }
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  std::vector<Block> blocks_;
  std::vector<Entry> scratch_;
  // (generation << 32 | pc) per slot; gen 0 never matches (blocks start
  // invalid at gen 0, the cache itself at gen 1).
  std::array<std::uint64_t, 16> no_form_{};
  std::uint32_t mask_ = 0;
  unsigned pc_shift_ = 1;
  std::uint32_t generation_ = 1;  // blocks start at gen 0: all invalid
  std::uint32_t live_ = 0;        // currently-valid blocks (flush accounting)
  std::uint32_t watch_lo_ = 0xFFFF'FFFFu;
  std::uint32_t watch_hi_ = 0;
  Stats stats_;
};

// The single bus-facing write snoop for a core: fans out to whichever of
// the decode cache and superblock cache exist. Its watch window is the
// union of theirs (widened at install time, cleared only on a full flush of
// both), so the bus pre-check stays two compares for data-only writes.
class CodeWriteSnoop final : public mem::WriteSnoop {
 public:
  void wire(DecodeCache* dcache, SuperblockCache* sbcache) {
    dcache_ = dcache;
    sbcache_ = sbcache;
  }

  void widen(std::uint32_t lo, std::uint32_t hi) {
    watch_lo_ = std::min(watch_lo_, lo);
    watch_hi_ = std::max(watch_hi_, hi);
  }
  void clear_window() {
    watch_lo_ = 0xFFFF'FFFFu;
    watch_hi_ = 0;
  }

  void on_write(std::uint32_t addr, std::uint32_t len) override {
    if (dcache_ != nullptr) {
      dcache_->snoop_write(addr, len);
    }
    if (sbcache_ != nullptr) {
      sbcache_->snoop_write(addr, len);
    }
  }

 private:
  DecodeCache* dcache_ = nullptr;
  SuperblockCache* sbcache_ = nullptr;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_SUPERBLOCK_H
