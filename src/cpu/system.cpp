#include "cpu/system.h"

namespace aces::cpu {

System::System(const SystemBuilder& b)
    : flash_(b.flash_),
      sram_("sram", b.sram_bytes_),
      sram_base_(b.sram_base_),
      iport_direct_(bus_),
      dport_direct_(bus_) {
  // Memories.
  bus_.attach(b.flash_base_, flash_);
  bus_.attach(b.sram_base_, sram_);
  if (b.tcm_) {
    tcm_.emplace(*b.tcm_);
    bus_.attach(b.tcm_base_, *tcm_);
  }
  if (b.bitband_bytes_ != 0) {
    bitband_.emplace(sram_, b.bitband_bytes_);
    bus_.attach(b.bitband_base_, *bitband_);
  }

  // Peripherals: externally-owned devices, then builder-manufactured ones.
  for (const SystemBuilder::ExternalDevice& d : b.external_) {
    bus_.attach(d.base, *d.dev);
  }
  for (const SystemBuilder::OwnedDevice& d : b.owned_) {
    std::unique_ptr<mem::Device> dev = d.make();
    ACES_CHECK_MSG(dev != nullptr, "device factory returned nothing");
    bus_.attach(d.base, *dev);
    owned_devices_.push_back(std::move(dev));
  }

  // Cache layers in front of the bus.
  if (b.icache_) {
    mem::CacheConfig c = *b.icache_;
    c.cacheable_base = b.flash_base_;
    c.cacheable_limit = b.flash_base_ + b.flash_.size_bytes;
    icache_.emplace(c, bus_);
  }
  if (b.dcache_) {
    dcache_.emplace(*b.dcache_, bus_);
  }

  // Protection and fault-injection layers.
  if (b.mpu_) {
    mpu_.emplace(*b.mpu_);
  }
  if (b.injector_) {
    injector_.emplace(*b.injector_, support::Rng256(b.injector_seed_));
    if (icache_) {
      injector_->attach(*icache_);
    }
    if (dcache_) {
      injector_->attach(*dcache_);
    }
    if (tcm_) {
      injector_->attach(*tcm_);
    }
  }

  // Interrupt controller.
  if (b.vic_) {
    intc_ = std::make_unique<ClassicVic>(*b.vic_);
  } else if (b.ivc_) {
    intc_ = std::make_unique<Ivc>(*b.ivc_);
  }

  // The core, wired to whichever port stack the description called for.
  core_.emplace(b.core_,
                icache_ ? static_cast<mem::MemPort&>(*icache_)
                        : static_cast<mem::MemPort&>(iport_direct_),
                dcache_ ? static_cast<mem::MemPort&>(*dcache_)
                        : static_cast<mem::MemPort&>(dport_direct_));
  if (mpu_) {
    core_->set_mpu(&*mpu_);
  }
  if (intc_) {
    core_->set_interrupt_controller(intc_.get());
  }
  if (injector_) {
    core_->set_cycle_hook([this](std::uint64_t now) {
      (void)injector_->advance_to(now);
      if (user_hook_) {
        user_hook_(now);
      }
    });
  }
}

void System::set_cycle_hook(Core::CycleHook hook) {
  if (injector_) {
    user_hook_ = std::move(hook);  // the composing hook is already installed
  } else {
    core_->set_cycle_hook(std::move(hook));
  }
}

}  // namespace aces::cpu
