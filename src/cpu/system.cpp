#include "cpu/system.h"

#include <limits>

namespace aces::cpu {

System::System(const SystemBuilder& b)
    : name_(b.name_),
      clock_hz_(b.clock_hz_),
      flash_(b.flash_),
      sram_("sram", b.sram_bytes_),
      sram_base_(b.sram_base_),
      iport_direct_(bus_),
      dport_direct_(bus_) {
  // Memories.
  bus_.attach(b.flash_base_, flash_);
  bus_.attach(b.sram_base_, sram_);
  if (b.tcm_) {
    tcm_.emplace(*b.tcm_);
    bus_.attach(b.tcm_base_, *tcm_);
  }
  if (b.bitband_bytes_ != 0) {
    bitband_.emplace(sram_, b.bitband_bytes_);
    bus_.attach(b.bitband_base_, *bitband_);
  }

  // Peripherals: externally-owned devices, then builder-manufactured ones.
  for (const SystemBuilder::ExternalDevice& d : b.external_) {
    bus_.attach(d.base, *d.dev);
  }
  for (const SystemBuilder::OwnedDevice& d : b.owned_) {
    std::unique_ptr<mem::Device> dev = d.make();
    ACES_CHECK_MSG(dev != nullptr, "device factory returned nothing");
    bus_.attach(d.base, *dev);
    owned_devices_.push_back(std::move(dev));
  }

  // Cache layers in front of the bus.
  if (b.icache_) {
    mem::CacheConfig c = *b.icache_;
    c.cacheable_base = b.flash_base_;
    c.cacheable_limit = b.flash_base_ + b.flash_.size_bytes;
    icache_.emplace(c, bus_);
  }
  if (b.dcache_) {
    dcache_.emplace(*b.dcache_, bus_);
  }

  // Protection and fault-injection layers.
  if (b.mpu_) {
    mpu_.emplace(*b.mpu_);
  }
  if (b.injector_) {
    injector_.emplace(*b.injector_, support::Rng256(b.injector_seed_));
    if (icache_) {
      injector_->attach(*icache_);
    }
    if (dcache_) {
      injector_->attach(*dcache_);
    }
    if (tcm_) {
      injector_->attach(*tcm_);
    }
  }

  // Interrupt controller.
  if (b.vic_) {
    intc_ = std::make_unique<ClassicVic>(*b.vic_);
  } else if (b.ivc_) {
    intc_ = std::make_unique<Ivc>(*b.ivc_);
  }

  // The core, wired to whichever port stack the description called for.
  core_.emplace(b.core_,
                icache_ ? static_cast<mem::MemPort&>(*icache_)
                        : static_cast<mem::MemPort&>(iport_direct_),
                dcache_ ? static_cast<mem::MemPort&>(*dcache_)
                        : static_cast<mem::MemPort&>(dport_direct_));
  if (mpu_) {
    core_->set_mpu(&*mpu_);
  }
  if (intc_) {
    core_->set_interrupt_controller(intc_.get());
  }
  if (injector_) {
    core_->set_cycle_hook([this](std::uint64_t now) {
      (void)injector_->advance_to(now);
      if (user_hook_) {
        user_hook_(now);
      }
    });
    // Upsets flip bits behind the bus's back; cached decodes of the
    // affected code must be re-derived from the corrupted (or repaired)
    // contents exactly like an uncached fetch would see them.
    injector_->set_upset_hook([this] { core_->invalidate_decoded(); });
  }
  // Host-side pokes and image (re)loads through the bus invalidate cached
  // decodes (decode cache and superblocks alike, via the core's fan-out
  // snoop); the window check makes data-only writes cost two compares.
  if (core_->code_write_snoop() != nullptr) {
    bus_.set_write_snoop(core_->code_write_snoop());
  }
}

void System::set_cycle_hook(Core::CycleHook hook) {
  if (injector_) {
    user_hook_ = std::move(hook);  // the composing hook is already installed
  } else {
    core_->set_cycle_hook(std::move(hook));
  }
}

void System::set_irq_handler(unsigned line, std::uint32_t handler) {
  Ivc* v = ivc();
  ACES_CHECK_MSG(v != nullptr,
                 "set_irq_handler needs an owned Ivc (builder .ivc(...))");
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(handler),
      static_cast<std::uint8_t>(handler >> 8),
      static_cast<std::uint8_t>(handler >> 16),
      static_cast<std::uint8_t>(handler >> 24)};
  ACES_CHECK_MSG(bus_.load_image(v->vector_address(line), bytes, 4),
                 "vector table entry is outside the memory map");
}

SystemBinding& System::bind(sim::Simulation& sim) {
  return bind(sim, clock_hz_);
}

SystemBinding& System::bind(sim::Simulation& sim, std::uint64_t hz) {
  ACES_CHECK_MSG(binding_ == nullptr,
                 "System '" + name_ + "' is already bound to a simulation");
  ACES_CHECK_MSG(hz > 0,
                 "System '" + name_ +
                     "' has no clock rate: declare one with "
                     "SystemBuilder::clock_hz or pass it to bind()");
  ACES_CHECK_MSG(hz <= static_cast<std::uint64_t>(sim::kSecond),
                 "clock rates beyond 1 GHz exceed the 1 ns time base");
  binding_ = std::make_unique<SystemBinding>(*this, sim, hz);
  sim.add(*binding_);
  return *binding_;
}

// ----- SystemBinding ---------------------------------------------------------

SystemBinding::SystemBinding(System& sys, sim::Simulation& sim,
                             std::uint64_t hz)
    : sys_(sys), sim_(sim), hz_(hz) {}

sim::SimTime SystemBinding::time_of_cycles(std::uint64_t cycles) const {
  // Split to keep cycles * 1e9 inside 64 bits: the remainder term is
  // < hz * 1e9 <= 1e18.
  const std::uint64_t whole = cycles / hz_;
  const std::uint64_t rest = cycles % hz_;
  return static_cast<sim::SimTime>(
      whole * static_cast<std::uint64_t>(sim::kSecond) +
      rest * static_cast<std::uint64_t>(sim::kSecond) / hz_);
}

std::uint64_t SystemBinding::cycles_at(sim::SimTime t) const {
  // First cycle boundary at or after t (ceiling): a core advanced to
  // cycles_at(t) has reached time t, and the round trip through
  // time_of_cycles is exact at any frequency. This is also the instant the
  // pre-co-simulation cycle-hook bridging delivered events at.
  const std::uint64_t ns = static_cast<std::uint64_t>(t);
  const std::uint64_t whole = ns / static_cast<std::uint64_t>(sim::kSecond);
  const std::uint64_t rest = ns % static_cast<std::uint64_t>(sim::kSecond);
  return whole * hz_ +
         (rest * hz_ + static_cast<std::uint64_t>(sim::kSecond) - 1) /
             static_cast<std::uint64_t>(sim::kSecond);
}

bool SystemBinding::interrupt_deliverable() {
  InterruptController* intc = sys_.intc();
  return intc != nullptr && intc->would_preempt(sys_.core());
}

void SystemBinding::set_frozen(bool frozen) {
  if (frozen && !frozen_) {
    // Freeze at the present: sync a laggard cycle counter forward so the
    // frozen interval is invisible to cycle accounting when thawed.
    Core& core = sys_.core();
    const std::uint64_t now_cycles = cycles_at(sim_.now());
    if (core.cycles() < now_cycles) {
      stats_.idle_cycles += now_cycles - core.cycles();
      core.add_cycles(now_cycles - core.cycles());
    }
  }
  frozen_ = frozen;
}

void SystemBinding::advance_to(sim::SimTime t) {
  Core& core = sys_.core();
  const std::uint64_t cycle_target = cycles_at(t);
  if (frozen_) {
    if (core.cycles() < cycle_target) {
      stats_.idle_cycles += cycle_target - core.cycles();
      core.add_cycles(cycle_target - core.cycles());
    }
    return;
  }
  while (core.halt_reason() == HaltReason::none &&
         core.cycles() < cycle_target) {
    if (core.waiting_for_interrupt() && !interrupt_deliverable()) {
      // Sleep straight through to the slice target: zero host work until
      // an event (via raise_irq) wakes the guest.
      stats_.idle_cycles += cycle_target - core.cycles();
      core.add_cycles(cycle_target - core.cycles());
      return;
    }
    // Batch the whole slice into the core: the superblock tier stays in
    // block dispatch between boundaries instead of paying step() overhead
    // per instruction. `steps` counts retired instructions.
    const std::uint64_t before = core.instructions();
    (void)core.run_chunk(std::numeric_limits<std::uint64_t>::max(),
                         cycle_target);
    stats_.steps += core.instructions() - before;
  }
}

sim::SimTime SystemBinding::next_activity() {
  Core& core = sys_.core();
  if (frozen_ || core.halt_reason() != HaltReason::none) {
    return sim::kNever;
  }
  if (core.waiting_for_interrupt() && !interrupt_deliverable()) {
    return sim::kNever;
  }
  return local_time();
}

void SystemBinding::raise_irq(unsigned line) {
  ACES_CHECK_MSG(sys_.intc() != nullptr,
                 "System '" + sys_.name() +
                     "' has no interrupt controller to deliver line " +
                     std::to_string(line) + " to");
  Core& core = sys_.core();
  if (frozen_) {
    // A dead core latches nothing: the raise is lost, and a reboot starts
    // from a clean interrupt state.
    ++stats_.frozen_irq_drops;
    return;
  }
  ++stats_.irq_raises;
  if (core.waiting_for_interrupt()) {
    // A sleeping core's counter may lag the global clock (its window slice
    // has not run yet) or lead it (it was bulk fast-forwarded past an
    // event that was only created mid-window). Sync a laggard forward, and
    // stamp the raise at the true event instant either way, so the latency
    // measurement starts when the interrupt physically arrived — including
    // any quantum-late wakeup of an over-slept core.
    const std::uint64_t now_cycles = cycles_at(sim_.now());
    if (core.cycles() < now_cycles) {
      stats_.idle_cycles += now_cycles - core.cycles();
      core.add_cycles(now_cycles - core.cycles());
    }
    sys_.intc()->raise(line, now_cycles);
    return;
  }
  sys_.intc()->raise(line, core.cycles());
}

void SystemBinding::clear_irq(unsigned line) {
  if (sys_.intc() != nullptr) {
    sys_.intc()->clear(line);
  }
}

}  // namespace aces::cpu
