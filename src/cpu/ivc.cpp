#include "cpu/ivc.h"

#include "support/check.h"

namespace aces::cpu {

Ivc::Ivc(Config config) : config_(config) {
  ACES_CHECK(config_.lines >= 1 && config_.lines <= 240);
  lines_.resize(config_.lines);
  if (config_.nmi_line >= 0) {
    ACES_CHECK(static_cast<unsigned>(config_.nmi_line) < config_.lines);
    lines_[static_cast<unsigned>(config_.nmi_line)].enabled = true;
    lines_[static_cast<unsigned>(config_.nmi_line)].priority = 0;
  }
}

void Ivc::enable_line(unsigned line, std::uint8_t priority) {
  ACES_CHECK(line < config_.lines);
  lines_[line].enabled = true;
  lines_[line].priority = priority;
}

void Ivc::disable_line(unsigned line) {
  ACES_CHECK(line < config_.lines);
  lines_[line].enabled = false;
}

void Ivc::raise(unsigned line, std::uint64_t now) {
  ACES_CHECK(line < config_.lines);
  if (!lines_[line].pending) {
    lines_[line].pending = true;
    lines_[line].raised_at = now;
    ++pending_count_;
  }
}

void Ivc::clear(unsigned line) {
  ACES_CHECK(line < config_.lines);
  if (lines_[line].pending) {
    lines_[line].pending = false;
    --pending_count_;
  }
}

int Ivc::active_priority() const {
  int best = 256;  // lower value = more urgent
  for (const unsigned line : active_) {
    best = std::min(best, static_cast<int>(lines_[line].priority));
  }
  return best;
}

int Ivc::select(const Core& core) const {
  int best_line = -1;
  int best_prio = active_priority();  // must strictly outrank to preempt
  for (unsigned k = 0; k < config_.lines; ++k) {
    const Line& l = lines_[k];
    if (!l.enabled || !l.pending) {
      continue;
    }
    const bool is_nmi = config_.nmi_line == static_cast<int>(k);
    if (!is_nmi && !core.interrupts_enabled()) {
      continue;  // PRIMASK-style global disable
    }
    if (static_cast<int>(l.priority) < best_prio) {
      best_prio = l.priority;
      best_line = static_cast<int>(k);
    }
  }
  return best_line;
}

bool Ivc::would_preempt(const Core& core) const {
  return select(core) >= 0;
}

void Ivc::jump_to_vector(Core& core, unsigned line) {
  const auto vector = core.read_vector(config_.vector_table + 4 * line);
  if (!vector) {
    return;  // vector table fault already recorded by the core
  }
  core.set_reg(isa::pc, *vector & ~1u);
  core.set_privileged(true);
  core.set_reg(isa::lr, kExcReturnBase +
                            static_cast<std::uint32_t>(active_.size() - 1));
  lines_[line].pending = false;
  --pending_count_;
  lines_[line].latencies.push_back(core.cycles() - lines_[line].raised_at);
}

void Ivc::stack_and_enter(Core& core, unsigned line) {
  // Hardware stacking: 8 words, as compiled handlers expect an AAPCS-like
  // frame. The vector fetch is issued alongside; both costs are paid via
  // the memory ports.
  core.add_cycles(core.config().timings.exception_entry_base);
  const std::uint32_t saved[8] = {
      core.reg(isa::r0),  core.reg(isa::r1), core.reg(isa::r2),
      core.reg(isa::r3),  core.reg(isa::r12), core.reg(isa::lr),
      core.pc(),          core.pack_psr()};
  for (int k = 7; k >= 0; --k) {
    if (!core.push_word(saved[static_cast<unsigned>(k)])) {
      return;  // stacking fault (stack overflow onto bad memory)
    }
  }
  core.clear_it_state();
  active_.push_back(line);
  ++stats_.entries;
  if (active_.size() > 1) {
    ++stats_.preemptions;
  }
  jump_to_vector(core, line);
}

void Ivc::poll(Core& core) {
  const int line = select(core);
  if (line >= 0) {
    stack_and_enter(core, static_cast<unsigned>(line));
  }
}

bool Ivc::exception_return(Core& core, std::uint32_t target) {
  if (active_.empty()) {
    return false;
  }
  const std::uint32_t expected =
      kExcReturnBase + static_cast<std::uint32_t>(active_.size() - 1);
  if (target != expected) {
    return false;
  }
  const unsigned finished = active_.back();
  (void)finished;
  active_.pop_back();

  // Tail-chaining: if another interrupt is due, skip the unstack/restack
  // pair entirely (Figure 4's back-to-back case).
  const int next = select(core);
  if (next >= 0) {
    active_.push_back(static_cast<unsigned>(next));
    ++stats_.entries;
    ++stats_.tail_chains;
    core.add_cycles(core.config().timings.tail_chain_cycles);
    core.clear_it_state();
    jump_to_vector(core, static_cast<unsigned>(next));
    return true;
  }

  // Full return: unstack the 8-word frame.
  std::uint32_t frame[8];
  for (auto& w : frame) {
    if (!core.pop_word(&w)) {
      return true;  // unstack fault recorded by core
    }
  }
  core.set_reg(isa::r0, frame[0]);
  core.set_reg(isa::r1, frame[1]);
  core.set_reg(isa::r2, frame[2]);
  core.set_reg(isa::r3, frame[3]);
  core.set_reg(isa::r12, frame[4]);
  core.set_reg(isa::lr, frame[5]);
  core.set_reg(isa::pc, frame[6]);
  core.restore_psr(frame[7]);
  core.add_cycles(core.config().timings.exception_return_base);
  ++stats_.returns;
  return true;
}

void Ivc::reset_stats() {
  stats_ = Stats{};
  for (Line& l : lines_) {
    l.latencies.clear();
  }
}

void Ivc::reset() {
  active_.clear();
  for (Line& l : lines_) {
    l.pending = false;
  }
  pending_count_ = 0;
}

}  // namespace aces::cpu
