// The UC32 core: decode/execute engine shared by both modeled processors.
//
// A Core is configured with an encoding (W32 / N16 / B32), a timing profile
// (timings.h), instruction and data memory ports, and optionally an MPU and
// an interrupt controller. The high-performance processor of §3.1 is a Core
// with Encoding::w32|n16 + legacy_hp timings + ClassicVic (+ caches on its
// ports); the microcontroller of §3.2 is a Core with Encoding::b32 +
// modern_mcu timings + Ivc (+ bit-band on its bus).
//
// Exception-return convention: entering an exception sets lr to a magic
// value >= kExcReturnBase; executing bx/pop into such an address hands
// control to the interrupt controller, which restores state (mirrors the
// ARM EXC_RETURN mechanism).
#ifndef ACES_CPU_CORE_H
#define ACES_CPU_CORE_H

#include <array>
#include <cstdint>
#include <functional>
#include <optional>

#include "cpu/decode_cache.h"
#include "cpu/superblock.h"
#include "cpu/timings.h"
#include "isa/codec.h"
#include "isa/isa.h"
#include "mem/mpu.h"
#include "mem/port.h"

namespace aces::cpu {

class InterruptController;
class FlashPatchUnit;

inline constexpr std::uint32_t kExcReturnBase = 0xFFFF'FF00u;
// Branching here ends the program (reset() plants it in lr, so a bare
// `bx lr` from the entry function exits cleanly with r0 as status).
inline constexpr std::uint32_t kExitReturn = 0xFFFF'FFE0u;

enum class HaltReason : std::uint8_t {
  none,          // still running
  exited,        // svc #0 — normal program exit, r0 = status
  breakpoint,    // bkpt executed (no debugger attached)
  fault,         // unhandled memory/MPU fault
  invalid_insn,  // undecodable opcode reached
  insn_limit,    // run() budget exhausted
};

struct CoreFault {
  mem::Fault kind = mem::Fault::none;
  std::uint32_t address = 0;
  std::uint32_t pc = 0;
  mem::Access access = mem::Access::read;
};

// Host-side dispatch speed tier. All tiers retire bit-identical
// (pc, cycles) traces — the knob only trades host work for fidelity of
// nothing; the three-way differential fuzzer proves it.
//   off        — decode from scratch every step (the reference tier).
//   per_insn   — decoded-instruction cache, one dispatch per step.
//   superblock — chain decoded entries into straight-line superblocks and
//                run them through a threaded-dispatch loop, falling back to
//                per_insn wherever formation is unsafe (stateful fetch
//                timing, MPU-guarded memory, IT-block entry) or a block was
//                invalidated.
enum class DispatchTier : std::uint8_t { off, per_insn, superblock };

struct CoreConfig {
  isa::Encoding encoding = isa::Encoding::b32;
  CoreTimings timings = CoreTimings::modern_mcu();
  // §3.1.2: allow a pending interrupt to abandon and later restart an
  // in-flight ldm/stm instead of waiting for every transfer (and miss).
  bool restartable_ldm = false;
  // Initial privilege (OSEK kernels run tasks unprivileged).
  bool privileged = true;
  // Decoded-instruction cache size (direct-mapped, power of two). 0
  // disables all caching — every step then decodes from scratch, which is
  // the reference the differential tests compare the cached runs against.
  // Host-side speed only; retired (pc, cycles) traces are identical.
  std::uint32_t decode_cache_lines = 2048;
  // Requested speed tier; clamped to `off` when decode_cache_lines == 0.
  DispatchTier dispatch_tier = DispatchTier::superblock;
};

class Core {
 public:
  Core(CoreConfig config, mem::MemPort& ifetch, mem::MemPort& data);

  // ----- wiring -----
  void set_mpu(mem::Mpu* mpu) {
    mpu_ = mpu;
    invalidate_decoded();  // cached fetch checks were validated without it
  }
  void set_interrupt_controller(InterruptController* intc) { intc_ = intc; }
  void set_flash_patch(FlashPatchUnit* fpb) {
    fpb_ = fpb;
    invalidate_decoded();
  }
  // Handler for MPU/bus faults; without one, a fault halts the core.
  void set_fault_handler(std::uint32_t pc) {
    fault_handler_pc_ = pc;
    has_fault_handler_ = true;
  }
  // Environment callback invoked with the current cycle count at every
  // instruction boundary AND between ldm/stm transfer beats. Experiments
  // use it to assert interrupt lines at exact cycle times — which is what
  // makes mid-instruction arrival (the §3.1.2 scenario) reachable in an
  // instruction-atomic simulator.
  using CycleHook = std::function<void(std::uint64_t)>;
  void set_cycle_hook(CycleHook hook) { cycle_hook_ = std::move(hook); }

  // ----- control -----
  void reset(std::uint32_t entry_pc, std::uint32_t initial_sp);
  // Executes one instruction (or takes one interrupt). Returns false when
  // halted.
  bool step();
  // Runs until halt or the instruction budget is exhausted.
  HaltReason run(std::uint64_t max_instructions);
  // Batch stepping for co-simulation slices: runs until halt, the (relative)
  // instruction budget, the (absolute) cycle limit, or a WFI with no
  // deliverable interrupt. Returns insn_limit for an exhausted budget, the
  // halt reason on halt, and none otherwise (cycle limit reached or idle in
  // WFI — callers distinguish via waiting_for_interrupt()). Semantically
  // identical to a step() loop with the same guards; the superblock tier
  // makes it fast by staying inside block dispatch between boundaries.
  HaltReason run_chunk(std::uint64_t max_instructions,
                       std::uint64_t cycle_limit);

  // ----- state access -----
  [[nodiscard]] std::uint32_t reg(isa::Reg r) const { return regs_[r]; }
  void set_reg(isa::Reg r, std::uint32_t v) { regs_[r] = v; }
  [[nodiscard]] std::uint32_t pc() const { return regs_[isa::pc]; }
  [[nodiscard]] const isa::Flags& flags() const { return flags_; }
  void set_flags(const isa::Flags& f) { flags_ = f; }
  [[nodiscard]] bool privileged() const { return privileged_; }
  void set_privileged(bool p) { privileged_ = p; }
  [[nodiscard]] bool interrupts_enabled() const { return irq_enabled_; }
  void set_interrupts_enabled(bool e) { irq_enabled_ = e; }
  [[nodiscard]] bool waiting_for_interrupt() const { return wfi_; }
  void clear_wait() { wfi_ = false; }

  [[nodiscard]] std::uint64_t cycles() const { return cycles_; }
  [[nodiscard]] std::uint64_t instructions() const { return insns_; }
  void add_cycles(std::uint64_t c) { cycles_ += c; }

  [[nodiscard]] HaltReason halt_reason() const { return halt_; }
  [[nodiscard]] const CoreFault& fault_info() const { return fault_info_; }
  [[nodiscard]] const CoreConfig& config() const { return config_; }

  // Current instruction address while inside execute() (for diagnostics).
  [[nodiscard]] std::uint32_t current_pc() const { return cur_pc_; }

  // ----- used by interrupt controllers -----
  // Pushes/pops one word on the active stack through the data port,
  // charging cycles. Returns false on a (fatal) stack fault.
  bool push_word(std::uint32_t value);
  bool pop_word(std::uint32_t* value);
  // Reads a vector-table entry (a code address) through the data port.
  [[nodiscard]] std::optional<std::uint32_t> read_vector(std::uint32_t addr);
  // Clears any in-progress IT block (exception entry kills predication).
  void clear_it_state() { it_remaining_ = 0; it_pos_ = 0; }
  // Packs/restores the program status (NZCV, privilege, interrupt enable,
  // IT state) — what real hardware banks in an xPSR across exceptions.
  [[nodiscard]] std::uint32_t pack_psr() const;
  void restore_psr(std::uint32_t psr);

  struct Stats {
    std::uint64_t instructions = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t predicated_skips = 0;
    std::uint64_t ldm_restarts = 0;  // §3.1.2 restartable ldm/stm abandons
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  // ----- decoded-instruction cache / superblock tier -----
  [[nodiscard]] DecodeCache* decode_cache() {
    return dcache_ ? &*dcache_ : nullptr;
  }
  [[nodiscard]] SuperblockCache* superblock_cache() {
    return sbcache_ ? &*sbcache_ : nullptr;
  }
  // The tier actually running (the config request clamped by cache size).
  [[nodiscard]] DispatchTier dispatch_tier() const {
    return sbcache_   ? DispatchTier::superblock
           : dcache_ ? DispatchTier::per_insn
                      : DispatchTier::off;
  }
  // The bus-facing write snoop covering every decoded-code cache this core
  // keeps (System wires it to the bus), or nullptr when nothing is cached.
  [[nodiscard]] mem::WriteSnoop* code_write_snoop() {
    return (dcache_ || sbcache_) ? &code_snoop_ : nullptr;
  }
  // Drops every cached decode and superblock (used by the fault-injector
  // upset hook and anything else that mutates code behind the memory
  // system's back).
  void invalidate_decoded() {
    if (dcache_) {
      dcache_->invalidate_all();
    }
    if (sbcache_) {
      sbcache_->invalidate_all();
    }
    code_snoop_.clear_window();
  }

  // Aggregated speed-tier counters (decode cache + superblock cache).
  struct JitStats {
    std::uint64_t decode_hits = 0;
    std::uint64_t decode_misses = 0;
    std::uint64_t decode_invalidations = 0;
    std::uint64_t blocks_formed = 0;
    std::uint64_t blocks_killed = 0;
    std::uint64_t block_splits = 0;
    std::uint64_t block_flushes = 0;
    std::uint64_t block_hits = 0;
    std::uint64_t block_misses = 0;
    std::uint64_t block_instructions = 0;
    double avg_block_length = 0.0;  // entries per formed block
  };
  [[nodiscard]] JitStats jit_stats() const;

 private:
  // Fetches and decodes at `addr`, charging fetch cycles (halfword-stream
  // fetches for the 16/32-bit encodings). Returns false on fetch fault /
  // undecodable bits / breakpoint. `replay` reports how a cached copy must
  // reproduce the fetch cost (fixed for FPB patch RAM, else re-issued
  // reads).
  bool fetch_decode(std::uint32_t addr, Decoded* out,
                    std::uint32_t* fetch_cycles, FetchReplay* replay);
  // Reproduces the fetch timing of a cached instruction: charges the fixed
  // cost or re-issues the ifetch reads so device state advances exactly as
  // an uncached fetch would. Returns false on a fetch fault.
  bool replay_fetch(const DecodeCache::Line& line, std::uint32_t* fetch_cycles);
  void execute(const Decoded& d, std::uint32_t* exec_cycles);

  // One instruction (or fault/handler entry), with no boundary attention:
  // the caller has already run the cycle hook, WFI gate and interrupt poll
  // for this boundary. The per-instruction tier's whole body.
  void step_insn();

  // Superblock tier (superblock.cpp). run_span executes from the current pc
  // through block dispatch until a limit, an invalidation, a halt, or a
  // departure from straight-line code, servicing every entry boundary's
  // attention (hook/poll) itself; on any bail-out it retires at least one
  // instruction via step_insn() so callers always make progress. ilimit is
  // an absolute insns_ bound, climit an absolute cycles_ bound.
  void run_span(std::uint64_t ilimit, std::uint64_t climit);
  // Decode-ahead for formation: yields the decoded instruction and its
  // state-free fetch cost at `pc` without charging cycles (FPB patch, a
  // valid fixed decode-cache line, or a fixed_fetch_cost-gated real read
  // whose observed cost must match the prediction). False: unsafe here.
  bool peek_decode(std::uint32_t pc, Decoded* out, std::uint32_t* fixed);
  // Builds and installs the superblock starting at `start_pc`, or returns
  // nullptr when fewer than two entries chain.
  SuperblockCache::Block* form_superblock(std::uint32_t start_pc);

  // Memory helpers: MPU check + data port access; sets pending fault.
  bool mem_read(std::uint32_t addr, unsigned size, std::uint32_t* value,
                std::uint32_t* cycles, bool sign_extend, unsigned ext_bits);
  bool mem_write(std::uint32_t addr, unsigned size, std::uint32_t value,
                 std::uint32_t* cycles);
  // Tries to (re)point dspan_ at the DirectSpan covering `addr`; updates
  // the negative window on a mapped-but-declined device. False: take the
  // virtual path.
  bool acquire_data_span(std::uint32_t addr);

  void do_fault(mem::Fault kind, std::uint32_t addr, mem::Access access);
  void halt(HaltReason reason) { halt_ = reason; }

  // Flag helpers (inline: both execution tiers sit on them).
  void set_nz(std::uint32_t result) {
    flags_.n = (result >> 31) != 0;
    flags_.z = result == 0;
  }
  std::uint32_t add_with_carry(std::uint32_t a, std::uint32_t b, bool carry_in,
                               bool set_flags) {
    const std::uint64_t u =
        static_cast<std::uint64_t>(a) + b + (carry_in ? 1 : 0);
    const std::int64_t s =
        static_cast<std::int64_t>(static_cast<std::int32_t>(a)) +
        static_cast<std::int32_t>(b) + (carry_in ? 1 : 0);
    const auto r = static_cast<std::uint32_t>(u);
    if (set_flags) {
      set_nz(r);
      flags_.c = (u >> 32) != 0;
      flags_.v = s != static_cast<std::int32_t>(r);
    }
    return r;
  }

  // IT block bookkeeping (B32).
  [[nodiscard]] bool it_active() const { return it_remaining_ > 0; }
  void advance_it() {
    if (it_remaining_ > 0) {
      ++it_pos_;
      --it_remaining_;
    }
  }
  void start_it(const isa::Instruction& it);
  // Resolves target and transfers control (handles exception-return magic).
  void branch_to(std::uint32_t target);

  [[nodiscard]] std::uint32_t mul_cycles(std::uint32_t operand) const;
  [[nodiscard]] std::uint32_t div_cycles(std::uint32_t dividend) const;

  CoreConfig config_;
  const isa::Codec& codec_;
  mem::MemPort& ifetch_;
  mem::MemPort& data_;
  mem::Mpu* mpu_ = nullptr;
  InterruptController* intc_ = nullptr;
  FlashPatchUnit* fpb_ = nullptr;

  std::array<std::uint32_t, 16> regs_{};
  isa::Flags flags_;
  bool privileged_ = true;
  bool irq_enabled_ = true;
  bool wfi_ = false;

  // IT state: per-slot conditions, consumed front-first.
  std::array<isa::Cond, 4> it_conds_{};
  std::uint8_t it_pos_ = 0;
  std::uint8_t it_remaining_ = 0;

  std::uint32_t cur_pc_ = 0;  // address of the instruction in flight
  std::uint64_t cycles_ = 0;
  std::uint64_t insns_ = 0;
  HaltReason halt_ = HaltReason::none;
  CoreFault fault_info_;
  std::uint32_t fault_handler_pc_ = 0;
  bool has_fault_handler_ = false;
  CycleHook cycle_hook_;

  // ----- fast paths -----
  std::optional<DecodeCache> dcache_;
  std::optional<SuperblockCache> sbcache_;
  CodeWriteSnoop code_snoop_;
  // Resume cursor: where block execution bailed on an instruction/cycle
  // limit, so the next span re-enters mid-block instead of missing. Valid
  // only while (gen, seq, pc, privilege) still match.
  SuperblockCache::Block* sb_resume_block_ = nullptr;
  std::uint32_t sb_resume_seq_ = 0;
  std::uint32_t sb_resume_idx_ = 0;
  std::uint32_t fpb_version_seen_ = 0;
  std::uint32_t mpu_version_seen_ = 0;
  // Cached data-side DirectSpan (size 0: none) plus a negative window for
  // the last mapped region that declined (peripherals), so the hot
  // load/store path settles to raw host accesses with zero virtual calls.
  bool data_spans_ok_ = false;
  bool ifetch_spans_ok_ = false;
  mem::DirectSpan dspan_;
  std::uint32_t nospan_base_ = 0;
  std::uint32_t nospan_size_ = 0;

  Stats stats_;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_CORE_H
