// SuperblockCache bookkeeping + the superblock execution tier of Core:
// formation (form_superblock / peek_decode) and the threaded-dispatch
// executor (run_span). See superblock.h for the invalidation contract.
//
// Dispatch is a computed-goto loop on GNU-compatible compilers (built with
// -fno-gcse so GCC does not merge the indirect jumps back into one —
// clang needs no flag). Define ACES_SB_SWITCH_DISPATCH to force the
// portable switch fallback; both compile to the same handler bodies.

#include "cpu/superblock.h"

#include <algorithm>
#include <cstddef>
#include <iterator>
#include <limits>
#include <span>

#include "cpu/core.h"
#include "cpu/fpb.h"
#include "cpu/hostmem.h"
#include "cpu/intc.h"
#include "support/bits.h"

namespace aces::cpu {

using hostmem::load_le;
using hostmem::span_covers;
using hostmem::store_le;
using isa::AddrMode;
using isa::Cond;
using isa::Instruction;
using isa::Op;
using isa::SetFlags;

// ----- SuperblockCache -------------------------------------------------------

SuperblockCache::SuperblockCache(std::uint32_t num_blocks, unsigned pc_shift)
    : blocks_(num_blocks), mask_(num_blocks - 1), pc_shift_(pc_shift) {
  scratch_.reserve(kMaxEntries);
}

SuperblockCache::Block* SuperblockCache::install(std::uint32_t start_pc,
                                                 bool privileged) {
  Block& b = blocks_[(start_pc >> pc_shift_) & mask_];
  if (b.gen == generation_) {
    ++stats_.blocks_killed;  // direct-mapped eviction
  } else {
    ++live_;
  }
  b.entries.swap(scratch_);
  b.start_pc = start_pc;
  const Entry& last = b.entries.back();
  b.end_pc = last.pc + static_cast<std::uint32_t>(last.d.size);
  b.gen = generation_;
  ++b.seq;
  b.privileged = privileged;
  watch_lo_ = std::min(watch_lo_, b.start_pc);
  watch_hi_ = std::max(watch_hi_, b.end_pc);
  ++stats_.blocks_formed;
  stats_.entries_chained += b.entries.size();
  return &b;
}

void SuperblockCache::invalidate_all() {
  ++stats_.block_flushes;
  stats_.blocks_killed += live_;
  live_ = 0;
  watch_lo_ = 0xFFFF'FFFFu;
  watch_hi_ = 0;
  if (++generation_ == 0) {
    // Generation wrap: scrub so no stale block can ever re-match.
    for (Block& b : blocks_) {
      b.gen = 0;
    }
    generation_ = 1;
  }
}

void SuperblockCache::invalidate_range(std::uint32_t addr, std::uint32_t len) {
  if (len > 256) {
    invalidate_all();  // image reload: not worth probing per word
    return;
  }
  // The rewritten bytes may make a previously-unformable pc chainable;
  // reopen formation everywhere (range writes are rare SMC events).
  no_form_.fill(0);
  // A block overlapping [addr, addr+len) must start in
  // (addr - kMaxSpanBytes, addr + len): probe every aligned candidate start.
  // Bounded (~kMaxSpanBytes/step + len/step probes) and only reached when
  // the write already hit the watch window.
  const std::uint64_t wend = static_cast<std::uint64_t>(addr) + len;
  const std::uint32_t step = 1u << pc_shift_;
  std::uint64_t s = addr > (kMaxSpanBytes - step)
                        ? (addr - (kMaxSpanBytes - step)) & ~(step - 1)
                        : 0;
  for (; s < wend; s += step) {
    const auto pc = static_cast<std::uint32_t>(s);
    Block& b = blocks_[(pc >> pc_shift_) & mask_];
    if (b.gen != generation_ || b.start_pc != pc) {
      continue;
    }
    if (b.end_pc > addr && static_cast<std::uint64_t>(b.start_pc) < wend) {
      b.gen = 0;
      --live_;
      ++stats_.blocks_killed;
      if (addr > b.start_pc) {
        ++stats_.block_splits;  // landed strictly inside the chained range
      }
    }
  }
}

// ----- formation -------------------------------------------------------------

namespace {

// Ops that architecturally write `rd` (rd == pc makes them terminators and
// disqualifies specialization).
bool writes_rd(Op op) {
  switch (op) {
    case Op::add:
    case Op::adc:
    case Op::sub:
    case Op::sbc:
    case Op::rsb:
    case Op::and_:
    case Op::orr:
    case Op::eor:
    case Op::bic:
    case Op::mov:
    case Op::mvn:
    case Op::lsl:
    case Op::lsr:
    case Op::asr:
    case Op::ror:
    case Op::mul:
    case Op::mla:
    case Op::sdiv:
    case Op::udiv:
    case Op::movw:
    case Op::movt:
    case Op::bfi:
    case Op::bfc:
    case Op::ubfx:
    case Op::sbfx:
    case Op::rbit:
    case Op::rev:
    case Op::rev16:
    case Op::clz:
    case Op::sxtb:
    case Op::sxth:
    case Op::uxtb:
    case Op::uxth:
    case Op::ldr:
    case Op::ldrb:
    case Op::ldrh:
    case Op::ldrsb:
    case Op::ldrsh:
    case Op::adr:
      return true;
    default:
      return false;
  }
}

// Anything that can leave the straight line ends the block (and is included
// as its final, generic-or-not entry).
bool is_terminator(const Instruction& i) {
  switch (i.op) {
    case Op::b:
    case Op::bl:
    case Op::bx:
    case Op::cbz:
    case Op::cbnz:
    case Op::tbb:
    case Op::svc:
    case Op::bkpt:
    case Op::wfi:  // sleeps: the wfi gate only runs at span entry
      return true;
    case Op::ldm:
    case Op::pop:
      return ((i.reglist >> isa::pc) & 1u) != 0;
    default:
      return writes_rd(i.op) && i.rd == isa::pc;
  }
}

// Body length of an IT block (same decode as Core::start_it). Bodies are
// specialized in place: each slot's condition is static (the IT pattern is
// part of the instruction), so formation bakes it into the entry and the
// dispatch gate applies it — no live IT state on the hot path.
int it_body_len(const Instruction& it) {
  const std::uint8_t mask = it.it_mask & 0xFu;
  for (int b = 0; b <= 3; ++b) {
    if ((mask >> b) & 1u) {
      return 4 - b;
    }
  }
  return 0;
}

// Specialization rules: rd != pc for writers, memory classes only when no
// MPU is wired (the generic funnel performs the MPU data check), and direct
// branches only when the link-time target stays below the magic
// exception-return range. W32 conditions are fine — every specialized
// handler begins with the SB_INSN cond gate, mirroring execute()'s
// annulled-slot path (1 cycle, ++predicated_skips).
ExecClass classify(const Instruction& i, std::uint32_t pc, bool has_mpu,
                   bool* set_out) {
  *set_out = i.set_flags == SetFlags::yes;
  if (writes_rd(i.op) && i.rd == isa::pc) {
    return ExecClass::generic;
  }
  if (i.rn == isa::pc || i.rm == isa::pc) {
    // pc-reading operands (literal loads, mov rd, pc) stay generic so the
    // dispatcher does not have to materialize regs[pc] on every entry.
    return ExecClass::generic;
  }
  switch (i.op) {
    case Op::nop:
      // A conditional nop differs from an executed one only in the
      // predicated_skips counter; keep it generic so stats stay exact.
      return i.cond == Cond::al ? ExecClass::nop : ExecClass::generic;
    case Op::b:
    case Op::cbz:
    case Op::cbnz: {
      const std::uint32_t target =
          pc + static_cast<std::uint32_t>(static_cast<std::int32_t>(i.imm));
      if ((target & ~1u) >= kExcReturnBase) {
        return ExecClass::generic;  // magic exit/exception-return address
      }
      return i.op == Op::b ? ExecClass::branch : ExecClass::cbz;
    }
    case Op::mov:
      return ExecClass::mov;
    case Op::mvn:
      return ExecClass::mvn;
    case Op::add:
      return ExecClass::add;
    case Op::adc:
      return ExecClass::adc;
    case Op::sub:
      return ExecClass::sub;
    case Op::sbc:
      return ExecClass::sbc;
    case Op::rsb:
      return ExecClass::rsb;
    case Op::cmp:
      return ExecClass::cmp;
    case Op::cmn:
      return ExecClass::cmn;
    case Op::and_:
      return ExecClass::and_;
    case Op::orr:
      return ExecClass::orr;
    case Op::eor:
      return ExecClass::eor;
    case Op::bic:
      return ExecClass::bic;
    case Op::tst:
      return ExecClass::tst;
    case Op::teq:
      return ExecClass::teq;
    case Op::lsl:
    case Op::lsr:
    case Op::asr:
    case Op::ror:
      return ExecClass::shift;
    case Op::mul:
      return ExecClass::mul;
    case Op::movw:
      return ExecClass::movw;
    case Op::movt:
      return ExecClass::movt;
    case Op::ubfx:
      return ExecClass::ubfx;
    case Op::sxtb:
      return ExecClass::sxtb;
    case Op::sxth:
      return ExecClass::sxth;
    case Op::uxtb:
      return ExecClass::uxtb;
    case Op::uxth:
      return ExecClass::uxth;
    case Op::adr:
      return ExecClass::adr;
    case Op::ldr:
      if (!has_mpu && i.addr == AddrMode::offset_imm) return ExecClass::ldr_imm;
      if (!has_mpu && i.addr == AddrMode::offset_reg) return ExecClass::ldr_reg;
      return ExecClass::generic;
    case Op::ldrb:
      if (!has_mpu && i.addr == AddrMode::offset_imm) {
        return ExecClass::ldrb_imm;
      }
      if (!has_mpu && i.addr == AddrMode::offset_reg) {
        return ExecClass::ldrb_reg;
      }
      return ExecClass::generic;
    case Op::ldrh:
      if (!has_mpu && i.addr == AddrMode::offset_imm) {
        return ExecClass::ldrh_imm;
      }
      if (!has_mpu && i.addr == AddrMode::offset_reg) {
        return ExecClass::ldrh_reg;
      }
      return ExecClass::generic;
    case Op::str:
      if (!has_mpu && i.addr == AddrMode::offset_imm) return ExecClass::str_imm;
      if (!has_mpu && i.addr == AddrMode::offset_reg) return ExecClass::str_reg;
      return ExecClass::generic;
    case Op::strb:
      if (!has_mpu && i.addr == AddrMode::offset_imm) {
        return ExecClass::strb_imm;
      }
      if (!has_mpu && i.addr == AddrMode::offset_reg) {
        return ExecClass::strb_reg;
      }
      return ExecClass::generic;
    case Op::strh:
      if (!has_mpu && i.addr == AddrMode::offset_imm) {
        return ExecClass::strh_imm;
      }
      if (!has_mpu && i.addr == AddrMode::offset_reg) {
        return ExecClass::strh_reg;
      }
      return ExecClass::generic;
    default:
      return ExecClass::generic;
  }
}

}  // namespace

bool Core::peek_decode(std::uint32_t pc, Decoded* out, std::uint32_t* fixed) {
  // Flash-patch hits are fixed-cost by construction (patch RAM, 1 cycle);
  // a patched-in breakpoint must fall to the per-instruction tier.
  if (fpb_ != nullptr) {
    if (const auto patch = fpb_->lookup(pc)) {
      if (patch->breakpoint) {
        return false;
      }
      out->insn = patch->replacement;
      out->size = patch->replacement_size;
      *fixed = 1;
      return true;
    }
  }
  // A valid fixed-replay decode-cache line already proved everything below
  // (state-free cost, MPU fetch check under this privilege, FPB miss at the
  // current version — entry gates compared versions before we got here).
  if (DecodeCache::Line* line = dcache_->lookup(pc);
      line != nullptr && line->privileged == privileged_ &&
      line->replay == FetchReplay::fixed) {
    *out = line->d;
    *fixed = line->fixed_cycles;
    return true;
  }
  const unsigned unit = config_.encoding == isa::Encoding::w32 ? 4 : 2;
  if (mpu_ != nullptr &&
      mpu_->check(pc, unit, mem::Access::fetch, privileged_) !=
          mem::Fault::none) {
    return false;
  }
  // Only provably state-free fetch regions may be chained; the observed
  // cost of the probe read must match the prediction (a probe over SRAM or
  // fixed-regime flash perturbs nothing but flash stream-hit statistics,
  // same tolerance as decode_cache.h documents for `fixed` replay).
  const std::optional<std::uint32_t> pred = ifetch_.fixed_fetch_cost(pc, unit);
  if (!pred) {
    return false;
  }
  const mem::MemResult first = ifetch_.read(pc, unit, mem::Access::fetch,
                                            cycles_);
  if (!first.ok()) {
    return false;
  }
  std::uint32_t observed = first.cycles;
  std::uint32_t total = *pred;
  std::uint8_t buf[4] = {0, 0, 0, 0};
  for (unsigned k = 0; k < unit; ++k) {
    buf[k] = static_cast<std::uint8_t>(first.value >> (8 * k));
  }
  int n = codec_.decode(std::span<const std::uint8_t>(buf, unit), out->insn);
  if (n == 0 && unit == 2) {
    const auto pred2 = ifetch_.fixed_fetch_cost(pc + 2, 2);
    if (!pred2) {
      return false;
    }
    const mem::MemResult second =
        ifetch_.read(pc + 2, 2, mem::Access::fetch, cycles_ + observed);
    if (!second.ok()) {
      return false;
    }
    observed += second.cycles;
    total += *pred2;
    buf[2] = static_cast<std::uint8_t>(second.value);
    buf[3] = static_cast<std::uint8_t>(second.value >> 8);
    n = codec_.decode(std::span<const std::uint8_t>(buf, 4), out->insn);
  }
  if (n == 0 || observed != total) {
    return false;
  }
  out->size = n;
  *fixed = total;
  return true;
}

SuperblockCache::Block* Core::form_superblock(std::uint32_t start_pc) {
  SuperblockCache& sb = *sbcache_;
  std::vector<SuperblockCache::Entry>& out = sb.scratch();
  out.clear();
  std::uint32_t pc = start_pc;
  // Open IT body being specialized. A body slot must be a pure in-dispatch
  // class (no execute() funnel, no memory slow path, no pc change) so the
  // dispatcher never needs live IT state mid-body; otherwise the block is
  // cut just before the IT instruction and per-insn runs the real thing.
  int it_body = 0;           // body entries still to chain
  int it_pos = 0;            // next body position (0-based)
  std::size_t it_index = 0;  // scratch index of the open body's IT entry
  std::array<isa::Cond, 4> it_conds{};
  bool terminated = false;
  while (!terminated && out.size() < SuperblockCache::kMaxEntries) {
    if (((pc ^ start_pc) & ~(SuperblockCache::kPageBytes - 1)) != 0) {
      break;  // page boundary: bounds the blast radius of one guest write
    }
    SuperblockCache::Entry e;
    if (!peek_decode(pc, &e.d, &e.fixed_cycles)) {
      break;
    }
    e.pc = pc;
    if (it_body > 0) {
      // Bake the slot's static condition (the SB_INSN gate applies it) and
      // the inside-IT rule that only compares write flags.
      e.d.insn.cond = it_conds[static_cast<std::size_t>(it_pos)];
      e.klass = classify(e.d.insn, pc, mpu_ != nullptr, &e.set);
      // Only the contiguous pure in-dispatch range [nop, adr] may sit in a
      // body: no generic funnel, no memory slow path, no pc change.
      if (static_cast<std::uint8_t>(e.klass) <
              static_cast<std::uint8_t>(ExecClass::nop) ||
          static_cast<std::uint8_t>(e.klass) >
              static_cast<std::uint8_t>(ExecClass::adr)) {
        it_body = -1;  // unspecializable body: cut before the IT entry
        break;
      }
      const Op op = e.d.insn.op;
      e.set = e.set && (op == Op::cmp || op == Op::cmn || op == Op::tst ||
                        op == Op::teq);
      e.it_info = static_cast<std::uint8_t>(++it_pos);
      --it_body;
    } else {
      terminated = is_terminator(e.d.insn);
      e.klass = classify(e.d.insn, pc, mpu_ != nullptr, &e.set);
      if (e.d.insn.op == Op::it &&
          (it_body = it_body_len(e.d.insn)) > 0) {
        // Snapshot the exact start_it() expansion (the core is outside any
        // IT block during formation), then rewind: the body runs on baked
        // conditions and cold paths rebuild this state when needed.
        start_it(e.d.insn);
        it_conds = it_conds_;
        clear_it_state();
        it_pos = 0;
        it_index = out.size();
        e.klass = ExecClass::it_;
        e.set = false;
      }
    }
    e.base_cycles = std::max(e.fixed_cycles, config_.timings.data_op);
    out.push_back(e);
    pc += static_cast<std::uint32_t>(e.d.size);
  }
  if (it_body != 0) {
    // Half-chained IT body (ran out of room, or a slot was rejected):
    // never leave one in a block — cut back to just before the IT.
    out.resize(it_index);
  }
  if (out.size() < 2) {
    out.clear();
    return nullptr;  // chaining one entry buys nothing over per-insn
  }
  SuperblockCache::Block* b = sb.install(start_pc, privileged_);
  code_snoop_.widen(start_pc, b->end_pc);
  return b;
}

// ----- threaded-dispatch executor --------------------------------------------

// One X per ExecClass enumerator, in declaration order (the computed-goto
// table is built from this list; the static_assert below pins the count).
#define ACES_SB_FOR_EACH_CLASS(X)                                           \
  X(generic) X(nop) X(mov) X(mvn) X(add) X(adc) X(sub) X(sbc) X(rsb)        \
  X(cmp) X(cmn) X(and_) X(orr) X(eor) X(bic) X(tst) X(teq) X(shift)         \
  X(mul) X(movw) X(movt) X(ubfx) X(sxtb) X(sxth) X(uxtb) X(uxth) X(adr)     \
  X(it_) X(branch) X(cbz)                                                   \
  X(ldr_imm) X(ldrb_imm) X(ldrh_imm) X(ldr_reg) X(ldrb_reg) X(ldrh_reg)     \
  X(str_imm) X(strb_imm) X(strh_imm) X(str_reg) X(strb_reg) X(strh_reg)

#if defined(__GNUC__) && !defined(ACES_SB_SWITCH_DISPATCH)
#define ACES_SB_THREADED 1
#define ACES_SB_DISPATCH() goto* kLabels[static_cast<std::size_t>(e->klass)]
#else
#define ACES_SB_THREADED 0
#define ACES_SB_DISPATCH() goto dispatch_switch
#endif

// The hot instruction boundary, expanded INLINE at the end of every handler
// (not a shared label): each handler gets its own indirect-branch site, so
// a fixed entry sequence trains one BTB slot per (class, successor) pair
// instead of funneling every prediction through a single site. Cold
// outcomes leave the straight line to shared labels.
// `estop` folds the block-end and instruction-budget exits into one
// compare: done and e advance in lockstep between recomputes (every
// dispatch_entry), so e == estop fires exactly where the separate
// `e == eend || done >= istop` checks would — boundary_slow re-derives
// which. The cycle limit keeps its own compare (its distance is not
// entry-countable: entries charge variable cycles), but it is perfectly
// predicted in the common unbounded-climit case. Attentive spans pin
// estop one entry ahead so attention still precedes every entry.
#define ACES_SB_NEXT()                            \
  do {                                            \
    ++e;                                          \
    if (e == estop) {                             \
      goto boundary_slow;                         \
    }                                             \
    if (cyc >= climit) {                          \
      goto park;                                  \
    }                                             \
    ++done;                                       \
    ACES_SB_DISPATCH();                           \
  } while (0)

void Core::run_span(std::uint64_t ilimit, std::uint64_t climit) {
#if ACES_SB_THREADED
#define ACES_SB_LABEL_ADDR(name) &&lbl_##name,
  static const void* const kLabels[] = {
      ACES_SB_FOR_EACH_CLASS(ACES_SB_LABEL_ADDR)};
#undef ACES_SB_LABEL_ADDR
  static_assert(std::size(kLabels) ==
                    static_cast<std::size_t>(ExecClass::count),
                "kLabels must cover every ExecClass in order");
#endif
  // All locals up front: the handler gotos may not jump over initialized
  // declarations at function scope.
  SuperblockCache& sb = *sbcache_;
  const CoreTimings& t = config_.timings;
  SuperblockCache::Block* block = nullptr;
  const SuperblockCache::Entry* e = nullptr;     // cursor (the hot induction)
  const SuperblockCache::Entry* ents = nullptr;  // first entry (loop-back)
  const SuperblockCache::Entry* eend = nullptr;  // one past the last entry
  const SuperblockCache::Entry* estop = nullptr;  // next mandatory slow check
  // Span-invariant attention state. All three are host-API-owned (nothing a
  // guest instruction, device write, or the hook itself can install or
  // remove mid-span), so hoisting them keeps the interior boundary down to
  // two limit compares plus predictable tests held in registers.
  const bool hooked = static_cast<bool>(cycle_hook_);
  InterruptController* const intc = intc_;
  const bool vgates = fpb_ != nullptr || mpu_ != nullptr;
  // Hot counters live in registers between sync points; SB_SYNC() flushes
  // them back (as a delta, so `done` keeps counting monotonically against
  // `istop`) before anything outside the dispatcher — hook, poll,
  // execute(), step_insn() — can observe core state, and before returning.
  std::uint64_t cyc = cycles_;
  std::uint64_t done = 0;
  std::uint64_t flushed = 0;
  const std::uint64_t istop = ilimit - insns_;  // caller ensures insns_ < ilimit
  // A span is `attentive` when an interior boundary has real work: a cycle
  // hook, live version gates, or a pending interrupt. In a quiet span none
  // of these can appear between specialized entries (hooks and the FPB/MPU
  // are host-owned, fast-path stores only touch plain RAM), so the interior
  // boundary collapses to the two limit compares. Generic entries and polls
  // can change the pending picture, so they re-evaluate it.
  bool attentive =
      hooked || vgates || (intc != nullptr && intc->dispatch_needed());
  // Rebuilds the architectural IT state per-insn would hold at the boundary
  // before `be` (body position it_info - 1): the IT entry sits it_info
  // slots back in the same block. Cold paths only — exception stacking and
  // per-insn fallback must see the exact psr bits; the dispatcher itself
  // runs the body on conditions baked into the entries.
  const auto materialize_it = [this](const SuperblockCache::Entry* be) {
    start_it(be[-static_cast<std::ptrdiff_t>(be->it_info)].d.insn);
    const auto pos = static_cast<std::uint8_t>(be->it_info - 1);
    it_pos_ = pos;
    it_remaining_ = static_cast<std::uint8_t>(it_remaining_ - pos);
  };

#define SB_SYNC()                              \
  do {                                         \
    cycles_ = cyc;                             \
    const std::uint64_t d_ = done - flushed;   \
    insns_ += d_;                              \
    stats_.instructions += d_;                 \
    sb.stats().block_instructions += d_;       \
    flushed = done;                            \
  } while (0)

  // The caller (step / run_chunk) has already serviced this boundary's
  // attention (cycle hook, WFI gate, interrupt poll), so entry and cursor
  // resume dispatch directly; run_span services every *interior* boundary.
  if (dcache_) {
    if ((fpb_ != nullptr && fpb_->version() != fpb_version_seen_) ||
        (mpu_ != nullptr && mpu_->version() != mpu_version_seen_)) {
      step_insn();  // refreshes seen versions + invalidates both caches
      return;
    }
  }
  if (sb_resume_block_ != nullptr) {
    SuperblockCache::Block* rb = sb_resume_block_;
    sb_resume_block_ = nullptr;
    if (rb->gen == sb.generation() && rb->seq == sb_resume_seq_ &&
        rb->privileged == privileged_ &&
        sb_resume_idx_ < rb->entries.size() &&
        rb->entries[sb_resume_idx_].pc == regs_[isa::pc]) {
      // Architectural state (including any IT progress) is exactly as when
      // the cursor was parked: the only code that ran in between was the
      // caller's boundary attention, and a delivered interrupt or handler
      // entry would have moved the pc.
      block = rb;
      ents = rb->entries.data();
      eend = ents + rb->entries.size();
      e = ents + sb_resume_idx_;
      if (e->it_info != 0) {
        // Parking materialized the IT state for the caller's boundary
        // attention; back in the dispatcher the baked conditions take over.
        clear_it_state();
      }
      goto dispatch_entry;
    }
  }
  if (it_active()) {
    // Blocks are formed for IT-free entry; mid-IT resume is handled by the
    // cursor path above, everything else runs per-instruction.
    step_insn();
    return;
  }
  block = sb.lookup(regs_[isa::pc], privileged_);
  if (block != nullptr) {
    ++sb.stats().hits;
  } else {
    // Hot unformable pcs (a WFI idle loop's wake point above all) would
    // otherwise pay the failed probe reads and decode on every single
    // re-entry; the negative cache drops that to one compare.
    if (sb.known_unformable(regs_[isa::pc])) {
      ++sb.stats().misses;
      step_insn();
      return;
    }
    block = form_superblock(regs_[isa::pc]);
    if (block == nullptr) {
      sb.note_unformable(regs_[isa::pc]);
      ++sb.stats().misses;
      step_insn();
      return;
    }
  }
  // The entries vector is stable for the whole span: installs only happen
  // at span entry, and invalidation flips `gen` without touching storage.
  ents = block->entries.data();
  eend = ents + block->entries.size();
  e = ents;
  goto dispatch_entry;

boundary_slow:
  // The folded e == estop exit: untangle which underlying condition fired
  // (checked in the same order the per-entry tail used to).
  if (e == eend) {
    goto span_done;
  }
  // falls through: instruction budget, attention, or a stale estop

boundary:
  // Re-entry boundary for the in-dispatch loop-back (pc_changed): the
  // handlers themselves run the inline ACES_SB_NEXT() copy of these checks.
  if (done >= istop || cyc >= climit) {
    goto park;
  }
  if (attentive) {
    goto boundary_attend;
  }
  // falls through into dispatch

dispatch_entry:
  // regs[pc] and cur_pc_ are NOT updated per entry: the classifier rejects
  // pc-reading operands, so only the handlers that need the pc (adr,
  // branches, the generic funnel) and the exit/attention points materialize
  // it. Every return path below leaves regs[pc] exactly as the
  // per-instruction tier would.
  estop = attentive ? e + 1
                    : e + static_cast<std::ptrdiff_t>(std::min(
                              static_cast<std::uint64_t>(eend - e),
                              istop - done));
  ++done;  // counts into insns_ / instructions / block_instructions at sync
  ACES_SB_DISPATCH();

#if !ACES_SB_THREADED
dispatch_switch:
  switch (e->klass) {
#define ACES_SB_CASE(name) \
  case ExecClass::name:    \
    goto lbl_##name;
    ACES_SB_FOR_EACH_CLASS(ACES_SB_CASE)
#undef ACES_SB_CASE
    case ExecClass::count:
      break;
  }
  goto lbl_generic;  // unreachable: every klass has a case
#endif

// ----- specialized handlers (rd != pc, outside IT bodies) -----
// SB_INSN opens every handler: bind the instruction and apply W32
// predication exactly like execute() — a failed condition is an annulled
// slot (max(fetch, data_op) cycles, ++predicated_skips, no effects).
#define SB_INSN                                                  \
  const Instruction& i = e->d.insn;                              \
  if (i.cond != Cond::al && !isa::cond_holds(i.cond, flags_)) {  \
    ++stats_.predicated_skips;                                   \
    cyc += e->base_cycles;                                   \
    ACES_SB_NEXT();                                             \
  }
#define SB_OP2 \
  (i.uses_imm ? static_cast<std::uint32_t>(i.imm) : regs_[i.rm])

lbl_nop : {
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_mov : {
  SB_INSN;
  const std::uint32_t v = SB_OP2;
  regs_[i.rd] = v;
  if (e->set) {
    set_nz(v);
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_mvn : {
  SB_INSN;
  const std::uint32_t v = ~SB_OP2;
  regs_[i.rd] = v;
  if (e->set) {
    set_nz(v);
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_add : {
  SB_INSN;
  regs_[i.rd] = add_with_carry(regs_[i.rn], SB_OP2, false, e->set);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_adc : {
  SB_INSN;
  regs_[i.rd] = add_with_carry(regs_[i.rn], SB_OP2, flags_.c, e->set);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_sub : {
  SB_INSN;
  regs_[i.rd] = add_with_carry(regs_[i.rn], ~SB_OP2, true, e->set);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_sbc : {
  SB_INSN;
  regs_[i.rd] = add_with_carry(regs_[i.rn], ~SB_OP2, flags_.c, e->set);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_rsb : {
  SB_INSN;
  regs_[i.rd] = add_with_carry(~regs_[i.rn], SB_OP2, true, e->set);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_cmp : {
  SB_INSN;
  (void)add_with_carry(regs_[i.rn], ~SB_OP2, true, true);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_cmn : {
  SB_INSN;
  (void)add_with_carry(regs_[i.rn], SB_OP2, false, true);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_and_ : {
  SB_INSN;
  const std::uint32_t v = regs_[i.rn] & SB_OP2;
  regs_[i.rd] = v;
  if (e->set) {
    set_nz(v);
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_orr : {
  SB_INSN;
  const std::uint32_t v = regs_[i.rn] | SB_OP2;
  regs_[i.rd] = v;
  if (e->set) {
    set_nz(v);
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_eor : {
  SB_INSN;
  const std::uint32_t v = regs_[i.rn] ^ SB_OP2;
  regs_[i.rd] = v;
  if (e->set) {
    set_nz(v);
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_bic : {
  SB_INSN;
  const std::uint32_t v = regs_[i.rn] & ~SB_OP2;
  regs_[i.rd] = v;
  if (e->set) {
    set_nz(v);
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_tst : {
  SB_INSN;
  set_nz(regs_[i.rn] & SB_OP2);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_teq : {
  SB_INSN;
  set_nz(regs_[i.rn] ^ SB_OP2);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_shift : {
  SB_INSN;
  const std::uint32_t v = regs_[i.rn];
  const std::uint32_t amount_full =
      i.uses_imm ? static_cast<std::uint32_t>(i.imm) : (regs_[i.rm] & 0xFF);
  std::uint32_t r = v;
  bool carry = flags_.c;
  if (amount_full != 0) {
    const std::uint32_t a = amount_full;
    switch (i.op) {
      case Op::lsl:
        r = a >= 32 ? 0 : v << a;
        carry = a <= 32 && ((v >> (32 - std::min(a, 32u))) & 1u);
        if (a > 32) carry = false;
        break;
      case Op::lsr:
        r = a >= 32 ? 0 : v >> a;
        carry = a <= 32 && ((v >> (std::min(a, 32u) - 1)) & 1u);
        if (a > 32) carry = false;
        break;
      case Op::asr:
        r = a >= 32 ? (v >> 31 ? 0xFFFFFFFFu : 0)
                    : static_cast<std::uint32_t>(static_cast<std::int32_t>(v) >>
                                                 static_cast<int>(a));
        carry = a >= 32 ? (v >> 31) != 0 : ((v >> (a - 1)) & 1u) != 0;
        break;
      default: {
        const unsigned rot = a % 32;
        r = support::rotate_right(v, rot);
        carry = (r >> 31) != 0;
        break;
      }
    }
  }
  regs_[i.rd] = r;
  if (e->set) {
    set_nz(r);
    if (amount_full != 0) {
      flags_.c = carry;
    }
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_mul : {
  SB_INSN;
  regs_[i.rd] = regs_[i.rn] * regs_[i.rm];
  if (e->set) {
    set_nz(regs_[i.rd]);
  }
  // Early termination reads the (possibly just-written) rm, like execute().
  cyc += std::max(e->fixed_cycles, mul_cycles(regs_[i.rm]));
}
  ACES_SB_NEXT();

lbl_movw : {
  SB_INSN;
  regs_[i.rd] = static_cast<std::uint32_t>(i.imm) & 0xFFFFu;
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_movt : {
  SB_INSN;
  regs_[i.rd] = (regs_[i.rd] & 0xFFFFu) |
                ((static_cast<std::uint32_t>(i.imm) & 0xFFFFu) << 16);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_ubfx : {
  SB_INSN;
  regs_[i.rd] =
      support::bits(regs_[i.rn], static_cast<unsigned>(i.imm), i.width);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_sxtb : {
  SB_INSN;
  regs_[i.rd] =
      static_cast<std::uint32_t>(support::sign_extend(regs_[i.rm] & 0xFF, 8));
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_sxth : {
  SB_INSN;
  regs_[i.rd] = static_cast<std::uint32_t>(
      support::sign_extend(regs_[i.rm] & 0xFFFF, 16));
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_uxtb : {
  SB_INSN;
  regs_[i.rd] = regs_[i.rm] & 0xFF;
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_uxth : {
  SB_INSN;
  regs_[i.rd] = regs_[i.rm] & 0xFFFF;
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

lbl_adr : {
  SB_INSN;
  regs_[i.rd] =
      static_cast<std::uint32_t>(support::align_down(e->pc + 4, 4)) +
      static_cast<std::uint32_t>(i.imm);
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

// The IT instruction of a fully-specialized body: its whole effect (the
// per-slot conditions) is baked into the body entries, so executing it is
// pure cost. Never predicated — its cond field is the block's first
// condition, not a guard (same rule as execute()).
lbl_it_ : {
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

// ----- direct branches (classifier-checked: target < kExcReturnBase) -----
// Taken-path parity with branch_to(): mask bit 0, charge the pipeline
// refill on top of the base cost, count the taken branch. clear_it_state()
// is skipped — specialized entries never execute inside an IT block, so
// the IT state is already clear.
lbl_branch : {
  SB_INSN;  // an untaken conditional b is an annulled slot, like execute()
  regs_[isa::pc] =
      (e->pc + static_cast<std::uint32_t>(static_cast<std::int32_t>(i.imm))) &
      ~1u;
  cyc += e->base_cycles + t.branch_taken_penalty;
  ++stats_.taken_branches;
}
  goto pc_changed;

lbl_cbz : {
  SB_INSN;
  if ((regs_[i.rn] == 0) == (i.op == Op::cbz)) {
    regs_[isa::pc] = (e->pc + static_cast<std::uint32_t>(
                                  static_cast<std::int32_t>(i.imm))) &
                     ~1u;
    cyc += e->base_cycles + t.branch_taken_penalty;
    ++stats_.taken_branches;
    goto pc_changed;
  }
  cyc += e->base_cycles;
}
  ACES_SB_NEXT();

// ----- memory fast paths (no MPU by classifier rule) -----
// A miss on the cached DirectSpan funnels the whole entry through
// execute(), which retries span acquisition and takes the virtual path.
#define SB_LOAD(SIZE, ADDR_EXPR)                                           \
  {                                                                        \
    SB_INSN;                                                               \
    const std::uint32_t addr = (ADDR_EXPR);                                \
    if (!span_covers(dspan_, addr, (SIZE)) &&                              \
        !(acquire_data_span(addr) && span_covers(dspan_, addr, (SIZE)))) { \
      goto slow_entry;                                                     \
    }                                                                      \
    regs_[i.rd] = load_le(dspan_.data + (addr - dspan_.base), (SIZE));     \
    ++stats_.loads;                                                        \
    cyc += std::max(e->fixed_cycles, t.data_op + t.load_extra +        \
                                             dspan_.read_cycles);          \
  }                                                                        \
  ACES_SB_NEXT();

#define SB_STORE(SIZE, ADDR_EXPR)                                           \
  {                                                                         \
    SB_INSN;                                                                \
    const std::uint32_t addr = (ADDR_EXPR);                                 \
    if ((!span_covers(dspan_, addr, (SIZE)) &&                              \
         !(acquire_data_span(addr) && span_covers(dspan_, addr, (SIZE)))) || \
        !dspan_.writable) {                                                 \
      goto slow_entry;                                                      \
    }                                                                       \
    store_le(dspan_.data + (addr - dspan_.base), (SIZE), regs_[i.rd]);      \
    ++stats_.stores;                                                        \
    cyc += std::max(e->fixed_cycles, t.data_op + t.store_extra +        \
                                             dspan_.write_cycles);          \
    dcache_->snoop_write(addr, (SIZE));                                     \
    sb.snoop_write(addr, (SIZE));                                           \
    if (block->gen != sb.generation()) {                                    \
      regs_[isa::pc] = e->pc + static_cast<std::uint32_t>(e->d.size);       \
      SB_SYNC();                                                            \
      return; /* self-modifying store killed this very block */             \
    }                                                                       \
  }                                                                         \
  ACES_SB_NEXT();

lbl_ldr_imm:
  SB_LOAD(4, regs_[i.rn] + static_cast<std::uint32_t>(i.imm))
lbl_ldrb_imm:
  SB_LOAD(1, regs_[i.rn] + static_cast<std::uint32_t>(i.imm))
lbl_ldrh_imm:
  SB_LOAD(2, regs_[i.rn] + static_cast<std::uint32_t>(i.imm))
lbl_ldr_reg:
  SB_LOAD(4, regs_[i.rn] + regs_[i.rm])
lbl_ldrb_reg:
  SB_LOAD(1, regs_[i.rn] + regs_[i.rm])
lbl_ldrh_reg:
  SB_LOAD(2, regs_[i.rn] + regs_[i.rm])

lbl_str_imm:
  SB_STORE(4, regs_[i.rn] + static_cast<std::uint32_t>(i.imm))
lbl_strb_imm:
  SB_STORE(1, regs_[i.rn] + static_cast<std::uint32_t>(i.imm))
lbl_strh_imm:
  SB_STORE(2, regs_[i.rn] + static_cast<std::uint32_t>(i.imm))
lbl_str_reg:
  SB_STORE(4, regs_[i.rn] + regs_[i.rm])
lbl_strb_reg:
  SB_STORE(1, regs_[i.rn] + regs_[i.rm])
lbl_strh_reg:
  SB_STORE(2, regs_[i.rn] + regs_[i.rm])

#undef SB_LOAD
#undef SB_STORE
#undef SB_INSN
#undef SB_OP2

// ----- generic funnel: full execute() semantics for one entry -----
lbl_generic:
slow_entry : {
  // execute() expects the per-insn contract: cur_pc_ at the instruction,
  // regs[pc] sequentially advanced, real counters current.
  cur_pc_ = e->pc;
  regs_[isa::pc] = e->pc + static_cast<std::uint32_t>(e->d.size);
  SB_SYNC();
  std::uint32_t exec_cycles = 0;
  execute(e->d, &exec_cycles);
  cyc = cycles_ + std::max(e->fixed_cycles, exec_cycles);
  if (halt_ != HaltReason::none) {
    SB_SYNC();
    return;
  }
  if (regs_[isa::pc] != e->pc + static_cast<std::uint32_t>(e->d.size)) {
    goto pc_changed;
  }
  if (block->gen != sb.generation()) {
    SB_SYNC();
    return;  // a store / snooped write inside execute() killed this block
  }
  // An MMIO store may have raised an interrupt line synchronously. Re-pin
  // estop to the very next boundary so the tail's folded check routes it
  // to boundary_attend before another entry runs.
  if (intc != nullptr && intc->dispatch_needed()) {
    attentive = true;
    estop = e + 1;
  }
}
  ACES_SB_NEXT();

span_done:
  regs_[isa::pc] = block->end_pc;  // fall-through past the last entry
  SB_SYNC();
  return;  // untaken terminator: outer loop re-enters per protocol

park:
  // An interior boundary hit the instruction or cycle budget: park a resume
  // cursor so the next call (after the caller services the boundary — hook,
  // poll, WFI gate) re-enters dispatch at this exact entry.
  regs_[isa::pc] = e->pc;
  SB_SYNC();
  if (e->it_info != 0) {
    materialize_it(e);  // parked mid-IT-body: leave the real state live
  }
  sb_resume_block_ = block;
  sb_resume_seq_ = block->seq;
  sb_resume_idx_ = static_cast<std::uint32_t>(e - ents);
  return;

boundary_attend:
  // Present the per-insn boundary state to the hook / controller: regs[pc]
  // at the next entry (exception stacking pushes it), counters current.
  // Inside a specialized IT body that includes the live IT state — the
  // stacked psr must carry the IT bits, and every step_insn fallback below
  // must see the body the way the per-insn tier would.
  regs_[isa::pc] = e->pc;
  if (e->it_info != 0) {
    materialize_it(e);
  }
  if (hooked) {
    SB_SYNC();
    cycle_hook_(cycles_);
    cyc = cycles_;
    if (block->gen != sb.generation()) {
      step_insn();  // the hook invalidated decodes (e.g. injector upset)
      return;
    }
  }
  if (intc != nullptr && intc->dispatch_needed()) {
    SB_SYNC();
    intc->poll(*this);
    if (halt_ != HaltReason::none) {
      return;
    }
    if (regs_[isa::pc] != e->pc || block->gen != sb.generation() ||
        privileged_ != block->privileged) {
      // Vectored to a handler (or hardware stacking snooped this block):
      // this boundary is already serviced, so retire one instruction
      // per-insn before handing back to the outer loop.
      step_insn();
      return;
    }
    cyc = cycles_;
    // The poll may have drained the pending set; re-evaluate so the span
    // can go quiet again (hook and gates keep it attentive for good).
    attentive =
        hooked || vgates || (intc != nullptr && intc->dispatch_needed());
  }
  if (vgates &&
      ((fpb_ != nullptr && fpb_->version() != fpb_version_seen_) ||
       (mpu_ != nullptr && mpu_->version() != mpu_version_seen_))) {
    SB_SYNC();
    step_insn();  // a mid-block remap/reconfig: refresh + re-decode fresh
    return;
  }
  if (e->it_info != 0) {
    clear_it_state();  // attention over: the baked conditions take over
  }
  goto dispatch_entry;

pc_changed:
  // A generic entry moved the pc (taken branch, fault vector, exception
  // return, ldm restart). The hot self-loop — a backward branch to this
  // block's own head — re-enters without leaving the dispatcher.
  if (regs_[isa::pc] == block->start_pc && block->gen == sb.generation() &&
      block->privileged == privileged_ && !it_active() && !wfi_ &&
      halt_ == HaltReason::none) {
    ++sb.stats().hits;
    e = ents;
    goto boundary;
  }
  SB_SYNC();
  return;
}

#undef SB_SYNC
#undef ACES_SB_NEXT
#undef ACES_SB_DISPATCH
#undef ACES_SB_THREADED
#undef ACES_SB_FOR_EACH_CLASS

}  // namespace aces::cpu
