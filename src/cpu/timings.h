// Cycle cost model for the UC32 cores.
//
// Two calibrated profiles reproduce the paper's comparison hardware:
//   legacy_hp  — a mid-90s 3-stage pipeline (ARM7-class): multi-cycle
//                loads/stores, early-termination multiplier, 2-cycle branch
//                refill, software-managed interrupt entry.
//   modern_mcu — a 2000s microcontroller core (Cortex-M3-class):
//                single-cycle multiply, hardware divide, buffered stores,
//                faster refill, hardware-stacked interrupt entry with
//                tail-chaining.
// The per-instruction time charged by the core is
//   max(fetch_cycles, execute_cycles)
// modeling an in-order pipeline whose fetch of instruction k+1 overlaps the
// execute of instruction k. Flash-resident code is therefore fetch-bound —
// exactly the regime where the paper's code-density arguments (§2.1, §2.2)
// bite. Every dispatch tier charges from this one model: the superblock
// executor pre-folds max(fixed fetch cost, data_op) into each chained
// entry at formation time, so changing a cost here re-prices all tiers
// identically (the differential fuzzer holds them to it).
#ifndef ACES_CPU_TIMINGS_H
#define ACES_CPU_TIMINGS_H

#include <cstdint>

namespace aces::cpu {

struct CoreTimings {
  // Execute-stage costs (cycles), excluding memory-port time which is
  // charged from the bus model.
  std::uint32_t data_op = 1;
  std::uint32_t mul_base = 1;         // plus early-termination extra
  std::uint32_t mul_per_byte = 1;     // extra per significant operand byte
  bool mul_early_termination = true;  // false => always mul_base
  std::uint32_t div_base = 2;         // hardware divide (B32 cores)
  std::uint32_t div_bits_per_cycle = 4;
  std::uint32_t load_extra = 2;       // beyond the data-port cycles
  std::uint32_t store_extra = 1;
  std::uint32_t ldm_base = 1;         // plus per-transfer port time
  std::uint32_t branch_taken_penalty = 2;  // pipeline refill
  std::uint32_t branch_link_extra = 0;

  // Exception machinery.
  std::uint32_t exception_entry_base = 3;  // recognize + mode switch
  std::uint32_t exception_return_base = 2;
  bool hardware_stacking = false;  // IVC: push 8 registers in hardware
  std::uint32_t tail_chain_cycles = 6;

  [[nodiscard]] static CoreTimings legacy_hp() {
    CoreTimings t;
    t.mul_base = 1;
    t.mul_per_byte = 1;
    t.mul_early_termination = true;
    t.load_extra = 2;
    t.store_extra = 1;
    t.branch_taken_penalty = 2;
    t.exception_entry_base = 3;
    t.hardware_stacking = false;
    return t;
  }

  [[nodiscard]] static CoreTimings modern_mcu() {
    CoreTimings t;
    t.mul_base = 1;
    t.mul_early_termination = false;  // single-cycle multiplier array
    t.load_extra = 1;
    t.store_extra = 0;  // store buffer
    t.branch_taken_penalty = 1;
    t.exception_entry_base = 2;
    t.hardware_stacking = true;
    return t;
  }
};

}  // namespace aces::cpu

#endif  // ACES_CPU_TIMINGS_H
