#include "cpu/profiles.h"

#include "support/check.h"

namespace aces::cpu::profiles {

SystemBuilder legacy_hp(isa::Encoding enc) {
  ACES_CHECK_MSG(enc != isa::Encoding::b32,
                 "the legacy HP core predates the B32 encoding");
  return SystemBuilder()
      .encoding(enc)
      .timings(CoreTimings::legacy_hp())
      .name("legacy-hp")
      .clock_hz(40'000'000);  // fetch-bound flash part of the §2 era
}

SystemBuilder cached_hp(isa::Encoding enc) {
  // The I-cache is what lets the same core clock up past the flash.
  return legacy_hp(enc).icache(mem::CacheConfig{}).name("cached-hp").clock_hz(
      80'000'000);
}

SystemBuilder modern_mcu() {
  return SystemBuilder()
      .encoding(isa::Encoding::b32)
      .timings(CoreTimings::modern_mcu())
      .name("modern-mcu")
      .clock_hz(50'000'000);  // §3.2-generation microcontroller
}

SystemBuilder for_encoding(isa::Encoding enc) {
  return enc == isa::Encoding::b32 ? modern_mcu() : legacy_hp(enc);
}

SystemBuilder by_name(std::string_view name) {
  if (name == "legacy-hp") {
    return legacy_hp();
  }
  if (name == "cached-hp") {
    return cached_hp();
  }
  if (name == "modern-mcu") {
    return modern_mcu();
  }
  ACES_CHECK_MSG(false, "unknown system profile '" + std::string(name) +
                            "' (expected legacy-hp, cached-hp or modern-mcu)");
  return SystemBuilder();  // unreachable
}

}  // namespace aces::cpu::profiles
