// ClassicVic: the §3.1 high-performance processor's interrupt scheme.
//
// Two request lines — IRQ and FIQ — with no hardware context saving: the
// core banks only the return address and status; the handler's own prologue
// (push {..}) and epilogue (pop {..}) are the software preamble/postamble
// whose cost Figure 4 contrasts with hardware stacking. FIQ preempts IRQ;
// optionally FIQ is non-maskable (the §3.1.2 NMI enhancement, so a watchdog
// can always be serviced even inside interrupt-locked critical sections).
#ifndef ACES_CPU_VIC_H
#define ACES_CPU_VIC_H

#include <cstdint>
#include <vector>

#include "cpu/core.h"
#include "cpu/intc.h"

namespace aces::cpu {

class ClassicVic final : public InterruptController {
 public:
  static constexpr unsigned kIrq = 0;
  static constexpr unsigned kFiq = 1;

  struct Config {
    std::uint32_t irq_handler = 0;
    std::uint32_t fiq_handler = 0;
    bool fiq_is_nmi = false;  // §3.1.2: FIQ ignores all masking
  };

  explicit ClassicVic(Config config) : config_(config) {}

  void raise(unsigned line, std::uint64_t now) override;
  void clear(unsigned line) override;
  [[nodiscard]] bool would_preempt(const Core& core) const override;
  void poll(Core& core) override;
  bool exception_return(Core& core, std::uint32_t target) override;

  void set_fiq_enabled(bool e) { fiq_enabled_ = e; }

  // Entry latency samples (cycles from raise to first handler instruction),
  // per line, in arrival order.
  [[nodiscard]] const std::vector<std::uint64_t>& latencies(
      unsigned line) const {
    return latency_[line];
  }
  void reset_stats() {
    latency_[0].clear();
    latency_[1].clear();
  }
  // Clears pending/active interrupt state (system reset).
  void reset() {
    active_.clear();
    pending_[0] = false;
    pending_[1] = false;
    pending_count_ = 0;
  }
  [[nodiscard]] unsigned active_depth() const {
    return static_cast<unsigned>(active_.size());
  }

 private:
  struct Saved {
    std::uint32_t return_pc = 0;
    std::uint32_t psr = 0;
    std::uint32_t saved_lr = 0;
    unsigned line = 0;
  };

  void enter(Core& core, unsigned line);

  Config config_;
  bool fiq_enabled_ = true;
  bool pending_[2] = {false, false};
  std::uint64_t raised_at_[2] = {0, 0};
  std::vector<Saved> active_;
  std::vector<std::uint64_t> latency_[2];
};

}  // namespace aces::cpu

#endif  // ACES_CPU_VIC_H
