// Interrupt controller interface.
//
// Two implementations reproduce the paper's two interrupt philosophies:
//   ClassicVic (vic.h) — §3.1: IRQ/FIQ lines, no hardware register saving
//     (the handler's own push/pop is the "software preamble/postamble"),
//     optional non-maskable FIQ for watchdog service.
//   Ivc (ivc.h) — §3.2.1 / Figure 4: prioritized lines, hardware stacking
//     of the caller-saved context overlapped with the vector fetch, and
//     tail-chaining of back-to-back interrupts.
#ifndef ACES_CPU_INTC_H
#define ACES_CPU_INTC_H

#include <cstdint>

namespace aces::cpu {

class Core;

class InterruptController {
 public:
  virtual ~InterruptController() = default;

  // Environment side: asserts/clears an interrupt line. `now` is the cycle
  // at which the request is raised (used for latency accounting).
  virtual void raise(unsigned line, std::uint64_t now) = 0;
  virtual void clear(unsigned line) = 0;

  // True if an enabled request would preempt the core right now (consulted
  // by wfi and by the restartable ldm/stm machinery).
  [[nodiscard]] virtual bool would_preempt(const Core& core) const = 0;

  // Called at every instruction boundary; performs exception entry when a
  // request is due (modifies core state and charges cycles).
  virtual void poll(Core& core) = 0;

  // Handles a branch to an exception-return magic address. Returns false
  // if the value does not belong to this controller.
  virtual bool exception_return(Core& core, std::uint32_t target) = 0;

  // Fast-path gate: true while any request line is pending (deliverable or
  // masked). The core skips poll()/would_preempt() entirely while false,
  // keeping the no-pending-IRQ common case branch-cheap. Implementations
  // keep pending_count_ current in raise/clear/dispatch; it must never be
  // zero while a line is asserted (a conservative overcount merely costs a
  // redundant poll).
  [[nodiscard]] bool dispatch_needed() const { return pending_count_ != 0; }

 protected:
  unsigned pending_count_ = 0;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_INTC_H
