// Named system presets for the paper's three MCU generations.
//
// The paper's single-ECU experiments all run on one of three machine
// configurations; giving them names makes every test/bench/example state
// which generation it models instead of re-deriving timing tables:
//
//   legacy_hp   §2    fetch-bound high-performance core running W32 (or
//                     N16) straight from embedded flash — the baseline
//                     whose code-size/performance tension motivates the
//                     blended encoding.
//   cached_hp   §3.1  the same core behind an I-cache, restoring
//                     sequential-fetch performance at the cost of the
//                     predictability questions §3.1.2 studies.
//   modern_mcu  §3.2  the microcontroller-era B32 part: hardware-stacking
//                     interrupt timings and single-cycle memories.
//
// Each preset returns a SystemBuilder, so call sites layer their deltas on
// top: profiles::modern_mcu().flash_size(128 * 1024).bitband(0x1000).
//
// Every preset declares a generation-typical clock rate (legacy_hp 40 MHz,
// cached_hp 80 MHz, modern_mcu 50 MHz) so a built System can join a
// co-simulation with a bare sys.bind(sim); override per ECU with
// .clock_hz(...).
#ifndef ACES_CPU_PROFILES_H
#define ACES_CPU_PROFILES_H

#include <array>
#include <string_view>

#include "cpu/system.h"

namespace aces::cpu::profiles {

// §2: legacy fetch-bound HP core (flash at its default 5-cycle line time).
[[nodiscard]] SystemBuilder legacy_hp(isa::Encoding enc = isa::Encoding::w32);

// §3.1: legacy HP core with an I-cache over the flash window.
[[nodiscard]] SystemBuilder cached_hp(isa::Encoding enc = isa::Encoding::w32);

// §3.2: modern B32 microcontroller.
[[nodiscard]] SystemBuilder modern_mcu();

// The natural profile for an encoding: b32 -> modern_mcu, else legacy_hp.
[[nodiscard]] SystemBuilder for_encoding(isa::Encoding enc);

// Lookup by name: "legacy-hp", "cached-hp", "modern-mcu". Throws
// std::logic_error on an unknown name.
[[nodiscard]] SystemBuilder by_name(std::string_view name);

// The preset names, for CLI/help listings.
[[nodiscard]] constexpr std::array<std::string_view, 3> names() {
  return {"legacy-hp", "cached-hp", "modern-mcu"};
}

}  // namespace aces::cpu::profiles

#endif  // ACES_CPU_PROFILES_H
