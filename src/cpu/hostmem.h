// Raw host-storage accessors shared by the per-instruction and superblock
// execution tiers (core.cpp, superblock.cpp). Little-endian, like ByteStore;
// the per-byte loops compile down to plain loads/stores.
#ifndef ACES_CPU_HOSTMEM_H
#define ACES_CPU_HOSTMEM_H

#include <cstdint>

#include "mem/device.h"

namespace aces::cpu::hostmem {

[[nodiscard]] inline std::uint32_t load_le(const std::uint8_t* p,
                                           unsigned size) {
  std::uint32_t v = 0;
  for (unsigned k = 0; k < size; ++k) {
    v |= static_cast<std::uint32_t>(p[k]) << (8 * k);
  }
  return v;
}

inline void store_le(std::uint8_t* p, unsigned size, std::uint32_t v) {
  for (unsigned k = 0; k < size; ++k) {
    p[k] = static_cast<std::uint8_t>(v >> (8 * k));
  }
}

// Naturally aligned 1/2/4-byte access fully inside the span?
[[nodiscard]] inline bool span_covers(const mem::DirectSpan& s,
                                      std::uint32_t addr, unsigned size) {
  // s.size >= 4 is guaranteed at acquisition, so size <= s.size never
  // underflows the subtraction.
  return s.size != 0 && addr >= s.base && addr - s.base <= s.size - size &&
         (addr & (size - 1)) == 0;
}

}  // namespace aces::cpu::hostmem

#endif  // ACES_CPU_HOSTMEM_H
