// Canonical single-ECU system wiring.
//
// Address map (loosely mirroring common automotive MCU layouts):
//   0x0000'0000  flash          (code + literal pools + vector tables)
//   0x1000'0000  TCM            (optional)
//   0x2000'0000  SRAM           (data + stacks)
//   0x2200'0000  bit-band alias (optional, over the first SRAM bytes)
//
// Tests, benches and examples assemble a program, wire a System with the
// profile under study (legacy W32/N16 core, cached HP core, modern B32
// MCU), load the image and run. The instruction port can be direct flash
// (fetch-bound, §2.2 regime) or an I-cache in front of it (§3.1 regime).
#ifndef ACES_CPU_SYSTEM_H
#define ACES_CPU_SYSTEM_H

#include <optional>

#include "cpu/core.h"
#include "isa/assembler.h"
#include "mem/bitband.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/flash.h"
#include "mem/sram.h"
#include "mem/tcm.h"

namespace aces::cpu {

inline constexpr std::uint32_t kFlashBase = 0x0000'0000u;
inline constexpr std::uint32_t kTcmBase = 0x1000'0000u;
inline constexpr std::uint32_t kSramBase = 0x2000'0000u;
inline constexpr std::uint32_t kBitBandBase = 0x2200'0000u;

struct SystemConfig {
  CoreConfig core;
  mem::FlashConfig flash;
  std::uint32_t sram_bytes = 64 * 1024;
  std::optional<mem::TcmConfig> tcm;
  std::optional<mem::CacheConfig> icache;  // over the flash window
  std::optional<mem::CacheConfig> dcache;  // over flash+sram
  std::uint32_t bitband_bytes = 0;         // alias over SRAM start (0 = off)
};

class System {
 public:
  explicit System(const SystemConfig& config)
      : flash_(config.flash),
        sram_("sram", config.sram_bytes),
        iport_direct_(bus_),
        dport_direct_(bus_) {
    bus_.attach(kFlashBase, flash_);
    bus_.attach(kSramBase, sram_);
    if (config.tcm) {
      tcm_.emplace(*config.tcm);
      bus_.attach(kTcmBase, *tcm_);
    }
    if (config.bitband_bytes != 0) {
      bitband_.emplace(sram_, config.bitband_bytes);
      bus_.attach(kBitBandBase, *bitband_);
    }
    if (config.icache) {
      mem::CacheConfig c = *config.icache;
      c.cacheable_base = kFlashBase;
      c.cacheable_limit = kFlashBase + config.flash.size_bytes;
      icache_.emplace(c, bus_);
    }
    if (config.dcache) {
      mem::CacheConfig c = *config.dcache;
      dcache_.emplace(c, bus_);
    }
    core_.emplace(config.core,
                  icache_ ? static_cast<mem::MemPort&>(*icache_)
                          : static_cast<mem::MemPort&>(iport_direct_),
                  dcache_ ? static_cast<mem::MemPort&>(*dcache_)
                          : static_cast<mem::MemPort&>(dport_direct_));
  }

  // Loads an assembled image (usually into flash).
  void load(const isa::Image& image) {
    ACES_CHECK_MSG(
        bus_.load_image(image.base, image.bytes.data(), image.size()),
        "image does not fit the memory map");
  }

  // Convenience: reset to `entry` with the stack at the top of SRAM, pass
  // up to four arguments, run, and return r0.
  std::uint32_t call(std::uint32_t entry,
                     std::initializer_list<std::uint32_t> args = {},
                     std::uint64_t max_insns = 10'000'000) {
    core_->reset(entry, initial_sp());
    unsigned k = 0;
    for (const std::uint32_t a : args) {
      core_->set_reg(static_cast<isa::Reg>(k++), a);
    }
    const HaltReason r = core_->run(max_insns);
    ACES_CHECK_MSG(r == HaltReason::exited,
                   "program did not exit cleanly (halt reason " +
                       std::to_string(static_cast<int>(r)) + ")");
    return core_->reg(isa::r0);
  }

  [[nodiscard]] std::uint32_t initial_sp() const {
    return kSramBase + sram_.size_bytes();
  }

  [[nodiscard]] Core& core() { return *core_; }
  [[nodiscard]] mem::Bus& bus() { return bus_; }
  [[nodiscard]] mem::Flash& flash() { return flash_; }
  [[nodiscard]] mem::Sram& sram() { return sram_; }
  [[nodiscard]] mem::Tcm* tcm() { return tcm_ ? &*tcm_ : nullptr; }
  [[nodiscard]] mem::Cache* icache() { return icache_ ? &*icache_ : nullptr; }
  [[nodiscard]] mem::Cache* dcache() { return dcache_ ? &*dcache_ : nullptr; }

 private:
  mem::Bus bus_;
  mem::Flash flash_;
  mem::Sram sram_;
  std::optional<mem::Tcm> tcm_;
  std::optional<mem::BitBandAlias> bitband_;
  mem::DirectPort iport_direct_;
  mem::DirectPort dport_direct_;
  std::optional<mem::Cache> icache_;
  std::optional<mem::Cache> dcache_;
  std::optional<Core> core_;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_SYSTEM_H
