// Declarative single-ECU system construction.
//
// Automotive MCUs are *configurations*: the same UC32 core composed with
// different memories, protection hardware and network peripherals per ECU
// role. SystemBuilder is the machine-description layer that captures one
// such configuration as a value — memories at arbitrary bases, optional
// caches, an MPU, a soft-error injector, an interrupt controller and any
// number of memory-mapped peripherals — and System is the thin facade that
// instantiates and wires it.
//
// Default address map (every base is overridable per build):
//   0x0000'0000  flash          (code + literal pools + vector tables)
//   0x1000'0000  TCM            (optional)
//   0x2000'0000  SRAM           (data + stacks)
//   0x2200'0000  bit-band alias (optional, over the first SRAM bytes)
//   0x4000'0000  peripherals    (by convention; attach anything anywhere)
//
// A builder is a pure description: copyable, reusable, comparable across
// experiments. Building twice yields two independent systems. The three
// paper profiles (legacy W32/N16, cached HP, modern B32) live as named
// presets in cpu/profiles.h.
//
//   cpu::System sys(cpu::profiles::modern_mcu()
//                       .flash_size(128 * 1024)
//                       .bitband(0x1000)
//                       .device(0x4000'0000, can_controller));
#ifndef ACES_CPU_SYSTEM_H
#define ACES_CPU_SYSTEM_H

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cpu/core.h"
#include "cpu/ivc.h"
#include "cpu/vic.h"
#include "isa/assembler.h"
#include "mem/bitband.h"
#include "mem/bus.h"
#include "mem/cache.h"
#include "mem/fault_injector.h"
#include "mem/flash.h"
#include "mem/mpu.h"
#include "mem/sram.h"
#include "mem/tcm.h"
#include "sim/simulation.h"

namespace aces::cpu {

inline constexpr std::uint32_t kFlashBase = 0x0000'0000u;
inline constexpr std::uint32_t kTcmBase = 0x1000'0000u;
inline constexpr std::uint32_t kSramBase = 0x2000'0000u;
inline constexpr std::uint32_t kBitBandBase = 0x2200'0000u;
inline constexpr std::uint32_t kPeriphBase = 0x4000'0000u;

class System;
class SystemBinding;

class SystemBuilder {
 public:
  // Factory for a device the built System will own (keeps the builder
  // copyable: each build() manufactures a fresh instance).
  using DeviceFactory = std::function<std::unique_ptr<mem::Device>()>;

  SystemBuilder() = default;

  // ----- identity / clocking -----
  // Display name for co-simulation diagnostics ("door", "gateway", ...).
  SystemBuilder& name(std::string n) { name_ = std::move(n); return *this; }
  [[nodiscard]] const std::string& name() const { return name_; }
  // Core clock frequency. This is what places the core's cycle counter on
  // the shared co-simulation time base when the built System is bound to a
  // sim::Simulation; the named profiles declare generation-typical
  // defaults.
  SystemBuilder& clock_hz(std::uint64_t hz) { clock_hz_ = hz; return *this; }
  [[nodiscard]] std::uint64_t clock_hz() const { return clock_hz_; }

  // ----- core -----
  SystemBuilder& core(const CoreConfig& c) { core_ = c; return *this; }
  SystemBuilder& encoding(isa::Encoding e) { core_.encoding = e; return *this; }
  SystemBuilder& timings(const CoreTimings& t) { core_.timings = t; return *this; }
  SystemBuilder& restartable_ldm(bool on = true) {
    core_.restartable_ldm = on;
    return *this;
  }
  SystemBuilder& privileged(bool on) { core_.privileged = on; return *this; }
  // Decoded-instruction cache size (0 disables — the differential-test
  // reference). Host speed only; modeled cycles are identical either way.
  SystemBuilder& decode_cache_lines(std::uint32_t lines) {
    core_.decode_cache_lines = lines;
    return *this;
  }
  // Host-side dispatch speed tier (off / per_insn / superblock); modeled
  // cycles are identical on every tier. Defaults to superblock; clamped to
  // off when decode_cache_lines is 0.
  SystemBuilder& dispatch_tier(DispatchTier tier) {
    core_.dispatch_tier = tier;
    return *this;
  }

  // ----- memories -----
  SystemBuilder& flash(const mem::FlashConfig& c,
                       std::uint32_t base = kFlashBase) {
    flash_ = c;
    flash_base_ = base;
    return *this;
  }
  SystemBuilder& flash_size(std::uint32_t bytes) {
    flash_.size_bytes = bytes;
    return *this;
  }
  SystemBuilder& flash_wait(std::uint32_t line_access_cycles) {
    flash_.line_access_cycles = line_access_cycles;
    return *this;
  }
  SystemBuilder& flash_dual_buffer(bool on = true) {
    flash_.dual_buffer = on;
    return *this;
  }
  SystemBuilder& sram(std::uint32_t bytes, std::uint32_t base = kSramBase) {
    sram_bytes_ = bytes;
    sram_base_ = base;
    return *this;
  }
  SystemBuilder& tcm(const mem::TcmConfig& c, std::uint32_t base = kTcmBase) {
    tcm_ = c;
    tcm_base_ = base;
    return *this;
  }
  // The I-cache window is clamped to the flash region (instructions only);
  // the D-cache window is taken from the config verbatim.
  SystemBuilder& icache(const mem::CacheConfig& c) { icache_ = c; return *this; }
  SystemBuilder& dcache(const mem::CacheConfig& c) { dcache_ = c; return *this; }
  SystemBuilder& bitband(std::uint32_t bytes,
                         std::uint32_t base = kBitBandBase) {
    bitband_bytes_ = bytes;
    bitband_base_ = base;
    return *this;
  }

  // ----- protection / fault layers -----
  SystemBuilder& mpu(const mem::MpuConfig& c) { mpu_ = c; return *this; }
  // The built System owns the injector, attaches every cache/TCM it builds
  // and advances it from the core's cycle hook — no manual plumbing.
  SystemBuilder& fault_injector(const mem::FaultInjectorConfig& c,
                                std::uint64_t seed) {
    injector_ = c;
    injector_seed_ = seed;
    return *this;
  }

  // ----- peripherals -----
  // Attaches an externally-owned device (must outlive the built System).
  SystemBuilder& device(std::uint32_t base, mem::Device& dev) {
    external_.push_back(ExternalDevice{base, &dev});
    return *this;
  }
  // Attaches a device the System will own; `make` runs once per build().
  SystemBuilder& device(std::uint32_t base, DeviceFactory make) {
    owned_.push_back(OwnedDevice{base, std::move(make)});
    return *this;
  }

  // ----- interrupt controller (owned by the built System) -----
  SystemBuilder& vic(const ClassicVic::Config& c) {
    vic_ = c;
    ivc_.reset();
    return *this;
  }
  SystemBuilder& ivc(const Ivc::Config& c) {
    ivc_ = c;
    vic_.reset();
    return *this;
  }

  // Materializes the description (guaranteed copy elision: the System is
  // constructed in place at the call site, never moved).
  [[nodiscard]] System build() const;

 private:
  friend class System;

  struct ExternalDevice {
    std::uint32_t base = 0;
    mem::Device* dev = nullptr;
  };
  struct OwnedDevice {
    std::uint32_t base = 0;
    DeviceFactory make;
  };

  std::string name_ = "ecu";
  std::uint64_t clock_hz_ = 0;  // 0: bind() requires an explicit rate
  CoreConfig core_;
  mem::FlashConfig flash_;
  std::uint32_t flash_base_ = kFlashBase;
  std::uint32_t sram_bytes_ = 64 * 1024;
  std::uint32_t sram_base_ = kSramBase;
  std::optional<mem::TcmConfig> tcm_;
  std::uint32_t tcm_base_ = kTcmBase;
  std::optional<mem::CacheConfig> icache_;
  std::optional<mem::CacheConfig> dcache_;
  std::uint32_t bitband_bytes_ = 0;
  std::uint32_t bitband_base_ = kBitBandBase;
  std::optional<mem::MpuConfig> mpu_;
  std::optional<mem::FaultInjectorConfig> injector_;
  std::uint64_t injector_seed_ = 1;
  std::vector<ExternalDevice> external_;
  std::vector<OwnedDevice> owned_;
  std::optional<ClassicVic::Config> vic_;
  std::optional<Ivc::Config> ivc_;
};

// The instantiated machine. Thin facade: owns the devices the builder
// described, wires them to one core, and exposes load/run conveniences.
// Pinned in memory (internal wiring holds references into the object).
class System {
 public:
  explicit System(const SystemBuilder& builder);

  System(const System&) = delete;
  System& operator=(const System&) = delete;

  // Loads an assembled image (usually into flash).
  void load(const isa::Image& image) {
    ACES_CHECK_MSG(
        bus_.load_image(image.base, image.bytes.data(), image.size()),
        "image does not fit the memory map");
  }

  // Convenience: reset to `entry` with the stack at the top of SRAM, pass
  // up to four arguments (the UC32 register-argument limit), run, and
  // return r0.
  std::uint32_t call(std::uint32_t entry,
                     std::initializer_list<std::uint32_t> args = {},
                     std::uint64_t max_insns = 10'000'000) {
    ACES_CHECK_MSG(args.size() <= 4,
                   "call() passes arguments in r0-r3; got " +
                       std::to_string(args.size()) +
                       " (spill further arguments to memory)");
    core_->reset(entry, initial_sp());
    unsigned k = 0;
    for (const std::uint32_t a : args) {
      core_->set_reg(static_cast<isa::Reg>(k++), a);
    }
    const HaltReason r = core_->run(max_insns);
    ACES_CHECK_MSG(r == HaltReason::exited,
                   "program did not exit cleanly (halt reason " +
                       std::to_string(static_cast<int>(r)) + ")");
    return core_->reg(isa::r0);
  }

  [[nodiscard]] std::uint32_t initial_sp() const {
    return sram_base_ + sram_.size_bytes();
  }

  // Cycle hook that composes with the built-in fault injector: the
  // injector (if configured) advances first, then `hook` runs. Prefer this
  // over core().set_cycle_hook(), which would silently disconnect the
  // injector.
  void set_cycle_hook(Core::CycleHook hook);

  // Joins a co-simulation as a cycle-accurate clocked participant. The
  // returned binding (owned by the System, registered with `sim`) places
  // the core's cycle counter on the shared nanosecond time base and is the
  // sim::IrqSink peripherals deliver interrupt lines through — no manual
  // cycle-hook/queue bridging. The one-argument form uses the clock rate
  // declared in the builder (SystemBuilder::clock_hz / the profiles).
  SystemBinding& bind(sim::Simulation& sim);
  SystemBinding& bind(sim::Simulation& sim, std::uint64_t hz);
  [[nodiscard]] SystemBinding* binding() { return binding_.get(); }

  // Installs `handler` as the vector-table entry for `line` of the owned
  // Ivc (little-endian word written through the bus — what boot code would
  // do before enabling the line).
  void set_irq_handler(unsigned line, std::uint32_t handler);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t clock_hz() const { return clock_hz_; }

  [[nodiscard]] Core& core() { return *core_; }
  [[nodiscard]] mem::Bus& bus() { return bus_; }
  [[nodiscard]] mem::Flash& flash() { return flash_; }
  [[nodiscard]] mem::Sram& sram() { return sram_; }
  [[nodiscard]] mem::Tcm* tcm() { return tcm_ ? &*tcm_ : nullptr; }
  [[nodiscard]] mem::Cache* icache() { return icache_ ? &*icache_ : nullptr; }
  [[nodiscard]] mem::Cache* dcache() { return dcache_ ? &*dcache_ : nullptr; }
  [[nodiscard]] mem::Mpu* mpu() { return mpu_ ? &*mpu_ : nullptr; }
  [[nodiscard]] mem::FaultInjector* fault_injector() {
    return injector_ ? &*injector_ : nullptr;
  }
  [[nodiscard]] InterruptController* intc() { return intc_.get(); }
  [[nodiscard]] ClassicVic* vic() {
    return dynamic_cast<ClassicVic*>(intc_.get());
  }
  [[nodiscard]] Ivc* ivc() { return dynamic_cast<Ivc*>(intc_.get()); }

 private:
  std::string name_;
  std::uint64_t clock_hz_ = 0;
  mem::Bus bus_;
  mem::Flash flash_;
  mem::Sram sram_;
  std::uint32_t sram_base_ = kSramBase;
  std::optional<mem::Tcm> tcm_;
  std::optional<mem::BitBandAlias> bitband_;
  std::vector<std::unique_ptr<mem::Device>> owned_devices_;
  mem::DirectPort iport_direct_;
  mem::DirectPort dport_direct_;
  std::optional<mem::Cache> icache_;
  std::optional<mem::Cache> dcache_;
  std::optional<mem::Mpu> mpu_;
  std::optional<mem::FaultInjector> injector_;
  std::unique_ptr<InterruptController> intc_;
  std::optional<Core> core_;
  Core::CycleHook user_hook_;
  std::unique_ptr<SystemBinding> binding_;
};

// Clock-domain bridge created by System::bind: presents a cycle-accurate
// System as a sim::Clocked participant (cycles <-> nanoseconds at the
// declared frequency) and as the sim::IrqSink peripherals raise interrupt
// lines through.
//
// Scheduling behavior:
//   - while the guest runs, advance_to steps the core until its local time
//     reaches the slice target (the core may overshoot by the tail of a
//     multi-cycle instruction; the next slice absorbs it);
//   - while the guest sleeps in WFI with no deliverable interrupt (and
//     after a clean exit), next_activity reports sim::kNever and advance_to
//     bulk-advances the cycle counter — an idle ECU costs zero host work;
//   - raise_irq first syncs a sleeping core's cycle counter to the present,
//     so interrupt latency accounting starts at the true raise instant.
class SystemBinding final : public sim::Clocked, public sim::IrqSink {
 public:
  SystemBinding(System& sys, sim::Simulation& sim, std::uint64_t hz);

  SystemBinding(const SystemBinding&) = delete;
  SystemBinding& operator=(const SystemBinding&) = delete;

  // ----- sim::Clocked -----
  [[nodiscard]] std::string_view name() const override {
    return sys_.name();
  }
  void advance_to(sim::SimTime t) override;
  [[nodiscard]] sim::SimTime next_activity() override;

  // ----- sim::IrqSink -----
  void raise_irq(unsigned line) override;
  void clear_irq(unsigned line) override;

  // ----- clock-domain conversions (pure integer, overflow-safe) -----
  [[nodiscard]] std::uint64_t hz() const noexcept { return hz_; }
  // Start time of cycle `cycles` (floor to the ns grid).
  [[nodiscard]] sim::SimTime time_of_cycles(std::uint64_t cycles) const;
  // First cycle boundary at or after `t`; exact inverse of time_of_cycles.
  [[nodiscard]] std::uint64_t cycles_at(sim::SimTime t) const;
  // The core's position on the shared time base.
  [[nodiscard]] sim::SimTime local_time() const {
    return time_of_cycles(sys_.core().cycles());
  }

  [[nodiscard]] System& system() noexcept { return sys_; }
  [[nodiscard]] sim::Simulation& simulation() noexcept { return sim_; }

  struct Stats {
    std::uint64_t steps = 0;        // core instructions/interrupts stepped
    std::uint64_t idle_cycles = 0;  // cycles slept through without stepping
    std::uint64_t irq_raises = 0;
    std::uint64_t frozen_irq_drops = 0;  // raises lost while frozen
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // ----- node-fault support (net::IssEcuNode) -----
  // A frozen binding models a crashed or hung core: advance_to only syncs
  // the local cycle counter (zero guest work), next_activity reports
  // sim::kNever, and raise_irq drops the line (counted). Thawing resumes
  // the core wherever it was — callers modeling a reboot reset it
  // explicitly.
  void set_frozen(bool frozen);
  [[nodiscard]] bool frozen() const noexcept { return frozen_; }

 private:
  [[nodiscard]] bool interrupt_deliverable();

  System& sys_;
  sim::Simulation& sim_;
  std::uint64_t hz_;
  Stats stats_;
  bool frozen_ = false;
};

inline System SystemBuilder::build() const { return System(*this); }

}  // namespace aces::cpu

#endif  // ACES_CPU_SYSTEM_H
