// Flash patch and breakpoint unit (§3.2.2).
//
// Low-cost parts keep code in flash that cannot be cheaply re-flashed during
// bring-up, so the debug block can remap up to eight instruction addresses:
// either to a breakpoint (halting for the single-wire debugger) or to a
// substitute instruction held in a small patch RAM — "up to eight words can
// be configured as RAM, providing an equivalent of eight breakpoints".
#ifndef ACES_CPU_FPB_H
#define ACES_CPU_FPB_H

#include <array>
#include <cstdint>
#include <optional>

#include "isa/isa.h"
#include "support/check.h"

namespace aces::cpu {

class FlashPatchUnit {
 public:
  static constexpr unsigned kSlots = 8;

  struct Patch {
    bool breakpoint = true;          // else: substitute instruction
    isa::Instruction replacement{};  // used when !breakpoint
    int replacement_size = 2;        // bytes the substitute pretends to be
  };

  // Installs a breakpoint at a code address.
  void set_breakpoint(unsigned slot, std::uint32_t addr) {
    ACES_CHECK(slot < kSlots);
    entries_[slot] = Entry{addr, Patch{}};
    ++version_;
  }

  // Remaps the instruction at addr to `replacement` (served from patch RAM).
  void set_patch(unsigned slot, std::uint32_t addr, const Patch& patch) {
    ACES_CHECK(slot < kSlots);
    entries_[slot] = Entry{addr, patch};
    ++version_;
  }

  void clear(unsigned slot) {
    ACES_CHECK(slot < kSlots);
    entries_[slot].reset();
    ++version_;
  }
  void clear_all() {
    for (auto& e : entries_) {
      e.reset();
    }
    ++version_;
  }

  // Bumped on every remap/breakpoint change; the core's decoded-instruction
  // cache compares it to drop stale entries after a mid-run reconfiguration.
  [[nodiscard]] std::uint32_t version() const { return version_; }

  [[nodiscard]] std::optional<Patch> lookup(std::uint32_t addr) const {
    for (const auto& e : entries_) {
      if (e && e->addr == addr) {
        return e->patch;
      }
    }
    return std::nullopt;
  }

  [[nodiscard]] unsigned used_slots() const {
    unsigned n = 0;
    for (const auto& e : entries_) {
      n += e.has_value() ? 1 : 0;
    }
    return n;
  }

 private:
  struct Entry {
    std::uint32_t addr = 0;
    Patch patch;
  };
  std::array<std::optional<Entry>, kSlots> entries_{};
  std::uint32_t version_ = 0;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_FPB_H
