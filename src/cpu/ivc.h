// Ivc: the §3.2.1 microcontroller interrupt scheme (Figure 4).
//
// Prioritized interrupt lines with:
//   - hardware stacking: the caller-saved context (r0-r3, r12, lr, return
//     pc, psr — 8 words) is pushed by hardware, so handlers are plain
//     compiled functions with no assembly stubs;
//   - vector fetch from a table in memory, performed during the stacking
//     sequence (the paper's "fetch vectors ... while simultaneously writing
//     important system variables");
//   - tail-chaining: when a handler returns with another interrupt pending,
//     the context is NOT unstacked and re-stacked — the core jumps to the
//     next vector after a short internal sequence;
//   - nested preemption by priority, plus an optional non-maskable line.
#ifndef ACES_CPU_IVC_H
#define ACES_CPU_IVC_H

#include <cstdint>
#include <vector>

#include "cpu/core.h"
#include "cpu/intc.h"

namespace aces::cpu {

class Ivc final : public InterruptController {
 public:
  struct Config {
    std::uint32_t vector_table = 0;  // word per line: handler address
    unsigned lines = 16;
    int nmi_line = -1;  // this line ignores masking (and outranks all)
  };

  explicit Ivc(Config config);

  // ----- line configuration -----
  void enable_line(unsigned line, std::uint8_t priority);
  void disable_line(unsigned line);
  // Memory address of the line's vector-table entry.
  [[nodiscard]] std::uint32_t vector_address(unsigned line) const {
    return config_.vector_table + 4 * line;
  }

  // ----- InterruptController -----
  void raise(unsigned line, std::uint64_t now) override;
  void clear(unsigned line) override;
  [[nodiscard]] bool would_preempt(const Core& core) const override;
  void poll(Core& core) override;
  bool exception_return(Core& core, std::uint32_t target) override;

  // ----- experiment probes -----
  [[nodiscard]] const std::vector<std::uint64_t>& latencies(
      unsigned line) const {
    return lines_[line].latencies;
  }
  struct Stats {
    std::uint64_t entries = 0;
    std::uint64_t tail_chains = 0;
    std::uint64_t preemptions = 0;  // nested entries
    std::uint64_t returns = 0;      // full unstack returns
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats();
  // Clears pending/active interrupt state (system reset); statistics and
  // line configuration are preserved.
  void reset();
  [[nodiscard]] unsigned active_depth() const {
    return static_cast<unsigned>(active_.size());
  }

 private:
  struct Line {
    bool enabled = false;
    bool pending = false;
    std::uint8_t priority = 255;
    std::uint64_t raised_at = 0;
    std::vector<std::uint64_t> latencies;
  };

  // Best runnable pending line given the current active priority, or -1.
  [[nodiscard]] int select(const Core& core) const;
  [[nodiscard]] int active_priority() const;
  void stack_and_enter(Core& core, unsigned line);
  void jump_to_vector(Core& core, unsigned line);

  Config config_;
  std::vector<Line> lines_;
  std::vector<unsigned> active_;  // stack of active line numbers
  Stats stats_;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_IVC_H
