// Decoded-instruction cache: the ISS hot-loop accelerator.
//
// Every retired instruction used to pay a flash-patch scan, an MPU check, a
// bus route and a full Codec::decode. Straight-line and loop code repeats
// the same program counters, so the core keeps a direct-mapped array of
// already-decoded instructions keyed by pc. A hit skips all of the above —
// but never the *modeled* fetch timing: entries record how to reproduce the
// fetch cost (see FetchReplay), so cycle traces, architectural state and
// stateful device behavior stay bit-identical to an uncached run. (Pure
// bookkeeping counters of skipped work — MPU fetch-check stats for
// already-validated pcs, flash stream-hit categorization in its state-free
// regimes — do not advance on `fixed` hits; nothing cycle-bearing depends
// on them.)
//
// Invalidation, the hard part, is a generation bump (O(1) flush) or a
// targeted few-probe line kill for small writes. Sources:
//   - writes into code: the bus write-snoop (host pokes, load_image flash
//     reprogramming) and the core's own store path (self-modifying code)
//     both consult the cached-pc window [watch_lo, watch_hi) — two compares
//     when the write is elsewhere, which is almost always;
//   - FlashPatchUnit remaps and MPU reconfiguration: version counters the
//     core compares before each lookup (only when those units exist);
//   - FaultInjector upsets (bit flips in code memory): the injector's upset
//     hook (wired by System) invalidates, so a freshly corrupted word is
//     re-decoded exactly like an uncached fetch would see it;
//   - privilege changes: each entry records the privilege its MPU fetch
//     check was validated under; a mismatch is a miss.
// Known hole: mutating code bytes through a bit-band alias of the SRAM that
// holds them bypasses the watch window (the alias write carries the alias
// address). No modeled scenario executes from bit-banded data.
//
// This cache is the middle rung of the dispatch ladder: the superblock tier
// (cpu/superblock.h) chains `fixed`-replay entries of decode-cache grade
// into straight-line blocks, reusing valid lines during formation and
// mirroring every invalidation source above at block granularity.
#ifndef ACES_CPU_DECODE_CACHE_H
#define ACES_CPU_DECODE_CACHE_H

#include <cstdint>
#include <vector>

#include "isa/isa.h"
#include "mem/bus.h"

namespace aces::cpu {

// A fetched-and-decoded instruction (also the unit the executor consumes).
struct Decoded {
  isa::Instruction insn;
  int size = 0;  // bytes occupied in the instruction stream
};

// How a cached entry reproduces the fetch cost of the instruction:
//   fixed     — charge `fixed_cycles`, touch no memory. Used for FPB patch
//               RAM (always 1 cycle) and for code in DirectSpan memory
//               (SRAM), whose cost is constant and side-effect free.
//   one_read  — re-issue the single ifetch read: the device's timing model
//               (flash streamer, I-cache) must advance exactly as if the
//               fetch were real, so only the decode work is skipped.
//   two_read  — re-issue both halfword reads (a 32-bit instruction in a
//               16-bit stream).
enum class FetchReplay : std::uint8_t { fixed, one_read, two_read };

class DecodeCache final : public mem::WriteSnoop {
 public:
  struct Line {
    std::uint32_t pc = 0;
    std::uint32_t gen = 0;  // valid iff == cache generation
    FetchReplay replay = FetchReplay::one_read;
    bool privileged = false;  // privilege the fetch MPU check passed under
    std::uint32_t fixed_cycles = 0;
    Decoded d;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t invalidations = 0;
  };

  // `num_lines` must be a power of two. `pc_shift` is the log2 of the
  // encoding's instruction alignment (1 for the halfword streams, 2 for
  // W32), so every line of the array is reachable.
  explicit DecodeCache(std::uint32_t num_lines, unsigned pc_shift = 1);

  // The valid entry for `pc`, or nullptr.
  [[nodiscard]] Line* lookup(std::uint32_t pc) {
    Line& l = lines_[(pc >> pc_shift_) & mask_];
    return (l.gen == generation_ && l.pc == pc) ? &l : nullptr;
  }

  void install(std::uint32_t pc, const Decoded& d, FetchReplay replay,
               std::uint32_t fixed_cycles, bool privileged);

  // O(1): bumps the generation and empties the snoop watch window.
  void invalidate_all();

  // Precise invalidation for a small write: probes only the lines whose pc
  // could overlap [addr, addr+len) and kills those. Large ranges (image
  // reloads) fall back to invalidate_all. The watch window is a monotonic
  // superset filter, so data lying between two cached code regions costs a
  // handful of (missing) probes per store, never a full flush.
  void invalidate_range(std::uint32_t addr, std::uint32_t len);

  // Core-side store snoop (DirectSpan writes bypass the bus). Two compares
  // when the store is outside the cached-pc window. The end-of-write term
  // is widened so a store ending exactly at the 4 GiB boundary still
  // intersects.
  void snoop_write(std::uint32_t addr, std::uint32_t len) {
    if (addr < watch_hi_ &&
        static_cast<std::uint64_t>(addr) + len > watch_lo_) {
      invalidate_range(addr, len);
    }
  }

  // mem::WriteSnoop (bus-side writers; the window was already checked).
  void on_write(std::uint32_t addr, std::uint32_t len) override {
    invalidate_range(addr, len);
  }

  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t num_lines() const {
    return static_cast<std::uint32_t>(lines_.size());
  }

 private:
  std::vector<Line> lines_;
  std::uint32_t mask_ = 0;
  unsigned pc_shift_ = 1;
  std::uint32_t generation_ = 1;  // lines start at gen 0: all invalid
  Stats stats_;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_DECODE_CACHE_H
