#include "cpu/core.h"

#include <algorithm>

#include <limits>

#include "cpu/fpb.h"
#include "cpu/hostmem.h"
#include "cpu/intc.h"
#include "support/bits.h"
#include "support/check.h"

namespace aces::cpu {

using isa::AddrMode;
using isa::Cond;
using isa::Instruction;
using isa::Op;
using isa::SetFlags;
using support::bits;
using support::sign_extend;

using hostmem::load_le;
using hostmem::span_covers;
using hostmem::store_le;

Core::Core(CoreConfig config, mem::MemPort& ifetch, mem::MemPort& data)
    : config_(config),
      codec_(isa::codec_for(config.encoding)),
      ifetch_(ifetch),
      data_(data) {
  privileged_ = config_.privileged;
  if (config_.decode_cache_lines != 0) {
    const unsigned pc_shift = config_.encoding == isa::Encoding::w32 ? 2u : 1u;
    dcache_.emplace(config_.decode_cache_lines, pc_shift);
    if (config_.dispatch_tier == DispatchTier::superblock) {
      sbcache_.emplace(config_.decode_cache_lines, pc_shift);
    }
  }
  code_snoop_.wire(dcache_ ? &*dcache_ : nullptr,
                   sbcache_ ? &*sbcache_ : nullptr);
  data_spans_ok_ = data_.offers_direct_spans();
  ifetch_spans_ok_ = ifetch_.offers_direct_spans();
}

void Core::reset(std::uint32_t entry_pc, std::uint32_t initial_sp) {
  regs_.fill(0);
  regs_[isa::pc] = entry_pc;
  regs_[isa::sp] = initial_sp;
  regs_[isa::lr] = kExitReturn;
  flags_ = isa::Flags{};
  privileged_ = config_.privileged;
  irq_enabled_ = true;
  wfi_ = false;
  clear_it_state();
  halt_ = HaltReason::none;
  fault_info_ = CoreFault{};
  // A reset is a reboot: callers commonly reload images through backdoors
  // the snoops don't see from a standalone core, so start decoding fresh.
  sb_resume_block_ = nullptr;
  invalidate_decoded();
}

// ----- memory helpers --------------------------------------------------------

bool Core::acquire_data_span(std::uint32_t addr) {
  if (!data_spans_ok_ || addr - nospan_base_ < nospan_size_) {
    return false;
  }
  mem::DirectSpan s;
  if (data_.direct_span(addr, &s) && s.data != nullptr && s.size >= 4) {
    dspan_ = s;
    return true;
  }
  if (s.size != 0) {
    // Mapped, but the device declined: negative-cache the window so
    // peripheral traffic stops probing.
    nospan_base_ = s.base;
    nospan_size_ = s.size;
  }
  return false;
}

bool Core::mem_read(std::uint32_t addr, unsigned size, std::uint32_t* value,
                    std::uint32_t* cycles, bool do_sign_extend,
                    unsigned ext_bits) {
  if (mpu_ != nullptr &&
      mpu_->check(addr, size, mem::Access::read, privileged_) !=
          mem::Fault::none) {
    do_fault(mem::Fault::mpu_violation, addr, mem::Access::read);
    return false;
  }
  if (span_covers(dspan_, addr, size) ||
      (acquire_data_span(addr) && span_covers(dspan_, addr, size))) {
    const std::uint32_t raw = load_le(dspan_.data + (addr - dspan_.base), size);
    *cycles += dspan_.read_cycles;
    *value = do_sign_extend
                 ? static_cast<std::uint32_t>(sign_extend(raw, ext_bits))
                 : raw;
    ++stats_.loads;
    return true;
  }
  const mem::MemResult r = data_.read(addr, size, mem::Access::read, cycles_);
  *cycles += r.cycles;
  if (!r.ok()) {
    do_fault(r.fault, addr, mem::Access::read);
    return false;
  }
  *value = do_sign_extend
               ? static_cast<std::uint32_t>(sign_extend(r.value, ext_bits))
               : r.value;
  ++stats_.loads;
  return true;
}

bool Core::mem_write(std::uint32_t addr, unsigned size, std::uint32_t value,
                     std::uint32_t* cycles) {
  if (mpu_ != nullptr &&
      mpu_->check(addr, size, mem::Access::write, privileged_) !=
          mem::Fault::none) {
    do_fault(mem::Fault::mpu_violation, addr, mem::Access::write);
    return false;
  }
  if ((span_covers(dspan_, addr, size) ||
       (acquire_data_span(addr) && span_covers(dspan_, addr, size))) &&
      dspan_.writable) {
    store_le(dspan_.data + (addr - dspan_.base), size, value);
    *cycles += dspan_.write_cycles;
  } else {
    const mem::MemResult r = data_.write(addr, size, value, cycles_);
    *cycles += r.cycles;
    if (!r.ok()) {
      do_fault(r.fault, addr, mem::Access::write);
      return false;
    }
  }
  // Self-modifying code: the store may overwrite instructions this core has
  // already decoded (two compares when it doesn't, which is almost always).
  if (dcache_) {
    dcache_->snoop_write(addr, size);
  }
  if (sbcache_) {
    sbcache_->snoop_write(addr, size);
  }
  ++stats_.stores;
  return true;
}

bool Core::push_word(std::uint32_t value) {
  std::uint32_t cycles = 0;
  regs_[isa::sp] -= 4;
  const bool ok = mem_write(regs_[isa::sp], 4, value, &cycles);
  cycles_ += cycles;
  return ok;
}

bool Core::pop_word(std::uint32_t* value) {
  std::uint32_t cycles = 0;
  const bool ok = mem_read(regs_[isa::sp], 4, value, &cycles, false, 32);
  regs_[isa::sp] += 4;
  cycles_ += cycles;
  return ok;
}

std::optional<std::uint32_t> Core::read_vector(std::uint32_t addr) {
  const mem::MemResult r = data_.read(addr, 4, mem::Access::read, cycles_);
  cycles_ += r.cycles;
  if (!r.ok()) {
    do_fault(r.fault, addr, mem::Access::read);
    return std::nullopt;
  }
  return r.value;
}

void Core::do_fault(mem::Fault kind, std::uint32_t addr, mem::Access access) {
  fault_info_ = CoreFault{kind, addr, cur_pc_, access};
  if (has_fault_handler_) {
    // Minimal precise-fault model: save return address in lr (magic-tagged)
    // and vector to the handler in privileged mode. The OSEK kernel model
    // uses this to kill the offending task.
    regs_[isa::lr] = kExitReturn;  // fault handlers end the enclosing run
    regs_[isa::pc] = fault_handler_pc_;
    privileged_ = true;
    clear_it_state();
    cycles_ += config_.timings.exception_entry_base +
               config_.timings.branch_taken_penalty;
    return;
  }
  halt(HaltReason::fault);
}

// ----- IT blocks ---------------------------------------------------------------

void Core::start_it(const Instruction& it) {
  const auto fc = static_cast<std::uint8_t>(it.cond);
  const std::uint8_t mask = it.it_mask & 0xF;
  // The block length is encoded by the position of the lowest set bit
  // (the terminator): n = 4 - lowest_set_bit_index.
  int n = 0;
  for (int b = 0; b <= 3; ++b) {
    if ((mask >> b) & 1u) {
      n = 4 - b;
      break;
    }
  }
  it_conds_[0] = it.cond;
  for (int k = 1; k < n; ++k) {
    const std::uint8_t low = (mask >> (4 - k)) & 1u;
    it_conds_[static_cast<std::size_t>(k)] =
        static_cast<Cond>((fc & 0xEu) | low);
  }
  it_pos_ = 0;
  it_remaining_ = static_cast<std::uint8_t>(n);
}

std::uint32_t Core::pack_psr() const {
  std::uint32_t psr = 0;
  psr |= flags_.n ? (1u << 31) : 0;
  psr |= flags_.z ? (1u << 30) : 0;
  psr |= flags_.c ? (1u << 29) : 0;
  psr |= flags_.v ? (1u << 28) : 0;
  psr |= privileged_ ? (1u << 16) : 0;
  psr |= irq_enabled_ ? (1u << 17) : 0;
  psr |= static_cast<std::uint32_t>(it_pos_ & 3u) << 18;
  psr |= static_cast<std::uint32_t>(it_remaining_ & 7u) << 20;
  for (unsigned k = 0; k < 4; ++k) {
    psr |= static_cast<std::uint32_t>(
               static_cast<std::uint8_t>(it_conds_[k]) & 0xFu)
           << (4 * k);
  }
  return psr;
}

void Core::restore_psr(std::uint32_t psr) {
  flags_.n = (psr >> 31) & 1u;
  flags_.z = (psr >> 30) & 1u;
  flags_.c = (psr >> 29) & 1u;
  flags_.v = (psr >> 28) & 1u;
  privileged_ = (psr >> 16) & 1u;
  irq_enabled_ = (psr >> 17) & 1u;
  it_pos_ = static_cast<std::uint8_t>((psr >> 18) & 3u);
  it_remaining_ = static_cast<std::uint8_t>((psr >> 20) & 7u);
  for (unsigned k = 0; k < 4; ++k) {
    it_conds_[k] = static_cast<Cond>((psr >> (4 * k)) & 0xFu);
  }
}

// ----- timing helpers -----------------------------------------------------------

std::uint32_t Core::mul_cycles(std::uint32_t operand) const {
  const CoreTimings& t = config_.timings;
  if (!t.mul_early_termination) {
    return t.mul_base;
  }
  const unsigned sig_bits = 32 - support::count_leading_zeros(operand);
  return t.mul_base + t.mul_per_byte * ((sig_bits + 7) / 8);
}

std::uint32_t Core::div_cycles(std::uint32_t dividend) const {
  const CoreTimings& t = config_.timings;
  const unsigned sig_bits = 32 - support::count_leading_zeros(dividend);
  return t.div_base + sig_bits / std::max(1u, t.div_bits_per_cycle);
}

// ----- fetch ---------------------------------------------------------------------

bool Core::fetch_decode(std::uint32_t addr, Decoded* out,
                        std::uint32_t* fetch_cycles, FetchReplay* replay) {
  // Flash-patch lookup bypasses memory (served from patch RAM in 1 cycle).
  if (fpb_ != nullptr) {
    if (const auto patch = fpb_->lookup(addr)) {
      if (patch->breakpoint) {
        halt(HaltReason::breakpoint);
        return false;
      }
      out->insn = patch->replacement;
      out->size = patch->replacement_size;
      *fetch_cycles = 1;
      *replay = FetchReplay::fixed;
      return true;
    }
  }

  const unsigned unit = config_.encoding == isa::Encoding::w32 ? 4 : 2;
  if (mpu_ != nullptr &&
      mpu_->check(addr, unit, mem::Access::fetch, privileged_) !=
          mem::Fault::none) {
    do_fault(mem::Fault::mpu_violation, addr, mem::Access::fetch);
    return false;
  }
  std::uint8_t buf[4] = {0, 0, 0, 0};
  const mem::MemResult first =
      ifetch_.read(addr, unit, mem::Access::fetch, cycles_);
  *fetch_cycles = first.cycles;
  if (!first.ok()) {
    do_fault(first.fault, addr, mem::Access::fetch);
    return false;
  }
  for (unsigned k = 0; k < unit; ++k) {
    buf[k] = static_cast<std::uint8_t>(first.value >> (8 * k));
  }

  *replay = FetchReplay::one_read;
  int n = codec_.decode(std::span<const std::uint8_t>(buf, unit), *&out->insn);
  if (n == 0 && unit == 2) {
    // Possibly the first half of a 32-bit instruction: fetch the second
    // halfword (sequential, so the streamer prices it kindly).
    const mem::MemResult second =
        ifetch_.read(addr + 2, 2, mem::Access::fetch, cycles_ + *fetch_cycles);
    *fetch_cycles += second.cycles;
    if (!second.ok()) {
      do_fault(second.fault, addr + 2, mem::Access::fetch);
      return false;
    }
    buf[2] = static_cast<std::uint8_t>(second.value);
    buf[3] = static_cast<std::uint8_t>(second.value >> 8);
    n = codec_.decode(std::span<const std::uint8_t>(buf, 4), out->insn);
    *replay = FetchReplay::two_read;
  }
  if (n == 0) {
    halt(HaltReason::invalid_insn);
    return false;
  }
  out->size = n;
  return true;
}

bool Core::replay_fetch(const DecodeCache::Line& line,
                        std::uint32_t* fetch_cycles) {
  if (line.replay == FetchReplay::fixed) {
    *fetch_cycles = line.fixed_cycles;
    return true;
  }
  // Re-issue the fetch reads so stateful timing models (flash streamer,
  // I-cache LRU/fills, TCM hold-and-repair) and their statistics advance
  // exactly as an uncached fetch would; only the decode work is skipped.
  const unsigned unit = config_.encoding == isa::Encoding::w32 ? 4 : 2;
  const mem::MemResult first =
      ifetch_.read(line.pc, unit, mem::Access::fetch, cycles_);
  *fetch_cycles = first.cycles;
  if (!first.ok()) {
    do_fault(first.fault, line.pc, mem::Access::fetch);
    return false;
  }
  if (line.replay == FetchReplay::two_read) {
    const mem::MemResult second = ifetch_.read(
        line.pc + 2, 2, mem::Access::fetch, cycles_ + *fetch_cycles);
    *fetch_cycles += second.cycles;
    if (!second.ok()) {
      do_fault(second.fault, line.pc + 2, mem::Access::fetch);
      return false;
    }
  }
  return true;
}

// ----- control transfer -----------------------------------------------------------

void Core::branch_to(std::uint32_t target) {
  if (target >= kExcReturnBase) {
    if (target == kExitReturn) {
      halt(HaltReason::exited);
      return;
    }
    if (intc_ != nullptr && intc_->exception_return(*this, target)) {
      return;
    }
    halt(HaltReason::fault);
    fault_info_ = CoreFault{mem::Fault::unmapped, target, cur_pc_,
                            mem::Access::fetch};
    return;
  }
  regs_[isa::pc] = target & ~1u;  // bit 0 is an interworking hint; ignore
  clear_it_state();
  cycles_ += config_.timings.branch_taken_penalty;
  ++stats_.taken_branches;
}

// ----- main step --------------------------------------------------------------------

bool Core::step() {
  if (halt_ != HaltReason::none) {
    return false;
  }
  // Slow-path attention, hoisted so the common case (no hook, not sleeping,
  // no pending request) is a couple of predictable branches. The interrupt
  // poll is gated on the controller's pending-line dirty flag, set by
  // raise(); a masked-pending line keeps the flag (and the poll) alive so
  // re-enabling interrupts still delivers it.
  if (cycle_hook_) {
    cycle_hook_(cycles_);
  }
  if (wfi_) {
    if (intc_ != nullptr && intc_->dispatch_needed() &&
        intc_->would_preempt(*this)) {
      wfi_ = false;
    } else {
      cycles_ += 1;
      return true;
    }
  }
  if (intc_ != nullptr && intc_->dispatch_needed()) {
    intc_->poll(*this);
    if (halt_ != HaltReason::none) {
      return false;
    }
  }
  if (sbcache_) {
    // Single-stepping still exercises block dispatch (the resume cursor
    // carries the position between steps), so direct step() drivers — the
    // differential fuzzer above all — test the same machinery run() uses.
    run_span(insns_ + 1, std::numeric_limits<std::uint64_t>::max());
  } else {
    step_insn();
  }
  return halt_ == HaltReason::none;
}

void Core::step_insn() {
  cur_pc_ = regs_[isa::pc];
  std::uint32_t fetch_cycles = 0;
  const Decoded* d = nullptr;
  Decoded fresh;

  if (dcache_) {
    // Units that change fetch results without touching memory carry version
    // counters; compare them before trusting a hit (only when they exist).
    if (fpb_ != nullptr && fpb_->version() != fpb_version_seen_) {
      fpb_version_seen_ = fpb_->version();
      invalidate_decoded();
    }
    if (mpu_ != nullptr && mpu_->version() != mpu_version_seen_) {
      mpu_version_seen_ = mpu_->version();
      invalidate_decoded();
    }
    DecodeCache::Line* line = dcache_->lookup(cur_pc_);
    if (line != nullptr && line->privileged == privileged_) {
      ++dcache_->stats().hits;
      if (!replay_fetch(*line, &fetch_cycles)) {
        cycles_ += fetch_cycles;
        return;
      }
      // Execute straight from the cache line: invalidation only bumps the
      // generation (it never rewrites line contents mid-instruction), so
      // the reference stays stable even if execute() snoops a store.
      d = &line->d;
    } else {
      ++dcache_->stats().misses;
    }
  }

  if (d == nullptr) {
    FetchReplay replay = FetchReplay::one_read;
    if (!fetch_decode(cur_pc_, &fresh, &fetch_cycles, &replay)) {
      cycles_ += fetch_cycles;
      return;
    }
    if (dcache_) {
      std::uint32_t fixed_cycles = replay == FetchReplay::fixed ? 1 : 0;
      if (replay != FetchReplay::fixed && ifetch_spans_ok_) {
        // When every read of this fetch has provably state-free cost (SRAM;
        // flash in its 1-cycle or prefetch-off regimes), cache the total
        // and skip the memory traffic on every hit. The observed-cost
        // cross-check keeps a misbehaving device honest.
        const unsigned unit = config_.encoding == isa::Encoding::w32 ? 4 : 2;
        std::optional<std::uint32_t> total =
            ifetch_.fixed_fetch_cost(cur_pc_, unit);
        if (total && replay == FetchReplay::two_read) {
          const auto second = ifetch_.fixed_fetch_cost(cur_pc_ + 2, 2);
          total = second ? std::optional<std::uint32_t>(*total + *second)
                         : std::nullopt;
        }
        if (total && *total == fetch_cycles) {
          replay = FetchReplay::fixed;
          fixed_cycles = fetch_cycles;
        }
      }
      dcache_->install(cur_pc_, fresh, replay, fixed_cycles, privileged_);
      code_snoop_.widen(cur_pc_,
                        cur_pc_ + static_cast<std::uint32_t>(fresh.size));
    }
    d = &fresh;
  }

  // Default sequential advance; execute() may overwrite (branch/restart).
  regs_[isa::pc] = cur_pc_ + static_cast<std::uint32_t>(d->size);

  std::uint32_t exec_cycles = 0;
  execute(*d, &exec_cycles);

  // Pipeline overlap: fetch of the next instruction hides behind execute.
  cycles_ += std::max(fetch_cycles, exec_cycles);
  ++insns_;
  ++stats_.instructions;
}

HaltReason Core::run_chunk(std::uint64_t max_instructions,
                           std::uint64_t cycle_limit) {
  const std::uint64_t start = insns_;
  const std::uint64_t ilimit =
      max_instructions > std::numeric_limits<std::uint64_t>::max() - start
          ? std::numeric_limits<std::uint64_t>::max()
          : start + max_instructions;
  while (halt_ == HaltReason::none) {
    if (insns_ >= ilimit) {
      return HaltReason::insn_limit;
    }
    if (cycles_ >= cycle_limit) {
      return HaltReason::none;
    }
    // Boundary protocol, shared with the superblock dispatcher's internal
    // boundaries: hook first (exactly once per instruction boundary), then
    // sleep/interrupt attention, then execution.
    if (cycle_hook_) {
      cycle_hook_(cycles_);
    }
    if (wfi_) {
      if (intc_ != nullptr && intc_->dispatch_needed() &&
          intc_->would_preempt(*this)) {
        wfi_ = false;
      } else {
        // Idle with nothing deliverable: hand back to the caller, which
        // either ticks cycles (run) or fast-forwards to the next event
        // (System::advance_to). This boundary's hook already ran.
        return HaltReason::none;
      }
    }
    if (intc_ != nullptr && intc_->dispatch_needed()) {
      intc_->poll(*this);
      if (halt_ != HaltReason::none) {
        break;
      }
    }
    if (sbcache_) {
      run_span(ilimit, cycle_limit);
    } else {
      step_insn();
    }
  }
  return halt_;
}

HaltReason Core::run(std::uint64_t max_instructions) {
  const std::uint64_t limit =
      max_instructions > std::numeric_limits<std::uint64_t>::max() - insns_
          ? std::numeric_limits<std::uint64_t>::max()
          : insns_ + max_instructions;
  while (halt_ == HaltReason::none) {
    if (insns_ >= limit) {
      return HaltReason::insn_limit;
    }
    const HaltReason r =
        run_chunk(limit - insns_, std::numeric_limits<std::uint64_t>::max());
    if (r != HaltReason::none) {
      return r;
    }
    // Only a wfi with no deliverable interrupt returns `none` under an
    // unbounded cycle limit; model the sleeping core one cycle at a time
    // (the chunk already ran this boundary's hook).
    if (wfi_) {
      cycles_ += 1;
    }
  }
  return halt_;
}

Core::JitStats Core::jit_stats() const {
  JitStats s;
  if (dcache_) {
    const DecodeCache::Stats& d = dcache_->stats();
    s.decode_hits = d.hits;
    s.decode_misses = d.misses;
    s.decode_invalidations = d.invalidations;
  }
  if (sbcache_) {
    const SuperblockCache::Stats& b = sbcache_->stats();
    s.blocks_formed = b.blocks_formed;
    s.blocks_killed = b.blocks_killed;
    s.block_splits = b.block_splits;
    s.block_flushes = b.block_flushes;
    s.block_hits = b.hits;
    s.block_misses = b.misses;
    s.block_instructions = b.block_instructions;
    if (b.blocks_formed > 0) {
      s.avg_block_length = static_cast<double>(b.entries_chained) /
                           static_cast<double>(b.blocks_formed);
    }
  }
  return s;
}

// ----- execute ---------------------------------------------------------------------

void Core::execute(const Decoded& d, std::uint32_t* exec_cycles) {
  const Instruction& i = d.insn;
  const CoreTimings& t = config_.timings;
  *exec_cycles = t.data_op;

  // Predication: IT block (B32) or encoded condition (W32). The IT
  // instruction itself is never predicated — its cond field is the block's
  // first condition, not a guard on the IT.
  bool in_it = false;
  Cond cond = i.op == Op::it ? Cond::al : i.cond;
  if (it_active() && i.op != Op::it) {
    cond = it_conds_[it_pos_];
    in_it = true;
    advance_it();
  }
  if (cond != Cond::al && !isa::cond_holds(cond, flags_)) {
    ++stats_.predicated_skips;
    return;  // 1 cycle for the annulled slot
  }

  // Effective flag-setting: inside an IT block only compares write flags
  // (the Thumb-2 rule that lets 16-bit ALU forms be predicated).
  const bool compare_op = i.op == Op::cmp || i.op == Op::cmn ||
                          i.op == Op::tst || i.op == Op::teq;
  const bool set =
      (i.set_flags == SetFlags::yes) && (!in_it || compare_op);

  const auto op2 = [&]() -> std::uint32_t {
    return i.uses_imm ? static_cast<std::uint32_t>(i.imm) : regs_[i.rm];
  };

  switch (i.op) {
    // ----- arithmetic -----
    case Op::add:
      regs_[i.rd] = add_with_carry(regs_[i.rn], op2(), false, set);
      break;
    case Op::adc:
      regs_[i.rd] = add_with_carry(regs_[i.rn], op2(), flags_.c, set);
      break;
    case Op::sub:
      regs_[i.rd] = add_with_carry(regs_[i.rn], ~op2(), true, set);
      break;
    case Op::sbc:
      regs_[i.rd] = add_with_carry(regs_[i.rn], ~op2(), flags_.c, set);
      break;
    case Op::rsb:
      regs_[i.rd] = add_with_carry(~regs_[i.rn], op2(), true, set);
      break;
    case Op::cmp:
      (void)add_with_carry(regs_[i.rn], ~op2(), true, true);
      break;
    case Op::cmn:
      (void)add_with_carry(regs_[i.rn], op2(), false, true);
      break;

    // ----- logical -----
    case Op::and_:
      regs_[i.rd] = regs_[i.rn] & op2();
      if (set) set_nz(regs_[i.rd]);
      break;
    case Op::orr:
      regs_[i.rd] = regs_[i.rn] | op2();
      if (set) set_nz(regs_[i.rd]);
      break;
    case Op::eor:
      regs_[i.rd] = regs_[i.rn] ^ op2();
      if (set) set_nz(regs_[i.rd]);
      break;
    case Op::bic:
      regs_[i.rd] = regs_[i.rn] & ~op2();
      if (set) set_nz(regs_[i.rd]);
      break;
    case Op::tst: {
      set_nz(regs_[i.rn] & op2());
      break;
    }
    case Op::teq: {
      set_nz(regs_[i.rn] ^ op2());
      break;
    }
    case Op::mov:
      regs_[i.rd] = op2();
      if (set) set_nz(regs_[i.rd]);
      break;
    case Op::mvn:
      regs_[i.rd] = ~op2();
      if (set) set_nz(regs_[i.rd]);
      break;

    // ----- shifts -----
    case Op::lsl:
    case Op::lsr:
    case Op::asr:
    case Op::ror: {
      const std::uint32_t v = regs_[i.rn];
      const std::uint32_t amount_full = i.uses_imm
                                            ? static_cast<std::uint32_t>(i.imm)
                                            : (regs_[i.rm] & 0xFF);
      std::uint32_t r = v;
      bool carry = flags_.c;
      if (amount_full != 0) {
        const std::uint32_t a = amount_full;
        switch (i.op) {
          case Op::lsl:
            r = a >= 32 ? 0 : v << a;
            carry = a <= 32 && ((v >> (32 - std::min(a, 32u))) & 1u);
            if (a > 32) carry = false;
            break;
          case Op::lsr:
            r = a >= 32 ? 0 : v >> a;
            carry = a <= 32 && ((v >> (std::min(a, 32u) - 1)) & 1u);
            if (a > 32) carry = false;
            break;
          case Op::asr:
            r = a >= 32 ? (v >> 31 ? 0xFFFFFFFFu : 0)
                        : static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(v) >>
                              static_cast<int>(a));
            carry = a >= 32 ? (v >> 31) != 0 : ((v >> (a - 1)) & 1u) != 0;
            break;
          default: {
            const unsigned rot = a % 32;
            r = support::rotate_right(v, rot);
            carry = (r >> 31) != 0;
            break;
          }
        }
      }
      regs_[i.rd] = r;
      if (set) {
        set_nz(r);
        if (amount_full != 0) {
          flags_.c = carry;
        }
      }
      break;
    }

    // ----- multiply / divide -----
    case Op::mul:
      regs_[i.rd] = regs_[i.rn] * regs_[i.rm];
      if (set) set_nz(regs_[i.rd]);
      *exec_cycles = mul_cycles(regs_[i.rm]);
      break;
    case Op::mla:
      regs_[i.rd] = regs_[i.rn] * regs_[i.rm] + regs_[i.ra];
      *exec_cycles = mul_cycles(regs_[i.rm]) + 1;
      break;
    case Op::sdiv: {
      const auto n = static_cast<std::int32_t>(regs_[i.rn]);
      const auto m = static_cast<std::int32_t>(regs_[i.rm]);
      // ARM semantics: divide by zero yields zero; INT_MIN/-1 wraps.
      regs_[i.rd] = m == 0 ? 0
                    : (n == INT32_MIN && m == -1)
                        ? static_cast<std::uint32_t>(INT32_MIN)
                        : static_cast<std::uint32_t>(n / m);
      *exec_cycles = div_cycles(regs_[i.rn]);
      break;
    }
    case Op::udiv:
      regs_[i.rd] = regs_[i.rm] == 0 ? 0 : regs_[i.rn] / regs_[i.rm];
      *exec_cycles = div_cycles(regs_[i.rn]);
      break;

    // ----- wide moves / bitfield (B32) -----
    case Op::movw:
      regs_[i.rd] = static_cast<std::uint32_t>(i.imm) & 0xFFFFu;
      break;
    case Op::movt:
      regs_[i.rd] = (regs_[i.rd] & 0xFFFFu) |
                    ((static_cast<std::uint32_t>(i.imm) & 0xFFFFu) << 16);
      break;
    case Op::bfi:
      regs_[i.rd] = support::insert_bits(
          regs_[i.rd], regs_[i.rn], static_cast<unsigned>(i.imm), i.width);
      break;
    case Op::bfc:
      regs_[i.rd] = support::insert_bits(regs_[i.rd], 0,
                                         static_cast<unsigned>(i.imm),
                                         i.width);
      break;
    case Op::ubfx:
      regs_[i.rd] =
          bits(regs_[i.rn], static_cast<unsigned>(i.imm), i.width);
      break;
    case Op::sbfx:
      regs_[i.rd] = static_cast<std::uint32_t>(sign_extend(
          bits(regs_[i.rn], static_cast<unsigned>(i.imm), i.width), i.width));
      break;
    case Op::rbit:
      regs_[i.rd] = support::reverse_bits(regs_[i.rm]);
      break;
    case Op::rev:
      regs_[i.rd] = support::reverse_bytes(regs_[i.rm]);
      break;
    case Op::rev16:
      regs_[i.rd] = support::reverse_bytes16(regs_[i.rm]);
      break;
    case Op::clz:
      regs_[i.rd] = support::count_leading_zeros(regs_[i.rm]);
      break;
    case Op::sxtb:
      regs_[i.rd] = static_cast<std::uint32_t>(
          sign_extend(regs_[i.rm] & 0xFF, 8));
      break;
    case Op::sxth:
      regs_[i.rd] = static_cast<std::uint32_t>(
          sign_extend(regs_[i.rm] & 0xFFFF, 16));
      break;
    case Op::uxtb:
      regs_[i.rd] = regs_[i.rm] & 0xFF;
      break;
    case Op::uxth:
      regs_[i.rd] = regs_[i.rm] & 0xFFFF;
      break;

    // ----- loads / stores -----
    case Op::ldr:
    case Op::ldrb:
    case Op::ldrh:
    case Op::ldrsb:
    case Op::ldrsh: {
      std::uint32_t addr = 0;
      switch (i.addr) {
        case AddrMode::offset_imm:
          addr = regs_[i.rn] + static_cast<std::uint32_t>(i.imm);
          break;
        case AddrMode::offset_reg:
          addr = regs_[i.rn] + regs_[i.rm];
          break;
        case AddrMode::pc_rel:
          addr = static_cast<std::uint32_t>(
                     support::align_down(cur_pc_ + 4, 4)) +
                 static_cast<std::uint32_t>(i.imm);
          break;
        default:
          break;
      }
      unsigned size = 4;
      bool sign = false;
      unsigned ext = 32;
      switch (i.op) {
        case Op::ldrb: size = 1; break;
        case Op::ldrh: size = 2; break;
        case Op::ldrsb: size = 1; sign = true; ext = 8; break;
        case Op::ldrsh: size = 2; sign = true; ext = 16; break;
        default: break;
      }
      std::uint32_t value = 0;
      std::uint32_t cycles = 0;
      if (!mem_read(addr, size, &value, &cycles, sign, ext)) {
        return;
      }
      regs_[i.rd] = value;
      *exec_cycles = t.data_op + t.load_extra + cycles;
      break;
    }
    case Op::str:
    case Op::strb:
    case Op::strh: {
      const std::uint32_t addr =
          i.addr == AddrMode::offset_imm
              ? regs_[i.rn] + static_cast<std::uint32_t>(i.imm)
              : regs_[i.rn] + regs_[i.rm];
      const unsigned size = i.op == Op::strb ? 1 : i.op == Op::strh ? 2 : 4;
      std::uint32_t cycles = 0;
      if (!mem_write(addr, size, regs_[i.rd], &cycles)) {
        return;
      }
      *exec_cycles = t.data_op + t.store_extra + cycles;
      break;
    }
    case Op::adr:
      regs_[i.rd] = static_cast<std::uint32_t>(
                        support::align_down(cur_pc_ + 4, 4)) +
                    static_cast<std::uint32_t>(i.imm);
      break;

    // ----- multiple transfer -----
    case Op::ldm:
    case Op::pop: {
      const bool is_pop = i.op == Op::pop;
      std::uint32_t addr = is_pop ? regs_[isa::sp] : regs_[i.rn];
      std::uint32_t cycles = t.ldm_base;
      std::uint32_t branch_target = 0;
      bool do_branch = false;
      unsigned transferred = 0;
      for (isa::Reg r = 0; r < 16; ++r) {
        if (((i.reglist >> r) & 1u) == 0) {
          continue;
        }
        // §3.1.2: a pending interrupt may abandon the transfer; the whole
        // instruction restarts after the handler returns.
        if (cycle_hook_) {
          cycle_hook_(cycles_ + cycles);
        }
        if (config_.restartable_ldm && transferred > 0 && intc_ != nullptr &&
            intc_->dispatch_needed() && intc_->would_preempt(*this)) {
          regs_[isa::pc] = cur_pc_;  // restart this instruction
          ++stats_.ldm_restarts;
          *exec_cycles = cycles;
          return;
        }
        std::uint32_t value = 0;
        if (!mem_read(addr, 4, &value, &cycles, false, 32)) {
          return;
        }
        if (r == isa::pc) {
          branch_target = value;
          do_branch = true;
        } else {
          regs_[r] = value;
        }
        addr += 4;
        ++transferred;
      }
      if (is_pop) {
        regs_[isa::sp] = addr;
      } else if (i.writeback) {
        regs_[i.rn] = addr;
      }
      *exec_cycles = cycles;
      if (do_branch) {
        branch_to(branch_target);
      }
      break;
    }
    case Op::stm:
    case Op::push: {
      const bool is_push = i.op == Op::push;
      const unsigned count = support::popcount(i.reglist);
      std::uint32_t addr = is_push ? regs_[isa::sp] - 4 * count : regs_[i.rn];
      const std::uint32_t base_new = addr + (is_push ? 0 : 4 * count);
      std::uint32_t cycles = t.ldm_base;
      unsigned transferred = 0;
      for (isa::Reg r = 0; r < 16; ++r) {
        if (((i.reglist >> r) & 1u) == 0) {
          continue;
        }
        if (cycle_hook_) {
          cycle_hook_(cycles_ + cycles);
        }
        if (config_.restartable_ldm && transferred > 0 && intc_ != nullptr &&
            intc_->dispatch_needed() && intc_->would_preempt(*this)) {
          regs_[isa::pc] = cur_pc_;
          ++stats_.ldm_restarts;
          *exec_cycles = cycles;
          return;
        }
        if (!mem_write(addr, 4, regs_[r], &cycles)) {
          return;
        }
        addr += 4;
        ++transferred;
      }
      if (is_push) {
        regs_[isa::sp] -= 4 * count;
      } else if (i.writeback) {
        regs_[i.rn] = base_new;
      }
      *exec_cycles = cycles;
      break;
    }

    // ----- branches -----
    case Op::b:
      branch_to(cur_pc_ + static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(i.imm)));
      break;
    case Op::bl:
      regs_[isa::lr] = cur_pc_ + static_cast<std::uint32_t>(d.size);
      branch_to(cur_pc_ + static_cast<std::uint32_t>(
                              static_cast<std::int32_t>(i.imm)));
      *exec_cycles = t.data_op + t.branch_link_extra;
      break;
    case Op::bx:
      branch_to(regs_[i.rm]);
      break;
    case Op::cbz:
    case Op::cbnz: {
      const bool zero = regs_[i.rn] == 0;
      if (zero == (i.op == Op::cbz)) {
        branch_to(cur_pc_ + static_cast<std::uint32_t>(
                                static_cast<std::int32_t>(i.imm)));
      }
      break;
    }
    case Op::tbb: {
      const std::uint32_t entry_addr = regs_[i.rn] + regs_[i.rm];
      std::uint32_t entry = 0;
      std::uint32_t cycles = 0;
      if (!mem_read(entry_addr, 1, &entry, &cycles, false, 32)) {
        return;
      }
      *exec_cycles = t.data_op + t.load_extra + cycles;
      branch_to(cur_pc_ + 4 + 2 * entry);
      break;
    }

    case Op::it:
      start_it(i);
      break;

    // ----- system -----
    case Op::nop:
      break;
    case Op::svc:
      if (i.imm == 0) {
        halt(HaltReason::exited);
      } else {
        // No supervisor-call table in the ISA-level model.
        halt(HaltReason::breakpoint);
      }
      break;
    case Op::bkpt:
      halt(HaltReason::breakpoint);
      break;
    case Op::cps:
      irq_enabled_ = i.imm == 0;
      break;
    case Op::wfi:
      wfi_ = true;
      break;
  }
}

}  // namespace aces::cpu
