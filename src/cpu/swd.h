// Single-wire debug port (§3.2.2).
//
// Low-pin-count packages cannot afford the 5-pin JTAG interface, so the
// microcontroller exposes its debug access port over one wire: commands and
// data are shifted in bit-serially, responses are shifted back out. The
// model implements a small command set sufficient for bring-up/calibration
// work the paper describes (reading/writing memory and registers, halting,
// single-stepping, and on-the-fly parameter download into RAM):
//
//   frame in:  START(1) | OP(4) | ADDR(32) | [DATA(32) for writes] | PAR(1)
//   frame out: OK(1) | DATA(32 for reads) | PAR(1)
//
// Parity is even over all payload bits; a parity mismatch aborts the
// command. The host-side convenience wrapper (SwdHost) drives the wire for
// tests, examples and the calibration demo.
#ifndef ACES_CPU_SWD_H
#define ACES_CPU_SWD_H

#include <cstdint>
#include <optional>
#include <vector>

#include "cpu/core.h"
#include "mem/bus.h"

namespace aces::cpu {

enum class SwdOp : std::uint8_t {
  read_mem = 0x1,
  write_mem = 0x2,
  read_reg = 0x3,   // addr = register number 0..15 (16 = psr)
  write_reg = 0x4,
  halt = 0x5,
  resume = 0x6,
};

class SingleWireDebug {
 public:
  SingleWireDebug(Core& core, mem::Bus& bus) : core_(core), bus_(bus) {}

  // Target side: one bit arrives on the wire.
  void shift_in(bool bit);
  // Target side: host clocks a response bit out. Returns false (idle) when
  // no response is pending.
  [[nodiscard]] bool shift_out();

  [[nodiscard]] bool response_pending() const { return !out_bits_.empty(); }
  [[nodiscard]] std::uint64_t bits_transferred() const { return bit_count_; }
  [[nodiscard]] bool halted_by_debugger() const { return debug_halt_; }
  [[nodiscard]] bool debug_halt_requested() const { return debug_halt_; }

 private:
  void execute_command();
  void respond_ok(std::optional<std::uint32_t> data);
  void respond_error();

  Core& core_;
  mem::Bus& bus_;
  std::vector<bool> in_bits_;
  std::vector<bool> out_bits_;
  std::size_t out_pos_ = 0;
  bool in_frame_ = false;
  std::uint64_t bit_count_ = 0;
  bool debug_halt_ = false;
};

// Host-side driver: formats frames and clocks the wire.
class SwdHost {
 public:
  explicit SwdHost(SingleWireDebug& port) : port_(port) {}

  [[nodiscard]] std::optional<std::uint32_t> read_mem(std::uint32_t addr);
  [[nodiscard]] bool write_mem(std::uint32_t addr, std::uint32_t value);
  [[nodiscard]] std::optional<std::uint32_t> read_reg(unsigned reg);
  [[nodiscard]] bool write_reg(unsigned reg, std::uint32_t value);
  [[nodiscard]] bool halt();
  [[nodiscard]] bool resume();

 private:
  [[nodiscard]] std::optional<std::vector<bool>> transact(
      SwdOp op, std::uint32_t addr, std::optional<std::uint32_t> data,
      unsigned response_payload_bits);

  SingleWireDebug& port_;
};

}  // namespace aces::cpu

#endif  // ACES_CPU_SWD_H
