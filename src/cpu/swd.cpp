#include "cpu/swd.h"

namespace aces::cpu {

namespace {

constexpr unsigned kOpBits = 4;
constexpr unsigned kWordBits = 32;

// Even parity over a bit vector range.
[[nodiscard]] bool parity_of(const std::vector<bool>& bits, std::size_t from,
                             std::size_t to) {
  bool p = false;
  for (std::size_t k = from; k < to; ++k) {
    p ^= bits[k];
  }
  return p;
}

[[nodiscard]] std::uint32_t word_of(const std::vector<bool>& bits,
                                    std::size_t from) {
  std::uint32_t v = 0;
  for (unsigned k = 0; k < kWordBits; ++k) {
    v |= static_cast<std::uint32_t>(bits[from + k] ? 1u : 0u) << k;
  }
  return v;
}

void append_word(std::vector<bool>& bits, std::uint32_t v) {
  for (unsigned k = 0; k < kWordBits; ++k) {
    bits.push_back(((v >> k) & 1u) != 0);
  }
}

}  // namespace

void SingleWireDebug::shift_in(bool bit) {
  ++bit_count_;
  if (!in_frame_) {
    if (bit) {  // START bit
      in_frame_ = true;
      in_bits_.clear();
    }
    return;
  }
  in_bits_.push_back(bit);

  if (in_bits_.size() < kOpBits + kWordBits + 1) {
    return;
  }
  // Do we have a complete frame? Depends on the op (writes carry data).
  std::uint8_t op = 0;
  for (unsigned k = 0; k < kOpBits; ++k) {
    op |= static_cast<std::uint8_t>((in_bits_[k] ? 1u : 0u) << k);
  }
  const bool has_data = op == static_cast<std::uint8_t>(SwdOp::write_mem) ||
                        op == static_cast<std::uint8_t>(SwdOp::write_reg);
  const std::size_t payload =
      kOpBits + kWordBits + (has_data ? kWordBits : 0);
  if (in_bits_.size() < payload + 1) {
    return;
  }
  execute_command();
  in_frame_ = false;
}

bool SingleWireDebug::shift_out() {
  ++bit_count_;
  if (out_pos_ >= out_bits_.size()) {
    out_bits_.clear();
    out_pos_ = 0;
    return false;  // idle line
  }
  return out_bits_[out_pos_++];
}

void SingleWireDebug::respond_ok(std::optional<std::uint32_t> data) {
  out_bits_.clear();
  out_pos_ = 0;
  out_bits_.push_back(true);  // OK
  if (data) {
    append_word(out_bits_, *data);
  }
  out_bits_.push_back(parity_of(out_bits_, 1, out_bits_.size()));
}

void SingleWireDebug::respond_error() {
  out_bits_.clear();
  out_pos_ = 0;
  out_bits_.push_back(false);  // error/NAK
  out_bits_.push_back(false);
}

void SingleWireDebug::execute_command() {
  std::uint8_t opbits = 0;
  for (unsigned k = 0; k < kOpBits; ++k) {
    opbits |= static_cast<std::uint8_t>((in_bits_[k] ? 1u : 0u) << k);
  }
  const auto op = static_cast<SwdOp>(opbits);
  const std::uint32_t addr = word_of(in_bits_, kOpBits);
  const bool has_data = op == SwdOp::write_mem || op == SwdOp::write_reg;
  const std::uint32_t data =
      has_data ? word_of(in_bits_, kOpBits + kWordBits) : 0;
  const std::size_t payload = kOpBits + kWordBits + (has_data ? kWordBits : 0);
  const bool parity = in_bits_[payload];
  if (parity != parity_of(in_bits_, 0, payload)) {
    respond_error();
    return;
  }

  switch (op) {
    case SwdOp::read_mem: {
      const mem::MemResult r = bus_.read(addr, 4, mem::Access::read, 0);
      if (!r.ok()) {
        respond_error();
        return;
      }
      respond_ok(r.value);
      return;
    }
    case SwdOp::write_mem: {
      // Debug writes use the program() backdoor so calibration data can be
      // dropped even into flash ("dynamic download ... during the
      // calibration phase"). Routed through load_image so the core's
      // decode-cache write snoop sees debugger patches to code.
      const std::uint8_t bytes[4] = {
          static_cast<std::uint8_t>(data), static_cast<std::uint8_t>(data >> 8),
          static_cast<std::uint8_t>(data >> 16),
          static_cast<std::uint8_t>(data >> 24)};
      if (!bus_.load_image(addr, bytes, 4)) {
        respond_error();
        return;
      }
      respond_ok(std::nullopt);
      return;
    }
    case SwdOp::read_reg:
      if (addr < 16) {
        respond_ok(core_.reg(static_cast<isa::Reg>(addr)));
      } else if (addr == 16) {
        respond_ok(core_.pack_psr());
      } else {
        respond_error();
      }
      return;
    case SwdOp::write_reg:
      if (addr < 16) {
        core_.set_reg(static_cast<isa::Reg>(addr), data);
        respond_ok(std::nullopt);
      } else {
        respond_error();
      }
      return;
    case SwdOp::halt:
      debug_halt_ = true;
      respond_ok(std::nullopt);
      return;
    case SwdOp::resume:
      debug_halt_ = false;
      core_.clear_wait();
      respond_ok(std::nullopt);
      return;
  }
  respond_error();
}

// ----- host ------------------------------------------------------------------

std::optional<std::vector<bool>> SwdHost::transact(
    SwdOp op, std::uint32_t addr, std::optional<std::uint32_t> data,
    unsigned response_payload_bits) {
  std::vector<bool> frame;
  for (unsigned k = 0; k < 4; ++k) {
    frame.push_back(((static_cast<unsigned>(op) >> k) & 1u) != 0);
  }
  append_word(frame, addr);
  if (data) {
    append_word(frame, *data);
  }
  frame.push_back(parity_of(frame, 0, frame.size()));

  port_.shift_in(true);  // START
  for (const bool b : frame) {
    port_.shift_in(b);
  }

  // Clock out: OK bit + payload + parity.
  std::vector<bool> resp;
  const bool ok = port_.shift_out();
  if (!ok) {
    (void)port_.shift_out();  // drain NAK filler
    return std::nullopt;
  }
  for (unsigned k = 0; k < response_payload_bits + 1; ++k) {
    resp.push_back(port_.shift_out());
  }
  // Verify response parity.
  bool p = false;
  for (unsigned k = 0; k < response_payload_bits; ++k) {
    p ^= resp[k];
  }
  if (p != resp[response_payload_bits]) {
    return std::nullopt;
  }
  resp.resize(response_payload_bits);
  return resp;
}

std::optional<std::uint32_t> SwdHost::read_mem(std::uint32_t addr) {
  const auto bits = transact(SwdOp::read_mem, addr, std::nullopt, 32);
  if (!bits) {
    return std::nullopt;
  }
  std::uint32_t v = 0;
  for (unsigned k = 0; k < 32; ++k) {
    v |= static_cast<std::uint32_t>((*bits)[k] ? 1u : 0u) << k;
  }
  return v;
}

bool SwdHost::write_mem(std::uint32_t addr, std::uint32_t value) {
  return transact(SwdOp::write_mem, addr, value, 0).has_value();
}

std::optional<std::uint32_t> SwdHost::read_reg(unsigned reg) {
  const auto bits = transact(SwdOp::read_reg, reg, std::nullopt, 32);
  if (!bits) {
    return std::nullopt;
  }
  std::uint32_t v = 0;
  for (unsigned k = 0; k < 32; ++k) {
    v |= static_cast<std::uint32_t>((*bits)[k] ? 1u : 0u) << k;
  }
  return v;
}

bool SwdHost::write_reg(unsigned reg, std::uint32_t value) {
  return transact(SwdOp::write_reg, reg, value, 0).has_value();
}

bool SwdHost::halt() {
  return transact(SwdOp::halt, 0, std::nullopt, 0).has_value();
}

bool SwdHost::resume() {
  return transact(SwdOp::resume, 0, std::nullopt, 0).has_value();
}

}  // namespace aces::cpu
