// Minimal Qm.n fixed-point helpers used by the host-side reference
// implementations of the automotive kernels (engine maps, PID, FIR). These
// mirror the integer sequences the KIR lowering emits, so the simulator
// outputs can be compared bit-for-bit against the references.
#ifndef ACES_SUPPORT_FIXED_H
#define ACES_SUPPORT_FIXED_H

#include <cstdint>

namespace aces::support {

// Multiplies two Q16.16 values. Intermediate is 64-bit, truncating shift —
// the same sequence the lowered kernels use (smull-style then shift).
[[nodiscard]] constexpr std::int32_t q16_mul(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)) >> 16);
}

// Divides two Q16.16 values (truncating), b must be nonzero.
[[nodiscard]] constexpr std::int32_t q16_div(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(
      (static_cast<std::int64_t>(a) << 16) / static_cast<std::int64_t>(b));
}

[[nodiscard]] constexpr std::int32_t q16_from_int(std::int32_t v) {
  return v << 16;
}

[[nodiscard]] constexpr std::int32_t q16_to_int(std::int32_t v) {
  return v >> 16;
}

// Saturates v into [lo, hi].
[[nodiscard]] constexpr std::int32_t clamp_i32(std::int64_t v, std::int32_t lo,
                                               std::int32_t hi) {
  if (v < lo) {
    return lo;
  }
  if (v > hi) {
    return hi;
  }
  return static_cast<std::int32_t>(v);
}

}  // namespace aces::support

#endif  // ACES_SUPPORT_FIXED_H
