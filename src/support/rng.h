// Deterministic pseudo-random number generation for the whole library.
//
// Every stochastic element of ACES (fault injection, workload inputs,
// interrupt arrival jitter, CAN payloads) draws from a seeded Rng256 so that
// simulations are exactly reproducible across runs and platforms. The
// generator is xoshiro256** (Blackman & Vigna), chosen for speed and
// well-studied statistical quality; <random> engines are avoided because
// their distributions are not bit-identical across standard libraries.
#ifndef ACES_SUPPORT_RNG_H
#define ACES_SUPPORT_RNG_H

#include <cstdint>

namespace aces::support {

class Rng256 {
 public:
  explicit Rng256(std::uint64_t seed) noexcept;

  // Next 64 uniformly distributed bits.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  [[nodiscard]] std::uint32_t next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
  }

  // Uniform integer in [0, bound) via Lemire's multiply-shift reduction;
  // bound must be nonzero.
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  [[nodiscard]] std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double next_unit() noexcept;

  // Bernoulli trial with probability p (clamped to [0,1]).
  [[nodiscard]] bool chance(double p) noexcept;

  // Forks an independent stream (splitmix of current state), for giving each
  // subsystem its own generator without correlated draws.
  [[nodiscard]] Rng256 fork() noexcept;

 private:
  std::uint64_t s_[4];
};

}  // namespace aces::support

#endif  // ACES_SUPPORT_RNG_H
