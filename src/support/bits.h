// Bit-manipulation helpers shared across the ISA, memory system and CAN
// serializer. All operate on unsigned types (bit patterns), per the
// signed-arithmetic / unsigned-bit-manipulation split.
#ifndef ACES_SUPPORT_BITS_H
#define ACES_SUPPORT_BITS_H

#include <bit>
#include <cstdint>

namespace aces::support {

// Extracts bits [lsb, lsb+width) of x, right-aligned. width in [1,32].
[[nodiscard]] constexpr std::uint32_t bits(std::uint32_t x, unsigned lsb,
                                           unsigned width) {
  const std::uint32_t mask =
      width >= 32 ? 0xFFFF'FFFFu : ((1u << width) - 1u);
  return (x >> lsb) & mask;
}

// Returns bit `n` of x as 0 or 1.
[[nodiscard]] constexpr std::uint32_t bit(std::uint32_t x, unsigned n) {
  return (x >> n) & 1u;
}

// Inserts the low `width` bits of v into x at [lsb, lsb+width).
[[nodiscard]] constexpr std::uint32_t insert_bits(std::uint32_t x,
                                                  std::uint32_t v,
                                                  unsigned lsb,
                                                  unsigned width) {
  const std::uint32_t mask =
      (width >= 32 ? 0xFFFF'FFFFu : ((1u << width) - 1u)) << lsb;
  return (x & ~mask) | ((v << lsb) & mask);
}

// Sign-extends the low `width` bits of x to a signed 32-bit value.
[[nodiscard]] constexpr std::int32_t sign_extend(std::uint32_t x,
                                                 unsigned width) {
  const unsigned shift = 32u - width;
  return static_cast<std::int32_t>(x << shift) >> shift;
}

// True if the signed value fits in `width` bits (two's complement).
[[nodiscard]] constexpr bool fits_signed(std::int64_t v, unsigned width) {
  const std::int64_t lo = -(std::int64_t{1} << (width - 1));
  const std::int64_t hi = (std::int64_t{1} << (width - 1)) - 1;
  return v >= lo && v <= hi;
}

// True if the unsigned value fits in `width` bits.
[[nodiscard]] constexpr bool fits_unsigned(std::uint64_t v, unsigned width) {
  return width >= 64 || v < (std::uint64_t{1} << width);
}

[[nodiscard]] constexpr std::uint32_t rotate_right(std::uint32_t x,
                                                   unsigned n) {
  return std::rotr(x, static_cast<int>(n));
}

[[nodiscard]] constexpr std::uint32_t rotate_left(std::uint32_t x,
                                                  unsigned n) {
  return std::rotl(x, static_cast<int>(n));
}

// Reverses the bit order of a 32-bit word (RBIT).
[[nodiscard]] constexpr std::uint32_t reverse_bits(std::uint32_t x) {
  x = ((x & 0x5555'5555u) << 1) | ((x >> 1) & 0x5555'5555u);
  x = ((x & 0x3333'3333u) << 2) | ((x >> 2) & 0x3333'3333u);
  x = ((x & 0x0F0F'0F0Fu) << 4) | ((x >> 4) & 0x0F0F'0F0Fu);
  x = ((x & 0x00FF'00FFu) << 8) | ((x >> 8) & 0x00FF'00FFu);
  return (x << 16) | (x >> 16);
}

// Reverses byte order of a 32-bit word (REV).
[[nodiscard]] constexpr std::uint32_t reverse_bytes(std::uint32_t x) {
  return ((x & 0x0000'00FFu) << 24) | ((x & 0x0000'FF00u) << 8) |
         ((x & 0x00FF'0000u) >> 8) | ((x & 0xFF00'0000u) >> 24);
}

// Reverses bytes within each halfword (REV16).
[[nodiscard]] constexpr std::uint32_t reverse_bytes16(std::uint32_t x) {
  return ((x & 0x00FF'00FFu) << 8) | ((x & 0xFF00'FF00u) >> 8);
}

// Count of leading zeros, 32 for x == 0 (CLZ).
[[nodiscard]] constexpr unsigned count_leading_zeros(std::uint32_t x) {
  return x == 0 ? 32u : static_cast<unsigned>(std::countl_zero(x));
}

[[nodiscard]] constexpr unsigned popcount(std::uint32_t x) {
  return static_cast<unsigned>(std::popcount(x));
}

[[nodiscard]] constexpr bool is_power_of_two(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

// Rounds x up to the next multiple of `align` (align must be a power of 2).
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t x,
                                               std::uint64_t align) {
  return (x + align - 1) & ~(align - 1);
}

[[nodiscard]] constexpr std::uint64_t align_down(std::uint64_t x,
                                                 std::uint64_t align) {
  return x & ~(align - 1);
}

}  // namespace aces::support

#endif  // ACES_SUPPORT_BITS_H
