// Precondition / configuration checking for the ACES library.
//
// ACES_CHECK is used on public API boundaries: violations are programming or
// configuration errors and throw std::logic_error (per the library error
// policy, modeled hardware faults are domain events, never C++ exceptions).
#ifndef ACES_SUPPORT_CHECK_H
#define ACES_SUPPORT_CHECK_H

#include <stdexcept>
#include <string>

namespace aces::support {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw std::logic_error(std::string("ACES_CHECK failed: ") + expr + " at " +
                         file + ":" + std::to_string(line) +
                         (msg.empty() ? "" : (" — " + msg)));
}

}  // namespace aces::support

#define ACES_CHECK(expr)                                                 \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::aces::support::check_failed(#expr, __FILE__, __LINE__, "");      \
    }                                                                    \
  } while (false)

#define ACES_CHECK_MSG(expr, msg)                                        \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::aces::support::check_failed(#expr, __FILE__, __LINE__, (msg));   \
    }                                                                    \
  } while (false)

#endif  // ACES_SUPPORT_CHECK_H
