// Seed derivation and small per-stream generators for batch campaigns.
//
// A Monte-Carlo campaign needs one master seed to expand into thousands of
// per-variant random streams that are (a) collision-free — two variants
// must never share a stream — and (b) independent — adjacent seeds must
// not produce correlated draws. Both utilities here are tiny, allocation-
// free and bit-identical across platforms:
//
//   SplitMix64     Steele/Lea/Flood's splitmix64. Its state update is a
//                  fixed odd increment (a Weyl sequence) and its output is
//                  a bijective finalizer of the state, so mix(s) is a
//                  64-bit permutation: distinct states give distinct
//                  outputs. derive_stream(master, k) exploits exactly
//                  that — for one master seed, every stream index k maps
//                  to a unique 64-bit stream seed, by construction (no
//                  birthday collisions, nothing to test at runtime).
//
//   Pcg32          O'Neill's PCG-XSH-RR 32-bit generator. Chosen for the
//                  per-variant streams because its increment parameter
//                  selects one of 2^63 provably distinct sequences, so a
//                  variant can cheaply split sub-streams (one per bus,
//                  per fault plan, ...) that never overlap.
//
// support::Rng256 (rng.h) remains the general-purpose generator for
// long-lived single-run simulations; it seeds itself through SplitMix64.
#ifndef ACES_SUPPORT_SPLITMIX_H
#define ACES_SUPPORT_SPLITMIX_H

#include <bit>
#include <cstdint>

namespace aces::support {

class SplitMix64 {
 public:
  // The Weyl increment (golden-ratio constant) and the finalizer from the
  // reference implementation.
  static constexpr std::uint64_t kGamma = 0x9E37'79B9'7F4A'7C15ull;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  // The output finalizer alone: a bijection on 64-bit values.
  [[nodiscard]] static constexpr std::uint64_t mix(std::uint64_t z) noexcept {
    z = (z ^ (z >> 30)) * 0xBF58'476D'1CE4'E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D0'49BB'1331'11EBull;
    return z ^ (z >> 31);
  }

  [[nodiscard]] constexpr std::uint64_t next() noexcept {
    state_ += kGamma;
    return mix(state_);
  }

 private:
  std::uint64_t state_;
};

// The k-th stream seed of `master`: the k+1-th splitmix64 output of a
// generator seeded with `master`. For a fixed master this is injective in
// `index` (Weyl step then bijective mix), so per-variant streams are
// collision-free by construction; changing the master permutes everything.
[[nodiscard]] constexpr std::uint64_t derive_stream(
    std::uint64_t master, std::uint64_t index) noexcept {
  return SplitMix64::mix(master + (index + 1) * SplitMix64::kGamma);
}

// PCG-XSH-RR (pcg32): 64-bit LCG state, 32-bit output via xorshift-high +
// random rotate. `stream` selects the increment; distinct streams are
// distinct sequences. Matches the reference pcg32 exactly (known-answer
// tested in tests/support_test.cpp).
class Pcg32 {
 public:
  explicit constexpr Pcg32(std::uint64_t seed,
                           std::uint64_t stream = 0) noexcept
      : state_(0), inc_((stream << 1) | 1u) {
    (void)next_u32();
    state_ += seed;
    (void)next_u32();
  }

  [[nodiscard]] constexpr std::uint32_t next_u32() noexcept {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ull + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18) ^ old) >> 27);
    const auto rot = static_cast<unsigned>(old >> 59);
    return std::rotr(xorshifted, static_cast<int>(rot));
  }

  // Uniform in [0, bound) via Lemire's multiply-shift; bound must be > 0.
  [[nodiscard]] constexpr std::uint32_t below(std::uint32_t bound) noexcept {
    const std::uint64_t m =
        static_cast<std::uint64_t>(next_u32()) * bound;
    return static_cast<std::uint32_t>(m >> 32);
  }

  // Uniform double in [0, 1), from the top 32 bits.
  [[nodiscard]] constexpr double next_unit() noexcept {
    return static_cast<double>(next_u32()) * 0x1.0p-32;
  }

  [[nodiscard]] constexpr bool chance(double p) noexcept {
    if (p <= 0.0) {
      return false;
    }
    if (p >= 1.0) {
      return true;
    }
    return next_unit() < p;
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
};

}  // namespace aces::support

#endif  // ACES_SUPPORT_SPLITMIX_H
