#include "support/rng.h"

#include <bit>

#include "support/splitmix.h"

namespace aces::support {

Rng256::Rng256(std::uint64_t seed) noexcept {
  // splitmix64 seeds the xoshiro state from a single 64-bit value — the
  // same derivation campaign seed streams use (support/splitmix.h).
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.next();
  }
  // All-zero state is the one invalid state; seed==0 cannot produce it via
  // splitmix64, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng256::next_u64() noexcept {
  const std::uint64_t result = std::rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = std::rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng256::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method; bias is < 2^-64 * bound which is
  // negligible for simulation purposes.
  const unsigned __int128 m =
      static_cast<unsigned __int128>(next_u64()) * bound;
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng256::next_in(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64()
                                                  : next_below(span));
}

double Rng256::next_unit() noexcept {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng256::chance(double p) noexcept {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return next_unit() < p;
}

Rng256 Rng256::fork() noexcept { return Rng256(next_u64()); }

}  // namespace aces::support
