// Set-associative cache with optional fault-tolerant RAM (§3.1.2, §3.1.3).
//
// Organization: physically-indexed, LRU replacement, write-through /
// no-write-allocate (the common choice for small embedded caches; it also
// guarantees memory always holds the truth, which is what makes soft-error
// recovery by invalidate-and-refill exact).
//
// Soft errors: FaultInjector plants XOR masks over a line's golden data or
// marks its tag corrupted. With fault tolerance enabled:
//   - a corrupted TAG is detected when its set is probed -> the line is
//     invalidated and the access proceeds as a miss (the paper: "any error
//     detected in the TAG RAM generates a cache miss");
//   - corrupted DATA under an instruction fetch -> invalidate + refill
//     ("the cache instruction line is invalidated ... forcing the code to
//     be re-loaded");
//   - corrupted DATA under a data read -> precise abort, modeled as a
//     refill plus a fixed software-recovery penalty, after which corrected
//     data is delivered.
// With fault tolerance disabled the corrupted value flows to the core and
// the access is flagged silently_corrupt.
#ifndef ACES_MEM_CACHE_H
#define ACES_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "mem/bus.h"
#include "mem/port.h"
#include "support/rng.h"

namespace aces::mem {

struct CacheConfig {
  std::uint32_t line_bytes = 16;
  std::uint32_t num_sets = 64;
  std::uint32_t ways = 2;
  std::uint32_t hit_cycles = 1;
  bool fault_tolerant = false;
  std::uint32_t abort_recovery_cycles = 20;  // D-side precise-abort handler
  // Only addresses in [cacheable_base, cacheable_limit) are cached;
  // everything else passes through (peripherals, bit-band aliases).
  std::uint32_t cacheable_base = 0;
  std::uint32_t cacheable_limit = 0xFFFFFFFFu;
};

class Cache final : public MemPort {
 public:
  Cache(CacheConfig config, Bus& backing);

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access kind,
                               std::uint64_t now) override;
  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value,
                                std::uint64_t now) override;

  void invalidate_all();

  // ----- fault injection hooks -----
  // Flips a random bit in a random valid line's data (or marks its tag
  // corrupted with probability tag_fraction). Returns false if the cache
  // holds no valid line.
  bool flip_random_bit(support::Rng256& rng, double tag_fraction);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t tag_errors_detected = 0;
    std::uint64_t ifetch_refills = 0;      // I-side soft-error recoveries
    std::uint64_t data_aborts_recovered = 0;
    std::uint64_t silent_corruptions = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  struct Line {
    bool valid = false;
    bool tag_corrupt = false;
    std::uint32_t tag = 0;
    std::uint64_t lru = 0;
    std::vector<std::uint8_t> data;     // golden contents
    std::vector<std::uint8_t> corrupt;  // XOR masks (soft errors)

    [[nodiscard]] bool data_corrupt(std::uint32_t offset,
                                    unsigned size) const {
      for (unsigned k = 0; k < size; ++k) {
        if (corrupt[offset + k] != 0) {
          return true;
        }
      }
      return false;
    }
  };

  [[nodiscard]] bool cacheable(std::uint32_t addr) const {
    return addr >= config_.cacheable_base && addr < config_.cacheable_limit;
  }
  [[nodiscard]] std::uint32_t set_of(std::uint32_t addr) const {
    return (addr / config_.line_bytes) % config_.num_sets;
  }
  [[nodiscard]] std::uint32_t tag_of(std::uint32_t addr) const {
    return addr / config_.line_bytes / config_.num_sets;
  }

  // Probes the set; detects tag parity errors (FT). Returns way index or -1.
  int lookup(std::uint32_t addr);
  // Fills a line from backing memory; returns cycles spent.
  std::uint32_t fill(std::uint32_t addr, std::uint64_t now, Access kind,
                     int* way_out);

  CacheConfig config_;
  Bus& backing_;
  std::vector<Line> lines_;  // num_sets * ways, set-major
  std::uint64_t lru_clock_ = 0;
  Stats stats_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_CACHE_H
