// Embedded flash model with a sequential prefetch streamer (§2.2 of the
// paper).
//
// Real embedded flash runs at 30-40 MHz while the core runs several times
// faster, so flash controllers fetch a whole line ahead of the program
// counter and stream it. A sequential access hits the stream buffer in one
// cycle; a non-sequential access (branch target, or a *data* read such as a
// literal-pool fetch) pays the full line access time AND repositions the
// streamer, so the following instruction fetch misses too. This double
// penalty is the mechanism behind the paper's "15 % performance degradation"
// claim for literal pools, which bench_flash_literals reproduces.
//
// `dual_buffer` models a controller with an independent data buffer: data
// reads still pay the line latency but no longer destroy the instruction
// stream (used by the ablation bench).
#ifndef ACES_MEM_FLASH_H
#define ACES_MEM_FLASH_H

#include "mem/device.h"
#include "mem/storage.h"

namespace aces::mem {

struct FlashConfig {
  std::uint32_t size_bytes = 256 * 1024;
  // Full random (line) access time in core cycles. A 32 MHz flash behind a
  // 160 MHz core is ~5 cycles.
  std::uint32_t line_access_cycles = 5;
  std::uint32_t line_bytes = 8;  // prefetch line width (power of two)
  bool prefetch_enabled = true;  // streamer on/off (ablation)
  bool dual_buffer = false;      // independent data-side buffer (ablation)
};

class Flash final : public Device {
 public:
  explicit Flash(FlashConfig config);

  [[nodiscard]] std::string_view name() const override { return "flash"; }
  [[nodiscard]] std::uint32_t size_bytes() const override {
    return store_.size();
  }

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access kind,
                               std::uint64_t now) override;
  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value, std::uint64_t now) override;

  bool program(std::uint32_t addr, std::uint8_t byte) override;

  // The streamer's fetch cost is state-free in two regimes, both exactly
  // line_access_cycles per line touched:
  //   - prefetch disabled: every access pays the full line time;
  //   - line_access_cycles == 1 (the "ideal memory" benchmarking regime):
  //     hit, next-line wait (min(wait+1, 1)) and break all cost 1 cycle.
  // Everywhere else the cost depends on streamer history, so cached
  // instructions must re-run the protocol.
  [[nodiscard]] std::optional<std::uint32_t> fixed_fetch_cost(
      std::uint32_t addr, unsigned size) const override {
    if (config_.prefetch_enabled && config_.line_access_cycles != 1) {
      return std::nullopt;
    }
    return config_.line_access_cycles *
           (line_of(addr + size - 1) - line_of(addr) + 1);
  }

  // Statistics for the experiments.
  struct Stats {
    std::uint64_t stream_hits = 0;       // 1-cycle buffer hits
    std::uint64_t stream_next_line = 0;  // waited on the prefetcher
    std::uint64_t stream_breaks = 0;     // non-sequential: full access
    std::uint64_t data_disruptions = 0;  // data reads that reset the stream
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

  // Resets streamer state (e.g. between benchmark repetitions).
  void reset_stream();

 private:
  // Per-port streamer state.
  struct Stream {
    bool valid = false;
    std::uint32_t line = 0;               // line currently in the buffer
    std::uint64_t next_line_ready = 0;    // when line+1 finishes prefetching
  };

  [[nodiscard]] std::uint32_t line_of(std::uint32_t addr) const {
    return addr / config_.line_bytes;
  }

  // Runs the streamer protocol on `s`; returns cycles for this access.
  std::uint32_t stream_access(Stream& s, std::uint32_t addr, unsigned size,
                              std::uint64_t now);

  FlashConfig config_;
  ByteStore store_;
  Stream istream_;  // instruction-side streamer
  Stream dstream_;  // data-side buffer when dual_buffer is set
  Stats stats_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_FLASH_H
