// Memory protection unit models (§3.1.1 / Figure 2).
//
// The paper's argument: classic MPUs force regions to 4 KB power-of-two
// granules, which is too coarse to isolate the many small OSEK software
// modules an automotive ECU runs, so unrelated tasks end up sharing one
// protection region; the re-engineered fine-grained MPU (32-byte granules,
// arbitrary multiple-of-granule sizes) lets each module be locked down
// individually. Both models share one implementation parameterized by
// MpuConfig; bench_fig2_mpu measures the memory waste and the isolation
// gap between the two configurations.
//
// Region semantics (ARM-style): higher-numbered regions take priority when
// regions overlap; an access with no matching region is denied for
// unprivileged code and, when `privileged_background` is set, allowed for
// privileged code.
#ifndef ACES_MEM_MPU_H
#define ACES_MEM_MPU_H

#include <array>
#include <cstdint>
#include <optional>

#include "mem/device.h"

namespace aces::mem {

struct MpuConfig {
  std::uint32_t granularity = 32;     // base/size alignment in bytes
  bool power_of_two_sizes = false;    // classic MPUs: size = 2^n, base aligned
                                      // to size
  unsigned max_regions = 8;           // 8, 12 or 16
  bool privileged_background = true;  // privileged default-allow

  // The classic coarse MPU the paper criticizes.
  [[nodiscard]] static MpuConfig coarse(unsigned regions = 8) {
    MpuConfig c;
    c.granularity = 4096;
    c.power_of_two_sizes = true;
    c.max_regions = regions;
    return c;
  }
  // The re-engineered fine-grained MPU.
  [[nodiscard]] static MpuConfig fine(unsigned regions = 8) {
    MpuConfig c;
    c.granularity = 32;
    c.power_of_two_sizes = false;
    c.max_regions = regions;
    return c;
  }
};

struct MpuRegion {
  std::uint32_t base = 0;
  std::uint32_t size = 0;  // bytes; 0 = region disabled
  bool read = false;
  bool write = false;
  bool execute = false;
  bool privileged_only = false;  // unprivileged access denied regardless
};

class Mpu {
 public:
  explicit Mpu(MpuConfig config);

  [[nodiscard]] const MpuConfig& config() const { return config_; }

  // Programs a region. Throws std::logic_error if the region violates the
  // MPU's granularity/alignment rules or the index is out of range.
  void set_region(unsigned index, const MpuRegion& region);
  void clear_region(unsigned index);
  void clear_all();

  // Bumped on every reconfiguration; consumers that cache check() outcomes
  // (the core's decoded-instruction cache) compare it to revalidate.
  [[nodiscard]] std::uint32_t version() const { return version_; }

  // Smallest legal region size covering `bytes` under this configuration —
  // the quantity behind the Figure 2 memory-waste experiment.
  [[nodiscard]] std::uint32_t smallest_region_span(std::uint32_t bytes) const;

  // Checks an access; returns Fault::none or Fault::mpu_violation.
  [[nodiscard]] Fault check(std::uint32_t addr, unsigned size, Access kind,
                            bool privileged) const;

  struct Stats {
    std::uint64_t checks = 0;
    std::uint64_t violations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  MpuConfig config_;
  std::array<MpuRegion, 16> regions_{};
  std::uint32_t version_ = 0;
  mutable Stats stats_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_MPU_H
