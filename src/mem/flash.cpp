#include "mem/flash.h"

#include <algorithm>

#include "support/bits.h"
#include "support/check.h"

namespace aces::mem {

Flash::Flash(FlashConfig config) : config_(config), store_(config.size_bytes) {
  ACES_CHECK(support::is_power_of_two(config_.line_bytes));
  ACES_CHECK(config_.line_bytes >= 4);
  ACES_CHECK(config_.line_access_cycles >= 1);
}

void Flash::reset_stream() {
  istream_ = Stream{};
  dstream_ = Stream{};
}

std::uint32_t Flash::stream_access(Stream& s, std::uint32_t addr,
                                   unsigned size, std::uint64_t now) {
  const std::uint32_t first = line_of(addr);
  const std::uint32_t last = line_of(addr + size - 1);
  const std::uint32_t t_line = config_.line_access_cycles;

  if (!config_.prefetch_enabled) {
    // Every access pays the full line time (per line touched).
    return t_line * (last - first + 1);
  }

  std::uint32_t cycles = 0;
  std::uint32_t line = first;
  std::uint64_t t = now;
  while (true) {
    if (s.valid && line == s.line) {
      // In the buffer.
      cycles += 1;
      t += 1;
      ++stats_.stream_hits;
    } else if (s.valid && line == s.line + 1) {
      // The streamer is (or was) fetching this line in the background.
      // Never worse than a fresh random access.
      const std::uint64_t ready = s.next_line_ready;
      const std::uint32_t wait =
          ready > t ? static_cast<std::uint32_t>(ready - t) : 0;
      const std::uint32_t cost = std::min(wait + 1, t_line);
      cycles += cost;
      t += cost;
      s.line = line;
      s.next_line_ready = t + t_line;
      ++stats_.stream_next_line;
    } else {
      // Non-sequential: full access, stream repositioned.
      cycles += t_line;
      t += t_line;
      s.valid = true;
      s.line = line;
      s.next_line_ready = t + t_line;
      ++stats_.stream_breaks;
    }
    if (line == last) {
      break;
    }
    ++line;
  }
  return cycles;
}

MemResult Flash::read(std::uint32_t addr, unsigned size, Access kind,
                      std::uint64_t now) {
  MemResult r;
  r.value = store_.read_le(addr, size);
  if (kind == Access::fetch) {
    r.cycles = stream_access(istream_, addr, size, now);
    return r;
  }
  // Data-side read (e.g. literal pool).
  if (config_.dual_buffer) {
    r.cycles = stream_access(dstream_, addr, size, now);
    return r;
  }
  // Single-port controller: the data read goes through the instruction
  // streamer and repositions it — the §2.2 disruption.
  const bool was_streaming =
      istream_.valid && line_of(addr) != istream_.line &&
      line_of(addr) != istream_.line + 1;
  r.cycles = stream_access(istream_, addr, size, now);
  if (was_streaming) {
    ++stats_.data_disruptions;
  }
  return r;
}

MemResult Flash::write(std::uint32_t addr, unsigned, std::uint32_t,
                       std::uint64_t) {
  (void)addr;
  MemResult r;
  r.fault = Fault::readonly;
  return r;
}

bool Flash::program(std::uint32_t addr, std::uint8_t byte) {
  if (addr >= store_.size()) {
    return false;
  }
  store_.set_byte(addr, byte);
  return true;
}

}  // namespace aces::mem
