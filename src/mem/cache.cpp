#include "mem/cache.h"

#include "support/bits.h"
#include "support/check.h"

namespace aces::mem {

Cache::Cache(CacheConfig config, Bus& backing)
    : config_(config), backing_(backing) {
  ACES_CHECK(support::is_power_of_two(config_.line_bytes));
  ACES_CHECK(config_.line_bytes >= 4);
  ACES_CHECK(config_.num_sets >= 1 && config_.ways >= 1);
  lines_.resize(config_.num_sets * config_.ways);
  for (Line& line : lines_) {
    line.data.assign(config_.line_bytes, 0);
    line.corrupt.assign(config_.line_bytes, 0);
  }
}

void Cache::invalidate_all() {
  for (Line& line : lines_) {
    line.valid = false;
    line.tag_corrupt = false;
    std::fill(line.corrupt.begin(), line.corrupt.end(), 0);
  }
}

int Cache::lookup(std::uint32_t addr) {
  const std::uint32_t set = set_of(addr);
  const std::uint32_t tag = tag_of(addr);
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    Line& line = lines_[set * config_.ways + w];
    if (!line.valid) {
      continue;
    }
    if (line.tag_corrupt) {
      if (config_.fault_tolerant) {
        // Tag parity error detected while probing: drop the line; the
        // access then proceeds as an ordinary miss.
        line.valid = false;
        line.tag_corrupt = false;
        ++stats_.tag_errors_detected;
      }
      // Without FT a flipped tag simply never matches: the line is lost.
      continue;
    }
    if (line.tag == tag) {
      return static_cast<int>(w);
    }
  }
  return -1;
}

std::uint32_t Cache::fill(std::uint32_t addr, std::uint64_t now, Access kind,
                          int* way_out) {
  const std::uint32_t set = set_of(addr);
  const std::uint32_t line_addr = addr - addr % config_.line_bytes;

  // Choose victim: invalid way first, else LRU.
  int victim = -1;
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!lines_[set * config_.ways + w].valid) {
      victim = static_cast<int>(w);
      break;
    }
  }
  if (victim < 0) {
    std::uint64_t best = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      const Line& line = lines_[set * config_.ways + w];
      if (line.lru < best) {
        best = line.lru;
        victim = static_cast<int>(w);
      }
    }
  }
  Line& line = lines_[set * config_.ways + static_cast<std::uint32_t>(victim)];

  // Stream the line in word beats; the backing device's own timing model
  // (e.g. the flash streamer) prices the sequential burst.
  std::uint32_t cycles = 0;
  for (std::uint32_t off = 0; off < config_.line_bytes; off += 4) {
    const MemResult beat = backing_.read(line_addr + off, 4, kind,
                                         now + cycles);
    if (!beat.ok()) {
      // Propagate the fault by leaving the line invalid; caller re-reads
      // through the bus and surfaces the fault.
      line.valid = false;
      *way_out = -1;
      return cycles + beat.cycles;
    }
    line.data[off] = static_cast<std::uint8_t>(beat.value);
    line.data[off + 1] = static_cast<std::uint8_t>(beat.value >> 8);
    line.data[off + 2] = static_cast<std::uint8_t>(beat.value >> 16);
    line.data[off + 3] = static_cast<std::uint8_t>(beat.value >> 24);
    cycles += beat.cycles;
  }
  line.valid = true;
  line.tag_corrupt = false;
  line.tag = tag_of(addr);
  line.lru = ++lru_clock_;
  std::fill(line.corrupt.begin(), line.corrupt.end(), 0);
  ++stats_.fills;
  *way_out = victim;
  return cycles;
}

MemResult Cache::read(std::uint32_t addr, unsigned size, Access kind,
                      std::uint64_t now) {
  if (!cacheable(addr)) {
    return backing_.read(addr, size, kind, now);
  }
  // Misaligned (line-crossing) accesses — only reachable from wild code,
  // e.g. after an undetected fetch corruption — go to the bus, which
  // faults them properly.
  const std::uint32_t offset = addr % config_.line_bytes;
  if (offset + size > config_.line_bytes) {
    return backing_.read(addr, size, kind, now);
  }

  const std::uint32_t set = set_of(addr);
  int way = lookup(addr);
  std::uint32_t cycles = config_.hit_cycles;
  MemResult r;

  if (way < 0) {
    ++stats_.misses;
    cycles += fill(addr, now + cycles, kind, &way);
    if (way < 0) {
      // Fill faulted; surface the underlying bus fault.
      MemResult direct = backing_.read(addr, size, kind, now + cycles);
      direct.cycles += cycles;
      return direct;
    }
  } else {
    ++stats_.hits;
  }

  Line& line = lines_[set * config_.ways + static_cast<std::uint32_t>(way)];
  line.lru = ++lru_clock_;

  if (line.data_corrupt(offset, size)) {
    if (config_.fault_tolerant) {
      // Detected parity error. Invalidate and refill; charge the D-side
      // abort handler on data reads.
      line.valid = false;
      int refilled = -1;
      cycles += fill(addr, now + cycles, kind, &refilled);
      ACES_CHECK(refilled >= 0);
      if (kind == Access::fetch) {
        ++stats_.ifetch_refills;
      } else {
        cycles += config_.abort_recovery_cycles;
        ++stats_.data_aborts_recovered;
      }
      Line& fresh =
          lines_[set * config_.ways + static_cast<std::uint32_t>(refilled)];
      r.value = 0;
      for (unsigned k = 0; k < size; ++k) {
        r.value |= static_cast<std::uint32_t>(fresh.data[offset + k])
                   << (8 * k);
      }
      r.cycles = cycles;
      r.soft_error_recovered = true;
      return r;
    }
    // Unprotected: deliver flipped bits.
    r.value = 0;
    for (unsigned k = 0; k < size; ++k) {
      r.value |= static_cast<std::uint32_t>(
                     static_cast<std::uint8_t>(line.data[offset + k] ^
                                               line.corrupt[offset + k]))
                 << (8 * k);
    }
    r.cycles = cycles;
    r.silently_corrupt = true;
    ++stats_.silent_corruptions;
    return r;
  }

  r.value = 0;
  for (unsigned k = 0; k < size; ++k) {
    r.value |= static_cast<std::uint32_t>(line.data[offset + k]) << (8 * k);
  }
  r.cycles = cycles;
  return r;
}

MemResult Cache::write(std::uint32_t addr, unsigned size, std::uint32_t value,
                       std::uint64_t now) {
  if (!cacheable(addr)) {
    return backing_.write(addr, size, value, now);
  }
  // Write-through, no-write-allocate.
  MemResult r = backing_.write(addr, size, value, now);
  if (!r.ok()) {
    return r;
  }
  const int way = lookup(addr);
  if (way >= 0) {
    const std::uint32_t set = set_of(addr);
    Line& line = lines_[set * config_.ways + static_cast<std::uint32_t>(way)];
    const std::uint32_t offset = addr % config_.line_bytes;
    for (unsigned k = 0; k < size; ++k) {
      line.data[offset + k] = static_cast<std::uint8_t>(value >> (8 * k));
      line.corrupt[offset + k] = 0;
    }
    line.lru = ++lru_clock_;
  }
  return r;
}

bool Cache::flip_random_bit(support::Rng256& rng, double tag_fraction) {
  std::vector<std::uint32_t> valid;
  for (std::uint32_t k = 0; k < lines_.size(); ++k) {
    if (lines_[k].valid) {
      valid.push_back(k);
    }
  }
  if (valid.empty()) {
    return false;
  }
  Line& line = lines_[valid[rng.next_below(valid.size())]];
  if (rng.chance(tag_fraction)) {
    line.tag_corrupt = true;
    return true;
  }
  const std::uint32_t byte = static_cast<std::uint32_t>(
      rng.next_below(config_.line_bytes));
  const unsigned bit = static_cast<unsigned>(rng.next_below(8));
  line.corrupt[byte] ^= static_cast<std::uint8_t>(1u << bit);
  return true;
}

}  // namespace aces::mem
