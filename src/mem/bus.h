// System bus: routes CPU accesses to memory-mapped devices.
//
// The bus owns nothing; devices are registered with their base address and
// must outlive the bus. Accesses that hit no device, straddle a device
// boundary, or are unaligned return a Fault instead of data. The bus itself
// adds no cycles — all timing lives in the devices.
#ifndef ACES_MEM_BUS_H
#define ACES_MEM_BUS_H

#include <cstdint>
#include <vector>

#include "mem/device.h"

namespace aces::mem {

class Bus {
 public:
  Bus() = default;

  // Maps `dev` at [base, base + dev.size_bytes()). Regions must not overlap.
  void attach(std::uint32_t base, Device& dev);

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access kind,
                               std::uint64_t now);
  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value, std::uint64_t now);

  // Debug/loader access: reads or writes bytes with no timing or side
  // effects beyond the raw store (used to load program images and by the
  // debug port). Returns false if the range is unmapped.
  bool load_image(std::uint32_t addr, const std::uint8_t* data,
                  std::uint32_t len);

  // Finds the device covering addr, or nullptr. `offset` receives the
  // device-relative address.
  [[nodiscard]] Device* device_at(std::uint32_t addr, std::uint32_t* offset);

 private:
  struct Mapping {
    std::uint32_t base = 0;
    std::uint32_t limit = 0;  // exclusive
    Device* dev = nullptr;
  };
  std::vector<Mapping> map_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_BUS_H
