// System bus: routes CPU accesses to memory-mapped devices.
//
// The bus owns nothing; devices are registered with their base address and
// must outlive the bus. Accesses that hit no device, straddle a device
// boundary, or are unaligned return a Fault instead of data. The bus itself
// adds no cycles — all timing lives in the devices.
//
// Routing cost: a per-access-kind MRU memo remembers the last device hit,
// so streams of accesses to the same region (instruction fetch runs, stack
// traffic) skip the binary search entirely; only region changes pay it.
#ifndef ACES_MEM_BUS_H
#define ACES_MEM_BUS_H

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "mem/device.h"

namespace aces::mem {

// Observer of bus writes inside a watch window. The window is checked
// inline by the bus (two compares), so a quiescent snoop is nearly free;
// the virtual call happens only for writes that intersect it. The CPU's
// decoded-instruction cache uses this to catch self-modifying code and
// flash reprogramming.
class WriteSnoop {
 public:
  virtual ~WriteSnoop() = default;

  [[nodiscard]] std::uint32_t watch_lo() const { return watch_lo_; }
  [[nodiscard]] std::uint32_t watch_hi() const { return watch_hi_; }

  // A write of `len` bytes at `addr` intersected [watch_lo, watch_hi).
  virtual void on_write(std::uint32_t addr, std::uint32_t len) = 0;

 protected:
  // Empty window by default; implementations widen it as they cache state.
  std::uint32_t watch_lo_ = 0xFFFF'FFFFu;
  std::uint32_t watch_hi_ = 0;
};

class Bus {
 public:
  Bus() = default;

  // Maps `dev` at [base, base + dev.size_bytes()). Regions must not overlap.
  void attach(std::uint32_t base, Device& dev);

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access kind,
                               std::uint64_t now);
  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value, std::uint64_t now);

  // Debug/loader access: reads or writes bytes with no timing or side
  // effects beyond the raw store (used to load program images and by the
  // debug port). Returns false if the range is unmapped.
  bool load_image(std::uint32_t addr, const std::uint8_t* data,
                  std::uint32_t len);

  // Finds the device covering addr, or nullptr. `offset` receives the
  // device-relative address.
  [[nodiscard]] Device* device_at(std::uint32_t addr, std::uint32_t* offset);

  // Resolves the direct span covering `addr`. Returns true with `out`
  // rebased to guest addresses when the covering device exports one. When
  // the address is mapped but the device declines, returns false with
  // out->base/size set to the mapping range and out->data == nullptr, so
  // callers can negative-cache the window. Unmapped: false, out->size == 0.
  bool direct_span(std::uint32_t addr, DirectSpan* out);

  // Device::fixed_fetch_cost for the device covering [addr, addr+size), or
  // nullopt when unmapped / out of range / the device declines.
  [[nodiscard]] std::optional<std::uint32_t> fixed_fetch_cost(
      std::uint32_t addr, unsigned size);

  // Installs (or clears, with nullptr) the write snoop. Writes through
  // write()/load_image() that intersect the snoop's watch window invoke it
  // after the bytes land. Writes bypassing the bus — DirectSpan stores, a
  // bit-band alias mutating its underlying SRAM — are the caller's problem.
  void set_write_snoop(WriteSnoop* snoop) { snoop_ = snoop; }

 private:
  struct Mapping {
    std::uint32_t base = 0;
    std::uint32_t limit = 0;  // exclusive
    Device* dev = nullptr;
  };
  // MRU memo: last mapping hit, one per Access kind. base > limit encodes
  // "empty". Mappings never move or unmap, so a filled memo stays valid.
  struct Mru {
    std::uint32_t base = 1;
    std::uint32_t limit = 0;
    Device* dev = nullptr;
  };

  // Shared routing for read()/write(): MRU probe, binary-search fallback,
  // straddle check, memo fill. Returns the device and its relative offset,
  // or nullptr with *fault set.
  Device* route(std::uint32_t addr, unsigned size, Mru& memo,
                std::uint32_t* offset, Fault* fault);

  void notify_snoop(std::uint32_t addr, std::uint32_t len) {
    // The end-of-write term is widened so a write ending exactly at the
    // 4 GiB boundary still intersects the watch window.
    if (snoop_ != nullptr && len != 0 && addr < snoop_->watch_hi() &&
        static_cast<std::uint64_t>(addr) + len > snoop_->watch_lo()) {
      snoop_->on_write(addr, len);
    }
  }

  std::vector<Mapping> map_;
  std::array<Mru, 3> mru_{};  // indexed by Access
  WriteSnoop* snoop_ = nullptr;
};

}  // namespace aces::mem

#endif  // ACES_MEM_BUS_H
