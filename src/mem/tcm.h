// Tightly-coupled memory with fault-tolerant "hold and repair" (§3.1.3).
//
// A TCM normally answers in a single cycle to feed the core. With fault
// tolerance enabled, a read that touches a soft-error-corrupted location
// stalls the core while the error-correction logic repairs the word —
// directly from the core, with no interrupt — and then delivers corrected
// data. With fault tolerance disabled the corrupted value is returned and
// flagged silently_corrupt (observable only to the experiment harness).
//
// Soft errors are planted by FaultInjector as XOR masks over a golden copy,
// so "repair" (ECC correction) can restore the true value exactly.
#ifndef ACES_MEM_TCM_H
#define ACES_MEM_TCM_H

#include <vector>

#include "mem/device.h"
#include "mem/storage.h"

namespace aces::mem {

struct TcmConfig {
  std::uint32_t size_bytes = 32 * 1024;
  std::uint32_t access_cycles = 1;
  bool fault_tolerant = true;
  std::uint32_t repair_cycles = 6;  // hold-and-repair stall
};

class Tcm final : public Device {
 public:
  explicit Tcm(TcmConfig config)
      : config_(config),
        store_(config.size_bytes),
        corrupt_(config.size_bytes, 0) {}

  [[nodiscard]] std::string_view name() const override { return "tcm"; }
  [[nodiscard]] std::uint32_t size_bytes() const override {
    return store_.size();
  }

  [[nodiscard]] MemResult read(std::uint32_t addr, unsigned size, Access,
                               std::uint64_t) override {
    MemResult r;
    r.cycles = config_.access_cycles;
    bool corrupted = false;
    for (unsigned k = 0; k < size; ++k) {
      corrupted |= corrupt_[addr + k] != 0;
    }
    if (!corrupted) {
      r.value = store_.read_le(addr, size);
      return r;
    }
    if (config_.fault_tolerant) {
      // Hold and repair: stall, scrub, deliver corrected data.
      for (unsigned k = 0; k < size; ++k) {
        corrupt_[addr + k] = 0;
      }
      r.value = store_.read_le(addr, size);
      r.cycles += config_.repair_cycles;
      r.soft_error_recovered = true;
      ++stats_.repairs;
      return r;
    }
    // No protection: deliver the flipped bits.
    std::uint32_t v = store_.read_le(addr, size);
    for (unsigned k = 0; k < size; ++k) {
      v ^= static_cast<std::uint32_t>(corrupt_[addr + k]) << (8 * k);
    }
    r.value = v;
    r.silently_corrupt = true;
    ++stats_.silent_corruptions;
    return r;
  }

  [[nodiscard]] MemResult write(std::uint32_t addr, unsigned size,
                                std::uint32_t value, std::uint64_t) override {
    store_.write_le(addr, size, value);
    for (unsigned k = 0; k < size; ++k) {
      corrupt_[addr + k] = 0;  // overwrite clears the upset
    }
    MemResult r;
    r.cycles = config_.access_cycles;
    return r;
  }

  bool program(std::uint32_t addr, std::uint8_t byte) override {
    if (addr >= store_.size()) {
      return false;
    }
    store_.set_byte(addr, byte);
    corrupt_[addr] = 0;
    return true;
  }

  // Fault-injection hook: XORs `mask` into the byte at addr.
  void inject_bit_flips(std::uint32_t addr, std::uint8_t mask) {
    corrupt_[addr] ^= mask;
  }

  struct Stats {
    std::uint64_t repairs = 0;
    std::uint64_t silent_corruptions = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }
  void reset_stats() { stats_ = Stats{}; }

 private:
  TcmConfig config_;
  ByteStore store_;
  std::vector<std::uint8_t> corrupt_;  // XOR mask of pending soft errors
  Stats stats_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_TCM_H
