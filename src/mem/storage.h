// Little-endian backing store shared by the RAM-like devices.
#ifndef ACES_MEM_STORAGE_H
#define ACES_MEM_STORAGE_H

#include <cstdint>
#include <vector>

namespace aces::mem {

class ByteStore {
 public:
  explicit ByteStore(std::uint32_t size) : bytes_(size, 0) {}

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(bytes_.size());
  }

  [[nodiscard]] std::uint32_t read_le(std::uint32_t addr,
                                      unsigned size) const {
    std::uint32_t v = 0;
    for (unsigned k = 0; k < size; ++k) {
      v |= static_cast<std::uint32_t>(bytes_[addr + k]) << (8 * k);
    }
    return v;
  }

  void write_le(std::uint32_t addr, unsigned size, std::uint32_t value) {
    for (unsigned k = 0; k < size; ++k) {
      bytes_[addr + k] = static_cast<std::uint8_t>(value >> (8 * k));
    }
  }

  [[nodiscard]] std::uint8_t byte(std::uint32_t addr) const {
    return bytes_[addr];
  }
  void set_byte(std::uint32_t addr, std::uint8_t b) { bytes_[addr] = b; }

  // Raw host storage, for devices that export a DirectSpan.
  [[nodiscard]] std::uint8_t* data() { return bytes_.data(); }
  [[nodiscard]] const std::uint8_t* data() const { return bytes_.data(); }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace aces::mem

#endif  // ACES_MEM_STORAGE_H
